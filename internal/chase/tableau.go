// Package chase implements the chase procedures the paper's algorithms are
// built on:
//
//   - a tableau chase (Maier–Mendelzon–Sagiv [25], Maier–Sagiv–Yannakakis
//     [26]) for deciding implication of FDs, MVDs, JDs and embedded MVDs
//     from sets of FDs and JDs — the engine behind Theorem 1's
//     complementarity test;
//   - a dependency-basis shortcut for FD-only schemas;
//   - an instance chase over relations with labeled nulls, the engine
//     behind Theorem 3's translatability test, in both a hash-bucket
//     union-find implementation and the literal sort-based implementation
//     of the paper's Corollary.
package chase

import (
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/dep"
)

// maxTableauRows bounds tableau growth under JD rules. The chase with FDs
// and full JDs always terminates, but adversarial inputs can make the
// intermediate tableau large; the limit exists to fail loudly instead of
// exhausting memory.
const maxTableauRows = 1 << 16

// tableau is a chase tableau: rows of symbol ids, with a union-find over
// symbols. Symbol c, for 0 <= c < width, is the distinguished symbol of
// column c; larger ids are nondistinguished.
type tableau struct {
	width  int
	parent []int
	rows   [][]int
	// seen maps a canonical row's hash to the indices of rows with that
	// hash (verified by element comparison on lookup).
	seen map[uint64][]int
	// b bounds the chase; err is its sticky trip, checked by run.
	b   *budget.B
	err error
	// visits accumulates row visits charged through step, published to
	// the obs layer when run finishes.
	visits int64
	// fdPasses and jdPasses count rule applications, published with
	// visits.
	fdPasses, jdPasses int64
}

// step charges n steps to the tableau's budget, recording the sticky
// error. It reports whether the chase may continue.
func (t *tableau) step(n int64) bool {
	if t.err != nil {
		return false
	}
	t.visits += n
	if err := t.b.Step(n); err != nil {
		t.err = err
		return false
	}
	return true
}

func newTableau(width int) *tableau {
	t := &tableau{width: width, seen: make(map[uint64][]int)}
	t.parent = make([]int, width)
	for i := range t.parent {
		t.parent[i] = i
	}
	return t
}

// fresh allocates a new nondistinguished symbol.
func (t *tableau) fresh() int {
	id := len(t.parent)
	t.parent = append(t.parent, id)
	return id
}

func (t *tableau) find(x int) int {
	for t.parent[x] != x {
		t.parent[x] = t.parent[t.parent[x]]
		x = t.parent[x]
	}
	return x
}

// union merges two symbols; the smaller id (distinguished symbols are
// smallest) becomes the representative. Reports whether a merge happened.
func (t *tableau) union(a, b int) bool {
	ra, rb := t.find(a), t.find(b)
	if ra == rb {
		return false
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	t.parent[rb] = ra
	return true
}

// sameFind reports whether two symbol rows agree on the given columns
// after resolving through the union-find.
func (t *tableau) sameFind(a, b []int, cols []int) bool {
	for _, c := range cols {
		if t.find(a[c]) != t.find(b[c]) {
			return false
		}
	}
	return true
}

// addRow canonicalizes and inserts a row, reporting whether it was new.
func (t *tableau) addRow(row []int) bool {
	c := make([]int, t.width)
	for i, s := range row {
		c[i] = t.find(s)
	}
	h := hashInts(c)
	for _, ri := range t.seen[h] {
		if intsEqual(t.rows[ri], c) {
			return false
		}
	}
	if len(t.rows) >= maxTableauRows {
		panic(fmt.Sprintf("chase: tableau exceeded %d rows", maxTableauRows))
	}
	t.seen[h] = append(t.seen[h], len(t.rows))
	t.rows = append(t.rows, c)
	return true
}

// hashInts hashes a symbol row (FNV-1a over the words, mixed).
func hashInts(xs []int) uint64 {
	h := uint64(hashSeed)
	for _, x := range xs {
		h = hashVal(h, uint64(x))
	}
	return hashMix(h)
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// recanonicalize rewrites every row with representatives and dedups.
func (t *tableau) recanonicalize() {
	rows := t.rows
	t.rows = nil
	t.seen = make(map[uint64][]int, len(rows))
	for _, r := range rows {
		t.addRow(r)
	}
}

// applyFDs runs FD rules to fixpoint, reporting whether anything changed.
func (t *tableau) applyFDs(fds []dep.FD, cols map[attr.ID]int) bool {
	changedEver := false
	for {
		changed := false
		for _, f := range fds {
			if !t.step(int64(len(t.rows))) {
				return changedEver
			}
			t.fdPasses++
			zc := colIdx(f.From, cols)
			ac := colIdx(f.To, cols)
			// Chain rows by the hash of their resolved Z symbols; one
			// entry per distinct resolved Z (collisions verified).
			bt := newBucketTable(len(t.rows))
			next := make([]int, len(t.rows))
			for ri, row := range t.rows {
				h := uint64(hashSeed)
				for _, c := range zc {
					h = hashVal(h, uint64(t.find(row[c])))
				}
				h = hashMix(h)
				rep := -1
				for j := bt.get(h); j >= 0; j = next[j] {
					if t.sameFind(t.rows[j], row, zc) {
						rep = j
						break
					}
				}
				if rep < 0 {
					next[ri] = bt.put(h, ri)
					continue
				}
				for _, c := range ac {
					if t.union(t.rows[rep][c], row[c]) {
						changed = true
					}
				}
			}
		}
		if !changed {
			return changedEver
		}
		changedEver = true
		t.recanonicalize()
	}
}

// applyJD runs one JD rule pass: every joinable combination of rows adds
// its joined row. Reports whether a new row appeared.
func (t *tableau) applyJD(j dep.JD, cols map[attr.ID]int) bool {
	comps := make([][]int, len(j.Components))
	for i, c := range j.Components {
		comps[i] = colIdx(c, cols)
	}
	base := make([]int, t.width)
	for i := range base {
		base[i] = -1
	}
	added := false
	n := len(t.rows)
	var rec func(depth int, acc []int)
	rec = func(depth int, acc []int) {
		if !t.step(int64(n)) {
			return
		}
		if depth == len(comps) {
			row := make([]int, t.width)
			copy(row, acc)
			if t.addRow(row) {
				added = true
			}
			return
		}
		for ri := 0; ri < n; ri++ {
			row := t.rows[ri]
			ok := true
			var touched []int
			for _, c := range comps[depth] {
				v := t.find(row[c])
				if acc[c] == -1 {
					acc[c] = v
					touched = append(touched, c)
				} else if acc[c] != v {
					ok = false
					break
				}
			}
			if ok {
				rec(depth+1, acc)
			}
			for _, c := range touched {
				acc[c] = -1
			}
		}
	}
	acc := make([]int, t.width)
	copy(acc, base)
	rec(0, acc)
	return added
}

// run chases the tableau with Σ's FDs and JDs to fixpoint, or until the
// tableau's budget trips; it returns the budget error, if any.
func (t *tableau) run(sigma *dep.Set, cols map[attr.ID]int) error {
	if m := cmetrics.Load(); m != nil {
		m.tableauRuns.Inc()
		defer func() {
			m.tableauFDPasses.Add(t.fdPasses)
			m.tableauJDPasses.Add(t.jdPasses)
			m.tableauRowVisits.Add(t.visits)
			m.tableauRows.Observe(float64(len(t.rows)))
		}()
	}
	fds := sigma.SplitFDs()
	jds := sigma.JDs()
	for {
		changed := t.applyFDs(fds, cols)
		for _, j := range jds {
			t.jdPasses++
			if t.applyJD(j, cols) {
				changed = true
			}
		}
		if t.err != nil {
			return t.err
		}
		if !changed {
			return nil
		}
	}
}

// colIdx maps an attribute set to column indices via cols.
func colIdx(s attr.Set, cols map[attr.ID]int) []int {
	out := make([]int, 0, s.Len())
	s.Each(func(id attr.ID) bool {
		out = append(out, cols[id])
		return true
	})
	return out
}

// columnMap assigns each attribute of u a column index, in ID order.
func columnMap(u *attr.Universe) map[attr.ID]int {
	m := make(map[attr.ID]int, u.Size())
	for i := 0; i < u.Size(); i++ {
		m[attr.ID(i)] = i
	}
	return m
}

// hasDistinguishedRow reports whether some row is distinguished on the
// given columns (i.e. equals the distinguished symbol of each column).
func (t *tableau) hasDistinguishedRow(colSet []int) bool {
	for _, row := range t.rows {
		ok := true
		for _, c := range colSet {
			if t.find(row[c]) != t.find(c) {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// ImpliesJD reports whether Σ (FDs, MVDs and JDs; EFDs are used via their
// underlying FDs, justified by Proposition 2(a)) implies the join
// dependency j, by the classical tableau chase.
func ImpliesJD(sigma *dep.Set, j dep.JD) bool {
	ok, _ := ImpliesJDBudget(nil, sigma, j)
	return ok
}

// ImpliesJDBudget is ImpliesJD under a budget: the chase charges one
// step per row examined per rule pass and aborts between passes with a
// budget.ErrExceeded-wrapping error once the budget trips.
func ImpliesJDBudget(b *budget.B, sigma *dep.Set, j dep.JD) (bool, error) {
	u := sigma.Universe()
	cols := columnMap(u)
	t := newTableau(u.Size())
	t.b = b
	for _, comp := range j.Components {
		row := make([]int, t.width)
		for c := 0; c < t.width; c++ {
			row[c] = t.fresh()
		}
		comp.Each(func(id attr.ID) bool {
			row[cols[id]] = cols[id]
			return true
		})
		t.addRow(row)
	}
	if err := t.run(sigma.WithFD(), cols); err != nil {
		return false, err
	}
	all := make([]int, t.width)
	for i := range all {
		all[i] = i
	}
	return t.hasDistinguishedRow(all), nil
}

// ImpliesMVD reports whether Σ implies the multivalued dependency m.
func ImpliesMVD(sigma *dep.Set, m dep.MVD) bool {
	return ImpliesJD(sigma, m.JD())
}

// ImpliesMVDBudget is ImpliesMVD under a budget.
func ImpliesMVDBudget(b *budget.B, sigma *dep.Set, m dep.MVD) (bool, error) {
	return ImpliesJDBudget(b, sigma, m.JD())
}

// ImpliesEmbeddedMVD reports whether Σ implies the embedded MVD
// X∩Y →→ X−Y | Y−X within X∪Y, i.e. that π_{X∪Y}(R) = π_X(R) ⋈ π_Y(R) for
// every legal R. With X∪Y = U this coincides with Σ ⊨ *[X, Y]. This is
// condition (a) of Theorem 10.
func ImpliesEmbeddedMVD(sigma *dep.Set, x, y attr.Set) bool {
	ok, _ := ImpliesEmbeddedMVDBudget(nil, sigma, x, y)
	return ok
}

// ImpliesEmbeddedMVDBudget is ImpliesEmbeddedMVD under a budget.
func ImpliesEmbeddedMVDBudget(b *budget.B, sigma *dep.Set, x, y attr.Set) (bool, error) {
	u := sigma.Universe()
	cols := columnMap(u)
	t := newTableau(u.Size())
	t.b = b
	for _, comp := range []attr.Set{x, y} {
		row := make([]int, t.width)
		for c := 0; c < t.width; c++ {
			row[c] = t.fresh()
		}
		comp.Each(func(id attr.ID) bool {
			row[cols[id]] = cols[id]
			return true
		})
		t.addRow(row)
	}
	if err := t.run(sigma.WithFD(), cols); err != nil {
		return false, err
	}
	return t.hasDistinguishedRow(colIdx(x.Union(y), cols)), nil
}

// ImpliesFD reports whether Σ (which may contain JDs) implies the
// functional dependency f, by the tableau chase.
func ImpliesFD(sigma *dep.Set, f dep.FD) bool {
	ok, _ := ImpliesFDBudget(nil, sigma, f)
	return ok
}

// ImpliesFDBudget is ImpliesFD under a budget.
func ImpliesFDBudget(b *budget.B, sigma *dep.Set, f dep.FD) (bool, error) {
	u := sigma.Universe()
	cols := columnMap(u)
	t := newTableau(u.Size())
	t.b = b
	// Row 1: all distinguished. Row 2: distinguished on f.From, fresh
	// elsewhere; remember the fresh symbols of the f.To columns.
	row1 := make([]int, t.width)
	for c := range row1 {
		row1[c] = c
	}
	t.addRow(row1)
	row2 := make([]int, t.width)
	targets := make(map[int]int) // column -> row2's fresh symbol
	for c := 0; c < t.width; c++ {
		row2[c] = t.fresh()
	}
	f.From.Each(func(id attr.ID) bool {
		row2[cols[id]] = cols[id]
		return true
	})
	f.To.Each(func(id attr.ID) bool {
		targets[cols[id]] = row2[cols[id]]
		return true
	})
	t.addRow(row2)
	if err := t.run(sigma.WithFD(), cols); err != nil {
		return false, err
	}
	for c, s := range targets {
		if t.find(s) != t.find(c) {
			return false, nil
		}
	}
	return true, nil
}

// FDOnlyImpliesMVD reports whether a set of FDs implies the MVD m, using
// the dependency-basis structure of FD-only schemas: the dependency basis
// of X consists of singletons for each attribute of X⁺ − X plus the single
// block U − X⁺. Hence X →→ Y holds iff Y − X avoids U − X⁺ entirely or
// contains all of it. Linear time; the fast path of the ablation A2.
func FDOnlyImpliesMVD(fds []dep.FD, m dep.MVD) bool {
	u := m.Universe()
	cl := closureOf(m.From, fds)
	w := u.All().Diff(cl)
	yMinusX := m.To.Diff(m.From)
	return !yMinusX.Intersects(w) || w.SubsetOf(yMinusX)
}

// closureOf is a tiny local FD closure (the full-featured one lives in
// internal/closure; chase avoids the import to keep the dependency graph a
// tree).
func closureOf(x attr.Set, fds []dep.FD) attr.Set {
	//constvet:allow budgetloop -- monotone closure over a fixed universe: each pass grows x or stops
	for changed := true; changed; {
		changed = false
		for _, f := range fds {
			if f.From.SubsetOf(x) && !f.To.SubsetOf(x) {
				x = x.Union(f.To)
				changed = true
			}
		}
	}
	return x
}
