package chase

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// chaseMetrics holds the resolved metric handles for both chase
// variants: the instance chase (Theorem 3's engine) and the tableau
// chase (Theorem 1's engine).
type chaseMetrics struct {
	instanceRuns      *obs.Counter
	instancePasses    *obs.Counter
	instanceRowVisits *obs.Counter
	instanceEquations *obs.Counter
	instanceClashes   *obs.Counter
	instanceRows      *obs.Histogram

	tableauRuns      *obs.Counter
	tableauFDPasses  *obs.Counter
	tableauJDPasses  *obs.Counter
	tableauRowVisits *obs.Counter
	tableauRows      *obs.Histogram
}

var cmetrics atomic.Pointer[chaseMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for the
// chase procedures.
func SetMetrics(s obs.Sink) {
	if s == nil {
		cmetrics.Store(nil)
		return
	}
	cmetrics.Store(&chaseMetrics{
		instanceRuns:      s.Counter("chase_instance_runs_total"),
		instancePasses:    s.Counter("chase_instance_passes_total"),
		instanceRowVisits: s.Counter("chase_instance_row_visits_total"),
		instanceEquations: s.Counter("chase_instance_equations_total"),
		instanceClashes:   s.Counter("chase_instance_clashes_total"),
		instanceRows:      s.Histogram("chase_instance_rows"),

		tableauRuns:      s.Counter("chase_tableau_runs_total"),
		tableauFDPasses:  s.Counter("chase_tableau_fd_passes_total"),
		tableauJDPasses:  s.Counter("chase_tableau_jd_passes_total"),
		tableauRowVisits: s.Counter("chase_tableau_row_visits_total"),
		tableauRows:      s.Histogram("chase_tableau_rows"),
	})
}
