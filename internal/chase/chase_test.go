package chase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func sigma(t testing.TB, u *attr.Universe, text string) *dep.Set {
	t.Helper()
	s, err := dep.ParseSet(u, text)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestImpliesMVDFromFD(t *testing.T) {
	u := attr.MustUniverse("E", "D", "M")
	s := sigma(t, u, "D -> M")
	// D -> M implies D ->> M, hence *[DM, DE].
	if !ImpliesMVD(s, dep.NewMVD(u.MustSet("D"), u.MustSet("M"))) {
		t.Error("D->M should imply D->>M")
	}
	// And the complement D ->> E.
	if !ImpliesMVD(s, dep.NewMVD(u.MustSet("D"), u.MustSet("E"))) {
		t.Error("complementation missed")
	}
	// But E ->> D does not follow.
	if ImpliesMVD(s, dep.NewMVD(u.MustSet("E"), u.MustSet("D"))) {
		t.Error("unsound MVD implication")
	}
}

func TestImpliesMVDTrivial(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	s := dep.NewSet(u)
	if !ImpliesMVD(s, dep.NewMVD(u.MustSet("A"), u.MustSet("A", "B", "C"))) {
		t.Error("trivial MVD (X∪Y=U) not implied")
	}
	if !ImpliesMVD(s, dep.NewMVD(u.MustSet("A", "B"), u.MustSet("A"))) {
		t.Error("trivial MVD (Y⊆X) not implied")
	}
	if ImpliesMVD(s, dep.NewMVD(u.MustSet("A"), u.MustSet("B"))) {
		t.Error("nontrivial MVD implied by empty Σ")
	}
}

func TestImpliesJDFromJD(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	j := dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C"))
	s := dep.NewSet(u)
	s.Add(j)
	if !ImpliesJD(s, j) {
		t.Error("JD does not imply itself")
	}
	other := dep.MustJD(u.MustSet("A", "C"), u.MustSet("B", "C"))
	if ImpliesJD(s, other) {
		t.Error("unsound JD implication")
	}
}

func TestImpliesMVDFromTernaryJD(t *testing.T) {
	// *[AB, BC, CA] does NOT imply the binary MVD B ->> A (classic).
	u := attr.MustUniverse("A", "B", "C")
	s := dep.NewSet(u)
	s.Add(dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C"), u.MustSet("C", "A")))
	if ImpliesMVD(s, dep.NewMVD(u.MustSet("B"), u.MustSet("A"))) {
		t.Error("ternary JD should not imply binary MVD")
	}
	// But together with B -> C it implies *[AB, BC]: chase the tableau.
	s.Add(dep.NewFD(u.MustSet("B"), u.MustSet("C")))
	if !ImpliesMVD(s, dep.NewMVD(u.MustSet("B"), u.MustSet("A"))) {
		t.Error("JD + FD implication missed")
	}
}

func TestImpliesFDBasic(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	s := sigma(t, u, "A -> B\nB -> C")
	if !ImpliesFD(s, dep.NewFD(u.MustSet("A"), u.MustSet("C"))) {
		t.Error("transitivity missed by tableau chase")
	}
	if ImpliesFD(s, dep.NewFD(u.MustSet("C"), u.MustSet("A"))) {
		t.Error("unsound FD implication")
	}
}

func TestImpliesFDViaJD(t *testing.T) {
	// *[AB, BC] plus B->A gives nothing new for C->A; sanity only.
	u := attr.MustUniverse("A", "B", "C")
	s := dep.NewSet(u)
	s.Add(dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C")))
	if ImpliesFD(s, dep.NewFD(u.MustSet("B"), u.MustSet("A"))) {
		t.Error("JD alone implies no FD")
	}
}

func TestImpliesEmbeddedMVD(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	// A -> B implies the embedded MVD within ABC: A ->> B | C.
	s := sigma(t, u, "A -> B")
	if !ImpliesEmbeddedMVD(s, u.MustSet("A", "B"), u.MustSet("A", "C")) {
		t.Error("embedded MVD from FD missed")
	}
	if ImpliesEmbeddedMVD(s, u.MustSet("B", "C"), u.MustSet("B", "D")) {
		t.Error("unsound embedded MVD")
	}
	// With X∪Y = U it must agree with ImpliesMVD.
	x, y := u.MustSet("A", "B"), u.MustSet("A", "C", "D")
	if ImpliesEmbeddedMVD(s, x, y) != ImpliesMVD(s, dep.NewMVD(x.Intersect(y), x)) {
		t.Error("embedded and full MVD disagree when X∪Y=U")
	}
}

func TestFDOnlyImpliesMVDExamples(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	fds := []dep.FD{dep.NewFD(u.MustSet("A"), u.MustSet("B"))}
	// A ->> B: yes (from A -> B).
	if !FDOnlyImpliesMVD(fds, dep.NewMVD(u.MustSet("A"), u.MustSet("B"))) {
		t.Error("A->>B missed")
	}
	// A ->> CD: yes (complement).
	if !FDOnlyImpliesMVD(fds, dep.NewMVD(u.MustSet("A"), u.MustSet("C", "D"))) {
		t.Error("A->>CD missed")
	}
	// A ->> C: no.
	if FDOnlyImpliesMVD(fds, dep.NewMVD(u.MustSet("A"), u.MustSet("C"))) {
		t.Error("A->>C unsound")
	}
}

// randomFDSet builds a dep.Set of k random FDs.
func randomFDSet(u *attr.Universe, rng *rand.Rand, k int) *dep.Set {
	s := dep.NewSet(u)
	for i := 0; i < k; i++ {
		lhs, rhs := u.Empty(), u.Empty()
		for a := 0; a < u.Size(); a++ {
			switch rng.Intn(3) {
			case 0:
				lhs = lhs.With(attr.ID(a))
			case 1:
				rhs = rhs.With(attr.ID(a))
			}
		}
		if lhs.IsEmpty() || rhs.IsEmpty() {
			continue
		}
		s.Add(dep.NewFD(lhs, rhs))
	}
	return s
}

func randomMVD(u *attr.Universe, rng *rand.Rand) dep.MVD {
	x, y := u.Empty(), u.Empty()
	for a := 0; a < u.Size(); a++ {
		switch rng.Intn(3) {
		case 0:
			x = x.With(attr.ID(a))
		case 1:
			y = y.With(attr.ID(a))
		}
	}
	return dep.NewMVD(x, y)
}

func TestQuickFDOnlyFastPathAgreesWithTableau(t *testing.T) {
	// Ablation A2 invariant: the dependency-basis shortcut and the tableau
	// chase agree on FD-only schemas.
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomFDSet(u, rng, 1+rng.Intn(4))
		m := randomMVD(u, rng)
		return FDOnlyImpliesMVD(s.FDs(), m) == ImpliesMVD(s, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestQuickMVDImplicationSoundOnInstances(t *testing.T) {
	// If Σ ⊨ m, then every generated instance satisfying Σ satisfies m.
	u := attr.MustUniverse("A", "B", "C", "D")
	syms := value.NewSymbols()
	vals := syms.Ints(2)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := randomFDSet(u, rng, 1+rng.Intn(3))
		m := randomMVD(u, rng)
		if !ImpliesMVD(s, m) {
			return true // nothing to check
		}
		// Enumerate all relations over a 2-value domain with ≤ 3 tuples
		// satisfying Σ and check m. 16 possible tuples.
		all := make([]relation.Tuple, 0, 16)
		for a := 0; a < 2; a++ {
			for b := 0; b < 2; b++ {
				for c := 0; c < 2; c++ {
					for d := 0; d < 2; d++ {
						all = append(all, relation.Tuple{vals[a], vals[b], vals[c], vals[d]})
					}
				}
			}
		}
		for trial := 0; trial < 30; trial++ {
			r := relation.New(u.All())
			for i := 0; i < 3; i++ {
				r.Insert(all[rng.Intn(len(all))].Clone())
			}
			if ok, _ := r.SatisfiesAll(s); !ok {
				continue
			}
			if !r.SatisfiesMVD(m) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// --- instance chase ---

// nullsFor builds a relation over U from a view instance: X columns from
// the rows, Y−X columns fresh nulls.
func padWithNulls(v *relation.Relation, u *attr.Universe, gen *value.NullGen) *relation.Relation {
	out := relation.New(u.All())
	for _, t := range v.Tuples() {
		nt := make(relation.Tuple, u.Size())
		for c := 0; c < u.Size(); c++ {
			if vc := v.Col(attr.ID(c)); vc >= 0 {
				nt[c] = t[vc]
			} else {
				nt[c] = gen.Fresh()
			}
		}
		out.Insert(nt)
	}
	return out
}

func TestInstanceChaseEquatesNulls(t *testing.T) {
	u := attr.MustUniverse("E", "D", "M")
	syms := value.NewSymbols()
	v := relation.New(u.MustSet("E", "D"))
	v.InsertVals(syms.Const("ed"), syms.Const("toys"))
	v.InsertVals(syms.Const("flo"), syms.Const("toys"))
	var gen value.NullGen
	r := padWithNulls(v, u, &gen)
	fds := []dep.FD{dep.NewFD(u.MustSet("D"), u.MustSet("M"))}
	res := Instance(r, fds)
	if res.ConstClash() {
		t.Fatal("unexpected clash")
	}
	// Both M nulls must be equated (same D).
	ts := res.Relation().Tuples()
	mcol := res.Relation().Col(mustID(u, "M"))
	if ts[0][mcol] != ts[1][mcol] {
		t.Error("M nulls not equated despite D -> M")
	}
}

func mustID(u *attr.Universe, n string) attr.ID {
	id, ok := u.Lookup(n)
	if !ok {
		panic(n)
	}
	return id
}

func TestInstanceChaseConstClash(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("1"), syms.Const("x"))
	r.InsertVals(syms.Const("1"), syms.Const("y"))
	fds := []dep.FD{dep.NewFD(u.MustSet("A"), u.MustSet("B"))}
	res := Instance(r, fds)
	if !res.ConstClash() {
		t.Error("clash not detected")
	}
}

func TestInstanceChaseNullConstMerge(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	var gen value.NullGen
	n := gen.Fresh()
	r := relation.New(u.All())
	x := syms.Const("x")
	r.InsertVals(syms.Const("1"), x)
	r.InsertVals(syms.Const("1"), n)
	fds := []dep.FD{dep.NewFD(u.MustSet("A"), u.MustSet("B"))}
	res := Instance(r, fds)
	if res.ConstClash() {
		t.Fatal("unexpected clash")
	}
	if res.Find(n) != x {
		t.Error("null not resolved to constant")
	}
	if !res.Same(n, x) {
		t.Error("Same(n, x) = false")
	}
	if res.Relation().Len() != 1 {
		t.Error("chased relation not deduped")
	}
}

func TestInstanceChaseTransitive(t *testing.T) {
	// A->B, B->C chains through nulls.
	u := attr.MustUniverse("A", "B", "C")
	syms := value.NewSymbols()
	var gen value.NullGen
	b1, b2 := gen.Fresh(), gen.Fresh()
	c1, c2 := gen.Fresh(), gen.Fresh()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("1"), b1, c1)
	r.InsertVals(syms.Const("1"), b2, c2)
	fds := []dep.FD{
		dep.NewFD(u.MustSet("A"), u.MustSet("B")),
		dep.NewFD(u.MustSet("B"), u.MustSet("C")),
	}
	res := Instance(r, fds)
	if !res.Same(b1, b2) || !res.Same(c1, c2) {
		t.Error("transitive equating failed")
	}
}

func TestQuickInstanceImplementationsAgree(t *testing.T) {
	// A1 ablation invariant: hash-based and sort-based chases agree on
	// clash and on the canonical relation.
	u := attr.MustUniverse("A", "B", "C", "D")
	syms := value.NewSymbols()
	vals := syms.Ints(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var gen value.NullGen
		r := relation.New(u.All())
		for i := 0; i < 6; i++ {
			t := make(relation.Tuple, 4)
			for c := 0; c < 4; c++ {
				if rng.Intn(2) == 0 {
					t[c] = vals[rng.Intn(3)]
				} else {
					t[c] = gen.Fresh()
				}
			}
			r.Insert(t)
		}
		var fds []dep.FD
		for i := 0; i < 1+rng.Intn(3); i++ {
			lhs, rhs := u.Empty(), u.Empty()
			for a := 0; a < 4; a++ {
				switch rng.Intn(3) {
				case 0:
					lhs = lhs.With(attr.ID(a))
				case 1:
					rhs = rhs.With(attr.ID(a))
				}
			}
			if lhs.IsEmpty() || rhs.IsEmpty() {
				continue
			}
			fds = append(fds, dep.NewFD(lhs, rhs))
		}
		h := Instance(r, fds)
		s := InstanceSortBased(r, fds)
		if h.ConstClash() != s.ConstClash() {
			return false
		}
		if h.ConstClash() {
			return true
		}
		// Canonical relations must be isomorphic; compare constant
		// positions and the partition structure via FD satisfaction.
		hr, sr := h.Relation(), s.Relation()
		if hr.Len() != sr.Len() {
			return false
		}
		for _, f := range fds {
			if hr.SatisfiesFD(f) != sr.SatisfiesFD(f) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickInstanceChaseIsFixpoint(t *testing.T) {
	// After the chase, the canonical relation satisfies all FDs whose
	// violations involve at least one null (i.e. chasing again changes
	// nothing).
	u := attr.MustUniverse("A", "B", "C")
	syms := value.NewSymbols()
	vals := syms.Ints(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var gen value.NullGen
		r := relation.New(u.All())
		for i := 0; i < 5; i++ {
			t := make(relation.Tuple, 3)
			for c := 0; c < 3; c++ {
				if rng.Intn(2) == 0 {
					t[c] = vals[rng.Intn(3)]
				} else {
					t[c] = gen.Fresh()
				}
			}
			r.Insert(t)
		}
		fds := []dep.FD{
			dep.NewFD(u.MustSet("A"), u.MustSet("B")),
			dep.NewFD(u.MustSet("B"), u.MustSet("C")),
		}
		res := Instance(r, fds)
		if res.ConstClash() {
			return true
		}
		again := Instance(res.Relation(), fds)
		if again.ConstClash() {
			return false
		}
		return again.Relation().Equal(res.Relation())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestTableauRowCapPanics(t *testing.T) {
	// Construct a tableau directly and overfill it.
	tb := newTableau(1)
	defer func() {
		if recover() == nil {
			t.Error("no panic at row cap")
		}
	}()
	for i := 0; ; i++ {
		row := []int{tb.fresh()}
		tb.addRow(row)
	}
}
