package chase

import (
	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Prepared indexes a chased relation (a fixpoint of Instance) so that
// additional equalities can be imposed incrementally: instead of
// rebuilding and re-chasing the whole relation per imposition —
// O(|Σ|·|R|) even when nothing fires — an Overlay propagates only from
// the rows that actually contain a changed value. This is the engine
// behind the exact test's per-candidate impositions (ablation A5).
type Prepared struct {
	rel *relation.Relation
	// plans[i] holds the Z and A column indexes of fds[i].
	plans [][2][]int
	// buckets[i] maps the base Z-key of fds[i] to a representative row.
	// In a fixpoint, all rows of a bucket agree on the A columns.
	buckets []map[string]int
	// valueRows maps each value to the rows containing it.
	valueRows map[value.Value][]int
}

// Prepare indexes rel, which must be a chase fixpoint with canonical
// values (as produced by Result.Relation()). fds must be the FD set the
// fixpoint was computed under.
func Prepare(rel *relation.Relation, fds []dep.FD) *Prepared {
	p := &Prepared{rel: rel, valueRows: make(map[value.Value][]int)}
	for _, f := range fds {
		var zc, ac []int
		f.From.Each(func(id attr.ID) bool { zc = append(zc, rel.Col(id)); return true })
		f.To.Each(func(id attr.ID) bool { ac = append(ac, rel.Col(id)); return true })
		p.plans = append(p.plans, [2][]int{zc, ac})
	}
	p.buckets = make([]map[string]int, len(p.plans))
	for fi, plan := range p.plans {
		m := make(map[string]int, rel.Len())
		for ri, row := range rel.Tuples() {
			k := keyOf(row, plan[0], nil)
			if _, ok := m[k]; !ok {
				m[k] = ri
			}
		}
		p.buckets[fi] = m
	}
	for ri, row := range rel.Tuples() {
		seen := map[value.Value]bool{}
		for _, v := range row {
			if !seen[v] {
				seen[v] = true
				p.valueRows[v] = append(p.valueRows[v], ri)
			}
		}
	}
	return p
}

// keyOf serializes the resolved values of the given columns.
func keyOf(row relation.Tuple, cols []int, ov *Overlay) string {
	b := make([]byte, 0, len(cols)*8)
	for _, c := range cols {
		v := row[c]
		if ov != nil {
			v = ov.findBase(v)
		}
		u := uint64(v)
		for i := 0; i < 8; i++ {
			b = append(b, byte(u>>(8*i)))
		}
	}
	return string(b)
}

// Overlay is the result of imposing equalities on a Prepared fixpoint:
// a union-find layered over the base values, closed under the FDs.
type Overlay struct {
	p       *Prepared
	parent  map[value.Value]value.Value
	members map[value.Value][]value.Value
	clash   bool
	// overlayBuckets[fi] maps overlay Z-keys discovered during
	// propagation to a representative row.
	overlayBuckets []map[string]int
}

// WithEqualities imposes the given value pairs (over the base relation's
// canonical values) and propagates the FDs to a new fixpoint. The
// receiver is not modified; each call returns an independent overlay.
func (p *Prepared) WithEqualities(pairs [][2]value.Value) *Overlay {
	ov := &Overlay{
		p:              p,
		parent:         make(map[value.Value]value.Value),
		members:        make(map[value.Value][]value.Value),
		overlayBuckets: make([]map[string]int, len(p.plans)),
	}
	for i := range ov.overlayBuckets {
		ov.overlayBuckets[i] = make(map[string]int)
	}
	var queue []value.Value
	for _, pr := range pairs {
		if loser, changed := ov.union(pr[0], pr[1]); changed {
			queue = append(queue, loser)
		}
		if ov.clash {
			return ov
		}
	}
	for len(queue) > 0 {
		loser := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Rows containing any member of the loser's (pre-merge) class.
		rows := map[int]bool{}
		for _, v := range ov.classMembers(loser) {
			for _, ri := range p.valueRows[v] {
				rows[ri] = true
			}
		}
		for ri := range rows {
			row := p.rel.Tuple(ri)
			for fi, plan := range p.plans {
				k := keyOf(row, plan[0], ov)
				other, ok := ov.overlayBuckets[fi][k]
				if !ok {
					// Fall back to the base bucket, validating that its
					// representative still has this overlay key.
					if base, ok2 := p.buckets[fi][k]; ok2 &&
						keyOf(p.rel.Tuple(base), plan[0], ov) == k {
						other = base
						ok = true
					}
				}
				if !ok {
					ov.overlayBuckets[fi][k] = ri
					continue
				}
				if other == ri {
					continue
				}
				otherRow := p.rel.Tuple(other)
				for _, c := range plan[1] {
					if l, changed := ov.union(row[c], otherRow[c]); changed {
						queue = append(queue, l)
					}
					if ov.clash {
						return ov
					}
				}
			}
		}
	}
	return ov
}

// classMembers returns the base values currently in v's class (including
// v itself).
func (ov *Overlay) classMembers(v value.Value) []value.Value {
	r := ov.findBase(v)
	out := append([]value.Value{r}, ov.members[r]...)
	return out
}

// findBase resolves a base-canonical value through the overlay.
func (ov *Overlay) findBase(v value.Value) value.Value {
	for {
		n, ok := ov.parent[v]
		if !ok {
			return v
		}
		v = n
	}
}

// union merges the overlay classes of a and b. It reports the losing
// representative and whether a merge happened; a constant/constant merge
// sets the clash flag instead.
func (ov *Overlay) union(a, b value.Value) (value.Value, bool) {
	ra, rb := ov.findBase(a), ov.findBase(b)
	if ra == rb {
		return 0, false
	}
	if ra.IsConst() && rb.IsConst() {
		ov.clash = true
		return 0, false
	}
	if rb.IsConst() || (!ra.IsConst() && rb > ra) {
		ra, rb = rb, ra
	}
	ov.parent[rb] = ra
	ov.members[ra] = append(ov.members[ra], rb)
	ov.members[ra] = append(ov.members[ra], ov.members[rb]...)
	delete(ov.members, rb)
	return rb, true
}

// ConstClash reports whether the imposition forced two distinct constants
// equal.
func (ov *Overlay) ConstClash() bool { return ov.clash }

// Same reports whether two values (given in base-canonical form) are
// equal under the overlay.
func (ov *Overlay) Same(a, b value.Value) bool {
	return ov.findBase(a) == ov.findBase(b)
}
