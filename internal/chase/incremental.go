package chase

import (
	"sort"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Prepared indexes a chased relation (a fixpoint of Instance) so that
// additional equalities can be imposed incrementally: instead of
// rebuilding and re-chasing the whole relation per imposition —
// O(|Σ|·|R|) even when nothing fires — an Overlay propagates only from
// the rows that actually contain a changed value. This is the engine
// behind the exact test's per-candidate impositions (ablation A5).
type Prepared struct {
	rel *relation.Relation
	// plans[i] holds the Z and A column indexes of fds[i].
	plans [][2][]int
	// baseBuckets[i]/baseNext[i] chain one representative row per
	// distinct base Z-key of fds[i], keyed by the Z-key hash. In a
	// fixpoint, all rows with a chained row's Z-key agree on A.
	baseBuckets []*bucketTable
	baseNext    [][]int
	// valueRows maps each value to the rows containing it.
	valueRows map[value.Value][]int
}

// Plans holds the per-FD Z and A column indexes of a Prepared, resolved
// against a relation's column layout. The layout of a relation is a
// pure function of its attribute set (columns ascend by attribute ID),
// so Plans computed once against any relation over the same attributes
// are valid for every other — callers that prepare many fixpoints over
// one schema can compute the plans once and reuse them via
// PrepareWithPlans.
type Plans [][2][]int

// PlanFDs computes the column plans of fds against rel's layout.
func PlanFDs(rel *relation.Relation, fds []dep.FD) Plans {
	plans := make(Plans, 0, len(fds))
	for _, f := range fds {
		var zc, ac []int
		f.From.Each(func(id attr.ID) bool { zc = append(zc, rel.Col(id)); return true })
		f.To.Each(func(id attr.ID) bool { ac = append(ac, rel.Col(id)); return true })
		plans = append(plans, [2][]int{zc, ac})
	}
	return plans
}

// Prepare indexes rel, which must be a chase fixpoint with canonical
// values (as produced by Result.Relation()). fds must be the FD set the
// fixpoint was computed under.
func Prepare(rel *relation.Relation, fds []dep.FD) *Prepared {
	return PrepareWithPlans(rel, fds, PlanFDs(rel, fds))
}

// PrepareWithPlans is Prepare with the column plans precomputed (see
// Plans); plans must have been computed for fds over a relation with
// rel's attribute set.
func PrepareWithPlans(rel *relation.Relation, fds []dep.FD, plans Plans) *Prepared {
	p := &Prepared{rel: rel, plans: plans, valueRows: make(map[value.Value][]int)}
	p.baseBuckets = make([]*bucketTable, len(p.plans))
	p.baseNext = make([][]int, len(p.plans))
	for fi, plan := range p.plans {
		bt := newBucketTable(rel.Len())
		nx := make([]int, rel.Len())
		for ri, row := range rel.Tuples() {
			h := zHash(row, plan[0], nil)
			dup := false
			for j := bt.get(h); j >= 0; j = nx[j] {
				if zEqual(rel.Tuple(j), row, plan[0], nil) {
					dup = true
					break
				}
			}
			if !dup {
				nx[ri] = bt.put(h, ri)
			}
		}
		p.baseBuckets[fi] = bt
		p.baseNext[fi] = nx
	}
	for ri, row := range rel.Tuples() {
		seen := map[value.Value]bool{}
		for _, v := range row {
			if !seen[v] {
				seen[v] = true
				p.valueRows[v] = append(p.valueRows[v], ri)
			}
		}
	}
	return p
}

// zHash hashes the given columns of a row, resolving each value through
// the overlay when ov is non-nil.
func zHash(row relation.Tuple, cols []int, ov *Overlay) uint64 {
	h := uint64(hashSeed)
	for _, c := range cols {
		v := row[c]
		if ov != nil {
			v = ov.findBase(v)
		}
		h = hashVal(h, uint64(v))
	}
	return hashMix(h)
}

// zEqual compares two rows on the given columns, resolving through the
// overlay when ov is non-nil.
func zEqual(a, b relation.Tuple, cols []int, ov *Overlay) bool {
	for _, c := range cols {
		va, vb := a[c], b[c]
		if ov != nil {
			va, vb = ov.findBase(va), ov.findBase(vb)
		}
		if va != vb {
			return false
		}
	}
	return true
}

// Overlay is the result of imposing equalities on a Prepared fixpoint:
// a union-find layered over the base values, closed under the FDs.
type Overlay struct {
	p       *Prepared
	parent  map[value.Value]value.Value
	members map[value.Value][]value.Value
	clash   bool
	// overlayBuckets[fi] maps overlay Z-key hashes discovered during
	// propagation to representative rows (one per distinct key; a list
	// because distinct keys can share a hash).
	overlayBuckets []map[uint64][]int
}

// WithEqualities imposes the given value pairs (over the base relation's
// canonical values) and propagates the FDs to a new fixpoint. The
// receiver is not modified; each call returns an independent overlay.
func (p *Prepared) WithEqualities(pairs [][2]value.Value) *Overlay {
	ov := &Overlay{
		p:              p,
		parent:         make(map[value.Value]value.Value),
		members:        make(map[value.Value][]value.Value),
		overlayBuckets: make([]map[uint64][]int, len(p.plans)),
	}
	for i := range ov.overlayBuckets {
		ov.overlayBuckets[i] = make(map[uint64][]int)
	}
	var queue []value.Value
	for _, pr := range pairs {
		if loser, changed := ov.union(pr[0], pr[1]); changed {
			queue = append(queue, loser)
		}
		if ov.clash {
			return ov
		}
	}
	//constvet:allow budgetloop -- each pop merges two classes or re-derives nothing; pushes are bounded by the number of merges, which is bounded by the number of distinct values
	for len(queue) > 0 {
		loser := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Rows containing any member of the loser's (pre-merge) class.
		// Visited in sorted order: iteration feeds ov.union, and the
		// merge order decides class representatives and members order.
		rows := map[int]bool{}
		for _, v := range ov.classMembers(loser) {
			for _, ri := range p.valueRows[v] {
				rows[ri] = true
			}
		}
		order := make([]int, 0, len(rows))
		for ri := range rows {
			order = append(order, ri)
		}
		sort.Ints(order)
		for _, ri := range order {
			row := p.rel.Tuple(ri)
			for fi, plan := range p.plans {
				h := zHash(row, plan[0], ov)
				other := -1
				for _, cand := range ov.overlayBuckets[fi][h] {
					if zEqual(p.rel.Tuple(cand), row, plan[0], ov) {
						other = cand
						break
					}
				}
				if other < 0 {
					// Fall back to the base chains: a representative whose
					// resolved key equals this row's (verified, so it does
					// not matter that chains are keyed by base hashes).
					nx := p.baseNext[fi]
					for j := p.baseBuckets[fi].get(h); j >= 0; j = nx[j] {
						if zEqual(p.rel.Tuple(j), row, plan[0], ov) {
							other = j
							break
						}
					}
				}
				if other < 0 {
					ov.overlayBuckets[fi][h] = append(ov.overlayBuckets[fi][h], ri)
					continue
				}
				if other == ri {
					continue
				}
				otherRow := p.rel.Tuple(other)
				for _, c := range plan[1] {
					if l, changed := ov.union(row[c], otherRow[c]); changed {
						queue = append(queue, l)
					}
					if ov.clash {
						return ov
					}
				}
			}
		}
	}
	return ov
}

// classMembers returns the base values currently in v's class (including
// v itself).
func (ov *Overlay) classMembers(v value.Value) []value.Value {
	r := ov.findBase(v)
	out := append([]value.Value{r}, ov.members[r]...)
	return out
}

// findBase resolves a base-canonical value through the overlay.
func (ov *Overlay) findBase(v value.Value) value.Value {
	for {
		n, ok := ov.parent[v]
		if !ok {
			return v
		}
		v = n
	}
}

// union merges the overlay classes of a and b. It reports the losing
// representative and whether a merge happened; a constant/constant merge
// sets the clash flag instead.
func (ov *Overlay) union(a, b value.Value) (value.Value, bool) {
	ra, rb := ov.findBase(a), ov.findBase(b)
	if ra == rb {
		return 0, false
	}
	if ra.IsConst() && rb.IsConst() {
		ov.clash = true
		return 0, false
	}
	if rb.IsConst() || (!ra.IsConst() && rb > ra) {
		ra, rb = rb, ra
	}
	ov.parent[rb] = ra
	ov.members[ra] = append(ov.members[ra], rb)
	ov.members[ra] = append(ov.members[ra], ov.members[rb]...)
	delete(ov.members, rb)
	return rb, true
}

// ConstClash reports whether the imposition forced two distinct constants
// equal.
func (ov *Overlay) ConstClash() bool { return ov.clash }

// Same reports whether two values (given in base-canonical form) are
// equal under the overlay.
func (ov *Overlay) Same(a, b value.Value) bool {
	return ov.findBase(a) == ov.findBase(b)
}
