package chase

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// maintainedFixture is a random schema plus a generator of raw rows with
// per-row fresh nulls (the Maintained precondition).
type maintainedFixture struct {
	u     *attr.Universe
	fds   []dep.FD
	plans Plans
	rel   *relation.Relation // empty template for layout
	gen   value.NullGen
	next  int64 // unique constant for column 0
	rng   *rand.Rand
}

func newMaintainedFixture(rng *rand.Rand, w, nfds int) *maintainedFixture {
	names := make([]string, w)
	for i := range names {
		names[i] = fmt.Sprintf("A%02d", i)
	}
	u := attr.MustUniverse(names...)
	var fds []dep.FD
	for len(fds) < nfds {
		lhs, rhs := u.Empty(), u.Empty()
		for a := 0; a < w; a++ {
			switch rng.Intn(3) {
			case 0:
				lhs = lhs.With(attr.ID(a))
			case 1:
				rhs = rhs.With(attr.ID(a))
			}
		}
		rhs = rhs.Diff(lhs)
		if lhs.IsEmpty() || rhs.IsEmpty() {
			continue
		}
		// Split to single-attribute RHS, as core's artifacts do.
		for _, id := range rhs.IDs() {
			fds = append(fds, dep.NewFD(lhs, u.Empty().With(id)))
		}
	}
	rel := relation.New(u.All())
	return &maintainedFixture{
		u: u, fds: fds, plans: PlanFDs(rel, fds), rel: rel, rng: rng,
	}
}

// row builds a random raw row: column 0 is a unique constant (so rows
// are distinct), other columns draw a small-domain constant or a fresh
// null.
func (fx *maintainedFixture) row() relation.Tuple {
	w := fx.u.Size()
	t := make(relation.Tuple, w)
	t[0] = value.Value(1000 + fx.next)
	fx.next++
	for c := 1; c < w; c++ {
		if fx.rng.Intn(2) == 0 {
			t[c] = value.Value(fx.rng.Intn(4))
		} else {
			t[c] = fx.gen.Fresh()
		}
	}
	return t
}

// batchChase runs the batch chase over the given raw rows.
func (fx *maintainedFixture) batchChase(rows []relation.Tuple) *Result {
	r := relation.New(fx.u.All())
	for _, t := range rows {
		r.Insert(t)
	}
	return Instance(r, fx.fds)
}

// checkAgainstBatch asserts that the maintained fixpoint resolves every
// value of the live rows exactly as a fresh batch chase would (canonical
// representatives are order-independent, see the Maintained doc).
func checkAgainstBatch(t *testing.T, fx *maintainedFixture, m *Maintained, live map[int]relation.Tuple) {
	t.Helper()
	rows := make([]relation.Tuple, 0, len(live))
	for _, row := range live {
		rows = append(rows, row)
	}
	res := fx.batchChase(rows)
	if m.ConstClash() != res.ConstClash() {
		t.Fatalf("clash mismatch: maintained=%v batch=%v", m.ConstClash(), res.ConstClash())
	}
	if m.ConstClash() {
		return
	}
	for _, row := range rows {
		for _, v := range row {
			if got, want := m.Find(v), res.Find(v); got != want {
				t.Fatalf("Find(%v): maintained=%v batch=%v", v, got, want)
			}
		}
	}
}

func TestMaintainedMatchesBatchChase(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			fx := newMaintainedFixture(rng, 3+rng.Intn(2), 3+rng.Intn(3))
			m := NewMaintained(fx.plans)
			live := map[int]relation.Tuple{}
			var ids []int
			for step := 0; step < 60; step++ {
				if len(ids) == 0 || rng.Intn(3) != 0 {
					row := fx.row()
					id := m.AddRow(row)
					live[id] = row
					ids = append(ids, id)
				} else {
					k := rng.Intn(len(ids))
					id := ids[k]
					ids = append(ids[:k], ids[k+1:]...)
					delete(live, id)
					m.RemoveRow(id)
				}
				if m.ConstClash() {
					// Latched: verify parity once and stop this stream.
					checkAgainstBatch(t, fx, m, live)
					return
				}
				checkAgainstBatch(t, fx, m, live)
			}
			if m.Alive() != len(live) {
				t.Fatalf("alive=%d want %d", m.Alive(), len(live))
			}
		})
	}
}

func TestMaintainedConstClash(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	fds := []dep.FD{dep.NewFD(u.MustSet("A"), u.MustSet("B"))}
	plans := PlanFDs(relation.New(u.All()), fds)
	m := NewMaintained(plans)
	m.AddRow(relation.Tuple{0, 1})
	if m.ConstClash() {
		t.Fatal("unexpected clash")
	}
	m.AddRow(relation.Tuple{0, 2})
	if !m.ConstClash() {
		t.Fatal("expected const/const clash")
	}
}

// TestMaintainedRemoveRestoresComponent checks the removal re-chase: a
// merge derived only through a removed row must disappear.
func TestMaintainedRemoveRestoresComponent(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	fds := []dep.FD{dep.NewFD(u.MustSet("A"), u.MustSet("B"))}
	plans := PlanFDs(relation.New(u.All()), fds)
	m := NewMaintained(plans)
	var gen value.NullGen
	n0, n1 := gen.Fresh(), gen.Fresh()
	id0 := m.AddRow(relation.Tuple{7, n0})
	m.AddRow(relation.Tuple{7, n1})
	if m.Find(n0) != m.Find(n1) {
		t.Fatal("expected n0 ≡ n1 via shared A")
	}
	m.RemoveRow(id0)
	if m.Find(n1) != n1 {
		t.Fatalf("n1 should be its own class after removal, got %v", m.Find(n1))
	}
	if m.Find(n0) != n0 {
		t.Fatalf("removed row's null should be reset, got %v", m.Find(n0))
	}
	if m.Alive() != 1 {
		t.Fatalf("alive=%d want 1", m.Alive())
	}
}

// TestMOverlayMatchesOverlay cross-checks the maintained overlay against
// the batch-prepared Overlay on identical fixpoints and impositions.
func TestMOverlayMatchesOverlay(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			rng := rand.New(rand.NewSource(100 + seed))
			fx := newMaintainedFixture(rng, 4, 4)
			m := NewMaintained(fx.plans)
			var rows []relation.Tuple
			for i := 0; i < 16; i++ {
				row := fx.row()
				rows = append(rows, row)
				m.AddRow(row)
			}
			if m.ConstClash() {
				t.Skip("fixpoint clashed; covered elsewhere")
			}
			res := fx.batchChase(rows)
			prep := Prepare(res.Relation(), fx.fds)
			// Collect the canonical values in play.
			var canon []value.Value
			seen := map[value.Value]bool{}
			for _, row := range rows {
				for _, v := range row {
					cv := res.Find(v)
					if !seen[cv] {
						seen[cv] = true
						canon = append(canon, cv)
					}
				}
			}
			for trial := 0; trial < 20; trial++ {
				var pairs [][2]value.Value
				for k := 0; k < 1+rng.Intn(2); k++ {
					a := canon[rng.Intn(len(canon))]
					b := canon[rng.Intn(len(canon))]
					pairs = append(pairs, [2]value.Value{a, b})
				}
				mov := m.WithEqualities(pairs)
				bov := prep.WithEqualities(pairs)
				if mov.ConstClash() != bov.ConstClash() {
					t.Fatalf("trial %d: clash mismatch maintained=%v batch=%v (pairs %v)",
						trial, mov.ConstClash(), bov.ConstClash(), pairs)
				}
				if mov.ConstClash() {
					continue
				}
				for i := 0; i < len(canon); i++ {
					for j := i + 1; j < len(canon); j++ {
						if mov.Same(canon[i], canon[j]) != bov.Same(canon[i], canon[j]) {
							t.Fatalf("trial %d: Same(%v,%v) mismatch", trial, canon[i], canon[j])
						}
					}
				}
			}
		})
	}
}
