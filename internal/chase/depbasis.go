package chase

import (
	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
)

// DependencyBasis computes the dependency basis DEP(X) of an attribute
// set with respect to a set of FDs and MVDs, by Beeri's splitting
// algorithm: start from the single block U − X and repeatedly split a
// block b by an MVD W →→ Z (FDs weakened to MVDs) whenever W is disjoint
// from b and Z cuts b properly. The result partitions U − X into the
// minimal blocks such that X →→ S holds for every union S of blocks.
//
// Soundness is immediate (each split applies a derivable MVD restricted
// to the block); completeness for MVD implication over FD+MVD sets is
// property-tested against the tableau chase in the package tests
// (TestQuickDependencyBasisMatchesTableau).
func DependencyBasis(x attr.Set, sigma *dep.Set) []attr.Set {
	u := x.Universe()
	// Collect the MVD views of Σ: MVDs as given, FDs weakened per
	// right-hand attribute.
	type rule struct{ w, z attr.Set }
	var rules []rule
	for _, m := range sigma.MVDs() {
		rules = append(rules, rule{m.From, m.To.Diff(m.From)})
	}
	for _, f := range sigma.FDs() {
		f.To.Each(func(a attr.ID) bool {
			rules = append(rules, rule{f.From, u.Empty().With(a)})
			return true
		})
	}
	blocks := []attr.Set{u.All().Diff(x)}
	if blocks[0].IsEmpty() {
		return nil
	}
	//constvet:allow budgetloop -- monotone block refinement: each pass splits a block or stops, bounded by the universe size
	for changed := true; changed; {
		changed = false
		for _, r := range rules {
			for i := 0; i < len(blocks); i++ {
				b := blocks[i]
				if b.Intersects(r.w) {
					continue
				}
				in := b.Intersect(r.z)
				if in.IsEmpty() || in.Equal(b) {
					continue
				}
				blocks[i] = in
				blocks = append(blocks, b.Diff(r.z))
				changed = true
			}
		}
	}
	attr.SortSets(blocks)
	return blocks
}

// BasisImpliesMVD decides Σ ⊨ X →→ Y via the dependency basis: the MVD
// holds iff Y − X is a union of DEP(X) blocks. Fast path for FD+MVD
// schemas; agreement with the tableau chase is property-tested.
func BasisImpliesMVD(sigma *dep.Set, m dep.MVD) bool {
	rest := m.To.Diff(m.From)
	for _, b := range DependencyBasis(m.From, sigma) {
		if b.Intersects(rest) && !b.SubsetOf(rest) {
			return false
		}
	}
	return true
}
