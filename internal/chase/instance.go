package chase

import (
	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Result is the outcome of chasing a relation with labeled nulls under a
// set of FDs. It answers which symbols were equated and whether the chase
// derived a contradiction (equated two distinct constants).
//
// In the paper's Theorem 3 vocabulary, the chase of R(V, t, r, f)
// "succeeds" when it equates two distinct elements of V (a constant
// clash) or equates the designated pair r[A], μ[A]; callers express that
// as res.ConstClash() || res.Same(rA, muA).
type Result struct {
	clash  bool
	parent map[value.Value]value.Value
	rel    *relation.Relation
}

// ConstClash reports whether the chase attempted to equate two distinct
// constants. When true, no legal instance matches the chased pattern.
func (r *Result) ConstClash() bool { return r.clash }

// Find returns the representative of v after the chase: a constant if v
// was equated (directly or transitively) with one, otherwise the
// least-index null of its class.
func (r *Result) Find(v value.Value) value.Value {
	root := v
	for {
		p, ok := r.parent[root]
		if !ok || p == root {
			break
		}
		root = p
	}
	// Path compression for subsequent queries.
	for v != root {
		next := r.parent[v]
		r.parent[v] = root
		v = next
	}
	return root
}

// Same reports whether the chase equated a and b.
func (r *Result) Same(a, b value.Value) bool { return r.Find(a) == r.Find(b) }

// Relation returns the chased relation: every symbol replaced by its
// representative, duplicate rows removed. It is nil if the chase clashed.
func (r *Result) Relation() *relation.Relation { return r.rel }

// union merges the classes of a and b, preferring constants (and, among
// constants, failing on distinctness; among nulls, the smaller index) as
// representative. Reports whether a merge happened.
func (r *Result) union(a, b value.Value) bool {
	ra, rb := r.Find(a), r.Find(b)
	if ra == rb {
		return false
	}
	if ra.IsConst() && rb.IsConst() {
		r.clash = true
		return false
	}
	// Constant wins; otherwise smaller null index wins.
	if rb.IsConst() || (!ra.IsConst() && rb > ra) {
		ra, rb = rb, ra
	}
	r.parent[rb] = ra
	return true
}

// Instance chases rel with the functional dependencies fds using
// hash-bucket passes over a union-find, and returns the Result. rel is not
// modified. FDs may have multi-attribute right-hand sides.
//
// The fixpoint is reached when a full pass over all FDs produces no new
// equation; each pass costs O(|Σ| · |rel|) hash operations and the number
// of passes is bounded by the number of nulls, matching the
// O(|V|²·|Σ|·|Y−X|) symbol-elimination argument of the paper's Corollary
// (each productive pass retires at least one symbol).
func Instance(rel *relation.Relation, fds []dep.FD) *Result {
	res, _ := InstanceBudget(nil, rel, fds)
	return res
}

// InstanceBudget is Instance under a budget: the fixpoint loop consumes
// one step per row examined in each FD pass and aborts with a
// budget.ErrExceeded-wrapping error as soon as the budget trips —
// cancellation is honored between chase passes, never mid-pass. A nil
// budget is unlimited and never errors.
func InstanceBudget(b *budget.B, rel *relation.Relation, fds []dep.FD) (*Result, error) {
	res := &Result{parent: make(map[value.Value]value.Value)}
	plans := make([][2][]int, 0, len(fds))
	for _, f := range fds {
		zc := make([]int, 0, f.From.Len())
		f.From.Each(func(id attr.ID) bool { zc = append(zc, rel.Col(id)); return true })
		ac := make([]int, 0, f.To.Len())
		f.To.Each(func(id attr.ID) bool { ac = append(ac, rel.Col(id)); return true })
		plans = append(plans, [2][]int{zc, ac})
	}
	tuples := rel.Tuples()
	var passes, equations int64
	if m := cmetrics.Load(); m != nil {
		m.instanceRuns.Inc()
		m.instanceRows.Observe(float64(len(tuples)))
		defer func() {
			m.instancePasses.Add(passes)
			m.instanceRowVisits.Add(passes * int64(len(tuples)))
			m.instanceEquations.Add(equations)
			if res.clash {
				m.instanceClashes.Inc()
			}
		}()
	}
	next := make([]int, len(tuples))
	for {
		changed := false
		for _, p := range plans {
			if err := b.Step(int64(len(tuples))); err != nil {
				return nil, err
			}
			passes++
			zc, ac := p[0], p[1]
			// Bucket rows by the hash of their resolved Z values; one
			// chain entry per distinct resolved Z (collisions verified).
			bt := newBucketTable(len(tuples))
			for ti, t := range tuples {
				h := uint64(hashSeed)
				for _, c := range zc {
					h = hashVal(h, uint64(res.Find(t[c])))
				}
				h = hashMix(h)
				rep := -1
				for j := bt.get(h); j >= 0; j = next[j] {
					if sameResolved(tuples[j], t, zc, res) {
						rep = j
						break
					}
				}
				if rep < 0 {
					next[ti] = bt.put(h, ti)
					continue
				}
				prev := tuples[rep]
				for _, c := range ac {
					if res.union(prev[c], t[c]) {
						changed = true
						equations++
					}
					if res.clash {
						return res, nil
					}
				}
			}
		}
		if !changed {
			break
		}
	}
	res.rel = canonicalize(rel, res)
	return res, nil
}

// sameResolved reports whether two rows agree on the given columns after
// resolving through the chase's union-find.
func sameResolved(a, b relation.Tuple, cols []int, res *Result) bool {
	for _, c := range cols {
		if res.Find(a[c]) != res.Find(b[c]) {
			return false
		}
	}
	return true
}

// InstanceSortBased chases rel with fds using the literal algorithm of the
// paper's Corollary to Theorem 3: repeatedly sort by the FD's left-hand
// side, locate the first adjacent violating pair, and substitute one
// symbol for the other throughout the relation. Semantics are identical to
// Instance; it exists for the A1 ablation.
func InstanceSortBased(rel *relation.Relation, fds []dep.FD) *Result {
	res := &Result{parent: make(map[value.Value]value.Value)}
	// Working copy of tuples we substitute into.
	work := make([]relation.Tuple, rel.Len())
	for i, t := range rel.Tuples() {
		work[i] = t.Clone()
	}
	type plan struct{ zc, ac []int }
	plans := make([]plan, 0, len(fds))
	for _, f := range fds {
		var p plan
		f.From.Each(func(id attr.ID) bool { p.zc = append(p.zc, rel.Col(id)); return true })
		f.To.Each(func(id attr.ID) bool { p.ac = append(p.ac, rel.Col(id)); return true })
		plans = append(plans, p)
	}
	substitute := func(from, to value.Value) {
		for _, t := range work {
			for c := range t {
				if t[c] == from {
					t[c] = to
				}
			}
		}
	}
	//constvet:allow budgetloop -- A1 ablation runs deliberately unbudgeted; every pass merges at least one value class, so passes are bounded by the number of distinct values
	for {
		changed := false
		for _, p := range plans {
			//constvet:allow budgetloop -- same bound as the outer pass loop
			for {
				// Sort lexicographically by the Z columns.
				relation.SortTuplesBy(work, p.zc)
				// First adjacent violating pair.
				fired := false
				for i := 1; i < len(work) && !fired; i++ {
					mu, nu := work[i-1], work[i]
					eq := true
					for _, c := range p.zc {
						if mu[c] != nu[c] {
							eq = false
							break
						}
					}
					if !eq {
						continue
					}
					for _, c := range p.ac {
						if mu[c] == nu[c] {
							continue
						}
						a, b := mu[c], nu[c]
						if !res.union(a, b) && res.clash {
							return res
						}
						// Substitute the non-representative throughout.
						rep := res.Find(a)
						other := b
						if rep == b {
							other = a
						}
						substitute(other, rep)
						fired, changed = true, true
						break
					}
				}
				if !fired {
					break
				}
			}
		}
		if !changed {
			break
		}
	}
	out := relation.New(rel.Attrs())
	for _, t := range work {
		out.Insert(t)
	}
	res.rel = out
	return res
}

// canonicalize rewrites rel's tuples with representatives and dedups.
func canonicalize(rel *relation.Relation, res *Result) *relation.Relation {
	out := relation.New(rel.Attrs())
	for _, t := range rel.Tuples() {
		nt := make(relation.Tuple, len(t))
		for i, v := range t {
			nt[i] = res.Find(v)
		}
		out.Insert(nt)
	}
	return out
}
