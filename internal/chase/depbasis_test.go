package chase

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
)

func TestDependencyBasisTextbook(t *testing.T) {
	// Classic: Course ->> Teacher over (Course, Teacher, Book):
	// DEP(Course) = {Teacher}, {Book}.
	u := attr.MustUniverse("C", "T", "B")
	sigma := dep.NewSet(u)
	sigma.Add(dep.NewMVD(u.MustSet("C"), u.MustSet("T")))
	basis := DependencyBasis(u.MustSet("C"), sigma)
	if len(basis) != 2 {
		t.Fatalf("basis = %v, want 2 blocks", basis)
	}
	for _, b := range basis {
		if b.Len() != 1 {
			t.Errorf("non-singleton block %v", b)
		}
	}
}

func TestDependencyBasisFDOnly(t *testing.T) {
	// F = {A -> B} over ABCD: DEP(A) = {B}, {CD}.
	u := attr.MustUniverse("A", "B", "C", "D")
	sigma := dep.NewSet(u)
	sigma.Add(dep.NewFD(u.MustSet("A"), u.MustSet("B")))
	basis := DependencyBasis(u.MustSet("A"), sigma)
	if len(basis) != 2 {
		t.Fatalf("basis = %v, want {B},{CD}", basis)
	}
	want := map[string]bool{"B": true, "C D": true}
	for _, b := range basis {
		if !want[b.String()] {
			t.Errorf("unexpected block %v", b)
		}
	}
}

func TestDependencyBasisMixedChain(t *testing.T) {
	// A ->> B plus B -> C splits C off: DEP(A) ⊇ {B}, {C}, {D}.
	u := attr.MustUniverse("A", "B", "C", "D")
	sigma := dep.NewSet(u)
	sigma.Add(dep.NewMVD(u.MustSet("A"), u.MustSet("B")))
	sigma.Add(dep.NewFD(u.MustSet("B"), u.MustSet("C")))
	basis := DependencyBasis(u.MustSet("A"), sigma)
	if len(basis) != 3 {
		t.Fatalf("basis = %v, want 3 singletons", basis)
	}
	// The mixed rule's MVD consequence A ->> C must be implied.
	if !BasisImpliesMVD(sigma, dep.NewMVD(u.MustSet("A"), u.MustSet("C"))) {
		t.Error("A ->> C missed")
	}
}

func TestDependencyBasisFullX(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	sigma := dep.NewSet(u)
	if got := DependencyBasis(u.All(), sigma); got != nil {
		t.Errorf("DEP(U) = %v, want nil", got)
	}
}

func TestBasisImpliesMVDTrivial(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	sigma := dep.NewSet(u)
	if !BasisImpliesMVD(sigma, dep.NewMVD(u.MustSet("A"), u.MustSet("A"))) {
		t.Error("trivial MVD rejected")
	}
	if !BasisImpliesMVD(sigma, dep.NewMVD(u.MustSet("A"), u.MustSet("B", "C"))) {
		t.Error("complement-trivial MVD rejected")
	}
	if BasisImpliesMVD(sigma, dep.NewMVD(u.MustSet("A"), u.MustSet("B"))) {
		t.Error("nontrivial MVD accepted from empty Σ")
	}
}

// randomMixedSigma draws FDs and MVDs.
func randomMixedSigma(u *attr.Universe, rng *rand.Rand, k int) *dep.Set {
	sigma := dep.NewSet(u)
	for i := 0; i < k; i++ {
		lhs, rhs := u.Empty(), u.Empty()
		for a := 0; a < u.Size(); a++ {
			switch rng.Intn(3) {
			case 0:
				lhs = lhs.With(attr.ID(a))
			case 1:
				rhs = rhs.With(attr.ID(a))
			}
		}
		if lhs.IsEmpty() || rhs.IsEmpty() {
			continue
		}
		if rng.Intn(2) == 0 {
			sigma.Add(dep.NewFD(lhs, rhs))
		} else {
			sigma.Add(dep.NewMVD(lhs, rhs))
		}
	}
	return sigma
}

func TestQuickDependencyBasisMatchesTableau(t *testing.T) {
	// The basis-based MVD test agrees with the tableau chase on random
	// mixed FD+MVD sets — the empirical completeness check.
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := randomMixedSigma(u, rng, 1+rng.Intn(4))
		m := randomMVD(u, rng)
		return BasisImpliesMVD(sigma, m) == ImpliesMVD(sigma, m)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestQuickBasisIsPartition(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := randomMixedSigma(u, rng, 1+rng.Intn(4))
		x := u.Empty()
		for a := 0; a < u.Size(); a++ {
			if rng.Intn(3) == 0 {
				x = x.With(attr.ID(a))
			}
		}
		basis := DependencyBasis(x, sigma)
		cover := u.Empty()
		for _, b := range basis {
			if b.IsEmpty() || b.Intersects(x) || b.Intersects(cover) {
				return false
			}
			cover = cover.Union(b)
		}
		return cover.Equal(u.All().Diff(x))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickBasisBlocksAreImpliedMVDs(t *testing.T) {
	// Soundness: every block S of DEP(X) gives Σ ⊨ X →→ S (checked
	// against the tableau chase).
	u := attr.MustUniverse("A", "B", "C", "D")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := randomMixedSigma(u, rng, 1+rng.Intn(3))
		x := u.Empty()
		for a := 0; a < u.Size(); a++ {
			if rng.Intn(3) == 0 {
				x = x.With(attr.ID(a))
			}
		}
		for _, b := range DependencyBasis(x, sigma) {
			if !ImpliesMVD(sigma, dep.NewMVD(x, b)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
