package chase

import (
	"sort"

	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Maintained is a chase fixpoint maintained under row insertions and
// deletions, the delta-scoped counterpart of Instance + Prepare: instead
// of re-padding and re-chasing a whole relation per update — O(|Σ|·|R|)
// even when one row changed — a Maintained adds or removes one row and
// propagates only from the values that actually changed, so the work is
// proportional to the delta's affected partition.
//
// Rows are raw tuples (constants and labeled nulls); the union-find over
// values carries the chase merges, exactly as Result does for a batch
// chase. Because the merge tie-break (constants win; among nulls the
// numerically larger, i.e. smaller-index, value wins) picks the numeric
// maximum of a class, canonical representatives are order-independent:
// a Maintained built by any sequence of AddRow/RemoveRow resolves every
// value exactly as a fresh batch chase of the surviving rows would.
//
// Precondition for RemoveRow: distinct rows must not share labeled
// nulls (each row's nulls are fresh, as produced by value.NullGen —
// constants may repeat freely). FD merges then only link rows within a
// connected component, so removal can reset and re-derive just the
// affected component instead of the whole fixpoint.
type Maintained struct {
	plans Plans
	// rows holds the raw tuples; nil marks a removed row.
	rows  []relation.Tuple
	alive int
	dead  int
	// garbage counts stale bucket entries left by removals; Wasteful
	// reports when a rebuild would pay for itself.
	garbage int
	// parent/members: union-find over values (raw granularity), as in
	// Overlay. Only non-roots have parent entries.
	parent  map[value.Value]value.Value
	members map[value.Value][]value.Value
	clash   bool
	// buckets[fi] maps Z-key hashes (canonical at insertion time) to row
	// ids. Entries go stale as classes merge or rows die; every probe
	// re-verifies with zEqual under the current resolution, so staleness
	// costs space, never correctness.
	buckets []map[uint64][]int
	// valueRows maps each raw value to the rows containing it (stale row
	// ids filtered lazily).
	valueRows map[value.Value][]int
	// rowParent/rowMembers: union-find over rows, tracking the connected
	// components the FD merges induce; RemoveRow re-chases one component.
	rowParent  []int
	rowMembers map[int][]int
}

// NewMaintained returns an empty maintained fixpoint for the FD column
// plans (see PlanFDs; plans must be over the row layout of AddRow's
// tuples).
func NewMaintained(plans Plans) *Maintained {
	m := &Maintained{
		plans:      plans,
		parent:     make(map[value.Value]value.Value),
		members:    make(map[value.Value][]value.Value),
		buckets:    make([]map[uint64][]int, len(plans)),
		valueRows:  make(map[value.Value][]int),
		rowMembers: make(map[int][]int),
	}
	for i := range m.buckets {
		m.buckets[i] = make(map[uint64][]int)
	}
	return m
}

// Alive reports the number of live rows.
func (m *Maintained) Alive() int { return m.alive }

// ConstClash reports whether the chase has equated two distinct
// constants; once latched the fixpoint is unusable and callers should
// rebuild from a consistent instance.
func (m *Maintained) ConstClash() bool { return m.clash }

// Wasteful reports whether removals have left enough tombstones and
// stale bucket entries that rebuilding from the live rows would pay for
// itself. Callers invalidate and rebuild; Maintained never compacts in
// place (row ids are stable for its lifetime).
func (m *Maintained) Wasteful() bool {
	return m.dead*2 > m.alive+16 || m.garbage > 4*m.alive+64
}

// Find resolves a value to its canonical representative.
func (m *Maintained) Find(v value.Value) value.Value {
	for {
		n, ok := m.parent[v]
		if !ok {
			return v
		}
		v = n
	}
}

// Cell returns the canonical value of column c of live row id.
func (m *Maintained) Cell(id, c int) value.Value {
	return m.Find(m.rows[id][c])
}

// Row returns the raw tuple of row id (nil if removed). Callers must not
// modify it.
func (m *Maintained) Row(id int) relation.Tuple { return m.rows[id] }

// AddRow inserts a raw row (taking ownership) and propagates the FDs to
// a new fixpoint. It returns the row's id, stable until the Maintained
// is rebuilt. After a constant clash the fixpoint is latched broken and
// further propagation is skipped.
func (m *Maintained) AddRow(row relation.Tuple) int {
	ri := len(m.rows)
	m.rows = append(m.rows, row)
	m.rowParent = append(m.rowParent, ri)
	m.alive++
	seen := make(map[value.Value]bool, len(row))
	for _, v := range row {
		if !seen[v] {
			seen[v] = true
			m.valueRows[v] = append(m.valueRows[v], ri)
		}
	}
	if !m.clash {
		m.run([]int{ri})
	}
	return ri
}

// RemoveRow deletes a live row and restores the fixpoint of the
// survivors: the row's connected component is reset to its raw values
// and re-chased, which is exactly a fresh chase of the component minus
// the row (no other component's classes are touched — see the
// fresh-nulls precondition).
func (m *Maintained) RemoveRow(id int) {
	if id < 0 || id >= len(m.rows) || m.rows[id] == nil {
		return
	}
	comp := m.componentOf(id)
	// Reset the component's null classes. Null-rooted classes are
	// component-local (cross-component classes arise only through a
	// constant representative), so deleting exactly these links restores
	// the pre-chase state of the component and nothing else.
	resetSet := make(map[value.Value]bool)
	for _, ri := range comp {
		for _, v := range m.rows[ri] {
			if v.IsNull() {
				resetSet[v] = true
			}
		}
	}
	reset := make([]value.Value, 0, len(resetSet))
	for v := range resetSet {
		reset = append(reset, v)
	}
	sort.Slice(reset, func(i, j int) bool { return reset[i] < reset[j] })
	rootSet := make(map[value.Value]bool)
	for _, v := range reset {
		rootSet[m.Find(v)] = true
	}
	for _, v := range reset {
		delete(m.parent, v)
	}
	roots := make([]value.Value, 0, len(rootSet))
	for v := range rootSet {
		roots = append(roots, v)
	}
	sort.Slice(roots, func(i, j int) bool { return roots[i] < roots[j] })
	for _, r := range roots {
		if resetSet[r] {
			// A null root of this component; its whole class was local.
			delete(m.members, r)
			continue
		}
		// A constant root may carry nulls of other components: keep them.
		var kept []value.Value
		for _, v := range m.members[r] {
			if !resetSet[v] {
				kept = append(kept, v)
			}
		}
		if len(kept) == 0 {
			delete(m.members, r)
		} else {
			m.members[r] = kept
		}
	}
	for _, ri := range comp {
		m.rowParent[ri] = ri
		delete(m.rowMembers, ri)
	}
	m.rows[id] = nil
	m.alive--
	m.dead++
	m.garbage += len(comp) * len(m.plans)
	if m.clash {
		return
	}
	seeds := make([]int, 0, len(comp)-1)
	for _, ri := range comp {
		if ri != id {
			seeds = append(seeds, ri)
		}
	}
	m.run(seeds)
}

// run drives the worklist: visit the seed rows, then keep visiting rows
// containing values whose class changed, exactly the delta-scoped
// propagation of Overlay but mutating the maintained state.
func (m *Maintained) run(seeds []int) {
	sort.Ints(seeds)
	var queue []value.Value
	for _, ri := range seeds {
		queue = m.visitRow(ri, queue)
		if m.clash {
			return
		}
	}
	//constvet:allow budgetloop -- each pop merges two classes or re-derives nothing; pushes are bounded by the number of merges, which is bounded by the number of distinct values
	for len(queue) > 0 {
		loser := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		rows := map[int]bool{}
		for _, v := range m.classValues(loser) {
			for _, ri := range m.valueRows[v] {
				if m.rows[ri] != nil {
					rows[ri] = true
				}
			}
		}
		order := make([]int, 0, len(rows))
		for ri := range rows {
			order = append(order, ri)
		}
		// Sorted for the same reason as Overlay.WithEqualities: the visit
		// order decides merge order, which must be deterministic.
		sort.Ints(order)
		for _, ri := range order {
			queue = m.visitRow(ri, queue)
			if m.clash {
				return
			}
		}
	}
}

// visitRow re-derives row ri's FD matches under the current resolution,
// merging A-columns with the first row sharing each Z-key and recording
// changed-value losers on the queue.
func (m *Maintained) visitRow(ri int, queue []value.Value) []value.Value {
	row := m.rows[ri]
	if row == nil {
		return queue
	}
	for fi, plan := range m.plans {
		h := m.zHashRow(row, plan[0])
		bucket := m.buckets[fi][h]
		other := -1
		for _, cand := range bucket {
			if m.rows[cand] != nil && m.zEqualRows(m.rows[cand], row, plan[0]) {
				other = cand
				break
			}
		}
		if other < 0 {
			m.buckets[fi][h] = append(bucket, ri)
			continue
		}
		if other == ri {
			continue
		}
		m.rowUnion(ri, other)
		otherRow := m.rows[other]
		for _, c := range plan[1] {
			if loser, changed := m.union(row[c], otherRow[c]); changed {
				queue = append(queue, loser)
			}
			if m.clash {
				return queue
			}
		}
	}
	return queue
}

// zHashRow hashes the resolved values of the given columns.
func (m *Maintained) zHashRow(row relation.Tuple, cols []int) uint64 {
	h := uint64(hashSeed)
	for _, c := range cols {
		h = hashVal(h, uint64(m.Find(row[c])))
	}
	return hashMix(h)
}

// zEqualRows compares two rows on the given columns under resolution.
func (m *Maintained) zEqualRows(a, b relation.Tuple, cols []int) bool {
	for _, c := range cols {
		if m.Find(a[c]) != m.Find(b[c]) {
			return false
		}
	}
	return true
}

// classValues returns the raw values currently in v's class (including
// the representative).
func (m *Maintained) classValues(v value.Value) []value.Value {
	r := m.Find(v)
	return append([]value.Value{r}, m.members[r]...)
}

// union merges the classes of a and b, preferring constants and then
// smaller-index nulls (the numeric maximum — order-independent). It
// reports the losing representative and whether a merge happened; a
// constant/constant merge latches the clash flag instead.
func (m *Maintained) union(a, b value.Value) (value.Value, bool) {
	ra, rb := m.Find(a), m.Find(b)
	if ra == rb {
		return 0, false
	}
	if ra.IsConst() && rb.IsConst() {
		m.clash = true
		return 0, false
	}
	if rb.IsConst() || (!ra.IsConst() && rb > ra) {
		ra, rb = rb, ra
	}
	m.parent[rb] = ra
	m.members[ra] = append(m.members[ra], rb)
	m.members[ra] = append(m.members[ra], m.members[rb]...)
	delete(m.members, rb)
	return rb, true
}

// rowFind resolves a row id to its component representative.
func (m *Maintained) rowFind(i int) int {
	for m.rowParent[i] != i {
		i = m.rowParent[i]
	}
	return i
}

// rowUnion merges two row components (smaller root wins, for
// determinism of componentOf).
func (m *Maintained) rowUnion(a, b int) {
	ra, rb := m.rowFind(a), m.rowFind(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	m.rowParent[rb] = ra
	m.rowMembers[ra] = append(m.rowMembers[ra], rb)
	m.rowMembers[ra] = append(m.rowMembers[ra], m.rowMembers[rb]...)
	delete(m.rowMembers, rb)
}

// componentOf returns the sorted live row ids of id's component.
func (m *Maintained) componentOf(id int) []int {
	r := m.rowFind(id)
	out := append([]int{r}, m.rowMembers[r]...)
	sort.Ints(out)
	return out
}

// MOverlay is the result of imposing equalities on a Maintained
// fixpoint without mutating it: the counterpart of Overlay for
// maintained (rather than batch-prepared) state. The exact
// translatability tests run one per candidate (f, r) pair.
type MOverlay struct {
	m       *Maintained
	parent  map[value.Value]value.Value
	members map[value.Value][]value.Value
	clash   bool
	// overlayBuckets[fi] maps overlay Z-key hashes discovered during
	// propagation to representative rows.
	overlayBuckets []map[uint64][]int
}

// WithEqualities imposes the given value pairs and propagates the FDs to
// a new fixpoint layered over the maintained one. The receiver is not
// modified; each call returns an independent overlay. It must not be
// called on a clashed Maintained.
func (m *Maintained) WithEqualities(pairs [][2]value.Value) *MOverlay {
	ov := &MOverlay{
		m:              m,
		parent:         make(map[value.Value]value.Value),
		members:        make(map[value.Value][]value.Value),
		overlayBuckets: make([]map[uint64][]int, len(m.plans)),
	}
	for i := range ov.overlayBuckets {
		ov.overlayBuckets[i] = make(map[uint64][]int)
	}
	var queue []value.Value
	for _, pr := range pairs {
		if loser, changed := ov.union(pr[0], pr[1]); changed {
			queue = append(queue, loser)
		}
		if ov.clash {
			return ov
		}
	}
	//constvet:allow budgetloop -- each pop merges two classes or re-derives nothing; pushes are bounded by the number of merges, which is bounded by the number of distinct values
	for len(queue) > 0 {
		loser := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		// Rows containing any raw value of any maintained class merged
		// into the loser's overlay class.
		rows := map[int]bool{}
		for _, mv := range ov.classMembers(loser) {
			for _, rv := range m.classValues(mv) {
				for _, ri := range m.valueRows[rv] {
					if m.rows[ri] != nil {
						rows[ri] = true
					}
				}
			}
		}
		order := make([]int, 0, len(rows))
		for ri := range rows {
			order = append(order, ri)
		}
		sort.Ints(order)
		for _, ri := range order {
			row := m.rows[ri]
			for fi, plan := range m.plans {
				h := ov.zHashRow(row, plan[0])
				other := -1
				for _, cand := range ov.overlayBuckets[fi][h] {
					if m.rows[cand] != nil && ov.zEqualRows(m.rows[cand], row, plan[0]) {
						other = cand
						break
					}
				}
				if other < 0 {
					// Fall back to the maintained buckets: entries are
					// keyed by insertion-time hashes, but every hit is
					// re-verified under the overlay resolution, and a row
					// whose key the overlay changed is on the worklist
					// itself, so missed chains cannot lose merges.
					for _, cand := range m.buckets[fi][h] {
						if m.rows[cand] != nil && ov.zEqualRows(m.rows[cand], row, plan[0]) {
							other = cand
							break
						}
					}
				}
				if other < 0 {
					ov.overlayBuckets[fi][h] = append(ov.overlayBuckets[fi][h], ri)
					continue
				}
				if other == ri {
					continue
				}
				otherRow := m.rows[other]
				for _, c := range plan[1] {
					if l, changed := ov.union(row[c], otherRow[c]); changed {
						queue = append(queue, l)
					}
					if ov.clash {
						return ov
					}
				}
			}
		}
	}
	return ov
}

// resolve maps a raw value through the maintained then the overlay
// union-find.
func (ov *MOverlay) resolve(v value.Value) value.Value {
	v = ov.m.Find(v)
	for {
		n, ok := ov.parent[v]
		if !ok {
			return v
		}
		v = n
	}
}

// classMembers returns the maintained-canonical values currently in v's
// overlay class (including the representative).
func (ov *MOverlay) classMembers(v value.Value) []value.Value {
	r := ov.resolve(v)
	return append([]value.Value{r}, ov.members[r]...)
}

// zHashRow hashes the given columns of a row under overlay resolution.
func (ov *MOverlay) zHashRow(row relation.Tuple, cols []int) uint64 {
	h := uint64(hashSeed)
	for _, c := range cols {
		h = hashVal(h, uint64(ov.resolve(row[c])))
	}
	return hashMix(h)
}

// zEqualRows compares two rows on the given columns under overlay
// resolution.
func (ov *MOverlay) zEqualRows(a, b relation.Tuple, cols []int) bool {
	for _, c := range cols {
		if ov.resolve(a[c]) != ov.resolve(b[c]) {
			return false
		}
	}
	return true
}

// union merges the overlay classes of a and b (same tie-break as the
// maintained union). It reports the losing representative and whether a
// merge happened; a constant/constant merge sets the clash flag.
func (ov *MOverlay) union(a, b value.Value) (value.Value, bool) {
	ra, rb := ov.resolve(a), ov.resolve(b)
	if ra == rb {
		return 0, false
	}
	if ra.IsConst() && rb.IsConst() {
		ov.clash = true
		return 0, false
	}
	if rb.IsConst() || (!ra.IsConst() && rb > ra) {
		ra, rb = rb, ra
	}
	ov.parent[rb] = ra
	ov.members[ra] = append(ov.members[ra], rb)
	ov.members[ra] = append(ov.members[ra], ov.members[rb]...)
	delete(ov.members, rb)
	return rb, true
}

// ConstClash reports whether the imposition forced two distinct
// constants equal.
func (ov *MOverlay) ConstClash() bool { return ov.clash }

// Same reports whether two values are equal under the overlay.
func (ov *MOverlay) Same(a, b value.Value) bool {
	return ov.resolve(a) == ov.resolve(b)
}
