package chase

// Hash bucketing for the chase passes.
//
// Every chase variant repeatedly groups rows by the (resolved) values of
// an FD's left-hand side. These buckets used to be Go maps keyed by
// per-row string serializations — one string allocation per row per FD
// per pass. They are now 64-bit FNV-1a hashes over the resolved value
// words feeding a fixed-size open-addressing head table with intrusive
// chains; collisions are verified against the actual resolved values, so
// hash quality affects only speed, never results. This mirrors
// internal/relation's tuple index (kept separate so the relation
// package's kernel internals stay unexported).

const (
	hashSeed  = 14695981039346656037
	hashPrime = 1099511628211
)

// hashVal folds one 64-bit word into a running FNV-1a hash.
func hashVal(h, x uint64) uint64 { return (h ^ x) * hashPrime }

// hashMix applies a splitmix64 finalizer so the low bits are well mixed.
func hashMix(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// bucketSlot maps a key hash to the head of an intrusive chain
// (head == -1 marks an empty slot).
type bucketSlot struct {
	key  uint64
	head int
}

// bucketTable is a fixed-size open-addressing map from hash to chain
// head. It is sized once for a known number of entries and never grows;
// chains are threaded through a caller-owned next array.
type bucketTable struct {
	slots []bucketSlot
}

// newBucketTable returns a table with room for n entries at ≤ 3/4 load.
func newBucketTable(n int) *bucketTable {
	size := 8
	for size*3 < n*4 {
		size *= 2
	}
	bt := &bucketTable{slots: make([]bucketSlot, size)}
	for i := range bt.slots {
		bt.slots[i].head = -1
	}
	return bt
}

// get returns the chain head for key h, or -1.
func (bt *bucketTable) get(h uint64) int {
	m := len(bt.slots) - 1
	for i := int(h & uint64(m)); ; i = (i + 1) & m {
		s := bt.slots[i]
		if s.head < 0 {
			return -1
		}
		if s.key == h {
			return s.head
		}
	}
}

// put sets the chain head for key h, returning the previous head or -1.
func (bt *bucketTable) put(h uint64, head int) int {
	m := len(bt.slots) - 1
	for i := int(h & uint64(m)); ; i = (i + 1) & m {
		s := &bt.slots[i]
		if s.head < 0 {
			s.key = h
			s.head = head
			return -1
		}
		if s.key == h {
			prev := s.head
			s.head = head
			return prev
		}
	}
}
