package analysis

// Dominance-based guard checking shared by deadlineflow and errflow:
// "site X must be dominated by a guard of kind K" — the guard executes
// on every path from the function entry to the site, so the decision it
// encodes (deadline expired? error transient?) has always been made
// before the site runs.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// funcFlow bundles one function's CFG artifacts for dominance queries.
type funcFlow struct {
	cfg     *CFG
	parents map[ast.Node]ast.Node
	dom     []map[int]bool
}

func newFuncFlow(fd *ast.FuncDecl) *funcFlow {
	cfg := BuildCFG(fd)
	return &funcFlow{cfg: cfg, parents: parentMap(fd), dom: cfg.Dominators()}
}

// block resolves a node to its basic block (nil for nodes outside the
// graph, e.g. inside func literals the CFG does not decompose).
func (ff *funcFlow) block(n ast.Node) *Block { return ff.cfg.Enclosing(n, ff.parents) }

// dominates reports whether guard executes before site on every path:
// its block strictly dominates the site's block, or both share a block
// and the guard appears first.
func (ff *funcFlow) dominates(guard, site ast.Node) bool {
	gb, sb := ff.block(guard), ff.block(site)
	if gb == nil || sb == nil {
		return false
	}
	if gb == sb {
		return guard.Pos() < site.Pos()
	}
	return ff.dom[sb.Index][gb.Index]
}

// guardedBy reports whether any guard in guards dominates site.
func (ff *funcFlow) guardedBy(site ast.Node, guards []ast.Node) bool {
	for _, g := range guards {
		if ff.dominates(g, site) {
			return true
		}
	}
	return false
}

// collectGuards walks the function body (skipping `go` bodies — a
// guard evaluated by another goroutine proves nothing here) and returns
// every node isGuard accepts.
func collectGuards(body ast.Node, isGuard func(ast.Node) bool) []ast.Node {
	var out []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if n != nil && isGuard(n) {
			out = append(out, n)
		}
		return true
	})
	return out
}

// isDeadlineGuard recognizes the three sanctioned bounded-wait checks:
//
//   - a context poll: ctx.Err() or ctx.Done() on a context.Context
//   - a queue-deadline comparison: any ordering comparison whose operands
//     read the injectable clock (a NowNS method call)
//   - a budget check: budget.B Step/Check
func isDeadlineGuard(info *types.Info, n ast.Node) bool {
	switch n := n.(type) {
	case *ast.CallExpr:
		if isBudgetCheck(info, n) {
			return true
		}
		recv, name, ok := methodCall(info, n)
		if ok && (name == "Err" || name == "Done") && fromPackageNamed(info.TypeOf(recv), "context") {
			return true
		}
	case *ast.BinaryExpr:
		switch n.Op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			return containsNowNSCall(info, n)
		}
	}
	return false
}

// containsNowNSCall reports whether the expression reads the injectable
// clock via a NowNS method call.
func containsNowNSCall(info *types.Info, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, name, ok := methodCall(info, call); ok && name == "NowNS" {
				found = true
			}
		}
		return !found
	})
	return found
}
