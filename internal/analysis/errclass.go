package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"
)

// ErrClass enforces the error-taxonomy contract of the self-healing
// boundary (internal/store, internal/serve): retry policy is driven by
// classifying errors transient or permanent, so (1) every package-level
// Err* sentinel must be covered by the package's classOf taxonomy
// function — an unclassified sentinel silently falls into ClassUnknown
// and is never retried — and (2) errors must be wrapped with %w, never
// %v or %s, or errors.Is cannot see the cause through the wrap and a
// permanent cause would be retried (or a transient one surfaced).
// Introduced with PR 7's self-healing pipeline.
var ErrClass = &Analyzer{
	Name: "errclass",
	Doc: "taxonomy packages must classify every Err* sentinel in classOf and " +
		"wrap errors with %w (not %v/%s) so the retry classifier sees the cause chain",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSuffix(pkgPath, "internal/store") || pathHasSuffix(pkgPath, "internal/serve")
	},
	Run: runErrClass,
}

func runErrClass(pass *Pass) error {
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	isErr := func(t types.Type) bool { return t != nil && types.Implements(t, errIface) }

	// Collect the package-level Err* sentinels and every object the
	// classOf function references (grouped var blocks included).
	var sentinels []*types.Var
	classified := map[types.Object]bool{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			switch d := d.(type) {
			case *ast.GenDecl:
				if d.Tok != token.VAR {
					continue
				}
				for _, spec := range d.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for _, name := range vs.Names {
						if !strings.HasPrefix(name.Name, "Err") {
							continue
						}
						if v, ok := pass.Info.Defs[name].(*types.Var); ok && isErr(v.Type()) {
							sentinels = append(sentinels, v)
						}
					}
				}
			case *ast.FuncDecl:
				if d.Name.Name != "classOf" || d.Recv != nil || d.Body == nil {
					continue
				}
				ast.Inspect(d.Body, func(n ast.Node) bool {
					if id, ok := n.(*ast.Ident); ok {
						if obj := pass.Info.Uses[id]; obj != nil {
							classified[obj] = true
						}
					}
					return true
				})
			}
		}
	}
	for _, v := range sentinels {
		if !classified[v] {
			pass.Reportf(v.Pos(),
				"error sentinel %s is not classified in classOf: an unclassified sentinel is ClassUnknown and never retried", v.Name())
		}
	}

	// Flag fmt.Errorf calls that format an error-typed argument with %v
	// or %s instead of wrapping it with %w.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeOf(pass.Info, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" || fn.Name() != "Errorf" {
				return true
			}
			if len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			format, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for i, verb := range formatVerbs(format) {
				argIdx := 1 + i
				if argIdx >= len(call.Args) {
					break
				}
				if verb != 'v' && verb != 's' {
					continue
				}
				if isErr(pass.TypeOf(call.Args[argIdx])) {
					pass.Reportf(call.Args[argIdx].Pos(),
						"error formatted with %%%c loses the cause chain for Classify: wrap with %%w", verb)
				}
			}
			return true
		})
	}
	return nil
}

// formatVerbs returns the verb letters of a Printf-style format string
// in argument order, skipping %%. Formats using explicit argument
// indexes (%[1]v) or *-widths consume arguments out of order, which
// this scanner does not model; it returns nil so no verb is matched.
func formatVerbs(format string) []rune {
	var verbs []rune
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		for i < len(format) && strings.ContainsRune("+-# 0.123456789", rune(format[i])) {
			i++
		}
		if i >= len(format) {
			break
		}
		if format[i] == '[' || format[i] == '*' {
			return nil
		}
		verbs = append(verbs, rune(format[i]))
	}
	return verbs
}
