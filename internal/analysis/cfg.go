package analysis

// Control-flow graphs over go/ast function bodies. The builder is
// purely syntactic (no type information), which keeps it usable from
// tests on parsed source strings and from analyzers alike. There is no
// SSA: the concurrency analyzers (lockhold, deadlineflow, errflow)
// need only block-level reaching facts — which locks may be held, which
// guard expressions dominate a blocking operation — and a basic-block
// graph with a dominator relation carries both.
//
// Block contents are "simple" statements and the control expressions
// that decide branches. Control statements (if/for/switch/select/...)
// are decomposed: their init statements and condition/tag expressions
// land in the deciding block, their bodies in successor blocks. Every
// simple statement of the function body is placed in exactly one block
// (the CFG property test pins this), so a dataflow transfer function
// can walk Block.Nodes in order without double-counting.

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// Block is one basic block: nodes that execute straight-line, then a
// transfer to one of Succs.
type Block struct {
	Index int
	// Kind names the block's structural role ("entry", "if.then",
	// "for.head", ...) for golden tests and debugging.
	Kind string
	// Nodes are the simple statements and control expressions placed in
	// this block, in execution order.
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block
}

// CFG is the control-flow graph of one function body.
type CFG struct {
	Entry *Block
	// Exit is the synthetic sink every return (and the final fallthrough
	// out of the body) edges into. It holds no nodes.
	Exit   *Block
	Blocks []*Block

	// blockOf maps every placed node — and every control statement's
	// deciding point (the IfStmt to its condition block, the SelectStmt
	// to the block that blocks in the select) — to its block.
	blockOf map[ast.Node]*Block
}

// BlockOf returns the block a placed node (or a control statement's
// deciding point) lives in, or nil.
func (c *CFG) BlockOf(n ast.Node) *Block { return c.blockOf[n] }

// Enclosing resolves an arbitrary AST node to the block of its nearest
// enclosing placed node, using a parent map from parentMap. It returns
// nil for nodes outside the graph (e.g. inside an unvisited func literal).
func (c *CFG) Enclosing(n ast.Node, parents map[ast.Node]ast.Node) *Block {
	for n != nil {
		if b, ok := c.blockOf[n]; ok {
			return b
		}
		n = parents[n]
	}
	return nil
}

// builder state.
type cfgBuilder struct {
	cfg *CFG
	cur *Block

	// loop/switch context stacks for break and continue, innermost last.
	breakTargets    []*Block
	continueTargets []*Block
	// labeled break/continue targets and goto targets by label name.
	labelBreak    map[string]*Block
	labelContinue map[string]*Block
	labelBlock    map[string]*Block // goto targets (block starting at the label)
	// gotos seen before their label; resolved at the end.
	pendingGotos map[string][]*Block
	// pendingLabel is the label of a LabeledStmt whose statement is about
	// to be built; the next loop/switch consumes it to wire labeled
	// break/continue.
	pendingLabel string
}

// BuildCFG constructs the CFG of fn's body. fn must have a body.
func BuildCFG(fn *ast.FuncDecl) *CFG {
	c := &CFG{blockOf: map[ast.Node]*Block{}}
	b := &cfgBuilder{
		cfg:           c,
		labelBreak:    map[string]*Block{},
		labelContinue: map[string]*Block{},
		labelBlock:    map[string]*Block{},
		pendingGotos:  map[string][]*Block{},
	}
	entry := b.newBlock("entry")
	c.Entry = entry
	c.Exit = b.newBlock("exit")
	b.cur = entry
	b.stmtList(fn.Body.List)
	// Whatever falls off the end of the body returns.
	b.edge(b.cur, c.Exit)
	// Unresolved gotos (label declared later in a branch never walked —
	// cannot happen in well-typed Go, but be safe): edge to exit.
	for _, srcs := range b.pendingGotos {
		for _, s := range srcs {
			b.edge(s, c.Exit)
		}
	}
	return c
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// place appends a node to the current block.
func (b *cfgBuilder) place(n ast.Node) {
	if n == nil {
		return
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
	b.cfg.blockOf[n] = b.cur
}

// startBlock makes blk current, linking from the previous block unless
// the flow already diverted (cur == nil after a terminator).
func (b *cfgBuilder) startBlock(blk *Block) {
	if b.cur != nil {
		b.edge(b.cur, blk)
	}
	b.cur = blk
}

// terminated marks the current flow as diverted (return/branch): the
// next placed statement is unreachable and gets a fresh block.
func (b *cfgBuilder) terminated(kind string) {
	b.cur = b.newBlock(kind)
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		b.place(s.Cond)
		// The if statement's deciding point is the block holding Cond.
		b.cfg.blockOf[s] = b.cur
		condBlk := b.cur
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		b.edge(condBlk, then)
		b.cur = then
		b.stmtList(s.Body.List)
		b.edge(b.cur, join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			b.edge(condBlk, els)
			b.cur = els
			b.stmt(s.Else)
			b.edge(b.cur, join)
		} else {
			b.edge(condBlk, join)
		}
		b.cur = join

	case *ast.ForStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		head := b.newBlock("for.head")
		b.edge(b.cur, head)
		b.cur = head
		if s.Cond != nil {
			b.place(s.Cond)
		}
		b.cfg.blockOf[s] = head
		body := b.newBlock("for.body")
		join := b.newBlock("for.join")
		b.edge(head, body)
		if s.Cond != nil {
			b.edge(head, join) // condition false
		}
		var post *Block
		cont := head
		if s.Post != nil {
			post = b.newBlock("for.post")
			cont = post
		}
		b.pushLoop(join, cont, s)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		if post != nil {
			b.edge(b.cur, post)
			b.cur = post
			b.place(s.Post)
			b.edge(post, head)
		} else {
			b.edge(b.cur, head)
		}
		b.cur = join

	case *ast.RangeStmt:
		head := b.newBlock("range.head")
		b.edge(b.cur, head)
		b.cur = head
		b.place(s.X)
		b.cfg.blockOf[s] = head
		body := b.newBlock("range.body")
		join := b.newBlock("range.join")
		b.edge(head, body)
		b.edge(head, join)
		b.pushLoop(join, head, s)
		b.cur = body
		b.stmtList(s.Body.List)
		b.popLoop()
		b.edge(b.cur, head)
		b.cur = join

	case *ast.SwitchStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		if s.Tag != nil {
			b.place(s.Tag)
		}
		b.cfg.blockOf[s] = b.cur
		b.switchBody(s.Body.List, b.cur, s, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
				b.cfg.blockOf[e] = blk
			}
		})

	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			b.place(s.Init)
		}
		b.place(s.Assign)
		b.cfg.blockOf[s] = b.cur
		b.switchBody(s.Body.List, b.cur, s, nil)

	case *ast.SelectStmt:
		head := b.cur
		b.cfg.blockOf[s] = head
		join := b.newBlock("select.join")
		b.pushSwitch(join, s)
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			b.edge(head, blk)
			b.cur = blk
			if cc.Comm != nil {
				b.place(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edge(b.cur, join)
		}
		b.popSwitch()
		if len(s.Body.List) == 0 {
			// select{} blocks forever: no successors.
			b.cur = join
			return
		}
		b.cur = join

	case *ast.LabeledStmt:
		label := s.Label.Name
		// The label starts a fresh block so goto/labeled-continue can
		// target it.
		target := b.newBlock("label." + label)
		b.startBlock(target)
		b.labelBlock[label] = target
		for _, src := range b.pendingGotos[label] {
			b.edge(src, target)
		}
		delete(b.pendingGotos, label)
		// For labeled loops/switches the break/continue targets are
		// registered by the loop builder via the pending label.
		b.pendingLabel = label
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.BranchStmt:
		b.place(s)
		switch s.Tok {
		case token.BREAK:
			if s.Label != nil {
				b.edge(b.cur, b.labelBreak[s.Label.Name])
			} else if n := len(b.breakTargets); n > 0 {
				b.edge(b.cur, b.breakTargets[n-1])
			}
			b.terminated("after.break")
		case token.CONTINUE:
			if s.Label != nil {
				b.edge(b.cur, b.labelContinue[s.Label.Name])
			} else if n := len(b.continueTargets); n > 0 {
				b.edge(b.cur, b.continueTargets[n-1])
			}
			b.terminated("after.continue")
		case token.GOTO:
			label := s.Label.Name
			if target, ok := b.labelBlock[label]; ok {
				b.edge(b.cur, target)
			} else {
				b.pendingGotos[label] = append(b.pendingGotos[label], b.cur)
			}
			b.terminated("after.goto")
		case token.FALLTHROUGH:
			// switchBody links fallthrough edges; nothing to do here.
		}

	case *ast.ReturnStmt:
		b.place(s)
		b.edge(b.cur, b.cfg.Exit)
		b.terminated("after.return")

	default:
		// Simple statement: decl, assign, expr, send, inc/dec, go,
		// defer, empty.
		b.place(s)
	}
}

// pendingLabel is consumed by the next loop/switch the builder enters,
// wiring labeled break/continue.
func (b *cfgBuilder) pushLoop(brk, cont *Block, _ ast.Stmt) {
	b.breakTargets = append(b.breakTargets, brk)
	b.continueTargets = append(b.continueTargets, cont)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.labelContinue[b.pendingLabel] = cont
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popLoop() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
	b.continueTargets = b.continueTargets[:len(b.continueTargets)-1]
}

func (b *cfgBuilder) pushSwitch(brk *Block, _ ast.Stmt) {
	b.breakTargets = append(b.breakTargets, brk)
	if b.pendingLabel != "" {
		b.labelBreak[b.pendingLabel] = brk
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) popSwitch() {
	b.breakTargets = b.breakTargets[:len(b.breakTargets)-1]
}

// switchBody builds the case blocks of a switch/type-switch: head
// branches to every case (and to the join when there is no default),
// case bodies flow to the join, fallthrough chains to the next case.
func (b *cfgBuilder) switchBody(clauses []ast.Stmt, head *Block, sw ast.Stmt, placeList func(*ast.CaseClause, *Block)) {
	join := b.newBlock("switch.join")
	b.pushSwitch(join, sw)
	hasDefault := false
	blocks := make([]*Block, len(clauses))
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		blocks[i] = b.newBlock(kind)
		b.edge(head, blocks[i])
		if placeList != nil && cc.List != nil {
			placeList(cc, blocks[i])
		}
	}
	for i, cs := range clauses {
		cc := cs.(*ast.CaseClause)
		b.cur = blocks[i]
		fallsThrough := false
		for _, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH {
				fallsThrough = true
			}
			b.stmt(st)
		}
		if fallsThrough && i+1 < len(blocks) {
			b.edge(b.cur, blocks[i+1])
			b.cur = nil
		}
		if b.cur != nil {
			b.edge(b.cur, join)
		}
	}
	b.popSwitch()
	if !hasDefault {
		b.edge(head, join)
	}
	b.cur = join
}

// Reachable returns the blocks reachable from the entry, by index order.
func (c *CFG) Reachable() []*Block {
	seen := make([]bool, len(c.Blocks))
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b.Index] {
			return
		}
		seen[b.Index] = true
		for _, s := range b.Succs {
			walk(s)
		}
	}
	walk(c.Entry)
	var out []*Block
	for _, b := range c.Blocks {
		if seen[b.Index] {
			out = append(out, b)
		}
	}
	return out
}

// Dominators computes the dominator relation over the reachable graph:
// dom[i] is the set of block indices that dominate block i (including
// itself). The iterative set algorithm is quadratic in the worst case,
// which is irrelevant at function-body scale.
func (c *CFG) Dominators() []map[int]bool {
	n := len(c.Blocks)
	reach := c.Reachable()
	inReach := make([]bool, n)
	for _, b := range reach {
		inReach[b.Index] = true
	}
	dom := make([]map[int]bool, n)
	all := map[int]bool{}
	for _, b := range reach {
		all[b.Index] = true
	}
	for _, b := range reach {
		if b == c.Entry {
			dom[b.Index] = map[int]bool{b.Index: true}
			continue
		}
		// Start from "dominated by everything", refine by intersection.
		init := make(map[int]bool, len(all))
		for k := range all {
			init[k] = true
		}
		dom[b.Index] = init
	}
	for changed := true; changed; {
		changed = false
		for _, b := range reach {
			if b == c.Entry {
				continue
			}
			var meet map[int]bool
			for _, p := range b.Preds {
				if !inReach[p.Index] {
					continue
				}
				if meet == nil {
					meet = make(map[int]bool, len(dom[p.Index]))
					for k := range dom[p.Index] {
						meet[k] = true
					}
					continue
				}
				for k := range meet {
					if !dom[p.Index][k] {
						delete(meet, k)
					}
				}
			}
			if meet == nil {
				meet = map[int]bool{}
			}
			meet[b.Index] = true
			if len(meet) != len(dom[b.Index]) {
				dom[b.Index] = meet
				changed = true
				continue
			}
			for k := range meet {
				if !dom[b.Index][k] {
					dom[b.Index] = meet
					changed = true
					break
				}
			}
		}
	}
	return dom
}

// String renders the graph for golden tests: one line per block with
// its kind, the kinds of its nodes, and its successor indices.
func (c *CFG) String(fset *token.FileSet) string {
	var sb strings.Builder
	for _, b := range c.Blocks {
		fmt.Fprintf(&sb, "b%d[%s]:", b.Index, b.Kind)
		for _, n := range b.Nodes {
			fmt.Fprintf(&sb, " %s", nodeDesc(n, fset))
		}
		succs := make([]int, 0, len(b.Succs))
		for _, s := range b.Succs {
			succs = append(succs, s.Index)
		}
		sort.Ints(succs)
		fmt.Fprintf(&sb, " ->")
		for _, s := range succs {
			fmt.Fprintf(&sb, " b%d", s)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// nodeDesc names one placed node for the golden rendering.
func nodeDesc(n ast.Node, fset *token.FileSet) string {
	kind := fmt.Sprintf("%T", n)
	kind = strings.TrimPrefix(kind, "*ast.")
	if fset == nil {
		return kind
	}
	return fmt.Sprintf("%s@L%d", kind, fset.Position(n.Pos()).Line)
}
