package analysis

// LockHold forbids blocking operations while a sync.Mutex/RWMutex is
// held. The serve stack's contract is that critical sections are
// CPU-only: an fsync, a network write, a channel operation, or a sleep
// under a lock turns one slow or stuck peer into a pipeline-wide stall
// (every other goroutine queues on the mutex). The held-lock set is a
// forward may-dataflow over the function's CFG — lock identities are
// the receiver expressions of .Lock()/.RLock() — and "may block" is
// closed over the whole-program call graph, so a helper in another
// package that fsyncs or parks on a channel is flagged at the call site
// under the lock.
//
// A `defer mu.Unlock()` keeps the lock held for the rest of the
// function (the deferred release runs at return); goroutines spawned
// with `go` are excluded (they do not run under the spawner's locks).

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

var LockHold = &Analyzer{
	Name: "lockhold",
	Doc: "flag blocking operations (fsync, network I/O, channel ops, " +
		"sleeps) reachable while a sync.Mutex/RWMutex is held",
	Run: runLockHold,
}

func runLockHold(pass *Pass) error {
	mayBlock := mayBlockFacts(pass.Prog)
	for _, fd := range funcDecls(pass.Files) {
		if !acquiresLock(pass, fd.Body) {
			continue
		}
		lockHoldFunc(pass, fd, mayBlock)
	}
	return nil
}

// acquiresLock is the cheap pre-filter: only functions that take a lock
// need the dataflow.
func acquiresLock(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if _, acquire, ok := lockOp(pass.Info, call); ok && acquire {
				found = true
			}
		}
		return !found
	})
	return found
}

func lockHoldFunc(pass *Pass, fd *ast.FuncDecl, mayBlock map[FuncID]bool) {
	cfg := BuildCFG(fd)
	comm := commOps(fd.Body)
	blocks := cfg.Reachable()

	in := make([]map[string]bool, len(cfg.Blocks))
	out := make([]map[string]bool, len(cfg.Blocks))
	for changed := true; changed; {
		changed = false
		for _, b := range blocks {
			newIn := map[string]bool{}
			for _, p := range b.Preds {
				for k := range out[p.Index] {
					newIn[k] = true
				}
			}
			newOut := lockTransfer(pass, b, newIn, comm, mayBlock, nil)
			if !lockSetEq(newIn, in[b.Index]) || !lockSetEq(newOut, out[b.Index]) {
				in[b.Index], out[b.Index] = newIn, newOut
				changed = true
			}
		}
	}

	report := func(pos token.Pos, desc string, held map[string]bool) {
		pass.Reportf(pos,
			"%s while holding %s: blocking operations under a lock stall every goroutine queued on it; release the lock first",
			desc, heldList(held))
	}
	for _, b := range blocks {
		lockTransfer(pass, b, in[b.Index], comm, mayBlock, report)
	}

	// Selects live at the end of their deciding block; one without a
	// default parks the goroutine with the block's out-state held.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		blk := cfg.BlockOf(sel)
		if blk == nil || selectHasDefault(sel) {
			return true
		}
		if held := out[blk.Index]; len(held) > 0 {
			report(sel.Pos(), "blocking select (no default)", held)
		}
		return true
	})
}

// lockTransfer folds one block's nodes over the held-lock set, calling
// onBlock at every blocking site when it is non-nil (the report pass).
// Deferred statements are skipped — a deferred unlock runs at return,
// so the lock stays held for dataflow purposes — as are `go` bodies.
func lockTransfer(pass *Pass, b *Block, held map[string]bool, comm map[ast.Node]bool,
	mayBlock map[FuncID]bool, onBlock func(token.Pos, string, map[string]bool)) map[string]bool {
	cur := map[string]bool{}
	for k := range held {
		cur[k] = true
	}
	blocked := func(pos token.Pos, desc string) {
		if onBlock != nil && len(cur) > 0 {
			onBlock(pos, desc, cur)
		}
	}
	for _, node := range b.Nodes {
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt, *ast.DeferStmt:
				return false
			case *ast.CallExpr:
				if key, acquire, ok := lockOp(pass.Info, n); ok {
					if acquire {
						cur[key] = true
					} else {
						delete(cur, key)
					}
					return true
				}
				if desc, ok := blockingCall(pass.Info, n); ok {
					blocked(n.Pos(), desc)
					return true
				}
				if fn := calleeOf(pass.Info, n); fn != nil && mayBlock[FuncID(fn.FullName())] {
					blocked(n.Pos(), "call to "+fn.Name()+" (may block)")
				}
			case *ast.SendStmt:
				if !comm[n] {
					blocked(n.Pos(), "channel send")
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && !comm[n] {
					blocked(n.Pos(), "channel receive")
				}
			}
			return true
		})
	}
	return cur
}

func lockSetEq(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// heldList renders the held set for diagnostics, deterministically.
func heldList(held map[string]bool) string {
	keys := make([]string, 0, len(held))
	for k := range held {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return strings.Join(keys, ", ")
}
