package analysis

// Whole-program call graph. Load type-checks every target package from
// source against compiled export data, so a *types.Func resolved at a
// call site in one package and the same function's declaration in
// another package agree on types.Func.FullName() — that string is the
// stable cross-package key the graph is built on.
//
// The graph is deliberately coarse: one node per declared function or
// method, edges to every statically-resolved callee in its body.
// Function literals are attributed to their enclosing declaration
// (they usually run inline), except under a `go` statement — a spawned
// goroutine's work is not the caller's work, so neither its blocking
// operations nor its budget checks may leak into the caller's facts.

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncID identifies a function across the whole program:
// types.Func.FullName(), e.g. "(*pkg/path.Type).Method" or
// "pkg/path.Func".
type FuncID string

// CGNode is one declared function with its outgoing call edges.
type CGNode struct {
	ID      FuncID
	Fn      *types.Func
	Decl    *ast.FuncDecl
	Pkg     *Package
	Callees []FuncID // deduped, sorted; only statically resolved calls
}

// Program is the whole-repo view: every analyzed package plus the call
// graph over their declared functions, with a cache for program-wide
// analyzer facts so the expensive fixpoints run once per constvet
// invocation instead of once per package.
type Program struct {
	Packages []*Package
	Nodes    map[FuncID]*CGNode

	facts map[string]any
}

// NewProgram builds the call graph over the given packages.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Packages: pkgs,
		Nodes:    map[FuncID]*CGNode{},
		facts:    map[string]any{},
	}
	for _, pkg := range pkgs {
		for fn, fd := range declaredFuncs(pkg.Info, pkg.Files) {
			node := &CGNode{ID: FuncID(fn.FullName()), Fn: fn, Decl: fd, Pkg: pkg}
			node.Callees = collectCallees(pkg.Info, fd)
			p.Nodes[node.ID] = node
		}
	}
	return p
}

// Node resolves a call-site callee to its graph node, or nil for
// functions outside the analyzed program (standard library, runtime).
func (p *Program) Node(fn *types.Func) *CGNode {
	if p == nil || fn == nil {
		return nil
	}
	return p.Nodes[FuncID(fn.FullName())]
}

// SortedNodes returns the graph nodes in deterministic ID order, so
// fact fixpoints and their diagnostics never depend on map iteration.
func (p *Program) SortedNodes() []*CGNode {
	out := make([]*CGNode, 0, len(p.Nodes))
	for _, n := range p.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// Fact memoizes one program-wide analyzer fact (e.g. the may-block
// closure) under key. Not goroutine-safe; the driver runs analyzers
// sequentially.
func (p *Program) Fact(key string, build func() any) any {
	if v, ok := p.facts[key]; ok {
		return v
	}
	v := build()
	p.facts[key] = v
	return v
}

// collectCallees gathers the statically-resolved callees of fd's body,
// skipping `go` statements (see the package comment).
func collectCallees(info *types.Info, fd *ast.FuncDecl) []FuncID {
	seen := map[FuncID]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if fn := calleeOf(info, call); fn != nil {
				seen[FuncID(fn.FullName())] = true
			}
		}
		return true
	})
	out := make([]FuncID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// transitiveFact closes a boolean property over the call graph: a
// function has the property if direct(node) holds or any callee has it.
// The result maps FuncID -> true for every function with the property.
func (p *Program) transitiveFact(direct func(*CGNode) bool) map[FuncID]bool {
	has := map[FuncID]bool{}
	nodes := p.SortedNodes()
	for _, n := range nodes {
		if direct(n) {
			has[n.ID] = true
		}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range nodes {
			if has[n.ID] {
				continue
			}
			for _, c := range n.Callees {
				if has[c] {
					has[n.ID] = true
					changed = true
					break
				}
			}
		}
	}
	return has
}
