package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one type-checked package ready for analysis.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File
	Types      *types.Package
	Info       *types.Info
}

// listedPkg is the subset of `go list -json` output the loader needs.
type listedPkg struct {
	ImportPath string
	Name       string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// goList runs `go list` in dir with the given arguments and decodes the
// JSON package stream.
func goList(dir string, args ...string) ([]listedPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", args, err, stderr.String())
	}
	var pkgs []listedPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list %v: decoding: %v", args, err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

const listFields = "-json=ImportPath,Name,Dir,Export,GoFiles,Standard,ImportMap,Error"

// Load type-checks the packages matching patterns (relative to dir, a
// directory inside the module) and returns them ready for analysis. Test
// files are not loaded — constvet, like `go vet` in its default unit
// configuration here, checks the shipping code.
//
// Imports are resolved through compiled export data: `go list -export`
// builds every dependency and reports the export file, which the standard
// library's gc importer can read, so no analyzed package is ever
// type-checked more than once.
func Load(dir string, patterns ...string) ([]*Package, error) {
	// One walk over the full dependency closure collects export data for
	// every import; a second cheap call names the target packages.
	all, err := goList(dir, append([]string{"-export", "-deps", listFields}, patterns...)...)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	byPath := map[string]listedPkg{}
	for _, p := range all {
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		byPath[p.ImportPath] = p
	}
	targets, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, err
	}

	var out []*Package
	for _, t := range targets {
		p, ok := byPath[t.ImportPath]
		if !ok {
			return nil, fmt.Errorf("go list: target %s missing from -deps listing", t.ImportPath)
		}
		pkg, err := typecheck(p, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// LoadProgram loads the whole module rooted at dir (`./...`) into a
// Program so cross-package facts see every edge, and returns the subset
// of packages matching patterns as analysis targets. The expensive
// `go list -export` walk and every package's type-check happen exactly
// once regardless of how narrow the target patterns are.
func LoadProgram(dir string, patterns ...string) (*Program, []*Package, error) {
	pkgs, err := Load(dir, "./...")
	if err != nil {
		return nil, nil, err
	}
	prog := NewProgram(pkgs)

	wantAll := len(patterns) == 0
	for _, p := range patterns {
		if p == "./..." {
			wantAll = true
		}
	}
	if wantAll {
		return prog, pkgs, nil
	}
	listed, err := goList(dir, append([]string{"-json=ImportPath"}, patterns...)...)
	if err != nil {
		return nil, nil, err
	}
	want := map[string]bool{}
	for _, l := range listed {
		want[l.ImportPath] = true
	}
	var targets []*Package
	for _, pkg := range pkgs {
		if want[pkg.ImportPath] {
			targets = append(targets, pkg)
		}
	}
	if len(targets) == 0 {
		return nil, nil, fmt.Errorf("no loaded packages match %v", patterns)
	}
	return prog, targets, nil
}

// typecheck parses p's sources and type-checks them against the export
// data of its dependencies.
func typecheck(p listedPkg, exports map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range p.GoFiles {
		f, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := p.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for import %q", path)
		}
		return os.Open(exp)
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "gc", lookup)}
	info := NewInfo()
	tpkg, err := conf.Check(p.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking %s: %v", p.ImportPath, err)
	}
	return &Package{
		ImportPath: p.ImportPath,
		Name:       p.Name,
		Dir:        p.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}

// NewInfo allocates the types.Info maps the analyzers rely on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
}
