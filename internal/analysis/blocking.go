package analysis

// Shared classification of potentially-blocking operations, used by the
// concurrency analyzers (lockhold, deadlineflow, errflow). "Blocking"
// means the goroutine may park for an unbounded time: fsync and
// directory sync, network I/O, channel operations outside a
// default-carrying select, sleeps (time.Sleep or the injectable
// obs.Clock's Sleep), and sync.WaitGroup/sync.Cond waits.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// lockOp classifies sync.Mutex/RWMutex acquire/release calls. key
// identifies the lock by the receiver expression's source form ("s.mu",
// "p.stateMu"), which is stable within one function — the only scope the
// held-set dataflow ever compares keys in. acquire is true for
// Lock/RLock/TryLock/TryRLock (a successful TryLock holds the lock, and
// the held-set is a may-analysis).
func lockOp(info *types.Info, call *ast.CallExpr) (key string, acquire, ok bool) {
	fn := calleeOf(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Name() != "sync" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "TryLock", "TryRLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return "", false, false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", false, false
	}
	return types.ExprString(sel.X), acquire, true
}

// netPkgs are the packages whose Read/Write-shaped methods count as
// network I/O.
var netPkgs = map[string]bool{"net": true, "net/http": true}

// netBlockingMethods are the method names that move bytes or wait on a
// peer; SetDeadline-style bookkeeping is excluded.
var netBlockingMethods = map[string]bool{
	"Read": true, "Write": true, "ReadFrom": true, "WriteTo": true,
	"Accept": true, "Do": true,
}

// blockingCall reports whether the call itself may block, with a short
// description for the diagnostic. Calls into other analyzed functions
// are the caller's concern (see mayBlockFacts).
func blockingCall(info *types.Info, call *ast.CallExpr) (desc string, ok bool) {
	// File.Sync / SyncDir: fsync latency, the original lockhold target.
	if isFileSyncCall(info, call) {
		return "File.Sync", true
	}
	if recv, name, isMethod := methodCall(info, call); isMethod {
		switch {
		case name == "SyncDir":
			return "SyncDir", true
		case name == "Sleep" && fromPackageNamed(info.TypeOf(recv), "obs"):
			return "Clock.Sleep", true
		case netBlockingMethods[name]:
			if n := namedOf(info.TypeOf(recv)); n != nil && n.Obj().Pkg() != nil && netPkgs[n.Obj().Pkg().Path()] {
				return "network " + name, true
			}
		}
	}
	if fn := calleeOf(info, call); fn != nil && fn.Pkg() != nil {
		switch {
		case fn.Pkg().Name() == "time" && fn.Name() == "Sleep":
			return "time.Sleep", true
		case fn.Pkg().Name() == "sync" && fn.Name() == "Wait":
			return "sync " + recvTypeName(fn) + ".Wait", true
		}
	}
	return "", false
}

// recvTypeName names a method's receiver type for diagnostics
// ("WaitGroup", "Cond"), or the empty string for plain functions.
func recvTypeName(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return ""
	}
	if n := namedOf(sig.Recv().Type()); n != nil {
		return n.Obj().Name()
	}
	return ""
}

// commOps collects the comm operations of every select in the function:
// the send statements and receive expressions that appear as a
// CommClause's comm. They block (or not) as part of their select, so
// the per-statement classification must not double-count them.
func commOps(fn ast.Node) map[ast.Node]bool {
	ops := map[ast.Node]bool{}
	ast.Inspect(fn, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, cs := range sel.Body.List {
			cc := cs.(*ast.CommClause)
			if cc.Comm == nil {
				continue
			}
			ops[cc.Comm] = true
			// A receive comm wraps the <-ch in an assign or expr stmt.
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					ops[u] = true
				}
				return true
			})
		}
		return true
	})
	return ops
}

// selectHasDefault reports whether the select can always proceed.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		if cs.(*ast.CommClause).Comm == nil {
			return true
		}
	}
	return false
}

// isSignalChan reports whether e is a channel of empty structs — the
// repo's convention for pure signal channels (quit, done, ready), whose
// receives are lifecycle waits rather than data-plane blocking.
func isSignalChan(info *types.Info, e ast.Expr) bool {
	ch, _ := info.TypeOf(e).(*types.Chan)
	if ch == nil {
		return false
	}
	st, _ := ch.Elem().Underlying().(*types.Struct)
	return st != nil && st.NumFields() == 0
}

// isChanRange reports a range-over-channel statement (the drain idiom:
// runs until the channel closes, which is the producer's lifecycle).
func isChanRange(info *types.Info, rng *ast.RangeStmt) bool {
	_, ok := info.TypeOf(rng.X).(*types.Chan)
	return ok
}

// hasDirectBlocking reports whether the body performs a blocking
// operation itself (not through callees). `go` statements are skipped —
// the spawned goroutine blocks, not this function.
func hasDirectBlocking(info *types.Info, body ast.Node) bool {
	comm := commOps(body)
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.CallExpr:
			if _, ok := blockingCall(info, n); ok {
				found = true
			}
		case *ast.SendStmt:
			if !comm[n] {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comm[n] {
				found = true
			}
		case *ast.SelectStmt:
			if !selectHasDefault(n) {
				found = true
			}
		case *ast.RangeStmt:
			if isChanRange(info, n) {
				found = true
			}
		}
		return !found
	})
	return found
}

// mayBlockFacts closes "may block" over the whole-program call graph:
// a function may block if its body blocks directly or any
// statically-resolved callee may block.
func mayBlockFacts(prog *Program) map[FuncID]bool {
	if prog == nil {
		return nil
	}
	return prog.Fact("blocking.mayblock", func() any {
		return prog.transitiveFact(func(n *CGNode) bool {
			return hasDirectBlocking(n.Pkg.Info, n.Decl.Body)
		})
	}).(map[FuncID]bool)
}
