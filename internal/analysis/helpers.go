package analysis

import (
	"go/ast"
	"go/types"
)

// calleeOf resolves the function or method a call expression invokes,
// or nil when the callee is not a declared function (builtins, function
// values, conversions).
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// deref strips one level of pointer.
func deref(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// namedOf returns the named type behind t (through one pointer), or nil.
func namedOf(t types.Type) *types.Named {
	if t == nil {
		return nil
	}
	n, _ := deref(t).(*types.Named)
	return n
}

// fromPackageNamed reports whether t is (a pointer to) a named type
// declared in a package with the given name. Matching by package *name*
// rather than import path keeps the analyzers testable against fixture
// packages that mimic internal/obs and internal/budget.
func fromPackageNamed(t types.Type, pkgName string) bool {
	n := namedOf(t)
	return n != nil && n.Obj().Pkg() != nil && n.Obj().Pkg().Name() == pkgName
}

// ifaceOf returns the interface type behind t, or nil.
func ifaceOf(t types.Type) *types.Interface {
	if t == nil {
		return nil
	}
	i, _ := t.Underlying().(*types.Interface)
	return i
}

// ifaceHasMethod reports whether the interface declares (directly or via
// embedding) a method with the given name.
func ifaceHasMethod(i *types.Interface, name string) bool {
	for m := 0; m < i.NumMethods(); m++ {
		if i.Method(m).Name() == name {
			return true
		}
	}
	return false
}

// methodCall destructures x.M(...) into the receiver expression and the
// method name; ok is false for ordinary function calls.
func methodCall(info *types.Info, call *ast.CallExpr) (recv ast.Expr, name string, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if s, found := info.Selections[sel]; !found || s.Kind() != types.MethodVal {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// isWorkCall reports whether the call invokes user code: not a builtin,
// not a type conversion. Loops whose bodies make no such call (pure
// pointer walks, counter updates) are treated as structurally bounded.
func isWorkCall(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && (tv.IsType() || tv.IsBuiltin()) {
		return false
	}
	return true
}

// parentMap records each node's parent within root.
func parentMap(root ast.Node) map[ast.Node]ast.Node {
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})
	return parents
}

// funcDecls yields every function declaration in the pass, including
// methods.
func funcDecls(files []*ast.File) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// declaredFuncs maps the package's *types.Func objects to their
// declarations, for package-local call-graph fixpoints.
func declaredFuncs(info *types.Info, files []*ast.File) map[*types.Func]*ast.FuncDecl {
	out := map[*types.Func]*ast.FuncDecl{}
	for _, fd := range funcDecls(files) {
		if fn, ok := info.Defs[fd.Name].(*types.Func); ok {
			out[fn] = fd
		}
	}
	return out
}

// receiverObj returns the declared receiver variable of a method, or nil
// for plain functions and blank receivers.
func receiverObj(info *types.Info, fd *ast.FuncDecl) *types.Var {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	v, _ := info.Defs[fd.Recv.List[0].Names[0]].(*types.Var)
	return v
}
