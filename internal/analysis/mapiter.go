package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// MapIter guards the determinism contract behind reproducible
// experiments: Go map iteration order is randomized, so ranging over a
// map must never decide the order of emitted tuples or rows. The
// analyzer flags a range-over-map whose body either accumulates into a
// slice declared outside the loop that is never subsequently sorted in
// the same function, or writes output directly (Print/Fprint/Write
// calls). Order-insensitive uses — counting, map-to-map transforms,
// indexed writes — pass untouched. Introduced with PR 1's deterministic
// kernels; mechanized in PR 4.
var MapIter = &Analyzer{
	Name: "mapiter",
	Doc: "flag map iteration whose order can flow into emitted " +
		"tuples/rows without an intervening sort",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSuffix(pkgPath, "internal/relation") ||
			pathHasSuffix(pkgPath, "internal/chase") ||
			pathHasSuffix(pkgPath, "internal/closure")
	},
	Run: runMapIter,
}

// emitPrefixes are callee name prefixes that write directly to an output
// stream, making iteration order externally visible.
var emitPrefixes = []string{"Print", "Fprint", "Write"}

func isEmitCall(info *types.Info, call *ast.CallExpr) bool {
	var name string
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	for _, p := range emitPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// appendTarget destructures `s = append(s, ...)` (or `s := append(...)`)
// and returns the object of s, or nil.
func appendTarget(info *types.Info, stmt *ast.AssignStmt) (types.Object, *ast.CallExpr) {
	for i, rhs := range stmt.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			continue
		}
		if tv, ok := info.Types[call.Fun]; !ok || !tv.IsBuiltin() {
			continue
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || id.Name != "append" {
			continue
		}
		if i >= len(stmt.Lhs) {
			continue
		}
		lhs, ok := ast.Unparen(stmt.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		if obj := info.Uses[lhs]; obj != nil {
			return obj, call
		}
		if obj := info.Defs[lhs]; obj != nil {
			return obj, call
		}
	}
	return nil, nil
}

// mentionsObj reports whether the expression tree mentions the object.
func mentionsObj(info *types.Info, root ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && (info.Uses[id] == obj || info.Defs[id] == obj) {
			found = true
		}
		return !found
	})
	return found
}

// sortsObjAfter reports whether fn contains, after pos, a call whose
// callee name contains "Sort" and that mentions obj (as an argument or
// receiver) — e.g. sort.Strings(out), relation.SortTuplesBy(out, cols),
// attr.SortSets(out).
func sortsObjAfter(pass *Pass, fn *ast.FuncDecl, obj types.Object, after ast.Node) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || found {
			return !found
		}
		if call.Pos() < after.Pos() {
			return true
		}
		var name string
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
			// Qualified calls count their qualifier: sort.Ints, sort.Slice.
			if x, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
				name = x.Name + "." + name
			}
		}
		if !strings.Contains(name, "Sort") && !strings.Contains(name, "sort") {
			return true
		}
		if mentionsObj(pass.Info, call, obj) {
			found = true
		}
		return true
	})
	return found
}

func runMapIter(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypeOf(rng.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rng.Body, func(m ast.Node) bool {
				switch stmt := m.(type) {
				case *ast.AssignStmt:
					obj, call := appendTarget(pass.Info, stmt)
					if obj == nil {
						return true
					}
					// Accumulators declared inside the loop body reset every
					// iteration; only escape of cross-iteration order matters.
					if obj.Pos() >= rng.Body.Pos() && obj.Pos() <= rng.Body.End() {
						return true
					}
					if !sortsObjAfter(pass, fd, obj, rng) {
						pass.Reportf(call.Pos(),
							"append inside range-over-map leaks map iteration order into %q; sort it before emitting (or //constvet:allow mapiter if order is provably irrelevant)", obj.Name())
					}
				case *ast.CallExpr:
					if isEmitCall(pass.Info, stmt) {
						pass.Reportf(stmt.Pos(),
							"output written inside range-over-map follows map iteration order; collect and sort first")
					}
				}
				return true
			})
			return true
		})
	}
	return nil
}
