package analysis

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// The fixture harness is a small analysistest: fixtures live in the
// nested module testdata/src (so `go list` resolves them without
// touching the real repository), and lines carrying an expected
// diagnostic say so with a trailing
//
//	// want `regexp` [`regexp` ...]
//
// comment. Each analyzer's test loads its ok and bad fixture packages,
// runs the analyzer unconditionally (AppliesTo is a driver concern),
// and requires the unsuppressed findings and the want-comments to match
// one-to-one by file, line, and message pattern.

// wantRe extracts the backquoted patterns of a want comment.
var wantRe = regexp.MustCompile("`([^`]*)`")

// expectation is one expected diagnostic.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

// parseExpectations collects `// want` comments from a loaded package.
func parseExpectations(t *testing.T, pkg *Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRe.FindAllStringSubmatch(text, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: want comment with no backquoted pattern: %s", pos, c.Text)
				}
				for _, m := range ms {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, m[1], err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	return out
}

// fixtures loads the fixture packages matching pattern (relative to
// testdata/src).
func fixtures(t *testing.T, pattern string) []*Package {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(dir, "./"+pattern)
	if err != nil {
		t.Fatalf("loading fixtures %s: %v", pattern, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no fixture packages match %s", pattern)
	}
	return pkgs
}

// runFixtures checks one analyzer against every package under pattern
// and returns the suppressed findings (for the allow-comment tests).
// The loaded fixture packages form their own little program, so
// cross-package fact propagation is exercised exactly as in the driver.
func runFixtures(t *testing.T, a *Analyzer, pattern string) []Finding {
	t.Helper()
	var suppressed []Finding
	pkgs := fixtures(t, pattern)
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		findings, err := RunAnalyzer(a, prog, pkg)
		if err != nil {
			t.Fatalf("%s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		wants := parseExpectations(t, pkg)
		for _, f := range findings {
			if f.Suppressed {
				suppressed = append(suppressed, f)
				continue
			}
			matched := false
			for _, w := range wants {
				if !w.used && w.file == f.Pos.Filename && w.line == f.Pos.Line && w.re.MatchString(f.Message) {
					w.used = true
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("unexpected diagnostic:\n  %s", f)
			}
		}
		for _, w := range wants {
			if !w.used {
				t.Errorf("missing diagnostic: %s:%d: expected match for %q", w.file, w.line, w.re)
			}
		}
	}
	return suppressed
}

func TestBudgetLoopFixtures(t *testing.T) {
	suppressed := runFixtures(t, BudgetLoop, "budgetloop/...")
	if len(suppressed) != 1 {
		t.Errorf("want 1 suppressed finding from the ok fixture's allow comment, got %d", len(suppressed))
	}
}

// TestCacheBoundFixtures also pins the allow grammar for the new check:
// exactly one deliberate exception lives in the ok fixture.
func TestCacheBoundFixtures(t *testing.T) {
	suppressed := runFixtures(t, CacheBound, "cachebound/...")
	if len(suppressed) != 1 {
		t.Errorf("want 1 suppressed finding from the ok fixture's allow comment, got %d", len(suppressed))
	}
}

// TestDeltaResetFixtures: the ok fixture carries one sanctioned
// decisions-only drop behind an allow comment.
func TestDeltaResetFixtures(t *testing.T) {
	suppressed := runFixtures(t, DeltaReset, "deltareset/...")
	if len(suppressed) != 1 {
		t.Errorf("want 1 suppressed finding from the ok fixture's allow comment, got %d", len(suppressed))
	}
}

// The three concurrency analyzers each pin one sanctioned exception in
// their ok fixture, so the allow grammar is covered for every new name.
func TestLockHoldFixtures(t *testing.T) {
	suppressed := runFixtures(t, LockHold, "lockhold/...")
	if len(suppressed) != 1 {
		t.Errorf("want 1 suppressed finding from the ok fixture's allow comment, got %d", len(suppressed))
	}
}

func TestDeadlineFlowFixtures(t *testing.T) {
	suppressed := runFixtures(t, DeadlineFlow, "deadlineflow/...")
	if len(suppressed) != 1 {
		t.Errorf("want 1 suppressed finding from the ok fixture's allow comment, got %d", len(suppressed))
	}
}

func TestErrFlowFixtures(t *testing.T) {
	suppressed := runFixtures(t, ErrFlow, "errflow/...")
	if len(suppressed) != 1 {
		t.Errorf("want 1 suppressed finding from the ok fixture's allow comment, got %d", len(suppressed))
	}
}

func TestErrClassFixtures(t *testing.T)   { runFixtures(t, ErrClass, "errclass/...") }
func TestFsyncOrderFixtures(t *testing.T) { runFixtures(t, FsyncOrder, "fsyncorder/...") }
func TestMapIterFixtures(t *testing.T)    { runFixtures(t, MapIter, "mapiter/...") }
func TestNilMetricsFixtures(t *testing.T) { runFixtures(t, NilMetrics, "nilmetrics/...") }
func TestRawGoFixtures(t *testing.T)      { runFixtures(t, RawGo, "rawgo/...") }
func TestWalltimeFixtures(t *testing.T)   { runFixtures(t, Walltime, "walltime/...") }

// TestEveryAnalyzerHasFixtures pins the fixture convention: each
// registered analyzer must have both a passing and a failing fixture.
func TestEveryAnalyzerHasFixtures(t *testing.T) {
	wantDirs := map[string][]string{
		"budgetloop":   {"budgetloop/ok", "budgetloop/bad"},
		"cachebound":   {"cachebound/ok", "cachebound/bad"},
		"deadlineflow": {"deadlineflow/ok", "deadlineflow/bad"},
		"deltareset":   {"deltareset/ok", "deltareset/bad"},
		"errclass":     {"errclass/ok", "errclass/bad"},
		"errflow":      {"errflow/ok", "errflow/bad"},
		"fsyncorder":   {"fsyncorder/ok", "fsyncorder/bad"},
		"lockhold":     {"lockhold/ok", "lockhold/bad"},
		"mapiter":      {"mapiter/ok", "mapiter/bad"},
		"nilmetrics":   {"nilmetrics/handles_ok", "nilmetrics/handles_bad"},
		"rawgo":        {"rawgo/ok", "rawgo/bad"},
		"walltime":     {"walltime/ok", "walltime/bad"},
	}
	for _, a := range All() {
		dirs, ok := wantDirs[a.Name]
		if !ok {
			t.Errorf("analyzer %s has no fixture directories registered in this test", a.Name)
			continue
		}
		for _, d := range dirs {
			fixtures(t, d)
		}
	}
}

// TestAllowSuppression covers the comment grammar end to end on a real
// loaded fixture: the ok fixture's allowed loop is found but marked
// suppressed, and the String form says so.
func TestAllowSuppression(t *testing.T) {
	pkgs := fixtures(t, "budgetloop/ok")
	prog := NewProgram(pkgs)
	for _, pkg := range pkgs {
		findings, err := RunAnalyzer(BudgetLoop, prog, pkg)
		if err != nil {
			t.Fatal(err)
		}
		var got []Finding
		for _, f := range findings {
			if f.Suppressed {
				got = append(got, f)
			}
		}
		if len(got) != 1 {
			t.Fatalf("want exactly 1 suppressed finding, got %v", findings)
		}
		if s := got[0].String(); !strings.Contains(s, "suppressed by //constvet:allow") {
			t.Errorf("suppressed finding String() = %q; want it to mention the allow comment", s)
		}
	}
}

// parseOne parses a source string into an untyped Package (enough for
// the comment-grammar helpers, which never consult types).
func parseOne(t *testing.T, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	return &Package{Fset: fset, Files: []*ast.File{f}}
}

// TestAllowedLinesGrammar nails the marker edge cases without fixtures.
func TestAllowedLinesGrammar(t *testing.T) {
	cases := []struct {
		comment string
		names   []string
	}{
		{"//constvet:allow mapiter", []string{"mapiter"}},
		{"//constvet:allow mapiter walltime -- reason text", []string{"mapiter", "walltime"}},
		{"//constvet:allow mapiter -- because -- of dashes", []string{"mapiter"}},
		{"//constvet:allowed mapiter", nil}, // not the marker
		{"//constvet:allow", nil},           // marker with no names
		{"// want `x`", nil},
	}
	for _, tc := range cases {
		src := fmt.Sprintf("package p\n\n%s\nvar X = 1\n", tc.comment)
		pkg := parseOne(t, src)
		allowed := allowedLines(pkg.Fset, pkg.Files)
		for _, name := range tc.names {
			if !allowed[3][name] || !allowed[4][name] {
				t.Errorf("%q: want %q allowed on lines 3 and 4, got %v", tc.comment, name, allowed)
			}
		}
		if tc.names == nil && len(allowed) != 0 {
			t.Errorf("%q: want no allowed lines, got %v", tc.comment, allowed)
		}
	}
}
