package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FsyncOrder mechanizes the PR-2-review durability ordering: namespace
// changes made through the store's injectable FS (Create, OpenAppend,
// Rename, Remove) are not durable until SyncDir, and a rename must not
// promote content that was never itself fsynced. Concretely:
//
//  1. every call to Rename on an FS-like interface must be preceded, in
//     the same function, by a File.Sync call (content durable before the
//     name points at it), and
//  2. every exported function whose success path performs a namespace
//     change — directly or through helpers, package-local or not — must
//     follow it with SyncDir before returning; helpers may leave the
//     obligation to their callers, but it must be discharged before the
//     API boundary. The helper summaries are a whole-program fact, so an
//     obligation created in internal/store and leaked through a wrapper
//     in another package is still caught, and
//  3. the two-phase ordering: a call to AppendCommit on a txlog-like
//     value must be dominated, in the same function's CFG, by a call to
//     AppendIntent. AppendIntent fsyncs its record by contract, so
//     dominance means every path that writes a commit record first made
//     the intent durable on the participants — a commit record without
//     durable intents would commit a transaction recovery cannot redo.
//
// "FS-like" is duck-typed: any interface that offers both the mutating
// method and SyncDir. Methods on types that themselves implement such an
// interface (DirFS, MemFS, FaultFS) are the substrate, not users of it,
// and are skipped. "Txlog-like" is likewise duck-typed — any value
// whose type offers AppendIntent, AppendCommit, and Sync (interface or
// concrete) — and methods on txlog-like receivers are skipped: they
// are the substrate encoding records, not protocol users.
var FsyncOrder = &Analyzer{
	Name: "fsyncorder",
	Doc: "flag FS namespace changes (Create/OpenAppend/Rename/Remove) not " +
		"bracketed by File.Sync and SyncDir on the success path, and " +
		"two-phase commit records not dominated by their intent append",
	Run: runFsyncOrder,
}

// fsMutators are the FS methods that change the directory namespace.
// Truncate is excluded: the FS contract makes it durable on return.
var fsMutators = map[string]bool{"Create": true, "OpenAppend": true, "Rename": true, "Remove": true}

// fsLikeCall classifies x.M(...) where x's static type is an interface
// declaring both M and SyncDir.
func fsLikeCall(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	recv, name, isMethod := methodCall(info, call)
	if !isMethod {
		return "", false
	}
	iface := ifaceOf(info.TypeOf(recv))
	if iface == nil || !ifaceHasMethod(iface, "SyncDir") || !ifaceHasMethod(iface, name) {
		return "", false
	}
	return name, true
}

// isFileSyncCall reports a zero-argument .Sync() method call (File.Sync).
func isFileSyncCall(info *types.Info, call *ast.CallExpr) bool {
	_, name, isMethod := methodCall(info, call)
	return isMethod && name == "Sync" && len(call.Args) == 0
}

// txLogLike reports whether t (interface or concrete) offers the
// two-phase trio AppendIntent / AppendCommit / Sync.
func txLogLike(t types.Type) bool {
	if t == nil {
		return false
	}
	if iface := ifaceOf(t); iface != nil {
		return ifaceHasMethod(iface, "AppendIntent") &&
			ifaceHasMethod(iface, "AppendCommit") &&
			ifaceHasMethod(iface, "Sync")
	}
	want := map[string]bool{"AppendIntent": false, "AppendCommit": false, "Sync": false}
	for _, typ := range []types.Type{t, types.NewPointer(deref(t))} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if _, ok := want[ms.At(i).Obj().Name()]; ok {
				want[ms.At(i).Obj().Name()] = true
			}
		}
	}
	return want["AppendIntent"] && want["AppendCommit"] && want["Sync"]
}

// txLogCall classifies x.M(...) where x is txlog-like, returning M.
func txLogCall(info *types.Info, call *ast.CallExpr) (name string, ok bool) {
	recv, name, isMethod := methodCall(info, call)
	if !isMethod || !txLogLike(info.TypeOf(recv)) {
		return "", false
	}
	return name, true
}

// implementsTxLogLike reports whether the method's receiver type is
// itself txlog-like — the record-encoding substrate, exempt from the
// protocol-ordering rule (AppendCommit's own body appends no intent).
func implementsTxLogLike(fd *ast.FuncDecl, info *types.Info) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	return txLogLike(info.TypeOf(fd.Recv.List[0].Type))
}

// implementsFSLike reports whether the method's receiver type itself has
// a SyncDir method — i.e. the function is part of an FS implementation.
func implementsFSLike(fd *ast.FuncDecl, info *types.Info) bool {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return false
	}
	t := info.TypeOf(fd.Recv.List[0].Type)
	if t == nil {
		return false
	}
	for _, typ := range []types.Type{t, types.NewPointer(deref(t))} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == "SyncDir" {
				return true
			}
		}
	}
	return false
}

// fsEvents summarizes one function's durability-relevant actions.
type fsEvents struct {
	lastMutate token.Pos // latest namespace change (NoPos if none)
	mutateName string    // method name at lastMutate, for the diagnostic
	lastSync   token.Pos // latest SyncDir (NoPos if none)
	hasSync    bool
}

// dirty reports whether a namespace change is not followed by SyncDir.
func (e fsEvents) dirty() bool {
	return e.lastMutate != token.NoPos && (!e.hasSync || e.lastSync < e.lastMutate)
}

// fsyncEvents computes the per-function durability summaries as a
// whole-program fixpoint: a call to a dirty helper counts as a
// namespace change at the call site; a call to a clean helper that
// performs SyncDir counts as a sync point (SyncDir makes *all* prior
// namespace changes durable, so a helper ending synced discharges
// earlier obligations too). Positions in a summary are local to the
// summarized function's file set and are only ever compared within it.
func fsyncEvents(prog *Program) map[FuncID]fsEvents {
	if prog == nil {
		return nil
	}
	return prog.Fact("fsyncorder.events", func() any {
		events := map[FuncID]fsEvents{}
		nodes := prog.SortedNodes()
		for changed := true; changed; {
			changed = false
			for _, n := range nodes {
				if implementsFSLike(n.Decl, n.Pkg.Info) {
					continue
				}
				e := computeFsEvents(n, events)
				if e != events[n.ID] {
					events[n.ID] = e
					changed = true
				}
			}
		}
		return events
	}).(map[FuncID]fsEvents)
}

// computeFsEvents folds one function's body over the current summaries.
func computeFsEvents(node *CGNode, events map[FuncID]fsEvents) fsEvents {
	info := node.Pkg.Info
	var e fsEvents
	ast.Inspect(node.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if name, ok := fsLikeCall(info, call); ok {
			switch {
			case fsMutators[name]:
				if call.Pos() > e.lastMutate {
					e.lastMutate, e.mutateName = call.Pos(), name
				}
			case name == "SyncDir":
				e.hasSync = true
				if call.Pos() > e.lastSync {
					e.lastSync = call.Pos()
				}
			}
			return true
		}
		callee := calleeOf(info, call)
		if callee == nil {
			return true
		}
		ce, ok := events[FuncID(callee.FullName())]
		if !ok {
			return true
		}
		if ce.dirty() {
			if call.Pos() > e.lastMutate {
				e.lastMutate, e.mutateName = call.Pos(), ce.mutateName
			}
		} else if ce.hasSync {
			e.hasSync = true
			if call.Pos() > e.lastSync {
				e.lastSync = call.Pos()
			}
		}
		return true
	})
	return e
}

func runFsyncOrder(pass *Pass) error {
	events := fsyncEvents(pass.Prog)

	for _, fd := range funcDecls(pass.Files) {
		if implementsFSLike(fd, pass.Info) {
			continue
		}
		// Rule 1: rename only after the content is fsynced.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := fsLikeCall(pass.Info, call); ok && name == "Rename" {
				synced := false
				ast.Inspect(fd.Body, func(m ast.Node) bool {
					if c, ok := m.(*ast.CallExpr); ok && c.Pos() < call.Pos() && isFileSyncCall(pass.Info, c) {
						synced = true
					}
					return !synced
				})
				if !synced {
					pass.Reportf(call.Pos(),
						"Rename without a preceding File.Sync in this function: the renamed content may not be durable when the name starts pointing at it")
				}
			}
			return true
		})
		// Rule 3: a commit record only after its durable intents. Every
		// AppendCommit call on a txlog-like value must be dominated by
		// an AppendIntent call in this function's CFG, so no path can
		// write the commit record before the intent is on disk.
		if !implementsTxLogLike(fd, pass.Info) {
			var ff *funcFlow
			var intents []ast.Node
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				name, ok := txLogCall(pass.Info, call)
				if !ok || name != "AppendCommit" {
					return true
				}
				if ff == nil {
					ff = newFuncFlow(fd)
					intents = collectGuards(fd.Body, func(m ast.Node) bool {
						c, ok := m.(*ast.CallExpr)
						if !ok {
							return false
						}
						in, ok := txLogCall(pass.Info, c)
						return ok && in == "AppendIntent"
					})
				}
				if !ff.guardedBy(call, intents) {
					pass.Reportf(call.Pos(),
						"AppendCommit is not dominated by AppendIntent in this function: a path can write the commit record before the intent is durable, committing a transaction recovery cannot redo")
				}
				return true
			})
		}
		// Rule 2: exported entry points must not return with the
		// namespace dirty.
		if fd.Name.IsExported() {
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if e := events[FuncID(fn.FullName())]; e.dirty() {
				pass.Reportf(e.lastMutate,
					"namespace change (%s) is not followed by SyncDir before this exported function returns; the entry is not durable across power loss", e.mutateName)
			}
		}
	}
	return nil
}
