// Package helper provides a budget-checking step behind a package
// boundary: budgetloop's check closure is computed over the whole
// program, so loops bounded through this helper count exactly like
// loops using a package-local wrapper.
package helper

import "fixtures/budget"

// Step consumes one budget unit on behalf of the caller's loop.
func Step(b *budget.B) error { return b.Step(1) }
