// Passing fixtures for budgetloop: every potentially unbounded loop
// either checks its budget (directly or via a package-local wrapper),
// makes no calls at all, or carries a justified allow comment.
package ok

import "fixtures/budget"

// Direct check inside the loop.
func direct(b *budget.B, work func() bool) error {
	for {
		if err := b.Check(); err != nil {
			return err
		}
		if work() {
			return nil
		}
	}
}

// step is a tableau-style wrapper; the call-graph fixpoint must see
// through it.
func step(b *budget.B) error { return b.Step(1) }

func viaWrapper(b *budget.B, work func() bool) error {
	for {
		if err := step(b); err != nil {
			return err
		}
		if work() {
			return nil
		}
	}
}

// A loop with no calls is structurally bounded (union-find pointer walk).
func find(parent map[int]int, x int) int {
	for {
		p, ok := parent[x]
		if !ok {
			return x
		}
		x = p
	}
}

// Counted loops (non-nil post statement) are never flagged.
func counted(work func()) {
	for i := 0; i < 8; i++ {
		work()
	}
}

// A justified exception is suppressed but stays countable.
func allowed(work func() bool) {
	//constvet:allow budgetloop -- fixture: deliberately exempted loop
	for !work() {
	}
}
