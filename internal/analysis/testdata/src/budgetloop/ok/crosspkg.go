package ok

import (
	"fixtures/budget"
	"fixtures/budgetloop/helper"
)

// SearchCrossPkg is bounded through a helper in another package: the
// program-wide check closure must see helper.Step -> budget.B.Step, or
// this clean fixture regresses into a finding.
func SearchCrossPkg(b *budget.B, next func() bool) {
	for next() {
		if err := helper.Step(b); err != nil {
			return
		}
	}
}
