// Failing fixtures for budgetloop: unbudgeted loops that do work.
package bad

import "fixtures/budget"

// The budget exists but the loop never consults it.
func search(b *budget.B, work func() bool) error {
	if err := b.Step(1); err != nil {
		return err
	}
	for { // want `potentially unbounded loop never checks its budget\.B`
		if work() {
			return nil
		}
	}
}

// A condition-only loop doing work is just as unbounded.
func drain(b *budget.B, pending func() bool, pop func()) {
	_ = b
	for pending() { // want `potentially unbounded loop never checks its budget\.B`
		pop()
	}
}
