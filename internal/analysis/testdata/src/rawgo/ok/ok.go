// Passing fixtures for rawgo: no goroutines spawned.
package ok

// Apply runs the work synchronously.
func Apply(fs []func()) {
	for _, f := range fs {
		f()
	}
}
