// Failing fixtures for rawgo: a raw go statement outside the
// sanctioned sites.
package bad

import "sync"

// Fire spawns an unscheduled goroutine.
func Fire(f func()) {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `raw go statement outside the sanctioned concurrency sites`
		defer wg.Done()
		f()
	}()
	wg.Wait()
}
