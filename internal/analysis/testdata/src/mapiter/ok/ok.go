// Passing fixtures for mapiter: map iteration whose order is sorted
// away, stays inside the loop, or cannot reach any output.
package ok

import "sort"

// Collect-then-sort is the sanctioned pattern.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Order-insensitive aggregation.
func Sum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// Map-to-map transforms have no order to leak.
func Invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Accumulators declared inside the body reset every iteration; only
// cross-iteration order escape matters.
func Widths(m map[string][]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, vs := range m {
		var row []int
		row = append(row, vs...)
		out[k] = len(row)
	}
	return out
}
