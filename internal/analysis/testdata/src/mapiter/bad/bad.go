// Failing fixtures for mapiter: map iteration order escaping into
// emitted rows.
package bad

import "fmt"

// Append into an outer slice with no later sort.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append inside range-over-map leaks map iteration order into "out"`
	}
	return out
}

// Writing output mid-iteration makes the order externally visible.
func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `output written inside range-over-map follows map iteration order`
	}
}
