// Package store mimics the repository's internal/store error
// classifier for analyzer fixtures: errflow recognizes Classify by the
// package *name*, so consumer fixtures import this stand-in.
package store

// Class labels an error's retry disposition.
type Class int

// The two dispositions that matter to a retry loop.
const (
	ClassTransient Class = iota
	ClassPermanent
)

// Classify labels err.
func Classify(err error) Class {
	if err == nil {
		return ClassTransient
	}
	return ClassPermanent
}
