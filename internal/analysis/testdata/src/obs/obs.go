// Package obs mimics the repository's internal/obs for analyzer
// fixtures: nilmetrics recognizes handle types by the package *name*,
// so consumer fixtures import this stand-in.
package obs

// Counter is a minimal stand-in for obs.Counter.
type Counter struct{ n int64 }

// Inc increments the counter. No-op on a nil receiver.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Sink hands out named handles.
type Sink interface {
	Counter(name string) *Counter
}

// Clock is a minimal stand-in for obs.Clock: lockhold and errflow
// recognize Sleep, and deadlineflow recognizes NowNS comparisons, by
// the receiver's package name.
type Clock interface {
	NowNS() int64
	Sleep(ns int64)
}
