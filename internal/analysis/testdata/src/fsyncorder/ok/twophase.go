// Passing fixtures for fsyncorder rule 3: two-phase commit records
// written only after their intents. TxLog mirrors internal/shard's
// cross-shard transaction log; the analyzer duck-types any value
// offering AppendIntent, AppendCommit, and Sync.
package ok

// TxLog mirrors the two-phase subset of shard.TxLog.
type TxLog interface {
	AppendIntent(xid uint64) error
	AppendCommit(xid uint64) error
	Sync() error
}

// CommitAfterIntents is the canonical coordinator ladder: intents on
// every participant (each durable by AppendIntent's contract), then the
// commit record.
func CommitAfterIntents(coord, part TxLog, xid uint64) error {
	if err := part.AppendIntent(xid); err != nil {
		return err
	}
	if err := coord.AppendIntent(xid); err != nil {
		return err
	}
	return coord.AppendCommit(xid)
}

// CommitInBranch keeps the obligation when the commit is conditional:
// the intent dominates both arms.
func CommitInBranch(coord TxLog, xid uint64, fast bool) error {
	if err := coord.AppendIntent(xid); err != nil {
		return err
	}
	if fast {
		return coord.AppendCommit(xid)
	}
	if err := coord.Sync(); err != nil {
		return err
	}
	return coord.AppendCommit(xid)
}
