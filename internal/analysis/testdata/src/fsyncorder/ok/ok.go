// Passing fixtures for fsyncorder: namespace changes bracketed by
// File.Sync and SyncDir on the success path. The FS/File interfaces
// mirror internal/store's injectable filesystem; the analyzer
// duck-types any interface offering both the mutator and SyncDir.
package ok

// File mirrors store.File.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS mirrors the mutating subset of store.FS.
type FS interface {
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	SyncDir() error
}

// WriteDurable is the canonical tmp-write/Sync/Rename/SyncDir shape.
func WriteDurable(fsys FS, name string, data []byte) error {
	f, err := fsys.Create(name + ".tmp")
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fsys.Rename(name+".tmp", name); err != nil {
		return err
	}
	return fsys.SyncDir()
}

// create leaves the SyncDir obligation to its caller; unexported
// helpers may end dirty.
func create(fsys FS, name string) (File, error) {
	return fsys.Create(name)
}

// CreateDurable discharges the helper's obligation before returning.
func CreateDurable(fsys FS, name string) (File, error) {
	f, err := create(fsys, name)
	if err != nil {
		return nil, err
	}
	if err := fsys.SyncDir(); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// RemoveDurable makes the removal durable before returning.
func RemoveDurable(fsys FS, name string) error {
	if err := fsys.Remove(name); err != nil {
		return err
	}
	return fsys.SyncDir()
}
