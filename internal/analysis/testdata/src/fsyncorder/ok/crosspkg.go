package ok

import "fixtures/fsyncorder/helper"

// RotateViaHelper creates an entry locally and relies on the helper's
// SyncDir to discharge the obligation: the cross-package summary must
// carry the helper's sync point back here, or this clean fixture
// regresses into a finding.
func RotateViaHelper(fsys helper.FS, name string) error {
	f, err := fsys.Create(name)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return helper.RemoveDurable(fsys, name+".old")
}
