package bad

import "fixtures/fsyncorder/helper"

// PublishViaHelper leaks a namespace obligation across the package
// boundary: the helper created an entry, nobody ran SyncDir, and this
// exported function returns anyway.
func PublishViaHelper(fsys helper.FS, name string) error {
	_, err := helper.CreateTmp(fsys, name) // want `namespace change \(Create\) is not followed by SyncDir`
	return err
}
