// Failing fixtures for fsyncorder rule 3: commit records a recovery
// could find without a durable intent to redo from.
package bad

// TxLog mirrors the two-phase subset of shard.TxLog.
type TxLog interface {
	AppendIntent(xid uint64) error
	AppendCommit(xid uint64) error
	Sync() error
}

// CommitWithoutIntent writes the commit record with no intent at all.
func CommitWithoutIntent(coord TxLog, xid uint64) error {
	return coord.AppendCommit(xid) // want `AppendCommit is not dominated by AppendIntent`
}

// CommitIntentOneArm only appends the intent on one branch, so a path
// reaches the commit record with nothing durable to redo.
func CommitIntentOneArm(coord TxLog, xid uint64, cross bool) error {
	if cross {
		if err := coord.AppendIntent(xid); err != nil {
			return err
		}
	}
	return coord.AppendCommit(xid) // want `AppendCommit is not dominated by AppendIntent`
}

// CommitBeforeIntent has the ladder inverted.
func CommitBeforeIntent(coord TxLog, xid uint64) error {
	if err := coord.AppendCommit(xid); err != nil { // want `AppendCommit is not dominated by AppendIntent`
		return err
	}
	return coord.AppendIntent(xid)
}
