// Failing fixtures for fsyncorder: renames of never-fsynced content
// and exported functions returning with the namespace dirty.
package bad

// File mirrors store.File.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS mirrors the mutating subset of store.FS.
type FS interface {
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	SyncDir() error
}

// RenameUnsynced promotes content that was never fsynced.
func RenameUnsynced(fsys FS, name string) error {
	if err := fsys.Rename(name+".tmp", name); err != nil { // want `Rename without a preceding File\.Sync`
		return err
	}
	return fsys.SyncDir()
}

// CreateLeaky returns with the new name not yet durable.
func CreateLeaky(fsys FS, name string) (File, error) {
	return fsys.Create(name) // want `namespace change \(Create\) is not followed by SyncDir`
}

// createDirty is an unexported helper ending dirty (allowed on its own)…
func createDirty(fsys FS, name string) (File, error) {
	return fsys.Create(name)
}

// CreateViaHelper inherits the helper's obligation and drops it.
func CreateViaHelper(fsys FS, name string) (File, error) {
	return createDirty(fsys, name) // want `namespace change \(Create\) is not followed by SyncDir`
}
