// Package helper exercises fsyncorder's cross-package summaries: a
// namespace obligation created here must follow the call edge into the
// caller's package, and a discharge performed here must count for the
// caller's earlier mutations.
package helper

// File mirrors store.File.
type File interface {
	Write(p []byte) (int, error)
	Sync() error
	Close() error
}

// FS mirrors the mutating subset of store.FS.
type FS interface {
	Create(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	SyncDir() error
}

// CreateTmp creates without syncing the directory. As an exported
// entry point it is itself a violation — and its obligation also leaks
// into every caller's summary.
func CreateTmp(fsys FS, name string) (File, error) {
	return fsys.Create(name) // want `namespace change \(Create\) is not followed by SyncDir`
}

// RemoveDurable removes and syncs: callers inherit a clean, synced
// state from this call.
func RemoveDurable(fsys FS, name string) error {
	if err := fsys.Remove(name); err != nil {
		return err
	}
	return fsys.SyncDir()
}
