// Failing fixtures for deadlineflow: channel operations that can park
// the goroutine forever with no deadline decision upstream.
package bad

import "fixtures/obs"

// Pipeline mimics the serve pipeline's channel topology.
type Pipeline struct {
	submit chan int
	data   chan int
}

// Submit parks forever if the decider is stuck.
func (p *Pipeline) Submit(v int) {
	p.submit <- v // want `channel send is not dominated by a deadline check`
}

// Recv parks on a data channel (not a signal channel) with no bound.
func (p *Pipeline) Recv() int {
	return <-p.data // want `channel receive is not dominated by a deadline check`
}

// Shuffle's select has neither a default nor an escape case.
func (p *Pipeline) Shuffle() (got int) {
	select { // want `blocking select \(no default, no ctx/signal case\) is not dominated`
	case v := <-p.data:
		got = v
	case p.submit <- 0:
	}
	return got
}

// LateGuard reads the deadline only after the park: same block, wrong
// order.
func (p *Pipeline) LateGuard(c obs.Clock, deadline int64, v int) bool {
	p.submit <- v // want `channel send is not dominated by a deadline check`
	return c.NowNS() < deadline
}

// BranchGuard checks the deadline on one path only: the check does not
// dominate the merged send.
func (p *Pipeline) BranchGuard(c obs.Clock, fast bool, deadline int64, v int) {
	if fast {
		_ = c.NowNS() > deadline
	}
	p.submit <- v // want `channel send is not dominated by a deadline check`
}
