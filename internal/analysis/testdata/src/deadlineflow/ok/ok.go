// Passing fixtures for deadlineflow: every potentially-blocking
// channel operation is dominated by a deadline decision, is
// self-guarded, or is a sanctioned lifecycle wait.
package ok

import (
	"context"

	"fixtures/budget"
	"fixtures/obs"
)

// Pipeline mimics the serve pipeline's channel topology.
type Pipeline struct {
	submit chan int
	quit   chan struct{}
	clock  obs.Clock
}

// SubmitCtx parks on the submit queue only alongside a ctx.Done case:
// the select itself is the escape hatch.
func (p *Pipeline) SubmitCtx(ctx context.Context, v int) error {
	select {
	case p.submit <- v:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitDeadline compares the injectable clock against the queue
// deadline before parking.
func (p *Pipeline) SubmitDeadline(v int, deadline int64) bool {
	if p.clock.NowNS() > deadline {
		return false
	}
	p.submit <- v
	return true
}

// SubmitBudget spends a budget step before parking.
func (p *Pipeline) SubmitBudget(b *budget.B, v int) error {
	if err := b.Step(1); err != nil {
		return err
	}
	p.submit <- v
	return nil
}

// CtxErrPoll polls the context before the blocking receive.
func (p *Pipeline) CtxErrPoll(ctx context.Context) (int, error) {
	if err := ctx.Err(); err != nil {
		return 0, err
	}
	return <-p.submit, nil
}

// TrySubmit never parks: the default makes the select non-blocking.
func (p *Pipeline) TrySubmit(v int) bool {
	select {
	case p.submit <- v:
		return true
	default:
		return false
	}
}

// WaitQuit parks on the lifecycle signal channel — a wait for the
// peer's lifetime, exempt by convention (chan struct{}).
func (p *Pipeline) WaitQuit() {
	<-p.quit
}

// Drain consumes until the producer closes the channel: the drain
// idiom, bounded by the producer's lifecycle.
func (p *Pipeline) Drain() int {
	s := 0
	for v := range p.submit {
		s += v
	}
	return s
}

// Ack is the sanctioned exception shape: a per-request buffered reply
// channel the protocol guarantees capacity for.
func (p *Pipeline) Ack(v int) {
	//constvet:allow deadlineflow -- per-request buffered reply channel, capacity guaranteed by the protocol
	p.submit <- v
}
