// Failing fixtures for errflow: retry loops that back off without ever
// consulting the classifier — a permanent error would be retried
// instead of surfaced.
package bad

import (
	"time"

	"fixtures/obs"
	"fixtures/store"
)

// RetryBlind retries every error, permanent ones included.
func RetryBlind(c obs.Clock, op func() error) error {
	for i := 0; i < 5; i++ {
		if err := op(); err == nil {
			return nil
		}
		c.Sleep(1000) // want `backoff sleep in a retry loop is not dominated by a store\.Classify decision`
	}
	return nil
}

// RetryWall blind-retries on the raw wall clock.
func RetryWall(op func() error) {
	for {
		if op() == nil {
			return
		}
		time.Sleep(time.Millisecond) // want `backoff sleep in a retry loop`
	}
}

// LateClassify classifies only after the wait: the first iteration
// sleeps on an unclassified error.
func LateClassify(c obs.Clock, op func() error) {
	for {
		err := op()
		if err == nil {
			return
		}
		c.Sleep(1000) // want `backoff sleep in a retry loop`
		if store.Classify(err) == store.ClassPermanent {
			return
		}
	}
}
