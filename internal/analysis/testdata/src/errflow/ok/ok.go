// Passing fixtures for errflow: every backoff sleep in a retry loop is
// downstream of a store.Classify decision, directly or through a
// wrapper.
package ok

import (
	"fixtures/obs"
	"fixtures/store"
)

// Retry backs off only after classifying: permanent errors surface
// immediately, transient ones wait and go again.
func Retry(c obs.Clock, op func() error) error {
	var err error
	for i := 0; i < 5; i++ {
		if err = op(); err == nil {
			return nil
		}
		if store.Classify(err) == store.ClassPermanent {
			return err
		}
		c.Sleep(int64(i+1) * 1000)
	}
	return err
}

// classify is the local wrapper the serve pipeline uses; it reaches
// store.Classify, so it counts as a classification point.
func classify(err error) store.Class { return store.Classify(err) }

// RetryViaWrapper reaches the classifier transitively through the
// program call graph.
func RetryViaWrapper(c obs.Clock, op func() error) error {
	for {
		err := op()
		if err == nil {
			return nil
		}
		if classify(err) == store.ClassPermanent {
			return err
		}
		c.Sleep(1000)
	}
}

// GraceDelay sleeps once, outside any loop: a startup grace period is
// not a retry decision.
func GraceDelay(c obs.Clock) {
	c.Sleep(5000)
}

// Poll is the sanctioned exception shape: a fixed-cadence readiness
// poll with no error in the loop at all.
func Poll(c obs.Clock, ready func() bool) {
	for !ready() {
		//constvet:allow errflow -- fixed-cadence readiness poll, no error feeds this wait
		c.Sleep(1000)
	}
}
