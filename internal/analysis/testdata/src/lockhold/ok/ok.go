// Passing fixtures for lockhold: critical sections stay CPU-only, or
// release the lock before blocking.
package ok

import (
	"sync"

	"fixtures/lockhold/helper"
)

// Store guards a map with a mutex and publishes on a channel.
type Store struct {
	mu sync.Mutex
	m  map[string]int
	ch chan int
}

// Get is CPU-only under the lock; the deferred unlock keeps the lock
// held to the return, but nothing blocks.
func (s *Store) Get(k string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.m[k]
}

// Publish releases the lock before parking on the channel.
func (s *Store) Publish(k string) {
	s.mu.Lock()
	v := s.m[k]
	s.mu.Unlock()
	s.ch <- v
}

// TryPublish sends under the lock, but the default keeps it from ever
// parking.
func (s *Store) TryPublish(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- s.m[k]:
	default:
	}
}

// Spawn starts a goroutine that blocks — but not under the spawner's
// lock, which it never shares.
func (s *Store) Spawn(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func(ch chan int) { ch <- v }(s.ch)
}

// RecordViaHelper calls across the package boundary, but the helper is
// CPU-only, so the may-block closure stays false.
func (s *Store) RecordViaHelper(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	helper.Note(s.m, k, v)
}

// BranchRelease unlocks on every path before the send, so no merged
// path carries the lock to the blocking site.
func (s *Store) BranchRelease(k string, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		s.ch <- 1
		return
	}
	v := s.m[k]
	s.mu.Unlock()
	s.ch <- v
}

// ShedNotify is the one sanctioned exception: the publish channel is
// buffered and drained by the same owner, so the send cannot park.
func (s *Store) ShedNotify() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//constvet:allow lockhold -- buffered publish channel, drained by the lock's owner
	s.ch <- 1
}
