// Package helper provides a blocking operation behind a package
// boundary: lockhold's may-block closure is program-wide, so calling
// Flush under a lock is flagged at the call site even though the fsync
// lives here.
package helper

// File is the fsync-able handle the flush helper works on.
type File interface {
	Sync() error
}

// Flush makes the file durable; it may block for an fsync's latency.
func Flush(f File) error { return f.Sync() }

// Note records a value; it never blocks.
func Note(m map[string]int, k string, v int) { m[k] = v }
