// Failing fixtures for lockhold: blocking operations reached with a
// mutex held, directly and through the cross-package call graph.
package bad

import (
	"sync"

	"fixtures/lockhold/helper"
	"fixtures/obs"
)

// Store guards a map with an RWMutex and publishes on a channel.
type Store struct {
	mu sync.RWMutex
	m  map[string]int
	ch chan int
}

// Publish parks on a channel send with the mutex held.
func (s *Store) Publish(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.ch <- s.m[k] // want `channel send while holding s\.mu`
}

// WaitUnderRLock parks on a receive under the read lock — readers do
// not save you: the next writer queues behind this park, and every
// later reader queues behind the writer.
func (s *Store) WaitUnderRLock() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return <-s.ch // want `channel receive while holding s\.mu`
}

// SleepUnderLock holds the lock across an injected-clock sleep.
func (s *Store) SleepUnderLock(c obs.Clock) {
	s.mu.Lock()
	c.Sleep(100) // want `Clock\.Sleep while holding s\.mu`
	s.mu.Unlock()
}

// FlushViaHelper reaches a File.Sync through another package; the
// program-wide may-block closure carries the fact to this call site.
func (s *Store) FlushViaHelper(f helper.File) {
	s.mu.Lock()
	defer s.mu.Unlock()
	helper.Flush(f) // want `call to Flush \(may block\) while holding s\.mu`
}

// BlockingSelect parks in a default-less select under the lock.
func (s *Store) BlockingSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `blocking select \(no default\) while holding s\.mu`
	case v := <-s.ch:
		s.m["x"] = v
	case s.ch <- 1:
	}
}

// BranchLeak unlocks on the fast path only; the merged path still may
// hold the lock at the send.
func (s *Store) BranchLeak(fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
	}
	s.ch <- 1 // want `channel send while holding s\.mu`
	if !fast {
		s.mu.Unlock()
	}
}
