// Failing fixtures for walltime: wall-clock reads outside internal/obs.
package bad

import "time"

// Elapsed reads the clock twice.
func Elapsed(f func()) time.Duration {
	start := time.Now() // want `time\.Now outside internal/obs`
	f()
	return time.Since(start) // want `time\.Since outside internal/obs`
}

// Remaining reads the clock through Until.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until outside internal/obs`
}

// WaitOrGiveUp parks on wall-clock timers the ManualClock can never
// advance: the sleep/timer-family blind spot.
func WaitOrGiveUp(done chan struct{}) bool {
	time.Sleep(time.Millisecond) // want `time\.Sleep outside internal/obs`
	select {
	case <-done:
		return true
	case <-time.After(time.Second): // want `time\.After outside internal/obs`
		return false
	}
}

// Periodic builds real timers for a polling loop.
func Periodic(done chan struct{}) {
	timer := time.NewTimer(time.Second) // want `time\.NewTimer outside internal/obs`
	defer timer.Stop()
	tick := time.NewTicker(time.Second) // want `time\.NewTicker outside internal/obs`
	defer tick.Stop()
	for {
		select {
		case <-done:
			return
		case <-tick.C:
		case <-timer.C:
		case <-time.Tick(time.Minute): // want `time\.Tick outside internal/obs`
		}
	}
}
