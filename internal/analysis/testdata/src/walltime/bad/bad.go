// Failing fixtures for walltime: wall-clock reads outside internal/obs.
package bad

import "time"

// Elapsed reads the clock twice.
func Elapsed(f func()) time.Duration {
	start := time.Now() // want `time\.Now outside internal/obs`
	f()
	return time.Since(start) // want `time\.Since outside internal/obs`
}

// Remaining reads the clock through Until.
func Remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want `time\.Until outside internal/obs`
}
