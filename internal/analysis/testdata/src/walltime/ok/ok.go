// Passing fixtures for walltime: the time package is fine as a
// vocabulary of durations; only reading the clock is flagged.
package ok

import "time"

// Timeout is a duration constant, not a clock read.
const Timeout = 5 * time.Second

// Scale manipulates durations without consulting the clock.
func Scale(d time.Duration, n int) time.Duration {
	return d * time.Duration(n)
}
