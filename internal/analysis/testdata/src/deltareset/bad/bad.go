// Failing fixtures for deltareset: decision caches dropped while the
// maintained delta state of the same receiver lives on.
package bad

type session struct{}

func (s *session) InvalidateDecisions() {}
func (s *session) InvalidateDeltas()    {}

type pipeline struct {
	st      *session
	scratch *session
}

// resync forgets the delta state entirely.
func (p *pipeline) resync() {
	p.st.InvalidateDecisions() // want `InvalidateDecisions\(\) on "st" without the paired InvalidateDeltas\(\)`
}

// crossed resets the deltas of a different receiver, which does not
// cover st.
func (p *pipeline) crossed() {
	p.scratch.InvalidateDeltas()
	p.st.InvalidateDecisions() // want `InvalidateDecisions\(\) on "st" without the paired InvalidateDeltas\(\)`
}
