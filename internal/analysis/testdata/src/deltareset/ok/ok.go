// Passing fixtures for deltareset: every InvalidateDecisions() on a
// session that maintains delta state pairs with InvalidateDeltas().
package ok

// session mimics store.Session: both invalidations available.
type session struct{}

func (s *session) InvalidateDecisions() {}
func (s *session) InvalidateDeltas()    {}

// plain mimics a component with only a decision cache: no delta state,
// so a lone InvalidateDecisions is complete.
type plain struct{}

func (p *plain) InvalidateDecisions() {}

type pipeline struct {
	st *session
	ca *plain
}

// resync drops both, in either order.
func (p *pipeline) resync() {
	p.st.InvalidateDeltas()
	p.st.InvalidateDecisions()
}

// stale drops both the other way round.
func (p *pipeline) stale() {
	p.st.InvalidateDecisions()
	p.st.InvalidateDeltas()
}

// cacheOnly invalidates a receiver that has no delta state at all.
func (p *pipeline) cacheOnly() {
	p.ca.InvalidateDecisions()
}

// InvalidateDecisions forwarders are the one sanctioned lone call.
type wrapper struct {
	st *session
}

func (w *wrapper) InvalidateDecisions() { w.st.InvalidateDecisions() }
func (w *wrapper) InvalidateDeltas()    { w.st.InvalidateDeltas() }

// deliberate documents a decisions-only drop with the allow comment.
func (p *pipeline) deliberate() {
	//constvet:allow deltareset -- delta state rebuilt by the caller
	p.st.InvalidateDecisions()
}
