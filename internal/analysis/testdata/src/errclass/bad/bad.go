// Failing fixtures for errclass: sentinels missing from the taxonomy
// and chain-destroying wrap verbs.
package bad

import (
	"errors"
	"fmt"
)

type Class int

const (
	ClassUnknown Class = iota
	ClassTransient
)

var ErrKnown = errors.New("known")

// A sentinel buried in a grouped var block still needs classifying.
var (
	ErrForgotten = errors.New("forgotten") // want `error sentinel ErrForgotten is not classified in classOf`
)

func classOf(err error) Class {
	if errors.Is(err, ErrKnown) {
		return ClassTransient
	}
	return ClassUnknown
}

// WrapV formats the cause with %v: errors.Is cannot see through it.
func WrapV(err error) error {
	return fmt.Errorf("bad: applying batch: %v", err) // want `error formatted with %v loses the cause chain`
}

// WrapS is the same bug with %s.
func WrapS(err error) error {
	return fmt.Errorf("bad: op %d: %s", 7, err) // want `error formatted with %s loses the cause chain`
}

// MixedWrap wraps one cause correctly but loses the second.
func MixedWrap(err error) error {
	return fmt.Errorf("%w: recovering: %v", ErrKnown, err) // want `error formatted with %v loses the cause chain`
}
