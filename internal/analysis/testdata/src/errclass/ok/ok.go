// Passing fixtures for errclass: every sentinel is covered by the
// classOf taxonomy and error wraps preserve the cause chain with %w.
package ok

import (
	"errors"
	"fmt"
)

// Class mirrors the store taxonomy.
type Class int

const (
	ClassUnknown Class = iota
	ClassTransient
	ClassPermanent
)

var ErrTorn = errors.New("torn")

// Grouped sentinels are resolved through the var block too.
var (
	ErrCorrupt = errors.New("corrupt")
	ErrLost    = errors.New("lost")
)

// errsByName is not a sentinel (not error-typed); names alone don't
// trigger the check.
var ErrNames = []string{"torn", "corrupt"}

func classOf(err error) Class {
	switch {
	case errors.Is(err, ErrTorn), errors.Is(err, ErrCorrupt):
		return ClassTransient
	case errors.Is(err, ErrLost):
		return ClassPermanent
	}
	return ClassUnknown
}

// Wrap keeps the cause visible to errors.Is through the wrap.
func Wrap(err error) error {
	return fmt.Errorf("ok: applying batch: %w", err)
}

// DoubleWrap chains two causes; both stay visible.
func DoubleWrap(err error) error {
	return fmt.Errorf("%w: replaying journal: %w", ErrTorn, err)
}

// Show formats non-errors with %v and %s freely.
func Show(n int, name string) error {
	return fmt.Errorf("ok: %d ops in %s", n, name)
}
