// Failing fixtures for nilmetrics handle mode: exported handle methods
// that dereference an unguarded receiver.
package obs

// Gauge is a handle type without nil-safe methods.
type Gauge struct{ v int64 }

// Set dereferences the receiver with no guard.
func (g *Gauge) Set(v int64) { // want `exported obs handle method Set must begin with a nil-receiver guard`
	g.v = v
}

// Bump guards too late: the receiver is touched first.
func (g *Gauge) Bump() { // want `exported obs handle method Bump must begin with a nil-receiver guard`
	g.v++
	if g == nil {
		return
	}
}
