// Failing fixture for nilmetrics consumer mode: the atomic.Pointer is
// there but nothing can ever install handles into it.
package consumer

import (
	"sync/atomic"

	"fixtures/obs"
)

var current atomic.Pointer[obs.Counter] // want `declares no SetMetrics`

// Op loads the forever-nil handle.
func Op() {
	current.Load().Inc()
}
