// Passing fixtures for nilmetrics handle mode: every exported
// pointer-receiver method of a package named "obs" is nil-safe, by
// guard or by delegation.
package obs

// Counter is a guarded handle.
type Counter struct{ n int64 }

// Inc guards first.
func (c *Counter) Inc() {
	if c == nil {
		return
	}
	c.n++
}

// Add delegates every receiver use to the guarded Inc.
func (c *Counter) Add(n int64) {
	for i := int64(0); i < n; i++ {
		c.Inc()
	}
}

// Histogram exercises compound guards.
type Histogram struct {
	count int64
	sum   float64
}

// Mean is safe via a compound ||-guard.
func (h *Histogram) Mean() float64 {
	if h == nil || h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// reset is unexported and unguarded; only exported methods are the
// nil-safety boundary.
func (h *Histogram) reset() {
	h.count = 0
	h.sum = 0
}

// Value-receiver methods cannot have nil receivers.
type ID struct{ v uint64 }

// Less compares identifiers.
func (a ID) Less(b ID) bool { return a.v < b.v }
