// Failing fixtures for nilmetrics consumer mode: raw package-level
// handles outside the atomic.Pointer pattern.
package consumer

import "fixtures/obs"

// A bare handle races with any setter and always pays the call.
var ops *obs.Counter // want `package-level metric handle "ops" must live behind a sync/atomic\.Pointer`

// bundle is a handle-struct; a raw pointer to it is just as racy.
type bundle struct {
	rows *obs.Counter
}

var current *bundle // want `package-level metric handle "current" must live behind a sync/atomic\.Pointer`

// Op uses the racy handles.
func Op() {
	ops.Inc()
	if current != nil {
		current.rows.Inc()
	}
}
