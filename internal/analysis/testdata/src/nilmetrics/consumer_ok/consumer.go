// Passing fixtures for nilmetrics consumer mode: metric handles live
// behind a sync/atomic.Pointer installed by SetMetrics.
package consumer

import (
	"sync/atomic"

	"fixtures/obs"
)

// metrics bundles the package's handles.
type metrics struct {
	ops *obs.Counter
}

// current is the one sanctioned resolution point.
var current atomic.Pointer[metrics]

// SetMetrics installs handles from the sink, or clears them.
func SetMetrics(sink obs.Sink) {
	if sink == nil {
		current.Store(nil)
		return
	}
	current.Store(&metrics{ops: sink.Counter("consumer_ops_total")})
}

// Op is an instrumented operation: one pointer load, nil-safe calls.
func Op() {
	m := current.Load()
	if m != nil {
		m.ops.Inc()
	}
}
