// Package budget mimics the repository's internal/budget for analyzer
// fixtures: budgetloop recognizes budget checks by the receiver's
// package *name*, so this stand-in exercises the same code path.
package budget

// B is a minimal stand-in for budget.B.
type B struct{ used, limit int }

// Step consumes n units.
func (b *B) Step(n int) error {
	if b != nil {
		b.used += n
	}
	return nil
}

// Check tests exhaustion without consuming.
func (b *B) Check() error { return nil }
