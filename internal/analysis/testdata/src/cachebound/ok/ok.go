// Passing fixtures for cachebound: cache stores guarded by a len()
// bound check, non-cache maps, and a deliberate allow.
package ok

// The idiom: FIFO eviction keyed off len() before the store.
type shard struct {
	memo  map[string]int
	order []string
}

func (s *shard) Put(k string, v int) {
	if len(s.memo) >= 512 {
		old := s.order[0]
		s.order = s.order[1:]
		delete(s.memo, old)
	}
	s.memo[k] = v
	s.order = append(s.order, k)
}

// Maps not named like caches are out of scope: an index is just a map.
func Index(rows []string) map[string]int {
	byName := make(map[string]int, len(rows))
	for i, r := range rows {
		byName[r] = i
	}
	return byName
}

// A cache scoped to one call's lifetime may opt out, with a reason.
func Transform(keys []string) []int {
	resultCache := map[string]int{}
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		if v, ok := resultCache[k]; ok {
			out = append(out, v)
			continue
		}
		v := len(k) * 3
		//constvet:allow cachebound -- bounded by the argument slice; dies with this call
		resultCache[k] = v
		out = append(out, v)
	}
	return out
}
