// Failing fixtures for cachebound: stores into cache-named maps with
// no eviction bound anywhere in the function.
package bad

// Package-level memo that only ever grows.
var memo = map[string]int{}

func Memoize(k string, v int) {
	memo[k] = v // want `store into cache "memo" with no len\(\) bound check`
}

// A cache field filled on miss with no bound.
type server struct {
	decisionCache map[uint64]string
}

func (s *server) Decide(ver uint64) string {
	if d, ok := s.decisionCache[ver]; ok {
		return d
	}
	d := "computed"
	s.decisionCache[ver] = d // want `store into cache "decisionCache" with no len\(\) bound check`
	return d
}
