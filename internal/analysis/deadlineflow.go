package analysis

// DeadlineFlow enforces bounded waiting on the serve stack's hot
// paths: a potentially-blocking channel operation — a select with no
// default, a channel send, a receive from a data channel — must be
// dominated by a deadline decision, so a stuck peer degrades into a
// shed/timeout instead of an unbounded park. Three guard shapes count
// (see isDeadlineGuard): a context poll (ctx.Err/ctx.Done), a
// queue-deadline comparison against the injectable clock's NowNS, or a
// budget.B check.
//
// Lifecycle waits are exempt: receives from signal channels (chan
// struct{} — quit/done/ready), selects that themselves carry a
// ctx.Done or signal-channel case, and range-over-channel drains. They
// park on purpose, for the lifetime of the peer, not a request.

import (
	"go/ast"
	"go/token"
)

var DeadlineFlow = &Analyzer{
	Name: "deadlineflow",
	Doc: "flag potentially-blocking selects/sends/receives on the serve " +
		"paths not dominated by a context, queue-deadline, or budget check",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSuffix(pkgPath, "internal/serve") ||
			pathHasSuffix(pkgPath, "internal/netserve") ||
			pathHasSuffix(pkgPath, "internal/store")
	},
	Run: runDeadlineFlow,
}

func runDeadlineFlow(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		sites := blockingChanSites(pass, fd)
		if len(sites) == 0 {
			continue
		}
		ff := newFuncFlow(fd)
		guards := collectGuards(fd.Body, func(n ast.Node) bool {
			return isDeadlineGuard(pass.Info, n)
		})
		for _, s := range sites {
			if ff.block(s.node) == nil {
				continue // inside a func literal; its spawner owns the discipline
			}
			if !ff.guardedBy(s.node, guards) {
				pass.Reportf(s.node.Pos(),
					"%s is not dominated by a deadline check (ctx.Err/ctx.Done, a NowNS comparison, or budget.B); a stuck peer parks this goroutine forever", s.desc)
			}
		}
	}
	return nil
}

// chanSite is one potentially-unbounded channel operation.
type chanSite struct {
	node ast.Node
	desc string
}

// blockingChanSites collects the function's channel operations that can
// park unboundedly, applying the lifecycle exemptions. `go` bodies are
// skipped — the spawned goroutine is analyzed as its own function if
// declared, and a raw goroutine's waits are rawgo's concern.
func blockingChanSites(pass *Pass, fd *ast.FuncDecl) []chanSite {
	comm := commOps(fd.Body)
	var sites []chanSite
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			return false
		case *ast.RangeStmt:
			// Range-over-channel is the drain idiom; exempt, but keep
			// walking the body.
			return true
		case *ast.SelectStmt:
			if !selectHasDefault(n) && !selectSelfGuarded(pass, n) {
				sites = append(sites, chanSite{n, "blocking select (no default, no ctx/signal case)"})
			}
		case *ast.SendStmt:
			if !comm[n] {
				sites = append(sites, chanSite{n, "channel send"})
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW && !comm[n] && !isSignalChan(pass.Info, n.X) {
				sites = append(sites, chanSite{n, "channel receive"})
			}
		}
		return true
	})
	return sites
}

// selectSelfGuarded reports whether one of the select's cases is itself
// an escape hatch: a receive from a signal channel (which includes
// ctx.Done() — its channel is <-chan struct{}) means the select wakes
// when the lifecycle ends.
func selectSelfGuarded(pass *Pass, sel *ast.SelectStmt) bool {
	for _, cs := range sel.Body.List {
		cc := cs.(*ast.CommClause)
		if cc.Comm == nil {
			continue
		}
		guarded := false
		ast.Inspect(cc.Comm, func(n ast.Node) bool {
			if u, ok := n.(*ast.UnaryExpr); ok && u.Op == token.ARROW && isSignalChan(pass.Info, u.X) {
				guarded = true
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}
