package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NilMetrics enforces the two halves of the nil-safe instrumentation
// contract from PR 3:
//
// Inside the obs package (recognized by package name, so fixtures can
// mimic it): every exported pointer-receiver method must be nil-safe —
// its first receiver-touching statement is a `recv == nil` / `recv !=
// nil` guard, or every receiver use delegates to an already-nil-safe
// method of the package. Instrumented code holds possibly-nil handles
// and calls them unconditionally; one unguarded method is a latent panic
// on the uninstrumented path.
//
// In instrumented packages: metric handles must live behind a
// sync/atomic.Pointer swapped by SetMetrics — a raw package-level
// handle (or pointer to a handle-struct) is a data race with SetMetrics
// and defeats the one-load disabled fast path.
var NilMetrics = &Analyzer{
	Name: "nilmetrics",
	Doc: "flag obs handle methods without nil-receiver guards, and raw " +
		"package-level metric handles outside the atomic.Pointer SetMetrics pattern",
	Run: runNilMetrics,
}

func runNilMetrics(pass *Pass) error {
	if pass.Pkg.Name() == "obs" {
		return runNilMetricsHandles(pass)
	}
	return runNilMetricsConsumers(pass)
}

// isNilComparisonWith reports whether e is `x == nil` or `x != nil`
// where x resolves to obj.
func isNilComparisonWith(info *types.Info, e ast.Expr, obj types.Object) bool {
	b, ok := ast.Unparen(e).(*ast.BinaryExpr)
	if !ok || (b.Op != token.EQL && b.Op != token.NEQ) {
		return false
	}
	isObj := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && info.Uses[id] == obj
	}
	isNil := func(x ast.Expr) bool {
		id, ok := ast.Unparen(x).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	return (isObj(b.X) && isNil(b.Y)) || (isNil(b.X) && isObj(b.Y))
}

// condNilTests reports whether the condition nil-tests obj, possibly as
// one operand of a &&/|| chain (`if h == nil || h.count.Load() == 0`).
func condNilTests(info *types.Info, cond ast.Expr, obj types.Object) bool {
	if isNilComparisonWith(info, cond, obj) {
		return true
	}
	if b, ok := ast.Unparen(cond).(*ast.BinaryExpr); ok && (b.Op == token.LOR || b.Op == token.LAND) {
		return condNilTests(info, b.X, obj) || condNilTests(info, b.Y, obj)
	}
	return false
}

// guardFirst reports whether the first statement that touches the
// receiver is an if-statement whose condition nil-tests it.
func guardFirst(info *types.Info, fd *ast.FuncDecl, recv *types.Var) bool {
	for _, stmt := range fd.Body.List {
		if !mentionsObj(info, stmt, recv) {
			continue
		}
		ifStmt, ok := stmt.(*ast.IfStmt)
		return ok && ifStmt.Init == nil && condNilTests(info, ifStmt.Cond, recv)
	}
	return true // receiver never used: trivially nil-safe
}

func runNilMetricsHandles(pass *Pass) error {
	type method struct {
		fd   *ast.FuncDecl
		recv *types.Var
	}
	var methods []method
	byFunc := map[*types.Func]*ast.FuncDecl{}
	for _, fd := range funcDecls(pass.Files) {
		if fd.Recv == nil || len(fd.Recv.List) == 0 {
			continue
		}
		if _, ok := fd.Recv.List[0].Type.(*ast.StarExpr); !ok {
			continue // value receivers cannot be nil
		}
		methods = append(methods, method{fd, receiverObj(pass.Info, fd)})
		if fn, ok := pass.Info.Defs[fd.Name].(*types.Func); ok {
			byFunc[fn] = fd
		}
	}

	safe := map[*ast.FuncDecl]bool{}
	for i := range methods {
		m := methods[i]
		if m.recv == nil || guardFirst(pass.Info, m.fd, m.recv) {
			safe[m.fd] = true
		}
	}

	// delegatesSafely: every receiver mention is either a nil comparison
	// or the receiver of a call to an already-safe method of the package.
	delegatesSafely := func(m method) bool {
		parents := parentMap(m.fd.Body)
		ok := true
		ast.Inspect(m.fd.Body, func(n ast.Node) bool {
			id, isIdent := n.(*ast.Ident)
			if !isIdent || pass.Info.Uses[id] != m.recv || !ok {
				return ok
			}
			// recv == nil / recv != nil comparison?
			if b, isBin := parents[id].(*ast.BinaryExpr); isBin && isNilComparisonWith(pass.Info, b, m.recv) {
				return true
			}
			// recv.M(...) where M is a safe method of this package?
			if sel, isSel := parents[id].(*ast.SelectorExpr); isSel && sel.X == id {
				if call, isCall := parents[sel].(*ast.CallExpr); isCall && call.Fun == sel {
					if fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func); isFn {
						if target, declared := byFunc[fn]; declared && safe[target] {
							return true
						}
					}
				}
			}
			ok = false
			return false
		})
		return ok
	}
	for changed := true; changed; {
		changed = false
		for _, m := range methods {
			if !safe[m.fd] && delegatesSafely(m) {
				safe[m.fd] = true
				changed = true
			}
		}
	}

	for _, m := range methods {
		if m.fd.Name.IsExported() && !safe[m.fd] {
			pass.Reportf(m.fd.Name.Pos(),
				"exported obs handle method %s must begin with a nil-receiver guard (instrumented code calls possibly-nil handles unconditionally)", m.fd.Name.Name)
		}
	}
	return nil
}

// isObsHandleType reports whether t is (a pointer to) a named type from
// a package named "obs".
func isObsHandleType(t types.Type) bool { return fromPackageNamed(t, "obs") }

// referencesObsHandles reports whether t is an obs handle, or a (pointer
// to a) struct with an obs-handle field.
func referencesObsHandles(t types.Type) bool {
	if isObsHandleType(t) {
		return true
	}
	s, ok := deref(t).Underlying().(*types.Struct)
	if !ok {
		return false
	}
	for i := 0; i < s.NumFields(); i++ {
		if isObsHandleType(s.Field(i).Type()) {
			return true
		}
	}
	return false
}

// isAtomicPointer reports whether t is sync/atomic.Pointer[E], returning
// the element type.
func isAtomicPointer(t types.Type) (types.Type, bool) {
	n := namedOf(t)
	if n == nil || n.Obj().Pkg() == nil {
		return nil, false
	}
	if n.Obj().Pkg().Path() != "sync/atomic" || n.Obj().Name() != "Pointer" {
		return nil, false
	}
	args := n.TypeArgs()
	if args == nil || args.Len() != 1 {
		return nil, false
	}
	return args.At(0), true
}

func runNilMetricsConsumers(pass *Pass) error {
	needSetMetrics := token.NoPos
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, name := range vs.Names {
					obj, ok := pass.Info.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if elem, isAtomic := isAtomicPointer(obj.Type()); isAtomic {
						if referencesObsHandles(elem) && needSetMetrics == token.NoPos {
							needSetMetrics = name.Pos()
						}
						continue
					}
					if referencesObsHandles(obj.Type()) {
						pass.Reportf(name.Pos(),
							"package-level metric handle %q must live behind a sync/atomic.Pointer resolved by SetMetrics (raw handles race with SetMetrics and defeat the nil fast path)", name.Name)
					}
				}
			}
		}
	}
	if needSetMetrics != token.NoPos && pass.Pkg.Scope().Lookup("SetMetrics") == nil {
		pass.Reportf(needSetMetrics,
			"package stores metric handles behind atomic.Pointer but declares no SetMetrics to install them")
	}
	return nil
}
