package analysis

import (
	"go/ast"
)

// BudgetLoop enforces PR 2's graceful-degradation contract: the
// NP-complete searches (DPLL/QBF) and the chase fixpoints must respect
// their *budget.B, so Decide/Apply can always return ErrBudgetExceeded
// instead of hanging. Any loop that is not structurally counted — a
// ForStmt with no post statement, i.e. `for {}`, `for cond {}`, or
// `for init; cond; {}` — and that calls user code must contain a budget
// check, directly or through a package-local helper (the package call
// graph is closed over, so tableau-style `t.step` wrappers count).
//
// Loops that make no calls at all (union-find pointer walks, counter
// updates) are treated as structurally bounded and skipped.
var BudgetLoop = &Analyzer{
	Name: "budgetloop",
	Doc: "flag potentially unbounded loops in internal/logic and " +
		"internal/chase that never check their budget.B",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSuffix(pkgPath, "internal/logic") || pathHasSuffix(pkgPath, "internal/chase")
	},
	Run: runBudgetLoop,
}

// budgetCheckMethods are the methods on budget.B that test exhaustion.
var budgetCheckMethods = map[string]bool{"Step": true, "Check": true}

// isBudgetCheck reports whether the call is b.Step(...)/b.Check() on a
// value whose type comes from a package named "budget".
func isBudgetCheck(pass *Pass, call *ast.CallExpr) bool {
	recv, name, ok := methodCall(pass.Info, call)
	if !ok || !budgetCheckMethods[name] {
		return false
	}
	return fromPackageNamed(pass.TypeOf(recv), "budget")
}

func runBudgetLoop(pass *Pass) error {
	decls := declaredFuncs(pass.Info, pass.Files)

	// Close the package-local call graph over "contains a budget check":
	// a function checks the budget if its body does so directly or calls
	// a package function that does.
	checks := map[*ast.FuncDecl]bool{}
	directOrVia := func(fd *ast.FuncDecl) bool {
		found := false
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if isBudgetCheck(pass, call) {
				found = true
				return false
			}
			if callee := calleeOf(pass.Info, call); callee != nil {
				if cd, ok := decls[callee]; ok && checks[cd] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			if !checks[fd] && directOrVia(fd) {
				checks[fd] = true
				changed = true
			}
		}
	}

	// nodeChecksBudget reports whether the subtree contains a budget
	// check, directly or through a checking package function.
	nodeChecksBudget := func(root ast.Node) bool {
		found := false
		ast.Inspect(root, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			if isBudgetCheck(pass, call) {
				found = true
				return false
			}
			if callee := calleeOf(pass.Info, call); callee != nil {
				if cd, ok := decls[callee]; ok && checks[cd] {
					found = true
					return false
				}
			}
			return true
		})
		return found
	}
	nodeDoesWork := func(root ast.Node) bool {
		found := false
		ast.Inspect(root, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isWorkCall(pass.Info, call) {
				found = true
			}
			return !found
		})
		return found
	}

	for _, fd := range funcDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Post != nil {
				return true
			}
			work := nodeDoesWork(loop.Body) || (loop.Cond != nil && nodeDoesWork(loop.Cond))
			checked := nodeChecksBudget(loop.Body) || (loop.Cond != nil && nodeChecksBudget(loop.Cond))
			if work && !checked {
				pass.Reportf(loop.Pos(),
					"potentially unbounded loop never checks its budget.B; add a b.Step/b.Check so callers can rely on ErrBudgetExceeded instead of a hang")
			}
			return true
		})
	}
	return nil
}
