package analysis

import (
	"go/ast"
	"go/types"
)

// BudgetLoop enforces PR 2's graceful-degradation contract: the
// NP-complete searches (DPLL/QBF) and the chase fixpoints must respect
// their *budget.B, so Decide/Apply can always return ErrBudgetExceeded
// instead of hanging. Any loop that is not structurally counted — a
// ForStmt with no post statement, i.e. `for {}`, `for cond {}`, or
// `for init; cond; {}` — and that calls user code must contain a budget
// check, directly or through a helper (the check closure is computed
// over the whole-program call graph, so a wrapper in another package
// counts exactly like a package-local one).
//
// Loops that make no calls at all (union-find pointer walks, counter
// updates) are treated as structurally bounded and skipped.
var BudgetLoop = &Analyzer{
	Name: "budgetloop",
	Doc: "flag potentially unbounded loops in internal/logic and " +
		"internal/chase that never check their budget.B",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSuffix(pkgPath, "internal/logic") || pathHasSuffix(pkgPath, "internal/chase")
	},
	Run: runBudgetLoop,
}

// budgetCheckMethods are the methods on budget.B that test exhaustion.
var budgetCheckMethods = map[string]bool{"Step": true, "Check": true}

// isBudgetCheck reports whether the call is b.Step(...)/b.Check() on a
// value whose type comes from a package named "budget".
func isBudgetCheck(info *types.Info, call *ast.CallExpr) bool {
	recv, name, ok := methodCall(info, call)
	if !ok || !budgetCheckMethods[name] {
		return false
	}
	return fromPackageNamed(info.TypeOf(recv), "budget")
}

// budgetChecks closes "contains a budget check" over the whole-program
// call graph: a function checks the budget if its body does so directly
// or if any statically-resolved callee — in any analyzed package —
// does. `go` statements are excluded: a check made by a spawned
// goroutine does not bound the spawning loop.
func budgetChecks(prog *Program) map[FuncID]bool {
	if prog == nil {
		return nil
	}
	return prog.Fact("budgetloop.checks", func() any {
		return prog.transitiveFact(func(n *CGNode) bool {
			found := false
			ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
				if _, ok := m.(*ast.GoStmt); ok {
					return false
				}
				if call, ok := m.(*ast.CallExpr); ok && isBudgetCheck(n.Pkg.Info, call) {
					found = true
				}
				return !found
			})
			return found
		})
	}).(map[FuncID]bool)
}

func runBudgetLoop(pass *Pass) error {
	checks := budgetChecks(pass.Prog)

	// callChecksBudget: the call is a budget check itself or resolves to
	// a function whose program-wide closure contains one.
	callChecksBudget := func(call *ast.CallExpr) bool {
		if isBudgetCheck(pass.Info, call) {
			return true
		}
		if fn := calleeOf(pass.Info, call); fn != nil {
			return checks[FuncID(fn.FullName())]
		}
		return false
	}

	// nodeChecksBudget reports whether the subtree contains a budget
	// check, directly or through a checking function.
	nodeChecksBudget := func(root ast.Node) bool {
		found := false
		ast.Inspect(root, func(n ast.Node) bool {
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			if call, ok := n.(*ast.CallExpr); ok && callChecksBudget(call) {
				found = true
			}
			return !found
		})
		return found
	}
	nodeDoesWork := func(root ast.Node) bool {
		found := false
		ast.Inspect(root, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && isWorkCall(pass.Info, call) {
				found = true
			}
			return !found
		})
		return found
	}

	for _, fd := range funcDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			loop, ok := n.(*ast.ForStmt)
			if !ok || loop.Post != nil {
				return true
			}
			work := nodeDoesWork(loop.Body) || (loop.Cond != nil && nodeDoesWork(loop.Cond))
			checked := nodeChecksBudget(loop.Body) || (loop.Cond != nil && nodeChecksBudget(loop.Cond))
			if work && !checked {
				pass.Reportf(loop.Pos(),
					"potentially unbounded loop never checks its budget.B; add a b.Step/b.Check so callers can rely on ErrBudgetExceeded instead of a hang")
			}
			return true
		})
	}
	return nil
}
