package analysis

// All returns every constvet analyzer, in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		BudgetLoop,
		CacheBound,
		DeadlineFlow,
		DeltaReset,
		ErrClass,
		ErrFlow,
		FsyncOrder,
		LockHold,
		MapIter,
		NilMetrics,
		RawGo,
		Walltime,
	}
}

// ByName resolves an analyzer, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
