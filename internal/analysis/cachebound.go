package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CacheBound guards the memoization layer introduced with the serving
// pipeline (PR 5): every long-lived cache must carry an eviction bound,
// or a server that memoizes per-op decisions grows without limit. The
// analyzer flags a map-index store (`m[k] = v`) whose target's name
// marks it as a cache — it contains "cache" or "memo" — unless the
// enclosing function also consults len() of that same map (the idiom
// every bounded cache here uses: `if len(m) >= cap { evict }`).
// Deliberately scoped to one decide's lifetime? Say so with
// //constvet:allow cachebound -- reason.
var CacheBound = &Analyzer{
	Name: "cachebound",
	Doc: "flag stores into cache/memo-named maps in functions that never " +
		"check the map's len(); caches must have an eviction bound",
	Run: runCacheBound,
}

// cacheNamed reports whether an identifier names a cache by convention.
func cacheNamed(name string) bool {
	l := strings.ToLower(name)
	return strings.Contains(l, "cache") || strings.Contains(l, "memo")
}

// exprBaseName returns the identifier a map expression hangs off: the
// ident itself, or the field name of a selector (sh.memo → "memo").
func exprBaseName(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return x.Sel.Name
	}
	return ""
}

// checksLen reports whether fn contains a len(x) call where x's base
// name equals name — the eviction-bound evidence.
func checksLen(info *types.Info, fn *ast.FuncDecl, name string) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, ok := ast.Unparen(call.Fun).(*ast.Ident)
		if !ok || id.Name != "len" {
			return true
		}
		if tv, ok := info.Types[call.Fun]; !ok || !tv.IsBuiltin() {
			return true
		}
		if exprBaseName(call.Args[0]) == name {
			found = true
		}
		return true
	})
	return found
}

func runCacheBound(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			stmt, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for _, lhs := range stmt.Lhs {
				idx, ok := ast.Unparen(lhs).(*ast.IndexExpr)
				if !ok {
					continue
				}
				name := exprBaseName(idx.X)
				if !cacheNamed(name) {
					continue
				}
				t := pass.TypeOf(idx.X)
				if t == nil {
					continue
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					continue
				}
				if checksLen(pass.Info, fd, name) {
					continue
				}
				pass.Reportf(idx.Pos(),
					"store into cache %q with no len() bound check in this function; caches need an eviction bound (or //constvet:allow cachebound with a reason)", name)
			}
			return true
		})
	}
	return nil
}
