package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses one function declaration from source and returns it
// with its FileSet. The source must contain exactly one FuncDecl.
func parseFunc(t *testing.T, src string) (*ast.FuncDecl, *token.FileSet) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "cfg_fixture.go", "package p\n"+src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fd, fset
		}
	}
	t.Fatal("no function declaration in source")
	return nil, nil
}

// TestCFGGolden pins the exact block structure for the control shapes
// the analyzers rely on: if/else, for with post, switch with
// fallthrough, defer, and goto across a label. The rendering is
// "b<i>[kind]: Node@Lline ... -> succs"; a change here means the CFG
// shape changed and every dataflow client must be re-audited.
func TestCFGGolden(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{
			name: "if_else",
			src: `func f(a int) int {
	x := 1
	if a > 0 {
		x = 2
	} else {
		x = 3
	}
	return x
}`,
			want: `b0[entry]: AssignStmt@L3 BinaryExpr@L4 -> b3 b4
b1[exit]: ->
b2[if.join]: ReturnStmt@L9 -> b1
b3[if.then]: AssignStmt@L5 -> b2
b4[if.else]: AssignStmt@L7 -> b2
b5[after.return]: -> b1
`,
		},
		{
			name: "for_with_post",
			src: `func f(n int) int {
	s := 0
	for i := 0; i < n; i++ {
		s += i
	}
	return s
}`,
			want: `b0[entry]: AssignStmt@L3 AssignStmt@L4 -> b2
b1[exit]: ->
b2[for.head]: BinaryExpr@L4 -> b3 b4
b3[for.body]: AssignStmt@L5 -> b5
b4[for.join]: ReturnStmt@L7 -> b1
b5[for.post]: IncDecStmt@L4 -> b2
b6[after.return]: -> b1
`,
		},
		{
			name: "switch_fallthrough",
			src: `func f(a int) int {
	x := 0
	switch a {
	case 1:
		x = 1
		fallthrough
	case 2:
		x = 2
	default:
		x = 9
	}
	return x
}`,
			want: `b0[entry]: AssignStmt@L3 Ident@L4 -> b3 b4 b5
b1[exit]: ->
b2[switch.join]: ReturnStmt@L13 -> b1
b3[switch.case]: BasicLit@L5 AssignStmt@L6 BranchStmt@L7 -> b4
b4[switch.case]: BasicLit@L8 AssignStmt@L9 -> b2
b5[switch.default]: AssignStmt@L11 -> b2
b6[after.return]: -> b1
`,
		},
		{
			name: "defer_is_a_plain_node",
			src: `func f() {
	defer done()
	work()
}`,
			want: `b0[entry]: DeferStmt@L3 ExprStmt@L4 -> b1
b1[exit]: ->
`,
		},
		{
			name: "goto_forward_and_label",
			src: `func f(a int) {
	if a > 0 {
		goto out
	}
	work()
out:
	cleanup()
}`,
			want: `b0[entry]: BinaryExpr@L3 -> b2 b3
b1[exit]: ->
b2[if.join]: ExprStmt@L6 -> b5
b3[if.then]: BranchStmt@L4 -> b5
b4[after.goto]: -> b2
b5[label.out]: ExprStmt@L8 -> b1
`,
		},
		{
			name: "select_with_default",
			src: `func f(ch chan int) int {
	select {
	case v := <-ch:
		return v
	default:
		return 0
	}
}`,
			want: `b0[entry]: -> b3 b5
b1[exit]: ->
b2[select.join]: -> b1
b3[select.case]: AssignStmt@L4 ReturnStmt@L5 -> b1
b4[after.return]: -> b2
b5[select.default]: ReturnStmt@L7 -> b1
b6[after.return]: -> b2
`,
		},
		{
			name: "range_with_continue_break",
			src: `func f(xs []int) int {
	s := 0
	for _, x := range xs {
		if x < 0 {
			continue
		}
		if x > 100 {
			break
		}
		s += x
	}
	return s
}`,
			want: `b0[entry]: AssignStmt@L3 -> b2
b1[exit]: ->
b2[range.head]: Ident@L4 -> b3 b4
b3[range.body]: BinaryExpr@L5 -> b5 b6
b4[range.join]: ReturnStmt@L13 -> b1
b5[if.join]: BinaryExpr@L8 -> b8 b9
b6[if.then]: BranchStmt@L6 -> b2
b7[after.continue]: -> b5
b8[if.join]: AssignStmt@L11 -> b2
b9[if.then]: BranchStmt@L9 -> b4
b10[after.break]: -> b8
b11[after.return]: -> b1
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fd, fset := parseFunc(t, tc.src)
			got := BuildCFG(fd).String(fset)
			if got != tc.want {
				t.Errorf("CFG mismatch\n--- got ---\n%s--- want ---\n%s", got, tc.want)
			}
		})
	}
}

// TestCFGEveryStatementPlacedOnce is the structural soundness property:
// every statement of the function body (outside func literals, and
// excluding the control statements the builder decomposes) appears in
// exactly one block's node list, so a dataflow transfer walking
// Block.Nodes sees each effect exactly once.
func TestCFGEveryStatementPlacedOnce(t *testing.T) {
	srcs := []string{
		`func f(a, n int, ch chan int, xs []int) int {
	s := 0
	if a > 0 {
		s = 1
	} else if a < -10 {
		s = 2
	} else {
		s = 3
	}
	for i := 0; i < n; i++ {
		if i == 7 {
			continue
		}
		s += i
	}
	for s < 100 {
		s *= 2
	}
	for {
		s--
		break
	}
loop:
	for _, x := range xs {
		switch {
		case x == 0:
			continue loop
		case x > 50:
			break loop
		}
		s += x
	}
	switch a {
	case 1:
		s++
		fallthrough
	case 2:
		s--
	}
	select {
	case v := <-ch:
		s += v
	case ch <- s:
	default:
	}
	var i interface{} = a
	switch v := i.(type) {
	case int:
		s += v
	}
	defer func() { s = 0 }()
	if a == 42 {
		goto out
	}
	s *= 3
out:
	return s
}`,
		`func g(ch chan int) {
	go func() {
		for v := range ch {
			_ = v
		}
	}()
	ch <- 1
}`,
	}
	for i, src := range srcs {
		fd, _ := parseFunc(t, src)
		cfg := BuildCFG(fd)

		// Count placements across all blocks.
		placed := map[ast.Node]int{}
		for _, b := range cfg.Blocks {
			for _, n := range b.Nodes {
				placed[n]++
			}
		}
		for n, c := range placed {
			if c != 1 {
				t.Errorf("src %d: node %T placed in %d blocks", i, n, c)
			}
		}

		// Every simple statement of the body must be placed; control
		// statements are decomposed, and func-literal bodies belong to
		// their own (unbuilt) graph.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			s, ok := n.(ast.Stmt)
			if !ok {
				return true
			}
			switch s.(type) {
			case *ast.BlockStmt, *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt,
				*ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt,
				*ast.CaseClause, *ast.CommClause, *ast.LabeledStmt:
				return true
			}
			if placed[s] != 1 {
				t.Errorf("src %d: statement %T at %v placed %d times, want 1", i, s, s.Pos(), placed[s])
			}
			return true
		})

		// The decomposed control statements still resolve via BlockOf.
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			switch n.(type) {
			case *ast.IfStmt, *ast.ForStmt, *ast.RangeStmt, *ast.SwitchStmt,
				*ast.TypeSwitchStmt, *ast.SelectStmt:
				if cfg.BlockOf(n) == nil {
					t.Errorf("src %d: control statement %T at %v has no deciding block", i, n, n.Pos())
				}
			}
			return true
		})
	}
}

// TestCFGDominators checks the dominance relation on a diamond plus a
// loop: the entry dominates everything, neither diamond arm dominates
// the join, and a loop head dominates its body.
func TestCFGDominators(t *testing.T) {
	fd, _ := parseFunc(t, `func f(a, n int) int {
	x := 0
	if a > 0 {
		x = 1
	} else {
		x = 2
	}
	for i := 0; i < n; i++ {
		x += i
	}
	return x
}`)
	cfg := BuildCFG(fd)
	dom := cfg.Dominators()

	byKind := func(kind string) *Block {
		t.Helper()
		var found *Block
		for _, b := range cfg.Blocks {
			if b.Kind == kind {
				if found != nil {
					t.Fatalf("two blocks of kind %q", kind)
				}
				found = b
			}
		}
		if found == nil {
			t.Fatalf("no block of kind %q", kind)
		}
		return found
	}

	then, els, join := byKind("if.then"), byKind("if.else"), byKind("if.join")
	head, body := byKind("for.head"), byKind("for.body")

	for _, b := range cfg.Reachable() {
		if !dom[b.Index][cfg.Entry.Index] {
			t.Errorf("entry does not dominate b%d[%s]", b.Index, b.Kind)
		}
	}
	if dom[join.Index][then.Index] || dom[join.Index][els.Index] {
		t.Error("a diamond arm dominates the join")
	}
	if !dom[body.Index][head.Index] {
		t.Error("for.head does not dominate for.body")
	}
	if !dom[cfg.Exit.Index][join.Index] {
		t.Error("if.join does not dominate exit")
	}
}

// TestCFGEnclosing maps an arbitrary sub-expression to its block via
// the parent chain.
func TestCFGEnclosing(t *testing.T) {
	fd, _ := parseFunc(t, `func f(a int) int {
	if a > 0 {
		return a * 2
	}
	return 0
}`)
	cfg := BuildCFG(fd)
	parents := parentMap(fd)

	var mul ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if be, ok := n.(*ast.BinaryExpr); ok && strings.Contains(exprTok(be), "*") {
			mul = be
		}
		return true
	})
	if mul == nil {
		t.Fatal("no * expression found")
	}
	blk := cfg.Enclosing(mul, parents)
	if blk == nil || blk.Kind != "if.then" {
		t.Fatalf("Enclosing(*expr) = %v, want if.then block", blk)
	}
}

func exprTok(be *ast.BinaryExpr) string { return be.Op.String() }
