package analysis

// ErrFlow closes the gap errclass leaves open: errclass checks that
// sentinel errors are registered with the store's classifier, but not
// that the serve layer actually consults it. The contract is that a
// retry/backoff decision — recognizable as a sleep inside a loop — must
// be downstream of a classification: transient errors are retried,
// permanent ones must surface immediately (retrying a permanent error
// hides data loss behind latency). So every Clock.Sleep/time.Sleep
// inside a loop must be dominated by a call that reaches
// store.Classify, directly or transitively through the whole-program
// call graph (serve's local classify() wrapper counts because it calls
// store.Classify).

import (
	"go/ast"
	"go/types"
)

var ErrFlow = &Analyzer{
	Name: "errflow",
	Doc: "flag retry/backoff sleeps on the serve paths not dominated by " +
		"a store.Classify-informed decision",
	AppliesTo: func(pkgPath string) bool {
		return pathHasSuffix(pkgPath, "internal/serve") ||
			pathHasSuffix(pkgPath, "internal/netserve")
	},
	Run: runErrFlow,
}

// isStoreClassify recognizes the classifier entry point: a function
// named Classify declared in a package named "store" (package name, not
// path, so fixtures can mimic it).
func isStoreClassify(fn *types.Func) bool {
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "store" && fn.Name() == "Classify"
}

// classifyReachers closes "calls store.Classify" over the whole-program
// call graph.
func classifyReachers(prog *Program) map[FuncID]bool {
	if prog == nil {
		return nil
	}
	return prog.Fact("errflow.reaches", func() any {
		return prog.transitiveFact(func(n *CGNode) bool {
			found := false
			ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok && isStoreClassify(calleeOf(n.Pkg.Info, call)) {
					found = true
				}
				return !found
			})
			return found
		})
	}).(map[FuncID]bool)
}

func runErrFlow(pass *Pass) error {
	reaches := classifyReachers(pass.Prog)
	for _, fd := range funcDecls(pass.Files) {
		sites := retrySleeps(pass, fd)
		if len(sites) == 0 {
			continue
		}
		ff := newFuncFlow(fd)
		guards := collectGuards(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return false
			}
			fn := calleeOf(pass.Info, call)
			return isStoreClassify(fn) || (fn != nil && reaches[FuncID(fn.FullName())])
		})
		for _, s := range sites {
			if ff.block(s) == nil {
				continue
			}
			if !ff.guardedBy(s, guards) {
				pass.Reportf(s.Pos(),
					"backoff sleep in a retry loop is not dominated by a store.Classify decision; a permanent error would be retried instead of surfaced")
			}
		}
	}
	return nil
}

// retrySleeps collects the sleeps that sit inside a loop of fd — the
// signature of a retry/backoff wait. Sleeps outside loops (a one-shot
// grace delay) are not retry decisions and are exempt.
func retrySleeps(pass *Pass, fd *ast.FuncDecl) []ast.Node {
	parents := parentMap(fd)
	inLoop := func(n ast.Node) bool {
		for p := parents[n]; p != nil; p = parents[p] {
			switch p.(type) {
			case *ast.ForStmt, *ast.RangeStmt:
				return true
			case *ast.FuncLit, *ast.FuncDecl:
				return false
			}
		}
		return false
	}
	var out []ast.Node
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.GoStmt); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		isSleep := false
		if recv, name, ok := methodCall(pass.Info, call); ok && name == "Sleep" && fromPackageNamed(pass.Info.TypeOf(recv), "obs") {
			isSleep = true
		} else if fn := calleeOf(pass.Info, call); fn != nil && fn.Pkg() != nil && fn.Pkg().Name() == "time" && fn.Name() == "Sleep" {
			isSleep = true
		}
		if isSleep && inLoop(call) {
			out = append(out, call)
		}
		return true
	})
	return out
}
