// Package analysis is constvet's invariant suite: a small, dependency-free
// re-implementation of the golang.org/x/tools/go/analysis model (Analyzer,
// Pass, Diagnostic) plus a package loader built on `go list -export` and the
// standard library's gc export-data importer. The container this repository
// builds in has no module proxy, so the framework is self-hosted; the API
// mirrors x/tools closely enough that the analyzers would port mechanically.
//
// Each analyzer guards one invariant the code base otherwise enforces only
// by convention (see DESIGN.md, "Static analysis & enforced invariants"):
//
//   - fsyncorder:  store namespace changes are made durable in order
//   - mapiter:     map iteration order never reaches emitted rows unsorted
//   - budgetloop:  unbounded kernel loops check their budget
//   - nilmetrics:  obs handles are nil-safe and resolved via atomic.Pointer
//   - rawgo:       no raw goroutines outside the sanctioned sites
//   - walltime:    no wall-clock reads outside internal/obs
//
// Intentional exceptions are annotated in-diff with a
// `//constvet:allow <name> [-- reason]` comment on the offending line or the
// line directly above it; the driver drops the diagnostic but keeps it
// countable, so every exception stays visible and greppable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Analyzer is one named invariant check.
type Analyzer struct {
	// Name is the analyzer's identifier, used in diagnostics and in
	// //constvet:allow comments.
	Name string
	// Doc is a one-paragraph description of the invariant.
	Doc string
	// AppliesTo reports whether the driver should run the analyzer on the
	// package with the given import path. Nil means every package. Fixture
	// tests bypass it (analysistest runs the analyzer unconditionally).
	AppliesTo func(pkgPath string) bool
	// Run performs the check, reporting findings through the pass.
	Run func(*Pass) error
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Prog is the whole-program call graph the package was loaded into.
	// Dataflow analyzers use it to propagate facts (may-block, budget
	// discipline, fsync obligations) across package boundaries.
	Prog *Program

	diags []Diagnostic
}

// Diagnostic is one finding, positioned in the file set of the pass.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// TypeOf returns the type of expression e, or nil if unknown.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// Finding is a diagnostic resolved to a position, with its suppression
// state: a //constvet:allow comment keeps the finding but marks it
// Suppressed so drivers can count exceptions without failing on them.
type Finding struct {
	Analyzer   string
	Pos        token.Position
	Message    string
	Suppressed bool
}

func (f Finding) String() string {
	s := fmt.Sprintf("%s: [%s] %s", f.Pos, f.Analyzer, f.Message)
	if f.Suppressed {
		s += " (suppressed by //constvet:allow)"
	}
	return s
}

// AllowPrefix is the suppression comment marker. The comment form is
// `//constvet:allow name1 name2 -- optional reason`.
const AllowPrefix = "constvet:allow"

// allowedLines maps file line -> set of analyzer names allowed there. A
// comment suppresses matching diagnostics on its own line (trailing
// comment) and on the line immediately below it (leading comment).
func allowedLines(fset *token.FileSet, files []*ast.File) map[int]map[string]bool {
	allowed := map[int]map[string]bool{}
	add := func(line int, name string) {
		if allowed[line] == nil {
			allowed[line] = map[string]bool{}
		}
		allowed[line][name] = true
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				text = text[len(AllowPrefix):]
				if text != "" && text[0] != ' ' && text[0] != '\t' {
					continue // e.g. "constvet:allowed" is not the marker
				}
				if reason := strings.Index(text, "--"); reason >= 0 {
					text = text[:reason]
				}
				line := fset.Position(c.Pos()).Line
				for _, name := range strings.Fields(text) {
					add(line, name)
					add(line+1, name)
				}
			}
		}
	}
	return allowed
}

// RunAnalyzer executes one analyzer over a loaded package and resolves its
// diagnostics against the package's //constvet:allow comments. prog is
// the program the package belongs to; analyzers that only need the
// package view ignore it.
func RunAnalyzer(a *Analyzer, prog *Program, pkg *Package) ([]Finding, error) {
	pass := &Pass{
		Analyzer: a,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
		Prog:     prog,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	allowed := allowedLines(pkg.Fset, pkg.Files)
	out := make([]Finding, 0, len(pass.diags))
	for _, d := range pass.diags {
		pos := pkg.Fset.Position(d.Pos)
		out = append(out, Finding{
			Analyzer:   a.Name,
			Pos:        pos,
			Message:    d.Message,
			Suppressed: allowed[pos.Line][a.Name],
		})
	}
	return out, nil
}

// pathHasSuffix reports whether the import path ends with the given
// slash-separated suffix on a path-segment boundary.
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
