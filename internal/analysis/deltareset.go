package analysis

import (
	"go/ast"
	"go/types"
)

// DeltaReset guards the incremental-maintenance layer introduced with
// the delta-driven decide/apply path (PR 6): whenever a component drops
// its memoized decisions because its view of the instance diverged —
// a serving-pipeline resync, a stale speculation batch — the maintained
// delta state (indexes, support counters, incrementally chased padding)
// is stale for exactly the same reason and must be dropped with it. A
// decision cache that outlives its basis returns wrong answers later;
// delta state that outlives its basis corrupts every subsequent apply.
//
// The analyzer flags a call x.InvalidateDecisions() where x's method
// set also offers InvalidateDeltas, unless the enclosing function pairs
// it with x.InvalidateDeltas() on the same receiver — or is itself an
// Invalidate* forwarder (the one place a lone forward is the point).
// Clearing only the decisions on such a receiver is deliberate
// somewhere? Say so with //constvet:allow deltareset -- reason.
var DeltaReset = &Analyzer{
	Name: "deltareset",
	Doc: "flag InvalidateDecisions() calls on receivers that also have " +
		"InvalidateDeltas, without the paired InvalidateDeltas() call in " +
		"the same function; diverged sessions must drop delta state too",
	Run: runDeltaReset,
}

// hasMethodNamed reports whether name is in the method set of t or *t.
func hasMethodNamed(t types.Type, name string) bool {
	if t == nil {
		return false
	}
	for _, typ := range []types.Type{t, types.NewPointer(t)} {
		ms := types.NewMethodSet(typ)
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return true
			}
		}
	}
	return false
}

func runDeltaReset(pass *Pass) error {
	for _, fd := range funcDecls(pass.Files) {
		// Forwarders that exist to expose one of the invalidations are
		// the single place a lone call is correct by construction.
		if fd.Name.Name == "InvalidateDecisions" || fd.Name.Name == "InvalidateDeltas" {
			continue
		}
		// First pass: receivers whose delta state is reset here.
		reset := map[string]bool{}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if recv, name, ok := methodCall(pass.Info, call); ok && name == "InvalidateDeltas" {
				reset[exprBaseName(recv)] = true
			}
			return true
		})
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			recv, name, ok := methodCall(pass.Info, call)
			if !ok || name != "InvalidateDecisions" {
				return true
			}
			if !hasMethodNamed(pass.TypeOf(recv), "InvalidateDeltas") {
				return true // receiver has no delta state to drop
			}
			if reset[exprBaseName(recv)] {
				return true
			}
			pass.Reportf(call.Pos(),
				"InvalidateDecisions() on %q without the paired InvalidateDeltas() in this function; a diverged session must drop its maintained delta state too (or //constvet:allow deltareset with a reason)", exprBaseName(recv))
			return true
		})
	}
	return nil
}
