package analysis

import (
	"go/ast"
	"go/types"
)

// Walltime forbids reading the wall clock outside internal/obs. The
// kernels and experiment measurement paths must be deterministic and
// instrument themselves through the obs layer's monotonic clock
// (obs.NowNS / obs.SinceNS), so a stray time.Now either perturbs
// reproducibility or bypasses the nil-safe metrics plumbing. Introduced
// with PR 3's observability layer; mechanized in PR 4.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "flag time.Now/Since/Until and the sleep/timer family (time.After, " +
		"time.Sleep, time.NewTimer, time.NewTicker, time.Tick) outside " +
		"internal/obs; deterministic kernels and measurement paths must use " +
		"the obs monotonic clock",
	AppliesTo: func(pkgPath string) bool { return !pathHasSuffix(pkgPath, "internal/obs") },
	Run:       runWalltime,
}

// clockFuncs are the package time functions that read the clock — plus
// the sleep/timer family, which both reads it and parks goroutines on
// real wall-clock durations, the blind spot that let time.After slip
// into timeout plumbing the ManualClock could never advance.
var clockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true,
	"After": true, "Sleep": true, "NewTimer": true, "NewTicker": true, "Tick": true,
}

// sleepFamily marks the clockFuncs that park goroutines rather than
// just read the clock; their fix-it hint differs.
var sleepFamily = map[string]bool{
	"After": true, "Sleep": true, "NewTimer": true, "NewTicker": true, "Tick": true,
}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			hint := "use obs.NowNS/obs.SinceNS for measurement so kernels stay deterministic"
			if sleepFamily[sel.Sel.Name] {
				hint = "park on an obs.Clock (Sleep/NowNS deadline) so schedules stay deterministic under ManualClock"
			}
			pass.Reportf(sel.Pos(), "time.%s outside internal/obs: %s", sel.Sel.Name, hint)
			return true
		})
	}
	return nil
}
