package analysis

import (
	"go/ast"
	"go/types"
)

// Walltime forbids reading the wall clock outside internal/obs. The
// kernels and experiment measurement paths must be deterministic and
// instrument themselves through the obs layer's monotonic clock
// (obs.NowNS / obs.SinceNS), so a stray time.Now either perturbs
// reproducibility or bypasses the nil-safe metrics plumbing. Introduced
// with PR 3's observability layer; mechanized in PR 4.
var Walltime = &Analyzer{
	Name: "walltime",
	Doc: "flag time.Now and time.Since outside internal/obs; deterministic " +
		"kernels and measurement paths must use the obs monotonic clock",
	AppliesTo: func(pkgPath string) bool { return !pathHasSuffix(pkgPath, "internal/obs") },
	Run:       runWalltime,
}

// clockFuncs are the package time functions that read the clock.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWalltime(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || !clockFuncs[sel.Sel.Name] {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			pass.Reportf(sel.Pos(),
				"time.%s outside internal/obs: use obs.NowNS/obs.SinceNS for measurement so kernels stay deterministic", sel.Sel.Name)
			return true
		})
	}
	return nil
}
