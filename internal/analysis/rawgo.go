package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// RawGo forbids raw `go` statements outside the deterministic fork/join
// scheduler in internal/relation/parallel.go. Everything else must
// route work through relation.Parallelism's scheduler — or carry a
// line-level //constvet:allow naming why that goroutine IS the design
// (the serve pipeline's decider/committer pair, loadgen's simulated
// client fleet) — so that worker counts, chunking, and joins stay
// deterministic and instrumented, and every sanctioned spawn site is
// individually inventoried. Introduced with PR 1's parallel kernels;
// mechanized in PR 4; package carve-outs replaced by per-line allows in
// PR 9 so the analyzer self-hosts over the whole repository.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc: "flag raw go statements outside internal/relation/parallel.go; " +
		"concurrency goes through the scheduler or a per-line allow",
	Run: runRawGo,
}

// rawGoExemptFiles are path suffixes of files allowed to spawn goroutines.
var rawGoExemptFiles = []string{"relation/parallel.go"}

func runRawGo(pass *Pass) error {
	for _, f := range pass.Files {
		name := filepath.ToSlash(pass.Fset.Position(f.Pos()).Filename)
		exempt := false
		for _, suffix := range rawGoExemptFiles {
			if strings.HasSuffix(name, suffix) {
				exempt = true
			}
		}
		if exempt {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement outside the sanctioned concurrency sites: route parallel work through relation.Parallelism's scheduler")
			}
			return true
		})
	}
	return nil
}
