package analysis

import (
	"go/ast"
	"path/filepath"
	"strings"
)

// RawGo forbids raw `go` statements outside the sanctioned concurrency
// sites: the deterministic fork/join scheduler in
// internal/relation/parallel.go, the obs layer, the serving pipeline in
// internal/serve (whose decider/committer goroutines ARE the
// concurrency design — PR 5), and the load generator in cmd/loadgen
// (whose simulated client fleet IS the workload — PR 8; each client
// goroutine models one independent network peer, which no scheduler
// abstraction expresses). Everything else must route work through
// relation.Parallelism's scheduler so that worker counts, chunking, and
// joins stay deterministic and instrumented. Introduced with PR 1's
// parallel kernels; mechanized in PR 4.
var RawGo = &Analyzer{
	Name: "rawgo",
	Doc: "flag raw go statements outside internal/relation/parallel.go, " +
		"internal/obs, internal/serve, and cmd/loadgen; concurrency goes " +
		"through the scheduler",
	AppliesTo: func(pkgPath string) bool {
		return !pathHasSuffix(pkgPath, "internal/obs") &&
			!pathHasSuffix(pkgPath, "internal/serve") &&
			!pathHasSuffix(pkgPath, "cmd/loadgen")
	},
	Run: runRawGo,
}

// rawGoExemptFiles are path suffixes of files allowed to spawn goroutines.
var rawGoExemptFiles = []string{"relation/parallel.go"}

func runRawGo(pass *Pass) error {
	for _, f := range pass.Files {
		name := filepath.ToSlash(pass.Fset.Position(f.Pos()).Filename)
		exempt := false
		for _, suffix := range rawGoExemptFiles {
			if strings.HasSuffix(name, suffix) {
				exempt = true
			}
		}
		if exempt {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(),
					"raw go statement outside the sanctioned concurrency sites: route parallel work through relation.Parallelism's scheduler")
			}
			return true
		})
	}
	return nil
}
