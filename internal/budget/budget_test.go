package budget

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestNilBudgetUnlimited(t *testing.T) {
	var b *B
	for i := 0; i < 1000; i++ {
		if err := b.Step(1 << 40); err != nil {
			t.Fatalf("nil budget tripped: %v", err)
		}
	}
	if b.Err() != nil {
		t.Fatal("nil budget has sticky error")
	}
}

func TestStepAllowance(t *testing.T) {
	b := WithSteps(context.Background(), 3)
	for i := 0; i < 3; i++ {
		if err := b.Step(1); err != nil {
			t.Fatalf("step %d tripped early: %v", i, err)
		}
	}
	err := b.Step(1)
	if !errors.Is(err, ErrExceeded) {
		t.Fatalf("want ErrExceeded, got %v", err)
	}
	// Sticky.
	if err := b.Check(); !errors.Is(err, ErrExceeded) {
		t.Fatalf("budget not sticky: %v", err)
	}
	if !errors.Is(b.Err(), ErrExceeded) {
		t.Fatalf("Err() = %v", b.Err())
	}
}

func TestContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	b := New(ctx)
	if err := b.Step(1); err != nil {
		t.Fatalf("pre-cancel step tripped: %v", err)
	}
	cancel()
	if err := b.Step(1); !errors.Is(err, ErrExceeded) {
		t.Fatalf("want ErrExceeded after cancel, got %v", err)
	}
}

func TestDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	b := WithSteps(ctx, 1<<30)
	if err := b.Check(); !errors.Is(err, ErrExceeded) {
		t.Fatalf("want ErrExceeded past deadline, got %v", err)
	}
}
