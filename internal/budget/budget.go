// Package budget bounds the execution of the repository's expensive
// decision procedures — the NP-complete minimum-complement search
// (Theorem 2), the tableau and instance chases, and the DPLL/QBF
// solvers — with a combination of context cancellation and a step
// counter. A nil *B means "unlimited" so hot paths can share one code
// path for budgeted and unbudgeted callers.
package budget

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// ErrExceeded is returned (wrapped) whenever a procedure runs out of
// budget: its context was cancelled, its deadline passed, or its step
// allowance ran dry. Callers test with errors.Is.
var ErrExceeded = errors.New("budget exceeded")

// B tracks the remaining budget of one logical operation. The zero
// value and the nil pointer are both unlimited; construct bounded
// budgets with New or WithSteps.
//
// A B is not safe for concurrent use; budgeted procedures are
// sequential by design.
type B struct {
	ctx   context.Context
	steps int64
	// limit is the original step allowance (0 when unlimited); used is
	// the running consumption, for the obs layer's consumption-vs-limit
	// reporting.
	limit int64
	used  int64
	// limited reports whether the step counter is enforced.
	limited bool
	// err is sticky: once the budget trips, every Check fails.
	err error
}

// budgetMetrics holds the resolved metric handles for all budgets.
type budgetMetrics struct {
	steps    *obs.Counter
	exceeded *obs.Counter
	// utilizationPct records used/limit at the moment a *limited* budget
	// trips or is inspected via Utilization; unlimited budgets never
	// observe it.
	utilizationPct *obs.Histogram
}

var bmetrics atomic.Pointer[budgetMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for
// budget accounting.
func SetMetrics(s obs.Sink) {
	if s == nil {
		bmetrics.Store(nil)
		return
	}
	bmetrics.Store(&budgetMetrics{
		steps:          s.Counter("budget_steps_total"),
		exceeded:       s.Counter("budget_exceeded_total"),
		utilizationPct: s.Histogram("budget_utilization_pct"),
	})
}

// planKey carries a per-attempt step plan through a context (see
// ContextWithPlan).
type planKey struct{}

// ContextWithPlan attaches a step plan to ctx: every budget New derives
// from the returned context consults plan() for its step allowance — a
// positive value bounds that attempt, zero or negative means unlimited.
// Because every decision procedure in the repository builds its budget
// with New(ctx), this lets callers (and the chaos harness) bound or
// deterministically trip any single attempt without threading a *B
// through the API. plan is called once per budget construction and must
// be safe for the caller's concurrency.
func ContextWithPlan(ctx context.Context, plan func() int64) context.Context {
	return context.WithValue(ctx, planKey{}, plan)
}

// New returns a budget bounded only by ctx — unless ctx carries a step
// plan (ContextWithPlan), in which case the plan's allowance for this
// attempt bounds it too. A nil ctx means unlimited.
func New(ctx context.Context) *B {
	if ctx != nil {
		if plan, ok := ctx.Value(planKey{}).(func() int64); ok {
			if n := plan(); n > 0 {
				return WithSteps(ctx, n)
			}
		}
	}
	return &B{ctx: ctx}
}

// WithSteps returns a budget bounded by ctx and by a step allowance:
// after steps calls' worth of Step(n) the budget trips.
func WithSteps(ctx context.Context, steps int64) *B {
	return &B{ctx: ctx, steps: steps, limit: steps, limited: true}
}

// Step consumes n steps and reports whether the budget still holds. It
// is nil-safe: a nil receiver is unlimited and always returns nil. On
// exhaustion it returns an error wrapping ErrExceeded, and keeps
// returning it on every subsequent call.
func (b *B) Step(n int64) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	b.used += n
	if m := bmetrics.Load(); m != nil {
		m.steps.Add(n)
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			b.err = fmt.Errorf("%w: %v", ErrExceeded, err)
			b.trip()
			return b.err
		}
	}
	if b.limited {
		b.steps -= n
		if b.steps < 0 {
			b.err = fmt.Errorf("%w: step allowance exhausted", ErrExceeded)
			b.trip()
			return b.err
		}
	}
	return nil
}

// trip publishes the exhaustion to the obs layer.
func (b *B) trip() {
	m := bmetrics.Load()
	if m == nil {
		return
	}
	m.exceeded.Inc()
	if b.limited && b.limit > 0 {
		m.utilizationPct.Observe(100 * float64(b.used) / float64(b.limit))
	}
}

// Used returns the steps consumed so far (0 on a nil receiver).
func (b *B) Used() int64 {
	if b == nil {
		return 0
	}
	return b.used
}

// Limit returns the original step allowance (0 when the budget has no
// step limit).
func (b *B) Limit() int64 {
	if b == nil {
		return 0
	}
	return b.limit
}

// Check is Step(0): it tests cancellation without consuming steps.
func (b *B) Check() error { return b.Step(0) }

// Err returns the sticky error if the budget has tripped, else nil.
func (b *B) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}
