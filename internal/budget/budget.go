// Package budget bounds the execution of the repository's expensive
// decision procedures — the NP-complete minimum-complement search
// (Theorem 2), the tableau and instance chases, and the DPLL/QBF
// solvers — with a combination of context cancellation and a step
// counter. A nil *B means "unlimited" so hot paths can share one code
// path for budgeted and unbudgeted callers.
package budget

import (
	"context"
	"errors"
	"fmt"
)

// ErrExceeded is returned (wrapped) whenever a procedure runs out of
// budget: its context was cancelled, its deadline passed, or its step
// allowance ran dry. Callers test with errors.Is.
var ErrExceeded = errors.New("budget exceeded")

// B tracks the remaining budget of one logical operation. The zero
// value and the nil pointer are both unlimited; construct bounded
// budgets with New or WithSteps.
//
// A B is not safe for concurrent use; budgeted procedures are
// sequential by design.
type B struct {
	ctx   context.Context
	steps int64
	// limited reports whether the step counter is enforced.
	limited bool
	// err is sticky: once the budget trips, every Check fails.
	err error
}

// New returns a budget bounded only by ctx. A nil ctx means unlimited.
func New(ctx context.Context) *B {
	return &B{ctx: ctx}
}

// WithSteps returns a budget bounded by ctx and by a step allowance:
// after steps calls' worth of Step(n) the budget trips.
func WithSteps(ctx context.Context, steps int64) *B {
	return &B{ctx: ctx, steps: steps, limited: true}
}

// Step consumes n steps and reports whether the budget still holds. It
// is nil-safe: a nil receiver is unlimited and always returns nil. On
// exhaustion it returns an error wrapping ErrExceeded, and keeps
// returning it on every subsequent call.
func (b *B) Step(n int64) error {
	if b == nil {
		return nil
	}
	if b.err != nil {
		return b.err
	}
	if b.ctx != nil {
		if err := b.ctx.Err(); err != nil {
			b.err = fmt.Errorf("%w: %v", ErrExceeded, err)
			return b.err
		}
	}
	if b.limited {
		b.steps -= n
		if b.steps < 0 {
			b.err = fmt.Errorf("%w: step allowance exhausted", ErrExceeded)
			return b.err
		}
	}
	return nil
}

// Check is Step(0): it tests cancellation without consuming steps.
func (b *B) Check() error { return b.Step(0) }

// Err returns the sticky error if the budget has tripped, else nil.
func (b *B) Err() error {
	if b == nil {
		return nil
	}
	return b.err
}
