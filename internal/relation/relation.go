// Package relation implements an in-memory relational engine with set
// semantics: tuples over attribute sets, projection, selection, natural
// join (hash and sort-merge), Cartesian product, lexicographic sorting and
// dependency satisfaction checks.
//
// This is the substrate the Cosmadakis–Papadimitriou algorithms run on: a
// view instance is a Relation, the translation of an insertion is the join
// R ∪ t*π_Y(R), and the chase of §3 repeatedly sorts/buckets relations by
// attribute subsets. Entries are value.Value, so relations can freely mix
// constants and the labeled nulls the chase introduces.
package relation

import (
	"fmt"
	"strings"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/value"
)

// Tuple is a row; its entries are in ascending attribute-ID order of the
// owning relation's attribute set.
type Tuple []value.Value

// Clone returns a copy of the tuple.
func (t Tuple) Clone() Tuple {
	out := make(Tuple, len(t))
	copy(out, t)
	return out
}

// Equal reports whether two tuples have identical entries.
func (t Tuple) Equal(o Tuple) bool {
	if len(t) != len(o) {
		return false
	}
	for i := range t {
		if t[i] != o[i] {
			return false
		}
	}
	return true
}

// Less orders tuples lexicographically.
func (t Tuple) Less(o Tuple) bool {
	n := len(t)
	if len(o) < n {
		n = len(o)
	}
	for i := 0; i < n; i++ {
		if t[i] != o[i] {
			return t[i] < o[i]
		}
	}
	return len(t) < len(o)
}

// Relation is a set of tuples over a fixed attribute set. Duplicate
// inserts are ignored (set semantics). The zero Relation is invalid; use
// New.
//
// Tuples are immutable once inserted: neither the relation nor any
// caller may modify a tuple reachable through Tuples or Tuple. Every
// kernel relies on this invariant to share tuple slices instead of
// copying them (Clone, Union, Diff, Select, the joins); mutate a Clone()
// of a tuple, never the tuple itself.
type Relation struct {
	attrs  attr.Set
	cols   []attr.ID       // ascending; cols[i] is the attribute of column i
	pos    map[attr.ID]int // inverse of cols; nil for narrow relations (linear scan)
	tuples []Tuple
	index  table // open-addressing hash index over tuples
}

// posMapWidth is the column count above which the inverse map pays for
// itself. Below it a linear scan of cols beats building (and collecting)
// a map per relation — projections churn through thousands of narrow
// relations in the update hot path.
const posMapWidth = 8

// New returns an empty relation over the given attribute set.
func New(attrs attr.Set) *Relation {
	cols := attrs.IDs()
	var pos map[attr.ID]int
	if len(cols) > posMapWidth {
		pos = make(map[attr.ID]int, len(cols))
		for i, c := range cols {
			pos[c] = i
		}
	}
	return &Relation{attrs: attrs, cols: cols, pos: pos}
}

// colPos returns the column position of id, or -1 if absent.
func (r *Relation) colPos(id attr.ID) int {
	if r.pos != nil {
		if i, ok := r.pos[id]; ok {
			return i
		}
		return -1
	}
	for i, c := range r.cols {
		if c == id {
			return i
		}
	}
	return -1
}

// Attrs returns the relation's attribute set.
func (r *Relation) Attrs() attr.Set { return r.attrs }

// Universe returns the attribute universe of the relation.
func (r *Relation) Universe() *attr.Universe { return r.attrs.Universe() }

// Width reports the number of columns.
func (r *Relation) Width() int { return len(r.cols) }

// Len reports the number of tuples.
func (r *Relation) Len() int { return len(r.tuples) }

// Cols returns the column attribute IDs in ascending order. The slice is
// shared; callers must not modify it.
func (r *Relation) Cols() []attr.ID { return r.cols }

// Col returns the column position of attribute id, or -1 if the relation
// does not contain it.
func (r *Relation) Col(id attr.ID) int { return r.colPos(id) }

// Tuples returns the backing tuple slice in insertion order. Callers must
// not modify it or the tuples it contains.
func (r *Relation) Tuples() []Tuple { return r.tuples }

// Tuple returns the i-th tuple.
func (r *Relation) Tuple(i int) Tuple { return r.tuples[i] }

// Insert adds a tuple (a copy is not taken; the caller relinquishes the
// slice and must never mutate it afterwards). It reports whether the
// tuple was new. It panics if the arity is wrong.
func (r *Relation) Insert(t Tuple) bool {
	if len(t) != len(r.cols) {
		panic(fmt.Sprintf("relation: inserting %d-tuple into %d-ary relation", len(t), len(r.cols)))
	}
	h := hashTuple(t)
	if r.index.lookup(h, t, r.tuples) >= 0 {
		return false
	}
	r.index.add(h, len(r.tuples))
	r.tuples = append(r.tuples, t)
	return true
}

// InsertVals builds and inserts a tuple from values given in column order.
func (r *Relation) InsertVals(vals ...value.Value) bool {
	t := make(Tuple, len(vals))
	copy(t, vals)
	return r.Insert(t)
}

// InsertNamed inserts a tuple given as attribute-name → constant-name
// mappings interned in syms. Every column must be assigned.
func (r *Relation) InsertNamed(syms *value.Symbols, vals map[string]string) error {
	t := make(Tuple, len(r.cols))
	seen := 0
	for name, cv := range vals {
		id, ok := r.attrs.Universe().Lookup(name)
		if !ok {
			return fmt.Errorf("relation: unknown attribute %q", name)
		}
		c := r.Col(id)
		if c < 0 {
			return fmt.Errorf("relation: attribute %q not in relation", name)
		}
		t[c] = syms.Const(cv)
		seen++
	}
	if seen != len(r.cols) {
		return fmt.Errorf("relation: tuple assigns %d of %d columns", seen, len(r.cols))
	}
	r.Insert(t)
	return nil
}

// Contains reports whether the relation holds the tuple.
func (r *Relation) Contains(t Tuple) bool {
	return r.index.lookup(hashTuple(t), t, r.tuples) >= 0
}

// Delete removes the tuple if present, reporting whether it was found.
func (r *Relation) Delete(t Tuple) bool {
	h := hashTuple(t)
	i := r.index.lookup(h, t, r.tuples)
	if i < 0 {
		return false
	}
	r.index.remove(h, i)
	last := len(r.tuples) - 1
	if i != last {
		moved := r.tuples[last]
		r.tuples[i] = moved
		r.index.fix(hashTuple(moved), last, i)
	}
	r.tuples[last] = nil
	r.tuples = r.tuples[:last]
	return true
}

// Clone returns an independent copy of the relation. Tuple slices are
// shared with the receiver (tuples are immutable after insert), so this
// is O(n) slot copying with no per-tuple allocation.
func (r *Relation) Clone() *Relation {
	out := New(r.attrs)
	out.tuples = make([]Tuple, len(r.tuples))
	copy(out.tuples, r.tuples)
	out.index.n = r.index.n
	if len(r.index.slots) > 0 {
		out.index.slots = make([]tslot, len(r.index.slots))
		copy(out.index.slots, r.index.slots)
	}
	return out
}

// Equal reports set equality of two relations over the same attribute set.
func (r *Relation) Equal(s *Relation) bool {
	if !r.attrs.Equal(s.attrs) || r.Len() != s.Len() {
		return false
	}
	for _, t := range r.tuples {
		if !s.Contains(t) {
			return false
		}
	}
	return true
}

// projector precomputes the column mapping for projecting r onto attrs.
func (r *Relation) projector(attrs attr.Set) []int {
	if !attrs.SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation: projecting %v out of %v", attrs, r.attrs))
	}
	ids := attrs.IDs()
	m := make([]int, len(ids))
	for i, id := range ids {
		m[i] = r.colPos(id)
	}
	return m
}

// ProjectTuple projects a single tuple of r onto attrs.
func (r *Relation) ProjectTuple(t Tuple, attrs attr.Set) Tuple {
	m := r.projector(attrs)
	out := make(Tuple, len(m))
	for i, c := range m {
		out[i] = t[c]
	}
	return out
}

// slab hands out tuple storage carved from block allocations, so kernels
// that materialize many small tuples (Project, the joins) pay one
// allocation per block instead of one per tuple.
type slab struct {
	buf []value.Value
	off int
	// hint caps the size of the NEXT block carved: a kernel that knows
	// its output is at most n tuples (Project can't emit more than its
	// input has) sets it so small relations don't pay for a full
	// 256-tuple block. Zero means full-size; the cap applies once, so
	// outputs that outgrow the hint fall back to full blocks.
	hint int
}

// slabBlock is how many tuples a slab block holds.
const slabBlock = 256

// tuple carves a fresh w-entry tuple.
func (s *slab) tuple(w int) Tuple {
	if s.off+w > len(s.buf) {
		n := slabBlock
		if s.hint > 0 && s.hint < n {
			n = s.hint
		}
		s.hint = 0
		s.buf = make([]value.Value, (n+1)*w)
		s.off = 0
	}
	t := Tuple(s.buf[s.off : s.off+w : s.off+w])
	s.off += w
	return t
}

// undo returns the storage of the tuple just carved (valid only
// immediately after the matching tuple call, before the tuple escapes).
func (s *slab) undo(w int) { s.off -= w }

// joinHint bounds a join's first slab block by the worst-case output
// cardinality |build|×|probe|. Zero (full-size blocks) when the product
// reaches the normal block size anyway, so only small joins — the
// singleton joins of the per-update translation — get trimmed.
func joinHint(b, p int) int {
	if b == 0 || p == 0 {
		return 1
	}
	if b > slabBlock/p {
		return 0
	}
	return b * p
}

// insertProjection inserts π_m(src) into r, carving storage from sl only
// when the projected tuple is new; duplicates allocate nothing.
func (r *Relation) insertProjection(src Tuple, m []int, sl *slab) bool {
	h := uint64(fnvOffset64)
	for _, c := range m {
		h = hashWord(h, src[c])
	}
	h = hashFinish(h)
	if len(r.index.slots) > 0 {
		msk := len(r.index.slots) - 1
		for i := int(h & uint64(msk)); ; i = (i + 1) & msk {
			s := r.index.slots[i]
			if s.idx < 0 {
				break
			}
			if s.hash != h {
				continue
			}
			cand := r.tuples[s.idx]
			dup := true
			for j, c := range m {
				if cand[j] != src[c] {
					dup = false
					break
				}
			}
			if dup {
				return false
			}
		}
	}
	t := sl.tuple(len(m))
	for j, c := range m {
		t[j] = src[c]
	}
	r.index.add(h, len(r.tuples))
	r.tuples = append(r.tuples, t)
	return true
}

// Project returns π_attrs(r) with duplicates removed.
func (r *Relation) Project(attrs attr.Set) *Relation {
	m := r.projector(attrs)
	var out *Relation
	if n := len(r.tuples); n >= parallelThreshold && workers() > 1 {
		out = projectParallel(r, attrs, m)
	} else {
		out = New(attrs)
		sl := slab{hint: len(r.tuples)}
		for _, t := range r.tuples {
			out.insertProjection(t, m, &sl)
		}
	}
	if km := kmetrics.Load(); km != nil {
		km.projectCalls.Inc()
		km.projectInTuples.Add(int64(len(r.tuples)))
		km.projectOutTuples.Add(int64(out.Len()))
	}
	return out
}

// Select returns the tuples satisfying pred, as a new relation sharing
// the selected tuples (tuples are immutable after insert).
func (r *Relation) Select(pred func(Tuple) bool) *Relation {
	out := New(r.attrs)
	for _, t := range r.tuples {
		if pred(t) {
			out.Insert(t)
		}
	}
	return out
}

// SelectEq returns the tuples whose projection onto attrs equals key
// (key's entries in ascending attribute order of attrs). The key must
// have exactly one entry per attribute.
func (r *Relation) SelectEq(attrs attr.Set, key Tuple) *Relation {
	m := r.projector(attrs)
	if len(key) != len(m) {
		panic(fmt.Sprintf("relation: SelectEq key has %d entries for %d attributes", len(key), len(m)))
	}
	var out *Relation
	if n := len(r.tuples); n >= parallelThreshold && workers() > 1 {
		out = selectEqParallel(r, m, key)
	} else {
		out = New(r.attrs)
		for _, t := range r.tuples {
			if equalKey(t, m, key) {
				out.Insert(t)
			}
		}
	}
	if km := kmetrics.Load(); km != nil {
		km.selectEqCalls.Inc()
		km.selectEqScanned.Add(int64(len(r.tuples)))
		km.selectEqMatched.Add(int64(out.Len()))
	}
	return out
}

// equalKey reports whether t's cols m equal key pointwise.
func equalKey(t Tuple, m []int, key Tuple) bool {
	for i, c := range m {
		if t[c] != key[i] {
			return false
		}
	}
	return true
}

// Union returns r ∪ s over the same attribute set, sharing tuples with
// both operands.
func (r *Relation) Union(s *Relation) *Relation {
	if !r.attrs.Equal(s.attrs) {
		panic("relation: union over different attribute sets")
	}
	out := r.Clone()
	for _, t := range s.tuples {
		out.Insert(t)
	}
	return out
}

// Diff returns r − s over the same attribute set, sharing tuples with r.
func (r *Relation) Diff(s *Relation) *Relation {
	if !r.attrs.Equal(s.attrs) {
		panic("relation: difference over different attribute sets")
	}
	out := New(r.attrs)
	for _, t := range r.tuples {
		if !s.Contains(t) {
			out.Insert(t)
		}
	}
	return out
}

// JoinAlgorithm selects the natural-join implementation.
type JoinAlgorithm int

// Join algorithms.
const (
	// HashJoin buckets the smaller operand by the shared attributes.
	HashJoin JoinAlgorithm = iota
	// SortMergeJoin sorts both operands by the shared attributes and
	// merges.
	SortMergeJoin
)

// Join computes the natural join r ⋈ s with the default (hash) algorithm.
func (r *Relation) Join(s *Relation) *Relation {
	return r.JoinWith(s, HashJoin)
}

// JoinWith computes the natural join r ⋈ s with the chosen algorithm.
// If the operands share no attributes the result is the Cartesian product.
func (r *Relation) JoinWith(s *Relation, alg JoinAlgorithm) *Relation {
	if r.Universe() != s.Universe() {
		panic("relation: join across universes")
	}
	switch alg {
	case SortMergeJoin:
		return joinSortMerge(r, s)
	default:
		return joinHash(r, s)
	}
}

// combine merges a tuple of r and a tuple of s into the union schema.
// The shared attributes are taken from r's tuple (they agree by
// construction).
func joinPlan(r, s *Relation) (out *Relation, fromR, fromS []int) {
	union := r.attrs.Union(s.attrs)
	out = New(union)
	fromR = make([]int, len(out.cols))
	fromS = make([]int, len(out.cols))
	for i, id := range out.cols {
		fromR[i], fromS[i] = -1, -1
		if c := r.Col(id); c >= 0 {
			fromR[i] = c
		} else {
			fromS[i] = s.Col(id)
		}
	}
	return out, fromR, fromS
}

// joinIndex is a chained hash index of one join operand's shared
// columns: heads maps a key hash to the first tuple of its chain, next
// threads tuples with equal hash. Collisions are verified by comparing
// the actual shared columns.
type joinIndex struct {
	heads *headTable
	next  []int
}

// buildJoinIndex indexes tuples[lo:hi] by hashCols(·, bm) into ji.
func buildJoinIndex(ji *joinIndex, tuples []Tuple, bm []int, lo, hi int) {
	for i := lo; i < hi; i++ {
		ji.next[i] = ji.heads.put(hashCols(tuples[i], bm), i)
	}
}

// probeJoin emits the join of probe tuples [lo, hi) against the build
// index into out (which must be over the joinPlan schema). emit order
// follows probe order, so chunked parallel probes merged in chunk order
// reproduce the serial output exactly. It returns the number of hash
// chain entries visited (the probe cost the obs layer reports).
func probeJoin(out *Relation, ji *joinIndex, build, probe *Relation, bm, pm, fromR, fromS []int, buildIsR bool, lo, hi int, sl *slab) int64 {
	w := len(out.cols)
	var visits int64
	for pi := lo; pi < hi; pi++ {
		t := probe.tuples[pi]
		h := hashCols(t, pm)
		for j := ji.heads.get(h); j >= 0; j = ji.next[j] {
			visits++
			bt := build.tuples[j]
			if !equalOn(bt, bm, t, pm) {
				continue
			}
			rt, st := bt, t
			if !buildIsR {
				rt, st = t, bt
			}
			nt := sl.tuple(w)
			for i := range nt {
				if fromR[i] >= 0 {
					nt[i] = rt[fromR[i]]
				} else {
					nt[i] = st[fromS[i]]
				}
			}
			if !out.Insert(nt) {
				sl.undo(w)
			}
		}
	}
	return visits
}

// recordJoin publishes one join call's counts to the obs layer.
func recordJoin(m *kernelMetrics, build, probe, out *Relation, visits int64) {
	m.joinCalls.Inc()
	m.joinBuildTuples.Add(int64(build.Len()))
	m.joinProbeTuples.Add(int64(probe.Len()))
	m.joinChainVisits.Add(visits)
	m.joinOutTuples.Add(int64(out.Len()))
}

func joinHash(r, s *Relation) *Relation {
	shared := r.attrs.Intersect(s.attrs)
	// Build on the smaller side.
	build, probe := r, s
	if s.Len() < r.Len() {
		build, probe = s, r
	}
	if probe.Len() >= parallelThreshold && workers() > 1 {
		return joinHashParallel(r, s, build, probe, shared)
	}
	bm := build.projector(shared)
	pm := probe.projector(shared)
	ji := &joinIndex{heads: newHeadTable(build.Len()), next: make([]int, build.Len())}
	buildJoinIndex(ji, build.tuples, bm, 0, build.Len())
	out, fromR, fromS := joinPlan(r, s)
	sl := slab{hint: joinHint(build.Len(), probe.Len())}
	visits := probeJoin(out, ji, build, probe, bm, pm, fromR, fromS, build == r, 0, probe.Len(), &sl)
	if m := kmetrics.Load(); m != nil {
		recordJoin(m, build, probe, out, visits)
	}
	return out
}

func joinSortMerge(r, s *Relation) *Relation {
	shared := r.attrs.Intersect(s.attrs)
	rm := r.projector(shared)
	sm := s.projector(shared)
	rt := make([]Tuple, len(r.tuples))
	copy(rt, r.tuples)
	st := make([]Tuple, len(s.tuples))
	copy(st, s.tuples)
	SortTuplesBy(rt, rm)
	SortTuplesBy(st, sm)
	out, fromR, fromS := joinPlan(r, s)
	i, j := 0, 0
	for i < len(rt) && j < len(st) {
		c := compareOn(rt[i], rm, st[j], sm)
		switch {
		case c < 0:
			i++
		case c > 0:
			j++
		default:
			// Find the equal runs on both sides.
			i2 := i
			for i2 < len(rt) && compareOn(rt[i2], rm, st[j], sm) == 0 {
				i2++
			}
			j2 := j
			for j2 < len(st) && compareOn(rt[i], rm, st[j2], sm) == 0 {
				j2++
			}
			for a := i; a < i2; a++ {
				for b := j; b < j2; b++ {
					nt := make(Tuple, len(out.cols))
					for k := range nt {
						if fromR[k] >= 0 {
							nt[k] = rt[a][fromR[k]]
						} else {
							nt[k] = st[b][fromS[k]]
						}
					}
					out.Insert(nt)
				}
			}
			i, j = i2, j2
		}
	}
	return out
}

func compareOn(a Tuple, am []int, b Tuple, bm []int) int {
	for i := range am {
		av, bv := a[am[i]], b[bm[i]]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Product returns the Cartesian product of relations over disjoint
// attribute sets.
func (r *Relation) Product(s *Relation) *Relation {
	if r.attrs.Intersects(s.attrs) {
		panic("relation: product of overlapping relations")
	}
	return joinHash(r, s)
}

// Sorted returns the tuples sorted lexicographically by the given
// attribute order (remaining columns break ties in ascending ID order).
// The relation itself is unchanged.
func (r *Relation) Sorted(by attr.Set) []Tuple {
	m := r.projector(by)
	// Append the remaining columns for a total order.
	rest := r.attrs.Diff(by)
	m = append(m, r.projector(rest)...)
	out := make([]Tuple, len(r.tuples))
	copy(out, r.tuples)
	SortTuplesBy(out, m)
	return out
}

// Singleton returns a one-tuple relation over attrs.
func Singleton(attrs attr.Set, t Tuple) *Relation {
	r := New(attrs)
	r.Insert(t)
	return r
}

// Format renders the relation as an aligned table using syms for constant
// names, with columns in ascending attribute order and rows sorted
// lexicographically (deterministic output).
func (r *Relation) Format(syms *value.Symbols) string {
	var b strings.Builder
	u := r.Universe()
	widths := make([]int, len(r.cols))
	header := make([]string, len(r.cols))
	for i, id := range r.cols {
		header[i] = u.Name(id)
		widths[i] = len(header[i])
	}
	rows := r.Sorted(r.attrs)
	cells := make([][]string, len(rows))
	for ri, t := range rows {
		cells[ri] = make([]string, len(t))
		for ci, v := range t {
			s := syms.Name(v)
			cells[ri][ci] = s
			if len(s) > widths[ci] {
				widths[ci] = len(s)
			}
		}
	}
	writeRow := func(cols []string) {
		for i, c := range cols {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			for p := len(c); p < widths[i]; p++ {
				b.WriteByte(' ')
			}
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for _, row := range cells {
		writeRow(row)
	}
	return b.String()
}

// String renders a compact representation without a symbol table.
func (r *Relation) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%v (%d tuples)", r.attrs, r.Len())
	return b.String()
}
