package relation

import "math/bits"

// Specialized multi-column tuple sorting.
//
// The engine sorts []Tuple by a column list in three hot paths: Sorted,
// the sort-merge join, and the paper-literal sort-based chase
// (chase.InstanceSortBased). sort.Slice pays for reflection and an
// indirect less() call per comparison; this introsort compares columns
// directly and uses a three-way partition so the long equal-key runs the
// sort-merge join produces cost O(n) instead of quadratic.

// SortTuplesBy sorts ts in place, lexicographically by the given column
// indices. Ties on the column list are left in an unspecified (but
// deterministic) order.
func SortTuplesBy(ts []Tuple, cols []int) {
	if len(ts) < 2 {
		return
	}
	// Already-ordered inputs are common (re-sorting between chase passes,
	// relations built in key order); detect them in one cheap pass.
	sorted := true
	for i := 1; i < len(ts); i++ {
		if compareCols(ts[i], ts[i-1], cols) < 0 {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	introsortTuples(ts, cols, 2*bits.Len(uint(len(ts))))
}

// compareCols orders two tuples by the column list.
func compareCols(a, b Tuple, cols []int) int {
	for _, c := range cols {
		av, bv := a[c], b[c]
		if av != bv {
			if av < bv {
				return -1
			}
			return 1
		}
	}
	return 0
}

// introsortTuples is a quicksort with three-way partitioning, insertion
// sort below 12 elements, and a heapsort fallback when the recursion
// depth budget runs out (guaranteeing O(n log n)).
func introsortTuples(ts []Tuple, cols []int, depth int) {
	for len(ts) > 12 {
		if depth == 0 {
			heapsortTuples(ts, cols)
			return
		}
		depth--
		lt, gt := partition3(ts, cols)
		// Recurse into the smaller side, iterate on the larger.
		if lt < len(ts)-gt {
			introsortTuples(ts[:lt], cols, depth)
			ts = ts[gt:]
		} else {
			introsortTuples(ts[gt:], cols, depth)
			ts = ts[:lt]
		}
	}
	insertionSortTuples(ts, cols)
}

// partition3 partitions ts around a median-of-three pivot into
// [less | equal | greater], returning the equal range [lt, gt).
func partition3(ts []Tuple, cols []int) (lt, gt int) {
	n := len(ts)
	mid := n / 2
	if compareCols(ts[mid], ts[0], cols) < 0 {
		ts[mid], ts[0] = ts[0], ts[mid]
	}
	if compareCols(ts[n-1], ts[0], cols) < 0 {
		ts[n-1], ts[0] = ts[0], ts[n-1]
	}
	if compareCols(ts[n-1], ts[mid], cols) < 0 {
		ts[n-1], ts[mid] = ts[mid], ts[n-1]
	}
	pivot := ts[mid]
	lo, i, hi := 0, 0, n
	for i < hi {
		switch c := compareCols(ts[i], pivot, cols); {
		case c < 0:
			ts[lo], ts[i] = ts[i], ts[lo]
			lo++
			i++
		case c > 0:
			hi--
			ts[i], ts[hi] = ts[hi], ts[i]
		default:
			i++
		}
	}
	return lo, hi
}

func insertionSortTuples(ts []Tuple, cols []int) {
	for i := 1; i < len(ts); i++ {
		t := ts[i]
		j := i - 1
		for j >= 0 && compareCols(t, ts[j], cols) < 0 {
			ts[j+1] = ts[j]
			j--
		}
		ts[j+1] = t
	}
}

func heapsortTuples(ts []Tuple, cols []int) {
	n := len(ts)
	for i := n/2 - 1; i >= 0; i-- {
		siftDownTuples(ts, i, n, cols)
	}
	for i := n - 1; i > 0; i-- {
		ts[0], ts[i] = ts[i], ts[0]
		siftDownTuples(ts, 0, i, cols)
	}
}

func siftDownTuples(ts []Tuple, root, end int, cols []int) {
	for {
		child := 2*root + 1
		if child >= end {
			return
		}
		if child+1 < end && compareCols(ts[child], ts[child+1], cols) < 0 {
			child++
		}
		if compareCols(ts[root], ts[child], cols) >= 0 {
			return
		}
		ts[root], ts[child] = ts[child], ts[root]
		root = child
	}
}
