package relation

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// Kernel instrumentation. Disabled by default: the hot paths load one
// atomic pointer per kernel call and skip everything else, so the
// uninstrumented cost is a branch. SetMetrics resolves all handles
// once, up front — no name lookups ever happen on a kernel path.

// kernelMetrics holds the resolved metric handles for the kernels.
type kernelMetrics struct {
	joinCalls       *obs.Counter
	joinBuildTuples *obs.Counter
	joinProbeTuples *obs.Counter
	joinChainVisits *obs.Counter
	joinOutTuples   *obs.Counter

	projectCalls     *obs.Counter
	projectInTuples  *obs.Counter
	projectOutTuples *obs.Counter

	selectEqCalls   *obs.Counter
	selectEqScanned *obs.Counter
	selectEqMatched *obs.Counter

	fdScanCalls  *obs.Counter
	fdScanTuples *obs.Counter

	parallelChunks  *obs.Counter
	parallelChunkNs *obs.Histogram
	parallelUtilPct *obs.Histogram
}

var kmetrics atomic.Pointer[kernelMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for the
// relational kernels. Metric names are documented in DESIGN.md's
// Observability section.
func SetMetrics(s obs.Sink) {
	if s == nil {
		kmetrics.Store(nil)
		return
	}
	kmetrics.Store(&kernelMetrics{
		joinCalls:       s.Counter("relation_join_calls_total"),
		joinBuildTuples: s.Counter("relation_join_build_tuples_total"),
		joinProbeTuples: s.Counter("relation_join_probe_tuples_total"),
		joinChainVisits: s.Counter("relation_join_chain_visits_total"),
		joinOutTuples:   s.Counter("relation_join_out_tuples_total"),

		projectCalls:     s.Counter("relation_project_calls_total"),
		projectInTuples:  s.Counter("relation_project_in_tuples_total"),
		projectOutTuples: s.Counter("relation_project_out_tuples_total"),

		selectEqCalls:   s.Counter("relation_selecteq_calls_total"),
		selectEqScanned: s.Counter("relation_selecteq_scanned_tuples_total"),
		selectEqMatched: s.Counter("relation_selecteq_matched_tuples_total"),

		fdScanCalls:  s.Counter("relation_fdscan_calls_total"),
		fdScanTuples: s.Counter("relation_fdscan_tuples_total"),

		parallelChunks:  s.Counter("relation_parallel_chunks_total"),
		parallelChunkNs: s.Histogram("relation_parallel_chunk_ns"),
		parallelUtilPct: s.Histogram("relation_parallel_utilization_pct"),
	})
}
