package relation

import (
	"context"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/obs"
)

// Parallel kernels.
//
// The engine is serial by default — the paper's complexity measurements
// (cmd/experiments) are meaningful only on the serial kernels — and can
// be switched to n-way parallelism with Parallelism(n). Inputs below
// parallelThreshold tuples always take the serial path: goroutine
// fan-out costs more than it saves on small relations.
//
// Every parallel kernel is deterministic and produces tuples in exactly
// the serial kernel's insertion order: work is split into contiguous
// chunks, each worker emits into a private buffer (pre-deduplicated
// where the kernel dedups), and the buffers are merged in chunk order.
// A tuple's first occurrence therefore appears at the same position as
// in the serial scan, for any worker count.

// maxParallelism is the configured worker count; values < 1 mean serial.
var maxParallelism atomic.Int32

// Parallelism sets the number of worker goroutines the kernels may use
// (the joins, Project, SelectEq and the FD-satisfaction scan). n == 1
// restores the default serial behaviour; n <= 0 selects GOMAXPROCS.
func Parallelism(n int) {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	maxParallelism.Store(int32(n))
}

// CurrentParallelism reports the effective worker count.
func CurrentParallelism() int { return workers() }

// workers returns the effective worker count (≥ 1).
func workers() int {
	if n := int(maxParallelism.Load()); n > 1 {
		return n
	}
	return 1
}

// parallelThreshold is the input size (in tuples) below which kernels
// stay serial regardless of the Parallelism knob.
const parallelThreshold = 4096

// forChunks splits n items into one contiguous chunk per worker and runs
// fn(w, lo, hi) concurrently, waiting for all chunks.
//
// With metrics enabled, each chunk runs under pprof labels
// (kernel_worker=<w>) so CPU profiles attribute samples to workers, its
// busy time feeds the chunk-duration histogram, and the whole fan-out
// reports worker utilization (total busy time over wall time × workers).
func forChunks(n, nw int, fn func(w, lo, hi int)) {
	var busy atomic.Int64
	var start int64
	m := kmetrics.Load()
	if m != nil {
		start = obs.NowNS()
		inner := fn
		fn = func(w, lo, hi int) {
			labels := pprof.Labels("subsystem", "relation", "kernel_worker", strconv.Itoa(w))
			pprof.Do(context.Background(), labels, func(context.Context) {
				t0 := obs.NowNS()
				inner(w, lo, hi)
				d := obs.SinceNS(t0)
				busy.Add(d)
				m.parallelChunks.Inc()
				m.parallelChunkNs.ObserveDuration(d)
			})
		}
	}
	chunk := (n + nw - 1) / nw
	var wg sync.WaitGroup
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			fn(w, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	if m != nil {
		if wall := obs.SinceNS(start); wall > 0 {
			m.parallelUtilPct.Observe(100 * float64(busy.Load()) / (float64(wall) * float64(nw)))
		}
	}
}

// projectParallel is Project over chunked workers: each chunk projects
// and dedups locally, then the chunks merge in order (global dedup by
// Insert), reproducing the serial first-occurrence order.
func projectParallel(r *Relation, attrs attr.Set, m []int) *Relation {
	nw := workers()
	parts := make([]*Relation, nw)
	forChunks(len(r.tuples), nw, func(w, lo, hi int) {
		loc := New(attrs)
		var sl slab
		for i := lo; i < hi; i++ {
			loc.insertProjection(r.tuples[i], m, &sl)
		}
		parts[w] = loc
	})
	out := parts[0]
	for _, p := range parts[1:] {
		if p == nil {
			continue
		}
		for _, t := range p.tuples {
			out.Insert(t)
		}
	}
	return out
}

// selectEqParallel is the chunked SelectEq scan; matches are distinct by
// construction, so the in-order merge needs no dedup work.
func selectEqParallel(r *Relation, m []int, key Tuple) *Relation {
	nw := workers()
	parts := make([][]Tuple, nw)
	forChunks(len(r.tuples), nw, func(w, lo, hi int) {
		var loc []Tuple
		for i := lo; i < hi; i++ {
			if equalKey(r.tuples[i], m, key) {
				loc = append(loc, r.tuples[i])
			}
		}
		parts[w] = loc
	})
	out := New(r.attrs)
	for _, p := range parts {
		for _, t := range p {
			out.Insert(t)
		}
	}
	return out
}

// joinHashParallel is the partitioned parallel hash join. The build side
// is split by the top hash bits into one independent chained index per
// partition, built concurrently (each worker writes only its partition's
// chains, so the shared next array is race-free). Probe chunks then run
// concurrently, each emitting into a private pre-deduplicated relation;
// the chunk-ordered merge reproduces the serial output order.
func joinHashParallel(r, s, build, probe *Relation, shared attr.Set) *Relation {
	nw := workers()
	bm := build.projector(shared)
	pm := probe.projector(shared)

	// Partition count: power of two ≥ nw, selected by the hash top bits.
	parts := 1
	shift := 64
	for parts < nw {
		parts *= 2
		shift--
	}
	indexes := make([]*joinIndex, parts)
	next := make([]int, build.Len())
	hashes := make([]uint64, build.Len())
	forChunks(build.Len(), nw, func(w, lo, hi int) {
		for i := lo; i < hi; i++ {
			hashes[i] = hashCols(build.tuples[i], bm)
		}
	})
	var wg sync.WaitGroup
	for p := 0; p < parts; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			ji := &joinIndex{heads: newHeadTable(build.Len()/parts + 1), next: next}
			for i, h := range hashes {
				if int(h>>uint(shift)) == p {
					next[i] = ji.heads.put(h, i)
				}
			}
			indexes[p] = ji
		}(p)
	}
	wg.Wait()

	planRel, fromR, fromS := joinPlan(r, s)
	union := planRel.attrs
	buildIsR := build == r
	w := len(planRel.cols)
	outs := make([]*Relation, nw)
	visits := make([]int64, nw)
	forChunks(probe.Len(), nw, func(wk, lo, hi int) {
		loc := New(union)
		var sl slab
		var myVisits int64
		for pi := lo; pi < hi; pi++ {
			t := probe.tuples[pi]
			h := hashCols(t, pm)
			ji := indexes[h>>uint(shift)]
			for j := ji.heads.get(h); j >= 0; j = ji.next[j] {
				myVisits++
				bt := build.tuples[j]
				if !equalOn(bt, bm, t, pm) {
					continue
				}
				rt, st := bt, t
				if !buildIsR {
					rt, st = t, bt
				}
				nt := sl.tuple(w)
				for i := range nt {
					if fromR[i] >= 0 {
						nt[i] = rt[fromR[i]]
					} else {
						nt[i] = st[fromS[i]]
					}
				}
				if !loc.Insert(nt) {
					sl.undo(w)
				}
			}
		}
		outs[wk] = loc
		visits[wk] = myVisits
	})
	out := outs[0]
	if out == nil {
		out = New(union)
	}
	for _, p := range outs[1:] {
		if p == nil {
			continue
		}
		for _, t := range p.tuples {
			out.Insert(t)
		}
	}
	if m := kmetrics.Load(); m != nil {
		var total int64
		for _, v := range visits {
			total += v
		}
		recordJoin(m, build, probe, out, total)
	}
	return out
}

// satisfiesFDParallel checks an FD with chunked workers: each chunk
// verifies itself and collects one witness tuple per distinct From key;
// a final serial scan over all witnesses decides cross-chunk agreement.
func satisfiesFDParallel(tuples []Tuple, fm, tm []int) bool {
	nw := workers()
	var bad atomic.Bool
	wits := make([][]Tuple, nw)
	forChunks(len(tuples), nw, func(w, lo, hi int) {
		heads := newHeadTable(hi - lo)
		next := make([]int, hi-lo)
		wit := make([]Tuple, 0, 64)
		for i := lo; i < hi; i++ {
			t := tuples[i]
			h := hashCols(t, fm)
			matched := false
			for j := heads.get(h); j >= 0; j = next[j] {
				if equalOn(wit[j], fm, t, fm) {
					if !equalOn(wit[j], tm, t, tm) {
						bad.Store(true)
						return
					}
					matched = true
					break
				}
			}
			if !matched {
				next[len(wit)] = heads.put(h, len(wit))
				wit = append(wit, t)
			}
		}
		wits[w] = wit
	})
	if bad.Load() {
		return false
	}
	var all []Tuple
	for _, w := range wits {
		all = append(all, w...)
	}
	return satisfiesFDScan(all, fm, tm)
}
