package relation

import (
	"fmt"

	"github.com/constcomp/constcomp/internal/dep"
)

// SatisfiesFD reports whether the relation satisfies the functional
// dependency f: any two tuples agreeing on f.From agree on f.To.
func (r *Relation) SatisfiesFD(f dep.FD) bool {
	if !f.From.Union(f.To).SubsetOf(r.attrs) {
		panic(fmt.Sprintf("relation: FD %v not over relation attributes %v", f, r.attrs))
	}
	fm := r.projector(f.From)
	tm := r.projector(f.To)
	if km := kmetrics.Load(); km != nil {
		km.fdScanCalls.Inc()
		km.fdScanTuples.Add(int64(len(r.tuples)))
	}
	if len(r.tuples) >= parallelThreshold && workers() > 1 {
		return satisfiesFDParallel(r.tuples, fm, tm)
	}
	return satisfiesFDScan(r.tuples, fm, tm)
}

// satisfiesFDScan checks the FD over tuples with a chained hash index of
// the From columns: one witness per distinct From key, every later tuple
// with that key must agree on the To columns.
func satisfiesFDScan(tuples []Tuple, fm, tm []int) bool {
	heads := newHeadTable(len(tuples))
	next := make([]int, len(tuples))
	for i, t := range tuples {
		h := hashCols(t, fm)
		matched := false
		for j := heads.get(h); j >= 0; j = next[j] {
			if equalOn(tuples[j], fm, t, fm) {
				if !equalOn(tuples[j], tm, t, tm) {
					return false
				}
				matched = true
				break
			}
		}
		if !matched {
			next[i] = heads.put(h, i)
		}
	}
	return true
}

// SatisfiesJD reports whether the relation satisfies the join dependency j:
// the join of its projections onto j's components equals the relation.
func (r *Relation) SatisfiesJD(j dep.JD) bool {
	joined := r.Project(j.Components[0])
	for _, c := range j.Components[1:] {
		joined = joined.Join(r.Project(c))
	}
	// R ⊆ join always holds; check the converse by cardinality + equality.
	return joined.Equal(r)
}

// SatisfiesMVD reports whether the relation satisfies the multivalued
// dependency m, via its binary join dependency.
func (r *Relation) SatisfiesMVD(m dep.MVD) bool {
	return r.SatisfiesJD(m.JD())
}

// Satisfies reports whether the relation satisfies a single dependency.
// EFDs are checked as their underlying FDs: a fixed finite instance
// satisfies X →e Y with *some* witness iff it satisfies X → Y (the witness
// can be read off the instance); the instance-independence of the witness
// is a property of schemas, not instances, and is handled in core.
func (r *Relation) Satisfies(d dep.Dependency) bool {
	switch x := d.(type) {
	case dep.FD:
		return r.SatisfiesFD(x)
	case dep.MVD:
		return r.SatisfiesMVD(x)
	case dep.JD:
		return r.SatisfiesJD(x)
	case dep.EFD:
		return r.SatisfiesFD(x.FD())
	}
	panic(fmt.Sprintf("relation: unknown dependency kind %T", d))
}

// SatisfiesAll reports whether the relation satisfies every dependency in Σ.
// On failure it also returns the first violated dependency.
func (r *Relation) SatisfiesAll(sigma *dep.Set) (bool, dep.Dependency) {
	for _, d := range sigma.All() {
		if !r.Satisfies(d) {
			return false, d
		}
	}
	return true, nil
}
