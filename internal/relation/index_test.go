package relation

import (
	"fmt"
	"math/rand"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/value"
)

func TestTupleIndexBasic(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	r := New(u.All())
	r.InsertVals(1, 10, 100)
	r.InsertVals(2, 10, 200)
	r.InsertVals(3, 20, 300)
	ix := IndexRelation(r, []int{1})
	if ix.Len() != 3 {
		t.Fatalf("Len=%d want 3", ix.Len())
	}
	got := ix.Lookup([]value.Value{10})
	if len(got) != 2 {
		t.Fatalf("Lookup(10)=%d tuples, want 2", len(got))
	}
	if len(ix.Lookup([]value.Value{30})) != 0 {
		t.Fatal("Lookup(30) should be empty")
	}
	if !ix.Remove(Tuple{1, 10, 100}) {
		t.Fatal("Remove should find the tuple")
	}
	if ix.Remove(Tuple{1, 10, 100}) {
		t.Fatal("second Remove should miss")
	}
	if len(ix.Lookup([]value.Value{10})) != 1 {
		t.Fatal("one tuple should remain under key 10")
	}
	ix.Add(Tuple{4, 10, 400})
	if len(ix.Lookup([]value.Value{10})) != 2 || ix.Len() != 3 {
		t.Fatal("Add after Remove broke counts")
	}
}

// TestTupleIndexAgainstSelectEq drives random add/remove traffic and
// cross-checks every lookup against the relation's SelectEq.
func TestTupleIndexAgainstSelectEq(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	u := attr.MustUniverse("A", "B", "C")
	key := u.MustSet("B", "C")
	r := New(u.All())
	cols := []int{r.Col(u.MustSet("B").IDs()[0]), r.Col(u.MustSet("C").IDs()[0])}
	ix := NewTupleIndex(cols)
	var live []Tuple
	for step := 0; step < 400; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			nt := Tuple{value.Value(step), value.Value(rng.Intn(5)), value.Value(rng.Intn(5))}
			if r.Insert(nt) {
				ix.Add(nt)
				live = append(live, nt)
			}
		} else {
			k := rng.Intn(len(live))
			doomed := live[k]
			live = append(live[:k], live[k+1:]...)
			if !r.Delete(doomed) || !ix.Remove(doomed) {
				t.Fatalf("step %d: delete/remove failed", step)
			}
		}
		b := value.Value(rng.Intn(5))
		c := value.Value(rng.Intn(5))
		got := ix.Lookup([]value.Value{b, c})
		want := r.SelectEq(key, Tuple{b, c})
		if len(got) != want.Len() {
			t.Fatalf("step %d: Lookup(%v,%v)=%d tuples, SelectEq=%d", step, b, c, len(got), want.Len())
		}
		for _, g := range got {
			if !want.Contains(g) {
				t.Fatalf("step %d: Lookup returned %v not in SelectEq", step, g)
			}
		}
	}
	if ix.Len() != r.Len() {
		t.Fatalf("index len %d != relation len %d", ix.Len(), r.Len())
	}
}

func TestIndexRelationKeyOrder(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	r := New(u.All())
	for i := 0; i < 8; i++ {
		r.InsertVals(value.Value(i), value.Value(i%2))
	}
	// Keyed by (B, A) — column order matters for the key layout.
	ix := IndexRelation(r, []int{1, 0})
	got := ix.Lookup([]value.Value{1, 3})
	if len(got) != 1 || got[0][0] != 3 {
		t.Fatalf("Lookup((B=1,A=3)) = %v", got)
	}
}

func ExampleTupleIndex() {
	u := attr.MustUniverse("E", "D")
	r := New(u.All())
	r.InsertVals(1, 7)
	r.InsertVals(2, 7)
	ix := IndexRelation(r, []int{1})
	fmt.Println(len(ix.Lookup([]value.Value{7})))
	// Output: 2
}
