package relation

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/value"
)

// mk builds a relation over the named attributes of u with the given rows
// of constant names.
func mk(t testing.TB, u *attr.Universe, syms *value.Symbols, attrs string, rows ...[]string) *Relation {
	t.Helper()
	set, err := u.ParseSet(attrs)
	if err != nil {
		t.Fatal(err)
	}
	r := New(set)
	for _, row := range rows {
		tp := make(Tuple, len(row))
		for i, c := range row {
			tp[i] = syms.Const(c)
		}
		r.Insert(tp)
	}
	return r
}

func TestInsertDedup(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A B", []string{"1", "2"})
	if !r.InsertVals(syms.Const("1"), syms.Const("3")) {
		t.Error("new tuple rejected")
	}
	if r.InsertVals(syms.Const("1"), syms.Const("2")) {
		t.Error("duplicate accepted")
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d", r.Len())
	}
}

func TestInsertWrongArityPanics(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	r := New(u.All())
	defer func() {
		if recover() == nil {
			t.Error("no panic on wrong arity")
		}
	}()
	r.Insert(Tuple{0})
}

func TestInsertNamed(t *testing.T) {
	u := attr.MustUniverse("E", "D", "M")
	syms := value.NewSymbols()
	r := New(u.All())
	if err := r.InsertNamed(syms, map[string]string{"E": "ed", "D": "toys", "M": "mo"}); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Fatal("tuple not inserted")
	}
	// Columns are in universe order E,D,M? No: ascending ID order = E,D,M.
	tp := r.Tuple(0)
	if syms.Name(tp[r.Col(mustID(u, "D"))]) != "toys" {
		t.Error("column order mixed up")
	}
	if err := r.InsertNamed(syms, map[string]string{"E": "x"}); err == nil {
		t.Error("partial tuple accepted")
	}
	if err := r.InsertNamed(syms, map[string]string{"E": "x", "D": "y", "Z": "z"}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func mustID(u *attr.Universe, name string) attr.ID {
	id, ok := u.Lookup(name)
	if !ok {
		panic(name)
	}
	return id
}

func TestDelete(t *testing.T) {
	u := attr.MustUniverse("A")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A", []string{"1"}, []string{"2"}, []string{"3"})
	if !r.Delete(Tuple{syms.Const("2")}) {
		t.Error("existing tuple not deleted")
	}
	if r.Delete(Tuple{syms.Const("2")}) {
		t.Error("deleted twice")
	}
	if r.Len() != 2 || !r.Contains(Tuple{syms.Const("1")}) || !r.Contains(Tuple{syms.Const("3")}) {
		t.Error("wrong survivors")
	}
	// Index still consistent after swap-delete.
	if !r.Delete(Tuple{syms.Const("1")}) || !r.Delete(Tuple{syms.Const("3")}) {
		t.Error("index corrupted by swap-delete")
	}
	if r.Len() != 0 {
		t.Error("not empty")
	}
}

func TestProject(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A B C",
		[]string{"1", "x", "p"},
		[]string{"1", "x", "q"},
		[]string{"2", "y", "p"},
	)
	p := r.Project(u.MustSet("A", "B"))
	if p.Len() != 2 {
		t.Errorf("projection Len = %d, want 2 (dedup)", p.Len())
	}
	if !p.Contains(Tuple{syms.Const("1"), syms.Const("x")}) {
		t.Error("missing tuple")
	}
}

func TestProjectNotSubsetPanics(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	r := New(u.MustSet("A"))
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	r.Project(u.MustSet("B"))
}

func TestSelect(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A B", []string{"1", "x"}, []string{"2", "x"}, []string{"3", "y"})
	x := syms.Const("x")
	s := r.Select(func(tp Tuple) bool { return tp[1] == x })
	if s.Len() != 2 {
		t.Errorf("Select Len = %d", s.Len())
	}
	se := r.SelectEq(u.MustSet("B"), Tuple{syms.Const("y")})
	if se.Len() != 1 {
		t.Errorf("SelectEq Len = %d", se.Len())
	}
}

func TestSelectEqBadKeyPanics(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A B", []string{"1", "x"})
	defer func() {
		if recover() == nil {
			t.Error("no panic on key/attrs arity mismatch")
		}
	}()
	r.SelectEq(u.MustSet("B"), Tuple{syms.Const("x"), syms.Const("y")})
}

func TestUnionDiff(t *testing.T) {
	u := attr.MustUniverse("A")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A", []string{"1"}, []string{"2"})
	s := mk(t, u, syms, "A", []string{"2"}, []string{"3"})
	un := r.Union(s)
	if un.Len() != 3 {
		t.Errorf("Union Len = %d", un.Len())
	}
	d := r.Diff(s)
	if d.Len() != 1 || !d.Contains(Tuple{syms.Const("1")}) {
		t.Errorf("Diff wrong: %v", d)
	}
	// Originals untouched.
	if r.Len() != 2 || s.Len() != 2 {
		t.Error("operands mutated")
	}
}

func TestJoinBasic(t *testing.T) {
	u := attr.MustUniverse("E", "D", "M")
	syms := value.NewSymbols()
	ed := mk(t, u, syms, "E D", []string{"ed", "toys"}, []string{"flo", "toys"}, []string{"bob", "tools"})
	dm := mk(t, u, syms, "D M", []string{"toys", "mo"}, []string{"tools", "tim"})
	for _, alg := range []JoinAlgorithm{HashJoin, SortMergeJoin} {
		j := ed.JoinWith(dm, alg)
		if j.Len() != 3 {
			t.Fatalf("alg %d: join Len = %d, want 3", alg, j.Len())
		}
		if !j.Attrs().Equal(u.All()) {
			t.Fatalf("alg %d: join attrs = %v", alg, j.Attrs())
		}
		want := New(u.All())
		for _, row := range [][]string{{"ed", "toys", "mo"}, {"flo", "toys", "mo"}, {"bob", "tools", "tim"}} {
			tp := make(Tuple, 3)
			tp[want.Col(mustID(u, "E"))] = syms.Const(row[0])
			tp[want.Col(mustID(u, "D"))] = syms.Const(row[1])
			tp[want.Col(mustID(u, "M"))] = syms.Const(row[2])
			want.Insert(tp)
		}
		if !j.Equal(want) {
			t.Fatalf("alg %d: join content wrong:\n%s", alg, j.Format(syms))
		}
	}
}

func TestJoinDangling(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	syms := value.NewSymbols()
	ab := mk(t, u, syms, "A B", []string{"1", "x"})
	bc := mk(t, u, syms, "B C", []string{"y", "p"})
	if j := ab.Join(bc); j.Len() != 0 {
		t.Errorf("dangling join Len = %d", j.Len())
	}
}

func TestJoinDisjointIsProduct(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	a := mk(t, u, syms, "A", []string{"1"}, []string{"2"})
	b := mk(t, u, syms, "B", []string{"x"}, []string{"y"}, []string{"z"})
	j := a.Join(b)
	if j.Len() != 6 {
		t.Errorf("product Len = %d", j.Len())
	}
	p := a.Product(b)
	if !p.Equal(j) {
		t.Error("Product != Join on disjoint attrs")
	}
}

func TestProductOverlapPanics(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	r := New(u.MustSet("A", "B"))
	s := New(u.MustSet("B"))
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	r.Product(s)
}

func TestJoinAlgorithmsAgreeRandom(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	syms := value.NewSymbols()
	vals := syms.Ints(4)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		r := New(u.MustSet("A", "B", "C"))
		s := New(u.MustSet("B", "C", "D"))
		for i := 0; i < 12; i++ {
			r.Insert(Tuple{vals[rng.Intn(4)], vals[rng.Intn(4)], vals[rng.Intn(4)]})
			s.Insert(Tuple{vals[rng.Intn(4)], vals[rng.Intn(4)], vals[rng.Intn(4)]})
		}
		h := r.JoinWith(s, HashJoin)
		m := r.JoinWith(s, SortMergeJoin)
		if !h.Equal(m) {
			t.Fatalf("trial %d: hash and sort-merge disagree (%d vs %d tuples)", trial, h.Len(), m.Len())
		}
	}
}

func TestLosslessJoinDecomposition(t *testing.T) {
	// If R satisfies *[X, Y], then π_X(R) ⋈ π_Y(R) = R.
	u := attr.MustUniverse("E", "D", "M")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "E D M",
		[]string{"ed", "toys", "mo"},
		[]string{"flo", "toys", "mo"},
		[]string{"bob", "tools", "tim"},
	)
	x, y := u.MustSet("E", "D"), u.MustSet("D", "M")
	if !r.SatisfiesJD(dep.MustJD(x, y)) {
		t.Fatal("instance should satisfy *[ED, DM] (D -> M holds)")
	}
	if !r.Project(x).Join(r.Project(y)).Equal(r) {
		t.Error("lossless join failed")
	}
}

func TestLossyJoinDetected(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	syms := value.NewSymbols()
	// Classic lossy example: two tuples sharing B but differing elsewhere.
	r := mk(t, u, syms, "A B C",
		[]string{"1", "x", "p"},
		[]string{"2", "x", "q"},
	)
	j := dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C"))
	if r.SatisfiesJD(j) {
		t.Error("lossy decomposition reported lossless")
	}
}

func TestSatisfiesFD(t *testing.T) {
	u := attr.MustUniverse("E", "D", "M")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "E D M",
		[]string{"ed", "toys", "mo"},
		[]string{"flo", "toys", "mo"},
	)
	if !r.SatisfiesFD(dep.NewFD(u.MustSet("E"), u.MustSet("D"))) {
		t.Error("E->D should hold")
	}
	if !r.SatisfiesFD(dep.NewFD(u.MustSet("D"), u.MustSet("M"))) {
		t.Error("D->M should hold")
	}
	r.InsertVals(syms.Const("ed"), syms.Const("tools"), syms.Const("tim"))
	if r.SatisfiesFD(dep.NewFD(u.MustSet("E"), u.MustSet("D"))) {
		t.Error("E->D should now fail")
	}
}

func TestSatisfiesFDOutsidePanics(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	r := New(u.MustSet("A"))
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	r.SatisfiesFD(dep.NewFD(u.MustSet("A"), u.MustSet("B")))
}

func TestSatisfiesMVDAndAll(t *testing.T) {
	u := attr.MustUniverse("C", "T", "B")
	syms := value.NewSymbols()
	// Course ->> Teacher: teachers and books independent per course.
	r := mk(t, u, syms, "C T B",
		[]string{"db", "green", "ull"},
		[]string{"db", "green", "date"},
		[]string{"db", "brown", "ull"},
		[]string{"db", "brown", "date"},
	)
	m := dep.NewMVD(u.MustSet("C"), u.MustSet("T"))
	if !r.SatisfiesMVD(m) {
		t.Error("C->>T should hold")
	}
	r.InsertVals(syms.Const("db"), syms.Const("white"), syms.Const("ull"))
	if r.SatisfiesMVD(m) {
		t.Error("C->>T should fail after partial insert")
	}
	sigma := dep.NewSet(u)
	sigma.Add(m)
	ok, bad := r.SatisfiesAll(sigma)
	if ok || bad == nil {
		t.Error("SatisfiesAll missed the violation")
	}
}

func TestSatisfiesEFDAsFD(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A B", []string{"1", "x"}, []string{"1", "y"})
	e := dep.NewEFD(u.MustSet("A"), u.MustSet("B"))
	if r.Satisfies(e) {
		t.Error("EFD should be violated (underlying FD fails)")
	}
}

func TestEqual(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A B", []string{"1", "x"}, []string{"2", "y"})
	s := mk(t, u, syms, "A B", []string{"2", "y"}, []string{"1", "x"})
	if !r.Equal(s) {
		t.Error("order-insensitive equality failed")
	}
	s.InsertVals(syms.Const("3"), syms.Const("z"))
	if r.Equal(s) {
		t.Error("unequal relations reported equal")
	}
	p := mk(t, u, syms, "A", []string{"1"})
	if r.Equal(p) {
		t.Error("different schemas reported equal")
	}
}

func TestCloneIndependence(t *testing.T) {
	u := attr.MustUniverse("A")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "A", []string{"1"})
	c := r.Clone()
	c.InsertVals(syms.Const("2"))
	if r.Len() != 1 {
		t.Error("Clone shares state")
	}
}

func TestSortedDeterministic(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	// Intern in name order so Value order matches name order (Sorted orders
	// by interned Value, not by display name).
	for _, n := range []string{"1", "2", "x", "y"} {
		syms.Const(n)
	}
	r := mk(t, u, syms, "A B", []string{"2", "x"}, []string{"1", "y"}, []string{"1", "x"})
	rows := r.Sorted(u.MustSet("A"))
	if syms.Name(rows[0][0]) != "1" || syms.Name(rows[2][0]) != "2" {
		t.Errorf("sort order wrong")
	}
	// Ties broken by B.
	if syms.Name(rows[0][1]) != "x" {
		t.Errorf("tie-break wrong")
	}
}

func TestFormat(t *testing.T) {
	u := attr.MustUniverse("E", "D")
	syms := value.NewSymbols()
	r := mk(t, u, syms, "E D", []string{"ed", "toys"})
	out := r.Format(syms)
	if !strings.Contains(out, "E") || !strings.Contains(out, "toys") {
		t.Errorf("Format output missing content:\n%s", out)
	}
}

func TestTupleHelpers(t *testing.T) {
	a := Tuple{1, 2, 3}
	b := a.Clone()
	b[0] = 9
	if a[0] != 1 {
		t.Error("Clone shares backing array")
	}
	if !a.Equal(Tuple{1, 2, 3}) || a.Equal(Tuple{1, 2}) || a.Equal(Tuple{1, 2, 4}) {
		t.Error("Equal wrong")
	}
	if !a.Less(Tuple{1, 2, 4}) || a.Less(Tuple{1, 2, 3}) || !(Tuple{1, 2}).Less(a) {
		t.Error("Less wrong")
	}
}

func TestQuickProjectionIdempotent(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	syms := value.NewSymbols()
	vals := syms.Ints(3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(u.All())
		for i := 0; i < 10; i++ {
			r.Insert(Tuple{vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)]})
		}
		x := u.MustSet("A", "B")
		p := r.Project(x)
		return p.Project(x).Equal(p) && p.Len() <= r.Len()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickJoinContainsOriginal(t *testing.T) {
	// R ⊆ π_X(R) ⋈ π_Y(R) whenever X ∪ Y = U.
	u := attr.MustUniverse("A", "B", "C")
	syms := value.NewSymbols()
	vals := syms.Ints(3)
	x, y := u.MustSet("A", "B"), u.MustSet("B", "C")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := New(u.All())
		for i := 0; i < 8; i++ {
			r.Insert(Tuple{vals[rng.Intn(3)], vals[rng.Intn(3)], vals[rng.Intn(3)]})
		}
		j := r.Project(x).Join(r.Project(y))
		for _, tp := range r.Tuples() {
			if !j.Contains(tp) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
