package relation

import (
	"github.com/constcomp/constcomp/internal/value"
)

// TupleIndex is a secondary hash index over a projection of a
// relation's columns, built for delta maintenance: the incremental
// decide/apply path keeps one per lookup pattern (shared columns, an
// FD's Z∩X columns, the X columns of the base) and updates it per
// (Δ⁺, Δ⁻) tuple instead of re-projecting the instance.
//
// The index stores tuple references, not row positions: Relation.Delete
// swap-removes, so positions are unstable, while tuples are immutable
// once inserted and stay valid across Clone. The indexed relation's
// inserts and deletes must be mirrored with Add and Remove.
type TupleIndex struct {
	cols    []int
	buckets map[uint64][]Tuple
	n       int
}

// NewTupleIndex builds an empty index keyed by the given column
// positions of the tuples to come.
func NewTupleIndex(cols []int) *TupleIndex {
	return &TupleIndex{cols: append([]int(nil), cols...), buckets: make(map[uint64][]Tuple)}
}

// IndexRelation builds a TupleIndex over all current tuples of r, keyed
// by the given column positions of r's layout.
func IndexRelation(r *Relation, cols []int) *TupleIndex {
	ix := NewTupleIndex(cols)
	for _, t := range r.Tuples() {
		ix.Add(t)
	}
	return ix
}

// keyHash hashes the key columns of t (FNV-1a over value words, like the
// relation's primary index).
func (ix *TupleIndex) keyHash(t Tuple) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range ix.cols {
		h = (h ^ uint64(t[c])) * fnvPrime64
	}
	return h
}

// valsHash hashes a key given directly as values in column-plan order.
func (ix *TupleIndex) valsHash(vals []value.Value) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range vals {
		h = (h ^ uint64(v)) * fnvPrime64
	}
	return h
}

// keyEqual reports whether t's key columns equal vals.
func (ix *TupleIndex) keyEqual(t Tuple, vals []value.Value) bool {
	for i, c := range ix.cols {
		if t[c] != vals[i] {
			return false
		}
	}
	return true
}

// Add indexes one tuple (shared, not copied; tuples are immutable once
// inserted into a relation).
func (ix *TupleIndex) Add(t Tuple) {
	h := ix.keyHash(t)
	ix.buckets[h] = append(ix.buckets[h], t)
	ix.n++
}

// Remove drops the first indexed tuple equal to t; it reports whether
// one was found.
func (ix *TupleIndex) Remove(t Tuple) bool {
	h := ix.keyHash(t)
	bucket := ix.buckets[h]
	for i, u := range bucket {
		if u.Equal(t) {
			bucket[i] = bucket[len(bucket)-1]
			bucket = bucket[:len(bucket)-1]
			if len(bucket) == 0 {
				delete(ix.buckets, h)
			} else {
				ix.buckets[h] = bucket
			}
			ix.n--
			return true
		}
	}
	return false
}

// Lookup returns the indexed tuples whose key columns equal vals (given
// in the order the index was built with). The returned slice is shared;
// callers must not modify it and must not hold it across Add/Remove.
func (ix *TupleIndex) Lookup(vals []value.Value) []Tuple {
	h := ix.valsHash(vals)
	bucket := ix.buckets[h]
	// Fast path: the whole bucket matches (no hash collision).
	all := true
	for _, t := range bucket {
		if !ix.keyEqual(t, vals) {
			all = false
			break
		}
	}
	if all {
		return bucket
	}
	out := make([]Tuple, 0, len(bucket))
	for _, t := range bucket {
		if ix.keyEqual(t, vals) {
			out = append(out, t)
		}
	}
	return out
}

// Len reports the number of indexed tuples.
func (ix *TupleIndex) Len() int { return ix.n }
