package relation

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/value"
)

// nestedLoopJoin is the obvious O(|r|·|s|) reference join the fast
// kernels are checked against.
func nestedLoopJoin(r, s *Relation) *Relation {
	shared := r.Attrs().Intersect(s.Attrs())
	rm := r.projector(shared)
	sm := s.projector(shared)
	out, fromR, fromS := joinPlan(r, s)
	for _, rt := range r.tuples {
		for _, st := range s.tuples {
			if !equalOn(rt, rm, st, sm) {
				continue
			}
			nt := make(Tuple, len(out.cols))
			for i := range nt {
				if fromR[i] >= 0 {
					nt[i] = rt[fromR[i]]
				} else {
					nt[i] = st[fromS[i]]
				}
			}
			out.Insert(nt)
		}
	}
	return out
}

// randomRelation builds a relation over the given attrs with n random
// tuples mixing constants and labeled nulls.
func randomRelation(rng *rand.Rand, set attr.Set, syms *value.Symbols, n, domain int) *Relation {
	r := New(set)
	w := set.Len()
	for i := 0; i < n; i++ {
		t := make(Tuple, w)
		for c := range t {
			k := rng.Intn(domain)
			if rng.Intn(4) == 0 {
				t[c] = value.Null(int64(k)) // labeled null
			} else {
				t[c] = syms.Const(fmt.Sprintf("c%d", k))
			}
		}
		r.Insert(t)
	}
	return r
}

// TestJoinEquivalence checks HashJoin ≡ SortMergeJoin ≡ nested-loop
// reference on randomized relations with overlapping schemas, both with
// the serial kernels and with parallelism forced on. The parallel runs
// must match the serial output tuple-for-tuple, in order.
func TestJoinEquivalence(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	schemas := [][2]string{
		{"A B C", "B C D"}, // two shared columns
		{"A B", "B C"},     // one shared column
		{"A B", "C D"},     // disjoint: Cartesian product
		{"A B C", "A B C"}, // identical schemas: intersection
		{"A B C D", "D E"},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := value.NewSymbols()
		sc := schemas[rng.Intn(len(schemas))]
		rs, err := u.ParseSet(sc[0])
		if err != nil {
			t.Fatal(err)
		}
		ss, err := u.ParseSet(sc[1])
		if err != nil {
			t.Fatal(err)
		}
		domain := 2 + rng.Intn(8)
		r := randomRelation(rng, rs, syms, rng.Intn(60), domain)
		s := randomRelation(rng, ss, syms, rng.Intn(60), domain)

		want := nestedLoopJoin(r, s)
		hj := r.JoinWith(s, HashJoin)
		sm := r.JoinWith(s, SortMergeJoin)
		if !hj.Equal(want) {
			t.Logf("seed %d: hash join ≠ nested loop (%d vs %d tuples)", seed, hj.Len(), want.Len())
			return false
		}
		if !sm.Equal(want) {
			t.Logf("seed %d: sort-merge join ≠ nested loop", seed)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// sameTuplesInOrder reports whether two relations hold identical tuples
// in identical order (stronger than Equal, which is order-free).
func sameTuplesInOrder(a, b *Relation) bool {
	if a.Len() != b.Len() {
		return false
	}
	at, bt := a.Tuples(), b.Tuples()
	for i := range at {
		if !at[i].Equal(bt[i]) {
			return false
		}
	}
	return true
}

// TestParallelKernelsDeterministic drives every parallel kernel above
// the serial-fallback threshold and checks the output is tuple-for-tuple
// identical to the serial result, for several worker counts.
func TestParallelKernelsDeterministic(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	syms := value.NewSymbols()
	rng := rand.New(rand.NewSource(7))
	rs, _ := u.ParseSet("A B C")
	ss, _ := u.ParseSet("B C D")
	n := 2*parallelThreshold + 137
	r := randomRelation(rng, rs, syms, n, 40)
	s := randomRelation(rng, ss, syms, n, 40)

	defer Parallelism(1)
	Parallelism(1)
	serialJoin := r.Join(s)
	bc, _ := u.ParseSet("B C")
	serialProj := r.Project(bc)
	key := Tuple{r.Tuple(0)[1], r.Tuple(0)[2]}
	serialSel := r.SelectEq(bc, key)

	for _, nw := range []int{2, 3, 8} {
		Parallelism(nw)
		if got := r.Join(s); !sameTuplesInOrder(got, serialJoin) {
			t.Errorf("workers=%d: parallel join differs from serial", nw)
		}
		if got := r.Project(bc); !sameTuplesInOrder(got, serialProj) {
			t.Errorf("workers=%d: parallel Project differs from serial", nw)
		}
		if got := r.SelectEq(bc, key); !sameTuplesInOrder(got, serialSel) {
			t.Errorf("workers=%d: parallel SelectEq differs from serial", nw)
		}
	}
}

// TestIndexOracle fuzzes Insert/Delete/Contains against a map-based
// reference set.
func TestIndexOracle(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := value.NewSymbols()
		r := New(u.All())
		ref := map[string]bool{}
		keyOf := func(t Tuple) string { return fmt.Sprint([]value.Value(t)) }
		mkTuple := func() Tuple {
			t := make(Tuple, 3)
			for c := range t {
				k := rng.Intn(12)
				if rng.Intn(3) == 0 {
					t[c] = value.Null(int64(k))
				} else {
					t[c] = syms.Const(fmt.Sprintf("c%d", k))
				}
			}
			return t
		}
		for op := 0; op < 300; op++ {
			tp := mkTuple()
			k := keyOf(tp)
			switch rng.Intn(3) {
			case 0:
				if r.Insert(tp) == ref[k] {
					t.Logf("seed %d op %d: Insert(%v) disagreed with oracle", seed, op, tp)
					return false
				}
				ref[k] = true
			case 1:
				if r.Delete(tp) != ref[k] {
					t.Logf("seed %d op %d: Delete(%v) disagreed with oracle", seed, op, tp)
					return false
				}
				delete(ref, k)
			default:
				if r.Contains(tp) != ref[k] {
					t.Logf("seed %d op %d: Contains(%v) disagreed with oracle", seed, op, tp)
					return false
				}
			}
			if r.Len() != len(ref) {
				t.Logf("seed %d op %d: Len %d, oracle %d", seed, op, r.Len(), len(ref))
				return false
			}
		}
		// Everything the oracle holds must be found, and vice versa.
		for _, tp := range r.Tuples() {
			if !ref[keyOf(tp)] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
