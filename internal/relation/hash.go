package relation

import "github.com/constcomp/constcomp/internal/value"

// Tuple hashing and the open-addressing tuple index.
//
// Tuples are hashed as 64-bit FNV-1a over their value.Value machine
// words, followed by a splitmix64-style finalizer so the low bits (used
// as the table mask) are well mixed even for the small dense integers
// Symbols hands out. Hash collisions are possible and are always
// resolved by verifying against the actual tuple contents, so no
// correctness rests on hash quality — only speed does.
//
// The index stores (hash, position) pairs in a linear-probing table and
// keeps no keys of its own: equality is checked against the backing
// []Tuple slice. Insert/Contains/Delete therefore allocate nothing per
// tuple (the old implementation rendered every tuple into a fresh
// string key on every operation).

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// hashWord folds one value into a running FNV-1a word hash.
func hashWord(h uint64, v value.Value) uint64 {
	return (h ^ uint64(v)) * fnvPrime64
}

// hashFinish applies a splitmix64 finalizer to the accumulated hash.
func hashFinish(h uint64) uint64 {
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// hashTuple hashes a whole tuple.
func hashTuple(t Tuple) uint64 {
	h := uint64(fnvOffset64)
	for _, v := range t {
		h = hashWord(h, v)
	}
	return hashFinish(h)
}

// hashCols hashes the projection of t onto the given columns.
func hashCols(t Tuple, cols []int) uint64 {
	h := uint64(fnvOffset64)
	for _, c := range cols {
		h = hashWord(h, t[c])
	}
	return hashFinish(h)
}

// equalOn reports whether a's cols am equal b's cols bm pointwise.
func equalOn(a Tuple, am []int, b Tuple, bm []int) bool {
	for i := range am {
		if a[am[i]] != b[bm[i]] {
			return false
		}
	}
	return true
}

// tslot is one index slot: the tuple's hash and its position in the
// backing slice, or idx == -1 for an empty slot.
type tslot struct {
	hash uint64
	idx  int
}

// table is the open-addressing index. The zero value is an empty index;
// slots are allocated on first add.
type table struct {
	slots []tslot
	n     int
}

// minTableSize is the initial slot count (power of two).
const minTableSize = 8

// reset empties the table, reserving space for capHint entries.
func (tb *table) reset(capHint int) {
	size := minTableSize
	for size*3 < capHint*4 { // grow until load ≤ 3/4 at capHint entries
		size *= 2
	}
	if len(tb.slots) != size {
		tb.slots = make([]tslot, size)
	}
	for i := range tb.slots {
		tb.slots[i] = tslot{idx: -1}
	}
	tb.n = 0
}

// lookup returns the backing position of t, or -1 if absent.
func (tb *table) lookup(h uint64, t Tuple, tuples []Tuple) int {
	if len(tb.slots) == 0 {
		return -1
	}
	m := len(tb.slots) - 1
	for i := int(h & uint64(m)); ; i = (i + 1) & m {
		s := tb.slots[i]
		if s.idx < 0 {
			return -1
		}
		if s.hash == h && tuples[s.idx].Equal(t) {
			return s.idx
		}
	}
}

// add records that the tuple with hash h lives at backing position idx.
// The caller must have verified absence (lookup < 0).
func (tb *table) add(h uint64, idx int) {
	if tb.n*4 >= len(tb.slots)*3 {
		tb.grow()
	}
	m := len(tb.slots) - 1
	i := int(h & uint64(m))
	for tb.slots[i].idx >= 0 {
		i = (i + 1) & m
	}
	tb.slots[i] = tslot{hash: h, idx: idx}
	tb.n++
}

// grow doubles the slot array and reinserts every live entry (the stored
// hashes make this a pure memory shuffle; tuples are never re-hashed).
func (tb *table) grow() {
	size := minTableSize
	if len(tb.slots) > 0 {
		size = len(tb.slots) * 2
	}
	old := tb.slots
	tb.slots = make([]tslot, size)
	for i := range tb.slots {
		tb.slots[i].idx = -1
	}
	m := size - 1
	for _, s := range old {
		if s.idx < 0 {
			continue
		}
		i := int(s.hash & uint64(m))
		for tb.slots[i].idx >= 0 {
			i = (i + 1) & m
		}
		tb.slots[i] = s
	}
}

// fix rewrites the backing position of the entry (h, old) to new; used
// when a delete swaps the last tuple into the vacated position.
func (tb *table) fix(h uint64, old, new int) {
	m := len(tb.slots) - 1
	for i := int(h & uint64(m)); ; i = (i + 1) & m {
		if tb.slots[i].idx == old && tb.slots[i].hash == h {
			tb.slots[i].idx = new
			return
		}
		if tb.slots[i].idx < 0 {
			panic("relation: index entry to fix not found")
		}
	}
}

// remove deletes the entry (h, idx), backward-shifting the probe chain
// (standard linear-probing deletion) so later lookups stay correct.
func (tb *table) remove(h uint64, idx int) {
	m := len(tb.slots) - 1
	i := int(h & uint64(m))
	for {
		if tb.slots[i].idx < 0 {
			panic("relation: index entry to remove not found")
		}
		if tb.slots[i].idx == idx && tb.slots[i].hash == h {
			break
		}
		i = (i + 1) & m
	}
	for {
		tb.slots[i].idx = -1
		k := i
		for {
			k = (k + 1) & m
			if tb.slots[k].idx < 0 {
				tb.n--
				return
			}
			home := int(tb.slots[k].hash & uint64(m))
			// k's entry may move back to i only if its home position
			// does not lie cyclically in (i, k].
			if (k-home)&m >= (k-i)&m {
				break
			}
		}
		tb.slots[i] = tb.slots[k]
		i = k
	}
}

// headSlot maps a join/bucket hash to the head of a chain; head == -1
// marks an empty slot.
type headSlot struct {
	key  uint64
	head int
}

// headTable is a fixed-size open-addressing map from hash to chain head,
// used by the hash join and the FD-satisfaction scan. It is sized once
// for a known number of entries and never grows.
type headTable struct {
	slots []headSlot
}

// newHeadTable returns a table with room for n entries at ≤3/4 load.
func newHeadTable(n int) *headTable {
	size := minTableSize
	for size*3 < n*4 {
		size *= 2
	}
	ht := &headTable{slots: make([]headSlot, size)}
	for i := range ht.slots {
		ht.slots[i].head = -1
	}
	return ht
}

// get returns the chain head for key h, or -1.
func (ht *headTable) get(h uint64) int {
	m := len(ht.slots) - 1
	for i := int(h & uint64(m)); ; i = (i + 1) & m {
		s := ht.slots[i]
		if s.head < 0 {
			return -1
		}
		if s.key == h {
			return s.head
		}
	}
}

// put sets the chain head for key h, returning the previous head or -1.
func (ht *headTable) put(h uint64, head int) int {
	m := len(ht.slots) - 1
	for i := int(h & uint64(m)); ; i = (i + 1) & m {
		s := &ht.slots[i]
		if s.head < 0 {
			s.key = h
			s.head = head
			return -1
		}
		if s.key == h {
			prev := s.head
			s.head = head
			return prev
		}
	}
}
