package logic

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLitBasics(t *testing.T) {
	l := Lit(3)
	if l.Var() != 3 || !l.Pos() {
		t.Error("positive literal wrong")
	}
	n := l.Neg()
	if n.Var() != 3 || n.Pos() {
		t.Error("negation wrong")
	}
	if l.String() != "x3" || n.String() != "¬x3" {
		t.Errorf("String: %q %q", l, n)
	}
}

func TestNewCNFValidation(t *testing.T) {
	if _, err := NewCNF(-1); err == nil {
		t.Error("negative vars accepted")
	}
	if _, err := NewCNF(2, Clause{}); err == nil {
		t.Error("empty clause accepted")
	}
	if _, err := NewCNF(2, Clause{Lit(3)}); err == nil {
		t.Error("out-of-range literal accepted")
	}
	if _, err := NewCNF(2, Clause{Lit(0)}); err == nil {
		t.Error("zero literal accepted")
	}
	if _, err := NewCNF(2, Clause{Lit(1), Lit(-2)}); err != nil {
		t.Errorf("valid CNF rejected: %v", err)
	}
}

func TestEval(t *testing.T) {
	f := MustCNF(2, Clause{1, 2}, Clause{-1, 2})
	if !f.Eval(Assignment{false, true, true}) {
		t.Error("satisfying assignment rejected")
	}
	if f.Eval(Assignment{false, true, false}) {
		t.Error("falsifying assignment accepted")
	}
}

func TestSolveSatisfiable(t *testing.T) {
	f := MustCNF(3,
		Clause{1, 2, 3},
		Clause{-1, 2},
		Clause{-2, 3},
		Clause{-3, -1},
	)
	a, ok := f.Solve()
	if !ok {
		t.Fatal("satisfiable formula reported unsat")
	}
	if !f.Eval(a) {
		t.Fatalf("returned assignment %v does not satisfy", a)
	}
}

func TestSolveUnsatisfiable(t *testing.T) {
	// (x)(¬x) is unsat.
	f := MustCNF(1, Clause{1}, Clause{-1})
	if f.Satisfiable() {
		t.Error("unsat formula reported sat")
	}
	// Full contradiction on 2 vars.
	g := MustCNF(2,
		Clause{1, 2}, Clause{1, -2}, Clause{-1, 2}, Clause{-1, -2},
	)
	if g.Satisfiable() {
		t.Error("unsat 2-var formula reported sat")
	}
}

func TestSolveEmptyFormula(t *testing.T) {
	f := MustCNF(3)
	if !f.Satisfiable() {
		t.Error("empty formula unsat")
	}
}

func TestIs3CNF(t *testing.T) {
	if !MustCNF(3, Clause{1, 2, 3}).Is3CNF() {
		t.Error("3-clause not 3CNF")
	}
	if MustCNF(4, Clause{1, 2, 3, 4}).Is3CNF() {
		t.Error("4-clause is 3CNF")
	}
}

func TestQuickDPLLMatchesBrute(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(6) // 3..8 vars
		m := 1 + rng.Intn(20)
		cnf := Random3CNF(rng, n, m)
		return cnf.Satisfiable() == cnf.SatisfiableBrute()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickSolveWitnessValid(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cnf := Random3CNF(rng, 4+rng.Intn(5), 1+rng.Intn(15))
		a, ok := cnf.Solve()
		if !ok {
			return true
		}
		return cnf.Eval(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSolveWithFixed(t *testing.T) {
	// x1 ∨ x2, with x1 fixed false, forces x2.
	f := MustCNF(2, Clause{1, 2})
	a, ok := f.SolveWithFixed(map[int]bool{1: false})
	if !ok {
		t.Fatal("unsat with fixed x1=false")
	}
	if a[1] || !a[2] {
		t.Errorf("assignment %v violates fixing", a)
	}
	// Fixing both against the clause is unsat.
	if _, ok := f.SolveWithFixed(map[int]bool{1: false, 2: false}); ok {
		t.Error("contradictory fixing reported sat")
	}
}

func TestForallExists(t *testing.T) {
	// ∀x1 ∃x2: (x1 ∨ x2) ∧ (¬x1 ∨ ¬x2): choose x2 = ¬x1. True.
	f := MustCNF(2, Clause{1, 2}, Clause{-1, -2})
	if !f.ForallExists(1) {
		t.Error("valid ∀∃ sentence rejected")
	}
	// ∀x1 ∃x2: x1 — false (x1=false has no witness).
	g := MustCNF(2, Clause{1})
	if g.ForallExists(1) {
		t.Error("invalid ∀∃ sentence accepted")
	}
	// k = 0 degenerates to satisfiability.
	if f.ForallExists(0) != f.Satisfiable() {
		t.Error("k=0 mismatch")
	}
	// k = Vars degenerates to validity.
	tauto := MustCNF(1, Clause{1, -1})
	if !tauto.ForallExists(1) {
		t.Error("tautology rejected at k=Vars")
	}
}

func TestForallExistsPanics(t *testing.T) {
	f := MustCNF(1, Clause{1})
	defer func() {
		if recover() == nil {
			t.Error("no panic on out-of-range k")
		}
	}()
	f.ForallExists(2)
}

func TestQuickForallExistsMatchesBrute(t *testing.T) {
	bruteFA := func(f *CNF, k int) bool {
		a := make(Assignment, f.Vars+1)
		var outer func(v int) bool
		var inner func(v int) bool
		inner = func(v int) bool {
			if v > f.Vars {
				return f.Eval(a)
			}
			a[v] = false
			if inner(v + 1) {
				return true
			}
			a[v] = true
			return inner(v + 1)
		}
		outer = func(v int) bool {
			if v > k {
				return inner(k + 1)
			}
			a[v] = false
			if !outer(v + 1) {
				return false
			}
			a[v] = true
			return outer(v + 1)
		}
		return outer(1)
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(4)
		cnf := Random3CNF(rng, n, 1+rng.Intn(12))
		k := rng.Intn(n + 1)
		return cnf.ForallExists(k) == bruteFA(cnf, k)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestRandom3CNFShape(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	f := Random3CNF(rng, 10, 30)
	if f.Vars != 10 || len(f.Clauses) != 30 {
		t.Fatal("shape wrong")
	}
	for _, c := range f.Clauses {
		if len(c) != 3 {
			t.Fatal("non-3 clause")
		}
		vars := map[int]bool{}
		for _, l := range c {
			if l.Var() < 1 || l.Var() > 10 {
				t.Fatal("var out of range")
			}
			vars[l.Var()] = true
		}
		if len(vars) != 3 {
			t.Fatal("repeated variable in clause")
		}
	}
}

func TestCNFString(t *testing.T) {
	f := MustCNF(2, Clause{1, -2})
	if got := f.String(); got != "(x1 ∨ ¬x2)" {
		t.Errorf("String = %q", got)
	}
}
