// Package logic provides propositional logic substrates for verifying the
// paper's hardness reductions: 3-CNF formulas, a DPLL SAT solver with unit
// propagation and pure-literal elimination, a brute-force baseline, random
// formula generation, and a ∀∃ QBF evaluator (the Π₂ᵖ canonical problem of
// Theorem 4).
package logic

import (
	"fmt"
	"math/rand"
	"strings"

	"github.com/constcomp/constcomp/internal/budget"
)

// Lit is a literal: +v is variable v, −v is its negation. Variables are
// numbered from 1.
type Lit int

// Var returns the literal's variable (always positive).
func (l Lit) Var() int {
	if l < 0 {
		return int(-l)
	}
	return int(l)
}

// Pos reports whether the literal is positive.
func (l Lit) Pos() bool { return l > 0 }

// Neg returns the negated literal.
func (l Lit) Neg() Lit { return -l }

func (l Lit) String() string {
	if l < 0 {
		return fmt.Sprintf("¬x%d", -l)
	}
	return fmt.Sprintf("x%d", l)
}

// Clause is a disjunction of literals.
type Clause []Lit

func (c Clause) String() string {
	parts := make([]string, len(c))
	for i, l := range c {
		parts[i] = l.String()
	}
	return "(" + strings.Join(parts, " ∨ ") + ")"
}

// CNF is a conjunction of clauses over variables 1..Vars.
type CNF struct {
	Vars    int
	Clauses []Clause
}

// NewCNF builds a CNF, validating that literals mention variables in
// range and clauses are nonempty.
func NewCNF(vars int, clauses ...Clause) (*CNF, error) {
	if vars < 0 {
		return nil, fmt.Errorf("logic: negative variable count")
	}
	for i, c := range clauses {
		if len(c) == 0 {
			return nil, fmt.Errorf("logic: clause %d empty", i)
		}
		for _, l := range c {
			if l == 0 || l.Var() > vars {
				return nil, fmt.Errorf("logic: clause %d: literal %d out of range", i, l)
			}
		}
	}
	return &CNF{Vars: vars, Clauses: clauses}, nil
}

// MustCNF is NewCNF, panicking on error.
func MustCNF(vars int, clauses ...Clause) *CNF {
	f, err := NewCNF(vars, clauses...)
	if err != nil {
		panic(err)
	}
	return f
}

func (f *CNF) String() string {
	parts := make([]string, len(f.Clauses))
	for i, c := range f.Clauses {
		parts[i] = c.String()
	}
	return strings.Join(parts, " ∧ ")
}

// Assignment maps variable → truth value; index 0 unused.
type Assignment []bool

// Eval reports whether the assignment satisfies the formula. The
// assignment must cover all variables.
func (f *CNF) Eval(a Assignment) bool {
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if a[l.Var()] == l.Pos() {
				sat = true
				break
			}
		}
		if !sat {
			return false
		}
	}
	return true
}

// Is3CNF reports whether every clause has at most three literals.
func (f *CNF) Is3CNF() bool {
	for _, c := range f.Clauses {
		if len(c) > 3 {
			return false
		}
	}
	return true
}

// value is a three-valued assignment entry.
type tval int8

const (
	unset tval = iota
	tTrue
	tFalse
)

// Solve decides satisfiability with DPLL (unit propagation + pure-literal
// elimination + first-unset branching). On satisfiable formulas it returns
// a witness assignment.
func (f *CNF) Solve() (Assignment, bool) {
	a, ok, _ := f.SolveBudget(nil)
	return a, ok
}

// SolveBudget is Solve under a budget: each DPLL search node charges one
// step, so cancellation is honored within one branching step. A nil
// budget is unlimited; on exhaustion the error wraps budget.ErrExceeded
// and the boolean is meaningless.
func (f *CNF) SolveBudget(b *budget.B) (Assignment, bool, error) {
	vals := make([]tval, f.Vars+1)
	var st dpllStats
	ok, err := dpll(f, vals, b, &st)
	if m := lmetrics.Load(); m != nil {
		m.solveCalls.Inc()
		m.dpllNodes.Add(st.nodes)
		m.dpllBacktracks.Add(st.backtracks)
		m.nodesPerSolve.Observe(float64(st.nodes))
	}
	if err != nil {
		return nil, false, err
	}
	if !ok {
		return nil, false, nil
	}
	out := make(Assignment, f.Vars+1)
	for v := 1; v <= f.Vars; v++ {
		out[v] = vals[v] == tTrue
	}
	return out, true, nil
}

// Satisfiable reports whether the formula has a model.
func (f *CNF) Satisfiable() bool {
	_, ok := f.Solve()
	return ok
}

func dpll(f *CNF, vals []tval, b *budget.B, st *dpllStats) (bool, error) {
	st.nodes++
	if err := b.Step(1); err != nil {
		return false, err
	}
	// Snapshot for backtracking.
	saved := make([]tval, len(vals))
	copy(saved, vals)
	restore := func() { copy(vals, saved) }

	// Unit propagation + pure literal to fixpoint. Each pass assigns at
	// least one variable, but the budget check keeps a pathological
	// formula from outrunning the per-node Step above.
	for {
		if err := b.Check(); err != nil {
			restore()
			return false, err
		}
		changed := false
		// Track literal polarity occurrences among unresolved clauses.
		occ := make([]int8, f.Vars+1) // bit0: positive occurs, bit1: negative occurs
		conflict := false
		for _, c := range f.Clauses {
			satisfied := false
			var unassigned []Lit
			for _, l := range c {
				switch vals[l.Var()] {
				case unset:
					unassigned = append(unassigned, l)
				case tTrue:
					if l.Pos() {
						satisfied = true
					}
				case tFalse:
					if !l.Pos() {
						satisfied = true
					}
				}
				if satisfied {
					break
				}
			}
			if satisfied {
				continue
			}
			switch len(unassigned) {
			case 0:
				conflict = true
			case 1:
				l := unassigned[0]
				if l.Pos() {
					vals[l.Var()] = tTrue
				} else {
					vals[l.Var()] = tFalse
				}
				changed = true
			default:
				for _, l := range unassigned {
					if l.Pos() {
						occ[l.Var()] |= 1
					} else {
						occ[l.Var()] |= 2
					}
				}
			}
			if conflict {
				restore()
				return false, nil
			}
		}
		if changed {
			continue
		}
		// Pure literals.
		pure := false
		for v := 1; v <= f.Vars; v++ {
			if vals[v] != unset {
				continue
			}
			switch occ[v] {
			case 1:
				vals[v] = tTrue
				pure = true
			case 2:
				vals[v] = tFalse
				pure = true
			}
		}
		if !pure {
			break
		}
	}
	// All clauses satisfied?
	allSat := true
	for _, c := range f.Clauses {
		sat := false
		for _, l := range c {
			if (vals[l.Var()] == tTrue && l.Pos()) || (vals[l.Var()] == tFalse && !l.Pos()) {
				sat = true
				break
			}
		}
		if !sat {
			allSat = false
			break
		}
	}
	if allSat {
		return true, nil
	}
	// Branch on the first unset variable appearing in an unsatisfied clause.
	branch := 0
	for _, c := range f.Clauses {
		sat := false
		cand := 0
		for _, l := range c {
			switch vals[l.Var()] {
			case tTrue:
				sat = l.Pos() || sat
			case tFalse:
				sat = !l.Pos() || sat
			case unset:
				if cand == 0 {
					cand = l.Var()
				}
			}
		}
		if !sat && cand != 0 {
			branch = cand
			break
		}
	}
	if branch == 0 {
		// No unset variable in any unsatisfied clause, yet not all
		// satisfied: contradiction.
		restore()
		return false, nil
	}
	vals[branch] = tTrue
	if ok, err := dpll(f, vals, b, st); err != nil {
		return false, err
	} else if ok {
		return true, nil
	}
	st.backtracks++
	vals[branch] = tFalse
	if ok, err := dpll(f, vals, b, st); err != nil {
		return false, err
	} else if ok {
		return true, nil
	}
	st.backtracks++
	restore()
	return false, nil
}

// SatisfiableBrute decides satisfiability by enumerating all 2^Vars
// assignments. Oracle for testing the DPLL solver; keep Vars small.
func (f *CNF) SatisfiableBrute() bool {
	if f.Vars > 24 {
		panic("logic: SatisfiableBrute on too many variables")
	}
	a := make(Assignment, f.Vars+1)
	for mask := 0; mask < 1<<uint(f.Vars); mask++ {
		for v := 1; v <= f.Vars; v++ {
			a[v] = mask&(1<<uint(v-1)) != 0
		}
		if f.Eval(a) {
			return true
		}
	}
	return false
}

// SolveWithFixed decides satisfiability of f with the variables in fixed
// forced to the given values. Used for QBF evaluation and for checking
// "satisfying assignment extending r" in the Theorem 4 reduction.
func (f *CNF) SolveWithFixed(fixed map[int]bool) (Assignment, bool) {
	a, ok, _ := f.SolveWithFixedBudget(nil, fixed)
	return a, ok
}

// SolveWithFixedBudget is SolveWithFixed under a budget (see SolveBudget).
func (f *CNF) SolveWithFixedBudget(b *budget.B, fixed map[int]bool) (Assignment, bool, error) {
	clauses := make([]Clause, 0, len(f.Clauses)+len(fixed))
	clauses = append(clauses, f.Clauses...)
	for v, val := range fixed {
		l := Lit(v)
		if !val {
			l = l.Neg()
		}
		clauses = append(clauses, Clause{l})
	}
	g := &CNF{Vars: f.Vars, Clauses: clauses}
	return g.SolveBudget(b)
}

// ForallExists evaluates the Π₂ᵖ-canonical sentence
// ∀ x_1..x_k ∃ x_{k+1}..x_n : f — the statement of Theorem 4 — by
// enumerating universal assignments and calling the solver for each.
// Exponential in k by design.
func (f *CNF) ForallExists(k int) bool {
	ok, _ := f.ForallExistsBudget(nil, k)
	return ok
}

// ForallExistsBudget is ForallExists under a budget: each universal
// assignment charges a step before its existential solve, and the inner
// DPLL search shares the same budget, so cancellation is honored within
// one solver step. On exhaustion the error wraps budget.ErrExceeded.
func (f *CNF) ForallExistsBudget(b *budget.B, k int) (bool, error) {
	if k < 0 || k > f.Vars {
		panic("logic: universal prefix out of range")
	}
	if k > 24 {
		panic("logic: universal prefix too large to enumerate")
	}
	m := lmetrics.Load()
	if m != nil {
		m.qbfCalls.Inc()
	}
	fixed := make(map[int]bool, k)
	for mask := 0; mask < 1<<uint(k); mask++ {
		if err := b.Step(1); err != nil {
			return false, err
		}
		if m != nil {
			m.qbfNodes.Inc()
		}
		for v := 1; v <= k; v++ {
			fixed[v] = mask&(1<<uint(v-1)) != 0
		}
		if _, ok, err := f.SolveWithFixedBudget(b, fixed); err != nil {
			return false, err
		} else if !ok {
			return false, nil
		}
	}
	return true, nil
}

// Random3CNF draws m clauses of exactly three distinct variables over n ≥ 3
// variables. The density m/n controls hardness (~4.26 is the classic
// threshold).
func Random3CNF(rng *rand.Rand, n, m int) *CNF {
	if n < 3 {
		panic("logic: Random3CNF needs at least 3 variables")
	}
	clauses := make([]Clause, m)
	for i := range clauses {
		v1 := 1 + rng.Intn(n)
		v2 := v1
		//constvet:allow budgetloop -- rejection sampling over n >= 3 variables terminates with probability 1
		for v2 == v1 {
			v2 = 1 + rng.Intn(n)
		}
		v3 := v1
		//constvet:allow budgetloop -- rejection sampling over n >= 3 variables terminates with probability 1
		for v3 == v1 || v3 == v2 {
			v3 = 1 + rng.Intn(n)
		}
		c := Clause{Lit(v1), Lit(v2), Lit(v3)}
		for j := range c {
			if rng.Intn(2) == 0 {
				c[j] = c[j].Neg()
			}
		}
		clauses[i] = c
	}
	return &CNF{Vars: n, Clauses: clauses}
}
