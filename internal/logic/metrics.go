package logic

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// logicMetrics holds the resolved metric handles for the solvers.
type logicMetrics struct {
	solveCalls     *obs.Counter
	dpllNodes      *obs.Counter
	dpllBacktracks *obs.Counter
	nodesPerSolve  *obs.Histogram
	qbfCalls       *obs.Counter
	qbfNodes       *obs.Counter
}

var lmetrics atomic.Pointer[logicMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for the
// DPLL solver and the ∀∃-QBF evaluator.
func SetMetrics(s obs.Sink) {
	if s == nil {
		lmetrics.Store(nil)
		return
	}
	lmetrics.Store(&logicMetrics{
		solveCalls:     s.Counter("logic_solve_calls_total"),
		dpllNodes:      s.Counter("logic_dpll_nodes_total"),
		dpllBacktracks: s.Counter("logic_dpll_backtracks_total"),
		nodesPerSolve:  s.Histogram("logic_dpll_nodes_per_solve"),
		qbfCalls:       s.Counter("logic_qbf_calls_total"),
		qbfNodes:       s.Counter("logic_qbf_nodes_total"),
	})
}

// dpllStats accumulates one solve's search counts locally (plain
// fields, no atomics on the search path); SolveBudget publishes them
// when metrics are enabled.
type dpllStats struct {
	nodes      int64
	backtracks int64
}
