// Package attr provides attribute universes and dense bitset attribute sets.
//
// A relational schema in the sense of Cosmadakis–Papadimitriou is a pair
// (U, Σ) where U is a universal set of attributes. Views, dependencies and
// the chase all manipulate subsets of U heavily, so subsets are represented
// as bitsets over a fixed Universe: set algebra is a handful of word
// operations regardless of how the sets were built.
package attr

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"strings"
)

// ID identifies an attribute within its Universe. IDs are dense: the i-th
// attribute added to a Universe has ID i.
type ID int

// ErrUnknown is wrapped by every error a name lookup produces, so
// callers can classify "unknown attribute" without matching message
// text: errors.Is(err, attr.ErrUnknown).
var ErrUnknown = errors.New("attr: unknown attribute")

// Universe is an ordered collection of named attributes. It is immutable
// after construction; all Sets are interpreted relative to one Universe.
type Universe struct {
	names []string
	index map[string]ID
}

// NewUniverse builds a universe from the given attribute names, in order.
// Names must be non-empty and distinct.
func NewUniverse(names ...string) (*Universe, error) {
	u := &Universe{
		names: make([]string, 0, len(names)),
		index: make(map[string]ID, len(names)),
	}
	for _, n := range names {
		if n == "" {
			return nil, fmt.Errorf("attr: empty attribute name")
		}
		if _, dup := u.index[n]; dup {
			return nil, fmt.Errorf("attr: duplicate attribute %q", n)
		}
		u.index[n] = ID(len(u.names))
		u.names = append(u.names, n)
	}
	return u, nil
}

// MustUniverse is NewUniverse, panicking on error. Intended for tests and
// package-level fixtures.
func MustUniverse(names ...string) *Universe {
	u, err := NewUniverse(names...)
	if err != nil {
		panic(err)
	}
	return u
}

// Size reports the number of attributes in the universe.
func (u *Universe) Size() int { return len(u.names) }

// Name returns the name of attribute id. It panics if id is out of range.
func (u *Universe) Name(id ID) string { return u.names[id] }

// Names returns the attribute names in ID order. The returned slice is a
// copy and may be modified by the caller.
func (u *Universe) Names() []string {
	out := make([]string, len(u.names))
	copy(out, u.names)
	return out
}

// Lookup returns the ID of the named attribute.
func (u *Universe) Lookup(name string) (ID, bool) {
	id, ok := u.index[name]
	return id, ok
}

// All returns the set containing every attribute of the universe.
func (u *Universe) All() Set {
	s := u.Empty()
	for i := range u.names {
		s.add(ID(i))
	}
	return s
}

// Empty returns the empty set over this universe.
func (u *Universe) Empty() Set {
	return Set{u: u, words: make([]uint64, (len(u.names)+63)/64)}
}

// Set builds a set from attribute names. Unknown names are an error.
func (u *Universe) Set(names ...string) (Set, error) {
	s := u.Empty()
	for _, n := range names {
		id, ok := u.index[n]
		if !ok {
			return Set{}, fmt.Errorf("%w %q", ErrUnknown, n)
		}
		s.add(id)
	}
	return s, nil
}

// MustSet is Set, panicking on unknown names.
func (u *Universe) MustSet(names ...string) Set {
	s, err := u.Set(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// ParseSet parses a whitespace- or comma-separated list of attribute names.
// The empty string and the symbol "∅" (which Set.String renders for the
// empty set, so sets round-trip) parse to the empty set.
func (u *Universe) ParseSet(text string) (Set, error) {
	fields := strings.FieldsFunc(text, func(r rune) bool {
		return r == ' ' || r == '\t' || r == ',' || r == '\n'
	})
	kept := fields[:0]
	for _, f := range fields {
		if f != "∅" {
			kept = append(kept, f)
		}
	}
	return u.Set(kept...)
}

// Set is a subset of a Universe's attributes, stored as a bitset.
// The zero Set is invalid; obtain sets from a Universe.
type Set struct {
	u     *Universe
	words []uint64
}

// Universe returns the universe the set is defined over.
func (s Set) Universe() *Universe { return s.u }

func (s *Set) add(id ID) { s.words[id/64] |= 1 << (uint(id) % 64) }

// Has reports whether the set contains attribute id.
func (s Set) Has(id ID) bool {
	if id < 0 || int(id) >= s.u.Size() {
		return false
	}
	return s.words[id/64]&(1<<(uint(id)%64)) != 0
}

// HasName reports whether the set contains the named attribute.
func (s Set) HasName(name string) bool {
	id, ok := s.u.Lookup(name)
	return ok && s.Has(id)
}

// Len reports the number of attributes in the set.
func (s Set) Len() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// IsEmpty reports whether the set has no attributes.
func (s Set) IsEmpty() bool {
	for _, w := range s.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports whether s and t contain the same attributes. Sets over
// different universes are never equal.
func (s Set) Equal(t Set) bool {
	if s.u != t.u {
		return false
	}
	for i, w := range s.words {
		if w != t.words[i] {
			return false
		}
	}
	return true
}

// SubsetOf reports whether every attribute of s is in t.
func (s Set) SubsetOf(t Set) bool {
	if s.u != t.u {
		return false
	}
	for i, w := range s.words {
		if w&^t.words[i] != 0 {
			return false
		}
	}
	return true
}

// ProperSubsetOf reports whether s ⊊ t.
func (s Set) ProperSubsetOf(t Set) bool {
	return s.SubsetOf(t) && !s.Equal(t)
}

// Intersects reports whether s and t share any attribute.
func (s Set) Intersects(t Set) bool {
	if s.u != t.u {
		return false
	}
	for i, w := range s.words {
		if w&t.words[i] != 0 {
			return true
		}
	}
	return false
}

func (s Set) clone() Set {
	w := make([]uint64, len(s.words))
	copy(w, s.words)
	return Set{u: s.u, words: w}
}

// Union returns s ∪ t.
func (s Set) Union(t Set) Set {
	s.mustShare(t)
	out := s.clone()
	for i := range out.words {
		out.words[i] |= t.words[i]
	}
	return out
}

// Intersect returns s ∩ t.
func (s Set) Intersect(t Set) Set {
	s.mustShare(t)
	out := s.clone()
	for i := range out.words {
		out.words[i] &= t.words[i]
	}
	return out
}

// Diff returns s − t.
func (s Set) Diff(t Set) Set {
	s.mustShare(t)
	out := s.clone()
	for i := range out.words {
		out.words[i] &^= t.words[i]
	}
	return out
}

// Complement returns U − s.
func (s Set) Complement() Set {
	return s.u.All().Diff(s)
}

// With returns s ∪ {id}.
func (s Set) With(id ID) Set {
	out := s.clone()
	out.add(id)
	return out
}

// Without returns s − {id}.
func (s Set) Without(id ID) Set {
	out := s.clone()
	if id >= 0 && int(id) < s.u.Size() {
		out.words[id/64] &^= 1 << (uint(id) % 64)
	}
	return out
}

func (s Set) mustShare(t Set) {
	if s.u != t.u {
		panic("attr: set operation across universes")
	}
}

// IDs returns the attribute IDs in the set in ascending order.
func (s Set) IDs() []ID {
	out := make([]ID, 0, s.Len())
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			out = append(out, ID(i*64+b))
			w &= w - 1
		}
	}
	return out
}

// Each calls fn for each attribute in ascending ID order. If fn returns
// false, iteration stops early.
func (s Set) Each(fn func(ID) bool) {
	for i, w := range s.words {
		for w != 0 {
			b := bits.TrailingZeros64(w)
			if !fn(ID(i*64 + b)) {
				return
			}
			w &= w - 1
		}
	}
}

// Names returns the attribute names in the set in ID order.
func (s Set) Names() []string {
	out := make([]string, 0, s.Len())
	s.Each(func(id ID) bool {
		out = append(out, s.u.Name(id))
		return true
	})
	return out
}

// String renders the set as space-separated attribute names in ID order,
// or "∅" for the empty set.
func (s Set) String() string {
	if s.u == nil {
		return "<invalid>"
	}
	if s.IsEmpty() {
		return "∅"
	}
	return strings.Join(s.Names(), " ")
}

// Key returns a compact representation usable as a map key. Two sets over
// the same universe have equal keys iff they are equal.
func (s Set) Key() string {
	var b strings.Builder
	b.Grow(len(s.words) * 8)
	for _, w := range s.words {
		for i := 0; i < 8; i++ {
			b.WriteByte(byte(w >> (8 * i)))
		}
	}
	return b.String()
}

// Subsets enumerates all subsets of s in an unspecified order, calling fn
// for each. If fn returns false, enumeration stops. The number of subsets
// is 2^s.Len(); callers are responsible for keeping s small.
func (s Set) Subsets(fn func(Set) bool) {
	ids := s.IDs()
	n := len(ids)
	if n > 62 {
		panic("attr: Subsets on a set with more than 62 attributes")
	}
	for mask := uint64(0); mask < 1<<uint(n); mask++ {
		sub := s.u.Empty()
		for i := 0; i < n; i++ {
			if mask&(1<<uint(i)) != 0 {
				sub.add(ids[i])
			}
		}
		if !fn(sub) {
			return
		}
	}
}

// SubsetsOfSize enumerates the subsets of s with exactly k attributes.
func (s Set) SubsetsOfSize(k int, fn func(Set) bool) {
	ids := s.IDs()
	n := len(ids)
	if k < 0 || k > n {
		return
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	for {
		sub := s.u.Empty()
		for _, i := range idx {
			sub.add(ids[i])
		}
		if !fn(sub) {
			return
		}
		// Advance the combination.
		i := k - 1
		for i >= 0 && idx[i] == n-k+i {
			i--
		}
		if i < 0 {
			return
		}
		idx[i]++
		for j := i + 1; j < k; j++ {
			idx[j] = idx[j-1] + 1
		}
	}
}

// SortSets orders a slice of sets by (size, lexicographic names); useful for
// deterministic output in tools and tests.
func SortSets(sets []Set) {
	sort.Slice(sets, func(i, j int) bool {
		a, b := sets[i], sets[j]
		if a.Len() != b.Len() {
			return a.Len() < b.Len()
		}
		return a.String() < b.String()
	})
}
