package attr

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewUniverse(t *testing.T) {
	u, err := NewUniverse("A", "B", "C")
	if err != nil {
		t.Fatalf("NewUniverse: %v", err)
	}
	if u.Size() != 3 {
		t.Fatalf("Size = %d, want 3", u.Size())
	}
	for i, name := range []string{"A", "B", "C"} {
		if got := u.Name(ID(i)); got != name {
			t.Errorf("Name(%d) = %q, want %q", i, got, name)
		}
		id, ok := u.Lookup(name)
		if !ok || id != ID(i) {
			t.Errorf("Lookup(%q) = %d,%v; want %d,true", name, id, ok, i)
		}
	}
	if _, ok := u.Lookup("Z"); ok {
		t.Error("Lookup of unknown attribute succeeded")
	}
}

func TestNewUniverseErrors(t *testing.T) {
	if _, err := NewUniverse("A", "A"); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := NewUniverse("A", ""); err == nil {
		t.Error("empty name accepted")
	}
}

func TestMustUniversePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustUniverse did not panic on duplicate")
		}
	}()
	MustUniverse("A", "A")
}

func TestSetBasics(t *testing.T) {
	u := MustUniverse("A", "B", "C", "D")
	s := u.MustSet("A", "C")
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if !s.HasName("A") || !s.HasName("C") || s.HasName("B") {
		t.Errorf("membership wrong: %v", s)
	}
	if s.String() != "A C" {
		t.Errorf("String = %q, want \"A C\"", s.String())
	}
	if u.Empty().String() != "∅" {
		t.Errorf("empty String = %q", u.Empty().String())
	}
	if got := u.All().Len(); got != 4 {
		t.Errorf("All().Len() = %d, want 4", got)
	}
}

func TestSetUnknownName(t *testing.T) {
	u := MustUniverse("A")
	if _, err := u.Set("Q"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestParseSet(t *testing.T) {
	u := MustUniverse("A", "B", "C")
	for _, tc := range []struct {
		in   string
		want string
	}{
		{"A B", "A B"},
		{"A,B", "A B"},
		{"  C \t A ", "A C"},
		{"", "∅"},
	} {
		s, err := u.ParseSet(tc.in)
		if err != nil {
			t.Fatalf("ParseSet(%q): %v", tc.in, err)
		}
		if s.String() != tc.want {
			t.Errorf("ParseSet(%q) = %q, want %q", tc.in, s, tc.want)
		}
	}
	if _, err := u.ParseSet("A Z"); err == nil {
		t.Error("ParseSet with unknown attribute accepted")
	}
}

func TestSetAlgebra(t *testing.T) {
	u := MustUniverse("A", "B", "C", "D", "E")
	x := u.MustSet("A", "B", "C")
	y := u.MustSet("B", "C", "D")
	if got := x.Union(y).String(); got != "A B C D" {
		t.Errorf("Union = %q", got)
	}
	if got := x.Intersect(y).String(); got != "B C" {
		t.Errorf("Intersect = %q", got)
	}
	if got := x.Diff(y).String(); got != "A" {
		t.Errorf("Diff = %q", got)
	}
	if got := x.Complement().String(); got != "D E" {
		t.Errorf("Complement = %q", got)
	}
	if !x.Intersects(y) {
		t.Error("Intersects = false")
	}
	if x.Intersects(u.MustSet("D", "E")) {
		t.Error("disjoint sets Intersects = true")
	}
}

func TestSubsetRelations(t *testing.T) {
	u := MustUniverse("A", "B", "C")
	small := u.MustSet("A")
	big := u.MustSet("A", "B")
	if !small.SubsetOf(big) || big.SubsetOf(small) {
		t.Error("SubsetOf wrong")
	}
	if !small.ProperSubsetOf(big) {
		t.Error("ProperSubsetOf wrong")
	}
	if big.ProperSubsetOf(big) {
		t.Error("set is proper subset of itself")
	}
	if !big.SubsetOf(big) {
		t.Error("set is not subset of itself")
	}
	if !u.Empty().SubsetOf(small) {
		t.Error("empty not subset")
	}
}

func TestWithWithout(t *testing.T) {
	u := MustUniverse("A", "B", "C")
	s := u.MustSet("A")
	id, _ := u.Lookup("B")
	s2 := s.With(id)
	if !s2.HasName("B") || s.HasName("B") {
		t.Error("With mutated receiver or failed")
	}
	s3 := s2.Without(id)
	if s3.HasName("B") || !s2.HasName("B") {
		t.Error("Without mutated receiver or failed")
	}
}

func TestIDsAndEach(t *testing.T) {
	u := MustUniverse("A", "B", "C", "D")
	s := u.MustSet("B", "D")
	ids := s.IDs()
	if len(ids) != 2 || ids[0] != 1 || ids[1] != 3 {
		t.Errorf("IDs = %v", ids)
	}
	var seen []ID
	s.Each(func(id ID) bool {
		seen = append(seen, id)
		return true
	})
	if len(seen) != 2 || seen[0] != 1 || seen[1] != 3 {
		t.Errorf("Each order = %v", seen)
	}
	// Early stop.
	count := 0
	s.Each(func(ID) bool { count++; return false })
	if count != 1 {
		t.Errorf("Each did not stop early: %d", count)
	}
}

func TestKeyUniqueness(t *testing.T) {
	u := MustUniverse("A", "B", "C", "D", "E", "F")
	seen := map[string]string{}
	u.All().Subsets(func(s Set) bool {
		k := s.Key()
		if prev, dup := seen[k]; dup {
			t.Fatalf("Key collision between %q and %q", prev, s.String())
		}
		seen[k] = s.String()
		return true
	})
	if len(seen) != 64 {
		t.Fatalf("enumerated %d subsets, want 64", len(seen))
	}
}

func TestSubsetsOfSize(t *testing.T) {
	u := MustUniverse("A", "B", "C", "D")
	count := 0
	u.All().SubsetsOfSize(2, func(s Set) bool {
		if s.Len() != 2 {
			t.Errorf("subset %v has size %d", s, s.Len())
		}
		count++
		return true
	})
	if count != 6 {
		t.Errorf("enumerated %d 2-subsets, want 6", count)
	}
	// k out of range yields nothing.
	u.All().SubsetsOfSize(5, func(Set) bool { t.Error("unexpected"); return true })
	u.All().SubsetsOfSize(-1, func(Set) bool { t.Error("unexpected"); return true })
	// Early stop.
	count = 0
	u.All().SubsetsOfSize(1, func(Set) bool { count++; return false })
	if count != 1 {
		t.Errorf("SubsetsOfSize did not stop early: %d", count)
	}
}

func TestLargeUniverse(t *testing.T) {
	names := make([]string, 200)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	u := MustUniverse(names...)
	s := u.Empty()
	for i := 0; i < 200; i += 3 {
		s = s.With(ID(i))
	}
	if s.Len() != 67 {
		t.Fatalf("Len = %d, want 67", s.Len())
	}
	if !s.SubsetOf(u.All()) {
		t.Error("not subset of All")
	}
	if got := s.Union(s.Complement()); !got.Equal(u.All()) {
		t.Error("s ∪ s̄ ≠ U")
	}
	if !s.Intersect(s.Complement()).IsEmpty() {
		t.Error("s ∩ s̄ ≠ ∅")
	}
}

// randomSet draws a uniformly random subset of u.
func randomSet(u *Universe, r *rand.Rand) Set {
	s := u.Empty()
	for i := 0; i < u.Size(); i++ {
		if r.Intn(2) == 0 {
			s = s.With(ID(i))
		}
	}
	return s
}

func TestQuickSetLaws(t *testing.T) {
	u := MustUniverse("A", "B", "C", "D", "E", "F", "G", "H")
	r := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		rr := rand.New(rand.NewSource(seed ^ r.Int63()))
		x, y, z := randomSet(u, rr), randomSet(u, rr), randomSet(u, rr)
		// De Morgan.
		if !x.Union(y).Complement().Equal(x.Complement().Intersect(y.Complement())) {
			return false
		}
		// Distributivity.
		if !x.Intersect(y.Union(z)).Equal(x.Intersect(y).Union(x.Intersect(z))) {
			return false
		}
		// Difference identity.
		if !x.Diff(y).Equal(x.Intersect(y.Complement())) {
			return false
		}
		// Subset from intersection.
		if x.Intersect(y).Equal(x) != x.SubsetOf(y) {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCrossUniversePanics(t *testing.T) {
	u1 := MustUniverse("A")
	u2 := MustUniverse("A")
	defer func() {
		if recover() == nil {
			t.Error("cross-universe Union did not panic")
		}
	}()
	u1.All().Union(u2.All())
}

func TestCrossUniverseEqual(t *testing.T) {
	u1 := MustUniverse("A")
	u2 := MustUniverse("A")
	if u1.All().Equal(u2.All()) {
		t.Error("sets over different universes reported equal")
	}
	if u1.All().SubsetOf(u2.All()) {
		t.Error("cross-universe SubsetOf true")
	}
	if u1.All().Intersects(u2.All()) {
		t.Error("cross-universe Intersects true")
	}
}

func TestNamesCopy(t *testing.T) {
	u := MustUniverse("A", "B")
	n := u.Names()
	n[0] = "Z"
	if u.Name(0) != "A" {
		t.Error("Names did not return a copy")
	}
}
