package succinct

import (
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func fixture(t *testing.T) (attr.Set, *value.Symbols) {
	t.Helper()
	u := attr.MustUniverse("A", "B", "C")
	return u.All(), value.NewSymbols()
}

func TestProductBasics(t *testing.T) {
	attrs, syms := fixture(t)
	v0, v1 := syms.Const("0"), syms.Const("1")
	p := MustProduct(attrs, [][]value.Value{{v0, v1}, {v0}, {v0, v1}})
	if p.Size() != 4 {
		t.Errorf("Size = %d", p.Size())
	}
	if p.DescriptionSize() != 5 {
		t.Errorf("DescriptionSize = %d", p.DescriptionSize())
	}
	if !p.Contains(relation.Tuple{v1, v0, v0}) {
		t.Error("member rejected")
	}
	if p.Contains(relation.Tuple{v0, v1, v0}) {
		t.Error("non-member accepted")
	}
	if p.Contains(relation.Tuple{v0, v0}) {
		t.Error("wrong arity accepted")
	}
	count := 0
	p.Each(func(relation.Tuple) bool { count++; return true })
	if count != 4 {
		t.Errorf("Each enumerated %d", count)
	}
	// Early stop.
	count = 0
	p.Each(func(relation.Tuple) bool { count++; return false })
	if count != 1 {
		t.Errorf("Each did not stop: %d", count)
	}
}

func TestProductValidation(t *testing.T) {
	attrs, syms := fixture(t)
	v0 := syms.Const("0")
	if _, err := NewProduct(attrs, [][]value.Value{{v0}}); err == nil {
		t.Error("wrong list count accepted")
	}
	if _, err := NewProduct(attrs, [][]value.Value{{v0}, {}, {v0}}); err == nil {
		t.Error("empty list accepted")
	}
}

func TestFilteredProduct(t *testing.T) {
	attrs, syms := fixture(t)
	v0, v1 := syms.Const("0"), syms.Const("1")
	fp := MustFilteredProduct(attrs,
		[][]value.Value{{v0, v1}, {v0, v1}, {v0}},
		[][2]int{{0, 1}})
	// Only (0,1,0) and (1,0,0) survive the filter.
	var got []relation.Tuple
	fp.Each(func(t relation.Tuple) bool { got = append(got, t.Clone()); return true })
	if len(got) != 2 {
		t.Fatalf("enumerated %d tuples, want 2", len(got))
	}
	if !fp.Contains(relation.Tuple{v0, v1, v0}) || fp.Contains(relation.Tuple{v0, v0, v0}) {
		t.Error("Contains wrong")
	}
	if fp.Size() != 4 {
		t.Errorf("Size bound = %d", fp.Size())
	}
	if fp.DescriptionSize() != 7 {
		t.Errorf("DescriptionSize = %d", fp.DescriptionSize())
	}
}

func TestFilteredProductValidation(t *testing.T) {
	attrs, syms := fixture(t)
	v0 := syms.Const("0")
	lists := [][]value.Value{{v0}, {v0}, {v0}}
	if _, err := NewFilteredProduct(attrs, lists, [][2]int{{0, 0}}); err == nil {
		t.Error("self pair accepted")
	}
	if _, err := NewFilteredProduct(attrs, lists, [][2]int{{0, 9}}); err == nil {
		t.Error("out-of-range pair accepted")
	}
}

func TestViewUnion(t *testing.T) {
	attrs, syms := fixture(t)
	v0, v1 := syms.Const("0"), syms.Const("1")
	p1 := MustProduct(attrs, [][]value.Value{{v0}, {v0, v1}, {v0}})
	p2 := MustProduct(attrs, [][]value.Value{{v0}, {v0}, {v0, v1}})
	v := MustView(p1, p2)
	// p1: (0,0,0),(0,1,0); p2: (0,0,0),(0,0,1) — union has 3 tuples.
	if v.Len() != 3 {
		t.Errorf("Len = %d, want 3 (overlap deduped)", v.Len())
	}
	if v.SizeBound() != 4 {
		t.Errorf("SizeBound = %d", v.SizeBound())
	}
	ex := v.Expand()
	if ex.Len() != 3 {
		t.Errorf("Expand Len = %d", ex.Len())
	}
	for _, tp := range ex.Tuples() {
		if !v.Contains(tp) {
			t.Error("expanded tuple not contained")
		}
	}
	if v.Contains(relation.Tuple{v1, v1, v1}) {
		t.Error("non-member accepted")
	}
}

func TestViewEachEarlyStopAndDedup(t *testing.T) {
	attrs, syms := fixture(t)
	v0 := syms.Const("0")
	p1 := MustProduct(attrs, [][]value.Value{{v0}, {v0}, {v0}})
	p2 := MustProduct(attrs, [][]value.Value{{v0}, {v0}, {v0}})
	v := MustView(p1, p2)
	count := 0
	v.Each(func(relation.Tuple) bool { count++; return true })
	if count != 1 {
		t.Errorf("duplicate tuple enumerated %d times", count)
	}
	count = 0
	v.Each(func(relation.Tuple) bool { count++; return false })
	if count != 1 {
		t.Errorf("early stop failed")
	}
}

func TestViewValidation(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	syms := value.NewSymbols()
	v0 := syms.Const("0")
	if _, err := NewView(); err == nil {
		t.Error("empty view accepted")
	}
	pa := MustProduct(u.MustSet("A"), [][]value.Value{{v0}})
	pb := MustProduct(u.MustSet("B"), [][]value.Value{{v0}})
	if _, err := NewView(pa, pb); err == nil {
		t.Error("mixed attribute sets accepted")
	}
}

func TestExponentialCompression(t *testing.T) {
	// A description of size O(n) denoting 2^n tuples — the point of §3.2.
	n := 16
	names := make([]string, n)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	u := attr.MustUniverse(names...)
	syms := value.NewSymbols()
	v0, v1 := syms.Const("0"), syms.Const("1")
	lists := make([][]value.Value, n)
	for i := range lists {
		lists[i] = []value.Value{v0, v1}
	}
	p := MustProduct(u.All(), lists)
	v := MustView(p)
	if v.DescriptionSize() != 2*n {
		t.Errorf("description size = %d", v.DescriptionSize())
	}
	if v.SizeBound() != 1<<uint(n) {
		t.Errorf("size bound = %d", v.SizeBound())
	}
}
