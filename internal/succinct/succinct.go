// Package succinct represents view instances as unions of Cartesian
// products, the exponentially compact encoding of §3.2: a description of
// total size O(|U|) can denote a view with 2^Ω(|U|) tuples. Theorems 4, 5
// and 7 show that translatability questions become Π₂ᵖ-, co-NP- and
// NP-hard respectively when the view is presented this way.
package succinct

import (
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Product is a Cartesian product of per-attribute value lists over a fixed
// attribute set: it denotes every tuple whose value in each attribute is
// drawn from that attribute's list.
type Product struct {
	attrs attr.Set
	// lists[i] holds the options for the i-th attribute (ascending ID
	// order).
	lists [][]value.Value
}

// NewProduct builds a product over attrs; lists must be parallel to
// attrs.IDs() and nonempty.
func NewProduct(attrs attr.Set, lists [][]value.Value) (*Product, error) {
	if len(lists) != attrs.Len() {
		return nil, fmt.Errorf("succinct: %d lists for %d attributes", len(lists), attrs.Len())
	}
	for i, l := range lists {
		if len(l) == 0 {
			return nil, fmt.Errorf("succinct: empty list for attribute %d", i)
		}
	}
	return &Product{attrs: attrs, lists: lists}, nil
}

// MustProduct is NewProduct, panicking on error.
func MustProduct(attrs attr.Set, lists [][]value.Value) *Product {
	p, err := NewProduct(attrs, lists)
	if err != nil {
		panic(err)
	}
	return p
}

// Attrs returns the product's attribute set.
func (p *Product) Attrs() attr.Set { return p.attrs }

// Size returns the number of tuples the product denotes.
func (p *Product) Size() int64 {
	n := int64(1)
	for _, l := range p.lists {
		n *= int64(len(l))
	}
	return n
}

// DescriptionSize returns the total length of the value lists — the size
// of the succinct encoding.
func (p *Product) DescriptionSize() int {
	n := 0
	for _, l := range p.lists {
		n += len(l)
	}
	return n
}

// Contains reports whether the product denotes the tuple (entries in
// ascending attribute order).
func (p *Product) Contains(t relation.Tuple) bool {
	if len(t) != len(p.lists) {
		return false
	}
	for i, l := range p.lists {
		ok := false
		for _, v := range l {
			if v == t[i] {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	return true
}

// Each enumerates the product's tuples; fn returning false stops early.
func (p *Product) Each(fn func(relation.Tuple) bool) {
	idx := make([]int, len(p.lists))
	for {
		t := make(relation.Tuple, len(p.lists))
		for i, l := range p.lists {
			t[i] = l[idx[i]]
		}
		if !fn(t) {
			return
		}
		i := 0
		for i < len(idx) {
			idx[i]++
			if idx[i] < len(p.lists[i]) {
				break
			}
			idx[i] = 0
			i++
		}
		if i == len(idx) {
			return
		}
	}
}

// Component is one term of a union-of-products view: something that
// denotes a set of tuples compactly. Product and FilteredProduct
// implement it.
type Component interface {
	Attrs() attr.Set
	Size() int64
	DescriptionSize() int
	Contains(t relation.Tuple) bool
	Each(fn func(relation.Tuple) bool)
}

// FilteredProduct is a Cartesian product of per-attribute lists with
// disequality constraints between designated column pairs. It expresses
// the paper's S_{X_iX_i'} blocks — two-row relations {(0,1), (1,0)} —
// whose Cartesian product with the other columns forms the view of
// Theorems 4, 5 and 7: the pair constraint X_i ≠ X_i' keeps exactly the
// rows that encode consistent truth assignments.
type FilteredProduct struct {
	inner *Product
	// pairs lists column index pairs whose values must differ.
	pairs [][2]int
}

// NewFilteredProduct builds a filtered product; each pair must index two
// distinct columns.
func NewFilteredProduct(attrs attr.Set, lists [][]value.Value, pairs [][2]int) (*FilteredProduct, error) {
	inner, err := NewProduct(attrs, lists)
	if err != nil {
		return nil, err
	}
	for _, pr := range pairs {
		if pr[0] == pr[1] || pr[0] < 0 || pr[1] < 0 || pr[0] >= len(lists) || pr[1] >= len(lists) {
			return nil, fmt.Errorf("succinct: bad column pair %v", pr)
		}
	}
	return &FilteredProduct{inner: inner, pairs: pairs}, nil
}

// MustFilteredProduct is NewFilteredProduct, panicking on error.
func MustFilteredProduct(attrs attr.Set, lists [][]value.Value, pairs [][2]int) *FilteredProduct {
	p, err := NewFilteredProduct(attrs, lists, pairs)
	if err != nil {
		panic(err)
	}
	return p
}

// Attrs returns the product's attribute set.
func (p *FilteredProduct) Attrs() attr.Set { return p.inner.attrs }

// DescriptionSize is the encoding size (lists plus constraints).
func (p *FilteredProduct) DescriptionSize() int {
	return p.inner.DescriptionSize() + 2*len(p.pairs)
}

// Size returns an upper bound (the unfiltered product size); the exact
// count requires enumeration.
func (p *FilteredProduct) Size() int64 { return p.inner.Size() }

func (p *FilteredProduct) ok(t relation.Tuple) bool {
	for _, pr := range p.pairs {
		if t[pr[0]] == t[pr[1]] {
			return false
		}
	}
	return true
}

// Contains reports whether the filtered product denotes the tuple.
func (p *FilteredProduct) Contains(t relation.Tuple) bool {
	return p.inner.Contains(t) && p.ok(t)
}

// Each enumerates the denoted tuples.
func (p *FilteredProduct) Each(fn func(relation.Tuple) bool) {
	p.inner.Each(func(t relation.Tuple) bool {
		if !p.ok(t) {
			return true
		}
		return fn(t)
	})
}

// View is a view instance presented as a union of Cartesian products (all
// over the same attribute set).
type View struct {
	attrs    attr.Set
	products []Component
}

// NewView builds a view from products sharing one attribute set.
func NewView(products ...Component) (*View, error) {
	if len(products) == 0 {
		return nil, fmt.Errorf("succinct: view with no products")
	}
	a := products[0].Attrs()
	for _, p := range products[1:] {
		if !p.Attrs().Equal(a) {
			return nil, fmt.Errorf("succinct: products over different attribute sets")
		}
	}
	return &View{attrs: a, products: products}, nil
}

// MustView is NewView, panicking on error.
func MustView(products ...Component) *View {
	v, err := NewView(products...)
	if err != nil {
		panic(err)
	}
	return v
}

// Attrs returns the view's attribute set.
func (v *View) Attrs() attr.Set { return v.attrs }

// Products returns the constituent products.
func (v *View) Products() []Component { return v.products }

// DescriptionSize is the size of the succinct encoding.
func (v *View) DescriptionSize() int {
	n := 0
	for _, p := range v.products {
		n += p.DescriptionSize()
	}
	return n
}

// SizeBound returns an upper bound on the denoted cardinality (products
// may overlap).
func (v *View) SizeBound() int64 {
	n := int64(0)
	for _, p := range v.products {
		n += p.Size()
	}
	return n
}

// Contains reports membership in the denoted set.
func (v *View) Contains(t relation.Tuple) bool {
	for _, p := range v.products {
		if p.Contains(t) {
			return true
		}
	}
	return false
}

// Expand materializes the denoted view instance (deduplicated). This is
// the exponential step the hardness theorems are about; callers must keep
// SizeBound in check.
func (v *View) Expand() *relation.Relation {
	r := relation.New(v.attrs)
	for _, p := range v.products {
		p.Each(func(t relation.Tuple) bool {
			r.Insert(t)
			return true
		})
	}
	return r
}

// Each enumerates the denoted tuples with duplicates removed; fn
// returning false stops early.
func (v *View) Each(fn func(relation.Tuple) bool) {
	seen := map[string]bool{}
	for _, p := range v.products {
		stop := false
		p.Each(func(t relation.Tuple) bool {
			k := tupleKey(t)
			if seen[k] {
				return true
			}
			seen[k] = true
			if !fn(t) {
				stop = true
				return false
			}
			return true
		})
		if stop {
			return
		}
	}
}

func tupleKey(t relation.Tuple) string {
	b := make([]byte, 0, len(t)*8)
	for _, v := range t {
		u := uint64(v)
		for i := 0; i < 8; i++ {
			b = append(b, byte(u>>(8*i)))
		}
	}
	return string(b)
}

// Len counts the denoted tuples exactly (deduplicated); linear in the
// expansion.
func (v *View) Len() int {
	n := 0
	v.Each(func(relation.Tuple) bool { n++; return true })
	return n
}
