package closure

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/value"
)

func TestArmstrongRelationEDM(t *testing.T) {
	u := attr.MustUniverse("E", "D", "M")
	fs := fds(t, u, "E -> D", "D -> M")
	syms := value.NewSymbols()
	r := ArmstrongRelation(u, fs, syms)
	// Satisfies the given (and implied) FDs.
	for _, f := range fs {
		if !r.SatisfiesFD(f) {
			t.Errorf("Armstrong relation violates given %v", f)
		}
	}
	if !r.SatisfiesFD(dep.NewFD(u.MustSet("E"), u.MustSet("M"))) {
		t.Error("violates implied E -> M")
	}
	// Violates the non-implied ones.
	for _, bad := range []dep.FD{
		dep.NewFD(u.MustSet("M"), u.MustSet("E")),
		dep.NewFD(u.MustSet("D"), u.MustSet("E")),
		dep.NewFD(u.MustSet("M"), u.MustSet("D")),
	} {
		if r.SatisfiesFD(bad) {
			t.Errorf("satisfies non-implied %v", bad)
		}
	}
}

func TestQuickArmstrongExact(t *testing.T) {
	// The Armstrong relation satisfies Z → A iff the FD set implies it —
	// over every single-attribute-RHS FD on a small universe.
	u := attr.MustUniverse("A", "B", "C", "D")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := randomFDs(u, rng, 1+rng.Intn(4))
		syms := value.NewSymbols()
		r := ArmstrongRelation(u, fs, syms)
		ok := true
		u.All().Subsets(func(z attr.Set) bool {
			for a := 0; a < u.Size(); a++ {
				target := dep.NewFD(z, u.Empty().With(attr.ID(a)))
				if r.SatisfiesFD(target) != Implies(fs, target) {
					ok = false
					return false
				}
			}
			return true
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestArmstrongRelationPanicsOnWide(t *testing.T) {
	names := make([]string, 17)
	for i := range names {
		names[i] = string(rune('A'+i%26)) + string(rune('0'+i/26))
	}
	u := attr.MustUniverse(names...)
	defer func() {
		if recover() == nil {
			t.Error("no panic on wide universe")
		}
	}()
	ArmstrongRelation(u, nil, value.NewSymbols())
}
