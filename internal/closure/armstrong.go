package closure

import (
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// ArmstrongRelation constructs an Armstrong relation for the FD set: an
// instance that satisfies an FD Z → A iff fds ⊨ Z → A. Such instances
// witness the exact implication structure of a schema — handy for testing
// and for the paper's "legal instance" arguments, where a two-tuple
// subrelation realizing a chosen agreement pattern is needed.
//
// Construction: enumerate the distinct attribute closures {S⁺ : S ⊆ U}
// (the closure system of the FD set); emit a base row plus one row per
// closed set C, agreeing with the base exactly on C. A pair (base, row_C)
// then violates Z → A exactly when Z ⊆ C and A ∉ C, so the relation
// violates precisely the non-implied FDs. Exponential in |U| (the closure
// system can be exponential); intended for small universes.
func ArmstrongRelation(u *attr.Universe, fds []dep.FD, syms *value.Symbols) *relation.Relation {
	if u.Size() > 16 {
		panic("closure: ArmstrongRelation on more than 16 attributes")
	}
	// Distinct closed sets.
	seen := map[string]attr.Set{}
	u.All().Subsets(func(s attr.Set) bool {
		c := Closure(s, fds)
		seen[c.Key()] = c
		return true
	})
	r := relation.New(u.All())
	n := u.Size()
	base := make(relation.Tuple, n)
	for c := 0; c < n; c++ {
		base[c] = syms.Const("base_" + u.Name(attr.ID(c)))
	}
	r.Insert(base.Clone())
	i := 0
	for _, closed := range seen {
		row := make(relation.Tuple, n)
		for c := 0; c < n; c++ {
			if closed.Has(attr.ID(c)) {
				row[c] = base[c]
			} else {
				row[c] = syms.Const(fmt.Sprintf("r%d_%s", i, u.Name(attr.ID(c))))
			}
		}
		r.Insert(row)
		i++
	}
	return r
}
