// Package closure implements reasoning over functional dependencies: the
// linear-time attribute-closure algorithm of Beeri and Bernstein (used
// throughout §3 of Cosmadakis–Papadimitriou for conditions like
// "Σ ⊨ X∩Y → Y"), FD implication, superkey tests, key enumeration, minimal
// covers and cover equivalence.
package closure

import (
	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
)

// Closure computes X⁺ under the functional dependencies fds using the
// counter-based linear-time algorithm of Beeri–Bernstein [4 in the paper].
func Closure(x attr.Set, fds []dep.FD) attr.Set {
	u := x.Universe()
	// count[i] = number of LHS attributes of fds[i] not yet in the closure.
	count := make([]int, len(fds))
	// users[a] = indices of FDs whose LHS contains attribute a.
	users := make([][]int, u.Size())
	var queue []attr.ID
	closed := x
	for i, f := range fds {
		count[i] = f.From.Len()
		f.From.Each(func(a attr.ID) bool {
			users[a] = append(users[a], i)
			return true
		})
		if count[i] == 0 {
			// Empty LHS: RHS is in every closure.
			f.To.Each(func(a attr.ID) bool {
				if !closed.Has(a) {
					closed = closed.With(a)
					queue = append(queue, a)
				}
				return true
			})
		}
	}
	x.Each(func(a attr.ID) bool {
		queue = append(queue, a)
		return true
	})
	for len(queue) > 0 {
		a := queue[len(queue)-1]
		queue = queue[:len(queue)-1]
		for _, i := range users[a] {
			count[i]--
			if count[i] == 0 {
				fds[i].To.Each(func(b attr.ID) bool {
					if !closed.Has(b) {
						closed = closed.With(b)
						queue = append(queue, b)
					}
					return true
				})
			}
		}
	}
	return closed
}

// Implies reports whether fds ⊨ f, i.e. f.To ⊆ Closure(f.From).
func Implies(fds []dep.FD, f dep.FD) bool {
	return f.To.SubsetOf(Closure(f.From, fds))
}

// ImpliesAll reports whether fds implies every FD in gs.
func ImpliesAll(fds, gs []dep.FD) bool {
	for _, g := range gs {
		if !Implies(fds, g) {
			return false
		}
	}
	return true
}

// Equivalent reports whether two FD sets imply each other.
func Equivalent(a, b []dep.FD) bool {
	return ImpliesAll(a, b) && ImpliesAll(b, a)
}

// IsSuperkey reports whether x determines all of target under fds
// (target ⊆ x⁺). With target = U this is the usual superkey test.
func IsSuperkey(x, target attr.Set, fds []dep.FD) bool {
	return target.SubsetOf(Closure(x, fds))
}

// Keys enumerates the minimal keys of target ⊆ U among subsets of
// candidates, i.e. the minimal X ⊆ candidates with target ⊆ X⁺. It uses
// the standard reduction: start from candidates and shrink. Intended for
// the small schemas of this library; worst case is exponential in
// |candidates| as key enumeration inherently is.
func Keys(candidates, target attr.Set, fds []dep.FD) []attr.Set {
	if !IsSuperkey(candidates, target, fds) {
		return nil
	}
	var keys []attr.Set
	seenCur := map[string]bool{}
	seenKey := map[string]bool{}
	var grow func(cur attr.Set)
	grow = func(cur attr.Set) {
		if seenCur[cur.Key()] {
			return
		}
		seenCur[cur.Key()] = true
		// Shrink cur to a minimal key.
		k := Shrink(cur, target, fds)
		if !seenKey[k.Key()] {
			seenKey[k.Key()] = true
			keys = append(keys, k)
		}
		// Branch: for every attribute a of k, look for keys avoiding a
		// within the current candidate pool.
		k.Each(func(a attr.ID) bool {
			without := cur.Without(a)
			if IsSuperkey(without, target, fds) {
				grow(without)
			}
			return true
		})
	}
	grow(candidates)
	// Filter non-minimal results that slipped in via different branches.
	var out []attr.Set
	for _, k := range keys {
		minimal := true
		for _, other := range keys {
			if other.ProperSubsetOf(k) {
				minimal = false
				break
			}
		}
		if minimal {
			out = append(out, k)
		}
	}
	attr.SortSets(out)
	return out
}

// Shrink removes attributes from x (in descending ID order) while x still
// determines target, returning a minimal determining subset.
func Shrink(x, target attr.Set, fds []dep.FD) attr.Set {
	ids := x.IDs()
	for i := len(ids) - 1; i >= 0; i-- {
		cand := x.Without(ids[i])
		if IsSuperkey(cand, target, fds) {
			x = cand
		}
	}
	return x
}

// MinimalCover returns a minimal cover of fds: single-attribute right-hand
// sides, no redundant FDs, no extraneous LHS attributes.
func MinimalCover(fds []dep.FD) []dep.FD {
	// 1. Split RHS and drop trivial FDs.
	var work []dep.FD
	for _, f := range fds {
		for _, g := range f.Split() {
			if !g.IsTrivial() {
				work = append(work, g)
			}
		}
	}
	// 2. Remove extraneous LHS attributes.
	for i, f := range work {
		lhs := f.From
		lhs.Each(func(a attr.ID) bool {
			smaller := lhs.Without(a)
			if Implies(work, dep.FD{From: smaller, To: f.To}) {
				lhs = smaller
				work[i] = dep.FD{From: lhs, To: f.To}
			}
			return true
		})
	}
	// 3. Remove redundant FDs.
	out := make([]dep.FD, 0, len(work))
	for i := range work {
		rest := make([]dep.FD, 0, len(work)-1)
		rest = append(rest, out...)
		rest = append(rest, work[i+1:]...)
		if !Implies(rest, work[i]) {
			out = append(out, work[i])
		}
	}
	return out
}

// Project computes the projection of an FD set onto attribute set x: a
// cover of the FDs Z → A with Z, A ⊆ x implied by fds. Worst case is
// exponential in |x| (unavoidable); intended for small views.
func Project(x attr.Set, fds []dep.FD) []dep.FD {
	var out []dep.FD
	x.Subsets(func(z attr.Set) bool {
		cl := Closure(z, fds).Intersect(x).Diff(z)
		if !cl.IsEmpty() {
			out = append(out, dep.FD{From: z, To: cl})
		}
		return true
	})
	return MinimalCover(out)
}
