package closure

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
)

func fds(t testing.TB, u *attr.Universe, lines ...string) []dep.FD {
	t.Helper()
	var out []dep.FD
	for _, l := range lines {
		d, err := dep.Parse(u, l)
		if err != nil {
			t.Fatal(err)
		}
		out = append(out, d.(dep.FD))
	}
	return out
}

func TestClosureBasic(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	fs := fds(t, u, "A -> B", "B -> C")
	got := Closure(u.MustSet("A"), fs)
	if !got.Equal(u.MustSet("A", "B", "C")) {
		t.Errorf("A+ = %v", got)
	}
	got = Closure(u.MustSet("D"), fs)
	if !got.Equal(u.MustSet("D")) {
		t.Errorf("D+ = %v", got)
	}
}

func TestClosureEmptyLHS(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	// ∅ -> A means A is constant in every instance; A ∈ X+ for all X.
	fs := []dep.FD{{From: u.Empty(), To: u.MustSet("A")}}
	got := Closure(u.Empty(), fs)
	if !got.Equal(u.MustSet("A")) {
		t.Errorf("∅+ = %v", got)
	}
}

func TestClosureChained(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	fs := fds(t, u, "A B -> C", "C -> D", "A D -> E")
	got := Closure(u.MustSet("A", "B"), fs)
	if !got.Equal(u.All()) {
		t.Errorf("AB+ = %v, want all", got)
	}
	// B alone closes to itself.
	if got := Closure(u.MustSet("B"), fs); !got.Equal(u.MustSet("B")) {
		t.Errorf("B+ = %v", got)
	}
}

func TestImplies(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	fs := fds(t, u, "A -> B", "B -> C")
	if !Implies(fs, dep.NewFD(u.MustSet("A"), u.MustSet("C"))) {
		t.Error("transitivity missed")
	}
	if Implies(fs, dep.NewFD(u.MustSet("C"), u.MustSet("A"))) {
		t.Error("unsound implication")
	}
	// Reflexivity.
	if !Implies(nil, dep.NewFD(u.MustSet("A", "B"), u.MustSet("A"))) {
		t.Error("reflexivity missed")
	}
	// Augmentation.
	if !Implies(fs, dep.NewFD(u.MustSet("A", "C"), u.MustSet("B", "C"))) {
		t.Error("augmentation missed")
	}
}

func TestEquivalent(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	a := fds(t, u, "A -> B C")
	b := fds(t, u, "A -> B", "A -> C")
	if !Equivalent(a, b) {
		t.Error("split cover not equivalent")
	}
	c := fds(t, u, "A -> B")
	if Equivalent(a, c) {
		t.Error("strictly weaker cover reported equivalent")
	}
}

func TestIsSuperkey(t *testing.T) {
	u := attr.MustUniverse("E", "D", "M")
	fs := fds(t, u, "E -> D", "D -> M")
	if !IsSuperkey(u.MustSet("E"), u.All(), fs) {
		t.Error("E should be a key of EDM")
	}
	if IsSuperkey(u.MustSet("D"), u.All(), fs) {
		t.Error("D is not a key of EDM")
	}
	if !IsSuperkey(u.MustSet("D"), u.MustSet("D", "M"), fs) {
		t.Error("D should be a key of DM")
	}
}

func TestShrink(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	fs := fds(t, u, "A -> B", "A -> C")
	k := Shrink(u.All(), u.All(), fs)
	if !k.Equal(u.MustSet("A")) {
		t.Errorf("Shrink = %v, want A", k)
	}
}

func TestKeys(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	// Cyclic FDs: A->B, B->C, C->A; keys are exactly {A}, {B}, {C}.
	fs := fds(t, u, "A -> B", "B -> C", "C -> A")
	keys := Keys(u.All(), u.All(), fs)
	if len(keys) != 3 {
		t.Fatalf("got %d keys (%v), want 3", len(keys), keys)
	}
	for _, k := range keys {
		if k.Len() != 1 {
			t.Errorf("non-singleton key %v", k)
		}
	}
}

func TestKeysNoSuperkey(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	if got := Keys(u.MustSet("A"), u.All(), nil); got != nil {
		t.Errorf("Keys = %v, want nil (A does not determine B)", got)
	}
}

func TestKeysComposite(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	fs := fds(t, u, "A B -> C D")
	keys := Keys(u.All(), u.All(), fs)
	if len(keys) != 1 || !keys[0].Equal(u.MustSet("A", "B")) {
		t.Errorf("keys = %v, want [AB]", keys)
	}
}

func TestMinimalCover(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	// Redundant and unnormalized input.
	in := fds(t, u, "A -> B C", "A -> B", "A B -> C", "B -> B")
	mc := MinimalCover(in)
	if !Equivalent(in, mc) {
		t.Fatal("minimal cover not equivalent to input")
	}
	for _, f := range mc {
		if f.To.Len() != 1 {
			t.Errorf("wide RHS in cover: %v", f)
		}
		if f.IsTrivial() {
			t.Errorf("trivial FD in cover: %v", f)
		}
	}
	// No redundant member.
	for i := range mc {
		rest := append(append([]dep.FD{}, mc[:i]...), mc[i+1:]...)
		if Implies(rest, mc[i]) {
			t.Errorf("redundant FD %v in cover", mc[i])
		}
	}
	// No extraneous LHS attribute.
	for _, f := range mc {
		f.From.Each(func(a attr.ID) bool {
			if Implies(mc, dep.FD{From: f.From.Without(a), To: f.To}) {
				t.Errorf("extraneous attribute %v in %v", u.Name(a), f)
			}
			return true
		})
	}
}

func TestMinimalCoverEmpty(t *testing.T) {
	if got := MinimalCover(nil); len(got) != 0 {
		t.Errorf("MinimalCover(nil) = %v", got)
	}
}

func TestProjectFDs(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	// A->B, B->C projected on {A, C} must yield A->C.
	fs := fds(t, u, "A -> B", "B -> C")
	p := Project(u.MustSet("A", "C"), fs)
	if !Implies(p, dep.NewFD(u.MustSet("A"), u.MustSet("C"))) {
		t.Error("projection lost A->C")
	}
	for _, f := range p {
		if !f.From.Union(f.To).SubsetOf(u.MustSet("A", "C")) {
			t.Errorf("projected FD %v outside target", f)
		}
		if !Implies(fs, f) {
			t.Errorf("unsound projected FD %v", f)
		}
	}
}

// randomFDs draws k random FDs over u.
func randomFDs(u *attr.Universe, rng *rand.Rand, k int) []dep.FD {
	out := make([]dep.FD, 0, k)
	for i := 0; i < k; i++ {
		lhs, rhs := u.Empty(), u.Empty()
		for a := 0; a < u.Size(); a++ {
			switch rng.Intn(4) {
			case 0:
				lhs = lhs.With(attr.ID(a))
			case 1:
				rhs = rhs.With(attr.ID(a))
			}
		}
		if rhs.IsEmpty() {
			rhs = rhs.With(attr.ID(rng.Intn(u.Size())))
		}
		out = append(out, dep.FD{From: lhs, To: rhs})
	}
	return out
}

// naiveClosure is the quadratic textbook closure, used as oracle.
func naiveClosure(x attr.Set, fs []dep.FD) attr.Set {
	for changed := true; changed; {
		changed = false
		for _, f := range fs {
			if f.From.SubsetOf(x) && !f.To.SubsetOf(x) {
				x = x.Union(f.To)
				changed = true
			}
		}
	}
	return x
}

func TestQuickClosureMatchesNaive(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E", "F")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := randomFDs(u, rng, 1+rng.Intn(8))
		x := u.Empty()
		for a := 0; a < u.Size(); a++ {
			if rng.Intn(3) == 0 {
				x = x.With(attr.ID(a))
			}
		}
		return Closure(x, fs).Equal(naiveClosure(x, fs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickClosureLaws(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := randomFDs(u, rng, 1+rng.Intn(6))
		x := u.Empty()
		for a := 0; a < u.Size(); a++ {
			if rng.Intn(2) == 0 {
				x = x.With(attr.ID(a))
			}
		}
		cl := Closure(x, fs)
		// Extensive, idempotent, monotone (vs the full set).
		if !x.SubsetOf(cl) {
			return false
		}
		if !Closure(cl, fs).Equal(cl) {
			return false
		}
		if !cl.SubsetOf(Closure(u.All(), fs)) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestQuickMinimalCoverEquivalent(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		fs := randomFDs(u, rng, 1+rng.Intn(6))
		return Equivalent(fs, MinimalCover(fs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
