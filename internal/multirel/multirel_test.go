package multirel

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// edmDecomp is the EDM universal relation decomposed into EMP(E,D) and
// DEPT(D,M).
func edmDecomp(t testing.TB) (*Schema, *value.Symbols) {
	t.Helper()
	u := attr.MustUniverse("E", "D", "M")
	fds := []dep.FD{
		dep.NewFD(u.MustSet("E"), u.MustSet("D")),
		dep.NewFD(u.MustSet("D"), u.MustSet("M")),
	}
	s, err := New(u, fds,
		[]string{"EMP", "DEPT"},
		[]attr.Set{u.MustSet("E", "D"), u.MustSet("D", "M")})
	if err != nil {
		t.Fatal(err)
	}
	return s, value.NewSymbols()
}

func fill(t testing.TB, in *Instance, syms *value.Symbols, name string, rows ...[]string) {
	t.Helper()
	r, ok := in.Relation(name)
	if !ok {
		t.Fatalf("no relation %q", name)
	}
	for _, row := range rows {
		tp := make(relation.Tuple, len(row))
		for i, c := range row {
			tp[i] = syms.Const(c)
		}
		r.Insert(tp)
	}
}

func TestNewValidation(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	if _, err := New(u, nil, []string{"R"}, nil); err == nil {
		t.Error("mismatched names/schemes accepted")
	}
	if _, err := New(u, nil, []string{"R", "R"},
		[]attr.Set{u.MustSet("A"), u.MustSet("B")}); err == nil {
		t.Error("duplicate names accepted")
	}
	if _, err := New(u, nil, []string{"R"}, []attr.Set{u.MustSet("A")}); err == nil {
		t.Error("non-covering schemes accepted")
	}
	if _, err := New(u, nil, []string{"R", "S"},
		[]attr.Set{u.MustSet("A"), u.MustSet("B")}); err != nil {
		t.Errorf("valid schema rejected: %v", err)
	}
}

func TestJoinAndConsistency(t *testing.T) {
	s, syms := edmDecomp(t)
	in := s.NewInstance()
	fill(t, in, syms, "EMP", []string{"ed", "toys"}, []string{"flo", "toys"})
	fill(t, in, syms, "DEPT", []string{"toys", "mo"})
	j := in.Join()
	if j.Len() != 2 {
		t.Fatalf("join has %d tuples", j.Len())
	}
	ok, why := in.Consistent()
	if !ok {
		t.Fatalf("consistent instance rejected: %s", why)
	}
	// Dangling DEPT tuple: no employee in tools.
	fill(t, in, syms, "DEPT", []string{"tools", "tim"})
	ok, why = in.Consistent()
	if ok {
		t.Fatal("dangling tuple not detected")
	}
	if why == "" {
		t.Error("no diagnosis")
	}
}

func TestConsistencyFDViolation(t *testing.T) {
	s, syms := edmDecomp(t)
	in := s.NewInstance()
	fill(t, in, syms, "EMP", []string{"ed", "toys"})
	fill(t, in, syms, "DEPT", []string{"toys", "mo"}, []string{"toys", "tim"})
	ok, why := in.Consistent()
	if ok {
		t.Fatal("D -> M violation not detected")
	}
	_ = why
}

func TestViewAndComplementarity(t *testing.T) {
	s, syms := edmDecomp(t)
	u := s.Universal().Universe()
	in := s.NewInstance()
	fill(t, in, syms, "EMP", []string{"ed", "toys"}, []string{"bob", "tools"})
	fill(t, in, syms, "DEPT", []string{"toys", "mo"}, []string{"tools", "tim"})
	v := in.ViewInstance(u.MustSet("E", "M"))
	if v.Len() != 2 {
		t.Fatalf("view has %d tuples", v.Len())
	}
	// Complementarity over the multi-relation schema (JD in the chase).
	if !s.Complementary(u.MustSet("E", "D"), u.MustSet("D", "M")) {
		t.Error("(ED, DM) not complementary")
	}
	if s.Complementary(u.MustSet("E", "M"), u.MustSet("D", "M")) {
		t.Error("(EM, DM) complementary")
	}
	y := s.MinimalComplement(u.MustSet("E", "D"))
	if !s.Complementary(u.MustSet("E", "D"), y) {
		t.Errorf("minimal complement %v wrong", y)
	}
}

func TestReconstruct(t *testing.T) {
	s, syms := edmDecomp(t)
	u := s.Universal().Universe()
	in := s.NewInstance()
	fill(t, in, syms, "EMP", []string{"ed", "toys"}, []string{"bob", "tools"})
	fill(t, in, syms, "DEPT", []string{"toys", "mo"}, []string{"tools", "tim"})
	j := in.Join()
	x, y := u.MustSet("E", "D"), u.MustSet("D", "M")
	got, err := s.Reconstruct(x, y, j.Project(x), j.Project(y))
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(j) {
		t.Error("reconstruction failed")
	}
}

func TestTranslateInsertUnsupported(t *testing.T) {
	s, _ := edmDecomp(t)
	u := s.Universal().Universe()
	err := s.TranslateInsert(u.MustSet("E", "D"), u.MustSet("D", "M"), nil, nil)
	if !errors.Is(err, ErrUpdatesUnsupported) {
		t.Errorf("err = %v", err)
	}
}

func TestSetRelation(t *testing.T) {
	s, syms := edmDecomp(t)
	u := s.Universal().Universe()
	in := s.NewInstance()
	good := relation.New(u.MustSet("E", "D"))
	good.InsertVals(syms.Const("x"), syms.Const("y"))
	if err := in.Set("EMP", good); err != nil {
		t.Fatal(err)
	}
	if err := in.Set("EMP", relation.New(u.MustSet("D", "M"))); err == nil {
		t.Error("wrong scheme accepted")
	}
	if err := in.Set("NOPE", good); err == nil {
		t.Error("unknown relation accepted")
	}
}

// TestQuickJoinProjectionRoundTrip: for consistent instances, projecting
// the join back onto the schemes recovers the component relations.
func TestQuickJoinProjectionRoundTrip(t *testing.T) {
	s, syms := edmDecomp(t)
	depts := []string{"toys", "tools", "books"}
	mgrs := []string{"mo", "tim", "ann"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		in := s.NewInstance()
		// Build a consistent instance: employees reference existing
		// departments, one manager per department.
		usedDepts := map[int]bool{}
		for i := 0; i < 1+rng.Intn(4); i++ {
			d := rng.Intn(3)
			usedDepts[d] = true
			fill(t, in, syms, "EMP", []string{"e" + string(rune('0'+i)), depts[d]})
		}
		for d := range usedDepts {
			fill(t, in, syms, "DEPT", []string{depts[d], mgrs[d]})
		}
		ok, _ := in.Consistent()
		if !ok {
			return false
		}
		j := in.Join()
		for _, n := range s.Names() {
			scheme, _ := s.Scheme(n)
			r, _ := in.Relation(n)
			if !j.Project(scheme).Equal(r) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
