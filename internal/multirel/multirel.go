// Package multirel models multi-relation databases as decompositions of
// a universal relation — the paper's §6 further-research item (3) in the
// form Theorem 1 already supports: the database consists of relations
// R₁…R_k over schemes S₁…S_k covering U, constrained by FDs plus the join
// dependency *[S₁, …, S_k] (the instance is consistent iff the relations
// join losslessly to a legal universal instance). Views are projections
// of the join; complementarity analysis goes through core.Complementary,
// whose chase handles the JD. Update translation under constant
// complement remains restricted to the FD-only single-relation setting of
// §3 (the paper's open problem) — the package surfaces that restriction
// rather than guessing semantics.
package multirel

import (
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
)

// Schema is a multi-relation schema: named relation schemes over a shared
// universe, FD constraints, and the implicit lossless-join dependency.
type Schema struct {
	universal *core.Schema
	names     []string
	schemes   []attr.Set
}

// New builds a multi-relation schema. Schemes must be nonempty, cover U,
// and names must be distinct. fds may be nil.
func New(u *attr.Universe, fds []dep.FD, names []string, schemes []attr.Set) (*Schema, error) {
	if len(names) != len(schemes) || len(schemes) == 0 {
		return nil, errors.New("multirel: need matching, nonempty names and schemes")
	}
	seen := map[string]bool{}
	for i, n := range names {
		if n == "" || seen[n] {
			return nil, fmt.Errorf("multirel: bad relation name %q", n)
		}
		seen[n] = true
		if schemes[i].Universe() != u {
			return nil, errors.New("multirel: scheme over a different universe")
		}
	}
	jd, err := dep.NewJD(schemes...)
	if err != nil {
		return nil, fmt.Errorf("multirel: %w", err)
	}
	sigma := dep.NewSet(u)
	for _, f := range fds {
		sigma.Add(f)
	}
	sigma.Add(jd)
	s, err := core.NewSchema(u, sigma)
	if err != nil {
		return nil, err
	}
	return &Schema{universal: s, names: names, schemes: schemes}, nil
}

// Universal returns the induced single-relation schema (U, FDs ∪ {*[S…]}).
func (s *Schema) Universal() *core.Schema { return s.universal }

// Names returns the relation names in declaration order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Scheme returns the attribute set of the named relation.
func (s *Schema) Scheme(name string) (attr.Set, bool) {
	for i, n := range s.names {
		if n == name {
			return s.schemes[i], true
		}
	}
	return attr.Set{}, false
}

// Instance is a multi-relation database state: one relation per scheme.
type Instance struct {
	schema *Schema
	rels   map[string]*relation.Relation
}

// NewInstance returns an empty instance (every relation empty).
func (s *Schema) NewInstance() *Instance {
	rels := make(map[string]*relation.Relation, len(s.names))
	for i, n := range s.names {
		rels[n] = relation.New(s.schemes[i])
	}
	return &Instance{schema: s, rels: rels}
}

// Relation returns the named component relation (shared; mutate via Set).
func (in *Instance) Relation(name string) (*relation.Relation, bool) {
	r, ok := in.rels[name]
	return r, ok
}

// Set replaces the named component relation. The attribute set must match
// the scheme.
func (in *Instance) Set(name string, r *relation.Relation) error {
	scheme, ok := in.schema.Scheme(name)
	if !ok {
		return fmt.Errorf("multirel: unknown relation %q", name)
	}
	if !r.Attrs().Equal(scheme) {
		return fmt.Errorf("multirel: relation %q must be over %v", name, scheme)
	}
	in.rels[name] = r
	return nil
}

// Join computes the universal instance R₁ ⋈ … ⋈ R_k.
func (in *Instance) Join() *relation.Relation {
	var out *relation.Relation
	for _, n := range in.schema.names {
		if out == nil {
			out = in.rels[n].Clone()
		} else {
			out = out.Join(in.rels[n])
		}
	}
	return out
}

// Consistent reports whether the instance is globally consistent: the
// join satisfies the FDs and every component is exactly the projection of
// the join (no dangling tuples), so the database represents a legal
// universal instance. On failure it names the offending check.
func (in *Instance) Consistent() (bool, string) {
	j := in.Join()
	if ok, bad := in.schema.universal.Legal(j); !ok {
		return false, fmt.Sprintf("join violates %v", bad)
	}
	for i, n := range in.schema.names {
		if !j.Project(in.schema.schemes[i]).Equal(in.rels[n]) {
			return false, fmt.Sprintf("relation %s has dangling tuples", n)
		}
	}
	return true, ""
}

// ViewInstance computes the projection view π_X of the joined database.
func (in *Instance) ViewInstance(x attr.Set) *relation.Relation {
	return in.Join().Project(x)
}

// Complementary reports whether π_X and π_Y (of the join) are
// complementary views of the multi-relation schema — Theorem 1 with the
// lossless-join dependency participating in the chase.
func (s *Schema) Complementary(x, y attr.Set) bool {
	return core.Complementary(s.universal, x, y)
}

// MinimalComplement computes a nonredundant complement of π_X over the
// multi-relation schema.
func (s *Schema) MinimalComplement(x attr.Set) attr.Set {
	return core.MinimalComplement(s.universal, x)
}

// Reconstruct rebuilds the universal instance from complementary view
// instances (join reconstruction, Theorem 1).
func (s *Schema) Reconstruct(x, y attr.Set, vx, vy *relation.Relation) (*relation.Relation, error) {
	return core.Reconstruct(s.universal, x, y, vx, vy)
}

// ErrUpdatesUnsupported is returned by TranslateInsert: update
// translation under constant complement with join dependencies present is
// the paper's open problem (§6 item 3 / the remark after Theorem 3 that
// Σ must consist of FDs).
var ErrUpdatesUnsupported = errors.New("multirel: update translation with join dependencies is the paper's open problem (§6)")

// TranslateInsert always fails with ErrUpdatesUnsupported; it exists so
// callers discover the restriction through the API rather than a core
// error about Σ's shape.
func (s *Schema) TranslateInsert(x, y attr.Set, v *relation.Relation, t relation.Tuple) error {
	return ErrUpdatesUnsupported
}
