// Package dep defines the dependency classes of Cosmadakis–Papadimitriou:
// functional dependencies (FDs), multivalued dependencies (MVDs), join
// dependencies (JDs) and the paper's explicit functional dependencies
// (EFDs), together with a small text syntax for them.
//
// Text syntax (attributes separated by spaces or commas):
//
//	A B -> C D     functional dependency
//	A B ->> C D    multivalued dependency *[AB∪CD-complement ...]; see MVD
//	*[A B; B C]    join dependency with components AB and BC
//	A B =>e C      explicit functional dependency
package dep

import (
	"fmt"
	"strings"

	"github.com/constcomp/constcomp/internal/attr"
)

// Kind discriminates dependency classes.
type Kind int

// Dependency kinds.
const (
	KindFD Kind = iota
	KindMVD
	KindJD
	KindEFD
)

func (k Kind) String() string {
	switch k {
	case KindFD:
		return "FD"
	case KindMVD:
		return "MVD"
	case KindJD:
		return "JD"
	case KindEFD:
		return "EFD"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Dependency is implemented by FD, MVD, JD and EFD.
type Dependency interface {
	Kind() Kind
	// Universe returns the attribute universe the dependency is over.
	Universe() *attr.Universe
	// String renders the dependency in the package's text syntax.
	String() string
	// Key is a canonical representation: two dependencies over the same
	// universe are semantically identical syntax iff keys are equal.
	Key() string
}

// FD is a functional dependency From → To.
type FD struct {
	From, To attr.Set
}

// NewFD builds an FD, validating that both sides share a universe.
func NewFD(from, to attr.Set) FD {
	if from.Universe() != to.Universe() {
		panic("dep: FD sides over different universes")
	}
	return FD{From: from, To: to}
}

// Kind returns KindFD.
func (f FD) Kind() Kind { return KindFD }

// Universe returns the FD's attribute universe.
func (f FD) Universe() *attr.Universe { return f.From.Universe() }

func (f FD) String() string {
	return f.From.String() + " -> " + f.To.String()
}

// Key implements Dependency.
func (f FD) Key() string { return "F" + f.From.Key() + "|" + f.To.Key() }

// IsTrivial reports whether To ⊆ From, i.e. the FD holds in every relation.
func (f FD) IsTrivial() bool { return f.To.SubsetOf(f.From) }

// Split rewrites the FD into the equivalent set of FDs with single-attribute
// right-hand sides, as assumed throughout §3 of the paper.
func (f FD) Split() []FD {
	out := make([]FD, 0, f.To.Len())
	f.To.Each(func(a attr.ID) bool {
		out = append(out, FD{From: f.From, To: f.From.Universe().Empty().With(a)})
		return true
	})
	return out
}

// MVD is a multivalued dependency X →→ Y over universe U, equivalent to the
// join dependency *[X∪Y, X∪(U−Y)].
type MVD struct {
	From, To attr.Set
}

// NewMVD builds an MVD, validating that both sides share a universe.
func NewMVD(from, to attr.Set) MVD {
	if from.Universe() != to.Universe() {
		panic("dep: MVD sides over different universes")
	}
	return MVD{From: from, To: to}
}

// Kind returns KindMVD.
func (m MVD) Kind() Kind { return KindMVD }

// Universe returns the MVD's attribute universe.
func (m MVD) Universe() *attr.Universe { return m.From.Universe() }

func (m MVD) String() string {
	return m.From.String() + " ->> " + m.To.String()
}

// Key implements Dependency.
func (m MVD) Key() string {
	// Canonicalize: X →→ Y ≡ X →→ (Y − X) ≡ X →→ (U − X − Y).
	u := m.Universe()
	y := m.To.Diff(m.From)
	z := u.All().Diff(m.From).Diff(y)
	a, b := y.Key(), z.Key()
	if b < a {
		a, b = b, a
	}
	return "M" + m.From.Key() + "|" + a + "|" + b
}

// IsTrivial reports whether the MVD holds in every relation over U: Y ⊆ X or
// X ∪ Y = U.
func (m MVD) IsTrivial() bool {
	return m.To.SubsetOf(m.From) || m.From.Union(m.To).Equal(m.Universe().All())
}

// JD returns the equivalent binary join dependency *[X∪Y, X∪(U−Y)].
func (m MVD) JD() JD {
	u := m.Universe()
	left := m.From.Union(m.To)
	right := m.From.Union(u.All().Diff(m.To))
	return JD{Components: []attr.Set{left, right}}
}

// JD is a join dependency *[R1, …, Rq]: every legal instance is the join of
// its projections onto the components. Components must cover U.
type JD struct {
	Components []attr.Set
}

// NewJD builds a JD, validating that components are nonempty, share a
// universe and cover it.
func NewJD(components ...attr.Set) (JD, error) {
	if len(components) == 0 {
		return JD{}, fmt.Errorf("dep: JD with no components")
	}
	u := components[0].Universe()
	cover := u.Empty()
	for _, c := range components {
		if c.Universe() != u {
			return JD{}, fmt.Errorf("dep: JD components over different universes")
		}
		cover = cover.Union(c)
	}
	if !cover.Equal(u.All()) {
		return JD{}, fmt.Errorf("dep: JD components do not cover the universe (missing %v)", u.All().Diff(cover))
	}
	return JD{Components: components}, nil
}

// MustJD is NewJD, panicking on error.
func MustJD(components ...attr.Set) JD {
	j, err := NewJD(components...)
	if err != nil {
		panic(err)
	}
	return j
}

// Kind returns KindJD.
func (j JD) Kind() Kind { return KindJD }

// Universe returns the JD's attribute universe.
func (j JD) Universe() *attr.Universe { return j.Components[0].Universe() }

func (j JD) String() string {
	parts := make([]string, len(j.Components))
	for i, c := range j.Components {
		parts[i] = c.String()
	}
	return "*[" + strings.Join(parts, "; ") + "]"
}

// Key implements Dependency.
func (j JD) Key() string {
	keys := make([]string, len(j.Components))
	for i, c := range j.Components {
		keys[i] = c.Key()
	}
	// Order-insensitive.
	for i := range keys {
		for k := i + 1; k < len(keys); k++ {
			if keys[k] < keys[i] {
				keys[i], keys[k] = keys[k], keys[i]
			}
		}
	}
	return "J" + strings.Join(keys, "|")
}

// Binary reports whether the JD has exactly two components, i.e. is an MVD
// in JD clothing.
func (j JD) Binary() bool { return len(j.Components) == 2 }

// MVDs returns the set M(j) of MVDs implied by j by partitioning its
// components in two, as in the proof of Theorem 1: for every bipartition
// (S1, S2) of components, the MVD *[∪S1, ∪S2], rendered as ∪S1∩∪S2 →→ ∪S1.
func (j JD) MVDs() []MVD {
	u := j.Universe()
	q := len(j.Components)
	var out []MVD
	// Enumerate nonempty proper subsets; fix component 0 in S1 to halve work.
	for mask := 0; mask < 1<<uint(q-1); mask++ {
		s1 := j.Components[0]
		s2 := u.Empty()
		for i := 1; i < q; i++ {
			if mask&(1<<uint(i-1)) != 0 {
				s1 = s1.Union(j.Components[i])
			} else {
				s2 = s2.Union(j.Components[i])
			}
		}
		if s2.IsEmpty() {
			continue
		}
		out = append(out, MVD{From: s1.Intersect(s2), To: s1})
	}
	return out
}

// EFD is an explicit functional dependency X →e Y (§5): there is an
// instance-independent witness function f with π_XY(R) = f(π_X(R)) for every
// legal R.
type EFD struct {
	From, To attr.Set
}

// NewEFD builds an EFD, validating that both sides share a universe.
func NewEFD(from, to attr.Set) EFD {
	if from.Universe() != to.Universe() {
		panic("dep: EFD sides over different universes")
	}
	return EFD{From: from, To: to}
}

// Kind returns KindEFD.
func (e EFD) Kind() Kind { return KindEFD }

// Universe returns the EFD's attribute universe.
func (e EFD) Universe() *attr.Universe { return e.From.Universe() }

func (e EFD) String() string {
	return e.From.String() + " =>e " + e.To.String()
}

// Key implements Dependency.
func (e EFD) Key() string { return "E" + e.From.Key() + "|" + e.To.Key() }

// FD returns the ordinary functional dependency underlying the EFD: every
// EFD X →e Y implies the FD X → Y (the witness function is in particular a
// many-one mapping).
func (e EFD) FD() FD { return FD{From: e.From, To: e.To} }

// Set is a finite set Σ of dependencies over one universe, the integrity
// constraints of a schema.
type Set struct {
	u    *attr.Universe
	deps []Dependency
	keys map[string]bool
}

// NewSet returns an empty dependency set over u.
func NewSet(u *attr.Universe) *Set {
	return &Set{u: u, keys: make(map[string]bool)}
}

// Universe returns the set's attribute universe.
func (s *Set) Universe() *attr.Universe { return s.u }

// Add inserts d, ignoring syntactic duplicates. It panics if d is over a
// different universe.
func (s *Set) Add(deps ...Dependency) *Set {
	for _, d := range deps {
		if d.Universe() != s.u {
			panic("dep: adding dependency over a different universe")
		}
		k := d.Key()
		if s.keys[k] {
			continue
		}
		s.keys[k] = true
		s.deps = append(s.deps, d)
	}
	return s
}

// All returns the dependencies in insertion order. The slice is shared;
// callers must not modify it.
func (s *Set) All() []Dependency { return s.deps }

// Len reports the number of dependencies.
func (s *Set) Len() int { return len(s.deps) }

// FDs returns the functional dependencies in Σ, in order.
func (s *Set) FDs() []FD {
	var out []FD
	for _, d := range s.deps {
		if f, ok := d.(FD); ok {
			out = append(out, f)
		}
	}
	return out
}

// JDs returns the join dependencies in Σ, with MVDs rewritten as binary JDs.
func (s *Set) JDs() []JD {
	var out []JD
	for _, d := range s.deps {
		switch x := d.(type) {
		case JD:
			out = append(out, x)
		case MVD:
			out = append(out, x.JD())
		}
	}
	return out
}

// MVDs returns the multivalued dependencies in Σ, in order.
func (s *Set) MVDs() []MVD {
	var out []MVD
	for _, d := range s.deps {
		if m, ok := d.(MVD); ok {
			out = append(out, m)
		}
	}
	return out
}

// EFDs returns the explicit functional dependencies in Σ, in order.
func (s *Set) EFDs() []EFD {
	var out []EFD
	for _, d := range s.deps {
		if e, ok := d.(EFD); ok {
			out = append(out, e)
		}
	}
	return out
}

// HasJDs reports whether Σ contains any JD or MVD.
func (s *Set) HasJDs() bool {
	for _, d := range s.deps {
		if d.Kind() == KindJD || d.Kind() == KindMVD {
			return true
		}
	}
	return false
}

// HasEFDs reports whether Σ contains any EFD.
func (s *Set) HasEFDs() bool {
	for _, d := range s.deps {
		if d.Kind() == KindEFD {
			return true
		}
	}
	return false
}

// SplitFDs returns the FDs of Σ rewritten to single-attribute right-hand
// sides with trivial FDs dropped, as assumed by the algorithms of §3.
func (s *Set) SplitFDs() []FD {
	var out []FD
	for _, f := range s.FDs() {
		for _, g := range f.Split() {
			if !g.IsTrivial() {
				out = append(out, g)
			}
		}
	}
	return out
}

// WithFD returns a copy of Σ with the EFDs replaced by their underlying FDs
// (the set Σ_F ∪ Σ' of Proposition 2).
func (s *Set) WithFD() *Set {
	out := NewSet(s.u)
	for _, d := range s.deps {
		if e, ok := d.(EFD); ok {
			out.Add(e.FD())
		} else {
			out.Add(d)
		}
	}
	return out
}

// Clone returns a copy of Σ sharing no mutable state.
func (s *Set) Clone() *Set {
	out := NewSet(s.u)
	out.Add(s.deps...)
	return out
}

// String renders Σ one dependency per line.
func (s *Set) String() string {
	lines := make([]string, len(s.deps))
	for i, d := range s.deps {
		lines[i] = d.String()
	}
	return strings.Join(lines, "\n")
}

// Parse parses one dependency in the package text syntax over u.
func Parse(u *attr.Universe, text string) (Dependency, error) {
	t := strings.TrimSpace(text)
	switch {
	case strings.HasPrefix(t, "*["):
		if !strings.HasSuffix(t, "]") {
			return nil, fmt.Errorf("dep: JD %q missing closing bracket", text)
		}
		body := t[2 : len(t)-1]
		parts := strings.Split(body, ";")
		comps := make([]attr.Set, 0, len(parts))
		for _, p := range parts {
			c, err := u.ParseSet(p)
			if err != nil {
				return nil, fmt.Errorf("dep: JD %q: %w", text, err)
			}
			comps = append(comps, c)
		}
		return NewJD(comps...)
	case strings.Contains(t, "=>e"):
		return parseBinary(u, t, "=>e", func(a, b attr.Set) Dependency { return NewEFD(a, b) })
	case strings.Contains(t, "->>"):
		return parseBinary(u, t, "->>", func(a, b attr.Set) Dependency { return NewMVD(a, b) })
	case strings.Contains(t, "->"):
		return parseBinary(u, t, "->", func(a, b attr.Set) Dependency { return NewFD(a, b) })
	}
	return nil, fmt.Errorf("dep: cannot parse %q", text)
}

func parseBinary(u *attr.Universe, text, op string, mk func(a, b attr.Set) Dependency) (Dependency, error) {
	i := strings.Index(text, op)
	lhs, err := u.ParseSet(text[:i])
	if err != nil {
		return nil, fmt.Errorf("dep: %q lhs: %w", text, err)
	}
	rhs, err := u.ParseSet(text[i+len(op):])
	if err != nil {
		return nil, fmt.Errorf("dep: %q rhs: %w", text, err)
	}
	return mk(lhs, rhs), nil
}

// ParseSet parses a newline- or semicolon-free list of dependencies, one per
// line, skipping blank lines and lines starting with '#'.
func ParseSet(u *attr.Universe, text string) (*Set, error) {
	s := NewSet(u)
	for ln, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		d, err := Parse(u, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		s.Add(d)
	}
	return s, nil
}

// MustParseSet is ParseSet, panicking on error.
func MustParseSet(u *attr.Universe, text string) *Set {
	s, err := ParseSet(u, text)
	if err != nil {
		panic(err)
	}
	return s
}
