package dep

import (
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
)

// FuzzParse checks that the dependency parser never panics and that
// anything it accepts round-trips through String back to a semantically
// identical dependency. Run the seeds with `go test`; fuzz with
// `go test -fuzz=FuzzParse ./internal/dep`.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"E -> D",
		"E,D -> M",
		"E ->> D",
		"*[E D; D M]",
		"E D =>e M",
		"->",
		"-> E",
		"E ->",
		"*[",
		"*[]",
		"*[;]",
		"=>e",
		"E =>e ->> D",
		"E - > D",
		"E —> D",
		"E \t\n-> D",
		"E -> D -> M",
		"E ->>> D",
	} {
		f.Add(seed)
	}
	u := attr.MustUniverse("E", "D", "M")
	f.Fuzz(func(t *testing.T, input string) {
		d, err := Parse(u, input)
		if err != nil {
			return
		}
		// Round trip: the printed form must reparse to the same Key.
		d2, err := Parse(u, d.String())
		if err != nil {
			t.Fatalf("round trip of %q failed: %v", d.String(), err)
		}
		if d.Key() != d2.Key() {
			t.Fatalf("round trip changed %q -> %q", d.String(), d2.String())
		}
	})
}

// FuzzParseSet exercises multi-line parsing.
func FuzzParseSet(f *testing.F) {
	f.Add("E -> D\nD -> M\n")
	f.Add("# comment\n\nE ->> D")
	f.Add("E -> D\ngarbage")
	u := attr.MustUniverse("E", "D", "M")
	f.Fuzz(func(t *testing.T, input string) {
		s, err := ParseSet(u, input)
		if err != nil {
			return
		}
		// Reparsing the printed set succeeds and preserves count.
		s2, err := ParseSet(u, s.String())
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if s.Len() != s2.Len() {
			t.Fatalf("round trip changed size %d -> %d", s.Len(), s2.Len())
		}
	})
}
