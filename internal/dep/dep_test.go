package dep

import (
	"strings"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
)

func edm() *attr.Universe { return attr.MustUniverse("E", "D", "M") }

func TestFDBasics(t *testing.T) {
	u := edm()
	f := NewFD(u.MustSet("E"), u.MustSet("D"))
	if f.Kind() != KindFD {
		t.Error("Kind")
	}
	if f.String() != "E -> D" {
		t.Errorf("String = %q", f.String())
	}
	if f.IsTrivial() {
		t.Error("E->D reported trivial")
	}
	if !NewFD(u.MustSet("E", "D"), u.MustSet("D")).IsTrivial() {
		t.Error("ED->D not trivial")
	}
}

func TestFDSplit(t *testing.T) {
	u := edm()
	f := NewFD(u.MustSet("E"), u.MustSet("D", "M"))
	parts := f.Split()
	if len(parts) != 2 {
		t.Fatalf("Split returned %d FDs", len(parts))
	}
	want := map[string]bool{"E -> D": true, "E -> M": true}
	for _, p := range parts {
		if !want[p.String()] {
			t.Errorf("unexpected split FD %q", p)
		}
	}
}

func TestMVDBasics(t *testing.T) {
	u := edm()
	m := NewMVD(u.MustSet("E"), u.MustSet("D"))
	if m.Kind() != KindMVD {
		t.Error("Kind")
	}
	if m.String() != "E ->> D" {
		t.Errorf("String = %q", m.String())
	}
	j := m.JD()
	if !j.Binary() {
		t.Error("MVD.JD not binary")
	}
	if j.String() != "*[E D; E M]" {
		t.Errorf("JD = %q", j.String())
	}
}

func TestMVDTrivial(t *testing.T) {
	u := edm()
	if !NewMVD(u.MustSet("E", "D"), u.MustSet("D")).IsTrivial() {
		t.Error("Y⊆X not trivial")
	}
	if !NewMVD(u.MustSet("E"), u.MustSet("D", "M")).IsTrivial() {
		t.Error("X∪Y=U not trivial")
	}
	if NewMVD(u.MustSet("E"), u.MustSet("D")).IsTrivial() {
		t.Error("E->>D reported trivial")
	}
}

func TestMVDKeyCanonical(t *testing.T) {
	u := edm()
	// X →→ Y and X →→ (U−X−Y) are the same dependency.
	m1 := NewMVD(u.MustSet("E"), u.MustSet("D"))
	m2 := NewMVD(u.MustSet("E"), u.MustSet("M"))
	if m1.Key() != m2.Key() {
		t.Error("complementary MVDs have distinct keys")
	}
	// Adding X into Y does not change the MVD.
	m3 := NewMVD(u.MustSet("E"), u.MustSet("E", "D"))
	if m1.Key() != m3.Key() {
		t.Error("X-augmented MVD has distinct key")
	}
	m4 := NewMVD(u.MustSet("D"), u.MustSet("E"))
	if m1.Key() == m4.Key() {
		t.Error("different MVDs share key")
	}
}

func TestJDValidation(t *testing.T) {
	u := edm()
	if _, err := NewJD(); err == nil {
		t.Error("empty JD accepted")
	}
	if _, err := NewJD(u.MustSet("E", "D"), u.MustSet("D")); err == nil {
		t.Error("non-covering JD accepted")
	}
	j, err := NewJD(u.MustSet("E", "D"), u.MustSet("D", "M"))
	if err != nil {
		t.Fatalf("NewJD: %v", err)
	}
	if j.Kind() != KindJD {
		t.Error("Kind")
	}
}

func TestJDKeyOrderInsensitive(t *testing.T) {
	u := edm()
	j1 := MustJD(u.MustSet("E", "D"), u.MustSet("D", "M"))
	j2 := MustJD(u.MustSet("D", "M"), u.MustSet("E", "D"))
	if j1.Key() != j2.Key() {
		t.Error("component order affects JD key")
	}
}

func TestJDMVDs(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D")
	j := MustJD(u.MustSet("A", "B"), u.MustSet("B", "C"), u.MustSet("C", "D"))
	mvds := j.MVDs()
	// 2^(q-1) - 1 = 3 bipartitions for q = 3.
	if len(mvds) != 3 {
		t.Fatalf("got %d MVDs, want 3", len(mvds))
	}
	seen := map[string]bool{}
	for _, m := range mvds {
		seen[m.Key()] = true
	}
	if len(seen) != 3 {
		t.Errorf("duplicate MVDs in M(j)")
	}
}

func TestEFD(t *testing.T) {
	u := attr.MustUniverse("Cost", "Rate", "Price")
	e := NewEFD(u.MustSet("Cost", "Rate"), u.MustSet("Price"))
	if e.Kind() != KindEFD {
		t.Error("Kind")
	}
	if e.String() != "Cost Rate =>e Price" {
		t.Errorf("String = %q", e.String())
	}
	f := e.FD()
	if f.String() != "Cost Rate -> Price" {
		t.Errorf("FD = %q", f.String())
	}
}

func TestSetAddDedup(t *testing.T) {
	u := edm()
	s := NewSet(u)
	f := NewFD(u.MustSet("E"), u.MustSet("D"))
	s.Add(f)
	s.Add(NewFD(u.MustSet("E"), u.MustSet("D")))
	if s.Len() != 1 {
		t.Errorf("Len = %d after duplicate add", s.Len())
	}
	s.Add(NewMVD(u.MustSet("E"), u.MustSet("D")))
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSetAccessors(t *testing.T) {
	u := edm()
	s := NewSet(u)
	s.Add(
		NewFD(u.MustSet("E"), u.MustSet("D", "M")),
		NewMVD(u.MustSet("D"), u.MustSet("E")),
		MustJD(u.MustSet("E", "D"), u.MustSet("D", "M")),
		NewEFD(u.MustSet("E", "D"), u.MustSet("M")),
	)
	if len(s.FDs()) != 1 || len(s.MVDs()) != 1 || len(s.EFDs()) != 1 {
		t.Error("accessor counts wrong")
	}
	// JDs includes the MVD as a binary JD.
	if len(s.JDs()) != 2 {
		t.Errorf("JDs = %d, want 2", len(s.JDs()))
	}
	if !s.HasJDs() || !s.HasEFDs() {
		t.Error("Has predicates wrong")
	}
	split := s.SplitFDs()
	if len(split) != 2 {
		t.Errorf("SplitFDs = %d, want 2", len(split))
	}
	for _, f := range split {
		if f.To.Len() != 1 {
			t.Errorf("split FD %v has wide RHS", f)
		}
	}
}

func TestWithFD(t *testing.T) {
	u := edm()
	s := NewSet(u)
	s.Add(NewEFD(u.MustSet("E"), u.MustSet("D")), NewFD(u.MustSet("D"), u.MustSet("M")))
	w := s.WithFD()
	if w.HasEFDs() {
		t.Error("WithFD kept EFDs")
	}
	if len(w.FDs()) != 2 {
		t.Errorf("WithFD FDs = %d, want 2", len(w.FDs()))
	}
	// Original untouched.
	if !s.HasEFDs() {
		t.Error("WithFD mutated receiver")
	}
}

func TestClone(t *testing.T) {
	u := edm()
	s := NewSet(u)
	s.Add(NewFD(u.MustSet("E"), u.MustSet("D")))
	c := s.Clone()
	c.Add(NewFD(u.MustSet("D"), u.MustSet("M")))
	if s.Len() != 1 || c.Len() != 2 {
		t.Error("Clone shares state")
	}
}

func TestParse(t *testing.T) {
	u := edm()
	for _, tc := range []struct {
		in, want string
	}{
		{"E -> D", "E -> D"},
		{"E,D -> M", "E D -> M"},
		{"E ->> D", "E ->> D"},
		{"*[E D; D M]", "*[E D; D M]"},
		{"E D =>e M", "E D =>e M"},
	} {
		d, err := Parse(u, tc.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", tc.in, err)
		}
		if d.String() != tc.want {
			t.Errorf("Parse(%q) = %q, want %q", tc.in, d, tc.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	u := edm()
	for _, in := range []string{
		"E",           // no operator
		"E -> Z",      // unknown attribute
		"Z -> E",      // unknown attribute lhs
		"*[E D; D",    // missing bracket
		"*[E; D]",     // does not cover U
		"*[E Q; D M]", // unknown attribute in JD
	} {
		if _, err := Parse(u, in); err == nil {
			t.Errorf("Parse(%q) succeeded", in)
		}
	}
}

func TestParseSetText(t *testing.T) {
	u := edm()
	s, err := ParseSet(u, `
# the classic EDM schema
E -> D
D -> M

E ->> D
`)
	if err != nil {
		t.Fatalf("ParseSet: %v", err)
	}
	if s.Len() != 3 {
		t.Fatalf("Len = %d, want 3", s.Len())
	}
	if !strings.Contains(s.String(), "E -> D") {
		t.Errorf("String = %q", s.String())
	}
}

func TestParseSetError(t *testing.T) {
	u := edm()
	if _, err := ParseSet(u, "E -> D\ngarbage\n"); err == nil {
		t.Error("ParseSet accepted garbage")
	}
}

func TestCrossUniversePanics(t *testing.T) {
	u1, u2 := edm(), edm()
	t.Run("fd", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		NewFD(u1.MustSet("E"), u2.MustSet("D"))
	})
	t.Run("set-add", func(t *testing.T) {
		defer func() {
			if recover() == nil {
				t.Error("no panic")
			}
		}()
		NewSet(u1).Add(NewFD(u2.MustSet("E"), u2.MustSet("D")))
	})
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{KindFD: "FD", KindMVD: "MVD", KindJD: "JD", KindEFD: "EFD", Kind(9): "Kind(9)"} {
		if k.String() != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), k, want)
		}
	}
}
