package workload

import (
	"errors"
	"fmt"
)

// Sentinel classes for parse failures. Every error the parsers in this
// package return wraps exactly one of these, so callers branch with
// errors.Is instead of matching message text.
var (
	// ErrEmptyInput marks input with no usable content: no attrs
	// declaration, no table header, or a blank tuple.
	ErrEmptyInput = errors.New("workload: empty input")
	// ErrArity marks a row or tuple with the wrong number of values.
	ErrArity = errors.New("workload: wrong arity")
	// ErrUnknownAttr marks a reference to an attribute outside the
	// universe.
	ErrUnknownAttr = errors.New("workload: unknown attribute")
	// ErrSyntax marks everything else that fails to parse.
	ErrSyntax = errors.New("workload: syntax error")
)

// ParseError locates a parse failure: the 1-based input line (0 when
// the input is not line-addressed, as in ParseTuple), the sentinel
// class, and the underlying cause, both reachable through errors.Is /
// errors.As.
type ParseError struct {
	Line  int
	Class error
	Msg   string
	Cause error
}

func (e *ParseError) Error() string {
	var b []byte
	if e.Line > 0 {
		b = fmt.Appendf(b, "line %d: ", e.Line)
	}
	b = append(b, e.Msg...)
	if e.Cause != nil {
		b = fmt.Appendf(b, ": %v", e.Cause)
	}
	return string(b)
}

func (e *ParseError) Unwrap() []error {
	if e.Cause != nil {
		return []error{e.Class, e.Cause}
	}
	return []error{e.Class}
}

func parseErr(line int, class error, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Class: class, Msg: fmt.Sprintf(format, args...)}
}

func parseWrap(line int, class error, cause error, format string, args ...any) *ParseError {
	return &ParseError{Line: line, Class: class, Msg: fmt.Sprintf(format, args...), Cause: cause}
}
