package workload

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestRandomFDsShape(t *testing.T) {
	e := NewEDM()
	rng := rand.New(rand.NewSource(1))
	fds := RandomFDs(e.Schema.Universe(), rng, 5)
	if len(fds) != 5 {
		t.Fatalf("got %d FDs", len(fds))
	}
	for _, f := range fds {
		if f.From.IsEmpty() || f.To.IsEmpty() {
			t.Errorf("degenerate FD %v", f)
		}
		if f.IsTrivial() {
			t.Errorf("trivial FD %v", f)
		}
	}
}

func TestQuickRandomLegalInstanceIsLegal(t *testing.T) {
	e := NewEDM()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		syms := value.NewSymbols()
		r := RandomLegalInstance(e.Schema, syms, rng, 20, 4)
		ok, _ := e.Schema.Legal(r)
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestEDMFixture(t *testing.T) {
	e := NewEDM()
	if !core.Complementary(e.Schema, e.ED, e.DM) {
		t.Error("ED/DM not complementary")
	}
	if !core.Complementary(e.Schema, e.ED, e.EM) {
		t.Error("ED/EM not complementary")
	}
	r := e.Instance(10, 3)
	if r.Len() != 10 {
		t.Fatalf("instance has %d tuples", r.Len())
	}
	if ok, bad := e.Schema.Legal(r); !ok {
		t.Fatalf("EDM instance violates %v", bad)
	}
	v := e.ViewInstance(10, 3)
	if !v.Attrs().Equal(e.ED) {
		t.Error("view attrs wrong")
	}
	if v.Len() != 10 {
		t.Errorf("view has %d tuples", v.Len())
	}
}

func TestEDMNewEmployeeTupleTranslatable(t *testing.T) {
	e := NewEDM()
	p := core.MustPair(e.Schema, e.ED, e.DM)
	v := e.ViewInstance(12, 4)
	tup := e.NewEmployeeTuple("zoe", 2)
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("EDM insert not translatable: %+v", d)
	}
}

func TestChainFixture(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{4, 2}, {6, 3}, {8, 4}} {
		c := NewChain(tc.w, tc.h)
		if c.X.Len() != tc.h {
			t.Fatalf("w=%d h=%d: |X| = %d", tc.w, tc.h, c.X.Len())
		}
		if !core.Complementary(c.Schema, c.X, c.Y) {
			t.Fatalf("w=%d h=%d: X,Y not complementary", tc.w, tc.h)
		}
		if c.X.Intersect(c.Y).Len() != 1 {
			t.Fatalf("w=%d h=%d: pivot not single", tc.w, tc.h)
		}
	}
}

func TestChainViewSatisfiesProjectedFDs(t *testing.T) {
	c := NewChain(6, 3)
	for _, n := range []int{1, 2, 7, 16, 33} {
		v := c.ViewInstance(n)
		if v.Len() != n {
			t.Fatalf("n=%d: view has %d tuples", n, v.Len())
		}
		// Every FD of Σ whose attributes lie in X must hold in the view.
		for _, f := range c.Schema.Sigma().FDs() {
			if f.From.Union(f.To).SubsetOf(c.X) && !v.SatisfiesFD(f) {
				t.Fatalf("n=%d: view violates %v", n, f)
			}
		}
	}
}

func TestChainInsertTranslatable(t *testing.T) {
	c := NewChain(6, 3)
	p := core.MustPair(c.Schema, c.X, c.Y)
	for _, n := range []int{4, 16, 64} {
		v := c.ViewInstance(n)
		tup := c.InsertTuple(n)
		if v.Contains(tup) {
			t.Fatalf("n=%d: insert tuple already present", n)
		}
		d, err := p.DecideInsert(v, tup)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Translatable {
			t.Fatalf("n=%d: chain insert not translatable: %+v", n, d)
		}
	}
}

func TestChainValidation(t *testing.T) {
	for _, tc := range []struct{ w, h int }{{3, 1}, {3, 3}, {2, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewChain(%d, %d) did not panic", tc.w, tc.h)
				}
			}()
			NewChain(tc.w, tc.h)
		}()
	}
}

func TestGroupSizeDivisibility(t *testing.T) {
	for n := 2; n <= 257; n += 17 {
		prev := 0
		for j := 1; j < 8; j++ {
			g := groupSize(n, j)
			if g < 2 {
				t.Fatalf("groupSize(%d,%d) = %d < 2", n, j, g)
			}
			if prev > 0 && prev%g != 0 {
				t.Fatalf("groupSize(%d,%d)=%d does not divide previous %d", n, j, g, prev)
			}
			prev = g
		}
	}
}

func TestRandomLegalInstanceRespectsDomain(t *testing.T) {
	e := NewEDM()
	syms := value.NewSymbols()
	rng := rand.New(rand.NewSource(3))
	r := RandomLegalInstance(e.Schema, syms, rng, 50, 3)
	if r.Len() == 0 {
		t.Fatal("empty instance")
	}
	for _, tp := range r.Tuples() {
		for _, v := range tp {
			if v.IsNull() {
				t.Fatal("null in generated instance")
			}
		}
	}
	_ = relation.Tuple{}
}
