// Package workload synthesizes schemas and legal instances for tests,
// experiments and benchmarks: random FD sets, random legal instances
// (rejection-sampled against Σ), the classic Employee–Department–Manager
// family the paper's §2 discussion uses, and parameterized scaling
// families for the complexity experiments.
package workload

import (
	"fmt"
	"math/rand"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// RandomFDs draws k random nontrivial FDs over u, with LHS/RHS densities
// tuned to produce interesting (neither empty nor total) closures.
func RandomFDs(u *attr.Universe, rng *rand.Rand, k int) []dep.FD {
	out := make([]dep.FD, 0, k)
	for len(out) < k {
		lhs, rhs := u.Empty(), u.Empty()
		for a := 0; a < u.Size(); a++ {
			switch rng.Intn(4) {
			case 0:
				lhs = lhs.With(attr.ID(a))
			case 1:
				rhs = rhs.With(attr.ID(a))
			}
		}
		rhs = rhs.Diff(lhs)
		if lhs.IsEmpty() || rhs.IsEmpty() {
			continue
		}
		out = append(out, dep.NewFD(lhs, rhs))
	}
	return out
}

// RandomLegalInstance builds a relation over U with up to n tuples drawn
// from a domain of the given size per column, satisfying Σ by rejection:
// tuples that would violate Σ are dropped. The result may have fewer than
// n tuples.
func RandomLegalInstance(s *core.Schema, syms *value.Symbols, rng *rand.Rand, n, domain int) *relation.Relation {
	u := s.Universe()
	vals := syms.Ints(domain)
	r := relation.New(u.All())
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, u.Size())
		for c := range t {
			t[c] = vals[rng.Intn(domain)]
		}
		if !r.Insert(t) {
			continue
		}
		if ok, _ := r.SatisfiesAll(s.Sigma()); !ok {
			r.Delete(t)
		}
	}
	return r
}

// EDM is the Employee–Department–Manager fixture of the paper's §2:
// U = {E, D, M}, Σ = {E → D, D → M}. The decomposition X = ED, Y = DM is
// complementary (D is a key of DM) although not independent in Rissanen's
// sense, and X = ED, Y = EM is also complementary.
type EDM struct {
	Schema *core.Schema
	Syms   *value.Symbols
	// ED and DM are the canonical complementary pair.
	ED, DM attr.Set
	// EM is the alternative complement of ED.
	EM attr.Set
}

// NewEDM constructs the fixture.
func NewEDM() *EDM {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	return &EDM{
		Schema: core.MustSchema(u, sigma),
		Syms:   value.NewSymbols(),
		ED:     u.MustSet("E", "D"),
		DM:     u.MustSet("D", "M"),
		EM:     u.MustSet("E", "M"),
	}
}

// Instance builds a legal EDM database with nEmp employees spread over
// nDept departments (each department has one manager). Deterministic.
func (e *EDM) Instance(nEmp, nDept int) *relation.Relation {
	u := e.Schema.Universe()
	r := relation.New(u.All())
	for i := 0; i < nEmp; i++ {
		d := i % nDept
		t := make(relation.Tuple, 3)
		t[mustCol(u, "E")] = e.Syms.Const(fmt.Sprintf("emp%d", i))
		t[mustCol(u, "D")] = e.Syms.Const(fmt.Sprintf("dept%d", d))
		t[mustCol(u, "M")] = e.Syms.Const(fmt.Sprintf("mgr%d", d))
		r.Insert(t)
	}
	return r
}

// ViewInstance builds the ED view of Instance(nEmp, nDept) directly.
func (e *EDM) ViewInstance(nEmp, nDept int) *relation.Relation {
	return e.Instance(nEmp, nDept).Project(e.ED)
}

// NewEmployeeTuple builds an (E, D) view tuple for inserting employee name
// into department d.
func (e *EDM) NewEmployeeTuple(name string, dept int) relation.Tuple {
	u := e.Schema.Universe()
	t := make(relation.Tuple, 2)
	// ED view columns are in ascending attribute order: E then D.
	eCol, dCol := 0, 1
	if mustCol(u, "E") > mustCol(u, "D") {
		eCol, dCol = 1, 0
	}
	t[eCol] = e.Syms.Const(name)
	t[dCol] = e.Syms.Const(fmt.Sprintf("dept%d", dept))
	return t
}

func mustCol(u *attr.Universe, name string) int {
	id, ok := u.Lookup(name)
	if !ok {
		panic(name)
	}
	return int(id)
}

// Chain builds the scaling family used by the complexity experiments:
// U = {A₀ … A_{w-1}}, Σ = {A₀→A₁, A₁→A₂, …}, view X = first h attributes,
// complement Y = X∩Y-pivot ∪ rest. The chained FDs force long chase
// derivations.
type Chain struct {
	Schema *core.Schema
	Syms   *value.Symbols
	X, Y   attr.Set
}

// NewChain builds a chain schema of width w with the view covering the
// first h attributes (1 < h < w). The complement is A_{h-1} … A_{w-1}, so
// the shared part is the single pivot attribute A_{h-1}.
func NewChain(w, h int) *Chain {
	if h < 2 || h >= w {
		panic("workload: need 2 <= h < w")
	}
	names := make([]string, w)
	for i := range names {
		names[i] = fmt.Sprintf("A%02d", i)
	}
	u := attr.MustUniverse(names...)
	sigma := dep.NewSet(u)
	for i := 0; i+1 < w; i++ {
		sigma.Add(dep.NewFD(u.MustSet(names[i]), u.MustSet(names[i+1])))
	}
	x := u.Empty()
	for i := 0; i < h; i++ {
		x = x.With(attr.ID(i))
	}
	y := u.Empty()
	for i := h - 1; i < w; i++ {
		y = y.With(attr.ID(i))
	}
	return &Chain{Schema: core.MustSchema(u, sigma), Syms: value.NewSymbols(), X: x, Y: y}
}

// groupSize returns the number of distinct values of attribute j in a
// chain view of n rows: powers of two halving along the chain, so that
// each group size divides the previous one and the FDs A_j → A_{j+1} hold.
func groupSize(n, j int) int {
	l := 0
	for 1<<l < n {
		l++
	}
	l -= j
	if l < 1 {
		// Floor of two groups: keeps a constant fraction of the view in
		// the inserted tuple's pivot group, so the chase workload of the
		// complexity experiments scales with |V|.
		return 2
	}
	return 1 << l
}

// ViewInstance builds a view instance with n tuples: tuple i is unique in
// A₀ and has A_j = "v<j>_<i mod g_j>" for j ≥ 1, where the group sizes
// g_j halve along the chain so every FD holds. n must be positive.
func (c *Chain) ViewInstance(n int) *relation.Relation {
	v := relation.New(c.X)
	h := c.X.Len()
	for i := 0; i < n; i++ {
		t := make(relation.Tuple, h)
		t[0] = c.Syms.Const(fmt.Sprintf("v0_%d", i))
		for j := 1; j < h; j++ {
			t[j] = c.Syms.Const(fmt.Sprintf("v%d_%d", j, i%groupSize(n, j)))
		}
		v.Insert(t)
	}
	return v
}

// InsertTuple builds a fresh view tuple whose non-A₀ values match row 0 of
// ViewInstance(n), so condition (a) holds for the pivot attribute.
func (c *Chain) InsertTuple(n int) relation.Tuple {
	h := c.X.Len()
	t := make(relation.Tuple, h)
	t[0] = c.Syms.Const("fresh0")
	for j := 1; j < h; j++ {
		t[j] = c.Syms.Const(fmt.Sprintf("v%d_%d", j, 0))
	}
	return t
}

// BulkTuples synthesizes n width-w tuples with entries drawn uniformly
// from a domain of the given size, backed by a single slab allocation.
// Tuples may repeat when n approaches domain^w; insert-heavy benchmarks
// and the kernel equivalence oracles use them as raw material.
func BulkTuples(rng *rand.Rand, n, w, domain int) []relation.Tuple {
	out := make([]relation.Tuple, n)
	slab := make([]value.Value, n*w)
	for i := range out {
		t := slab[i*w : (i+1)*w : (i+1)*w]
		for c := range t {
			t[c] = value.Value(rng.Intn(domain))
		}
		out[i] = relation.Tuple(t)
	}
	return out
}
