package workload

import (
	"errors"
	"strings"
	"testing"

	"github.com/constcomp/constcomp/internal/value"
)

func TestParseSchemaBasic(t *testing.T) {
	s, err := ParseSchema(`
# EDM
attrs: E D M
E -> D
D -> M
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Universe().Size() != 3 {
		t.Fatalf("|U| = %d", s.Universe().Size())
	}
	if s.Sigma().Len() != 2 {
		t.Fatalf("|Σ| = %d", s.Sigma().Len())
	}
}

func TestParseSchemaAllDependencyKinds(t *testing.T) {
	s, err := ParseSchema(`
attrs: A B C
A -> B
A ->> B
*[A B; B C]
A B =>e C
`)
	if err != nil {
		t.Fatal(err)
	}
	if s.Sigma().Len() != 4 {
		t.Fatalf("|Σ| = %d", s.Sigma().Len())
	}
	if !s.Sigma().HasJDs() || !s.Sigma().HasEFDs() {
		t.Error("kinds lost in parsing")
	}
}

func TestParseSchemaErrors(t *testing.T) {
	for _, tc := range []string{
		"",                      // no attrs line
		"E -> D",                // dependency before attrs
		"attrs: E E",            // duplicate attribute
		"attrs: E D\nE -> Z",    // unknown attribute
		"attrs: E D\ngibberish", // unparsable line
	} {
		if _, err := ParseSchema(tc); err == nil {
			t.Errorf("ParseSchema(%q) succeeded", tc)
		}
	}
}

func TestParseDataBasic(t *testing.T) {
	s, err := ParseSchema("attrs: E D M\nE -> D")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	r, err := ParseData(s, syms, `
E D M
ed toys mo
flo toys mo
`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Width() != 3 {
		t.Fatalf("parsed %d×%d", r.Len(), r.Width())
	}
	if !r.Attrs().Equal(s.Universe().All()) {
		t.Error("attrs wrong")
	}
}

func TestParseDataSubsetHeader(t *testing.T) {
	s, err := ParseSchema("attrs: E D M")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	r, err := ParseData(s, syms, "E D\ned toys\n")
	if err != nil {
		t.Fatal(err)
	}
	if r.Width() != 2 {
		t.Fatalf("width = %d", r.Width())
	}
}

func TestParseDataHeaderOrderIndependent(t *testing.T) {
	// Header may list attributes in any order; values land in the right
	// columns.
	s, err := ParseSchema("attrs: E D M")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	r, err := ParseData(s, syms, "M E D\nmo ed toys\n")
	if err != nil {
		t.Fatal(err)
	}
	u := s.Universe()
	eID, _ := u.Lookup("E")
	if got := syms.Name(r.Tuple(0)[r.Col(eID)]); got != "ed" {
		t.Errorf("E column holds %q", got)
	}
}

func TestParseDataErrors(t *testing.T) {
	s, err := ParseSchema("attrs: E D")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	for _, tc := range []string{
		"",             // no header
		"E Z\nx y",     // unknown attribute
		"E E\nx y",     // duplicate header
		"E D\nonlyone", // arity mismatch
		"E D\nx y z",   // arity mismatch
	} {
		if _, err := ParseData(s, syms, tc); err == nil {
			t.Errorf("ParseData(%q) succeeded", strings.ReplaceAll(tc, "\n", "\\n"))
		}
	}
}

// TestParseSchemaErrorsTyped pins the error contract: every failure is
// a *ParseError carrying the offending line and wrapping the right
// sentinel.
func TestParseSchemaErrorsTyped(t *testing.T) {
	for _, tc := range []struct {
		name  string
		in    string
		class error
		line  int
	}{
		{"empty", "", ErrEmptyInput, 0},
		{"comments only", "# nothing\n\n# here\n", ErrEmptyInput, 0},
		{"attrs with no names", "attrs:", ErrEmptyInput, 1},
		{"dep before attrs", "E -> D", ErrSyntax, 1},
		{"duplicate attribute", "attrs: E E", ErrSyntax, 1},
		{"empty attribute name", "attrs: E D\n\ngibber", ErrSyntax, 3},
		{"unknown attr in dep", "attrs: E D\nE -> Z", ErrUnknownAttr, 2},
		{"unknown attr in JD", "attrs: E D\n*[E D; D Q]", ErrUnknownAttr, 2},
		{"unparsable dep", "attrs: E D\n# fine\nE <- D", ErrSyntax, 3},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseSchema(tc.in)
			if err == nil {
				t.Fatal("parse succeeded")
			}
			if !errors.Is(err, tc.class) {
				t.Errorf("error %v does not wrap %v", err, tc.class)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError", err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d", pe.Line, tc.line)
			}
		})
	}
}

func TestParseDataErrorsTyped(t *testing.T) {
	s, err := ParseSchema("attrs: E D")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	for _, tc := range []struct {
		name  string
		in    string
		class error
		line  int
	}{
		{"empty", "", ErrEmptyInput, 0},
		{"comments only", "# just\n# comments", ErrEmptyInput, 0},
		{"unknown attribute", "E Z\nx y", ErrUnknownAttr, 1},
		{"duplicate header", "E E\nx y", ErrSyntax, 1},
		{"row too short", "E D\nx y\nonlyone", ErrArity, 3},
		{"row too long", "E D\nx y z", ErrArity, 2},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseData(s, syms, tc.in)
			if err == nil {
				t.Fatal("parse succeeded")
			}
			if !errors.Is(err, tc.class) {
				t.Errorf("error %v does not wrap %v", err, tc.class)
			}
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("error %T is not a *ParseError", err)
			}
			if pe.Line != tc.line {
				t.Errorf("line = %d, want %d", pe.Line, tc.line)
			}
		})
	}
}

func TestParseTupleErrorsTyped(t *testing.T) {
	s, err := ParseSchema("attrs: E D")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	r, err := ParseData(s, syms, "E D\ned toys\n")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		in    string
		class error
	}{
		{"empty", "", ErrEmptyInput},
		{"whitespace only", "  \t ", ErrEmptyInput},
		{"too few", "justone", ErrArity},
		{"too many", "a b c", ErrArity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseTuple(r, syms, tc.in); !errors.Is(err, tc.class) {
				t.Errorf("ParseTuple(%q) = %v, want %v", tc.in, err, tc.class)
			}
		})
	}
}

func TestParseTuple(t *testing.T) {
	s, err := ParseSchema("attrs: E D")
	if err != nil {
		t.Fatal(err)
	}
	syms := value.NewSymbols()
	r, err := ParseData(s, syms, "E D\ned toys\n")
	if err != nil {
		t.Fatal(err)
	}
	tp, err := ParseTuple(r, syms, "flo tools")
	if err != nil {
		t.Fatal(err)
	}
	if len(tp) != 2 || syms.Name(tp[0]) != "flo" {
		t.Errorf("tuple = %v", tp)
	}
	if _, err := ParseTuple(r, syms, "justone"); err == nil {
		t.Error("arity mismatch accepted")
	}
}
