package workload

import (
	"errors"
	"strings"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// classify maps an underlying attr/dep error to this package's
// sentinels: unknown attribute keeps its identity, everything else is a
// syntax failure.
func classify(err error) error {
	if errors.Is(err, attr.ErrUnknown) {
		return ErrUnknownAttr
	}
	return ErrSyntax
}

// ParseSchema parses the schema text format used by the command-line
// tools:
//
//	attrs: E D M
//	E -> D
//	D -> M
//	# comments and blank lines are skipped
//
// The first non-comment line must declare the universe; the rest are
// dependencies in the internal/dep syntax. Failures are *ParseError
// values wrapping the package sentinels (ErrEmptyInput, ErrUnknownAttr,
// ErrSyntax) with the offending line number.
func ParseSchema(text string) (*core.Schema, error) {
	var u *attr.Universe
	var sigma *dep.Set
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if u == nil {
			if !strings.HasPrefix(line, "attrs:") {
				return nil, parseErr(ln+1, ErrSyntax, "expected %q before dependencies", "attrs: ...")
			}
			names := strings.Fields(strings.TrimPrefix(line, "attrs:"))
			if len(names) == 0 {
				return nil, parseErr(ln+1, ErrEmptyInput, "attrs declaration lists no attributes")
			}
			var err error
			u, err = attr.NewUniverse(names...)
			if err != nil {
				return nil, parseWrap(ln+1, ErrSyntax, err, "bad attrs declaration")
			}
			sigma = dep.NewSet(u)
			continue
		}
		d, err := dep.Parse(u, line)
		if err != nil {
			return nil, parseWrap(ln+1, classify(err), err, "bad dependency")
		}
		sigma.Add(d)
	}
	if u == nil {
		return nil, parseErr(0, ErrEmptyInput, "no attrs declaration found")
	}
	s, err := core.NewSchema(u, sigma)
	if err != nil {
		return nil, parseWrap(0, ErrSyntax, err, "bad schema")
	}
	return s, nil
}

// ParseData parses a whitespace-separated table: first line is the header
// (attribute names), following lines are rows. Attributes may be any
// subset of the schema's universe; the relation is over exactly the
// header's attributes. Failures are *ParseError values wrapping the
// package sentinels.
func ParseData(s *core.Schema, syms *value.Symbols, text string) (*relation.Relation, error) {
	u := s.Universe()
	var rel *relation.Relation
	var cols []int // header position -> relation column
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if rel == nil {
			set, err := u.Set(fields...)
			if err != nil {
				return nil, parseWrap(ln+1, classify(err), err, "bad header")
			}
			if set.Len() != len(fields) {
				return nil, parseErr(ln+1, ErrSyntax, "duplicate attribute in header")
			}
			rel = relation.New(set)
			cols = make([]int, len(fields))
			for i, name := range fields {
				id, _ := u.Lookup(name)
				cols[i] = rel.Col(id)
			}
			continue
		}
		if len(fields) != len(cols) {
			return nil, parseErr(ln+1, ErrArity, "%d values for %d columns", len(fields), len(cols))
		}
		t := make(relation.Tuple, len(cols))
		for i, f := range fields {
			t[cols[i]] = syms.Const(f)
		}
		rel.Insert(t)
	}
	if rel == nil {
		return nil, parseErr(0, ErrEmptyInput, "no header found")
	}
	return rel, nil
}

// ParseTuple parses a whitespace-separated tuple over the given relation's
// attributes, in header (ascending attribute) order. A blank input is
// ErrEmptyInput; a value-count mismatch is ErrArity.
func ParseTuple(r *relation.Relation, syms *value.Symbols, text string) (relation.Tuple, error) {
	fields := strings.Fields(text)
	if len(fields) == 0 && r.Width() != 0 {
		return nil, parseErr(0, ErrEmptyInput, "empty tuple for %d columns", r.Width())
	}
	if len(fields) != r.Width() {
		return nil, parseErr(0, ErrArity, "tuple has %d values, relation has %d columns", len(fields), r.Width())
	}
	t := make(relation.Tuple, len(fields))
	for i, f := range fields {
		t[i] = syms.Const(f)
	}
	return t, nil
}
