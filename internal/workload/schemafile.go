package workload

import (
	"fmt"
	"strings"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// ParseSchema parses the schema text format used by the command-line
// tools:
//
//	attrs: E D M
//	E -> D
//	D -> M
//	# comments and blank lines are skipped
//
// The first non-comment line must declare the universe; the rest are
// dependencies in the internal/dep syntax.
func ParseSchema(text string) (*core.Schema, error) {
	var u *attr.Universe
	var sigma *dep.Set
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if u == nil {
			if !strings.HasPrefix(line, "attrs:") {
				return nil, fmt.Errorf("line %d: expected \"attrs: ...\" before dependencies", ln+1)
			}
			names := strings.Fields(strings.TrimPrefix(line, "attrs:"))
			var err error
			u, err = attr.NewUniverse(names...)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			sigma = dep.NewSet(u)
			continue
		}
		d, err := dep.Parse(u, line)
		if err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
		sigma.Add(d)
	}
	if u == nil {
		return nil, fmt.Errorf("no attrs declaration found")
	}
	return core.NewSchema(u, sigma)
}

// ParseData parses a whitespace-separated table: first line is the header
// (attribute names), following lines are rows. Attributes may be any
// subset of the schema's universe; the relation is over exactly the
// header's attributes.
func ParseData(s *core.Schema, syms *value.Symbols, text string) (*relation.Relation, error) {
	u := s.Universe()
	var rel *relation.Relation
	var cols []int // header position -> relation column
	for ln, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		if rel == nil {
			set, err := u.Set(fields...)
			if err != nil {
				return nil, fmt.Errorf("line %d: %w", ln+1, err)
			}
			if set.Len() != len(fields) {
				return nil, fmt.Errorf("line %d: duplicate attribute in header", ln+1)
			}
			rel = relation.New(set)
			cols = make([]int, len(fields))
			for i, name := range fields {
				id, _ := u.Lookup(name)
				cols[i] = rel.Col(id)
			}
			continue
		}
		if len(fields) != len(cols) {
			return nil, fmt.Errorf("line %d: %d values for %d columns", ln+1, len(fields), len(cols))
		}
		t := make(relation.Tuple, len(cols))
		for i, f := range fields {
			t[cols[i]] = syms.Const(f)
		}
		rel.Insert(t)
	}
	if rel == nil {
		return nil, fmt.Errorf("no header found")
	}
	return rel, nil
}

// ParseTuple parses a whitespace-separated tuple over the given relation's
// attributes, in header (ascending attribute) order.
func ParseTuple(r *relation.Relation, syms *value.Symbols, text string) (relation.Tuple, error) {
	fields := strings.Fields(text)
	if len(fields) != r.Width() {
		return nil, fmt.Errorf("tuple has %d values, relation has %d columns", len(fields), r.Width())
	}
	t := make(relation.Tuple, len(fields))
	for i, f := range fields {
		t[i] = syms.Const(f)
	}
	return t, nil
}
