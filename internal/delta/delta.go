// Package delta represents relational updates as delta relations
// (Δ⁺, Δ⁻): the sets of tuples inserted into and deleted from an
// instance. The incremental decide/apply path in internal/core reasons
// about and applies these deltas so that update cost is proportional to
// |Δ|, not to the size of the instance (after Horn–Perera–Cheney,
// "Incremental Relational Lenses").
//
// A Delta is normalized when Plus and Minus are disjoint; Normalize
// cancels tuples that appear on both sides. The view-update
// translations produced by the core theorems are naturally normalized:
// an insert is pure Δ⁺, a Theorem-8 delete is pure Δ⁻, and a replace's
// doomed and added sets never overlap (t1 ≠ t2).
package delta

import (
	"fmt"
	"strings"

	"github.com/constcomp/constcomp/internal/relation"
)

// Delta is a pair of tuple sets over one relation layout: Minus is
// removed first, then Plus is inserted. Tuples are shared, not copied;
// callers must treat them as immutable (the same discipline as
// relation.Relation).
type Delta struct {
	Plus  []relation.Tuple
	Minus []relation.Tuple
}

// Insert returns the delta of a single-tuple insertion.
func Insert(t relation.Tuple) Delta { return Delta{Plus: []relation.Tuple{t}} }

// Delete returns the delta of a single-tuple deletion.
func Delete(t relation.Tuple) Delta { return Delta{Minus: []relation.Tuple{t}} }

// Replace returns the delta replacing t1 with t2.
func Replace(t1, t2 relation.Tuple) Delta {
	return Delta{Plus: []relation.Tuple{t2}, Minus: []relation.Tuple{t1}}
}

// Size is |Δ| = |Δ⁺| + |Δ⁻|, the budget-relevant measure of an update.
func (d Delta) Size() int { return len(d.Plus) + len(d.Minus) }

// Empty reports whether the delta is a no-op.
func (d Delta) Empty() bool { return len(d.Plus) == 0 && len(d.Minus) == 0 }

// AddPlus appends a tuple to Δ⁺.
func (d *Delta) AddPlus(t relation.Tuple) { d.Plus = append(d.Plus, t) }

// AddMinus appends a tuple to Δ⁻.
func (d *Delta) AddMinus(t relation.Tuple) { d.Minus = append(d.Minus, t) }

// Inverse returns the delta that undoes d (Δ⁺ and Δ⁻ swapped). Applying
// d then d.Inverse() to an instance that contained no Plus tuple and all
// Minus tuples restores it exactly.
func (d Delta) Inverse() Delta { return Delta{Plus: d.Minus, Minus: d.Plus} }

// Normalize cancels tuples present in both Δ⁺ and Δ⁻ (delete-then-
// reinsert is a no-op on sets) and drops duplicates within each side.
// The receiver is unchanged; the result shares surviving tuples.
func (d Delta) Normalize() Delta {
	plus := dedup(d.Plus)
	minus := dedup(d.Minus)
	var outPlus, outMinus []relation.Tuple
	for _, t := range plus {
		if !contains(minus, t) {
			outPlus = append(outPlus, t)
		}
	}
	for _, t := range minus {
		if !contains(plus, t) {
			outMinus = append(outMinus, t)
		}
	}
	return Delta{Plus: outPlus, Minus: outMinus}
}

// ApplyTo mutates r by the delta: Minus tuples are deleted, then Plus
// tuples inserted. It reports how many deletions and insertions actually
// changed the relation (a Minus tuple absent from r or a Plus tuple
// already present is a set-semantics no-op).
func (d Delta) ApplyTo(r *relation.Relation) (ins, del int) {
	for _, t := range d.Minus {
		if r.Delete(t) {
			del++
		}
	}
	for _, t := range d.Plus {
		if r.Insert(t) {
			ins++
		}
	}
	return ins, del
}

// Of computes the delta transforming from into to: Δ⁻ = from − to,
// Δ⁺ = to − from. Both relations must share a layout. The result is
// normalized by construction.
func Of(from, to *relation.Relation) Delta {
	var d Delta
	for _, t := range from.Tuples() {
		if !to.Contains(t) {
			d.Minus = append(d.Minus, t)
		}
	}
	for _, t := range to.Tuples() {
		if !from.Contains(t) {
			d.Plus = append(d.Plus, t)
		}
	}
	return d
}

// String renders the delta compactly for logs and test failures.
func (d Delta) String() string {
	var b strings.Builder
	b.WriteString("Δ{+")
	fmt.Fprintf(&b, "%d", len(d.Plus))
	b.WriteString(" -")
	fmt.Fprintf(&b, "%d", len(d.Minus))
	b.WriteString("}")
	return b.String()
}

func dedup(ts []relation.Tuple) []relation.Tuple {
	var out []relation.Tuple
	for _, t := range ts {
		if !contains(out, t) {
			out = append(out, t)
		}
	}
	return out
}

func contains(ts []relation.Tuple, t relation.Tuple) bool {
	for _, u := range ts {
		if u.Equal(t) {
			return true
		}
	}
	return false
}
