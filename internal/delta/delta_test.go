package delta

import (
	"math/rand"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func twoColUniverse(t *testing.T) *attr.Universe {
	t.Helper()
	return attr.MustUniverse("A", "B")
}

func TestConstructorsAndSize(t *testing.T) {
	t1 := relation.Tuple{1, 2}
	t2 := relation.Tuple{3, 4}
	if d := Insert(t1); d.Size() != 1 || len(d.Plus) != 1 || d.Empty() {
		t.Fatalf("Insert: %v", d)
	}
	if d := Delete(t1); d.Size() != 1 || len(d.Minus) != 1 {
		t.Fatalf("Delete: %v", d)
	}
	if d := Replace(t1, t2); d.Size() != 2 || !d.Plus[0].Equal(t2) || !d.Minus[0].Equal(t1) {
		t.Fatalf("Replace: %v", d)
	}
	if !(Delta{}).Empty() {
		t.Fatal("zero Delta should be Empty")
	}
	if got := Replace(t1, t2).String(); got != "Δ{+1 -1}" {
		t.Fatalf("String: %q", got)
	}
}

func TestApplyToAndInverse(t *testing.T) {
	u := twoColUniverse(t)
	r := relation.New(u.All())
	r.InsertVals(1, 1)
	r.InsertVals(2, 2)
	d := Delta{
		Plus:  []relation.Tuple{{3, 3}, {2, 2}}, // {2,2} already present
		Minus: []relation.Tuple{{1, 1}, {9, 9}}, // {9,9} absent
	}
	before := r.Clone()
	ins, del := d.ApplyTo(r)
	if ins != 1 || del != 1 {
		t.Fatalf("ApplyTo: ins=%d del=%d", ins, del)
	}
	if !r.Contains(relation.Tuple{3, 3}) || r.Contains(relation.Tuple{1, 1}) {
		t.Fatalf("ApplyTo result wrong")
	}
	// Inverse does not restore exactly here because {2,2} and {9,9}
	// were no-ops; on a clean delta it must round-trip.
	clean := Of(before, r)
	inv := clean.Inverse()
	inv.ApplyTo(r)
	if !r.Equal(before) {
		t.Fatalf("Inverse round-trip failed: %v vs %v", r.Len(), before.Len())
	}
}

func TestNormalize(t *testing.T) {
	a, b, c := relation.Tuple{1, 1}, relation.Tuple{2, 2}, relation.Tuple{3, 3}
	d := Delta{
		Plus:  []relation.Tuple{a, b, a}, // dup a
		Minus: []relation.Tuple{b, c},    // b cancels
	}
	n := d.Normalize()
	if len(n.Plus) != 1 || !n.Plus[0].Equal(a) {
		t.Fatalf("Plus: %v", n.Plus)
	}
	if len(n.Minus) != 1 || !n.Minus[0].Equal(c) {
		t.Fatalf("Minus: %v", n.Minus)
	}
	if !(Delta{Plus: []relation.Tuple{a}, Minus: []relation.Tuple{a}}).Normalize().Empty() {
		t.Fatal("full cancellation should yield empty delta")
	}
}

// TestOfRandom checks Of against ApplyTo: for random instance pairs,
// applying Of(from, to) to a clone of from must produce to, and the
// delta must be normalized (disjoint sides).
func TestOfRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	u := twoColUniverse(t)
	randRel := func() *relation.Relation {
		r := relation.New(u.All())
		for i := 0; i < 12; i++ {
			r.Insert(relation.Tuple{value.Value(rng.Intn(6)), value.Value(rng.Intn(6))})
		}
		return r
	}
	for trial := 0; trial < 50; trial++ {
		from, to := randRel(), randRel()
		d := Of(from, to)
		for _, p := range d.Plus {
			if contains(d.Minus, p) {
				t.Fatalf("trial %d: Of not normalized: %v in both sides", trial, p)
			}
		}
		got := from.Clone()
		d.ApplyTo(got)
		if !got.Equal(to) {
			t.Fatalf("trial %d: ApplyTo(Of(from,to)) != to (%s)", trial, d)
		}
		if Of(to, to).Size() != 0 {
			t.Fatalf("trial %d: Of(x,x) should be empty", trial)
		}
	}
}
