package chaos

// Sharded chaos: the same two promises the unsharded sweep checks —
// no acknowledged op is ever lost, and the final state matches a
// serial fault-free oracle — rechecked across a hash-partitioned
// multi-store (internal/shard), where a single op may span two shards
// and a power cut can land between the two-phase records.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/shard"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
)

// Mid-two-phase crash points a ShardSchedule can script.
const (
	// CrossCutIntent cuts between the intent records and the commit
	// record: both intents are durable, the commit record never lands,
	// and the txlog resets that would retire the intents fail too.
	// Recovery must presume abort — neither half applied, no orphaned
	// intent left behind.
	CrossCutIntent = "intent"
	// CrossCutCommit cuts after the commit record is durable but before
	// either half reaches its shard's journal. Recovery must redo both
	// halves: the op committed, the submitter's error notwithstanding.
	CrossCutCommit = "commit"
)

// ShardSchedule is one reproducible chaos scenario against a K-shard
// multi-store.
type ShardSchedule struct {
	Seed   uint64 `json:"seed"`
	Ops    int    `json:"ops"`
	Shards int    `json:"shards"`
	// Faults[k] holds shard k's journal faults, one per session epoch,
	// mirroring Schedule.Storage per shard. Crash flags are ignored
	// here: a power cut is whole-machine, and the sharded runner models
	// exactly one, at the end of every schedule.
	Faults [][]StorageFault `json:"faults,omitempty"`
	// CrossCut, when non-empty, drives one scripted cross-shard
	// replacement into the named crash point after the workload runs.
	CrossCut string `json:"cross_cut,omitempty"`
}

// GenerateSharded derives a randomized sharded schedule from a seed:
// zero to two journal faults per shard and, half the time, a scripted
// mid-two-phase cut. The same (seed, ops, shards) always yields the
// same schedule.
func GenerateSharded(seed uint64, ops, shards int) ShardSchedule {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x51ed2701))
	s := ShardSchedule{Seed: seed, Ops: ops, Shards: shards,
		Faults: make([][]StorageFault, shards)}
	for k := 0; k < shards; k++ {
		for i, nf := 0, rng.Intn(3); i < nf; i++ {
			f := StorageFault{At: 1 + rng.Intn(5)}
			switch rng.Intn(3) {
			case 0:
				f.Kind = WriteFault
			case 1:
				f.Kind = SyncFault
			default:
				f.Kind = TornWrite
				f.Keep = rng.Intn(40)
			}
			s.Faults[k] = append(s.Faults[k], f)
		}
	}
	switch rng.Intn(4) {
	case 0:
		s.CrossCut = CrossCutIntent
	case 1:
		s.CrossCut = CrossCutCommit
	}
	return s
}

// CutOutcome is the scripted mid-two-phase op's fate as the submitter
// saw it; what recovery made of it is in ShardReport.Resolved.
type CutOutcome struct {
	Old, New []string
	Xid      uint64
	Acked    bool
	Err      string
}

// ShardReport is the observable outcome of one sharded schedule run.
type ShardReport struct {
	// Per-op fates over the workload plus the scripted cut, if any.
	Acked    int
	Rejected int
	Shed     int
	Failed   int
	// CrossAcked counts acked ops that ran the two-phase protocol.
	CrossAcked int

	Resurrections int64
	Retries       int64
	Latched       bool

	Cut *CutOutcome
	// Resolved lists every in-doubt intent the post-crash recovery
	// settled from the txlogs.
	Resolved []shard.Resolution

	// FinalState is the canonical rendering of the recovered union of
	// the shard bases; SeqSum the total of the shard journal seqs.
	FinalState string
	SeqSum     uint64

	// Violation is empty when both invariants held.
	Violation string
}

// shardFixtureEmps sizes the sharded fixture: enough employees that a
// small ring almost surely gives every shard members of both
// departments, so both translatable and rejected ops occur everywhere.
const shardFixtureEmps = 24

// shardFixture is the §2 EDM schema over a wider instance than
// fixture(): employee emp<i> works in dept<i%2> under mgr<i%2>.
func shardFixture() (*core.Pair, *relation.Relation, *value.Symbols) {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < shardFixtureEmps; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	return pair, db, syms
}

// shardWorkload derives a deterministic op mix whose replaces change
// the employee name — and therefore, whenever the names hash to
// different ring arcs, cross shards: translatable inserts and deletes,
// key-moving and department-moving replaces, and rejections.
func shardWorkload(seed uint64, n int) []namedOp {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x2c5f1a3b))
	ops := make([]namedOp, 0, n)
	for i := 0; i < n; i++ {
		e := fmt.Sprintf("x%03d", rng.Intn(40))
		d := fmt.Sprintf("dept%d", rng.Intn(2))
		switch rng.Intn(10) {
		case 0, 1, 2, 3:
			ops = append(ops, namedOp{kind: core.UpdateInsert, tup: []string{e, d}})
		case 4, 5:
			ops = append(ops, namedOp{kind: core.UpdateDelete, tup: []string{e, d}})
		case 6, 7:
			ops = append(ops, namedOp{kind: core.UpdateReplace,
				tup: []string{e, d}, with: []string{fmt.Sprintf("x%03d", rng.Intn(40)), d}})
		case 8:
			ops = append(ops, namedOp{kind: core.UpdateReplace,
				tup: []string{e, d}, with: []string{e, fmt.Sprintf("dept%d", rng.Intn(2))}})
		default:
			ops = append(ops, namedOp{kind: core.UpdateInsert,
				tup: []string{e, fmt.Sprintf("nodept%d", rng.Intn(3))}})
		}
	}
	return ops
}

func mkTuple(syms *value.Symbols, names []string) relation.Tuple {
	t := make(relation.Tuple, len(names))
	for i, s := range names {
		t[i] = syms.Const(s)
	}
	return t
}

// epochFS arms one journal fault plan per session epoch over a shard's
// FS. It advances to the next plan once the current one has fired; the
// handles a new epoch opens bind to the new plan — exactly the
// recovery pattern, since a fired fault breaks the session and
// resurrection reopens every file.
type epochFS struct {
	base  store.FS
	mu    sync.Mutex
	plans []store.FaultPlan
	cur   *store.FaultFS
}

func newEpochFS(base store.FS, faults []StorageFault) *epochFS {
	e := &epochFS{base: base}
	for _, f := range faults {
		e.plans = append(e.plans, f.plan())
	}
	if len(e.plans) > 0 {
		e.cur = store.NewFaultFS(base, e.plans[0])
	}
	return e
}

func (e *epochFS) fs() store.FS {
	e.mu.Lock()
	defer e.mu.Unlock()
	for e.cur != nil && e.cur.Tripped() {
		e.plans = e.plans[1:]
		if len(e.plans) == 0 {
			e.cur = nil
			break
		}
		e.cur = store.NewFaultFS(e.base, e.plans[0])
	}
	if e.cur == nil {
		return e.base
	}
	return e.cur
}

func (e *epochFS) Create(name string) (store.File, error)     { return e.fs().Create(name) }
func (e *epochFS) OpenAppend(name string) (store.File, error) { return e.fs().OpenAppend(name) }
func (e *epochFS) Open(name string) (store.File, error)       { return e.fs().Open(name) }
func (e *epochFS) Rename(o, n string) error                   { return e.fs().Rename(o, n) }
func (e *epochFS) Remove(name string) error                   { return e.fs().Remove(name) }
func (e *epochFS) Truncate(name string, size int64) error     { return e.fs().Truncate(name, size) }
func (e *epochFS) SyncDir() error                             { return e.fs().SyncDir() }

// cutFS scripts the mid-two-phase crash points. While armed it can
// fail txlog writes from a given armed-relative ordinal on (cutting
// the protocol between records), fail txlog truncates (so the aborting
// resets cannot retire the intents a real crash would leave behind),
// and fail every journal write (so a committed half cannot land).
type cutFS struct {
	store.FS
	armed           *atomic.Bool
	failTxWriteFrom int // 1-based armed ordinal; 0 disables
	failTxTruncate  bool
	failJournal     bool

	mu       sync.Mutex
	txWrites int
}

func (c *cutFS) wrap(f store.File, name string, err error) (store.File, error) {
	if err != nil {
		return nil, err
	}
	return &cutFile{File: f, fs: c, name: name}, nil
}

func (c *cutFS) Create(name string) (store.File, error) {
	f, err := c.FS.Create(name)
	return c.wrap(f, name, err)
}

func (c *cutFS) OpenAppend(name string) (store.File, error) {
	f, err := c.FS.OpenAppend(name)
	return c.wrap(f, name, err)
}

func (c *cutFS) Truncate(name string, size int64) error {
	if c.armed.Load() && c.failTxTruncate && name == shard.TxLogFile {
		return store.ErrInjected
	}
	return c.FS.Truncate(name, size)
}

type cutFile struct {
	store.File
	fs   *cutFS
	name string
}

func (f *cutFile) Write(p []byte) (int, error) {
	c := f.fs
	if c.armed.Load() {
		switch f.name {
		case store.JournalFile:
			if c.failJournal {
				return 0, store.ErrInjected
			}
		case shard.TxLogFile:
			if c.failTxWriteFrom > 0 {
				c.mu.Lock()
				c.txWrites++
				n := c.txWrites
				c.mu.Unlock()
				if n >= c.failTxWriteFrom {
					return 0, store.ErrInjected
				}
			}
		}
	}
	return f.File.Write(p)
}

// pickCut chooses a deterministic cross-shard replacement over the
// fixture employees, which the workload never touches: the old tuple's
// shard must hold a second employee of the same department (so the
// delete half translates) and the fresh name must route to a different
// shard hosting the department (so the insert half translates).
// Per-shard department residency is fixed for the whole run — inserts
// of a department a shard does not host are rejected, and deleting a
// department's last shard-local member is rejected — so the choice
// made from the seed instance stays valid after any workload.
func pickCut(router *shard.Router) (old, nw []string, coord, part int, ok bool) {
	type key struct{ shard, dept int }
	count := map[key]int{}
	shardOf := make([]int, shardFixtureEmps)
	for i := 0; i < shardFixtureEmps; i++ {
		shardOf[i] = router.ShardOfName(fmt.Sprintf("emp%d", i))
		count[key{shardOf[i], i % 2}]++
	}
	for i := 0; i < shardFixtureEmps; i++ {
		d := i % 2
		if count[key{shardOf[i], d}] < 2 {
			continue
		}
		for j := 0; j < 10000; j++ {
			name := fmt.Sprintf("cut%d", j)
			ns := router.ShardOfName(name)
			if ns == shardOf[i] || count[key{ns, d}] == 0 {
				continue
			}
			return []string{fmt.Sprintf("emp%d", i), fmt.Sprintf("dept%d", d)},
				[]string{name, fmt.Sprintf("dept%d", d)}, shardOf[i], ns, true
		}
	}
	return nil, nil, 0, 0, false
}

// RunSharded executes one schedule against a K-shard multi-store and
// checks the sharded forms of the two invariants:
//
//  1. No acked op is lost: after a final whole-machine power cut, each
//     shard's journal holds exactly the records the acked ops put
//     there — one per single-shard op, one per participant for a
//     non-identity cross-shard op — plus at most the halves of
//     committed-but-unacknowledged cross ops recovery redoes.
//  2. The recovered union of the shard bases is byte-identical to a
//     serial fault-free oracle replaying the acked ops in submission
//     order (cross-shard ops as their two halves), extended by every
//     cross op recovery resolved as committed.
func RunSharded(s ShardSchedule) (*ShardReport, error) {
	k := s.Shards
	if k < 1 {
		return nil, fmt.Errorf("chaos: sharded schedule needs shards >= 1, got %d", k)
	}
	reg := obs.NewRegistry()
	serve.SetMetrics(reg)
	defer serve.SetMetrics(nil)

	pair, db, syms := shardFixture()
	mem := store.NewMemFS()
	var armed atomic.Bool
	fss := make([]store.FS, k)
	cuts := make([]*cutFS, k)
	for i := range fss {
		var f store.FS = shard.SubFS(mem, fmt.Sprintf("s%d/", i))
		if i < len(s.Faults) && len(s.Faults[i]) > 0 {
			f = newEpochFS(f, s.Faults[i])
		}
		cuts[i] = &cutFS{FS: f, armed: &armed}
		fss[i] = cuts[i]
	}
	m, _, err := shard.Open(fss, pair, db, syms, shard.Options{
		Shards: k,
		Store:  store.Options{SnapshotEvery: snapEvery},
		Serve:  serve.Options{MaxBatch: 4, Clock: obs.NewManualClock(), Seed: s.Seed},
	})
	if err != nil {
		return nil, fmt.Errorf("chaos: sharded open: %w", err)
	}
	router := m.Router()

	rep := &ShardReport{}
	type ackedOp struct {
		n           namedOp
		coord, part int
		cross       bool
		identity    bool
	}
	var acked []ackedOp
	ackedXids := make(map[uint64]bool)
	settle := func(n namedOp, coord, part int, cross bool, xid uint64, d *core.Decision, err error) {
		switch {
		case err == nil:
			rep.Acked++
			acked = append(acked, ackedOp{n: n, coord: coord, part: part, cross: cross,
				identity: d != nil && d.Reason == core.ReasonIdentity})
			if cross {
				rep.CrossAcked++
				ackedXids[xid] = true
			}
		case errors.Is(err, core.ErrRejected):
			rep.Rejected++
		case errors.Is(err, serve.ErrShed):
			rep.Shed++
		default:
			rep.Failed++
			if errors.Is(err, store.ErrSessionBroken) {
				rep.Latched = true
			}
		}
	}
	submit := func(n namedOp) (uint64, *core.Decision, error) {
		w, err := m.ApplyAsync(context.Background(), n.op(syms))
		if err != nil {
			return 0, nil, err
		}
		var xid uint64
		if cp, ok := w.(*shard.CrossPending); ok {
			xid = cp.Xid()
		}
		d, err := w.Wait()
		return xid, d, err
	}

	// Async windows with a drain barrier, as in the unsharded runner:
	// group commit stays exercised per shard, outcomes stay
	// order-deterministic. Cross-shard ops resolve eagerly inside
	// ApplyAsync, which keeps each shard's apply order equal to
	// submission order — the property the oracle replays against.
	ops := shardWorkload(s.Seed, s.Ops)
	const window = 6
	type handle struct {
		n           namedOp
		coord, part int
		cross       bool
		xid         uint64
		w           serve.Waiter
	}
	for lo := 0; lo < len(ops); lo += window {
		hi := lo + window
		if hi > len(ops) {
			hi = len(ops)
		}
		handles := make([]handle, 0, hi-lo)
		for i := lo; i < hi; i++ {
			op := ops[i].op(syms)
			coord, part, cross := router.Placement(op)
			w, err := m.ApplyAsync(context.Background(), op)
			if err != nil {
				settle(ops[i], coord, part, cross, 0, nil, err)
				continue
			}
			var xid uint64
			if cp, ok := w.(*shard.CrossPending); ok {
				xid = cp.Xid()
			}
			handles = append(handles, handle{n: ops[i], coord: coord, part: part,
				cross: cross, xid: xid, w: w})
		}
		for _, h := range handles {
			d, err := h.w.Wait()
			settle(h.n, h.coord, h.part, h.cross, h.xid, d, err)
		}
	}

	// The scripted mid-two-phase cut, driven through the real protocol:
	// the faults below interrupt it exactly where a power cut would,
	// and the machine then dies with the residue in place.
	if s.CrossCut == CrossCutIntent || s.CrossCut == CrossCutCommit {
		if old, nw, coord, part, ok := pickCut(router); ok {
			switch s.CrossCut {
			case CrossCutIntent:
				// The commit record is the coordinator's second armed
				// txlog write; failing it — and every txlog truncate —
				// leaves durable intents on both shards and nothing else.
				cuts[coord].failTxWriteFrom = 2
				cuts[coord].failTxTruncate = true
				cuts[part].failTxTruncate = true
			case CrossCutCommit:
				// The commit record lands, then every journal write on
				// the coordinator fails: the delete half cannot apply,
				// both shards fence, and intent+commit survive the cut.
				cuts[coord].failJournal = true
			}
			armed.Store(true)
			n := namedOp{kind: core.UpdateReplace, tup: old, with: nw}
			xid, d, err := submit(n)
			armed.Store(false)
			settle(n, coord, part, true, xid, d, err)
			rep.Cut = &CutOutcome{Old: old, New: nw, Xid: xid, Acked: err == nil}
			if err != nil {
				rep.Cut.Err = err.Error()
			}
		}
	}

	if err := m.Close(); err != nil {
		rep.Latched = true
	}
	snap := reg.Snapshot()
	rep.Resurrections = snap.Counters["serve_resurrections_total"]
	rep.Retries = snap.Counters["serve_retries_total"]

	// The whole machine loses power: everything unsynced is gone on
	// every shard at once.
	mem.Crash()

	// Recovery over pristine filesystems (the fault wrappers died with
	// the machine): per-shard store recovery, then txlog resolution.
	rpair, rdb, rsyms := shardFixture()
	rfss := make([]store.FS, k)
	for i := range rfss {
		rfss[i] = shard.SubFS(mem, fmt.Sprintf("s%d/", i))
	}
	m2, orep, err := shard.Open(rfss, rpair, rdb, rsyms, shard.Options{
		Shards: k, Store: store.Options{SnapshotEvery: snapEvery}})
	if err != nil {
		rep.Violation = fmt.Sprintf("post-crash recovery failed: %v", err)
		return rep, nil
	}
	rep.Resolved = orep.Resolved
	if err := m2.Close(); err != nil {
		rep.Violation = fmt.Sprintf("post-crash close failed: %v", err)
		return rep, nil
	}

	// Expected per-shard journal growth from the acked ops. The store
	// journals identity ops too, so a single-shard ack is always one
	// record; a cross-shard ack is one per participant unless the whole
	// op was an identity (decided before any write).
	expected := make([]uint64, k)
	for _, a := range acked {
		switch {
		case !a.cross:
			expected[a.coord]++
		case !a.identity:
			expected[a.coord]++
			expected[a.part]++
		}
	}
	// A committed-but-unacknowledged cross op adds at most one record
	// per participant — fewer when a half was an identity, which is
	// neither journaled nor redone.
	slack := make([]uint64, k)
	var redone []shard.Resolution
	for _, r := range rep.Resolved {
		if !r.Committed || ackedXids[r.Xid] {
			continue
		}
		redone = append(redone, r)
		slack[router.ShardOfName(r.Old[0])]++
		slack[router.ShardOfName(r.New[0])]++
	}

	var union *relation.Relation
	for i := 0; i < k; i++ {
		scan, err := shard.ReadTxLog(rfss[i])
		if err != nil {
			rep.Violation = fmt.Sprintf("shard %d txlog unreadable after recovery: %v", i, err)
			return rep, nil
		}
		if len(scan.Records) != 0 {
			rep.Violation = fmt.Sprintf("shard %d: %d orphaned txlog records survived recovery",
				i, len(scan.Records))
			return rep, nil
		}
		st, _, err := store.Recover(rfss[i], rpair, rsyms, store.Options{})
		if err != nil {
			rep.Violation = fmt.Sprintf("shard %d re-recovery failed: %v", i, err)
			return rep, nil
		}
		seq := st.Seq()
		rep.SeqSum += seq
		if union == nil {
			union = st.Database().Clone()
		} else {
			union = union.Union(st.Database())
		}
		if err := st.Close(); err != nil {
			return nil, fmt.Errorf("chaos: shard %d close: %w", i, err)
		}
		if seq < expected[i] || seq > expected[i]+slack[i] {
			rep.Violation = fmt.Sprintf("acked-op loss on shard %d: recovered seq %d, want %d..%d",
				i, seq, expected[i], expected[i]+slack[i])
			return rep, nil
		}
	}
	rep.FinalState = render(union, rsyms)

	// Serial fault-free oracle: one session over the full instance
	// replays the acked ops in submission order; a cross-shard op
	// replays as the delete and insert halves it executed as. Every
	// replayed op must be accepted, and recovery-committed cross ops —
	// which fence their shards until recovery, so nothing later touched
	// their keys — land at the end.
	opair, odb, osyms := shardFixture()
	oracle, err := core.NewSession(opair, odb)
	if err != nil {
		return nil, fmt.Errorf("chaos: oracle: %w", err)
	}
	oapply := func(op core.UpdateOp, what string) bool {
		if _, err := oracle.Apply(op); err != nil {
			rep.Violation = fmt.Sprintf("%s fails on the serial oracle: %v", what, err)
			return false
		}
		return true
	}
	for i, a := range acked {
		if !a.cross {
			if !oapply(a.n.op(osyms), fmt.Sprintf("acked op %d (%v %v)", i, a.n.kind, a.n.tup)) {
				return rep, nil
			}
			continue
		}
		if !oapply(core.Delete(mkTuple(osyms, a.n.tup)), fmt.Sprintf("acked op %d delete half", i)) ||
			!oapply(core.Insert(mkTuple(osyms, a.n.with)), fmt.Sprintf("acked op %d insert half", i)) {
			return rep, nil
		}
	}
	for _, r := range redone {
		if !oapply(core.Delete(mkTuple(osyms, r.Old)), fmt.Sprintf("resolved xid %d delete half", r.Xid)) ||
			!oapply(core.Insert(mkTuple(osyms, r.New)), fmt.Sprintf("resolved xid %d insert half", r.Xid)) {
			return rep, nil
		}
	}
	if want := render(oracle.Database(), osyms); rep.FinalState != want {
		rep.Violation = fmt.Sprintf("union state divergence from serial oracle:\n got: %s\nwant: %s",
			rep.FinalState, want)
	}
	return rep, nil
}
