package chaos

import (
	"testing"
)

// mustRun executes a schedule and fails the test on harness errors or
// invariant violations.
func mustRun(t *testing.T, s Schedule) *Report {
	t.Helper()
	rep, err := Run(s)
	if err != nil {
		t.Fatalf("chaos.Run(%+v): %v", s, err)
	}
	if rep.Violation != "" {
		t.Fatalf("schedule %+v violated an invariant:\n%s", s, rep.Violation)
	}
	return rep
}

// TestRandomSchedules is the headline chaos sweep: ≥200 seed-derived
// schedules (scaled down under -short), each checked for zero acked-op
// loss and byte-identical serial-oracle state. The sweep must, in
// aggregate, exercise every fault kind.
func TestRandomSchedules(t *testing.T) {
	n, ops := 200, 40
	if testing.Short() {
		n, ops = 60, 24
	}
	covered := make(map[FaultKind]bool)
	var resurrections, retries int64
	sheds := 0
	for seed := uint64(1); seed <= uint64(n); seed++ {
		s := Generate(seed, ops)
		rep := mustRun(t, s)
		for k := range s.faults() {
			covered[k] = true
		}
		resurrections += rep.Resurrections
		retries += rep.Retries
		sheds += rep.Shed
	}
	for _, k := range []FaultKind{WriteFault, SyncFault, TornWrite, PowerLoss, BudgetTrip, QueueSat} {
		if !covered[k] {
			t.Errorf("sweep never scheduled fault kind %v", k)
		}
	}
	if resurrections == 0 {
		t.Error("sweep drove zero resurrections: the heal path never fired")
	}
	if retries == 0 {
		t.Error("sweep drove zero retries: the backoff path never fired")
	}
	if sheds == 0 {
		t.Error("sweep drove zero sheds: bounded admission never fired")
	}
}

// Per-kind recovery-path tests: each fault kind must provably trigger
// the recovery mechanism it exists to exercise.

func TestWriteFaultTriggersResurrection(t *testing.T) {
	rep := mustRun(t, Schedule{Seed: 7, Ops: 30,
		Storage: []StorageFault{{Kind: WriteFault, At: 2}}})
	if rep.Resurrections < 1 {
		t.Fatalf("write fault drove %d resurrections, want >= 1", rep.Resurrections)
	}
	if rep.Acked == 0 {
		t.Fatal("no ops acknowledged after write-fault recovery")
	}
}

func TestSyncFaultTriggersResurrection(t *testing.T) {
	rep := mustRun(t, Schedule{Seed: 8, Ops: 30,
		Storage: []StorageFault{{Kind: SyncFault, At: 2}}})
	if rep.Resurrections < 1 {
		t.Fatalf("sync fault drove %d resurrections, want >= 1", rep.Resurrections)
	}
}

func TestTornWriteTriggersResurrection(t *testing.T) {
	rep := mustRun(t, Schedule{Seed: 9, Ops: 30,
		Storage: []StorageFault{{Kind: TornWrite, At: 2, Keep: 7}}})
	if rep.Resurrections < 1 {
		t.Fatalf("torn write drove %d resurrections, want >= 1", rep.Resurrections)
	}
}

func TestPowerLossTriggersResurrection(t *testing.T) {
	rep := mustRun(t, Schedule{Seed: 10, Ops: 30,
		Storage: []StorageFault{{Kind: PowerLoss, At: 2}}})
	if rep.Resurrections < 1 {
		t.Fatalf("power loss drove %d resurrections, want >= 1", rep.Resurrections)
	}
}

func TestBudgetTripTriggersRetry(t *testing.T) {
	rep := mustRun(t, Schedule{Seed: 11, Ops: 20, BudgetTrips: []int{3}})
	if rep.Retries < 1 {
		t.Fatalf("budget trip drove %d retries, want >= 1", rep.Retries)
	}
}

func TestQueueSaturationTriggersShed(t *testing.T) {
	rep := mustRun(t, Schedule{Seed: 12, Ops: 30, QueueSat: true,
		Storage: []StorageFault{{Kind: SyncFault, At: 1}}})
	if rep.Shed < 1 {
		t.Fatalf("saturation burst drove %d sheds, want >= 1", rep.Shed)
	}
	if rep.Resurrections < 1 {
		t.Fatalf("saturation gate requires a resurrection, got %d", rep.Resurrections)
	}
}

// TestHealDuringHeal arms a sync fault at ordinal 1 of the SECOND
// epoch: recovery's own journal re-fsync is that epoch's first sync,
// so the resurrection itself fails once and the retry loop must carry
// the pipeline through.
func TestHealDuringHeal(t *testing.T) {
	rep := mustRun(t, Schedule{Seed: 13, Ops: 30, Storage: []StorageFault{
		{Kind: SyncFault, At: 2},
		{Kind: SyncFault, At: 1},
	}})
	if rep.Resurrections < 1 {
		t.Fatalf("got %d resurrections, want >= 1", rep.Resurrections)
	}
}

// TestScheduleReplayDeterminism runs the same multi-fault schedule
// twice and requires identical observable outcomes: journal bytes are
// batch-boundary-independent, so even with async submission windows
// the final recovered state and the per-op fates must replay exactly.
func TestScheduleReplayDeterminism(t *testing.T) {
	s := Schedule{Seed: 21, Ops: 40,
		Storage:     []StorageFault{{Kind: SyncFault, At: 2}, {Kind: WriteFault, At: 3}},
		BudgetTrips: []int{2, 9}}
	a := mustRun(t, s)
	b := mustRun(t, s)
	if a.FinalState != b.FinalState {
		t.Fatalf("final state diverged between identical runs:\n1st: %s\n2nd: %s",
			a.FinalState, b.FinalState)
	}
	if a.JournalSeq != b.JournalSeq {
		t.Fatalf("journal seq diverged: %d vs %d", a.JournalSeq, b.JournalSeq)
	}
	if a.Acked != b.Acked || a.Rejected != b.Rejected || a.Shed != b.Shed || a.Failed != b.Failed {
		t.Fatalf("op fates diverged: %+v vs %+v", a, b)
	}
}

// TestGenerateDeterminism: the same (seed, ops) always derives the
// same schedule, and shrinking ops yields a prefix workload (the
// property Minimize relies on).
func TestGenerateDeterminism(t *testing.T) {
	a, b := Generate(5, 40), Generate(5, 40)
	if len(a.Storage) != len(b.Storage) || a.QueueSat != b.QueueSat ||
		len(a.BudgetTrips) != len(b.BudgetTrips) {
		t.Fatalf("Generate not deterministic: %+v vs %+v", a, b)
	}
	for i := range a.Storage {
		if a.Storage[i] != b.Storage[i] {
			t.Fatalf("storage fault %d differs: %+v vs %+v", i, a.Storage[i], b.Storage[i])
		}
	}
	full, half := workload(5, 40), workload(5, 20)
	for i := range half {
		if full[i].kind != half[i].kind {
			t.Fatalf("workload is not prefix-stable at op %d", i)
		}
	}
}

// TestMinimize drives the reducer with an artificial predicate —
// "fails iff a SyncFault is present and at least 8 ops run" — and
// checks it strips every irrelevant ingredient.
func TestMinimize(t *testing.T) {
	s := Schedule{Seed: 3, Ops: 64,
		Storage: []StorageFault{
			{Kind: WriteFault, At: 2},
			{Kind: SyncFault, At: 1},
			{Kind: TornWrite, At: 3, Keep: 9},
		},
		BudgetTrips: []int{1, 5, 9},
		QueueSat:    true,
	}
	fails := func(c Schedule) bool {
		if c.Ops < 8 {
			return false
		}
		for _, f := range c.Storage {
			if f.Kind == SyncFault {
				return true
			}
		}
		return false
	}
	m := Minimize(s, fails, 16)
	if !fails(m) {
		t.Fatal("minimized schedule no longer satisfies the failure predicate")
	}
	if len(m.Storage) != 1 || m.Storage[0].Kind != SyncFault {
		t.Fatalf("storage faults not minimized: %+v", m.Storage)
	}
	if len(m.BudgetTrips) != 0 {
		t.Fatalf("budget trips not cleared: %v", m.BudgetTrips)
	}
	if m.QueueSat {
		t.Fatal("queue saturation not disabled")
	}
	if m.Ops != 8 {
		t.Fatalf("ops not halved to the 1-minimal count: got %d, want 8", m.Ops)
	}
}

// TestMinimizeKeepsFailingInput: a schedule where nothing can be
// removed comes back unchanged.
func TestMinimizeKeepsFailingInput(t *testing.T) {
	s := Schedule{Seed: 2, Ops: 1,
		Storage: []StorageFault{{Kind: SyncFault, At: 1}}}
	fails := func(c Schedule) bool {
		return len(c.Storage) == 1 && c.Ops == 1
	}
	m := Minimize(s, fails, 4)
	if len(m.Storage) != 1 || m.Ops != 1 {
		t.Fatalf("irreducible schedule was altered: %+v", m)
	}
}
