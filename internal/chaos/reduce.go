package chaos

// Minimize shrinks a failing schedule while preserving failure, in the
// spirit of delta debugging: each round tries dropping one storage
// fault, clearing or halving the budget trips, disabling the
// saturation phase, and halving the workload, keeping any variant for
// which fails still reports true. Rounds repeat until a full round
// makes no progress (or the round budget runs out), so the result is
// 1-minimal with respect to these transformations. fails must be
// deterministic — with chaos.Run as the predicate that holds by
// construction, since a Schedule fixes the seed.
func Minimize(s Schedule, fails func(Schedule) bool, rounds int) Schedule {
	if rounds <= 0 {
		rounds = 8
	}
	for r := 0; r < rounds; r++ {
		improved := false

		// Drop storage faults one at a time; first droppable wins the
		// round (later ones get their turn next round).
		for i := 0; i < len(s.Storage); i++ {
			c := s
			c.Storage = make([]StorageFault, 0, len(s.Storage)-1)
			c.Storage = append(c.Storage, s.Storage[:i]...)
			c.Storage = append(c.Storage, s.Storage[i+1:]...)
			if fails(c) {
				s = c
				improved = true
				break
			}
		}

		// Clear the budget trips outright, or failing that halve them.
		if len(s.BudgetTrips) > 0 {
			c := s
			c.BudgetTrips = nil
			if fails(c) {
				s = c
				improved = true
			} else if half := len(s.BudgetTrips) / 2; half > 0 {
				c = s
				c.BudgetTrips = append([]int(nil), s.BudgetTrips[:half]...)
				if fails(c) {
					s = c
					improved = true
				}
			}
		}

		// Disable the saturation phase.
		if s.QueueSat {
			c := s
			c.QueueSat = false
			if fails(c) {
				s = c
				improved = true
			}
		}

		// Halve the workload. workload(seed, n/2) is a strict prefix of
		// workload(seed, n), so halving only removes trailing ops.
		if s.Ops > 1 {
			c := s
			c.Ops = s.Ops / 2
			if fails(c) {
				s = c
				improved = true
			}
		}

		if !improved {
			break
		}
	}
	return s
}
