// Package chaos drives seed-reproducible randomized fault schedules
// against the full serving pipeline (internal/serve over
// internal/store) and checks the two invariants the self-healing layer
// promises, whatever the faults:
//
//  1. No acknowledged op is lost: after a final power cut, recovery
//     finds exactly the acknowledged-applied ops, in order.
//  2. The final state is byte-identical to a serial fault-free oracle
//     replaying the acknowledged-applied ops in submission order.
//
// A Schedule is pure data: a seed, an op count, a sequence of storage
// faults (one per session epoch — the fault-injecting FaultFS arms a
// fresh plan at every resurrection), deterministic budget trips, and an
// optional queue-saturation phase. Everything nondeterministic is
// derived from the seed: the workload, the backoff jitter (through
// serve's seeded backoff), and virtual time (obs.ManualClock) — the
// package never reads the wall clock and never spawns goroutines of its
// own, so the constvet walltime and rawgo gates apply in full.
package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
)

// FaultKind enumerates the fault classes a schedule can inject; each
// has a distinct recovery path in the pipeline.
type FaultKind uint8

const (
	// WriteFault fails a journal write outright (no bytes persisted).
	WriteFault FaultKind = iota
	// SyncFault fails a journal fsync after the bytes were written.
	SyncFault
	// TornWrite persists only a prefix of a journal write.
	TornWrite
	// PowerLoss is a SyncFault followed by a machine crash before
	// recovery: everything unsynced is really gone.
	PowerLoss
	// BudgetTrip exhausts the decide budget of one op's first attempt.
	BudgetTrip
	// QueueSat saturates the bounded submit queue while the store heals.
	QueueSat
)

func (k FaultKind) String() string {
	switch k {
	case WriteFault:
		return "write-fault"
	case SyncFault:
		return "sync-fault"
	case TornWrite:
		return "torn-write"
	case PowerLoss:
		return "power-loss"
	case BudgetTrip:
		return "budget-trip"
	case QueueSat:
		return "queue-saturation"
	}
	return "unknown"
}

// StorageFault is one scheduled storage fault. Faults are consumed one
// per session epoch: the first arms the session the pipeline starts on,
// each subsequent one arms the session resurrected after the previous
// fault fired. At is the 1-based ordinal of the faulted operation
// within its epoch, counting only journal-file operations (note that
// recovery itself re-fsyncs the journal once, so a SyncFault with At=1
// fires during recovery, testing the heal-during-heal path).
type StorageFault struct {
	Kind  FaultKind `json:"kind"` // WriteFault, SyncFault, TornWrite, or PowerLoss
	At    int       `json:"at"`
	Keep  int       `json:"keep,omitempty"` // torn-write bytes kept
	Crash bool      `json:"crash,omitempty"`
}

// crashes reports whether the epoch ends in a power cut before
// recovery.
func (f StorageFault) crashes() bool { return f.Crash || f.Kind == PowerLoss }

// Schedule is one reproducible chaos scenario.
type Schedule struct {
	Seed uint64 `json:"seed"`
	Ops  int    `json:"ops"`
	// Storage faults, one per epoch, in firing order.
	Storage []StorageFault `json:"storage,omitempty"`
	// BudgetTrips lists op indices whose first decide attempt runs under
	// a 1-step budget (and therefore trips; the retry runs unlimited).
	BudgetTrips []int `json:"budget_trips,omitempty"`
	// QueueSat adds a saturation burst while the first healing episode
	// holds the committer, proving overload shedding under degradation.
	QueueSat bool `json:"queue_sat,omitempty"`
}

// faults summarizes which fault kinds the schedule exercises.
func (s Schedule) faults() map[FaultKind]bool {
	out := make(map[FaultKind]bool)
	for _, f := range s.Storage {
		out[f.Kind] = true
		if f.crashes() {
			out[PowerLoss] = true
		}
	}
	if len(s.BudgetTrips) > 0 {
		out[BudgetTrip] = true
	}
	if s.QueueSat {
		out[QueueSat] = true
	}
	return out
}

// Generate derives a randomized schedule from a seed: 1–3 storage
// faults of random kinds and ordinals, occasional budget trips, and an
// occasional queue-saturation phase. The same (seed, ops) always yields
// the same schedule.
func Generate(seed uint64, ops int) Schedule {
	rng := rand.New(rand.NewSource(int64(seed)))
	s := Schedule{Seed: seed, Ops: ops}
	nf := 1 + rng.Intn(3)
	for i := 0; i < nf; i++ {
		f := StorageFault{At: 1 + rng.Intn(6)}
		switch rng.Intn(4) {
		case 0:
			f.Kind = WriteFault
		case 1:
			f.Kind = SyncFault
		case 2:
			f.Kind = TornWrite
			f.Keep = rng.Intn(40)
		default:
			f.Kind = PowerLoss
		}
		if f.Kind == SyncFault && rng.Intn(2) == 0 {
			f.Crash = true
		}
		s.Storage = append(s.Storage, f)
	}
	for i := 0; i < ops; i++ {
		if rng.Intn(12) == 0 {
			s.BudgetTrips = append(s.BudgetTrips, i)
		}
	}
	s.QueueSat = rng.Intn(4) == 0
	return s
}

// Report is the observable outcome of one schedule run.
type Report struct {
	// Per-op fates over the base workload plus any saturation burst.
	Acked    int // acknowledged applied
	Rejected int // acknowledged untranslatable (paper-mandated rejections)
	Shed     int // refused by bounded admission
	Failed   int // failed with a (permanent or latched) error

	Resurrections int64
	Retries       int64
	Latched       bool // healing exhausted; pipeline ended latched broken

	// FinalState is the canonical rendering of the state a post-crash
	// recovery reconstructs; JournalSeq its op count.
	FinalState string
	JournalSeq uint64

	// Violation is empty when both invariants held.
	Violation string
}

// fixture is the paper's §2 Employee–Department–Manager schema, view
// X = ED under constant complement Y = DM.
func fixture() (*core.Pair, *relation.Relation, *value.Symbols) {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < 4; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	return pair, db, syms
}

// namedOp mirrors the workload symbol-table-free so the oracle can
// replay it against an independent session.
type namedOp struct {
	kind core.UpdateKind
	tup  []string
	with []string
}

func (n namedOp) op(syms *value.Symbols) core.UpdateOp {
	mk := func(names []string) relation.Tuple {
		t := make(relation.Tuple, len(names))
		for i, s := range names {
			t[i] = syms.Const(s)
		}
		return t
	}
	switch n.kind {
	case core.UpdateInsert:
		return core.Insert(mk(n.tup))
	case core.UpdateDelete:
		return core.Delete(mk(n.tup))
	default:
		return core.Replace(mk(n.tup), mk(n.with))
	}
}

// workload derives a deterministic op mix from the seed: translatable
// inserts and deletes, cross-department replaces, and condition-(a)
// rejections.
func workload(seed uint64, n int) []namedOp {
	rng := rand.New(rand.NewSource(int64(seed) ^ 0x5bf03635))
	ops := make([]namedOp, 0, n)
	for i := 0; i < n; i++ {
		e := fmt.Sprintf("w%03d", rng.Intn(30))
		d := fmt.Sprintf("dept%d", rng.Intn(2))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			ops = append(ops, namedOp{kind: core.UpdateInsert, tup: []string{e, d}})
		case 5, 6, 7:
			ops = append(ops, namedOp{kind: core.UpdateDelete, tup: []string{e, d}})
		case 8:
			ops = append(ops, namedOp{kind: core.UpdateReplace,
				tup: []string{e, d}, with: []string{e, fmt.Sprintf("dept%d", rng.Intn(2))}})
		default:
			ops = append(ops, namedOp{kind: core.UpdateInsert,
				tup: []string{e, fmt.Sprintf("nodept%d", rng.Intn(3))}})
		}
	}
	return ops
}

// render canonicalizes a relation for cross-session comparison.
func render(r *relation.Relation, syms *value.Symbols) string {
	lines := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		fields := make([]string, len(t))
		for i, v := range t {
			fields[i] = syms.Name(v)
		}
		lines = append(lines, strings.Join(fields, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// plan converts a StorageFault to the FaultFS plan arming one epoch.
func (f StorageFault) plan() store.FaultPlan {
	match := func(name string) bool { return name == store.JournalFile }
	switch f.Kind {
	case WriteFault:
		return store.FaultPlan{Match: match, FailWriteAt: f.At}
	case TornWrite:
		return store.FaultPlan{Match: match, TearWriteAt: f.At, TearKeep: f.Keep}
	default: // SyncFault, PowerLoss
		return store.FaultPlan{Match: match, FailSyncAt: f.At}
	}
}

const snapEvery = 1 << 20 // never rotate mid-run; rotation is store_test's domain

// Run executes one schedule against a fresh pipeline and checks the
// invariants. A non-nil error reports harness failure (the run could
// not be driven); invariant breaks are reported in Report.Violation so
// the caller (and the reducer) can distinguish "pipeline broke its
// promise" from "schedule could not run".
func Run(s Schedule) (*Report, error) {
	reg := obs.NewRegistry()
	serve.SetMetrics(reg)
	defer serve.SetMetrics(nil)

	if s.QueueSat {
		// The saturation gate parks the committer inside the FIRST
		// resurrection, so a resurrection must provably happen: force a
		// trigger fault onto the very first batch (the one submission
		// that can never shed).
		if len(s.Storage) == 0 {
			s.Storage = []StorageFault{{Kind: SyncFault, At: 1}}
		} else {
			s.Storage[0].At = 1
		}
	}

	pair, db, syms := fixture()
	mem := store.NewMemFS()
	epoch := 0
	nextFS := func() store.FS {
		if epoch < len(s.Storage) {
			return store.NewFaultFS(mem, s.Storage[epoch].plan())
		}
		return mem
	}
	st, err := store.Create(nextFS(), pair, db, syms, store.Options{SnapshotEvery: snapEvery})
	if err != nil {
		return nil, fmt.Errorf("chaos: create: %w", err)
	}
	// Budget trips need the budgeted full decide path; the incremental
	// fast path never constructs a budget.
	incremental := len(s.BudgetTrips) == 0
	st.SetIncremental(incremental)

	// Queue-saturation gate: the first resurrection parks the committer
	// until the burst has been submitted, making the shed deterministic
	// (nothing can drain while the gate holds).
	var healingStarted chan struct{}
	var release chan struct{}
	if s.QueueSat {
		healingStarted = make(chan struct{}, 1)
		release = make(chan struct{})
	}
	resurrect := func() (*store.Session, error) {
		if s.QueueSat {
			select {
			case healingStarted <- struct{}{}:
			default:
			}
			<-release // closed after the burst; later heals pass through
		}
		if epoch < len(s.Storage) && s.Storage[epoch].crashes() {
			mem.Crash()
		}
		epoch++
		ns, _, rerr := store.Recover(nextFS(), pair, syms, store.Options{SnapshotEvery: snapEvery})
		if rerr != nil {
			return nil, rerr
		}
		ns.SetIncremental(incremental)
		return ns, nil
	}

	opts := serve.Options{
		MaxBatch:  4,
		Resurrect: resurrect,
		Clock:     obs.NewManualClock(),
		Seed:      s.Seed,
	}
	if s.QueueSat {
		opts.QueueDepth = 8
		opts.ShedOnFull = true
	}
	pipe, err := serve.New(st, opts)
	if err != nil {
		return nil, fmt.Errorf("chaos: pipeline: %w", err)
	}

	trips := make(map[int]bool, len(s.BudgetTrips))
	for _, i := range s.BudgetTrips {
		trips[i] = true
	}
	opCtx := func(i int) context.Context {
		if !trips[i] {
			return context.Background()
		}
		// One-shot: the op's first decide gets a 1-step allowance and
		// trips; the retry (and the committer's authoritative decide)
		// run unlimited.
		tripped := false
		return budget.ContextWithPlan(context.Background(), func() int64 {
			if !tripped {
				tripped = true
				return 1
			}
			return 0
		})
	}

	ops := workload(s.Seed, s.Ops)
	rep := &Report{}
	// acked collects the ops acknowledged as applied, in submission
	// order — the oracle's input.
	var acked []namedOp
	settle := func(n namedOp, err error) {
		switch {
		case err == nil:
			rep.Acked++
			acked = append(acked, n)
		case errors.Is(err, core.ErrRejected):
			rep.Rejected++
		case errors.Is(err, serve.ErrShed):
			rep.Shed++
		default:
			rep.Failed++
			if errors.Is(err, store.ErrSessionBroken) {
				rep.Latched = true
			}
		}
	}

	if s.QueueSat {
		// Async-submit everything, then burst past total buffering while
		// the gate provably stalls the committer.
		type pending struct {
			n namedOp
			h *serve.Pending
		}
		var pend []pending
		// Guaranteed-translatable trigger: the forced At=1 fault needs at
		// least one journal write to fire, whatever the workload mix.
		trigger := namedOp{kind: core.UpdateInsert, tup: []string{"trigger00", "dept0"}}
		if h, err := pipe.ApplyAsync(context.Background(), trigger.op(syms)); err != nil {
			settle(trigger, err)
		} else {
			pend = append(pend, pending{n: trigger, h: h})
		}
		for i, n := range ops {
			h, err := pipe.ApplyAsync(opCtx(i), n.op(syms))
			if err != nil {
				settle(n, err)
				continue
			}
			pend = append(pend, pending{n: n, h: h})
		}
		<-healingStarted
		// Total buffering with the committer parked: queue (8) + decider
		// hand (4) + commit channel (2×4) + the batch being healed (4) =
		// 24; a burst of 40 must shed.
		for j := 0; j < 40; j++ {
			n := namedOp{kind: core.UpdateInsert,
				tup: []string{fmt.Sprintf("sat%02d", j), "dept0"}}
			h, err := pipe.ApplyAsync(context.Background(), n.op(syms))
			if err != nil {
				settle(n, err)
				continue
			}
			pend = append(pend, pending{n: n, h: h})
		}
		close(release)
		for _, p := range pend {
			_, err := p.h.Wait()
			settle(p.n, err)
		}
	} else {
		// Async windows with a drain barrier per window: group commit
		// stays exercised, outcomes stay order-deterministic.
		const window = 6
		for lo := 0; lo < len(ops); lo += window {
			hi := lo + window
			if hi > len(ops) {
				hi = len(ops)
			}
			handles := make([]*serve.Pending, hi-lo)
			for i := lo; i < hi; i++ {
				h, err := pipe.ApplyAsync(opCtx(i), ops[i].op(syms))
				if err != nil {
					settle(ops[i], err)
					continue
				}
				handles[i-lo] = h
			}
			for i, h := range handles {
				if h == nil {
					continue
				}
				_, err := h.Wait()
				settle(ops[lo+i], err)
			}
		}
	}
	if err := pipe.Close(); err != nil {
		rep.Latched = true
	}
	snap := reg.Snapshot()
	rep.Resurrections = snap.Counters["serve_resurrections_total"]
	rep.Retries = snap.Counters["serve_retries_total"]

	// Invariant 1 — no acked op lost: cut the power, recover from what
	// is durable, and count.
	mem.Crash()
	oracleSyms := value.NewSymbols()
	final, _, err := store.Recover(mem, pair, oracleSyms, store.Options{})
	if err != nil {
		rep.Violation = fmt.Sprintf("post-crash recovery failed: %v", err)
		return rep, nil
	}
	rep.JournalSeq = final.Seq()
	rep.FinalState = render(final.Database(), oracleSyms)
	final.Close()
	if rep.JournalSeq != uint64(len(acked)) {
		rep.Violation = fmt.Sprintf("acked-op loss: recovered %d ops, acknowledged %d",
			rep.JournalSeq, len(acked))
		return rep, nil
	}

	// Invariant 2 — serial fault-free oracle equivalence: a plain core
	// session replaying the acked ops in submission order must accept
	// every one and land on the identical state.
	opair, odb, osyms := fixture()
	oracle, err := core.NewSession(opair, odb)
	if err != nil {
		return nil, fmt.Errorf("chaos: oracle: %w", err)
	}
	for i, n := range acked {
		if _, err := oracle.Apply(n.op(osyms)); err != nil {
			rep.Violation = fmt.Sprintf("acked op %d (%v %v) fails on the serial oracle: %v",
				i, n.kind, n.tup, err)
			return rep, nil
		}
	}
	if want := render(oracle.Database(), osyms); rep.FinalState != want {
		rep.Violation = fmt.Sprintf("state divergence from serial oracle:\n got: %s\nwant: %s",
			rep.FinalState, want)
	}
	return rep, nil
}
