package chaos

import (
	"strings"
	"testing"
)

// mustRunSharded executes a sharded schedule and fails the test on
// harness errors or invariant violations.
func mustRunSharded(t *testing.T, s ShardSchedule) *ShardReport {
	t.Helper()
	rep, err := RunSharded(s)
	if err != nil {
		t.Fatalf("chaos.RunSharded(%+v): %v", s, err)
	}
	if rep.Violation != "" {
		t.Fatalf("sharded schedule %+v violated an invariant:\n%s", s, rep.Violation)
	}
	return rep
}

// hasRow reports whether a rendered state holds a base row for the
// named employee.
func hasRow(state, name string) bool {
	for _, line := range strings.Split(state, "\n") {
		if strings.HasPrefix(line, name+",") {
			return true
		}
	}
	return false
}

// TestShardedRandomSchedules is the sharded chaos sweep: ≥200
// seed-derived schedules (scaled down under -short) across ring sizes
// 2–4, each checked for zero acked-op loss per shard and a recovered
// union state byte-identical to the serial oracle. In aggregate the
// sweep must commit cross-shard ops, resurrect faulted shards, and
// script both mid-two-phase crash points.
func TestShardedRandomSchedules(t *testing.T) {
	n, ops := 200, 28
	if testing.Short() {
		n, ops = 50, 16
	}
	var resurrections int64
	crossAcked, cuts, aborted, committed := 0, 0, 0, 0
	for seed := uint64(1); seed <= uint64(n); seed++ {
		s := GenerateSharded(seed, ops, 2+int(seed%3))
		rep := mustRunSharded(t, s)
		resurrections += rep.Resurrections
		crossAcked += rep.CrossAcked
		if rep.Cut != nil {
			cuts++
		}
		for _, r := range rep.Resolved {
			if r.Committed {
				committed++
			} else {
				aborted++
			}
		}
	}
	if crossAcked == 0 {
		t.Error("sweep committed zero cross-shard ops: the two-phase path never ran")
	}
	if resurrections == 0 {
		t.Error("sweep drove zero resurrections: the per-shard heal path never fired")
	}
	if cuts == 0 {
		t.Error("sweep never scripted a mid-two-phase cut")
	}
	if aborted == 0 {
		t.Error("sweep never recovered a presumed-abort intent")
	}
	if committed == 0 {
		t.Error("sweep never redid a committed-but-unacknowledged cross op")
	}
}

// TestShardedCrossCutIntentPresumesAbort: a power cut between the
// intent records and the commit record must resolve to a full abort —
// the old employee survives, the new name never exists, and no intent
// outlives recovery.
func TestShardedCrossCutIntentPresumesAbort(t *testing.T) {
	rep := mustRunSharded(t, ShardSchedule{Seed: 5, Ops: 12, Shards: 3, CrossCut: CrossCutIntent})
	if rep.Cut == nil {
		t.Fatal("no cross-shard cut candidate found")
	}
	if rep.Cut.Acked {
		t.Fatalf("cut op acked despite the commit-record write fault: %+v", rep.Cut)
	}
	if len(rep.Resolved) != 1 {
		t.Fatalf("recovery resolved %d intents, want 1: %+v", len(rep.Resolved), rep.Resolved)
	}
	r := rep.Resolved[0]
	if r.Xid != rep.Cut.Xid || r.Committed || r.RedoneCoord || r.RedonePart {
		t.Fatalf("resolution %+v, want presumed abort of xid %d", r, rep.Cut.Xid)
	}
	if !hasRow(rep.FinalState, rep.Cut.Old[0]) {
		t.Errorf("aborted cut lost the original employee %s:\n%s", rep.Cut.Old[0], rep.FinalState)
	}
	if hasRow(rep.FinalState, rep.Cut.New[0]) {
		t.Errorf("aborted cut leaked its insert half %s:\n%s", rep.Cut.New[0], rep.FinalState)
	}
}

// TestShardedCrossCutCommitRedoesBothHalves: a power cut after the
// commit record but before either half reaches a journal must resolve
// to a full commit on recovery — both halves redone — even though the
// submitter saw an error.
func TestShardedCrossCutCommitRedoesBothHalves(t *testing.T) {
	rep := mustRunSharded(t, ShardSchedule{Seed: 6, Ops: 12, Shards: 3, CrossCut: CrossCutCommit})
	if rep.Cut == nil {
		t.Fatal("no cross-shard cut candidate found")
	}
	if rep.Cut.Acked {
		t.Fatalf("cut op acked despite the journal fault: %+v", rep.Cut)
	}
	if len(rep.Resolved) != 1 {
		t.Fatalf("recovery resolved %d intents, want 1: %+v", len(rep.Resolved), rep.Resolved)
	}
	r := rep.Resolved[0]
	if r.Xid != rep.Cut.Xid || !r.Committed || !r.RedoneCoord || !r.RedonePart {
		t.Fatalf("resolution %+v, want committed xid %d with both halves redone", r, rep.Cut.Xid)
	}
	if hasRow(rep.FinalState, rep.Cut.Old[0]) {
		t.Errorf("committed cut left the replaced employee %s behind:\n%s", rep.Cut.Old[0], rep.FinalState)
	}
	if !hasRow(rep.FinalState, rep.Cut.New[0]) {
		t.Errorf("committed cut lost its insert half %s:\n%s", rep.Cut.New[0], rep.FinalState)
	}
}

// TestShardedFaultsTriggerResurrection: journal faults confined to one
// shard must heal through that shard's pipeline while the schedule
// still acks work and keeps both invariants.
func TestShardedFaultsTriggerResurrection(t *testing.T) {
	rep := mustRunSharded(t, ShardSchedule{Seed: 7, Ops: 24, Shards: 2, Faults: [][]StorageFault{
		{{Kind: SyncFault, At: 2}, {Kind: WriteFault, At: 1}},
	}})
	if rep.Resurrections < 1 {
		t.Fatalf("shard faults drove %d resurrections, want >= 1", rep.Resurrections)
	}
	if rep.Acked == 0 {
		t.Fatal("no ops acknowledged after per-shard fault recovery")
	}
}

// TestShardedReplayDeterminism: the same schedule must reproduce the
// same recovered state, journal accounting, and op fates.
func TestShardedReplayDeterminism(t *testing.T) {
	s := GenerateSharded(9, 24, 3)
	a, b := mustRunSharded(t, s), mustRunSharded(t, s)
	if a.FinalState != b.FinalState {
		t.Fatalf("final state diverged between identical runs:\n1st: %s\n2nd: %s",
			a.FinalState, b.FinalState)
	}
	if a.SeqSum != b.SeqSum {
		t.Fatalf("journal seq sum diverged: %d vs %d", a.SeqSum, b.SeqSum)
	}
	if a.Acked != b.Acked || a.Rejected != b.Rejected || a.Failed != b.Failed {
		t.Fatalf("op fates diverged: %+v vs %+v", a, b)
	}
}

// TestGenerateShardedDeterminism: the same (seed, ops, shards) always
// derives the same schedule.
func TestGenerateShardedDeterminism(t *testing.T) {
	a, b := GenerateSharded(4, 20, 3), GenerateSharded(4, 20, 3)
	if a.CrossCut != b.CrossCut || len(a.Faults) != len(b.Faults) {
		t.Fatalf("GenerateSharded not deterministic: %+v vs %+v", a, b)
	}
	for k := range a.Faults {
		if len(a.Faults[k]) != len(b.Faults[k]) {
			t.Fatalf("shard %d fault count differs", k)
		}
		for i := range a.Faults[k] {
			if a.Faults[k][i] != b.Faults[k][i] {
				t.Fatalf("shard %d fault %d differs: %+v vs %+v", k, i, a.Faults[k][i], b.Faults[k][i])
			}
		}
	}
}
