// Package axioms implements a proof-producing inference system for
// functional and explicit functional dependencies: Armstrong's axioms
// [1 in the paper] augmented with EFD rules, as §5 suggests ("we can
// easily augment any of the known axiom systems for FDs … to include
// EFDs", justified by Propositions 1 and 2).
//
// Rules (W, X, Y, Z attribute sets):
//
//	Reflexivity      Y ⊆ X            ⊢ X → Y
//	Augmentation     X → Y            ⊢ XZ → YZ
//	Transitivity     X → Y, Y → Z     ⊢ X → Z
//	E-Reflexivity    Y ⊆ X            ⊢ X →e Y
//	E-Augmentation   X →e Y           ⊢ XZ →e YZ
//	E-Transitivity   X →e Y, Y →e Z   ⊢ X →e Z
//	Demotion         X →e Y           ⊢ X → Y
//
// Soundness: each rule preserves semantic implication (Demotion because a
// witness function is in particular a many-one mapping; the E-rules
// because witnesses compose, pad, and restrict). Completeness: for FD
// conclusions this is Armstrong's theorem together with Proposition 2(a);
// for EFD conclusions it follows from Propositions 1 and 2(b) — only the
// EFDs of Σ matter, and X →e Y is implied iff the underlying FDs derive
// X → Y, which the E-rules mirror one-for-one. The package's tests verify
// both directions against internal/closure semantics.
package axioms

import (
	"fmt"
	"strings"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
)

// Rule names the inference rule used at a proof step.
type Rule string

// Inference rules.
const (
	RuleGiven         Rule = "given"
	RuleReflexivity   Rule = "reflexivity"
	RuleAugmentation  Rule = "augmentation"
	RuleTransitivity  Rule = "transitivity"
	RuleEReflexivity  Rule = "e-reflexivity"
	RuleEAugmentation Rule = "e-augmentation"
	RuleETransitivity Rule = "e-transitivity"
	RuleDemotion      Rule = "demotion"
)

// Step is one node of a proof tree: a derived dependency, the rule that
// produced it, and the premises it used.
type Step struct {
	Conclusion dep.Dependency
	Rule       Rule
	Premises   []*Step
}

// String renders the step's conclusion and rule.
func (s *Step) String() string {
	return fmt.Sprintf("%v  [%s]", s.Conclusion, s.Rule)
}

// Render pretty-prints the proof tree, premises indented under
// conclusions.
func (s *Step) Render() string {
	var b strings.Builder
	var rec func(st *Step, depth int)
	rec = func(st *Step, depth int) {
		b.WriteString(strings.Repeat("  ", depth))
		b.WriteString(st.String())
		b.WriteByte('\n')
		for _, p := range st.Premises {
			rec(p, depth+1)
		}
	}
	rec(s, 0)
	return b.String()
}

// Size counts the steps in the proof tree.
func (s *Step) Size() int {
	n := 1
	for _, p := range s.Premises {
		n += p.Size()
	}
	return n
}

// Prover derives FDs and EFDs from a dependency set using the augmented
// Armstrong system, returning proof trees.
type Prover struct {
	u     *attr.Universe
	given []dep.Dependency
}

// NewProver builds a prover over Σ. MVDs and JDs in Σ are ignored (the
// system covers FDs and EFDs; see internal/chase for the rest).
func NewProver(sigma *dep.Set) *Prover {
	p := &Prover{u: sigma.Universe()}
	for _, d := range sigma.All() {
		switch d.(type) {
		case dep.FD, dep.EFD:
			p.given = append(p.given, d)
		}
	}
	return p
}

// ProveFD searches for a derivation of the FD goal. It reports ok=false
// when the goal is not derivable (equivalently, by completeness, not
// implied).
func (p *Prover) ProveFD(goal dep.FD) (*Step, bool) {
	// Strategy mirroring the closure algorithm, but keeping proofs:
	// grow a set of proved FDs of the form goal.From → S with S
	// expanding, via transitivity with given dependencies.
	type state struct {
		set  attr.Set
		step *Step
	}
	x := goal.From
	cur := state{
		set:  x,
		step: &Step{Conclusion: dep.FD{From: x, To: x}, Rule: RuleReflexivity},
	}
	for {
		grew := false
		for _, g := range p.given {
			var gf dep.FD
			var gstep *Step
			switch d := g.(type) {
			case dep.FD:
				gf = d
				gstep = &Step{Conclusion: d, Rule: RuleGiven}
			case dep.EFD:
				gf = d.FD()
				gstep = &Step{
					Conclusion: gf,
					Rule:       RuleDemotion,
					Premises:   []*Step{{Conclusion: d, Rule: RuleGiven}},
				}
			}
			if !gf.From.SubsetOf(cur.set) || gf.To.SubsetOf(cur.set) {
				continue
			}
			// Augment g to cur.set → cur.set ∪ g.To, then chain:
			//   x → cur.set (have), cur.set → cur.set ∪ g.To (augmented g)
			//   ⊢ x → cur.set ∪ g.To.
			aug := &Step{
				Conclusion: dep.FD{From: cur.set, To: cur.set.Union(gf.To)},
				Rule:       RuleAugmentation,
				Premises:   []*Step{gstep},
			}
			next := cur.set.Union(gf.To)
			cur = state{
				set: next,
				step: &Step{
					Conclusion: dep.FD{From: x, To: next},
					Rule:       RuleTransitivity,
					Premises:   []*Step{cur.step, aug},
				},
			}
			grew = true
		}
		if !grew {
			break
		}
	}
	if !goal.To.SubsetOf(cur.set) {
		return nil, false
	}
	if goal.To.Equal(cur.set) && goal.From.Equal(x) {
		return cur.step, true
	}
	// Project down: x → cur.set, cur.set → goal.To (reflexivity)
	// ⊢ x → goal.To.
	refl := &Step{Conclusion: dep.FD{From: cur.set, To: goal.To}, Rule: RuleReflexivity}
	return &Step{
		Conclusion: goal,
		Rule:       RuleTransitivity,
		Premises:   []*Step{cur.step, refl},
	}, true
}

// ProveEFD searches for a derivation of the EFD goal using only the
// E-rules over the EFDs of Σ (Proposition 2(b): the plain FDs cannot
// contribute).
func (p *Prover) ProveEFD(goal dep.EFD) (*Step, bool) {
	x := goal.From
	cur := &Step{Conclusion: dep.NewEFD(x, x), Rule: RuleEReflexivity}
	curSet := x
	for {
		grew := false
		for _, g := range p.given {
			d, ok := g.(dep.EFD)
			if !ok {
				continue
			}
			if !d.From.SubsetOf(curSet) || d.To.SubsetOf(curSet) {
				continue
			}
			aug := &Step{
				Conclusion: dep.NewEFD(curSet, curSet.Union(d.To)),
				Rule:       RuleEAugmentation,
				Premises:   []*Step{{Conclusion: d, Rule: RuleGiven}},
			}
			next := curSet.Union(d.To)
			cur = &Step{
				Conclusion: dep.NewEFD(x, next),
				Rule:       RuleETransitivity,
				Premises:   []*Step{cur, aug},
			}
			curSet = next
			grew = true
		}
		if !grew {
			break
		}
	}
	if !goal.To.SubsetOf(curSet) {
		return nil, false
	}
	refl := &Step{Conclusion: dep.NewEFD(curSet, goal.To), Rule: RuleEReflexivity}
	return &Step{
		Conclusion: goal,
		Rule:       RuleETransitivity,
		Premises:   []*Step{cur, refl},
	}, true
}

// Prove dispatches on the goal's kind.
func (p *Prover) Prove(goal dep.Dependency) (*Step, bool) {
	switch g := goal.(type) {
	case dep.FD:
		return p.ProveFD(g)
	case dep.EFD:
		return p.ProveEFD(g)
	}
	return nil, false
}

// Verify checks a proof tree: every step's conclusion must follow from
// its premises by its rule, and leaves must be given dependencies or
// reflexivity instances. Returns the first violation.
func (p *Prover) Verify(s *Step) error {
	for _, prem := range s.Premises {
		if err := p.Verify(prem); err != nil {
			return err
		}
	}
	switch s.Rule {
	case RuleGiven:
		for _, g := range p.given {
			if g.Key() == s.Conclusion.Key() {
				return nil
			}
		}
		return fmt.Errorf("axioms: %v not among the given dependencies", s.Conclusion)
	case RuleReflexivity:
		f, ok := s.Conclusion.(dep.FD)
		if !ok || !f.To.SubsetOf(f.From) || len(s.Premises) != 0 {
			return fmt.Errorf("axioms: bad reflexivity step %v", s)
		}
		return nil
	case RuleEReflexivity:
		f, ok := s.Conclusion.(dep.EFD)
		if !ok || !f.To.SubsetOf(f.From) || len(s.Premises) != 0 {
			return fmt.Errorf("axioms: bad e-reflexivity step %v", s)
		}
		return nil
	case RuleAugmentation, RuleEAugmentation:
		if len(s.Premises) != 1 {
			return fmt.Errorf("axioms: augmentation needs one premise")
		}
		pf, pt, ok1 := sides(s.Premises[0].Conclusion)
		cf, ct, ok2 := sides(s.Conclusion)
		if !ok1 || !ok2 || kind(s.Conclusion) != kind(s.Premises[0].Conclusion) {
			return fmt.Errorf("axioms: augmentation kind mismatch at %v", s)
		}
		// Conclusion must be XZ → YZ for some Z: premise sides contained,
		// and the added attributes on both sides identical.
		if !pf.SubsetOf(cf) || !pt.SubsetOf(ct) {
			return fmt.Errorf("axioms: augmentation shrank sides at %v", s)
		}
		if !ct.Diff(pt).SubsetOf(cf) {
			return fmt.Errorf("axioms: augmentation added unshared attributes at %v", s)
		}
		return nil
	case RuleTransitivity, RuleETransitivity:
		if len(s.Premises) != 2 {
			return fmt.Errorf("axioms: transitivity needs two premises")
		}
		af, at, ok1 := sides(s.Premises[0].Conclusion)
		bf, bt, ok2 := sides(s.Premises[1].Conclusion)
		cf, ct, ok3 := sides(s.Conclusion)
		if !ok1 || !ok2 || !ok3 {
			return fmt.Errorf("axioms: transitivity on non-FD/EFD at %v", s)
		}
		if kind(s.Conclusion) != kind(s.Premises[0].Conclusion) ||
			kind(s.Conclusion) != kind(s.Premises[1].Conclusion) {
			return fmt.Errorf("axioms: transitivity kind mismatch at %v", s)
		}
		if !cf.Equal(af) || !bf.SubsetOf(at) || !ct.SubsetOf(bt) {
			return fmt.Errorf("axioms: transitivity sides do not chain at %v", s)
		}
		return nil
	case RuleDemotion:
		if len(s.Premises) != 1 {
			return fmt.Errorf("axioms: demotion needs one premise")
		}
		e, ok := s.Premises[0].Conclusion.(dep.EFD)
		f, ok2 := s.Conclusion.(dep.FD)
		if !ok || !ok2 || !f.From.Equal(e.From) || !f.To.Equal(e.To) {
			return fmt.Errorf("axioms: bad demotion at %v", s)
		}
		return nil
	}
	return fmt.Errorf("axioms: unknown rule %q", s.Rule)
}

func sides(d dep.Dependency) (from, to attr.Set, ok bool) {
	switch x := d.(type) {
	case dep.FD:
		return x.From, x.To, true
	case dep.EFD:
		return x.From, x.To, true
	}
	return attr.Set{}, attr.Set{}, false
}

func kind(d dep.Dependency) dep.Kind { return d.Kind() }
