package axioms

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/closure"
	"github.com/constcomp/constcomp/internal/dep"
)

func prover(t testing.TB, u *attr.Universe, text string) *Prover {
	t.Helper()
	sigma, err := dep.ParseSet(u, text)
	if err != nil {
		t.Fatal(err)
	}
	return NewProver(sigma)
}

func TestProveFDTransitive(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	p := prover(t, u, "A -> B\nB -> C")
	goal := dep.NewFD(u.MustSet("A"), u.MustSet("C"))
	proof, ok := p.ProveFD(goal)
	if !ok {
		t.Fatal("derivable FD not proved")
	}
	if proof.Conclusion.Key() != goal.Key() {
		t.Fatalf("proved %v, wanted %v", proof.Conclusion, goal)
	}
	if err := p.Verify(proof); err != nil {
		t.Fatalf("proof does not verify: %v\n%s", err, proof.Render())
	}
	if proof.Size() < 3 {
		t.Errorf("suspiciously small proof:\n%s", proof.Render())
	}
}

func TestProveFDUnderivable(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	p := prover(t, u, "A -> B")
	if _, ok := p.ProveFD(dep.NewFD(u.MustSet("B"), u.MustSet("A"))); ok {
		t.Error("underivable FD proved")
	}
	if _, ok := p.ProveFD(dep.NewFD(u.MustSet("A"), u.MustSet("C"))); ok {
		t.Error("underivable FD proved")
	}
}

func TestProveFDReflexive(t *testing.T) {
	u := attr.MustUniverse("A", "B")
	p := prover(t, u, "")
	proof, ok := p.ProveFD(dep.NewFD(u.MustSet("A", "B"), u.MustSet("A")))
	if !ok {
		t.Fatal("reflexive FD not proved")
	}
	if err := p.Verify(proof); err != nil {
		t.Fatal(err)
	}
}

func TestProveFDThroughEFD(t *testing.T) {
	// Demotion: A =>e B contributes A -> B to FD derivations.
	u := attr.MustUniverse("A", "B", "C")
	p := prover(t, u, "A =>e B\nB -> C")
	proof, ok := p.ProveFD(dep.NewFD(u.MustSet("A"), u.MustSet("C")))
	if !ok {
		t.Fatal("FD through EFD not proved")
	}
	if err := p.Verify(proof); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(proof.Render(), string(RuleDemotion)) {
		t.Errorf("proof does not use demotion:\n%s", proof.Render())
	}
}

func TestProveEFD(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	p := prover(t, u, "A =>e B\nB =>e C\nA -> C")
	proof, ok := p.ProveEFD(dep.NewEFD(u.MustSet("A"), u.MustSet("C")))
	if !ok {
		t.Fatal("derivable EFD not proved")
	}
	if err := p.Verify(proof); err != nil {
		t.Fatalf("%v\n%s", err, proof.Render())
	}
	// Prop 2(b): the plain FD A -> C must NOT let us derive C's EFD from
	// elsewhere: B =>e A is underivable even though... it just is.
	if _, ok := p.ProveEFD(dep.NewEFD(u.MustSet("C"), u.MustSet("A"))); ok {
		t.Error("underivable EFD proved")
	}
	// And plain FDs alone never give EFDs.
	p2 := prover(t, u, "A -> B")
	if _, ok := p2.ProveEFD(dep.NewEFD(u.MustSet("A"), u.MustSet("B"))); ok {
		t.Error("EFD derived from a plain FD (violates Prop 2b)")
	}
}

func TestProveDispatch(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	p := prover(t, u, "A -> B")
	if _, ok := p.Prove(dep.NewFD(u.MustSet("A"), u.MustSet("B"))); !ok {
		t.Error("dispatch FD failed")
	}
	if _, ok := p.Prove(dep.NewMVD(u.MustSet("A"), u.MustSet("B"))); ok {
		t.Error("MVD goal accepted")
	}
}

func TestVerifyRejectsBogusProofs(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	p := prover(t, u, "A -> B")
	bogus := []*Step{
		// Claims a given that is not given.
		{Conclusion: dep.NewFD(u.MustSet("B"), u.MustSet("C")), Rule: RuleGiven},
		// Reflexivity with Y ⊄ X.
		{Conclusion: dep.NewFD(u.MustSet("A"), u.MustSet("B")), Rule: RuleReflexivity},
		// Transitivity that does not chain.
		{
			Conclusion: dep.NewFD(u.MustSet("A"), u.MustSet("C")),
			Rule:       RuleTransitivity,
			Premises: []*Step{
				{Conclusion: dep.NewFD(u.MustSet("A"), u.MustSet("B")), Rule: RuleGiven},
				{Conclusion: dep.NewFD(u.MustSet("C"), u.MustSet("C")), Rule: RuleReflexivity},
			},
		},
		// Demotion of a non-EFD.
		{
			Conclusion: dep.NewFD(u.MustSet("A"), u.MustSet("B")),
			Rule:       RuleDemotion,
			Premises: []*Step{
				{Conclusion: dep.NewFD(u.MustSet("A"), u.MustSet("B")), Rule: RuleGiven},
			},
		},
		// Unknown rule.
		{Conclusion: dep.NewFD(u.MustSet("A"), u.MustSet("B")), Rule: Rule("magic")},
	}
	for i, s := range bogus {
		if err := p.Verify(s); err == nil {
			t.Errorf("bogus proof %d verified", i)
		}
	}
}

// randomSigma draws a random FD/EFD set over u.
func randomSigma(u *attr.Universe, rng *rand.Rand) *dep.Set {
	sigma := dep.NewSet(u)
	for i := 0; i < 1+rng.Intn(4); i++ {
		lhs, rhs := u.Empty(), u.Empty()
		for a := 0; a < u.Size(); a++ {
			switch rng.Intn(3) {
			case 0:
				lhs = lhs.With(attr.ID(a))
			case 1:
				rhs = rhs.With(attr.ID(a))
			}
		}
		if lhs.IsEmpty() || rhs.IsEmpty() {
			continue
		}
		if rng.Intn(2) == 0 {
			sigma.Add(dep.NewEFD(lhs, rhs))
		} else {
			sigma.Add(dep.NewFD(lhs, rhs))
		}
	}
	return sigma
}

func randomFDGoal(u *attr.Universe, rng *rand.Rand) dep.FD {
	lhs, rhs := u.Empty(), u.Empty()
	for a := 0; a < u.Size(); a++ {
		switch rng.Intn(3) {
		case 0:
			lhs = lhs.With(attr.ID(a))
		case 1:
			rhs = rhs.With(attr.ID(a))
		}
	}
	if rhs.IsEmpty() {
		rhs = rhs.With(attr.ID(rng.Intn(u.Size())))
	}
	return dep.NewFD(lhs, rhs)
}

// TestQuickSoundAndComplete: derivability coincides with semantic
// implication (Armstrong completeness + Props 1/2), and every produced
// proof verifies.
func TestQuickSoundAndComplete(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		sigma := randomSigma(u, rng)
		p := NewProver(sigma)
		goal := randomFDGoal(u, rng)
		// Semantic: closure over FDs + EFD-underlying FDs (Prop 2a).
		want := closure.Implies(sigma.WithFD().FDs(), goal)
		proof, ok := p.ProveFD(goal)
		if ok != want {
			return false
		}
		if ok {
			if p.Verify(proof) != nil {
				return false
			}
			if proof.Conclusion.Key() != goal.Key() {
				return false
			}
		}
		// EFD goal: semantic oracle is closure over EFD-FDs only
		// (Props 1, 2b).
		egoal := dep.NewEFD(goal.From, goal.To)
		var efds []dep.FD
		for _, e := range sigma.EFDs() {
			efds = append(efds, e.FD())
		}
		ewant := closure.Implies(efds, goal)
		eproof, eok := p.ProveEFD(egoal)
		if eok != ewant {
			return false
		}
		if eok && p.Verify(eproof) != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestRenderShape(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	p := prover(t, u, "A -> B\nB -> C")
	proof, _ := p.ProveFD(dep.NewFD(u.MustSet("A"), u.MustSet("C")))
	out := proof.Render()
	if !strings.Contains(out, "given") || !strings.Contains(out, "transitivity") {
		t.Errorf("render missing rules:\n%s", out)
	}
	if len(strings.Split(strings.TrimSpace(out), "\n")) != proof.Size() {
		t.Error("render line count != proof size")
	}
}
