package netserve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/workload"
)

// newEDMServer builds a server with the EDM "ed" view over fsys (nil
// for a plain MemFS) and returns it with its httptest front.
func newEDMServer(t *testing.T, fsys store.FS, sopts Options, popts serve.Options) (*Server, *httptest.Server, *workload.EDM) {
	t.Helper()
	edm := workload.NewEDM()
	pair := core.MustPair(edm.Schema, edm.ED, edm.DM)
	if fsys == nil {
		fsys = store.NewMemFS()
	}
	st, err := store.Create(fsys, pair, edm.Instance(8, 4), edm.Syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(sopts)
	if err := srv.AddView("ed", st, edm.Syms, popts); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	return srv, ts, edm
}

func postJSON(t *testing.T, url, tenant string, req SubmitRequest) (*http.Response, SubmitResponse) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	hreq, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	hreq.Header.Set("Content-Type", ContentTypeJSON)
	if tenant != "" {
		hreq.Header.Set(HeaderTenant, tenant)
	}
	resp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sr SubmitResponse
	if resp.Header.Get("Content-Type") == ContentTypeJSON {
		if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil && resp.StatusCode == http.StatusOK {
			t.Fatalf("decode submit response: %v", err)
		}
	}
	return resp, sr
}

func getView(t *testing.T, url string) (*http.Response, ViewResponse) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var vr ViewResponse
	if err := json.NewDecoder(resp.Body).Decode(&vr); err != nil {
		t.Fatalf("decode view: %v", err)
	}
	return resp, vr
}

// pollView reads the view until pred holds. Publishing is lazy (the
// committer hands views to the read side only after the first read) and
// runs after acks, so a read racing its own ack may briefly see the
// previous view.
func pollView(t *testing.T, url string, pred func(*http.Response, ViewResponse) bool) (*http.Response, ViewResponse) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, vr := getView(t, url)
		if pred(resp, vr) {
			return resp, vr
		}
		if time.Now().After(deadline) {
			t.Fatalf("view never reached the expected state; last rows %v (seq %d)", vr.Rows, vr.Seq)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestServerSubmitAndReadJSON: the JSON protocol end to end — submit a
// mixed batch, read the view back, check headers and identity marking.
func TestServerSubmitAndReadJSON(t *testing.T) {
	_, ts, _ := newEDMServer(t, nil, Options{}, serve.Options{MaxBatch: 4})

	// Warm the read path: view publishing is lazy until the first read.
	getView(t, ts.URL+"/v1/views/ed")

	resp, sr := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{Ops: []WireOp{
		{Kind: KindInsert, Tuple: []string{"alice", "dept1"}},
		{Kind: KindReplace, Tuple: []string{"alice", "dept1"}, With: []string{"alice", "dept2"}},
		{Kind: KindDelete, Tuple: []string{"nobody", "dept1"}}, // identity: not in the view
		{Kind: KindInsert, Tuple: []string{"bob", "dept9"}},    // no such department: rejected
	}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	if len(sr.Results) != 4 {
		t.Fatalf("got %d results, want 4", len(sr.Results))
	}
	if !sr.Results[0].Applied || sr.Results[0].Identity {
		t.Errorf("insert: %+v, want applied non-identity", sr.Results[0])
	}
	if !sr.Results[1].Applied {
		t.Errorf("replace: %+v, want applied", sr.Results[1])
	}
	if !sr.Results[2].Applied || !sr.Results[2].Identity {
		t.Errorf("delete of absent tuple: %+v, want applied identity", sr.Results[2])
	}
	if !sr.Results[3].Rejected || (sr.Results[3].Reason == "" && sr.Results[3].Error == "") {
		t.Errorf("impossible insert: %+v, want rejected with a reason", sr.Results[3])
	}

	vresp, vr := pollView(t, ts.URL+"/v1/views/ed", func(_ *http.Response, vr ViewResponse) bool {
		for _, row := range vr.Rows {
			if row[0] == "alice" && row[1] == "dept2" {
				return true
			}
		}
		return false
	})
	if got := vresp.Header.Get(HeaderDegraded); got != "false" {
		t.Errorf("%s = %q, want false", HeaderDegraded, got)
	}
	if vr.Seq == 0 {
		t.Errorf("view seq = 0, want progress after applied ops")
	}
	if hdr := vresp.Header.Get(HeaderSeq); hdr != fmt.Sprint(vr.Seq) {
		t.Errorf("%s = %q, body seq %d", HeaderSeq, hdr, vr.Seq)
	}
	for _, row := range vr.Rows {
		if row[0] == "bob" {
			t.Errorf("rejected insert reached the view: %v", row)
		}
	}
}

// TestServerSubmitFramePath: the binary framing roundtrips the same
// semantics as JSON, including the identity status byte.
func TestServerSubmitFramePath(t *testing.T) {
	_, ts, _ := newEDMServer(t, nil, Options{}, serve.Options{MaxBatch: 4})

	var body []byte
	var err error
	for _, op := range []WireOp{
		{Kind: KindInsert, Tuple: []string{"carol", "dept0"}},
		{Kind: KindDelete, Tuple: []string{"carol", "dept0"}},
		{Kind: KindDelete, Tuple: []string{"carol", "dept0"}}, // now absent: identity
	} {
		if body, err = AppendOpFrame(body, op); err != nil {
			t.Fatal(err)
		}
	}
	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/views/ed/submit", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", ContentTypeFrame)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != ContentTypeFrame {
		t.Fatalf("response Content-Type = %q", ct)
	}
	br := bufio.NewReader(resp.Body)
	var results []OpResult
	for {
		res, err := ReadResultFrame(br)
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	if len(results) != 3 {
		t.Fatalf("got %d results, want 3", len(results))
	}
	if !results[0].Applied || results[0].Identity {
		t.Errorf("insert: %+v", results[0])
	}
	if !results[1].Applied || results[1].Identity {
		t.Errorf("first delete: %+v", results[1])
	}
	if !results[2].Applied || !results[2].Identity {
		t.Errorf("second delete: %+v, want applied identity", results[2])
	}
}

// TestServerTenantThrottle: a metered tenant gets 429 + Retry-After past
// its burst; an unmetered tenant on the same server is unaffected.
func TestServerTenantThrottle(t *testing.T) {
	_, ts, _ := newEDMServer(t, nil, Options{
		Admission: AdmissionOptions{
			Tenants: map[string]TenantConfig{"metered": {Rate: 1, Burst: 2}},
		},
	}, serve.Options{MaxBatch: 4})

	submit := func(tenant, emp string) *http.Response {
		resp, _ := postJSON(t, ts.URL+"/v1/views/ed/submit", tenant, SubmitRequest{
			Ops: []WireOp{{Kind: KindInsert, Tuple: []string{emp, "dept0"}}},
		})
		return resp
	}
	if resp := submit("metered", "m1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("first metered submit: %d", resp.StatusCode)
	}
	if resp := submit("metered", "m2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("second metered submit: %d", resp.StatusCode)
	}
	resp := submit("metered", "m3")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("past-burst submit: %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	if resp := submit("", "free1"); resp.StatusCode != http.StatusOK {
		t.Errorf("unmetered tenant caught by the throttle: %d", resp.StatusCode)
	}
}

// TestServerDegradedReadDuringHealing is the degraded-read protocol
// test: while a pipeline is healing from an injected journal fault —
// held open by a gated Resurrect — reads still answer 200 but carry
// X-Constcomp-Degraded: true; once healing completes the header drops
// and the faulted op's effect is visible. Run under -race this also
// proves the read path and the healing committer share no unsynchronized
// state.
func TestServerDegradedReadDuringHealing(t *testing.T) {
	edm := workload.NewEDM()
	pair := core.MustPair(edm.Schema, edm.ED, edm.DM)
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{
		Match:      func(name string) bool { return name == store.JournalFile },
		FailSyncAt: 2,
	})
	st, err := store.Create(ffs, pair, edm.Instance(8, 4), edm.Syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	srv := NewServer(Options{})
	err = srv.AddView("ed", st, edm.Syms, serve.Options{
		MaxBatch: 1,
		Resurrect: func() (*store.Session, error) {
			<-gate // hold the pipeline in its healing window
			ns, _, err := store.Recover(ffs, pair, edm.Syms, store.Options{SnapshotEvery: 1 << 20})
			return ns, err
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer func() {
		ts.Close()
		_ = srv.Close()
	}()

	// Warm the read path (publishing is lazy until the first read), then
	// land one op that syncs fine and wait for its publish — the stale
	// view served during healing must contain it.
	getView(t, ts.URL+"/v1/views/ed")
	resp, sr := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{
		Ops: []WireOp{{Kind: KindInsert, Tuple: []string{"w1", "dept0"}}},
	})
	if resp.StatusCode != http.StatusOK || !sr.Results[0].Applied {
		t.Fatalf("warm-up submit: status %d, %+v", resp.StatusCode, sr.Results)
	}
	if resp.Header.Get(HeaderDegraded) != "false" {
		t.Fatalf("healthy submit marked degraded")
	}
	pollView(t, ts.URL+"/v1/views/ed", func(_ *http.Response, vr ViewResponse) bool {
		return hasRow(vr, "w1")
	})

	// Second op trips the journal fault; its ack blocks until healing
	// completes, so submit from the background.
	done := make(chan SubmitResponse, 1)
	go func() {
		_, sr := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{
			Ops: []WireOp{{Kind: KindInsert, Tuple: []string{"w2", "dept1"}}},
		})
		done <- sr
	}()

	// The pipeline enters its healing window (Resurrect blocked on the
	// gate); reads must stay 200 and be explicitly marked degraded.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, vr := getView(t, ts.URL+"/v1/views/ed")
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("read during healing: status %d", resp.StatusCode)
		}
		if resp.Header.Get(HeaderDegraded) == "true" {
			if !vr.Degraded {
				t.Error("degraded header set but body says false")
			}
			// The degraded read serves the last published (pre-fault)
			// view: w1 present, w2 not yet visible.
			if !hasRow(vr, "w1") || hasRow(vr, "w2") {
				t.Errorf("degraded view rows: %v", vr.Rows)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pipeline never reported degraded")
		}
		time.Sleep(time.Millisecond)
	}

	close(gate) // let the resurrection proceed
	sr = <-done
	if len(sr.Results) != 1 || !sr.Results[0].Applied {
		t.Fatalf("faulted op after healing: %+v", sr.Results)
	}
	for {
		resp, vr := getView(t, ts.URL+"/v1/views/ed")
		if resp.Header.Get(HeaderDegraded) == "false" {
			if !hasRow(vr, "w1") || !hasRow(vr, "w2") {
				t.Errorf("post-heal view rows: %v", vr.Rows)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("pipeline never recovered from degraded")
		}
		time.Sleep(time.Millisecond)
	}
	if !ffs.Tripped() {
		t.Fatal("fault never fired; test exercised nothing")
	}
}

func hasRow(vr ViewResponse, emp string) bool {
	for _, row := range vr.Rows {
		if row[0] == emp {
			return true
		}
	}
	return false
}

// TestServerRequestLimits: op-count and malformed-body handling.
func TestServerRequestLimits(t *testing.T) {
	_, ts, _ := newEDMServer(t, nil, Options{MaxOpsPerRequest: 2}, serve.Options{MaxBatch: 4})

	ops := make([]WireOp, 3)
	for i := range ops {
		ops[i] = WireOp{Kind: KindInsert, Tuple: []string{fmt.Sprintf("e%d", i), "dept0"}}
	}
	resp, _ := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{Ops: ops})
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("3 ops with limit 2: status %d, want 413", resp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty op list: status %d, want 400", resp.StatusCode)
	}

	hreq, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/views/ed/submit", strings.NewReader("{not json"))
	hreq.Header.Set("Content-Type", ContentTypeJSON)
	bresp, err := http.DefaultClient.Do(hreq)
	if err != nil {
		t.Fatal(err)
	}
	bresp.Body.Close()
	if bresp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed body: status %d, want 400", bresp.StatusCode)
	}

	resp, _ = postJSON(t, ts.URL+"/v1/views/nope/submit", "", SubmitRequest{Ops: ops[:1]})
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown view: status %d, want 404", resp.StatusCode)
	}

	wresp, _ := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{
		Ops: []WireOp{{Kind: KindInsert, Tuple: []string{"only-one-field"}}},
	})
	if wresp.StatusCode != http.StatusBadRequest {
		t.Errorf("wrong tuple width: status %d, want 400", wresp.StatusCode)
	}
}
