package netserve

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"math"
	"sync"

	"github.com/constcomp/constcomp/internal/obs"
)

// ErrTenantTableFull rejects a request from a tenant the admission
// table has no room to track; known tenants are unaffected.
var ErrTenantTableFull = errors.New("netserve: tenant table full")

// ErrAdmissionClosed fails waiters when the admission gate shuts down.
var ErrAdmissionClosed = errors.New("netserve: admission closed")

// ThrottleError is returned when a tenant's token bucket cannot cover a
// request: the tenant is over its configured sustained rate. It carries
// the wait until the bucket has refilled enough, which the HTTP layer
// converts into a Retry-After.
type ThrottleError struct {
	Tenant       string
	RetryAfterNS int64
}

func (e *ThrottleError) Error() string {
	return fmt.Sprintf("netserve: tenant %q throttled, retry in %dns", e.Tenant, e.RetryAfterNS)
}

// TenantConfig shapes one tenant's admission.
type TenantConfig struct {
	// Weight is the tenant's fair share under contention. Zero means 1.
	Weight float64
	// Rate is the sustained ops/second the token bucket allows. Zero
	// means unlimited (no bucket; WFQ still applies).
	Rate float64
	// Burst is the bucket capacity in ops. Zero means one second's
	// worth (Rate).
	Burst float64
}

func (c TenantConfig) weight() float64 {
	if c.Weight > 0 {
		return c.Weight
	}
	return 1
}

func (c TenantConfig) burst() float64 {
	if c.Burst > 0 {
		return c.Burst
	}
	return c.Rate
}

// AdmissionOptions configures the gate. The zero value is ready to use.
type AdmissionOptions struct {
	// Slots is how many admitted submissions may be in flight toward
	// the pipelines at once; the queue forms behind them. Default 16.
	Slots int
	// MaxTenants bounds the tenant table — the gate tracks per-tenant
	// bucket and virtual-time state, and an unbounded table is a memory
	// leak under adversarial tenant names. Default 64.
	MaxTenants int
	// Default applies to tenants not named in Tenants.
	Default TenantConfig
	// Tenants overrides per-tenant shaping by name.
	Tenants map[string]TenantConfig
	// Clock is the time source for bucket refill; nil means the real
	// monotonic clock.
	Clock obs.Clock
}

func (o AdmissionOptions) slots() int {
	if o.Slots > 0 {
		return o.Slots
	}
	return 16
}

func (o AdmissionOptions) maxTenants() int {
	if o.MaxTenants > 0 {
		return o.MaxTenants
	}
	return 64
}

func (o AdmissionOptions) clock() obs.Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return obs.SystemClock()
}

// tenantState is one tenant's admission record.
type tenantState struct {
	name string
	cfg  TenantConfig
	// Token bucket (Rate > 0 only): tokens may go negative when a
	// request larger than the remaining tokens is admitted from a full
	// bucket; the debt throttles subsequent requests until refill.
	tokens   float64
	refillNS int64
	// vfinish is the virtual finish time of the tenant's last queued
	// request — the WFQ state that spreads a backlogged tenant's
	// requests out in proportion to its weight.
	vfinish float64
	// granted counts ops admitted (immediately or after queueing);
	// the fairness property test reads it through Granted.
	granted int64
}

// waiter is one queued Acquire.
type waiter struct {
	ready  chan struct{}
	tenant *tenantState
	cost   float64
	vtag   float64
	seq    uint64 // FIFO tiebreak among equal tags
	idx    int    // heap index; -1 once granted or removed
	err    error  // set (before ready closes) only on shutdown
}

// waiterQueue is a min-heap by (vtag, seq).
type waiterQueue []*waiter

func (q waiterQueue) Len() int { return len(q) }
func (q waiterQueue) Less(i, j int) bool {
	if q[i].vtag != q[j].vtag {
		return q[i].vtag < q[j].vtag
	}
	return q[i].seq < q[j].seq
}
func (q waiterQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx, q[j].idx = i, j
}
func (q *waiterQueue) Push(x any) {
	w := x.(*waiter)
	w.idx = len(*q)
	*q = append(*q, w)
}
func (q *waiterQueue) Pop() any {
	old := *q
	n := len(old)
	w := old[n-1]
	old[n-1] = nil
	w.idx = -1
	*q = old[:n-1]
	return w
}

// Admission is the per-tenant gate in front of the submit path: a token
// bucket bounds each tenant's sustained rate, and weighted fair
// queueing (virtual-time, as in packet schedulers) arbitrates the
// in-flight slots under contention, so a tenant's share of a saturated
// server is proportional to its weight no matter how hard another
// tenant floods.
type Admission struct {
	opts  AdmissionOptions
	clock obs.Clock

	mu      sync.Mutex
	closed  bool
	free    int // free in-flight slots
	vtime   float64
	seq     uint64
	tenants map[string]*tenantState
	queue   waiterQueue
}

// NewAdmission builds the gate.
func NewAdmission(opts AdmissionOptions) *Admission {
	return &Admission{
		opts:    opts,
		clock:   opts.clock(),
		free:    opts.slots(),
		tenants: make(map[string]*tenantState, opts.maxTenants()),
	}
}

// tenantLocked finds or creates the tenant record.
func (a *Admission) tenantLocked(name string) (*tenantState, error) {
	if t, ok := a.tenants[name]; ok {
		return t, nil
	}
	if len(a.tenants) >= a.opts.maxTenants() {
		return nil, fmt.Errorf("%w: %d tenants tracked", ErrTenantTableFull, len(a.tenants))
	}
	cfg, ok := a.opts.Tenants[name]
	if !ok {
		cfg = a.opts.Default
	}
	t := &tenantState{name: name, cfg: cfg, tokens: cfg.burst(), refillNS: a.clock.NowNS()}
	a.tenants[name] = t
	return t, nil
}

// chargeLocked runs the token bucket for cost ops: refill by elapsed
// time, then either charge or compute the wait. A request admitted from
// a full bucket may drive tokens negative (cost > Burst would otherwise
// never clear), which self-limits the next requests.
func (a *Admission) chargeLocked(t *tenantState, cost float64) *ThrottleError {
	if t.cfg.Rate <= 0 {
		return nil
	}
	now := a.clock.NowNS()
	if dt := now - t.refillNS; dt > 0 {
		t.tokens = math.Min(t.cfg.burst(), t.tokens+t.cfg.Rate*float64(dt)/1e9)
	}
	t.refillNS = now
	need := math.Min(cost, t.cfg.burst())
	if t.tokens < need {
		wait := (need - t.tokens) / t.cfg.Rate * 1e9
		return &ThrottleError{Tenant: t.name, RetryAfterNS: int64(math.Ceil(wait))}
	}
	t.tokens -= cost
	return nil
}

// Acquire admits a request of cost ops for tenant, blocking in the
// weighted fair queue when all slots are busy. On success it returns
// the release closure that frees the slot (callers must invoke it
// exactly once, after their pipeline submission completes). Failure
// modes: *ThrottleError (over rate), ErrTenantTableFull, ctx
// cancellation while queued, ErrAdmissionClosed.
func (a *Admission) Acquire(ctx context.Context, tenant string, cost float64) (func(), error) {
	if cost <= 0 {
		cost = 1
	}
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return nil, ErrAdmissionClosed
	}
	t, err := a.tenantLocked(tenant)
	if err != nil {
		a.mu.Unlock()
		if m := nsmetrics.Load(); m != nil {
			m.tenantFull.Inc()
		}
		return nil, err
	}
	if terr := a.chargeLocked(t, cost); terr != nil {
		a.mu.Unlock()
		if m := nsmetrics.Load(); m != nil {
			m.throttled.Inc()
		}
		return nil, terr
	}
	if a.free > 0 {
		// Uncontended: grant immediately, advance the tenant's virtual
		// finish so a subsequent burst still spreads out fairly.
		a.free--
		start := math.Max(a.vtime, t.vfinish)
		t.vfinish = start + cost/t.cfg.weight()
		t.granted += int64(cost)
		a.mu.Unlock()
		if m := nsmetrics.Load(); m != nil {
			m.admitted.Inc()
		}
		return a.release, nil
	}
	// Contended: queue with a virtual finish tag. Backlogged requests
	// of one tenant chain off its previous finish, so the tags of a
	// flooder race ahead of the global virtual time and well-behaved
	// tenants' fresh requests sort before them.
	w := &waiter{ready: make(chan struct{}), tenant: t, cost: cost, seq: a.seq}
	a.seq++
	start := math.Max(a.vtime, t.vfinish)
	w.vtag = start + cost/t.cfg.weight()
	t.vfinish = w.vtag
	heap.Push(&a.queue, w)
	a.mu.Unlock()

	waitStart := a.clock.NowNS()
	select {
	case <-w.ready:
		if m := nsmetrics.Load(); m != nil {
			m.wfqWaitNs.ObserveDuration(a.clock.NowNS() - waitStart)
		}
		if w.err != nil {
			return nil, w.err
		}
		if m := nsmetrics.Load(); m != nil {
			m.admitted.Inc()
		}
		return a.release, nil
	case <-ctx.Done():
		a.mu.Lock()
		if w.idx >= 0 {
			heap.Remove(&a.queue, w.idx)
			a.mu.Unlock()
			return nil, ctx.Err()
		}
		a.mu.Unlock()
		// Lost the race: a release already granted this waiter (or
		// Close failed it). Consume the grant and put the slot back.
		<-w.ready
		if w.err == nil {
			a.release()
		}
		return nil, ctx.Err()
	}
}

// release frees one slot: hand it to the earliest-finish waiter, or
// bank it.
func (a *Admission) release() {
	a.mu.Lock()
	if len(a.queue) > 0 {
		w := heap.Pop(&a.queue).(*waiter)
		// Advance global virtual time to the granted tag so new
		// arrivals cannot sort before work already accepted.
		a.vtime = math.Max(a.vtime, w.vtag)
		w.tenant.granted += int64(w.cost)
		a.mu.Unlock()
		close(w.ready)
		return
	}
	a.free++
	a.mu.Unlock()
}

// Granted reports how many ops the tenant has been admitted for — the
// denominator of the fairness property.
func (a *Admission) Granted(tenant string) int64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	if t, ok := a.tenants[tenant]; ok {
		return t.granted
	}
	return 0
}

// Queued reports how many requests are waiting in the fair queue.
func (a *Admission) Queued() int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.queue)
}

// Close fails all queued waiters with ErrAdmissionClosed and rejects
// future Acquires.
func (a *Admission) Close() {
	a.mu.Lock()
	if a.closed {
		a.mu.Unlock()
		return
	}
	a.closed = true
	waiters := make([]*waiter, len(a.queue))
	copy(waiters, a.queue)
	for _, w := range waiters {
		w.idx = -1
		w.err = ErrAdmissionClosed
	}
	a.queue = nil
	a.mu.Unlock()
	for _, w := range waiters {
		close(w.ready)
	}
}
