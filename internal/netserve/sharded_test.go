package netserve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/shard"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/workload"
)

// newShardedEDMServer serves the EDM "ed" view from a K-shard
// multi-store over one shared MemFS. wrap, when non-nil, may replace a
// shard's FS (fault injection).
func newShardedEDMServer(t *testing.T, k, nEmp int, wrap func(i int, fsys store.FS) store.FS) (*httptest.Server, *workload.EDM, *shard.Multi) {
	t.Helper()
	edm := workload.NewEDM()
	pair := core.MustPair(edm.Schema, edm.ED, edm.DM)
	db := edm.Instance(nEmp, 4)
	mem := store.NewMemFS()
	fss := make([]store.FS, k)
	for i := range fss {
		fss[i] = shard.SubFS(mem, fmt.Sprintf("s%d/", i))
		if wrap != nil {
			fss[i] = wrap(i, fss[i])
		}
	}
	m, _, err := shard.Open(fss, pair, db, edm.Syms, shard.Options{Shards: k})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(Options{})
	if err := srv.AddSharded("ed", m, edm.Syms); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		_ = srv.Close()
	})
	return ts, edm, m
}

// shardResidents groups the fixture's employee indices by the shard
// their key routes to.
func shardResidents(router *shard.Router, nEmp int) map[int][]int {
	out := map[int][]int{}
	for i := 0; i < nEmp; i++ {
		s := router.ShardOfName(fmt.Sprintf("emp%d", i))
		out[s] = append(out[s], i)
	}
	return out
}

// TestShardedServerSubmitAndRead drives the JSON protocol against a
// sharded backend: union reads, per-shard status detail, single-shard
// submits, and a cross-shard replacement moving a row between key
// ranges.
func TestShardedServerSubmitAndRead(t *testing.T) {
	const k, nEmp = 4, 32
	ts, _, m := newShardedEDMServer(t, k, nEmp, nil)

	// The union view serves all rows regardless of placement.
	resp, vr := getView(t, ts.URL+"/v1/views/ed")
	if resp.StatusCode != http.StatusOK || len(vr.Rows) != nEmp {
		t.Fatalf("union read: status %d, %d rows, want %d", resp.StatusCode, len(vr.Rows), nEmp)
	}

	// The listing carries per-shard detail for a sharded view.
	hr, err := http.Get(ts.URL + "/v1/views")
	if err != nil {
		t.Fatal(err)
	}
	var listing []ViewStatus
	decodeBody(t, hr, &listing)
	if len(listing) != 1 || len(listing[0].Shards) != k {
		t.Fatalf("listing = %+v, want 1 view with %d shards", listing, k)
	}
	for _, ss := range listing[0].Shards {
		if ss.Degraded {
			t.Fatalf("shard %d degraded on a healthy server", ss.Shard)
		}
	}

	residents := shardResidents(m.Router(), nEmp)

	// A translatable single-shard insert: a fresh employee whose key
	// routes to a shard already holding its department.
	var ins WireOp
	for i := 0; ins.Kind == "" && i < 10000; i++ {
		name := fmt.Sprintf("new%d", i)
		s := m.Router().ShardOfName(name)
		if len(residents[s]) == 0 {
			continue
		}
		dept := fmt.Sprintf("dept%d", residents[s][0]%4)
		ins = WireOp{Kind: KindInsert, Tuple: []string{name, dept}}
	}
	if ins.Kind == "" {
		t.Fatal("no translatable insert candidate found")
	}

	// A cross-shard replacement: resident (e, d) with a surviving
	// sharer of d on its shard, moved to a fresh name on a different
	// shard that also holds d.
	var repl WireOp
	for s, res := range residents {
		if repl.Kind != "" {
			break
		}
		byDept := map[int][]int{}
		for _, i := range res {
			byDept[i%4] = append(byDept[i%4], i)
		}
		for d, emps := range byDept {
			if len(emps) < 2 {
				continue
			}
			for j := 0; repl.Kind == "" && j < 10000; j++ {
				name := fmt.Sprintf("mv%d", j)
				ns := m.Router().ShardOfName(name)
				if ns == s {
					continue
				}
				ok := false
				for _, i := range residents[ns] {
					if i%4 == d {
						ok = true
						break
					}
				}
				if ok {
					repl = WireOp{
						Kind:  KindReplace,
						Tuple: []string{fmt.Sprintf("emp%d", emps[0]), fmt.Sprintf("dept%d", d)},
						With:  []string{name, fmt.Sprintf("dept%d", d)},
					}
				}
			}
		}
	}
	if repl.Kind == "" {
		t.Fatal("no cross-shard replacement candidate found")
	}

	sresp, sr := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{Ops: []WireOp{
		ins,
		repl,
		{Kind: KindDelete, Tuple: []string{"nobody", "dept0"}}, // identity
		{Kind: KindInsert, Tuple: []string{"lost", "dept99"}},  // rejected: no such department anywhere
	}})
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("submit status %d", sresp.StatusCode)
	}
	if !sr.Results[0].Applied || !sr.Results[1].Applied {
		t.Fatalf("insert/replace not applied: %+v", sr.Results[:2])
	}
	if !sr.Results[2].Applied || !sr.Results[2].Identity {
		t.Fatalf("identity delete not marked: %+v", sr.Results[2])
	}
	if !sr.Results[3].Rejected {
		t.Fatalf("untranslatable insert not rejected: %+v", sr.Results[3])
	}
	if sresp.Header.Get(HeaderDegraded) != "false" {
		t.Fatalf("healthy submit reported degraded")
	}

	// The union view converges to the new state: +1 insert, replacement
	// renamed a row.
	pollView(t, ts.URL+"/v1/views/ed", func(_ *http.Response, vr ViewResponse) bool {
		if len(vr.Rows) != nEmp+1 {
			return false
		}
		seen := map[string]bool{}
		for _, row := range vr.Rows {
			seen[row[0]] = true
		}
		return seen[ins.Tuple[0]] && seen[repl.With[0]] && !seen[repl.Tuple[0]]
	})
}

// TestShardedServerDegradedConfinement injects one journal fsync fault
// into one shard and checks the blast radius through the HTTP surface:
// the faulted shard's pipeline resurrects and the op lands, while
// submissions routed to the other shards never see a degraded header.
func TestShardedServerDegradedConfinement(t *testing.T) {
	const k, nEmp = 4, 32
	// Pre-compute placement with an identical router so the fault can
	// be wired before the multi-store opens.
	edm := workload.NewEDM()
	router, err := shard.NewRouter(k, 0, edm.Syms)
	if err != nil {
		t.Fatal(err)
	}
	residents := shardResidents(router, nEmp)

	// The victim shard needs a department with two residents, so the
	// delete of one is translatable on-shard.
	victim, victimEmp := -1, -1
	for s, res := range residents {
		byDept := map[int][]int{}
		for _, i := range res {
			byDept[i%4] = append(byDept[i%4], i)
		}
		for _, emps := range byDept {
			if len(emps) >= 2 {
				victim, victimEmp = s, emps[0]
				break
			}
		}
		if victim >= 0 {
			break
		}
	}
	if victim < 0 {
		t.Fatal("no shard with a two-resident department")
	}

	var armed atomic.Bool
	wrap := func(i int, fsys store.FS) store.FS {
		if i != victim {
			return fsys
		}
		return store.NewFaultFS(fsys, store.FaultPlan{
			Match:      func(name string) bool { return armed.Load() && name == store.JournalFile },
			FailSyncAt: 1,
		})
	}
	ts, _, m := newShardedEDMServer(t, k, nEmp, wrap)
	_ = m
	armed.Store(true)

	// The journaled delete hits the armed fsync fault; resurrection
	// must absorb it and the op must still be acked applied.
	resp, sr := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{Ops: []WireOp{
		{Kind: KindDelete, Tuple: []string{fmt.Sprintf("emp%d", victimEmp), fmt.Sprintf("dept%d", victimEmp%4)}},
	}})
	if resp.StatusCode != http.StatusOK || !sr.Results[0].Applied {
		t.Fatalf("faulted-shard delete: status %d results %+v", resp.StatusCode, sr.Results)
	}

	// Healthy key ranges never report degraded, throughout and after
	// the victim's recovery. Identity deletes leave the view unchanged,
	// so they probe the degraded header without disturbing state; each
	// probe's key is chosen to route to the shard under test.
	for s, res := range residents {
		if s == victim || len(res) == 0 {
			continue
		}
		for probe, sent := 0, 0; sent < 3 && probe < 10000; probe++ {
			name := fmt.Sprintf("ghost%d", probe)
			if router.ShardOfName(name) != s {
				continue
			}
			sent++
			resp, sr := postJSON(t, ts.URL+"/v1/views/ed/submit", "", SubmitRequest{Ops: []WireOp{
				{Kind: KindDelete, Tuple: []string{name, fmt.Sprintf("dept%d", res[0]%4)}},
			}})
			if resp.StatusCode != http.StatusOK || !sr.Results[0].Applied {
				t.Fatalf("healthy shard %d probe: status %d results %+v", s, resp.StatusCode, sr.Results)
			}
			if resp.Header.Get(HeaderDegraded) != "false" {
				t.Fatalf("healthy shard %d reported degraded during victim recovery", s)
			}
		}
	}
}

// decodeBody decodes one JSON response body.
func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}
