package netserve

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
)

// Options tunes the server. The zero value is ready to use.
type Options struct {
	// Admission configures the per-tenant gate on the submit path.
	Admission AdmissionOptions
	// MaxOpsPerRequest bounds one submit's op count (413 beyond it).
	// Default 256.
	MaxOpsPerRequest int
	// MaxBodyBytes bounds a JSON submit body. Default 1 MiB.
	MaxBodyBytes int64
	// ConnOpBudget bounds the ops one client connection may submit over
	// its lifetime; 0 disables. Exhausted connections get 429 with
	// Connection: close, so a runaway client is forced to re-dial
	// through fresh admission. Requires wiring ConnContext into the
	// http.Server.
	ConnOpBudget int64
	// Registry, when set, is served at /metricz (JSON) and
	// /metricz.prom (Prometheus text).
	Registry *obs.Registry
}

func (o Options) maxOps() int {
	if o.MaxOpsPerRequest > 0 {
		return o.MaxOpsPerRequest
	}
	return 256
}

func (o Options) maxBody() int64 {
	if o.MaxBodyBytes > 0 {
		return o.MaxBodyBytes
	}
	return 1 << 20
}

// viewState is one named view behind the server.
type viewState struct {
	name  string
	be    backend
	syms  *value.Symbols
	attrs []string // column names in view column order
	width int
}

// published returns the view to serve a read from right now.
func (vs *viewState) published() (*relation.Relation, uint64, bool) {
	return vs.be.Published()
}

// Server fronts one serve.Pipeline per named view schema with HTTP.
// Handlers run on net/http's connection goroutines; all shared state is
// behind the views lock, the admission gate's lock, or the pipelines'
// own synchronization.
type Server struct {
	opts Options
	adm  *Admission

	mu    sync.RWMutex
	views map[string]*viewState

	mux *http.ServeMux
}

// NewServer builds a server with no views; add them with AddView.
func NewServer(opts Options) *Server {
	s := &Server{
		opts:  opts,
		adm:   NewAdmission(opts.Admission),
		views: make(map[string]*viewState),
		mux:   http.NewServeMux(),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /v1/views", s.handleListViews)
	s.mux.HandleFunc("GET /v1/views/{name}", s.handleGetView)
	s.mux.HandleFunc("POST /v1/views/{name}/submit", s.handleSubmit)
	if opts.Registry != nil {
		s.mux.HandleFunc("GET /metricz", s.handleMetrics)
		s.mux.HandleFunc("GET /metricz.prom", s.handleMetricsProm)
	}
	return s
}

// AddView starts a self-healing pipeline over st and exposes it as
// /v1/views/{name}. syms must be the symbol table st journals with (it
// is concurrency-safe; handlers intern incoming constants through it).
// The caller must not use st directly afterwards.
func (s *Server) AddView(name string, st *store.Session, syms *value.Symbols, popts serve.Options) error {
	if name == "" {
		return fmt.Errorf("netserve: empty view name")
	}
	view := st.ViewRef()
	u := st.Pair().Schema().Universe()
	ids := view.Attrs().IDs()
	attrs := make([]string, len(ids))
	for i, id := range ids {
		attrs[i] = u.Name(id)
	}
	pipe, err := serve.New(st, popts)
	if err != nil {
		return err
	}
	vs := &viewState{
		name:  name,
		be:    &pipelineBackend{pipe: pipe, initView: view, initSeq: st.Seq()},
		syms:  syms,
		attrs: attrs,
		width: len(attrs),
	}
	s.mu.Lock()
	_, dup := s.views[name]
	if !dup {
		s.views[name] = vs
	}
	s.mu.Unlock()
	if dup {
		// Close outside the lock: it waits for the pipeline's goroutines
		// to drain, and every request handler contends on s.mu.
		_ = pipe.Close()
		return fmt.Errorf("netserve: view %q already registered", name)
	}
	return nil
}

// view looks a registered view up.
func (s *Server) view(name string) (*viewState, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	vs, ok := s.views[name]
	return vs, ok
}

// viewNames returns the registered names sorted (deterministic output;
// map iteration order must never reach a response).
func (s *Server) viewNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.views))
	for name := range s.views {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Close drains every backend and shuts the admission gate. Each
// backend closes its own store sessions (which a resurrection may have
// swapped since the view was added).
func (s *Server) Close() error {
	s.adm.Close()
	var firstErr error
	for _, name := range s.viewNames() {
		vs, ok := s.view(name)
		if !ok {
			continue
		}
		if err := vs.be.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if m := nsmetrics.Load(); m != nil {
			m.requests.Inc()
		}
		s.mux.ServeHTTP(w, r)
	})
}

// connBudget is the per-connection op allowance installed by
// ConnContext.
type connBudget struct{ left atomic.Int64 }

// take reserves n ops, reporting whether the budget covered them.
func (b *connBudget) take(n int64) bool { return b.left.Add(-n) >= 0 }

type connBudgetKey struct{}

// ConnContext is for http.Server.ConnContext: it attaches the
// per-connection op budget each submit draws down.
func (s *Server) ConnContext(ctx context.Context, c net.Conn) context.Context {
	if s.opts.ConnOpBudget <= 0 {
		return ctx
	}
	b := &connBudget{}
	b.left.Store(s.opts.ConnOpBudget)
	return context.WithValue(ctx, connBudgetKey{}, b)
}

// tenantOf extracts the request's tenant.
func tenantOf(r *http.Request) string {
	if t := r.Header.Get(HeaderTenant); t != "" {
		return t
	}
	return TenantDefault
}

// writeJSON emits one JSON response.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
	if m := nsmetrics.Load(); m != nil {
		m.responses.Inc()
		if status >= 500 {
			m.errors5xx.Inc()
		}
	}
}

// errBody is the uniform error envelope.
type errBody struct {
	Error string `json:"error"`
}

func writeErr(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	type health struct {
		OK    bool         `json:"ok"`
		Views []ViewStatus `json:"views"`
	}
	h := health{OK: true}
	for _, name := range s.viewNames() {
		vs, ok := s.view(name)
		if !ok {
			continue
		}
		_, seq, degraded := vs.published()
		h.Views = append(h.Views, ViewStatus{Name: name, Seq: seq, Degraded: degraded,
			Shards: vs.be.ShardStatuses()})
	}
	writeJSON(w, http.StatusOK, h)
}

func (s *Server) handleListViews(w http.ResponseWriter, r *http.Request) {
	out := []ViewStatus{}
	for _, name := range s.viewNames() {
		vs, ok := s.view(name)
		if !ok {
			continue
		}
		_, seq, degraded := vs.published()
		out = append(out, ViewStatus{Name: name, Seq: seq, Degraded: degraded,
			Shards: vs.be.ShardStatuses()})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleGetView(w http.ResponseWriter, r *http.Request) {
	t0 := obs.NowNS()
	vs, ok := s.view(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown view %q", r.PathValue("name"))
		return
	}
	view, seq, degraded := vs.published()
	resp := ViewResponse{Name: vs.name, Attrs: vs.attrs, Seq: seq, Degraded: degraded}
	if view != nil {
		rows := view.Sorted(view.Attrs())
		resp.Rows = make([][]string, len(rows))
		for i, t := range rows {
			row := make([]string, len(t))
			for c, v := range t {
				row[c] = vs.syms.Name(v)
			}
			resp.Rows[i] = row
		}
	}
	w.Header().Set(HeaderDegraded, strconv.FormatBool(degraded))
	w.Header().Set(HeaderSeq, strconv.FormatUint(seq, 10))
	w.Header().Set("Cache-Control", "no-store")
	if m := nsmetrics.Load(); m != nil {
		if degraded {
			m.degradedReads.Inc()
		}
		m.readNs.ObserveDuration(obs.NowNS() - t0)
	}
	writeJSON(w, http.StatusOK, resp)
}

// parseTuple interns one wire tuple against the view's layout.
func (vs *viewState) parseTuple(fields []string) (relation.Tuple, error) {
	if len(fields) != vs.width {
		return nil, fmt.Errorf("tuple has %d fields, view %q has %d columns", len(fields), vs.name, vs.width)
	}
	t := make(relation.Tuple, len(fields))
	for i, f := range fields {
		t[i] = vs.syms.Const(f)
	}
	return t, nil
}

// parseOp converts one WireOp into the core op it denotes.
func (vs *viewState) parseOp(op WireOp) (core.UpdateOp, error) {
	tuple, err := vs.parseTuple(op.Tuple)
	if err != nil {
		return core.UpdateOp{}, err
	}
	switch op.Kind {
	case KindInsert:
		if len(op.With) != 0 {
			return core.UpdateOp{}, fmt.Errorf("insert carries a with tuple")
		}
		return core.Insert(tuple), nil
	case KindDelete:
		if len(op.With) != 0 {
			return core.UpdateOp{}, fmt.Errorf("delete carries a with tuple")
		}
		return core.Delete(tuple), nil
	case KindReplace:
		with, err := vs.parseTuple(op.With)
		if err != nil {
			return core.UpdateOp{}, err
		}
		return core.Replace(tuple, with), nil
	}
	return core.UpdateOp{}, fmt.Errorf("unknown op kind %q", op.Kind)
}

// decodeOps reads the submit body in either encoding.
func (s *Server) decodeOps(r *http.Request, vs *viewState) ([]core.UpdateOp, error) {
	maxOps := s.opts.maxOps()
	if r.Header.Get("Content-Type") == ContentTypeFrame {
		br := bufio.NewReader(http.MaxBytesReader(nil, r.Body, s.opts.maxBody()))
		var ops []core.UpdateOp
		for {
			wop, err := ReadOpFrame(br)
			if err != nil {
				if errors.Is(err, io.EOF) {
					return ops, nil
				}
				return nil, err
			}
			op, err := vs.parseOp(wop)
			if err != nil {
				return nil, err
			}
			if len(ops) >= maxOps {
				return nil, errTooManyOps
			}
			ops = append(ops, op)
		}
	}
	var req SubmitRequest
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, s.opts.maxBody()))
	if err := dec.Decode(&req); err != nil {
		return nil, err
	}
	if len(req.Ops) > maxOps {
		return nil, errTooManyOps
	}
	ops := make([]core.UpdateOp, len(req.Ops))
	for i, wop := range req.Ops {
		op, err := vs.parseOp(wop)
		if err != nil {
			return nil, err
		}
		ops[i] = op
	}
	return ops, nil
}

var errTooManyOps = errors.New("too many ops in one request")

// opOutcome maps one op's fate onto the wire.
func opOutcome(d *core.Decision, err error) OpResult {
	switch {
	case err == nil:
		res := OpResult{Applied: true}
		if d != nil {
			res.Reason = d.Reason.String()
			res.Identity = d.Reason == core.ReasonIdentity
		}
		return res
	case errors.Is(err, core.ErrRejected):
		res := OpResult{Rejected: true, Error: err.Error()}
		if d != nil {
			res.Reason = d.Reason.String()
		}
		return res
	case errors.Is(err, serve.ErrShed):
		return OpResult{Shed: true}
	default:
		return OpResult{Error: err.Error()}
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	t0 := obs.NowNS()
	m := nsmetrics.Load()
	vs, ok := s.view(r.PathValue("name"))
	if !ok {
		writeErr(w, http.StatusNotFound, "unknown view %q", r.PathValue("name"))
		return
	}
	ops, err := s.decodeOps(r, vs)
	if err != nil {
		if errors.Is(err, errTooManyOps) {
			writeErr(w, http.StatusRequestEntityTooLarge, "%v (limit %d)", err, s.opts.maxOps())
			return
		}
		writeErr(w, http.StatusBadRequest, "decode: %v", err)
		return
	}
	if len(ops) == 0 {
		writeErr(w, http.StatusBadRequest, "empty op list")
		return
	}
	if m != nil {
		m.submitOps.Add(int64(len(ops)))
		m.opsPerReq.Observe(float64(len(ops)))
	}

	// Connection-scoped budget: a connection that spent its allowance
	// must re-dial; admission then sees it as a fresh arrival.
	if b, ok := r.Context().Value(connBudgetKey{}).(*connBudget); ok {
		if !b.take(int64(len(ops))) {
			if m != nil {
				m.budgetExceeded.Inc()
			}
			w.Header().Set("Connection", "close")
			writeErr(w, http.StatusTooManyRequests, "connection op budget exhausted")
			return
		}
	}

	// Per-tenant admission: token bucket, then the weighted fair queue.
	tenant := tenantOf(r)
	release, err := s.adm.Acquire(r.Context(), tenant, float64(len(ops)))
	if err != nil {
		var te *ThrottleError
		switch {
		case errors.As(err, &te):
			secs := (te.RetryAfterNS + 999_999_999) / 1_000_000_000
			if secs < 1 {
				secs = 1
			}
			w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
			writeErr(w, http.StatusTooManyRequests, "tenant %q over rate", tenant)
		case errors.Is(err, ErrTenantTableFull):
			w.Header().Set("Retry-After", "1")
			writeErr(w, http.StatusTooManyRequests, "%v", err)
		case errors.Is(err, ErrAdmissionClosed):
			writeErr(w, http.StatusServiceUnavailable, "%v", err)
		default: // context cancellation: the client is gone
			writeErr(w, http.StatusRequestTimeout, "%v", err)
		}
		return
	}
	defer release()

	// Enqueue the whole request before waiting on any op: ops in flight
	// together share their pipeline's group commit (one fsync per
	// touched shard).
	pends := make([]serve.Waiter, len(ops))
	results := make([]OpResult, len(ops))
	for i, op := range ops {
		pend, err := vs.be.ApplyAsync(r.Context(), op)
		if err != nil {
			if errors.Is(err, store.ErrSessionBroken) || errors.Is(err, serve.ErrClosed) {
				writeErr(w, http.StatusServiceUnavailable, "view %q unavailable: %v", vs.name, err)
				return
			}
			results[i] = opOutcome(nil, err)
			continue
		}
		pends[i] = pend
	}
	broken := false
	for i, pend := range pends {
		if pend == nil {
			continue
		}
		d, err := pend.Wait()
		if err != nil && errors.Is(err, store.ErrSessionBroken) {
			broken = true
		}
		results[i] = opOutcome(d, err)
	}
	if m != nil {
		for _, res := range results {
			if res.Shed {
				m.submitShed.Inc()
			}
		}
	}

	// The degraded header is scoped to what this request touched: on a
	// sharded backend a broken shard taints only submissions routed to
	// its key range, so healthy key ranges keep reporting healthy.
	_, seq, _ := vs.published()
	degraded := vs.be.DegradedFor(ops)
	w.Header().Set(HeaderDegraded, strconv.FormatBool(degraded))
	w.Header().Set(HeaderSeq, strconv.FormatUint(seq, 10))
	status := http.StatusOK
	if broken {
		// The pipeline latched mid-request: per-op results still report
		// each op's definite fate, but the view is now unavailable for
		// writes — that is a server failure, not a client one.
		status = http.StatusServiceUnavailable
	}
	if m != nil {
		m.submitNs.ObserveDuration(obs.NowNS() - t0)
	}
	if r.Header.Get("Content-Type") == ContentTypeFrame {
		w.Header().Set("Content-Type", ContentTypeFrame)
		w.WriteHeader(status)
		var buf []byte
		for _, res := range results {
			buf = AppendResultFrame(buf, res)
		}
		_, _ = w.Write(buf)
		if m != nil {
			m.responses.Inc()
			if status >= 500 {
				m.errors5xx.Inc()
			}
		}
		return
	}
	writeJSON(w, status, SubmitResponse{Results: results, Seq: seq, Degraded: degraded})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", ContentTypeJSON)
	_ = s.opts.Registry.WriteJSON(w)
}

func (s *Server) handleMetricsProm(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	_ = s.opts.Registry.WritePrometheus(w)
}
