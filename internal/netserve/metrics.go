package netserve

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// netserveMetrics holds the resolved metric handles for the HTTP
// front-end and its admission gate.
type netserveMetrics struct {
	requests  *obs.Counter
	responses *obs.Counter
	errors5xx *obs.Counter

	// Submit-path accounting: ops received, admitted past the gate,
	// shed by the pipeline's bounded queue, throttled by a token
	// bucket, refused by the bounded tenant table, or refused by a
	// connection's op budget.
	submitOps      *obs.Counter
	admitted       *obs.Counter
	submitShed     *obs.Counter
	throttled      *obs.Counter
	tenantFull     *obs.Counter
	budgetExceeded *obs.Counter

	// degradedReads counts view reads answered while the backing
	// pipeline was healing or latched broken.
	degradedReads *obs.Counter

	// Latency distributions: whole-request service time per path kind,
	// time spent waiting in the weighted fair queue, and ops carried
	// per submit request.
	readNs    *obs.Histogram
	submitNs  *obs.Histogram
	wfqWaitNs *obs.Histogram
	opsPerReq *obs.Histogram
}

var nsmetrics atomic.Pointer[netserveMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for the
// network front-end.
func SetMetrics(s obs.Sink) {
	if s == nil {
		nsmetrics.Store(nil)
		return
	}
	nsmetrics.Store(&netserveMetrics{
		requests:       s.Counter("netsrv_requests_total"),
		responses:      s.Counter("netsrv_responses_total"),
		errors5xx:      s.Counter("netsrv_5xx_total"),
		submitOps:      s.Counter("netsrv_submit_ops_total"),
		admitted:       s.Counter("netsrv_admitted_total"),
		submitShed:     s.Counter("netsrv_submit_shed_total"),
		throttled:      s.Counter("netsrv_throttled_total"),
		tenantFull:     s.Counter("netsrv_tenant_table_full_total"),
		budgetExceeded: s.Counter("netsrv_conn_budget_exceeded_total"),
		degradedReads:  s.Counter("netsrv_degraded_reads_total"),
		readNs:         s.Histogram("netsrv_read_ns"),
		submitNs:       s.Histogram("netsrv_submit_ns"),
		wfqWaitNs:      s.Histogram("netsrv_wfq_wait_ns"),
		opsPerReq:      s.Histogram("netsrv_ops_per_request"),
	})
}
