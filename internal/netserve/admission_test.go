package netserve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"github.com/constcomp/constcomp/internal/obs"
)

// enqueueWaiter blocks a goroutine in Acquire and returns a channel that
// yields the release func once the slot is granted. The caller must wait
// for Queued() to grow before enqueueing the next waiter, so heap seq
// numbers are deterministic.
func enqueueWaiter(t *testing.T, a *Admission, tenant string, order chan<- string) <-chan func() {
	t.Helper()
	got := make(chan func(), 1)
	go func() {
		release, err := a.Acquire(context.Background(), tenant, 1)
		if err != nil {
			t.Errorf("Acquire(%s): %v", tenant, err)
			close(got)
			return
		}
		order <- tenant
		got <- release
	}()
	return got
}

func waitQueued(t *testing.T, a *Admission, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for a.Queued() < n {
		if time.Now().After(deadline) {
			t.Fatalf("Queued() = %d, want %d", a.Queued(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionWeightedFairness is the tenant-fairness property: with
// one slot and a 4:1 weight split, a flooding tenant's queue cannot
// starve the well-behaved tenant — grants interleave by virtual finish
// time, four "good" grants for every "hog" grant, regardless of how
// deep the hog's backlog is.
func TestAdmissionWeightedFairness(t *testing.T) {
	a := NewAdmission(AdmissionOptions{
		Slots: 1,
		Tenants: map[string]TenantConfig{
			"good": {Weight: 4},
			"hog":  {Weight: 1},
		},
	})
	defer a.Close()

	// Occupy the only slot so every subsequent Acquire queues.
	holder, err := a.Acquire(context.Background(), "holder", 1)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan string, 16)
	var releases []<-chan func()
	// Interleave enqueues hog-first: fairness must come from the fair
	// queue, not arrival order.
	for i := 0; i < 8; i++ {
		releases = append(releases, enqueueWaiter(t, a, "hog", order))
		waitQueued(t, a, 2*i+1)
		releases = append(releases, enqueueWaiter(t, a, "good", order))
		waitQueued(t, a, 2*i+2)
	}

	// Drain: each grant is released immediately, letting the queue pick
	// the next waiter by (virtual finish, seq).
	holder()
	var got []string
	for range releases {
		tenant := <-order
		got = append(got, tenant)
		// The waiter that just ran hands us its release func; fire it to
		// admit the next one.
		for _, ch := range releases {
			select {
			case rel := <-ch:
				rel()
			default:
			}
		}
	}

	// Weight 4 vs 1: in every 5-grant window the good tenant gets 4.
	// Check the first two windows exactly; the whole run must split 8/8
	// only because both backlogs are equal length.
	count := func(s []string, tenant string) int {
		n := 0
		for _, x := range s {
			if x == tenant {
				n++
			}
		}
		return n
	}
	if g := count(got[:5], "good"); g != 4 {
		t.Errorf("first 5 grants: good got %d, want 4 (order %v)", g, got)
	}
	if g := count(got[:10], "good"); g != 8 {
		t.Errorf("first 10 grants: good got %d, want 8 (order %v)", g, got)
	}
	if a.Granted("good") != 8 || a.Granted("hog") != 8 {
		t.Errorf("granted totals good=%d hog=%d, want 8/8", a.Granted("good"), a.Granted("hog"))
	}
}

// TestAdmissionFairnessProperty is the randomized form: arbitrary
// weights and arrival interleavings, one slot, equal backlogs. Over the
// full drain each tenant's grant share in the first half must be within
// a factor of two of its weight share — WFQ's service guarantee, loose
// enough to absorb tie-breaks.
func TestAdmissionFairnessProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		wA := 1 + rng.Intn(8)
		wB := 1 + rng.Intn(8)
		a := NewAdmission(AdmissionOptions{
			Slots: 1,
			Tenants: map[string]TenantConfig{
				"A": {Weight: float64(wA)},
				"B": {Weight: float64(wB)},
			},
		})
		holder, err := a.Acquire(context.Background(), "holder", 1)
		if err != nil {
			t.Fatal(err)
		}
		const per = 12
		order := make(chan string, 2*per)
		var releases []<-chan func()
		for i := 0; i < per; i++ {
			first, second := "A", "B"
			if rng.Intn(2) == 0 {
				first, second = second, first
			}
			releases = append(releases, enqueueWaiter(t, a, first, order))
			waitQueued(t, a, 2*i+1)
			releases = append(releases, enqueueWaiter(t, a, second, order))
			waitQueued(t, a, 2*i+2)
		}
		holder()
		var got []string
		for range releases {
			got = append(got, <-order)
			for _, ch := range releases {
				select {
				case rel := <-ch:
					rel()
				default:
				}
			}
		}
		half := got[:per]
		nA := 0
		for _, x := range half {
			if x == "A" {
				nA++
			}
		}
		shareA := float64(nA) / float64(per)
		wantA := float64(wA) / float64(wA+wB)
		if shareA < wantA/2 || shareA > 1-(1-wantA)/2 {
			t.Errorf("weights %d:%d — A served %.2f of the first half, want near %.2f (order %v)",
				wA, wB, shareA, wantA, got)
		}
		a.Close()
	}
}

// TestAdmissionTokenBucket: a rate-limited tenant is throttled once its
// burst is spent, with a retry hint, and refills with the clock.
func TestAdmissionTokenBucket(t *testing.T) {
	clk := obs.NewManualClock()
	a := NewAdmission(AdmissionOptions{
		Slots:   16,
		Clock:   clk,
		Tenants: map[string]TenantConfig{"metered": {Rate: 10, Burst: 2}},
	})
	defer a.Close()
	ctx := context.Background()

	for i := 0; i < 2; i++ {
		release, err := a.Acquire(ctx, "metered", 1)
		if err != nil {
			t.Fatalf("burst acquire %d: %v", i, err)
		}
		release()
	}
	_, err := a.Acquire(ctx, "metered", 1)
	var te *ThrottleError
	if !errors.As(err, &te) {
		t.Fatalf("acquire past burst: err = %v, want ThrottleError", err)
	}
	if te.Tenant != "metered" || te.RetryAfterNS <= 0 {
		t.Fatalf("throttle hint = %+v", te)
	}
	// 10 ops/s: 100ms refills one token.
	clk.Advance(100 * int64(time.Millisecond))
	release, err := a.Acquire(ctx, "metered", 1)
	if err != nil {
		t.Fatalf("acquire after refill: %v", err)
	}
	release()
	// An unmetered tenant is never throttled.
	for i := 0; i < 100; i++ {
		release, err := a.Acquire(ctx, "free", 1)
		if err != nil {
			t.Fatalf("unmetered acquire: %v", err)
		}
		release()
	}
}

// TestAdmissionTenantTableBound: the tenant table refuses growth past
// MaxTenants instead of admitting an unbounded set of names.
func TestAdmissionTenantTableBound(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Slots: 64, MaxTenants: 4})
	defer a.Close()
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		release, err := a.Acquire(ctx, fmt.Sprintf("t%d", i), 1)
		if err != nil {
			t.Fatalf("tenant %d: %v", i, err)
		}
		release()
	}
	if _, err := a.Acquire(ctx, "one-too-many", 1); !errors.Is(err, ErrTenantTableFull) {
		t.Fatalf("5th tenant: err = %v, want ErrTenantTableFull", err)
	}
	// Known tenants keep working at the bound.
	release, err := a.Acquire(ctx, "t0", 1)
	if err != nil {
		t.Fatalf("known tenant at bound: %v", err)
	}
	release()
}

// TestAdmissionCancelAndClose: a queued waiter honors context
// cancellation, and Close fails the rest deterministically.
func TestAdmissionCancelAndClose(t *testing.T) {
	a := NewAdmission(AdmissionOptions{Slots: 1})
	holder, err := a.Acquire(context.Background(), "x", 1)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := a.Acquire(ctx, "x", 1)
		errc <- err
	}()
	waitQueued(t, a, 1)
	cancel()
	if err := <-errc; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled waiter: err = %v", err)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := a.Acquire(context.Background(), "x", 1)
			errs <- err
		}()
	}
	waitQueued(t, a, 3)
	a.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrAdmissionClosed) {
			t.Errorf("waiter after Close: err = %v, want ErrAdmissionClosed", err)
		}
	}
	holder() // releasing into a closed gate must not panic
	if _, err := a.Acquire(context.Background(), "x", 1); !errors.Is(err, ErrAdmissionClosed) {
		t.Errorf("Acquire after Close: err = %v, want ErrAdmissionClosed", err)
	}
}
