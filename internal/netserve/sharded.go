package netserve

import (
	"context"
	"fmt"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/shard"
	"github.com/constcomp/constcomp/internal/value"
)

// backend is what a named view needs from whatever serves it: a single
// self-healing pipeline or a sharded multi-store. *shard.Multi
// satisfies it directly; the unsharded pipeline is adapted by
// pipelineBackend.
type backend interface {
	// ApplyAsync enqueues one op and returns its pending ack.
	ApplyAsync(ctx context.Context, op core.UpdateOp) (serve.Waiter, error)
	// Published returns the view to serve a read from right now, its
	// sequence number, and whether any part of the backend is degraded.
	Published() (*relation.Relation, uint64, bool)
	// DegradedFor reports degradation scoped to the state these ops
	// would touch: on a sharded backend one broken shard degrades only
	// submissions routed to its key range.
	DegradedFor(ops []core.UpdateOp) bool
	// ShardStatuses returns per-shard health, nil when unsharded.
	ShardStatuses() []shard.ShardStatus
	// Close drains the backend and closes its stores.
	Close() error
}

// pipelineBackend adapts one serve.Pipeline (and the Open-time snapshot
// that serves reads before the pipeline's first publish) to backend.
type pipelineBackend struct {
	pipe     *serve.Pipeline
	initView *relation.Relation
	initSeq  uint64
}

func (b *pipelineBackend) ApplyAsync(ctx context.Context, op core.UpdateOp) (serve.Waiter, error) {
	pend, err := b.pipe.ApplyAsync(ctx, op)
	if err != nil {
		return nil, err
	}
	return pend, nil
}

func (b *pipelineBackend) Published() (*relation.Relation, uint64, bool) {
	v, seq, degraded := b.pipe.Published()
	if v == nil {
		return b.initView, b.initSeq, degraded
	}
	return v, seq, degraded
}

// DegradedFor on a single pipeline is placement-blind: every op lands
// on the one store, so its health is the answer regardless of ops.
func (b *pipelineBackend) DegradedFor([]core.UpdateOp) bool { return b.pipe.Degraded() }

func (b *pipelineBackend) ShardStatuses() []shard.ShardStatus { return nil }

// Close drains the pipeline, then closes its current store session
// (which a resurrection may have swapped since the view was added).
func (b *pipelineBackend) Close() error {
	err := b.pipe.Close()
	if serr := b.pipe.Store().Close(); err == nil {
		err = serr
	}
	return err
}

// AddSharded exposes an opened sharded multi-store as
// /v1/views/{name}: submissions route by key through the multi-store's
// placement table, reads serve the union of the shard views, and the
// degraded header is scoped per shard — one broken shard degrades only
// requests touching its key range. syms must be the symbol table the
// multi-store journals with. On success the server owns m (Close
// closes it); on error the caller still does.
func (s *Server) AddSharded(name string, m *shard.Multi, syms *value.Symbols) error {
	if name == "" {
		return fmt.Errorf("netserve: empty view name")
	}
	view, _, _ := m.Published()
	u := m.Pair().Schema().Universe()
	ids := view.Attrs().IDs()
	attrs := make([]string, len(ids))
	for i, id := range ids {
		attrs[i] = u.Name(id)
	}
	vs := &viewState{
		name:  name,
		be:    m,
		syms:  syms,
		attrs: attrs,
		width: len(attrs),
	}
	s.mu.Lock()
	_, dup := s.views[name]
	if !dup {
		s.views[name] = vs
	}
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("netserve: view %q already registered", name)
	}
	return nil
}
