// Package netserve is the network front-end of the serving stack: a
// zero-dependency net/http server that fronts one self-healing
// serve.Pipeline per named view schema.
//
// The wire protocol is JSON for control-plane traffic (view reads,
// listings, health) plus a small length-prefixed binary framing for the
// hot submit path, where per-request JSON encode/decode would dominate
// the cost of an op that the pipeline itself decides in microseconds.
// Both encodings carry the same operations — the paper's three view
// updates (insert, Thm-8 delete, Thm-9 replacement) with tuples as
// constant names in view column order.
//
// Admission is per tenant (X-Constcomp-Tenant): a token bucket bounds
// each tenant's sustained op rate, and weighted fair queueing arbitrates
// the submit queue among tenants competing for pipeline slots, so a
// flooding tenant cannot starve a well-behaved one. Degraded reads —
// served from the last committed view while a pipeline heals — are
// surfaced explicitly via the X-Constcomp-Degraded header.
package netserve

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"github.com/constcomp/constcomp/internal/shard"
)

// Content types of the two submit encodings.
const (
	// ContentTypeJSON is the control-plane encoding.
	ContentTypeJSON = "application/json"
	// ContentTypeFrame is the length-prefixed binary encoding for the
	// hot submit path.
	ContentTypeFrame = "application/x-constcomp-frame"
)

// Protocol headers.
const (
	// HeaderTenant names the submitting tenant; absent means TenantDefault.
	HeaderTenant = "X-Constcomp-Tenant"
	// HeaderDegraded is "true" on responses served while the view's
	// pipeline is healing (or latched broken), "false" otherwise.
	HeaderDegraded = "X-Constcomp-Degraded"
	// HeaderSeq carries the store sequence number the response is
	// current as of: the last committed seq for reads, the published
	// seq after the request's batch for submits.
	HeaderSeq = "X-Constcomp-Seq"
)

// TenantDefault is the tenant ops are accounted to when the request
// carries no HeaderTenant.
const TenantDefault = "public"

// Op kinds on the wire.
const (
	KindInsert  = "insert"
	KindDelete  = "delete"
	KindReplace = "replace"
)

// WireOp is one view update in transit. Tuple entries are constant
// names in the view's column order (ascending attribute order, the
// order GET /v1/views/{name} reports in "attrs"). With is the
// replacement tuple of a replace, absent otherwise.
type WireOp struct {
	Kind  string   `json:"kind"`
	Tuple []string `json:"tuple"`
	With  []string `json:"with,omitempty"`
}

// SubmitRequest is the JSON submit body.
type SubmitRequest struct {
	Ops []WireOp `json:"ops"`
}

// OpResult is the fate of one submitted op. Exactly one of Applied,
// Rejected, Shed, or a non-empty Error holds: applied ops are decided
// and durable (acked); rejected ops are untranslatable under the
// constant complement (the paper's negative cases) and changed nothing;
// shed ops were refused by overload admission and may be retried.
//
// Identity refines Applied: the op was accepted as the identity
// translation (deleting a tuple the view does not hold, inserting one
// it already holds — the paper's acceptability case) and changed
// nothing. Clients tracking view state must not model an identity ack
// as a state change.
type OpResult struct {
	Applied  bool   `json:"applied"`
	Identity bool   `json:"identity,omitempty"`
	Rejected bool   `json:"rejected,omitempty"`
	Shed     bool   `json:"shed,omitempty"`
	Reason   string `json:"reason,omitempty"`
	Error    string `json:"error,omitempty"`
}

// SubmitResponse is the JSON submit reply: one result per op in
// request order.
type SubmitResponse struct {
	Results  []OpResult `json:"results"`
	Seq      uint64     `json:"seq"`
	Degraded bool       `json:"degraded"`
}

// ViewResponse is the GET /v1/views/{name} reply. Rows are sorted
// lexicographically — deterministic output, byte-comparable across
// reads at the same Seq.
type ViewResponse struct {
	Name     string     `json:"name"`
	Attrs    []string   `json:"attrs"`
	Rows     [][]string `json:"rows"`
	Seq      uint64     `json:"seq"`
	Degraded bool       `json:"degraded"`
}

// ViewStatus is one entry of the GET /v1/views listing and /healthz.
// Shards is present only for views backed by a sharded multi-store:
// the top-level Degraded is the any-shard union, and Shards says which
// key ranges are actually affected.
type ViewStatus struct {
	Name     string              `json:"name"`
	Seq      uint64              `json:"seq"`
	Degraded bool                `json:"degraded"`
	Shards   []shard.ShardStatus `json:"shards,omitempty"`
}

// Binary framing. A stream is a sequence of frames, each a u32
// little-endian payload length followed by the payload. An op payload:
//
//	kind byte ('i'/'d'/'r')
//	u8 field count, then per field: u16le length + bytes   (Tuple)
//	for 'r' only: a second field group                     (With)
//
// A result payload:
//
//	status byte (0 applied, 1 rejected, 2 shed, 3 error)
//	u16le length + bytes (Reason for 0/1, Error text for 3)
const (
	frameInsert  = 'i'
	frameDelete  = 'd'
	frameReplace = 'r'

	resultApplied  = 0
	resultRejected = 1
	resultShed     = 2
	resultError    = 3
	// resultIdentity is resultApplied refined: acknowledged, but the
	// translation was the identity and the view is unchanged.
	resultIdentity = 4

	// MaxFramePayload bounds one frame's payload; larger frames are a
	// protocol error, not an allocation request.
	MaxFramePayload = 1 << 16
	// maxFrameFields and maxFieldBytes bound a tuple's shape within a
	// frame.
	maxFrameFields = 64
	maxFieldBytes  = 4096
)

// frameKind maps a WireOp kind to its frame byte.
func frameKind(kind string) (byte, error) {
	switch kind {
	case KindInsert:
		return frameInsert, nil
	case KindDelete:
		return frameDelete, nil
	case KindReplace:
		return frameReplace, nil
	}
	return 0, fmt.Errorf("netserve: unknown op kind %q", kind)
}

// appendFields appends one u8-counted field group.
func appendFields(dst []byte, fields []string) ([]byte, error) {
	if len(fields) > maxFrameFields {
		return nil, fmt.Errorf("netserve: %d fields exceeds frame limit %d", len(fields), maxFrameFields)
	}
	dst = append(dst, byte(len(fields)))
	for _, f := range fields {
		if len(f) > maxFieldBytes {
			return nil, fmt.Errorf("netserve: field of %d bytes exceeds frame limit %d", len(f), maxFieldBytes)
		}
		dst = binary.LittleEndian.AppendUint16(dst, uint16(len(f)))
		dst = append(dst, f...)
	}
	return dst, nil
}

// AppendOpFrame appends op as one binary frame to dst and returns the
// extended slice.
func AppendOpFrame(dst []byte, op WireOp) ([]byte, error) {
	k, err := frameKind(op.Kind)
	if err != nil {
		return nil, err
	}
	payload := []byte{k}
	if payload, err = appendFields(payload, op.Tuple); err != nil {
		return nil, err
	}
	if k == frameReplace {
		if payload, err = appendFields(payload, op.With); err != nil {
			return nil, err
		}
	} else if len(op.With) != 0 {
		return nil, fmt.Errorf("netserve: %s op carries a With tuple", op.Kind)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...), nil
}

// readFrame reads one length-prefixed payload. A clean EOF before the
// length prefix returns io.EOF; EOF inside a frame is ErrUnexpectedEOF.
func readFrame(r *bufio.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:1]); err != nil {
		return nil, err // io.EOF: clean end of stream
	}
	if _, err := io.ReadFull(r, hdr[1:]); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFramePayload {
		return nil, fmt.Errorf("netserve: frame payload of %d bytes outside (0, %d]", n, MaxFramePayload)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	return payload, nil
}

// parseFields consumes one u8-counted field group from payload,
// returning the fields and the remainder.
func parseFields(payload []byte) ([]string, []byte, error) {
	if len(payload) < 1 {
		return nil, nil, io.ErrUnexpectedEOF
	}
	n := int(payload[0])
	payload = payload[1:]
	if n > maxFrameFields {
		return nil, nil, fmt.Errorf("netserve: %d fields exceeds frame limit %d", n, maxFrameFields)
	}
	fields := make([]string, n)
	for i := range fields {
		if len(payload) < 2 {
			return nil, nil, io.ErrUnexpectedEOF
		}
		l := int(binary.LittleEndian.Uint16(payload))
		payload = payload[2:]
		if l > maxFieldBytes {
			return nil, nil, fmt.Errorf("netserve: field of %d bytes exceeds frame limit %d", l, maxFieldBytes)
		}
		if len(payload) < l {
			return nil, nil, io.ErrUnexpectedEOF
		}
		fields[i] = string(payload[:l])
		payload = payload[l:]
	}
	return fields, payload, nil
}

// ReadOpFrame reads the next op frame. io.EOF marks the clean end of
// the stream.
func ReadOpFrame(r *bufio.Reader) (WireOp, error) {
	payload, err := readFrame(r)
	if err != nil {
		return WireOp{}, err
	}
	var op WireOp
	switch payload[0] {
	case frameInsert:
		op.Kind = KindInsert
	case frameDelete:
		op.Kind = KindDelete
	case frameReplace:
		op.Kind = KindReplace
	default:
		return WireOp{}, fmt.Errorf("netserve: unknown frame kind %#x", payload[0])
	}
	rest := payload[1:]
	if op.Tuple, rest, err = parseFields(rest); err != nil {
		return WireOp{}, err
	}
	if payload[0] == frameReplace {
		if op.With, rest, err = parseFields(rest); err != nil {
			return WireOp{}, err
		}
	}
	if len(rest) != 0 {
		return WireOp{}, fmt.Errorf("netserve: %d trailing bytes in op frame", len(rest))
	}
	return op, nil
}

// AppendResultFrame appends res as one binary frame to dst.
func AppendResultFrame(dst []byte, res OpResult) []byte {
	status, msg := byte(resultError), res.Error
	switch {
	case res.Applied && res.Identity:
		status, msg = resultIdentity, res.Reason
	case res.Applied:
		status, msg = resultApplied, res.Reason
	case res.Rejected:
		status, msg = resultRejected, res.Reason
	case res.Shed:
		status, msg = resultShed, ""
	}
	if len(msg) > maxFieldBytes {
		msg = msg[:maxFieldBytes]
	}
	payload := make([]byte, 0, 3+len(msg))
	payload = append(payload, status)
	payload = binary.LittleEndian.AppendUint16(payload, uint16(len(msg)))
	payload = append(payload, msg...)
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(payload)))
	return append(dst, payload...)
}

// ReadResultFrame reads the next result frame. io.EOF marks the clean
// end of the stream.
func ReadResultFrame(r *bufio.Reader) (OpResult, error) {
	payload, err := readFrame(r)
	if err != nil {
		return OpResult{}, err
	}
	if len(payload) < 3 {
		return OpResult{}, io.ErrUnexpectedEOF
	}
	l := int(binary.LittleEndian.Uint16(payload[1:]))
	if len(payload) != 3+l {
		return OpResult{}, fmt.Errorf("netserve: result frame length mismatch")
	}
	msg := string(payload[3:])
	switch payload[0] {
	case resultApplied:
		return OpResult{Applied: true, Reason: msg}, nil
	case resultIdentity:
		return OpResult{Applied: true, Identity: true, Reason: msg}, nil
	case resultRejected:
		return OpResult{Rejected: true, Reason: msg}, nil
	case resultShed:
		return OpResult{Shed: true}, nil
	case resultError:
		return OpResult{Error: msg}, nil
	}
	return OpResult{}, fmt.Errorf("netserve: unknown result status %#x", payload[0])
}
