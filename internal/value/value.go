// Package value defines the value domain of the relational engine.
//
// The chase procedures of Cosmadakis–Papadimitriou manipulate relations whose
// entries are either constants (drawn from the active domain of a stored
// instance) or labeled nulls — "new symbols" in the paper's phrasing — that
// stand for unknown values and may be equated with constants or with each
// other as the chase runs. A Value packs both cases into one word:
// non-negative values are constant ids interned in a Symbols table, negative
// values are labeled nulls.
package value

import (
	"fmt"
	"strconv"
	"sync"
)

// Value is a single relation entry: a constant (>= 0, an index into a
// Symbols table) or a labeled null (< 0).
type Value int64

// Null returns the i-th labeled null (i >= 0). Distinct i give distinct
// nulls.
func Null(i int64) Value {
	if i < 0 {
		panic("value: negative null index")
	}
	return Value(-1 - i)
}

// IsNull reports whether v is a labeled null.
func (v Value) IsNull() bool { return v < 0 }

// IsConst reports whether v is a constant.
func (v Value) IsConst() bool { return v >= 0 }

// NullIndex returns i for the null Null(i). It panics on constants.
func (v Value) NullIndex() int64 {
	if !v.IsNull() {
		panic("value: NullIndex of a constant")
	}
	return int64(-1 - v)
}

// Symbols interns constant names. The zero value is ready to use.
// A Symbols table is safe for concurrent use: the serving pipeline
// interns names for incoming ops while the committer goroutine renders
// names for journal records, so interning and reading must not race.
// The lock sits at the I/O boundary — engine inner loops (joins, the
// chase) operate on Value words and never touch the table.
type Symbols struct {
	mu    sync.RWMutex
	names []string
	index map[string]Value
}

// NewSymbols returns an empty symbol table.
func NewSymbols() *Symbols {
	return &Symbols{index: make(map[string]Value)}
}

// Const interns name and returns its constant Value. Interning the same
// name twice returns the same Value.
func (s *Symbols) Const(name string) Value {
	s.mu.RLock()
	v, ok := s.index[name]
	s.mu.RUnlock()
	if ok {
		return v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.index == nil {
		s.index = make(map[string]Value)
	}
	if v, ok := s.index[name]; ok {
		return v
	}
	v = Value(len(s.names))
	s.names = append(s.names, name)
	s.index[name] = v
	return v
}

// Lookup returns the Value previously interned for name.
func (s *Symbols) Lookup(name string) (Value, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.index[name]
	return v, ok
}

// Name returns the external name of a constant. For labeled nulls it
// renders a placeholder of the form "⊥k". Unknown constants render as
// "#k".
func (s *Symbols) Name(v Value) string {
	if v.IsNull() {
		return "⊥" + strconv.FormatInt(v.NullIndex(), 10)
	}
	s.mu.RLock()
	defer s.mu.RUnlock()
	if int(v) < len(s.names) {
		return s.names[v]
	}
	return "#" + strconv.FormatInt(int64(v), 10)
}

// Len reports the number of interned constants.
func (s *Symbols) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.names)
}

// Ints interns the decimal renderings of 0..n-1 and returns their Values.
// Convenient for synthetic workloads.
func (s *Symbols) Ints(n int) []Value {
	out := make([]Value, n)
	for i := range out {
		out[i] = s.Const(strconv.Itoa(i))
	}
	return out
}

// NullGen hands out fresh labeled nulls. The zero value starts at ⊥0.
type NullGen struct {
	next int64
}

// Fresh returns a labeled null never returned before by this generator.
func (g *NullGen) Fresh() Value {
	v := Null(g.next)
	g.next++
	return v
}

// Count reports how many nulls have been generated.
func (g *NullGen) Count() int64 { return g.next }

// String renders a Value without a symbol table: constants as "#k", nulls
// as "⊥k". Prefer Symbols.Name when a table is available.
func (v Value) String() string {
	if v.IsNull() {
		return fmt.Sprintf("⊥%d", v.NullIndex())
	}
	return fmt.Sprintf("#%d", int64(v))
}
