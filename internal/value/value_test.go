package value

import (
	"testing"
	"testing/quick"
)

func TestNullRoundTrip(t *testing.T) {
	f := func(i int64) bool {
		if i < 0 {
			i = -i
		}
		v := Null(i)
		return v.IsNull() && !v.IsConst() && v.NullIndex() == i
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNullNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Null(-1) did not panic")
		}
	}()
	Null(-1)
}

func TestNullIndexOfConstPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NullIndex on constant did not panic")
		}
	}()
	Value(3).NullIndex()
}

func TestSymbolsIntern(t *testing.T) {
	s := NewSymbols()
	a := s.Const("alice")
	b := s.Const("bob")
	if a == b {
		t.Fatal("distinct names interned to same value")
	}
	if a2 := s.Const("alice"); a2 != a {
		t.Fatal("re-interning changed value")
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if got := s.Name(a); got != "alice" {
		t.Errorf("Name(a) = %q", got)
	}
	v, ok := s.Lookup("bob")
	if !ok || v != b {
		t.Errorf("Lookup(bob) = %v,%v", v, ok)
	}
	if _, ok := s.Lookup("carol"); ok {
		t.Error("Lookup of unknown name succeeded")
	}
}

func TestSymbolsZeroValue(t *testing.T) {
	var s Symbols
	v := s.Const("x")
	if !v.IsConst() {
		t.Error("zero-value Symbols unusable")
	}
}

func TestSymbolsNameFallbacks(t *testing.T) {
	s := NewSymbols()
	if got := s.Name(Null(4)); got != "⊥4" {
		t.Errorf("null name = %q", got)
	}
	if got := s.Name(Value(99)); got != "#99" {
		t.Errorf("unknown const name = %q", got)
	}
}

func TestInts(t *testing.T) {
	s := NewSymbols()
	vs := s.Ints(5)
	if len(vs) != 5 {
		t.Fatalf("len = %d", len(vs))
	}
	for i, v := range vs {
		if s.Name(v) != string(rune('0'+i)) {
			t.Errorf("Ints[%d] = %q", i, s.Name(v))
		}
	}
	// Idempotent.
	vs2 := s.Ints(5)
	for i := range vs {
		if vs[i] != vs2[i] {
			t.Error("Ints not idempotent")
		}
	}
}

func TestNullGen(t *testing.T) {
	var g NullGen
	a := g.Fresh()
	b := g.Fresh()
	if a == b {
		t.Error("Fresh returned duplicate nulls")
	}
	if !a.IsNull() || !b.IsNull() {
		t.Error("Fresh returned non-null")
	}
	if g.Count() != 2 {
		t.Errorf("Count = %d", g.Count())
	}
}

func TestValueString(t *testing.T) {
	if got := Value(7).String(); got != "#7" {
		t.Errorf("const String = %q", got)
	}
	if got := Null(2).String(); got != "⊥2" {
		t.Errorf("null String = %q", got)
	}
}

func TestConstNullDisjoint(t *testing.T) {
	s := NewSymbols()
	var g NullGen
	for i := 0; i < 100; i++ {
		c := s.Const(string(rune('a' + i%26)))
		n := g.Fresh()
		if c == n {
			t.Fatal("constant equals null")
		}
		if c.IsNull() || n.IsConst() {
			t.Fatal("kind predicates wrong")
		}
	}
}
