package store

import (
	"context"
	"errors"
	"fmt"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// File names inside the store's FS root.
const (
	JournalFile  = "journal"
	SnapshotFile = "snapshot"
)

// ErrSessionBroken marks a durable session whose in-memory state ran
// ahead of the disk: an operation was applied but its journal record
// could not be confirmed durable. Accepting further updates would
// journal them on top of the uncertain record and make replay diverge,
// so the session refuses all further work; restart and Recover instead.
// The unacknowledged op's outcome is indeterminate: it was reported as
// failed, but when only the fsync failed its record may still have
// reached the disk, and Recover will then replay it. Callers that need
// to know must compare the recovered Seq (or re-read the state) against
// what they acknowledged.
var ErrSessionBroken = errors.New("store: session broken (applied op not confirmed durable); restart and recover")

// ErrDataLoss reports corruption in the *middle* of the journal:
// intact-looking records exist past the damage, so truncating at the
// corruption point would silently drop acknowledged operations. Recover
// refuses and leaves the journal untouched unless Options.ForceRecover
// is set.
var ErrDataLoss = errors.New("store: journal corrupt mid-stream with intact records past the damage; recovering would lose acknowledged ops (set ForceRecover to truncate anyway)")

// ErrInvariant reports that the constant-complement invariant failed to
// re-verify after a recovery replay: the journal and snapshot disagree
// about the complement, so the recovered state cannot be trusted.
var ErrInvariant = errors.New("store: constant-complement invariant failed after recovery replay")

// Options tunes a durable session.
type Options struct {
	// SnapshotEvery is the number of applied operations between
	// snapshots; each snapshot resets the journal. Zero means 64.
	SnapshotEvery int
	// ForceRecover lets Recover truncate mid-journal corruption even
	// when intact-looking records survive past the damage — those are
	// acknowledged operations and will be lost. Without it such damage
	// fails recovery with ErrDataLoss; a torn or corrupt tail with
	// nothing readable after it never needs forcing.
	ForceRecover bool
}

func (o Options) every() int {
	if o.SnapshotEvery <= 0 {
		return 64
	}
	return o.SnapshotEvery
}

// Session is a core.Session with crash safety: every applied update is
// journaled and fsynced before Apply acknowledges it, and the database
// is periodically checkpointed into an atomically replaced snapshot.
// After a crash, Recover rebuilds the exact acknowledged state.
type Session struct {
	fsys FS
	pair *core.Pair
	syms *value.Symbols
	sess *core.Session
	j    *Journal
	opts Options

	// seq counts acknowledged (journaled) operations since Create.
	seq       uint64
	sinceSnap int
	broken    error
	snapErr   error
}

// Create starts a fresh durable session: the initial database becomes
// snapshot 0 and the journal starts empty. Any previous store contents
// under fsys are overwritten.
func Create(fsys FS, pair *core.Pair, db *relation.Relation, syms *value.Symbols, opts Options) (*Session, error) {
	sess, err := core.NewSession(pair, db)
	if err != nil {
		return nil, err
	}
	if err := writeSnapshot(fsys, SnapshotFile, 0, db, syms); err != nil {
		return nil, err
	}
	j, err := createJournal(fsys, JournalFile)
	if err != nil {
		return nil, err
	}
	// The journal file must exist durably before any append's fsync can
	// be trusted: an fsynced record in a file whose directory entry is
	// lost with power is lost with it.
	if err := fsys.SyncDir(); err != nil {
		return nil, fmt.Errorf("store: create: journal dir sync: %w", err)
	}
	return &Session{fsys: fsys, pair: pair, syms: syms, sess: sess, j: j, opts: opts}, nil
}

// RecoveryReport describes what Recover found and did.
type RecoveryReport struct {
	// SnapshotSeq is the sequence number of the snapshot used as the
	// replay floor.
	SnapshotSeq uint64
	// Replayed counts journal records applied on top of the snapshot;
	// Skipped counts records the snapshot had already absorbed (left
	// behind when a crash hit between snapshot rename and journal
	// reset).
	Replayed int
	Skipped  int
	// TruncatedBytes is the length of the journal tail cut off, with
	// Torn/Corrupt saying why: a partial record (crash mid-append) or a
	// checksum/structure failure.
	TruncatedBytes int64
	Torn           bool
	Corrupt        bool
	// InvariantOK confirms the post-replay re-verification: the database
	// is legal and the complement projection matches the snapshot's.
	InvariantOK bool
}

func (r *RecoveryReport) String() string {
	s := fmt.Sprintf("recovered at snapshot seq %d: %d replayed, %d skipped", r.SnapshotSeq, r.Replayed, r.Skipped)
	if r.TruncatedBytes > 0 {
		why := "corrupt"
		if r.Torn {
			why = "torn"
		}
		s += fmt.Sprintf(", %d-byte %s tail truncated", r.TruncatedBytes, why)
	}
	if r.InvariantOK {
		s += "; invariant verified"
	}
	return s
}

// Recover rebuilds the durable session from fsys: it loads the last
// good snapshot, replays every journal record past it (truncating a
// torn or corrupt tail first), and re-verifies the constant-complement
// invariant on the result. Constants are interned into syms, which is
// typically empty — the journal and snapshot carry names, not ids, so
// recovery does not depend on the dead process's interning order.
func Recover(fsys FS, pair *core.Pair, syms *value.Symbols, opts Options) (*Session, *RecoveryReport, error) {
	m := smetrics.Load()
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	snapSeq, db, err := readSnapshot(fsys, SnapshotFile, pair.Schema().Universe(), syms)
	if err != nil {
		return nil, nil, fmt.Errorf("store: recover: %w", err)
	}
	data, err := readAll(fsys, JournalFile)
	if err != nil {
		return nil, nil, fmt.Errorf("store: recover: journal: %w", err)
	}
	rep := &RecoveryReport{SnapshotSeq: snapSeq}

	// Decode the good prefix, validating the sequence numbers: records
	// at or below the snapshot seq are leftovers of an interrupted
	// journal reset; past it they must run contiguously. A gap can only
	// come from damage, so it truncates like a bad checksum.
	var recs []Record
	var off int64
	next := snapSeq + 1
	for int(off) < len(data) {
		rec, n, err := DecodeRecord(data[off:])
		if err != nil {
			rep.Torn = errors.Is(err, ErrTorn)
			rep.Corrupt = errors.Is(err, ErrCorrupt)
			break
		}
		if rec.Seq <= snapSeq {
			rep.Skipped++
			off += int64(n)
			continue
		}
		if rec.Seq != next {
			rep.Corrupt = true
			break
		}
		recs = append(recs, rec)
		next++
		off += int64(n)
	}
	if int(off) < len(data) {
		rep.TruncatedBytes = int64(len(data)) - off
		// A torn tail is the expected residue of a crash mid-append and
		// is always safe to cut. Corruption is only cut freely when
		// nothing readable lies beyond it; if intact-looking records
		// survive past the damage they are acknowledged operations, and
		// silently dropping them needs an explicit ForceRecover.
		if rep.Corrupt && !opts.ForceRecover && intactRecordIn(data[off:]) {
			return nil, rep, fmt.Errorf("store: recover: %w", ErrDataLoss)
		}
		if err := fsys.Truncate(JournalFile, off); err != nil {
			return nil, nil, fmt.Errorf("store: recover: truncating journal tail: %w", err)
		}
	}

	sess, err := core.NewSession(pair, db)
	if err != nil {
		return nil, nil, fmt.Errorf("store: recover: snapshot database: %w", err)
	}
	for _, rec := range recs {
		if _, err := sess.Apply(rec.Op(syms)); err != nil {
			return nil, nil, fmt.Errorf("store: recover: replaying record %d: journal diverges from snapshot: %w", rec.Seq, err)
		}
		rep.Replayed++
	}

	// Re-verify the framework invariant on the recovered state: legal
	// database, complement projection unchanged from the snapshot.
	cur := sess.Database()
	legal, _ := pair.Schema().Legal(cur)
	y := pair.ComplementAttrs()
	rep.InvariantOK = legal && cur.Project(y).Equal(db.Project(y))
	if !rep.InvariantOK {
		return nil, rep, fmt.Errorf("store: recover: %w", ErrInvariant)
	}

	j, err := openJournalAppend(fsys, JournalFile)
	if err != nil {
		return nil, rep, fmt.Errorf("store: recover: reopening journal: %w", err)
	}
	// Re-fsync the replayed journal before trusting it: when recovery
	// follows a *failed fsync* (not a power loss), the records it just
	// replayed may still be sitting dirty in the page cache — readable
	// now, gone after the next power cut. Acknowledging ops on top of
	// an unsynced prefix would repeat the exact failure being healed.
	if err := j.Sync(); err != nil {
		j.Close()
		return nil, rep, fmt.Errorf("store: recover: re-syncing replayed journal: %w", err)
	}
	// OpenAppend may have created the journal (a crash can lose the
	// file while keeping the snapshot); make its directory entry
	// durable before acknowledging any new op into it.
	if err := fsys.SyncDir(); err != nil {
		j.Close()
		return nil, rep, fmt.Errorf("store: recover: journal dir sync: %w", err)
	}
	if m != nil {
		m.recoveries.Inc()
		m.replayed.Add(int64(rep.Replayed))
		m.truncatedBytes.Add(rep.TruncatedBytes)
		m.recoverNs.ObserveDuration(obs.SinceNS(t0))
	}
	return &Session{
		fsys:      fsys,
		pair:      pair,
		syms:      syms,
		sess:      sess,
		j:         j,
		opts:      opts,
		seq:       next - 1,
		sinceSnap: rep.Replayed,
	}, rep, nil
}

// intactRecordIn reports whether a complete, checksummed record can be
// decoded starting at any byte offset of data (a damaged journal tail).
// Framing is not self-synchronizing, so every offset is tried; tails
// are bounded by the snapshot cadence, keeping this cheap.
func intactRecordIn(data []byte) bool {
	for i := range data {
		if _, _, err := DecodeRecord(data[i:]); err == nil {
			return true
		}
	}
	return false
}

// Open resumes from an existing store (Recover) or starts a fresh one
// with db (Create) when fsys holds no snapshot at all. Only the
// specific "no snapshot" condition falls back to Create — any other
// recovery failure (damaged snapshot, corrupt journal, a missing
// journal alongside an intact snapshot) is returned rather than
// silently overwriting the store with a fresh database. The report is
// nil on the fresh path.
func Open(fsys FS, pair *core.Pair, db *relation.Relation, syms *value.Symbols, opts Options) (*Session, *RecoveryReport, error) {
	sess, rep, err := Recover(fsys, pair, syms, opts)
	if errors.Is(err, ErrNoSnapshot) {
		s, err := Create(fsys, pair, db, syms, opts)
		return s, nil, err
	}
	return sess, rep, err
}

// Database returns a snapshot of the current database.
func (s *Session) Database() *relation.Relation { return s.sess.Database() }

// Pair returns the view/complement pair this session serves.
func (s *Session) Pair() *core.Pair { return s.pair }

// View returns the current view instance.
func (s *Session) View() *relation.Relation { return s.sess.View() }

// ViewRef returns the maintained materialized view (immutable; see
// core.Session.ViewRef). The serving pipeline publishes it to readers
// after each committed batch, paying O(|batch|) per refresh instead of
// a full re-projection.
func (s *Session) ViewRef() *relation.Relation { return s.sess.ViewRef() }

// Log returns the in-memory update log of this process's lifetime
// (rejections included; the journal holds only applied ops).
func (s *Session) Log() []core.LogEntry { return s.sess.Log() }

// Seq returns the number of acknowledged operations since Create.
func (s *Session) Seq() uint64 { return s.seq }

// SnapshotErr returns the most recent snapshot failure, if the store is
// running degraded on journal-only durability. It clears when a later
// snapshot succeeds.
func (s *Session) SnapshotErr() error { return s.snapErr }

// Broken returns the error that broke this session (nil while healthy).
// The self-healing layer uses the cause — not the ErrSessionBroken wrap —
// to classify whether resurrection can help.
func (s *Session) Broken() error { return s.broken }

// Decide tests an update without applying it.
func (s *Session) Decide(op core.UpdateOp) (*core.Decision, error) { return s.sess.Decide(op) }

// DecideCtx is Decide bounded by a context.
func (s *Session) DecideCtx(ctx context.Context, op core.UpdateOp) (*core.Decision, error) {
	return s.sess.DecideCtx(ctx, op)
}

// Apply decides, applies, and makes durable one update.
func (s *Session) Apply(op core.UpdateOp) (*core.Decision, error) {
	return s.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply bounded by a context. The durability contract: when
// ApplyCtx returns nil the operation is fsynced in the journal; on any
// error the operation is not acknowledged. A rejection or budget trip
// leaves the database unchanged and the store healthy; a journal
// failure after the in-memory apply breaks the session (ErrSessionBroken
// thereafter), because memory is ahead of disk — the failed op's
// durability is then indeterminate (see ErrSessionBroken). A snapshot
// failure does
// not fail the op — durability degrades gracefully to journal-only and
// is retried at the next snapshot point (see SnapshotErr).
func (s *Session) ApplyCtx(ctx context.Context, op core.UpdateOp) (*core.Decision, error) {
	if s.broken != nil {
		return nil, fmt.Errorf("%w: %w", ErrSessionBroken, s.broken)
	}
	d, err := s.sess.ApplyCtx(ctx, op)
	if err != nil {
		return d, err
	}
	if err := s.j.Append(s.seq+1, op, s.syms); err != nil {
		s.broken = err
		return d, fmt.Errorf("%w: %w", ErrSessionBroken, err)
	}
	s.seq++
	s.sinceSnap++
	if s.sinceSnap >= s.opts.every() {
		s.snapErr = s.rotate()
	}
	return d, nil
}

// rotate checkpoints the database into the snapshot and starts a fresh
// journal, in strict durability order: snapshot rename + directory
// fsync first (inside writeSnapshot), only then the journal reset,
// itself made durable with a second directory fsync. A crash between
// the two steps is safe: the stale journal records carry seqs the new
// snapshot already covers, and Recover skips them; the reset can never
// outlive the rename because the rename is durable before the reset
// starts.
func (s *Session) rotate() error {
	if err := writeSnapshot(s.fsys, SnapshotFile, s.seq, s.sess.Database(), s.syms); err != nil {
		// Old snapshot + full journal still reconstruct everything.
		return err
	}
	if err := s.j.Close(); err != nil {
		s.broken = err
		return err
	}
	j, err := createJournal(s.fsys, JournalFile)
	if err != nil {
		// No journal to write future ops into: the session cannot
		// accept more work.
		s.broken = err
		return err
	}
	s.j = j
	if err := s.fsys.SyncDir(); err != nil {
		// The fresh journal's directory entry is not durable: fsyncs of
		// future records could be lost with the file, so acknowledging
		// more ops would be unsound.
		s.broken = err
		return err
	}
	s.sinceSnap = 0
	return nil
}

// Close releases the journal handle. The store is consistent at every
// instant, so Close is not a commit point.
func (s *Session) Close() error { return s.j.Close() }
