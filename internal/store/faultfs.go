package store

import (
	"errors"
	"sync"
)

// ErrInjected is the error surfaced by faults a FaultFS injects.
var ErrInjected = errors.New("store: injected fault")

// FaultPlan schedules deterministic faults against the files an FS
// serves. Ordinals are 1-based and count only operations on files whose
// name passes Match; at most one fault fires per plan field.
type FaultPlan struct {
	// Match selects the files the counters observe; nil matches all.
	Match func(name string) bool
	// FailWriteAt makes the nth matching Write fail with no bytes
	// persisted (the device rejected the I/O outright).
	FailWriteAt int
	// TearWriteAt makes the nth matching Write persist only TearKeep
	// bytes — and fsync them, as a device flushing a partial sector
	// would — before failing. This is how torn journal tails are
	// manufactured.
	TearWriteAt int
	TearKeep    int
	// FailSyncAt makes the nth matching Sync fail after the bytes were
	// written; a subsequent Crash on the underlying MemFS then drops
	// them, modeling "write succeeded, fsync lied".
	FailSyncAt int
	// FailSyncDirAt makes the nth SyncDir fail (directory fsyncs have no
	// file name, so Match does not apply); the namespace changes stay
	// visible but not durable.
	FailSyncDirAt int
}

// FaultFS wraps an FS and injects the faults of a FaultPlan. It is the
// deterministic harness behind the crash-point matrix: one plan per
// crash point, counting journal record writes.
type FaultFS struct {
	inner FS
	plan  FaultPlan

	mu       sync.Mutex
	writes   int
	syncs    int
	syncDirs int
	tripped  bool
}

// NewFaultFS wraps inner with the given plan.
func NewFaultFS(inner FS, plan FaultPlan) *FaultFS {
	return &FaultFS{inner: inner, plan: plan}
}

// Writes reports how many matching Write calls have been observed.
func (f *FaultFS) Writes() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.writes
}

// Tripped reports whether any scheduled fault has fired.
func (f *FaultFS) Tripped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tripped
}

func (f *FaultFS) matches(name string) bool {
	return f.plan.Match == nil || f.plan.Match(name)
}

// Create implements FS.
func (f *FaultFS) Create(name string) (File, error) {
	inner, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// OpenAppend implements FS.
func (f *FaultFS) OpenAppend(name string) (File, error) {
	inner, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, name: name, inner: inner}, nil
}

// Open implements FS. Reads are never faulted; corruption on the read
// path is modeled by damaging bytes directly (MemFS.Corrupt).
func (f *FaultFS) Open(name string) (File, error) { return f.inner.Open(name) }

// Rename implements FS.
func (f *FaultFS) Rename(oldname, newname string) error { return f.inner.Rename(oldname, newname) }

// Remove implements FS.
func (f *FaultFS) Remove(name string) error { return f.inner.Remove(name) }

// Truncate implements FS.
func (f *FaultFS) Truncate(name string, size int64) error { return f.inner.Truncate(name, size) }

// SyncDir implements FS.
func (f *FaultFS) SyncDir() error {
	f.mu.Lock()
	f.syncDirs++
	n := f.syncDirs
	failAt := f.plan.FailSyncDirAt
	if n == failAt {
		f.tripped = true
	}
	f.mu.Unlock()
	if n == failAt {
		return ErrInjected
	}
	return f.inner.SyncDir()
}

type faultFile struct {
	fs    *FaultFS
	name  string
	inner File
}

func (f *faultFile) Write(p []byte) (int, error) {
	fs := f.fs
	if !fs.matches(f.name) {
		return f.inner.Write(p)
	}
	fs.mu.Lock()
	fs.writes++
	n := fs.writes
	plan := fs.plan
	if n == plan.FailWriteAt || n == plan.TearWriteAt {
		fs.tripped = true
	}
	fs.mu.Unlock()
	switch n {
	case plan.FailWriteAt:
		return 0, ErrInjected
	case plan.TearWriteAt:
		keep := plan.TearKeep
		if keep > len(p) {
			keep = len(p)
		}
		if keep > 0 {
			if _, err := f.inner.Write(p[:keep]); err != nil {
				return 0, err
			}
			// Persist the torn prefix as a partially flushed sector would be.
			if err := f.inner.Sync(); err != nil {
				return 0, err
			}
		}
		return keep, ErrInjected
	}
	return f.inner.Write(p)
}

func (f *faultFile) Sync() error {
	fs := f.fs
	if !fs.matches(f.name) {
		return f.inner.Sync()
	}
	fs.mu.Lock()
	fs.syncs++
	n := fs.syncs
	failAt := fs.plan.FailSyncAt
	if n == failAt {
		fs.tripped = true
	}
	fs.mu.Unlock()
	if n == failAt {
		return ErrInjected
	}
	return f.inner.Sync()
}

func (f *faultFile) Read(p []byte) (int, error) { return f.inner.Read(p) }
func (f *faultFile) Close() error               { return f.inner.Close() }
