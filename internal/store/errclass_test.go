package store

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/constcomp/constcomp/internal/core"
)

func TestClassifySentinels(t *testing.T) {
	cases := []struct {
		name string
		err  error
		want Class
	}{
		{"nil", nil, ClassUnknown},
		{"data loss", ErrDataLoss, ClassPermanent},
		{"no snapshot", ErrNoSnapshot, ClassPermanent},
		{"corrupt", ErrCorrupt, ClassPermanent},
		{"invariant", ErrInvariant, ClassPermanent},
		{"rejected", core.ErrRejected, ClassPermanent},
		{"injected", ErrInjected, ClassTransient},
		{"torn", ErrTorn, ClassTransient},
		{"budget", core.ErrBudgetExceeded, ClassTransient},
		{"deadline", context.DeadlineExceeded, ClassTransient},
		{"canceled", context.Canceled, ClassTransient},
		{"broken, no cause", ErrSessionBroken, ClassTransient},
		{"unknown", errors.New("what is this"), ClassUnknown},
	}
	for _, tc := range cases {
		if got := Classify(tc.err); got != tc.want {
			t.Errorf("Classify(%s) = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// A broken-session wrap must not launder its cause: broken-because-of-
// data-loss is permanent, broken-because-of-fsync-fault is transient.
func TestClassifyBrokenWrapKeepsCause(t *testing.T) {
	transient := fmt.Errorf("%w: %w", ErrSessionBroken, ErrInjected)
	if got := Classify(transient); got != ClassTransient {
		t.Fatalf("broken(injected) = %v, want transient", got)
	}
	perm := fmt.Errorf("%w: %w", ErrSessionBroken, ErrDataLoss)
	if got := Classify(perm); got != ClassPermanent {
		t.Fatalf("broken(data loss) = %v, want permanent", got)
	}
	// Double wrap, as produced by serve wrapping store's own wrap.
	double := fmt.Errorf("%w: %w", ErrSessionBroken, perm)
	if got := Classify(double); got != ClassPermanent {
		t.Fatalf("broken(broken(data loss)) = %v, want permanent", got)
	}
}

func TestTransientPermanentTags(t *testing.T) {
	if Transient(nil) != nil || Permanent(nil) != nil {
		t.Fatal("tagging nil must stay nil")
	}
	base := errors.New("opaque backend failure")
	tagged := Transient(base)
	if got := Classify(tagged); got != ClassTransient {
		t.Fatalf("Transient tag = %v, want transient", got)
	}
	if !errors.Is(tagged, base) {
		t.Fatal("Transient must preserve the chain")
	}
	if tagged.Error() != base.Error() {
		t.Fatalf("Transient changed message: %q", tagged.Error())
	}
	if got := Classify(Permanent(ErrInjected)); got != ClassPermanent {
		t.Fatalf("explicit Permanent tag must beat sentinel table, got %v", got)
	}
	if got := Classify(fmt.Errorf("ctx: %w", Transient(ErrDataLoss))); got != ClassTransient {
		t.Fatalf("wrapped tag must still win, got %v", got)
	}
}

func TestRetryable(t *testing.T) {
	if !Retryable(ErrInjected) {
		t.Fatal("injected fault must be retryable")
	}
	if Retryable(ErrDataLoss) || Retryable(errors.New("mystery")) || Retryable(nil) {
		t.Fatal("permanent/unknown/nil must not be retryable")
	}
}

func TestClassString(t *testing.T) {
	if ClassTransient.String() != "transient" ||
		ClassPermanent.String() != "permanent" ||
		ClassUnknown.String() != "unknown" {
		t.Fatal("Class.String mismatch")
	}
}

// The ApplyCtx broken-session wrap must expose the original cause so
// the self-healing layer can classify it.
func TestApplyCtxWrapPreservesCause(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{Match: journalOnly, FailSyncAt: 1})
	pair, db, syms := edmFixture()
	st, err := Create(ffs, pair, db, syms, Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	_, err = st.Apply(ops[0])
	if err == nil {
		t.Fatal("expected broken session")
	}
	if !errors.Is(err, ErrSessionBroken) || !errors.Is(err, ErrInjected) {
		t.Fatalf("wrap lost chain: %v", err)
	}
	if Classify(err) != ClassTransient {
		t.Fatalf("fsync-fault breakage must classify transient: %v", err)
	}
	if st.Broken() == nil || !errors.Is(st.Broken(), ErrInjected) {
		t.Fatalf("Broken() must return the cause, got %v", st.Broken())
	}
	if _, err2 := st.Apply(ops[1]); !errors.Is(err2, ErrInjected) {
		t.Fatalf("sticky broken wrap lost chain: %v", err2)
	}
}
