package store

import (
	"testing"

	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/value"
)

// TestJournalMetricsRecorded drives applies through the durable session
// with a metrics sink installed and asserts the journal path records
// fsync latency, append latency, and byte/record volume — plus snapshot
// and recovery metrics across a rotate + reopen.
func TestJournalMetricsRecorded(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	mem := NewMemFS()
	sess, err := Create(mem, pair, db, syms, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	for _, op := range ops {
		if _, err := sess.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter("store_journal_records_total").Value(); got != int64(len(ops)) {
		t.Errorf("store_journal_records_total = %d, want %d", got, len(ops))
	}
	if got := reg.Counter("store_journal_bytes_total").Value(); got <= 0 {
		t.Errorf("store_journal_bytes_total = %d, want > 0", got)
	}
	fsync := reg.Histogram("store_journal_fsync_ns")
	if fsync.Count() != int64(len(ops)) {
		t.Errorf("store_journal_fsync_ns count = %d, want %d", fsync.Count(), len(ops))
	}
	appendH := reg.Histogram("store_journal_append_ns")
	if appendH.Count() != int64(len(ops)) {
		t.Errorf("store_journal_append_ns count = %d, want %d", appendH.Count(), len(ops))
	}
	// Append includes encode + write + fsync, so its total cannot be
	// below the fsync total.
	if appendH.Sum() < fsync.Sum() {
		t.Errorf("append sum %v < fsync sum %v", appendH.Sum(), fsync.Sum())
	}
	// 50 ops at SnapshotEvery=8 must have rotated at least once.
	if got := reg.Counter("store_snapshot_total").Value(); got < 1 {
		t.Errorf("store_snapshot_total = %d, want >= 1", got)
	}
	if got := reg.Histogram("store_snapshot_write_ns").Count(); got < 1 {
		t.Errorf("store_snapshot_write_ns count = %d, want >= 1", got)
	}

	// Recovery metrics on reopen.
	syms2 := value.NewSymbols()
	if _, rep, err := Recover(mem, pair, syms2, Options{}); err != nil {
		t.Fatal(err)
	} else if rep == nil {
		t.Fatal("nil recovery report")
	}
	if got := reg.Counter("store_recover_total").Value(); got != 1 {
		t.Errorf("store_recover_total = %d, want 1", got)
	}
	if got := reg.Histogram("store_recover_ns").Count(); got != 1 {
		t.Errorf("store_recover_ns count = %d, want 1", got)
	}
}

// TestStoreNilSink confirms the instrumented store paths run unchanged
// with metrics disabled (the default).
func TestStoreNilSink(t *testing.T) {
	SetMetrics(nil)
	pair, db, syms := edmFixture()
	mem := NewMemFS()
	sess, err := Create(mem, pair, db, syms, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops50(syms)[:10] {
		if _, err := sess.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}
