package store

import (
	"context"
	"fmt"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
)

// Group commit: a batch of ops is applied in memory one by one, their
// records are concatenated into a single buffer, and the buffer goes to
// the journal in ONE Write and ONE Sync. Per-op durability semantics
// are preserved — no op in the batch is acknowledged before the shared
// fsync returns — and so is crash safety: a batch is framed as plain
// concatenated records, so a crash mid-write leaves a prefix of whole
// records and the ordinary torn-tail recovery truncates at the last
// intact one. No recovery changes are needed for batches.

// BatchItem is the per-op outcome of a batch apply. Err is nil when the
// op was applied (and, once the batch call returns without
// ErrSessionBroken, durable); it wraps core.ErrRejected for
// untranslatable ops and carries the decide/translate error otherwise.
// In both failure cases the database is unchanged by that op.
type BatchItem struct {
	Decision *core.Decision
	Err      error
}

// ApplyBatchCtx applies ops as one group commit. Every op is attempted
// independently: a rejection or a per-op error (budget trip, context
// cancellation) is recorded in its BatchItem and does not stop the
// batch — the semantics of concurrent submitters whose ops happen to
// share an fsync, not of a script. Applied ops are journaled together
// with a single fsync; they are durable when the call returns, even
// when some items carry errors. The returned error is non-nil only when
// the session is (or becomes) broken — then items reports how far the
// batch got, and applied ops' durability is indeterminate (see
// ErrSessionBroken).
func (s *Session) ApplyBatchCtx(ctx context.Context, ops []core.UpdateOp) ([]BatchItem, error) {
	sops := make([]SpeculatedOp, len(ops))
	for i, op := range ops {
		sops[i] = SpeculatedOp{Op: op}
	}
	return s.applyBatch(ctx, sops, false)
}

// SpeculatedOp is an update optionally paired with the speculative
// outcome the serving pipeline's scratch session computed for it: the
// decision and the post-op database at FromVersion. A nil Decision or
// DB means "no speculation — run the full apply".
type SpeculatedOp struct {
	Op          core.UpdateOp
	Decision    *core.Decision
	DB          *relation.Relation
	FromVersion uint64
}

// ApplySpeculatedBatchCtx is ApplyBatchCtx for ops carrying
// speculations. Each op first tries core.Session.AdoptSpeculated —
// installing the pre-computed state after cheap re-validation — and
// falls back to the full decide/translate/verify apply when the
// speculation is absent or does not match. Journaling, durability, and
// crash semantics are identical to ApplyBatchCtx: adoption changes how
// the in-memory state is produced, never what is written or fsynced.
func (s *Session) ApplySpeculatedBatchCtx(ctx context.Context, ops []SpeculatedOp) ([]BatchItem, error) {
	return s.applyBatch(ctx, ops, false)
}

// ApplyBatch is ApplyBatchCtx without a context bound.
func (s *Session) ApplyBatch(ops []core.UpdateOp) ([]BatchItem, error) {
	return s.ApplyBatchCtx(context.Background(), ops)
}

// applyBatch is the group-commit engine. With stopOnErr the loop stops
// at the first rejection or error (script semantics, backing ApplyAll);
// without it every op is attempted (pipeline semantics). Either way the
// applied prefix is journaled in one write + one fsync before
// returning, so in-memory state never runs ahead of an acknowledgement.
func (s *Session) applyBatch(ctx context.Context, ops []SpeculatedOp, stopOnErr bool) ([]BatchItem, error) {
	if s.broken != nil {
		return nil, fmt.Errorf("%w: %w", ErrSessionBroken, s.broken)
	}
	items := make([]BatchItem, 0, len(ops))
	var buf []byte
	applied := 0
	var encodeErr error
	for _, sop := range ops {
		op := sop.Op
		var d *core.Decision
		var err error
		// With the incremental path on, a per-delta ApplyCtx beats
		// adopting the speculated whole-instance state: adoption swaps
		// the database pointer and invalidates the maintained delta
		// state every op. The speculated decision still pays off — the
		// decider seeded it, so the re-decide is a cache lookup.
		if sop.Decision != nil && !s.sess.IncrementalEnabled() &&
			s.sess.AdoptSpeculated(op, sop.Decision, sop.DB, sop.FromVersion) {
			d = sop.Decision
		} else {
			d, err = s.sess.ApplyCtx(ctx, op)
		}
		if err != nil {
			items = append(items, BatchItem{Decision: d, Err: err})
			if stopOnErr {
				break
			}
			continue
		}
		rec, err := EncodeOp(s.seq+uint64(applied)+1, op, s.syms)
		if err != nil {
			// The op is applied in memory but cannot be journaled:
			// memory is ahead of disk with nothing to write. Flush the
			// encodable prefix below, then break the session.
			items = append(items, BatchItem{Decision: d, Err: fmt.Errorf("%w: %w", ErrSessionBroken, err)})
			encodeErr = err
			break
		}
		buf = append(buf, rec...)
		applied++
		items = append(items, BatchItem{Decision: d})
	}
	if applied > 0 {
		if err := s.j.appendEncoded(buf, applied); err != nil {
			s.broken = err
			return items, fmt.Errorf("%w: %w", ErrSessionBroken, err)
		}
		s.seq += uint64(applied)
		s.sinceSnap += applied
		if s.sinceSnap >= s.opts.every() {
			s.snapErr = s.rotate()
		}
	}
	if encodeErr != nil {
		s.broken = encodeErr
		return items, fmt.Errorf("%w: %w", ErrSessionBroken, encodeErr)
	}
	return items, nil
}

// applyAllChunk bounds how many ops share one group commit in ApplyAll:
// large enough to amortize the fsync, small enough that a failed script
// does not hold a long applied-but-unacknowledged prefix in memory.
const applyAllChunk = 64

// ApplyAll applies a sequence of updates with group commit, stopping at
// the first rejection or error, mirroring core.Session.ApplyAll: it
// returns the number applied (all of them durable) and the stopping
// error. A 100-op script pays ⌈100/64⌉ fsyncs instead of 100.
func (s *Session) ApplyAll(ops []core.UpdateOp) (int, error) {
	return s.ApplyAllCtx(context.Background(), ops)
}

// ApplyAllCtx is ApplyAll bounded by a context, checked per update.
func (s *Session) ApplyAllCtx(ctx context.Context, ops []core.UpdateOp) (int, error) {
	applied := 0
	for start := 0; start < len(ops); start += applyAllChunk {
		end := start + applyAllChunk
		if end > len(ops) {
			end = len(ops)
		}
		chunk := make([]SpeculatedOp, end-start)
		for i, op := range ops[start:end] {
			chunk[i] = SpeculatedOp{Op: op}
		}
		items, err := s.applyBatch(ctx, chunk, true)
		for _, it := range items {
			if it.Err == nil {
				applied++
			}
		}
		if err != nil {
			return applied, err
		}
		for _, it := range items {
			if it.Err != nil {
				return applied, it.Err
			}
		}
	}
	return applied, nil
}

// ViewVersion forwards the wrapped core session's view version (see
// core.Session.ViewVersion). Recovery replays bump it, so it equals the
// ops applied in this process, not Seq.
func (s *Session) ViewVersion() uint64 { return s.sess.ViewVersion() }

// SeedDecision forwards to the wrapped core session (see
// core.Session.SeedDecision); the serving pipeline uses it to make the
// commit-time decide a cache lookup.
func (s *Session) SeedDecision(version uint64, op core.UpdateOp, d *core.Decision) {
	s.sess.SeedDecision(version, op, d)
}

// InvalidateDecisions forwards to the wrapped core session.
func (s *Session) InvalidateDecisions() { s.sess.InvalidateDecisions() }

// InvalidateDeltas forwards to the wrapped core session (see
// core.Session.InvalidateDeltas): the serving pipeline drops the
// maintained delta state whenever its speculation basis diverged.
func (s *Session) InvalidateDeltas() { s.sess.InvalidateDeltas() }

// SetIncremental forwards to the wrapped core session, switching the
// delta-driven incremental decide/apply path on or off.
func (s *Session) SetIncremental(on bool) { s.sess.SetIncremental(on) }

// IncrementalEnabled forwards to the wrapped core session.
func (s *Session) IncrementalEnabled() bool { return s.sess.IncrementalEnabled() }
