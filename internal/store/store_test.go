package store

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// edmFixture is the paper's §2 Employee–Department–Manager schema with
// view X = ED under constant complement Y = DM, two departments with
// two permanent employees each (so no update below ever empties a
// department and every generated op is translatable).
func edmFixture() (*core.Pair, *relation.Relation, *value.Symbols) {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < 4; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	return pair, db, syms
}

// ops50 generates a deterministic 50-op session mixing inserts,
// deletes, and replaces, every one translatable against edmFixture.
func ops50(syms *value.Symbols) []core.UpdateOp {
	dept := func(d int) value.Value { return syms.Const(fmt.Sprintf("dept%d", d%2)) }
	type emp struct {
		name string
		d    int
	}
	var pool []emp
	var ops []core.UpdateOp
	for i := 0; len(ops) < 50; i++ {
		switch {
		case len(pool) > 2 && i%7 == 3:
			e := pool[0]
			pool = pool[1:]
			ops = append(ops, core.Delete(relation.Tuple{syms.Const(e.name), dept(e.d)}))
		case len(pool) > 0 && i%7 == 5:
			e := pool[0]
			pool[0].d = e.d + 1
			ops = append(ops, core.Replace(
				relation.Tuple{syms.Const(e.name), dept(e.d)},
				relation.Tuple{syms.Const(e.name), dept(e.d + 1)},
			))
		default:
			name := fmt.Sprintf("e%02d", i)
			ops = append(ops, core.Insert(relation.Tuple{syms.Const(name), dept(i)}))
			pool = append(pool, emp{name, i})
		}
	}
	return ops
}

// render canonicalizes a relation for comparison across processes with
// different symbol-interning orders: constants by name, rows sorted.
func render(r *relation.Relation, syms *value.Symbols) string {
	lines := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		fields := make([]string, len(t))
		for i, v := range t {
			fields[i] = syms.Name(v)
		}
		lines = append(lines, strings.Join(fields, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// referenceAfter replays the first n ops on a plain in-memory session
// and renders the resulting database.
func referenceAfter(t *testing.T, n int) string {
	t.Helper()
	pair, db, syms := edmFixture()
	sess, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	for i, op := range ops[:n] {
		if _, err := sess.Apply(op); err != nil {
			t.Fatalf("reference op %d: %v", i+1, err)
		}
	}
	return render(sess.Database(), syms)
}

func journalOnly(name string) bool { return name == JournalFile }

// TestCrashMatrix is the acceptance matrix: a 50-op session killed at
// every journal record boundary, under four fault modes per boundary —
// outright write failure, fsync failure (bytes written but not
// durable), and two torn-write geometries (a few bytes of a record, and
// a tear past the header into the payload). After each kill, recovery
// from what a real disk would retain must rebuild exactly the
// acknowledged prefix and re-verify the constant-complement invariant;
// the revived session must then complete the remaining workload.
func TestCrashMatrix(t *testing.T) {
	opts := Options{SnapshotEvery: 16}
	modes := []struct {
		name string
		plan func(n int) FaultPlan
		torn bool
	}{
		{"failWrite", func(n int) FaultPlan {
			return FaultPlan{Match: journalOnly, FailWriteAt: n}
		}, false},
		{"failSync", func(n int) FaultPlan {
			return FaultPlan{Match: journalOnly, FailSyncAt: n}
		}, false},
		{"tearShort", func(n int) FaultPlan {
			return FaultPlan{Match: journalOnly, TearWriteAt: n, TearKeep: 5}
		}, true},
		{"tearPastHeader", func(n int) FaultPlan {
			return FaultPlan{Match: journalOnly, TearWriteAt: n, TearKeep: 13}
		}, true},
	}
	for _, mode := range modes {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			for n := 1; n <= 50; n++ {
				mem := NewMemFS()
				ffs := NewFaultFS(mem, mode.plan(n))
				pair, db, syms := edmFixture()
				st, err := Create(ffs, pair, db, syms, opts)
				if err != nil {
					t.Fatalf("n=%d: create: %v", n, err)
				}
				ops := ops50(syms)
				applied := 0
				var failure error
				for _, op := range ops {
					if _, err := st.Apply(op); err != nil {
						failure = err
						break
					}
					applied++
				}
				if failure == nil {
					t.Fatalf("n=%d: fault never fired", n)
				}
				if !errors.Is(failure, ErrSessionBroken) {
					t.Fatalf("n=%d: journal fault surfaced as %v, want ErrSessionBroken", n, failure)
				}
				if applied != n-1 {
					t.Fatalf("n=%d: %d ops acked before the fault, want %d", n, applied, n-1)
				}
				// The broken session refuses further work.
				if _, err := st.Apply(ops[applied]); !errors.Is(err, ErrSessionBroken) {
					t.Fatalf("n=%d: broken session accepted an op (%v)", n, err)
				}

				mem.Crash()
				syms2 := value.NewSymbols()
				rec, rep, err := Recover(mem, pair, syms2, opts)
				if err != nil {
					t.Fatalf("n=%d: recover: %v", n, err)
				}
				if !rep.InvariantOK {
					t.Fatalf("n=%d: invariant not re-verified: %+v", n, rep)
				}
				if got := rep.SnapshotSeq + uint64(rep.Replayed); got != uint64(n-1) {
					t.Fatalf("n=%d: recovered seq %d (snapshot %d + %d replayed), want %d",
						n, got, rep.SnapshotSeq, rep.Replayed, n-1)
				}
				if mode.torn != rep.Torn || rep.Corrupt {
					t.Fatalf("n=%d: tail report torn=%v corrupt=%v, want torn=%v corrupt=false",
						n, rep.Torn, rep.Corrupt, mode.torn)
				}
				if got, want := render(rec.Database(), syms2), referenceAfter(t, n-1); got != want {
					t.Fatalf("n=%d: recovered database:\n%s\nwant:\n%s", n, got, want)
				}

				// The revived session finishes the workload (including the
				// op whose ack was lost) and lands on the full-run state.
				ops2 := ops50(syms2)
				for i, op := range ops2[n-1:] {
					if _, err := rec.Apply(op); err != nil {
						t.Fatalf("n=%d: post-recovery op %d: %v", n, n+i, err)
					}
				}
				if got, want := render(rec.Database(), syms2), referenceAfter(t, 50); got != want {
					t.Fatalf("n=%d: post-recovery completion diverged:\n%s\nwant:\n%s", n, got, want)
				}
			}
		})
	}
}

// TestRecoverCorruptMiddle flips a byte in the middle of the journal:
// intact records survive past the damage, so recovery must refuse with
// ErrDataLoss until forced, and a forced recovery must keep the records
// before the damage, truncate everything from it on, and flag the tail
// corrupt (not torn).
func TestRecoverCorruptMiddle(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, err := Create(mem, pair, db, syms, Options{SnapshotEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	for _, op := range ops[:10] {
		if _, err := st.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	img, ok := mem.Bytes(JournalFile)
	if !ok {
		t.Fatal("journal missing")
	}
	// Find the byte offset of record 4 and damage its payload.
	var off int64
	for i := 0; i < 3; i++ {
		_, n, err := DecodeRecord(img[off:])
		if err != nil {
			t.Fatal(err)
		}
		off += int64(n)
	}
	if err := mem.Corrupt(JournalFile, int(off)+recordHeaderLen); err != nil {
		t.Fatal(err)
	}
	// Records 5..10 are intact past the damage: recovery must refuse to
	// silently drop them, and must leave the journal untouched.
	if _, _, err := Recover(mem, pair, value.NewSymbols(), Options{}); !errors.Is(err, ErrDataLoss) {
		t.Fatalf("unforced recover on mid-journal corruption: err=%v, want ErrDataLoss", err)
	}
	if img2, _ := mem.Bytes(JournalFile); len(img2) != len(img) {
		t.Fatalf("refused recovery still truncated the journal: %d bytes, want %d", len(img2), len(img))
	}
	syms2 := value.NewSymbols()
	rec, rep, err := Recover(mem, pair, syms2, Options{ForceRecover: true})
	if err != nil {
		t.Fatalf("forced recover: %v", err)
	}
	if !rep.Corrupt || rep.Torn {
		t.Errorf("tail report torn=%v corrupt=%v, want corrupt only", rep.Torn, rep.Corrupt)
	}
	if rep.Replayed != 3 {
		t.Errorf("replayed %d records past the damage, want 3", rep.Replayed)
	}
	if rep.TruncatedBytes != int64(len(img))-off {
		t.Errorf("truncated %d bytes, want %d", rep.TruncatedBytes, int64(len(img))-off)
	}
	if got, want := render(rec.Database(), syms2), referenceAfter(t, 3); got != want {
		t.Errorf("recovered database:\n%s\nwant:\n%s", got, want)
	}
	// The truncation is durable: a second recovery sees a clean journal.
	_, rep2, err := Recover(mem, pair, value.NewSymbols(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Torn || rep2.Corrupt || rep2.TruncatedBytes != 0 {
		t.Errorf("second recovery still sees damage: %+v", rep2)
	}
}

// TestRecoverSkipsPreSnapshotRecords models a crash between snapshot
// rename and journal reset: the journal retains records the snapshot
// already absorbed, which recovery must skip by sequence number.
func TestRecoverSkipsPreSnapshotRecords(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, err := Create(mem, pair, db, syms, Options{SnapshotEvery: 1000})
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	for _, op := range ops[:6] {
		if _, err := st.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	// Hand-write a snapshot at seq 3 without resetting the journal —
	// exactly the on-disk state of a crash inside rotate().
	pairRef, dbRef, symsRef := edmFixture()
	ref, err := core.NewSession(pairRef, dbRef)
	if err != nil {
		t.Fatal(err)
	}
	for _, op := range ops50(symsRef)[:3] {
		if _, err := ref.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := writeSnapshot(mem, SnapshotFile, 3, ref.Database(), symsRef); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, rep, err := Recover(mem, pair, syms2, Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rep.SnapshotSeq != 3 || rep.Skipped != 3 || rep.Replayed != 3 {
		t.Errorf("report %+v, want snapshot 3, 3 skipped, 3 replayed", rep)
	}
	if got, want := render(rec.Database(), syms2), referenceAfter(t, 6); got != want {
		t.Errorf("recovered database:\n%s\nwant:\n%s", got, want)
	}
}

// TestRejectedOpNotJournaled: untranslatable updates are logged in
// memory but never journaled, so recovery reproduces only applied ops.
func TestRejectedOpNotJournaled(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, err := Create(mem, pair, db, syms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	for _, op := range ops[:5] {
		if _, err := st.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	before, _ := mem.Bytes(JournalFile)
	// Inserting an employee into a department with no manager anywhere
	// in the database is untranslatable under constant DM.
	bad := core.Insert(relation.Tuple{syms.Const("ghost"), syms.Const("deptX")})
	if _, err := st.Apply(bad); !errors.Is(err, core.ErrRejected) {
		t.Fatalf("want ErrRejected, got %v", err)
	}
	after, _ := mem.Bytes(JournalFile)
	if len(after) != len(before) {
		t.Errorf("rejected op grew the journal by %d bytes", len(after)-len(before))
	}
	if st.Seq() != 5 {
		t.Errorf("seq %d after rejection, want 5", st.Seq())
	}
	// And the store remains healthy.
	if _, err := st.Apply(ops[5]); err != nil {
		t.Fatalf("apply after rejection: %v", err)
	}
}

// TestSnapshotFailureDegradesGracefully: a failing snapshot write must
// not fail the op or break the session — durability falls back to the
// journal alone, and recovery still works.
func TestSnapshotFailureDegradesGracefully(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{
		Match:       func(name string) bool { return name == SnapshotFile+".tmp" },
		FailWriteAt: 2, // Create's initial snapshot is write 1; first rotation fails
	})
	pair, db, syms := edmFixture()
	st, err := Create(ffs, pair, db, syms, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	for i, op := range ops[:4] {
		if _, err := st.Apply(op); err != nil {
			t.Fatalf("op %d: %v", i+1, err)
		}
	}
	if st.SnapshotErr() == nil {
		t.Fatal("snapshot fault did not surface in SnapshotErr")
	}
	// The next rotation (op 8) succeeds and clears the degraded state.
	for i, op := range ops[4:8] {
		if _, err := st.Apply(op); err != nil {
			t.Fatalf("op %d: %v", i+5, err)
		}
	}
	if err := st.SnapshotErr(); err != nil {
		t.Fatalf("degraded state not cleared after good snapshot: %v", err)
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, rep, err := Recover(mem, pair, syms2, Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if got := rep.SnapshotSeq + uint64(rep.Replayed); got != 8 {
		t.Errorf("recovered seq %d, want 8", got)
	}
	if got, want := render(rec.Database(), syms2), referenceAfter(t, 8); got != want {
		t.Errorf("recovered database:\n%s\nwant:\n%s", got, want)
	}
}

// TestOpenFreshAndResume covers the Open convenience on both paths.
func TestOpenFreshAndResume(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, rep, err := Open(mem, pair, db, syms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep != nil {
		t.Errorf("fresh Open produced a recovery report: %+v", rep)
	}
	ops := ops50(syms)
	for _, op := range ops[:7] {
		if _, err := st.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	st.Close()
	syms2 := value.NewSymbols()
	st2, rep2, err := Open(mem, pair, nil, syms2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep2 == nil {
		t.Fatal("resuming Open did not recover")
	}
	if got, want := render(st2.Database(), syms2), referenceAfter(t, 7); got != want {
		t.Errorf("resumed database:\n%s\nwant:\n%s", got, want)
	}
}

// TestDirFS runs the full create/apply/recover cycle on a real
// directory.
func TestDirFS(t *testing.T) {
	fsys, err := NewDirFS(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	pair, db, syms := edmFixture()
	st, err := Create(fsys, pair, db, syms, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	ops := ops50(syms)
	for _, op := range ops {
		if _, err := st.Apply(op); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	syms2 := value.NewSymbols()
	rec, rep, err := Recover(fsys, pair, syms2, Options{})
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if !rep.InvariantOK {
		t.Error("invariant not verified")
	}
	if got, want := render(rec.Database(), syms2), referenceAfter(t, 50); got != want {
		t.Errorf("recovered database:\n%s\nwant:\n%s", got, want)
	}
}

// memWrite creates name on m with the given contents fsynced (but the
// directory not).
func memWrite(t *testing.T, m *MemFS, name, contents string) {
	t.Helper()
	f, err := m.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte(contents)); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestMemFSMetadataDurability pins the MemFS failure model for
// directory metadata: creates, renames, and removes are visible
// immediately but revert on Crash unless SyncDir ran — even when the
// file's *contents* were fsynced, matching a POSIX directory that was
// never fsynced.
func TestMemFSMetadataDurability(t *testing.T) {
	m := NewMemFS()

	// A created file with fsynced contents still vanishes: its
	// directory entry was never made durable.
	memWrite(t, m, "a", "hello")
	m.Crash()
	if _, ok := m.Bytes("a"); ok {
		t.Fatal("unsynced-create file survived crash despite fsynced contents")
	}

	// A durable file overwritten via an unsynced rename reverts to the
	// old contents, and the rename source does not resurrect.
	memWrite(t, m, "a", "old")
	if err := m.SyncDir(); err != nil {
		t.Fatal(err)
	}
	memWrite(t, m, "b", "new")
	if err := m.Rename("b", "a"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, ok := m.Bytes("a"); !ok || string(got) != "old" {
		t.Fatalf("unsynced rename not reverted: %q (exists=%v), want \"old\"", got, ok)
	}
	if _, ok := m.Bytes("b"); ok {
		t.Fatal("rename source resurrected after crash")
	}

	// The same rename followed by SyncDir is durable.
	memWrite(t, m, "b", "new")
	if err := m.Rename("b", "a"); err != nil {
		t.Fatal(err)
	}
	if err := m.SyncDir(); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, ok := m.Bytes("a"); !ok || string(got) != "new" {
		t.Fatalf("synced rename lost: %q (exists=%v), want \"new\"", got, ok)
	}

	// An unsynced remove reverts; pending (never-fsynced) bytes on a
	// durable file are still dropped.
	if err := m.Remove("a"); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, ok := m.Bytes("a"); !ok || string(got) != "new" {
		t.Fatalf("unsynced remove not reverted: %q (exists=%v)", got, ok)
	}
	f, err := m.OpenAppend("a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("-unsynced")); err != nil {
		t.Fatal(err)
	}
	m.Crash()
	if got, _ := m.Bytes("a"); string(got) != "new" {
		t.Fatalf("unsynced bytes survived crash: %q", got)
	}
}

// TestRotationDurableAcrossCrash kills the store by power loss exactly
// at a snapshot rotation and one op after it. The rename and the
// journal reset must both survive (rename durable first), and an op
// acknowledged into the fresh journal must not be lost to a
// resurrected pre-rotation journal — the failure mode when the
// directory is never fsynced.
func TestRotationDurableAcrossCrash(t *testing.T) {
	for _, n := range []int{16, 17} {
		mem := NewMemFS()
		pair, db, syms := edmFixture()
		st, err := Create(mem, pair, db, syms, Options{SnapshotEvery: 16})
		if err != nil {
			t.Fatal(err)
		}
		for i, op := range ops50(syms)[:n] {
			if _, err := st.Apply(op); err != nil {
				t.Fatalf("n=%d: op %d: %v", n, i+1, err)
			}
		}
		mem.Crash()
		syms2 := value.NewSymbols()
		rec, rep, err := Recover(mem, pair, syms2, Options{})
		if err != nil {
			t.Fatalf("n=%d: recover: %v", n, err)
		}
		if got := rep.SnapshotSeq + uint64(rep.Replayed); got != uint64(n) {
			t.Fatalf("n=%d: recovered seq %d (snapshot %d + %d replayed), want %d",
				n, got, rep.SnapshotSeq, rep.Replayed, n)
		}
		if got, want := render(rec.Database(), syms2), referenceAfter(t, n); got != want {
			t.Fatalf("n=%d: recovered database:\n%s\nwant:\n%s", n, got, want)
		}
	}
}

// TestSyncDirFailures drives the two directory-fsync failure points in
// rotate: on the snapshot path the store degrades (journal-only
// durability, retried later); on the journal-reset path it must break —
// records fsynced into a journal whose directory entry is not durable
// could vanish with power.
func TestSyncDirFailures(t *testing.T) {
	// Create issues SyncDir 1 (snapshot) and 2 (journal); the rotation
	// at op 4 issues 3 (snapshot rename) and 4 (journal reset).
	t.Run("snapshotPathDegrades", func(t *testing.T) {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, FaultPlan{FailSyncDirAt: 3})
		pair, db, syms := edmFixture()
		st, err := Create(ffs, pair, db, syms, Options{SnapshotEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		ops := ops50(syms)
		for i, op := range ops[:4] {
			if _, err := st.Apply(op); err != nil {
				t.Fatalf("op %d: %v", i+1, err)
			}
		}
		if !errors.Is(st.SnapshotErr(), ErrInjected) {
			t.Fatalf("SnapshotErr = %v, want the injected dir-sync fault", st.SnapshotErr())
		}
		// The session stays healthy and the retried rotation clears it.
		if _, err := st.Apply(ops[4]); err != nil {
			t.Fatalf("apply after degraded snapshot: %v", err)
		}
		if err := st.SnapshotErr(); err != nil {
			t.Fatalf("degraded state not cleared by retried rotation: %v", err)
		}
	})
	t.Run("journalResetBreaks", func(t *testing.T) {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, FaultPlan{FailSyncDirAt: 4})
		pair, db, syms := edmFixture()
		st, err := Create(ffs, pair, db, syms, Options{SnapshotEvery: 4})
		if err != nil {
			t.Fatal(err)
		}
		ops := ops50(syms)
		for i, op := range ops[:4] {
			if _, err := st.Apply(op); err != nil {
				t.Fatalf("op %d: %v", i+1, err)
			}
		}
		if _, err := st.Apply(ops[4]); !errors.Is(err, ErrSessionBroken) {
			t.Fatalf("apply after failed journal-reset dir sync: %v, want ErrSessionBroken", err)
		}
		// All four acknowledged ops survive the crash: the snapshot at
		// seq 4 is durable, and the resurrected pre-rotation journal
		// only holds records the snapshot absorbed.
		mem.Crash()
		syms2 := value.NewSymbols()
		rec, rep, err := Recover(mem, pair, syms2, Options{})
		if err != nil {
			t.Fatalf("recover: %v", err)
		}
		if got := rep.SnapshotSeq + uint64(rep.Replayed); got != 4 {
			t.Fatalf("recovered seq %d, want 4 (report %+v)", got, rep)
		}
		if got, want := render(rec.Database(), syms2), referenceAfter(t, 4); got != want {
			t.Fatalf("recovered database:\n%s\nwant:\n%s", got, want)
		}
	})
}

// TestOpenMissingJournalRecovers: a missing journal next to an intact
// snapshot is a recoverable store, not a fresh one — Open must never
// reroute to Create and overwrite the snapshot.
func TestOpenMissingJournalRecovers(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, err := Create(mem, pair, db, syms, Options{SnapshotEvery: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops50(syms)[:4] {
		if _, err := st.Apply(op); err != nil {
			t.Fatalf("op %d: %v", i+1, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	if err := mem.Remove(JournalFile); err != nil {
		t.Fatal(err)
	}
	if err := mem.SyncDir(); err != nil {
		t.Fatal(err)
	}
	// db is nil: reaching the Create path would be the data-destroying
	// rewrite this test guards against, and it would fail loudly.
	syms2 := value.NewSymbols()
	st2, rep, err := Open(mem, pair, nil, syms2, Options{})
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if rep == nil {
		t.Fatal("Open with an intact snapshot did not take the recovery path")
	}
	if got, want := render(st2.Database(), syms2), referenceAfter(t, 4); got != want {
		t.Fatalf("recovered database:\n%s\nwant:\n%s", got, want)
	}
	// The re-created journal is live: new ops are accepted and durable.
	if _, err := st2.Apply(ops50(syms2)[4]); err != nil {
		t.Fatalf("apply after journal re-creation: %v", err)
	}
	mem.Crash()
	syms3 := value.NewSymbols()
	st3, _, err := Recover(mem, pair, syms3, Options{})
	if err != nil {
		t.Fatalf("second recover: %v", err)
	}
	if got, want := render(st3.Database(), syms3), referenceAfter(t, 5); got != want {
		t.Fatalf("database after crash:\n%s\nwant:\n%s", got, want)
	}
}

// TestSnapshotDecodeRejectsDamage exercises the snapshot codec's
// error paths: bad magic, wrong checksum, wrong universe.
func TestSnapshotDecodeRejectsDamage(t *testing.T) {
	pair, db, syms := edmFixture()
	u := pair.Schema().Universe()
	img, err := EncodeSnapshot(9, db, syms)
	if err != nil {
		t.Fatal(err)
	}
	if seq, got, err := DecodeSnapshot(img, u, value.NewSymbols()); err != nil || seq != 9 || got.Len() != db.Len() {
		t.Fatalf("round trip: seq=%d len=%v err=%v", seq, got, err)
	}
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte("XXSNAP1\n"), img[8:]...),
		"truncated": img[:len(img)-3],
	}
	flipped := append([]byte(nil), img...)
	flipped[snapHeaderLen+2] ^= 0xff
	cases["bit flip"] = flipped
	for name, data := range cases {
		if _, _, err := DecodeSnapshot(data, u, value.NewSymbols()); err == nil {
			t.Errorf("%s: decode accepted damaged snapshot", name)
		}
	}
	wrong := attr.MustUniverse("A", "B")
	if _, _, err := DecodeSnapshot(img, wrong, value.NewSymbols()); err == nil {
		t.Error("decode accepted snapshot for a different universe")
	}
}
