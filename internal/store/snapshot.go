package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io/fs"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Snapshot file layout:
//
//	8 bytes  magic "CCSNAP1\n"
//	u32 LE   body length
//	u32 LE   CRC32-C of body
//	body:
//	  uvarint seq                 — ops folded into this snapshot
//	  uvarint width
//	  width × (uvarint len, name) — universe attribute names, column order
//	  uvarint count
//	  count × width × (uvarint len, name) — tuples, constants by name
//
// A snapshot is written to <name>.tmp, fsynced, renamed over <name>,
// and the directory is fsynced, so a crash mid-write leaves the
// previous snapshot intact and at most a stray .tmp file, and a crash
// after writeSnapshot returns cannot revert the rename.

var snapMagic = []byte("CCSNAP1\n")

const snapHeaderLen = 16

// EncodeSnapshot serializes a database image at sequence seq.
func EncodeSnapshot(seq uint64, db *relation.Relation, syms *value.Symbols) ([]byte, error) {
	u := db.Universe()
	body := binary.AppendUvarint(nil, seq)
	body = binary.AppendUvarint(body, uint64(u.Size()))
	for i := 0; i < u.Size(); i++ {
		name := u.Name(attr.ID(i))
		body = binary.AppendUvarint(body, uint64(len(name)))
		body = append(body, name...)
	}
	body = binary.AppendUvarint(body, uint64(db.Len()))
	for _, t := range db.Tuples() {
		names, err := tupleNames(t, syms)
		if err != nil {
			return nil, err
		}
		for _, n := range names {
			body = binary.AppendUvarint(body, uint64(len(n)))
			body = append(body, n...)
		}
	}
	out := make([]byte, snapHeaderLen, snapHeaderLen+len(body))
	copy(out, snapMagic)
	binary.LittleEndian.PutUint32(out[8:12], uint32(len(body)))
	binary.LittleEndian.PutUint32(out[12:16], crc32.Checksum(body, castagnoli))
	return append(out, body...), nil
}

// DecodeSnapshot parses a snapshot image against the expected universe,
// interning constants in syms. Any framing, checksum, or schema
// mismatch is an error: a snapshot is the recovery floor and must be
// wholly intact.
func DecodeSnapshot(data []byte, u *attr.Universe, syms *value.Symbols) (uint64, *relation.Relation, error) {
	if len(data) < snapHeaderLen || string(data[:8]) != string(snapMagic) {
		return 0, nil, fmt.Errorf("store: snapshot: bad magic")
	}
	blen := binary.LittleEndian.Uint32(data[8:12])
	if uint64(blen) != uint64(len(data)-snapHeaderLen) {
		return 0, nil, fmt.Errorf("store: snapshot: length mismatch (declared %d, have %d)", blen, len(data)-snapHeaderLen)
	}
	body := data[snapHeaderLen:]
	if crc32.Checksum(body, castagnoli) != binary.LittleEndian.Uint32(data[12:16]) {
		return 0, nil, fmt.Errorf("store: snapshot: checksum mismatch")
	}
	r := byteReader{data: body}
	seq, ok := r.uvarint()
	if !ok {
		return 0, nil, fmt.Errorf("store: snapshot: truncated seq")
	}
	width, ok := r.uvarint()
	if !ok || width != uint64(u.Size()) {
		return 0, nil, fmt.Errorf("store: snapshot: universe width %d, want %d", width, u.Size())
	}
	for i := 0; i < u.Size(); i++ {
		n, ok := r.uvarint()
		if !ok || n > uint64(len(body)-r.off) {
			return 0, nil, fmt.Errorf("store: snapshot: truncated attribute name")
		}
		name := string(body[r.off : r.off+int(n)])
		r.off += int(n)
		if want := u.Name(attr.ID(i)); name != want {
			return 0, nil, fmt.Errorf("store: snapshot: attribute %d is %q, want %q", i, name, want)
		}
	}
	count, ok := r.uvarint()
	if !ok {
		return 0, nil, fmt.Errorf("store: snapshot: truncated tuple count")
	}
	db := relation.New(u.All())
	for i := uint64(0); i < count; i++ {
		t := make(relation.Tuple, u.Size())
		for c := range t {
			n, ok := r.uvarint()
			if !ok || n > uint64(len(body)-r.off) {
				return 0, nil, fmt.Errorf("store: snapshot: truncated tuple %d", i)
			}
			t[c] = syms.Const(string(body[r.off : r.off+int(n)]))
			r.off += int(n)
		}
		db.Insert(t)
	}
	if r.off != len(body) {
		return 0, nil, fmt.Errorf("store: snapshot: %d trailing bytes", len(body)-r.off)
	}
	return seq, db, nil
}

// writeSnapshot atomically and durably replaces the snapshot at name:
// the image is written and fsynced under a temporary name, renamed into
// place, and the rename is made durable with a directory fsync.
func writeSnapshot(fsys FS, name string, seq uint64, db *relation.Relation, syms *value.Symbols) error {
	m := smetrics.Load()
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	img, err := EncodeSnapshot(seq, db, syms)
	if err != nil {
		return err
	}
	tmp := name + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return fmt.Errorf("store: snapshot create: %w", err)
	}
	if _, err := f.Write(img); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: snapshot sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: snapshot close: %w", err)
	}
	if err := fsys.Rename(tmp, name); err != nil {
		return fmt.Errorf("store: snapshot rename: %w", err)
	}
	if err := fsys.SyncDir(); err != nil {
		return fmt.Errorf("store: snapshot dir sync: %w", err)
	}
	if m != nil {
		m.snapshots.Inc()
		m.snapshotNs.ObserveDuration(obs.SinceNS(t0))
	}
	return nil
}

// ErrNoSnapshot reports that the store holds no snapshot at all — there
// is no session to recover, as opposed to a store that is present but
// damaged. It satisfies errors.Is(err, fs.ErrNotExist).
var ErrNoSnapshot = fmt.Errorf("store: no snapshot: %w", fs.ErrNotExist)

// readSnapshot loads the snapshot at name. A missing file returns an
// error satisfying errors.Is(err, ErrNoSnapshot).
func readSnapshot(fsys FS, name string, u *attr.Universe, syms *value.Symbols) (uint64, *relation.Relation, error) {
	data, err := readAll(fsys, name)
	if err != nil {
		return 0, nil, err
	}
	if data == nil {
		return 0, nil, fmt.Errorf("store: snapshot %s: %w", name, ErrNoSnapshot)
	}
	return DecodeSnapshot(data, u, syms)
}
