package store

import (
	"fmt"
	"io"
	"io/fs"
	"sync"
)

// MemFS is an in-memory FS that models the durability boundary real
// disks have, for file contents and directory metadata alike: bytes
// written to a file are *unsynced* until Sync is called on the handle,
// and namespace changes (create, rename, remove) are *unsynced* until
// SyncDir. Crash simulates power loss by discarding every unsynced
// byte and reverting the namespace to its last SyncDir'd state — so a
// renamed-in snapshot or a freshly created journal vanishes on Crash
// unless the store fsynced the directory, exactly as on a POSIX
// filesystem. Tests drive a store against MemFS, kill it at an
// arbitrary point, call Crash, and then recover from what a real disk
// would have retained.
type MemFS struct {
	mu sync.Mutex
	// files is the visible namespace (what Open and new writes see);
	// dir is the durable namespace captured by the last SyncDir. Both
	// map names to shared *memEntry values, so content durability
	// (synced vs pending bytes) is tracked per entry regardless of
	// which names reach it.
	files map[string]*memEntry
	dir   map[string]*memEntry
}

type memEntry struct {
	synced  []byte
	pending []byte
}

func (e *memEntry) combined() []byte {
	out := make([]byte, 0, len(e.synced)+len(e.pending))
	out = append(out, e.synced...)
	return append(out, e.pending...)
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{files: make(map[string]*memEntry), dir: make(map[string]*memEntry)}
}

func cloneNamespace(src map[string]*memEntry) map[string]*memEntry {
	dst := make(map[string]*memEntry, len(src))
	for name, e := range src {
		dst[name] = e
	}
	return dst
}

// Crash simulates power loss: every byte not yet fsynced is discarded
// and the namespace reverts to the last SyncDir — unsynced creates and
// removes are undone, unsynced renames revert to the old binding. Open
// handles into the filesystem keep working (the dead process's handles
// are never used again by a well-formed test).
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files = cloneNamespace(m.dir)
	for _, e := range m.files {
		e.pending = nil
	}
}

// Bytes returns the current durable+pending content of name, for test
// assertions. The second result reports whether the file exists.
func (m *MemFS) Bytes(name string) ([]byte, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.files[name]
	if !ok {
		return nil, false
	}
	return e.combined(), true
}

// Corrupt flips one byte of name at offset, modeling media corruption
// underneath the checksums. It syncs the damage immediately.
func (m *MemFS) Corrupt(name string, offset int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.files[name]
	if !ok {
		return fmt.Errorf("store: corrupt %s: %w", name, fs.ErrNotExist)
	}
	all := e.combined()
	if offset < 0 || offset >= len(all) {
		return fmt.Errorf("store: corrupt %s: offset %d out of range", name, offset)
	}
	all[offset] ^= 0xff
	e.synced, e.pending = all, nil
	return nil
}

// Create implements FS.
func (m *MemFS) Create(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.files[name] = &memEntry{}
	return &memWriteFile{fs: m, name: name}, nil
}

// OpenAppend implements FS.
func (m *MemFS) OpenAppend(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memEntry{}
	}
	return &memWriteFile{fs: m, name: name}, nil
}

// Open implements FS. The handle reads a snapshot of the content at
// open time (synced and pending bytes alike — an OS page cache serves
// unsynced writes to readers too).
func (m *MemFS) Open(name string) (File, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.files[name]
	if !ok {
		return nil, fmt.Errorf("store: open %s: %w", name, fs.ErrNotExist)
	}
	return &memReadFile{data: e.combined()}, nil
}

// Rename implements FS.
func (m *MemFS) Rename(oldname, newname string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.files[oldname]
	if !ok {
		return fmt.Errorf("store: rename %s: %w", oldname, fs.ErrNotExist)
	}
	m.files[newname] = e
	delete(m.files, oldname)
	return nil
}

// Remove implements FS.
func (m *MemFS) Remove(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.files[name]; !ok {
		return fmt.Errorf("store: remove %s: %w", name, fs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

// SyncDir implements FS: the current namespace becomes the one Crash
// reverts to. File contents keep their own synced/pending split — a
// directory fsync does not flush file data.
func (m *MemFS) SyncDir() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.dir = cloneNamespace(m.files)
	return nil
}

// Truncate implements FS. The cut preserves the synced/pending split of
// the surviving prefix; like DirFS.Truncate it is durable on return
// (the cut never un-happens on Crash, though the entry itself still
// vanishes if its name was never SyncDir'd).
func (m *MemFS) Truncate(name string, size int64) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	e, ok := m.files[name]
	if !ok {
		return fmt.Errorf("store: truncate %s: %w", name, fs.ErrNotExist)
	}
	n := int(size)
	if n < 0 {
		return fmt.Errorf("store: truncate %s: negative size", name)
	}
	switch {
	case n <= len(e.synced):
		e.synced = e.synced[:n]
		e.pending = nil
	case n <= len(e.synced)+len(e.pending):
		e.pending = e.pending[:n-len(e.synced)]
	default:
		return fmt.Errorf("store: truncate %s: size %d beyond end", name, n)
	}
	return nil
}

type memWriteFile struct {
	fs   *MemFS
	name string
}

func (f *memWriteFile) Write(p []byte) (int, error) {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	e, ok := f.fs.files[f.name]
	if !ok {
		return 0, fmt.Errorf("store: write %s: %w", f.name, fs.ErrNotExist)
	}
	e.pending = append(e.pending, p...)
	return len(p), nil
}

func (f *memWriteFile) Sync() error {
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	e, ok := f.fs.files[f.name]
	if !ok {
		return fmt.Errorf("store: sync %s: %w", f.name, fs.ErrNotExist)
	}
	e.synced = append(e.synced, e.pending...)
	e.pending = nil
	return nil
}

func (f *memWriteFile) Read([]byte) (int, error) { return 0, io.EOF }
func (f *memWriteFile) Close() error             { return nil }

type memReadFile struct {
	data []byte
	off  int
}

func (f *memReadFile) Read(p []byte) (int, error) {
	if f.off >= len(f.data) {
		return 0, io.EOF
	}
	n := copy(p, f.data[f.off:])
	f.off += n
	return n, nil
}

func (f *memReadFile) Write([]byte) (int, error) {
	return 0, fmt.Errorf("store: file opened read-only")
}
func (f *memReadFile) Sync() error  { return nil }
func (f *memReadFile) Close() error { return nil }
