// Package store is the crash-safe durability layer under core.Session:
// a checksummed, length-prefixed journal of applied update operations
// plus periodic snapshots, with recovery that replays the journal onto
// the last good snapshot, truncates torn or corrupt tails, and
// re-verifies the constant-complement invariant after replay.
//
// All file access goes through the small FS interface so that tests can
// inject faults — failed or torn writes, failed fsyncs, simulated power
// loss — at every journal record boundary (see FaultFS and MemFS). The
// production implementation is DirFS.
//
// Durability contract: a record is appended to the journal and fsynced
// after the in-memory apply succeeds and before Apply returns success,
// so the journal holds exactly the applied operations in order. A crash
// at any point preserves every acknowledged operation; the single op in
// flight (if any) was never acknowledged and its outcome is
// indeterminate — it is usually lost, but a record that reached the
// disk before the failure surfaced is replayed by Recover. Replaying
// the journal onto the last good snapshot is deterministic because the
// translation procedures themselves are.
package store

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
)

// File is the slice of *os.File the store needs: sequential reads or
// writes plus fsync.
type File interface {
	io.Reader
	io.Writer
	Sync() error
	Close() error
}

// FS is the injectable filesystem under the store. Implementations:
// DirFS (production, a directory on disk), MemFS (tests, with an
// explicit synced/unsynced distinction for both file contents and
// directory metadata, so power loss can be simulated), FaultFS (wraps
// another FS and injects faults).
//
// Namespace operations (Create, OpenAppend's implicit create, Rename,
// Remove) take effect immediately but are not durable across power
// loss until SyncDir returns; File.Sync makes only a file's *contents*
// durable. Truncate is durable on return.
//
// Missing files surface as errors satisfying errors.Is(err,
// io/fs.ErrNotExist).
type FS interface {
	// Create opens name for writing, truncating any existing content.
	Create(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	// Open opens name for reading.
	Open(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes, durably.
	Truncate(name string, size int64) error
	// SyncDir makes all prior namespace changes (creates, renames,
	// removes) durable, the way fsyncing a directory does on a POSIX
	// filesystem.
	SyncDir() error
}

// DirFS is the production FS: files inside a root directory.
type DirFS struct {
	root string
}

// NewDirFS returns an FS rooted at dir, creating the directory if
// needed.
func NewDirFS(dir string) (*DirFS, error) {
	if err := os.MkdirAll(dir, 0o777); err != nil {
		return nil, err
	}
	return &DirFS{root: dir}, nil
}

func (d *DirFS) path(name string) string { return filepath.Join(d.root, name) }

// Create implements FS.
func (d *DirFS) Create(name string) (File, error) { return os.Create(d.path(name)) }

// OpenAppend implements FS.
func (d *DirFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(d.path(name), os.O_WRONLY|os.O_APPEND|os.O_CREATE, 0o666)
}

// Open implements FS.
func (d *DirFS) Open(name string) (File, error) { return os.Open(d.path(name)) }

// Rename implements FS.
func (d *DirFS) Rename(oldname, newname string) error {
	return os.Rename(d.path(oldname), d.path(newname))
}

// Remove implements FS.
func (d *DirFS) Remove(name string) error { return os.Remove(d.path(name)) }

// Truncate implements FS. The new size is fsynced before returning, so
// a cut journal tail cannot reappear after power loss.
func (d *DirFS) Truncate(name string, size int64) error {
	f, err := os.OpenFile(d.path(name), os.O_WRONLY, 0)
	if err != nil {
		return err
	}
	if err := f.Truncate(size); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// SyncDir implements FS: it fsyncs the root directory so renames,
// creates, and removes survive power loss.
func (d *DirFS) SyncDir() error {
	f, err := os.Open(d.root)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// readAll reads the full contents of name, returning a nil slice (and
// nil error) when the file does not exist.
func readAll(fsys FS, name string) ([]byte, error) {
	f, err := fsys.Open(name)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	return io.ReadAll(f)
}
