package store

import (
	"context"
	"errors"
	"fmt"
	"testing"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// batchImage frames ops[0:n] exactly as applyBatch does (seq 1..n) so
// tests can locate record boundaries inside the single group-commit
// write.
func batchImage(t *testing.T, n int) (image []byte, boundaries []int) {
	t.Helper()
	_, _, syms := edmFixture()
	boundaries = []int{0}
	for i, op := range ops50(syms)[:n] {
		rec, err := EncodeOp(uint64(i+1), op, syms)
		if err != nil {
			t.Fatal(err)
		}
		image = append(image, rec...)
		boundaries = append(boundaries, len(image))
	}
	return image, boundaries
}

// TestBatchCrashMatrixEveryByte is the group-commit acceptance matrix:
// an 8-op batch whose single journal write is torn at EVERY byte
// boundary of the batch image. Whatever prefix of whole records
// survives must recover cleanly — correct op count, correct database,
// torn-tail (never corrupt, never data loss) — and the revived session
// must complete the remaining workload.
func TestBatchCrashMatrixEveryByte(t *testing.T) {
	const batchN = 8
	image, boundaries := batchImage(t, batchN)
	for keep := 0; keep <= len(image); keep++ {
		mem := NewMemFS()
		ffs := NewFaultFS(mem, FaultPlan{Match: journalOnly, TearWriteAt: 1, TearKeep: keep})
		pair, db, syms := edmFixture()
		st, err := Create(ffs, pair, db, syms, Options{SnapshotEvery: 1 << 20})
		if err != nil {
			t.Fatalf("keep=%d: create: %v", keep, err)
		}
		items, err := st.ApplyBatch(ops50(syms)[:batchN])
		if !errors.Is(err, ErrSessionBroken) {
			t.Fatalf("keep=%d: torn batch write surfaced as %v, want ErrSessionBroken", keep, err)
		}
		// Every op decided cleanly in memory; the batch fsync failed.
		if len(items) != batchN {
			t.Fatalf("keep=%d: %d items, want %d", keep, len(items), batchN)
		}
		// The broken session refuses further batches.
		if _, err := st.ApplyBatch(ops50(syms)[:1]); !errors.Is(err, ErrSessionBroken) {
			t.Fatalf("keep=%d: broken session accepted a batch (%v)", keep, err)
		}

		mem.Crash()
		// k = whole records within the kept prefix; a tear strictly
		// inside record k+1 leaves a torn tail.
		k := 0
		for k+1 < len(boundaries) && boundaries[k+1] <= keep {
			k++
		}
		wantTorn := keep != boundaries[k]
		syms2 := value.NewSymbols()
		rec, rep, err := Recover(mem, pair, syms2, Options{})
		if err != nil {
			t.Fatalf("keep=%d: recover: %v", keep, err)
		}
		if rep.Torn != wantTorn || rep.Corrupt {
			t.Fatalf("keep=%d: tail report torn=%v corrupt=%v, want torn=%v corrupt=false",
				keep, rep.Torn, rep.Corrupt, wantTorn)
		}
		if !rep.InvariantOK {
			t.Fatalf("keep=%d: invariant not re-verified: %+v", keep, rep)
		}
		if got := rep.SnapshotSeq + uint64(rep.Replayed); got != uint64(k) {
			t.Fatalf("keep=%d: recovered seq %d, want %d whole records", keep, got, k)
		}
		if got, want := render(rec.Database(), syms2), referenceAfter(t, k); got != want {
			t.Fatalf("keep=%d: recovered database:\n%s\nwant:\n%s", keep, got, want)
		}
		// The revived session finishes the workload from the surviving
		// prefix and lands on the full-run state.
		ops2 := ops50(syms2)
		if _, err := rec.ApplyAll(ops2[k:]); err != nil {
			t.Fatalf("keep=%d: post-recovery completion: %v", keep, err)
		}
		if got, want := render(rec.Database(), syms2), referenceAfter(t, 50); got != want {
			t.Fatalf("keep=%d: post-recovery state diverged:\n%s\nwant:\n%s", keep, got, want)
		}
	}
}

// TestBatchCrashPowerLoss covers the MemFS power-loss modes on the
// single batch write: a failed write keeps nothing, and a failed fsync
// keeps nothing a crash can't drop (bytes were written but never made
// durable). Either way no op of the batch survives, and none was
// acknowledged as durable.
func TestBatchCrashPowerLoss(t *testing.T) {
	plans := map[string]FaultPlan{
		"failWrite": {Match: journalOnly, FailWriteAt: 1},
		"failSync":  {Match: journalOnly, FailSyncAt: 1},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			mem := NewMemFS()
			ffs := NewFaultFS(mem, plan)
			pair, db, syms := edmFixture()
			st, err := Create(ffs, pair, db, syms, Options{SnapshotEvery: 1 << 20})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := st.ApplyBatch(ops50(syms)[:8]); !errors.Is(err, ErrSessionBroken) {
				t.Fatalf("batch fault surfaced as %v, want ErrSessionBroken", err)
			}
			mem.Crash()
			syms2 := value.NewSymbols()
			rec, rep, err := Recover(mem, pair, syms2, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if rep.SnapshotSeq+uint64(rep.Replayed) != 0 || rep.Corrupt {
				t.Fatalf("unacknowledged batch partially recovered: %+v", rep)
			}
			if got, want := render(rec.Database(), syms2), referenceAfter(t, 0); got != want {
				t.Fatalf("recovered database:\n%s\nwant:\n%s", got, want)
			}
		})
	}
}

// TestApplyAllGroupCommit: a 50-op script through the store's ApplyAll
// costs ONE journal write + fsync (one 64-op chunk), not 50, and the
// result is both correct and durable.
func TestApplyAllGroupCommit(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{Match: journalOnly})
	pair, db, syms := edmFixture()
	st, err := Create(ffs, pair, db, syms, Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	n, err := st.ApplyAll(ops50(syms))
	if err != nil || n != 50 {
		t.Fatalf("ApplyAll = %d, %v; want 50, nil", n, err)
	}
	if got := ffs.Writes(); got != 1 {
		t.Errorf("50-op script issued %d journal writes, want 1 group commit", got)
	}
	if st.Seq() != 50 {
		t.Errorf("Seq = %d, want 50", st.Seq())
	}
	if got, want := render(st.Database(), syms), referenceAfter(t, 50); got != want {
		t.Errorf("ApplyAll state:\n%s\nwant:\n%s", got, want)
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, rep, err := Recover(mem, pair, syms2, Options{})
	if err != nil || rep.SnapshotSeq+uint64(rep.Replayed) != 50 {
		t.Fatalf("recover: %v, %+v", err, rep)
	}
	if got, want := render(rec.Database(), syms2), referenceAfter(t, 50); got != want {
		t.Errorf("recovered state:\n%s\nwant:\n%s", got, want)
	}
}

// TestApplyAllStopsAtRejection pins the script semantics ApplyAll
// inherits from core: stop at the first rejection, report how many ops
// landed, and leave that applied prefix durable.
func TestApplyAllStopsAtRejection(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, err := Create(mem, pair, db, syms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e, d string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const(d)}
	}
	ops := []core.UpdateOp{
		core.Insert(tup("zed", "dept0")),
		core.Insert(tup("emp1", "dept0")), // emp1 is in dept1: E→D rejects it
		core.Insert(tup("pat", "dept1")),  // must NOT run
	}
	n, err := st.ApplyAll(ops)
	if n != 1 || !errors.Is(err, core.ErrRejected) {
		t.Fatalf("ApplyAll = %d, %v; want 1, ErrRejected", n, err)
	}
	view := st.View()
	if !view.Contains(tup("zed", "dept0")) || view.Contains(tup("pat", "dept1")) {
		t.Error("ApplyAll did not stop at the rejection")
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, _, err := Recover(mem, pair, syms2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.View().Contains(relation.Tuple{syms2.Const("zed"), syms2.Const("dept0")}) {
		t.Error("applied prefix before the rejection was not durable")
	}
}

// TestApplyBatchContinuesPastRejection pins the pipeline semantics of
// ApplyBatchCtx: every op is attempted, rejections ride along in their
// items, and the applied ops around them share one durable fsync.
func TestApplyBatchContinuesPastRejection(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, err := Create(mem, pair, db, syms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e, d string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const(d)}
	}
	ops := []core.UpdateOp{
		core.Insert(tup("zed", "dept0")),
		core.Insert(tup("emp1", "dept0")), // emp1 is in dept1: E→D rejects it; batch continues
		core.Insert(tup("pat", "dept1")),
	}
	items, err := st.ApplyBatch(ops)
	if err != nil {
		t.Fatalf("batch error: %v", err)
	}
	if len(items) != 3 {
		t.Fatalf("%d items, want 3", len(items))
	}
	if items[0].Err != nil || items[2].Err != nil {
		t.Errorf("applied ops carry errors: %v, %v", items[0].Err, items[2].Err)
	}
	if !errors.Is(items[1].Err, core.ErrRejected) {
		t.Errorf("items[1].Err = %v, want ErrRejected", items[1].Err)
	}
	if items[1].Decision == nil || items[1].Decision.Translatable {
		t.Error("rejected item's decision missing or marked translatable")
	}
	if st.Seq() != 2 {
		t.Errorf("Seq = %d, want 2 (rejection consumes no seq)", st.Seq())
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, rep, err := Recover(mem, pair, syms2, Options{})
	if err != nil || rep.Replayed+int(rep.SnapshotSeq) != 2 {
		t.Fatalf("recover: %v, %+v", err, rep)
	}
	v := rec.View()
	if !v.Contains(relation.Tuple{syms2.Const("zed"), syms2.Const("dept0")}) ||
		!v.Contains(relation.Tuple{syms2.Const("pat"), syms2.Const("dept1")}) {
		t.Error("batch ops around the rejection not durable")
	}
}

// TestApplyBatchCancelledContext: a dead context fails every op in the
// batch without touching the journal or the database.
func TestApplyBatchCancelledContext(t *testing.T) {
	mem := NewMemFS()
	ffs := NewFaultFS(mem, FaultPlan{Match: journalOnly})
	pair, db, syms := edmFixture()
	st, err := Create(ffs, pair, db, syms, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	items, err := st.ApplyBatchCtx(ctx, ops50(syms)[:4])
	if err != nil {
		t.Fatalf("cancelled batch broke the session: %v", err)
	}
	for i, it := range items {
		if it.Err == nil {
			t.Errorf("item %d applied under a cancelled context", i)
		}
	}
	if ffs.Writes() != 0 {
		t.Errorf("cancelled batch wrote %d times to the journal", ffs.Writes())
	}
	if st.Seq() != 0 {
		t.Errorf("Seq = %d, want 0", st.Seq())
	}
	// The session is healthy: the same batch applies once the context
	// pressure is gone.
	if _, err := st.ApplyBatch(ops50(syms)[:4]); err != nil {
		t.Fatalf("healthy session refused work after cancelled batch: %v", err)
	}
}

// TestBatchSnapshotRotation: batches count toward the snapshot cadence,
// so a batch crossing the threshold rotates exactly like serial
// appends do.
func TestBatchSnapshotRotation(t *testing.T) {
	mem := NewMemFS()
	pair, db, syms := edmFixture()
	st, err := Create(mem, pair, db, syms, Options{SnapshotEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.ApplyBatch(ops50(syms)[:10]); err != nil {
		t.Fatal(err)
	}
	if err := st.SnapshotErr(); err != nil {
		t.Fatalf("snapshot rotation failed: %v", err)
	}
	mem.Crash()
	syms2 := value.NewSymbols()
	rec, rep, err := Recover(mem, pair, syms2, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SnapshotSeq != 10 {
		t.Errorf("SnapshotSeq = %d, want 10 (rotation covers the whole batch)", rep.SnapshotSeq)
	}
	if got, want := render(rec.Database(), syms2), referenceAfter(t, 10); got != want {
		t.Errorf("recovered database:\n%s\nwant:\n%s", got, want)
	}
}

// TestMixedBatchSingleFsync pins the batch path for Theorem 8/9 ops:
// a group commit mixing inserts, deletes, and replaces — not just
// inserts — lands as ONE journal batch with ONE fsync, and with the
// incremental path on (the default) every op still applies. This is
// what lets the per-delta benchmarks measure mixed batches.
func TestMixedBatchSingleFsync(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	st, err := Create(NewMemFS(), pair, db, syms, Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	if !st.IncrementalEnabled() {
		t.Fatal("incremental maintenance should default on")
	}
	tup := func(name string, d int) relation.Tuple {
		return relation.Tuple{syms.Const(name), syms.Const(fmt.Sprintf("dept%d", d%2))}
	}
	batch := []core.UpdateOp{
		core.Insert(tup("ba", 0)),
		core.Insert(tup("bb", 1)),
		core.Insert(tup("bc", 0)),
		core.Replace(tup("bc", 0), tup("bc", 1)),
		core.Delete(tup("ba", 0)),
		core.Delete(tup("bb", 1)),
		core.Insert(tup("bd", 0)),
		core.Delete(tup("bc", 1)),
	}
	items, err := st.ApplyBatchCtx(context.Background(), batch)
	if err != nil {
		t.Fatal(err)
	}
	for i, it := range items {
		if it.Err != nil {
			t.Fatalf("op %d: %v", i, it.Err)
		}
	}
	if got := reg.Counter("store_journal_batches_total").Value(); got != 1 {
		t.Errorf("store_journal_batches_total = %d, want 1 (the whole mixed batch shares a commit)", got)
	}
	if got := reg.Histogram("store_journal_fsync_ns").Count(); got != 1 {
		t.Errorf("fsync count = %d, want 1", got)
	}
	if got := reg.Counter("store_journal_records_total").Value(); got != int64(len(batch)) {
		t.Errorf("store_journal_records_total = %d, want %d", got, len(batch))
	}
}
