package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Journal record framing:
//
//	u32 LE  payload length
//	u32 LE  CRC32-C of payload
//	payload
//
// payload:
//
//	uvarint seq      — 1-based op sequence number since database creation
//	byte    kind     — core.UpdateKind
//	tuple            — the op's Tuple
//	tuple            — the op's With (replace only)
//
// tuple:
//
//	uvarint width
//	width × (uvarint len, len bytes)   — constant *names*, not value ids
//
// Constants travel by name because symbol-interning order differs
// between the process that wrote the journal and the one replaying it.

// castagnoli is the CRC32-C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

const recordHeaderLen = 8

// maxPayload bounds a single record; a declared length beyond it is
// corruption, not a huge pending read.
const maxPayload = 1 << 26

// Decode errors. A torn tail is the expected residue of a crash
// mid-append; corruption means the checksum or structure is wrong in
// bytes that claim to be complete.
var (
	ErrTorn    = errors.New("store: torn journal record (partial tail)")
	ErrCorrupt = errors.New("store: corrupt journal record")
)

// Record is one decoded journal entry, with constants as names.
type Record struct {
	Seq   uint64
	Kind  core.UpdateKind
	Tuple []string
	With  []string
}

// Op rebuilds the update operation, interning constants in syms.
func (r Record) Op(syms *value.Symbols) core.UpdateOp {
	mk := func(names []string) relation.Tuple {
		t := make(relation.Tuple, len(names))
		for i, n := range names {
			t[i] = syms.Const(n)
		}
		return t
	}
	op := core.UpdateOp{Kind: r.Kind, Tuple: mk(r.Tuple)}
	if r.Kind == core.UpdateReplace {
		op.With = mk(r.With)
	}
	return op
}

func appendTuple(dst []byte, names []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
	}
	return dst
}

// tupleNames renders a tuple's constants by name. Labeled nulls never
// appear in update operations; encoding one is a caller bug.
func tupleNames(t relation.Tuple, syms *value.Symbols) ([]string, error) {
	out := make([]string, len(t))
	for i, v := range t {
		if !v.IsConst() {
			return nil, fmt.Errorf("store: cannot journal labeled null in %v", t)
		}
		out[i] = syms.Name(v)
	}
	return out, nil
}

// EncodeRecord frames one journal record (header + checksummed
// payload). with must be nil unless kind is UpdateReplace.
func EncodeRecord(seq uint64, kind core.UpdateKind, tuple, with []string) []byte {
	payload := binary.AppendUvarint(nil, seq)
	payload = append(payload, byte(kind))
	payload = appendTuple(payload, tuple)
	if kind == core.UpdateReplace {
		payload = appendTuple(payload, with)
	}
	rec := make([]byte, recordHeaderLen, recordHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, castagnoli))
	return append(rec, payload...)
}

// EncodeOp frames an update operation as a journal record.
func EncodeOp(seq uint64, op core.UpdateOp, syms *value.Symbols) ([]byte, error) {
	tuple, err := tupleNames(op.Tuple, syms)
	if err != nil {
		return nil, err
	}
	var with []string
	if op.Kind == core.UpdateReplace {
		if with, err = tupleNames(op.With, syms); err != nil {
			return nil, err
		}
	}
	switch op.Kind {
	case core.UpdateInsert, core.UpdateDelete, core.UpdateReplace:
	default:
		return nil, fmt.Errorf("store: cannot journal unknown update kind %v", op.Kind)
	}
	return EncodeRecord(seq, op.Kind, tuple, with), nil
}

type byteReader struct {
	data []byte
	off  int
}

func (r *byteReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

func (r *byteReader) tuple() ([]string, bool) {
	w, ok := r.uvarint()
	if !ok || w > uint64(len(r.data)-r.off) {
		return nil, false
	}
	out := make([]string, w)
	for i := range out {
		n, ok := r.uvarint()
		if !ok || n > uint64(len(r.data)-r.off) {
			return nil, false
		}
		out[i] = string(r.data[r.off : r.off+int(n)])
		r.off += int(n)
	}
	return out, true
}

// DecodeRecord parses one record from the front of data, returning the
// record and the bytes consumed. A prefix of a record (data ends before
// the declared payload does) yields ErrTorn; a complete-looking record
// whose checksum or structure is wrong yields ErrCorrupt. Arbitrary
// input never panics (fuzzed by FuzzJournal).
func DecodeRecord(data []byte) (Record, int, error) {
	if len(data) < recordHeaderLen {
		return Record{}, 0, ErrTorn
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if plen > maxPayload {
		return Record{}, 0, ErrCorrupt
	}
	if uint64(len(data)-recordHeaderLen) < uint64(plen) {
		return Record{}, 0, ErrTorn
	}
	payload := data[recordHeaderLen : recordHeaderLen+int(plen)]
	if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return Record{}, 0, ErrCorrupt
	}
	r := byteReader{data: payload}
	var rec Record
	var ok bool
	if rec.Seq, ok = r.uvarint(); !ok {
		return Record{}, 0, ErrCorrupt
	}
	if r.off >= len(payload) {
		return Record{}, 0, ErrCorrupt
	}
	rec.Kind = core.UpdateKind(payload[r.off])
	r.off++
	switch rec.Kind {
	case core.UpdateInsert, core.UpdateDelete, core.UpdateReplace:
	default:
		return Record{}, 0, ErrCorrupt
	}
	if rec.Tuple, ok = r.tuple(); !ok {
		return Record{}, 0, ErrCorrupt
	}
	if rec.Kind == core.UpdateReplace {
		if rec.With, ok = r.tuple(); !ok {
			return Record{}, 0, ErrCorrupt
		}
	}
	if r.off != len(payload) {
		return Record{}, 0, ErrCorrupt
	}
	return rec, recordHeaderLen + int(plen), nil
}

// JournalScan is the result of decoding a journal image: the good
// record prefix, where it ends, and what (if anything) cut it short.
type JournalScan struct {
	Records []Record
	// GoodBytes is the offset just past the last intact record; recovery
	// truncates the journal here.
	GoodBytes int64
	// Torn reports a partial record tail (the normal residue of a crash
	// mid-append); Corrupt reports a checksum or structure failure.
	Torn    bool
	Corrupt bool
}

// ScanJournal decodes records from the front of a journal image until
// the bytes run out or stop checking out. It never fails: damage is
// reported in the scan, and everything before it is preserved.
func ScanJournal(data []byte) JournalScan {
	var s JournalScan
	for int(s.GoodBytes) < len(data) {
		rec, n, err := DecodeRecord(data[s.GoodBytes:])
		if err != nil {
			s.Torn = errors.Is(err, ErrTorn)
			s.Corrupt = errors.Is(err, ErrCorrupt)
			break
		}
		s.Records = append(s.Records, rec)
		s.GoodBytes += int64(n)
	}
	return s
}

// Journal is an append-only record writer. Each Append frames the op,
// writes it in a single Write call, and fsyncs before returning: when
// Append returns nil the record is durable.
type Journal struct {
	f File
}

func createJournal(fsys FS, name string) (*Journal, error) {
	f, err := fsys.Create(name)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

func openJournalAppend(fsys FS, name string) (*Journal, error) {
	f, err := fsys.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &Journal{f: f}, nil
}

// Append makes op durable as record seq.
func (j *Journal) Append(seq uint64, op core.UpdateOp, syms *value.Symbols) error {
	rec, err := EncodeOp(seq, op, syms)
	if err != nil {
		return err
	}
	return j.appendEncoded(rec, 1)
}

// appendEncoded makes a buffer of pre-framed records durable in one
// Write and one Sync — the group-commit primitive. A per-op Append is a
// batch of one.
func (j *Journal) appendEncoded(buf []byte, records int) error {
	m := smetrics.Load()
	var t0 int64
	if m != nil {
		t0 = obs.NowNS()
	}
	n, err := j.f.Write(buf)
	if err != nil {
		return fmt.Errorf("store: journal write (%d/%d bytes): %w", n, len(buf), err)
	}
	if n < len(buf) {
		return fmt.Errorf("store: short journal write (%d/%d bytes)", n, len(buf))
	}
	var tSync int64
	if m != nil {
		tSync = obs.NowNS()
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("store: journal sync: %w", err)
	}
	if m != nil {
		now := obs.NowNS()
		m.fsyncNs.ObserveDuration(now - tSync)
		m.appendNs.ObserveDuration(now - t0)
		m.journalRecords.Add(int64(records))
		m.journalBytes.Add(int64(len(buf)))
		m.journalBatches.Inc()
		m.batchRecords.Observe(float64(records))
	}
	return nil
}

// Sync fsyncs the journal file without appending. Recovery uses it to
// make replayed-but-possibly-unsynced records durable before any new op
// is acknowledged on top of them.
func (j *Journal) Sync() error { return j.f.Sync() }

// Close releases the underlying file.
func (j *Journal) Close() error { return j.f.Close() }
