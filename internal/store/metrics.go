package store

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// storeMetrics holds the resolved metric handles for the durable store:
// journal append/fsync latencies and volumes, snapshot checkpoint cost,
// and recovery work.
type storeMetrics struct {
	// Journal. appendNs times the full Append (encode + write + fsync);
	// fsyncNs isolates the Sync call, the dominant cost on real disks.
	journalRecords *obs.Counter
	journalBytes   *obs.Counter
	appendNs       *obs.Histogram
	fsyncNs        *obs.Histogram
	// Group commit: one batch = one write + one fsync; batchRecords is
	// the records-per-fsync distribution (1 for per-op appends).
	journalBatches *obs.Counter
	batchRecords   *obs.Histogram

	// Snapshots.
	snapshots  *obs.Counter
	snapshotNs *obs.Histogram

	// Recovery.
	recoveries     *obs.Counter
	replayed       *obs.Counter
	truncatedBytes *obs.Counter
	recoverNs      *obs.Histogram
}

var smetrics atomic.Pointer[storeMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for the
// durable store's journal, snapshot, and recovery paths.
func SetMetrics(s obs.Sink) {
	if s == nil {
		smetrics.Store(nil)
		return
	}
	smetrics.Store(&storeMetrics{
		journalRecords: s.Counter("store_journal_records_total"),
		journalBytes:   s.Counter("store_journal_bytes_total"),
		appendNs:       s.Histogram("store_journal_append_ns"),
		fsyncNs:        s.Histogram("store_journal_fsync_ns"),
		journalBatches: s.Counter("store_journal_batches_total"),
		batchRecords:   s.Histogram("store_journal_batch_records"),
		snapshots:      s.Counter("store_snapshot_total"),
		snapshotNs:     s.Histogram("store_snapshot_write_ns"),
		recoveries:     s.Counter("store_recover_total"),
		replayed:       s.Counter("store_recover_replayed_total"),
		truncatedBytes: s.Counter("store_recover_truncated_bytes_total"),
		recoverNs:      s.Histogram("store_recover_ns"),
	})
}
