package store

import (
	"context"
	"errors"

	"github.com/constcomp/constcomp/internal/core"
)

// Error taxonomy for the serve ↔ store boundary. Every error that
// crosses it is either *transient* — the operation (or the session) can
// be retried and may succeed: an injected or real I/O fault, a torn
// write detected before acknowledgement, a budget trip, a cancelled
// context — or *permanent* — retrying is pointless or unsound: an
// untranslatable update, a complement violation, acknowledged-data
// loss. The serving pipeline's self-healing layer keys every recovery
// decision (retry with backoff, resurrect the session, or reject the
// op and move on) off this classification, so an unclassifiable error
// is treated as permanent: never retry what you cannot name.
//
// The errclass constvet analyzer enforces the taxonomy's completeness:
// every error sentinel declared in this package (and internal/serve)
// must appear in the package's classOf table, and error wraps in these
// packages must preserve the chain with %w — a %v wrap would strip the
// classification exactly where it matters.

// Class is the retry classification of a boundary error.
type Class uint8

const (
	// ClassUnknown marks an error the taxonomy cannot name. Callers
	// must treat it as permanent.
	ClassUnknown Class = iota
	// ClassTransient errors may succeed on retry (after the session
	// heals, the budget refills, or the queue drains).
	ClassTransient
	// ClassPermanent errors will fail identically on retry; reject the
	// op and keep the rest of the batch.
	ClassPermanent
)

func (c Class) String() string {
	switch c {
	case ClassTransient:
		return "transient"
	case ClassPermanent:
		return "permanent"
	}
	return "unknown"
}

// classified is an error explicitly tagged with its Class by Transient
// or Permanent. It preserves the wrapped chain.
type classified struct {
	class Class
	err   error
}

func (c *classified) Error() string { return c.err.Error() }
func (c *classified) Unwrap() error { return c.err }

// Transient tags err as transient for Classify, preserving its chain.
// A nil err stays nil.
func Transient(err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: ClassTransient, err: err}
}

// Permanent tags err as permanent for Classify, preserving its chain.
// A nil err stays nil.
func Permanent(err error) error {
	if err == nil {
		return nil
	}
	return &classified{class: ClassPermanent, err: err}
}

// Classify resolves the retry class of an error crossing the serve ↔
// store boundary: an explicit Transient/Permanent tag wins, then the
// sentinel taxonomy in classOf. Unrecognized errors are ClassUnknown,
// which callers must treat as permanent.
func Classify(err error) Class {
	if err == nil {
		return ClassUnknown
	}
	var c *classified
	if errors.As(err, &c) {
		return c.class
	}
	return classOf(err)
}

// Retryable reports whether err is worth retrying: only a provably
// transient classification qualifies.
func Retryable(err error) bool { return Classify(err) == ClassTransient }

// classOf is the sentinel taxonomy table for this package's boundary
// errors (the errclass analyzer checks every sentinel declared here is
// covered). Permanent causes are tested before ErrSessionBroken so a
// broken-session wrap around a permanent cause keeps its permanence;
// a broken session with a transient (or unknown I/O) cause is itself
// transient — quarantine, recover, and resume is expected to succeed.
func classOf(err error) Class {
	switch {
	case errors.Is(err, ErrDataLoss):
		return ClassPermanent
	case errors.Is(err, ErrNoSnapshot):
		return ClassPermanent
	case errors.Is(err, ErrCorrupt):
		return ClassPermanent
	case errors.Is(err, ErrInvariant):
		return ClassPermanent
	case errors.Is(err, core.ErrRejected):
		return ClassPermanent
	case errors.Is(err, ErrInjected):
		return ClassTransient
	case errors.Is(err, ErrTorn):
		return ClassTransient
	case errors.Is(err, core.ErrBudgetExceeded):
		return ClassTransient
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return ClassTransient
	case errors.Is(err, ErrSessionBroken):
		return ClassTransient
	}
	return ClassUnknown
}
