package store

import (
	"reflect"
	"testing"

	"github.com/constcomp/constcomp/internal/core"
)

// FuzzJournal throws arbitrary bytes at the journal record decoder: it
// must never panic, never claim more good bytes than exist, and every
// record it does accept must survive an encode/decode round trip.
func FuzzJournal(f *testing.F) {
	r1 := EncodeRecord(1, core.UpdateInsert, []string{"emp", "dept"}, nil)
	r2 := EncodeRecord(2, core.UpdateDelete, []string{"emp", "dept"}, nil)
	r3 := EncodeRecord(3, core.UpdateReplace, []string{"e", "d0"}, []string{"e", "d1"})
	f.Add(r1)
	f.Add(append(append(append([]byte(nil), r1...), r2...), r3...))
	f.Add(append(append([]byte(nil), r1...), r2[:7]...)) // torn tail
	flip := append(append([]byte(nil), r1...), r2...)
	flip[len(r1)+recordHeaderLen] ^= 0xff // corrupt second payload
	f.Add(flip)
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // absurd declared length
	f.Add(EncodeRecord(0, core.UpdateInsert, nil, nil))

	// Batch-encoded images: group commit concatenates ordinary record
	// frames into one write, exactly as applyBatch does. Seed a whole
	// batch, a batch truncated at a record boundary, and a batch torn
	// mid-record so the fuzzer explores the shapes a crashed group
	// commit leaves behind.
	var batch []byte
	var bounds []int // prefix length after each whole record
	for seq := uint64(1); seq <= 8; seq++ {
		kind := core.UpdateInsert
		if seq%3 == 0 {
			kind = core.UpdateDelete
		}
		rec := EncodeRecord(seq, kind, []string{"w", "dept"}, nil)
		batch = append(batch, rec...)
		bounds = append(bounds, len(batch))
	}
	f.Add(append([]byte(nil), batch...))
	f.Add(append([]byte(nil), batch[:bounds[4]]...))   // torn at a boundary
	f.Add(append([]byte(nil), batch[:bounds[4]+5]...)) // torn inside a record
	mid := append([]byte(nil), batch...)
	mid[bounds[2]+recordHeaderLen] ^= 0x01 // corrupt a mid-batch payload
	f.Add(mid)

	f.Fuzz(func(t *testing.T, data []byte) {
		scan := ScanJournal(data)
		if scan.GoodBytes > int64(len(data)) {
			t.Fatalf("GoodBytes %d beyond %d input bytes", scan.GoodBytes, len(data))
		}
		if scan.Torn && scan.Corrupt {
			t.Fatal("tail flagged both torn and corrupt")
		}
		if int(scan.GoodBytes) < len(data) && !scan.Torn && !scan.Corrupt {
			t.Fatal("scan stopped early without a reason")
		}
		for _, rec := range scan.Records {
			enc := EncodeRecord(rec.Seq, rec.Kind, rec.Tuple, rec.With)
			back, n, err := DecodeRecord(enc)
			if err != nil || n != len(enc) {
				t.Fatalf("re-encoded record failed to decode: n=%d err=%v", n, err)
			}
			if !reflect.DeepEqual(back, rec) {
				t.Fatalf("round trip changed record: %+v -> %+v", rec, back)
			}
		}
	})
}
