package bs

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// Toy instantiation: states are pairs (a, b) encoded as "a,b"; the view
// exposes a, the complement exposes b.

func toySpace() (*Space[string], View[string, string], View[string, string]) {
	var states []string
	for _, a := range []string{"0", "1", "2"} {
		for _, b := range []string{"x", "y"} {
			states = append(states, a+","+b)
		}
	}
	sp := NewSpace(states...)
	v := View[string, string](func(s string) string { return strings.Split(s, ",")[0] })
	w := View[string, string](func(s string) string { return strings.Split(s, ",")[1] })
	return sp, v, w
}

func TestSpaceDedup(t *testing.T) {
	sp := NewSpace("a", "b", "a")
	if sp.Len() != 2 {
		t.Errorf("Len = %d", sp.Len())
	}
}

func TestComplementaryToy(t *testing.T) {
	sp, v, w := toySpace()
	if !Complementary(sp, v, w) {
		t.Error("projections of a product space should be complementary")
	}
	// v is not a complement of itself (information loss).
	if Complementary(sp, v, v) {
		t.Error("lossy pair reported complementary")
	}
	// Identity is a complement of anything.
	id := View[string, string](func(s string) string { return s })
	if !Complementary(sp, v, id) {
		t.Error("identity complement rejected")
	}
}

func TestTranslatorBasics(t *testing.T) {
	sp, v, w := toySpace()
	tr, err := NewTranslator(sp, v, w)
	if err != nil {
		t.Fatal(err)
	}
	// Update: a := a+1 mod 3 (a permutation of the view space).
	inc := Update[string](func(a string) string {
		switch a {
		case "0":
			return "1"
		case "1":
			return "2"
		default:
			return "0"
		}
	})
	if !tr.Translatable(inc) {
		t.Fatal("permutation update should be translatable")
	}
	out, ok := tr.Translate(inc, "0,x")
	if !ok || out != "1,x" {
		t.Errorf("Translate = %q, %v", out, ok)
	}
	if _, err := tr.CheckConsistent(inc); err != nil {
		t.Errorf("consistency: %v", err)
	}
	if _, err := tr.CheckAcceptable(inc); err != nil {
		t.Errorf("acceptability: %v", err)
	}
}

func TestTranslatorUntranslatable(t *testing.T) {
	// Restrict the space so some (view, complement) pair is missing:
	// updates mapping into the hole are untranslatable.
	sp := NewSpace("0,x", "1,x", "1,y")
	v := View[string, string](func(s string) string { return strings.Split(s, ",")[0] })
	w := View[string, string](func(s string) string { return strings.Split(s, ",")[1] })
	tr, err := NewTranslator(sp, v, w)
	if err != nil {
		t.Fatal(err)
	}
	toZero := Update[string](func(string) string { return "0" })
	// At state "1,y" we need (0, y) which does not exist.
	if tr.Translatable(toZero) {
		t.Error("update into a hole reported translatable")
	}
	if _, ok := tr.Translate(toZero, "1,y"); ok {
		t.Error("Translate succeeded into a hole")
	}
	if _, err := tr.DBUpdate(toZero); err == nil {
		t.Error("DBUpdate built for untranslatable update")
	}
}

func TestNewTranslatorRejectsNonComplement(t *testing.T) {
	sp, v, _ := toySpace()
	if _, err := NewTranslator(sp, v, v); err == nil {
		t.Error("non-complement accepted")
	}
}

func TestMorphismToy(t *testing.T) {
	sp, v, w := toySpace()
	tr, _ := NewTranslator(sp, v, w)
	inc := Update[string](func(a string) string {
		switch a {
		case "0":
			return "1"
		case "1":
			return "2"
		default:
			return "0"
		}
	})
	dec := Update[string](func(a string) string {
		switch a {
		case "0":
			return "2"
		case "1":
			return "0"
		default:
			return "1"
		}
	})
	if err := tr.CheckMorphism(inc, dec); err != nil {
		t.Errorf("morphism: %v", err)
	}
	if err := tr.CheckMorphism(inc, inc); err != nil {
		t.Errorf("morphism: %v", err)
	}
}

func TestReasonable(t *testing.T) {
	sp, v, _ := toySpace()
	inc := Update[string](func(a string) string {
		switch a {
		case "0":
			return "1"
		case "1":
			return "2"
		default:
			return "0"
		}
	})
	dec := Update[string](func(a string) string {
		switch a {
		case "0":
			return "2"
		case "1":
			return "0"
		default:
			return "1"
		}
	})
	id := Update[string](func(a string) string { return a })
	if !Reasonable(sp, v, []Update[string]{id, inc, dec}) {
		t.Error("cyclic group of updates should be reasonable")
	}
	// Without the inverse, composition closure fails (inc∘inc = dec not
	// in the set).
	if Reasonable(sp, v, []Update[string]{id, inc}) {
		t.Error("non-closed set reported reasonable")
	}
}

// Relational instantiation: the EDM schema with states = legal instances
// over a small domain, serialized canonically.

func relationalSpace(t *testing.T) (*Space[string], View[string, string], View[string, string], map[string]*relation.Relation, *value.Symbols, *core.Schema) {
	t.Helper()
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	syms := value.NewSymbols()
	emps := []value.Value{syms.Const("ed"), syms.Const("flo")}
	depts := []value.Value{syms.Const("toys"), syms.Const("tools")}
	mgrs := []value.Value{syms.Const("mo"), syms.Const("tim")}

	serialize := func(r *relation.Relation) string {
		rows := make([]string, 0, r.Len())
		for _, tp := range r.Tuples() {
			rows = append(rows, fmt.Sprintf("%v", tp))
		}
		sort.Strings(rows)
		return strings.Join(rows, ";")
	}

	// Enumerate all legal instances with ≤ 2 employees.
	byKey := map[string]*relation.Relation{}
	var keys []string
	var tuples []relation.Tuple
	for _, e := range emps {
		for _, d := range depts {
			for _, m := range mgrs {
				tuples = append(tuples, relation.Tuple{e, d, m})
			}
		}
	}
	addState := func(r *relation.Relation) {
		if ok, _ := s.Legal(r); !ok {
			return
		}
		k := serialize(r)
		if _, dup := byKey[k]; !dup {
			byKey[k] = r
			keys = append(keys, k)
		}
	}
	empty := relation.New(u.All())
	addState(empty)
	for i := range tuples {
		r := relation.New(u.All())
		r.Insert(tuples[i].Clone())
		addState(r)
		for j := i + 1; j < len(tuples); j++ {
			r2 := relation.New(u.All())
			r2.Insert(tuples[i].Clone())
			r2.Insert(tuples[j].Clone())
			addState(r2)
			for l := j + 1; l < len(tuples); l++ {
				r3 := relation.New(u.All())
				r3.Insert(tuples[i].Clone())
				r3.Insert(tuples[j].Clone())
				r3.Insert(tuples[l].Clone())
				addState(r3)
			}
		}
	}
	sp := NewSpace(keys...)
	x, y := u.MustSet("E", "D"), u.MustSet("D", "M")
	vx := View[string, string](func(k string) string { return serialize(byKey[k].Project(x)) })
	vy := View[string, string](func(k string) string { return serialize(byKey[k].Project(y)) })
	return sp, vx, vy, byKey, syms, s
}

// serializeRel matches relationalSpace's canonical serialization.
func serializeRel(r *relation.Relation) string {
	rows := make([]string, 0, r.Len())
	for _, tp := range r.Tuples() {
		rows = append(rows, fmt.Sprintf("%v", tp))
	}
	sort.Strings(rows)
	return strings.Join(rows, ";")
}

func TestRelationalComplementMatchesCore(t *testing.T) {
	// E16: the abstract BS complementarity of (π_ED, π_DM) over
	// enumerated legal EDM states agrees with core.Complementary.
	sp, vx, vy, _, _, _ := relationalSpace(t)
	if !Complementary(sp, vx, vy) {
		t.Error("ED/DM not complementary in the abstract framework")
	}
}

func TestRelationalTranslationMatchesCore(t *testing.T) {
	// E16: translating a view insertion abstractly (constant-complement
	// state lookup) agrees with core's relational translation
	// T_u[R] = R ∪ t*π_Y(R) on every state where the result stays inside
	// the enumerated space.
	sp, vx, vy, byKey, syms, s := relationalSpace(t)
	tr, err := NewTranslator(sp, vx, vy)
	if err != nil {
		t.Fatal(err)
	}
	u := s.Universe()
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	x := pair.ViewAttrs()

	// Abstract update: insert (ed, toys) into the ED view, expressed
	// extensionally over the reachable view states.
	ed, toys := syms.Const("ed"), syms.Const("toys")
	tup := relation.Tuple{ed, toys}
	uv := map[string]string{}
	for _, k := range sp.States() {
		r := byKey[k]
		v := r.Project(x)
		updated := v.Clone()
		updated.Insert(tup.Clone())
		uv[serializeRel(v)] = serializeRel(updated)
	}
	abstract := Update[string](func(vs string) string {
		if out, ok := uv[vs]; ok {
			return out
		}
		return vs
	})

	agreements, boundary := 0, 0
	for _, k := range sp.States() {
		r := byKey[k]
		if r.Len() >= 3 {
			boundary++ // insertion result may leave the enumerated space
			continue
		}
		out, abstractOK := tr.Translate(abstract, k)
		relOut, relErr := pair.ApplyInsert(r, tup)
		relOK := relErr == nil
		if abstractOK != relOK {
			t.Fatalf("state %q: abstract ok=%v, relational ok=%v (%v)", k, abstractOK, relOK, relErr)
		}
		if abstractOK && out != serializeRel(relOut) {
			t.Fatalf("state %q: abstract %q vs relational %q", k, out, serializeRel(relOut))
		}
		agreements++
	}
	if agreements < 10 {
		t.Fatalf("only %d states compared (boundary %d)", agreements, boundary)
	}
}
