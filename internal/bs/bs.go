// Package bs implements the data-model-independent view-update framework
// of Bancilhon & Spyratos ("Update semantics of relational views", TODS
// 1981) that Cosmadakis–Papadimitriou instantiate for the relational
// model: database states, views as state mappings, view complements, and
// translation of view updates under a constant complement, together with
// checkers for the framework's soundness facts
//
//	(i)  the translation T_u is consistent (v∘T_u = u∘v) and acceptable
//	     (u fixes the view ⇒ T_u fixes the database), and
//	(ii) on a reasonable update set, u ↦ T_u is a morphism
//	     (T_{u∘w} = T_u ∘ T_w).
//
// States are indexed by comparable keys so the package works for any
// finite state space — the tests instantiate it both with toy state
// machines and with relational databases from internal/core.
package bs

import (
	"errors"
	"fmt"
)

// View maps database states to view states. Both are identified by
// comparable keys (e.g. a canonical serialization).
type View[S, V comparable] func(S) V

// Update maps view states to view states.
type Update[V comparable] func(V) V

// DBUpdate maps database states to database states.
type DBUpdate[S comparable] func(S) S

// Space enumerates a finite set of database states. The framework's
// definitions quantify over all states; a Space makes that executable.
type Space[S comparable] struct {
	states []S
}

// NewSpace builds a state space from the given states (deduplicated).
func NewSpace[S comparable](states ...S) *Space[S] {
	seen := make(map[S]bool, len(states))
	var out []S
	for _, s := range states {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return &Space[S]{states: out}
}

// States returns the states in insertion order.
func (sp *Space[S]) States() []S { return sp.states }

// Len reports the number of states.
func (sp *Space[S]) Len() int { return len(sp.states) }

// Complementary reports whether views v and w are complements of each
// other over the space: s ↦ (v(s), w(s)) is injective.
func Complementary[S, V, W comparable](sp *Space[S], v View[S, V], w View[S, W]) bool {
	type pair struct {
		a V
		b W
	}
	seen := make(map[pair]S, sp.Len())
	for _, s := range sp.states {
		p := pair{v(s), w(s)}
		if prev, dup := seen[p]; dup && prev != s {
			return false
		}
		seen[p] = s
	}
	return true
}

// Translator translates view updates into database updates under a
// constant complement.
type Translator[S, V, W comparable] struct {
	space *Space[S]
	v     View[S, V]
	w     View[S, W]
	// index maps (view state, complement state) back to the database
	// state — well defined because v × w is injective.
	index map[[2]any]S
}

// NewTranslator builds a translator for view v under constant complement
// w. It errors if w is not a complement of v over the space.
func NewTranslator[S, V, W comparable](sp *Space[S], v View[S, V], w View[S, W]) (*Translator[S, V, W], error) {
	if !Complementary(sp, v, w) {
		return nil, errors.New("bs: w is not a complement of v")
	}
	t := &Translator[S, V, W]{space: sp, v: v, w: w, index: make(map[[2]any]S, sp.Len())}
	for _, s := range sp.states {
		t.index[[2]any{v(s), w(s)}] = s
	}
	return t, nil
}

// Translate computes T_u(s): the unique state s' with v(s') = u(v(s)) and
// w(s') = w(s). It reports ok=false when no such state exists (u is not
// w-translatable at s).
func (t *Translator[S, V, W]) Translate(u Update[V], s S) (S, bool) {
	target := [2]any{u(t.v(s)), t.w(s)}
	out, ok := t.index[target]
	return out, ok
}

// Translatable reports whether u is w-translatable: T_u(s) exists for
// every state s.
func (t *Translator[S, V, W]) Translatable(u Update[V]) bool {
	for _, s := range t.space.states {
		if _, ok := t.Translate(u, s); !ok {
			return false
		}
	}
	return true
}

// DBUpdate materializes T_u as a total database update; it errors if u is
// not translatable.
func (t *Translator[S, V, W]) DBUpdate(u Update[V]) (DBUpdate[S], error) {
	if !t.Translatable(u) {
		return nil, errors.New("bs: update not translatable under the constant complement")
	}
	return func(s S) S {
		out, _ := t.Translate(u, s)
		return out
	}, nil
}

// CheckConsistent verifies fact (i), first half: v(T_u(s)) = u(v(s)) for
// all s. Returns the first violating state.
func (t *Translator[S, V, W]) CheckConsistent(u Update[V]) (S, error) {
	var zero S
	for _, s := range t.space.states {
		out, ok := t.Translate(u, s)
		if !ok {
			return s, fmt.Errorf("bs: not translatable at state %v", s)
		}
		if t.v(out) != u(t.v(s)) {
			return s, fmt.Errorf("bs: inconsistent at state %v", s)
		}
	}
	return zero, nil
}

// CheckAcceptable verifies fact (i), second half: if u(v(s)) = v(s) then
// T_u(s) = s.
func (t *Translator[S, V, W]) CheckAcceptable(u Update[V]) (S, error) {
	var zero S
	for _, s := range t.space.states {
		if u(t.v(s)) != t.v(s) {
			continue
		}
		out, ok := t.Translate(u, s)
		if !ok {
			return s, fmt.Errorf("bs: not translatable at state %v", s)
		}
		if out != s {
			return s, fmt.Errorf("bs: unacceptable at state %v", s)
		}
	}
	return zero, nil
}

// CheckMorphism verifies fact (ii): T_{u∘w} = T_u ∘ T_w for the given
// updates (all of which must be translatable).
func (t *Translator[S, V, W]) CheckMorphism(u1, u2 Update[V]) error {
	comp := func(v V) V { return u1(u2(v)) }
	for _, s := range t.space.states {
		viaComp, ok1 := t.Translate(comp, s)
		mid, ok2 := t.Translate(u2, s)
		if !ok2 {
			return fmt.Errorf("bs: inner update not translatable at %v", s)
		}
		viaSteps, ok3 := t.Translate(u1, mid)
		if !ok1 || !ok3 {
			return fmt.Errorf("bs: composite not translatable at %v", s)
		}
		if viaComp != viaSteps {
			return fmt.Errorf("bs: morphism violated at %v: %v vs %v", s, viaComp, viaSteps)
		}
	}
	return nil
}

// Reasonable reports whether a set of updates is "reasonable": closed
// under composition (up to extensional equality over the reachable view
// states) and able to cancel the effect of every update on every state's
// view. This mirrors the paper's definition; it is checked extensionally
// over the space.
func Reasonable[S, V comparable](sp *Space[S], v View[S, V], updates []Update[V]) bool {
	// Collect reachable view states.
	var views []V
	seen := map[V]bool{}
	for _, s := range sp.states {
		val := v(s)
		if !seen[val] {
			seen[val] = true
			views = append(views, val)
		}
	}
	eq := func(a, b Update[V]) bool {
		for _, x := range views {
			if a(x) != b(x) {
				return false
			}
		}
		return true
	}
	// Closure under composition.
	for _, u1 := range updates {
		for _, u2 := range updates {
			comp := func(x V) V { return u1(u2(x)) }
			found := false
			for _, u := range updates {
				if eq(u, Update[V](comp)) {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
	}
	// Cancellation: for every state s and update u, some w restores the
	// view: w(u(v(s))) = v(s).
	for _, s := range sp.states {
		for _, u := range updates {
			ok := false
			for _, w := range updates {
				if w(u(v(s))) == v(s) {
					ok = true
					break
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}
