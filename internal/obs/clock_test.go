package obs

import "testing"

// TestNowNSMonotonic: consecutive readings never go backwards and
// SinceNS is their difference.
func TestNowNSMonotonic(t *testing.T) {
	a := NowNS()
	b := NowNS()
	if b < a {
		t.Errorf("NowNS went backwards: %d then %d", a, b)
	}
	if d := SinceNS(a); d < 0 {
		t.Errorf("SinceNS(%d) = %d, want >= 0", a, d)
	}
}

// TestSystemClock: the real clock advances across a Sleep and stays on
// the NowNS scale.
func TestSystemClock(t *testing.T) {
	c := SystemClock()
	start := c.NowNS()
	c.Sleep(int64(1000)) // 1µs: enough to observe, cheap enough for CI
	if got := c.NowNS(); got < start {
		t.Errorf("system clock went backwards: %d then %d", start, got)
	}
}

// TestManualClock: virtual time starts at zero, advances only through
// Sleep and Advance, and logs every Sleep in order.
func TestManualClock(t *testing.T) {
	c := NewManualClock()
	if got := c.NowNS(); got != 0 {
		t.Fatalf("fresh manual clock reads %d, want 0", got)
	}
	c.Sleep(5)
	c.Advance(10)
	c.Sleep(7)
	if got := c.NowNS(); got != 22 {
		t.Errorf("NowNS = %d, want 22 (5 + 10 + 7)", got)
	}
	log := c.SleepLog()
	if len(log) != 2 || log[0] != 5 || log[1] != 7 {
		t.Errorf("SleepLog = %v, want [5 7] (Advance is not a sleep)", log)
	}
	// The log is a copy: mutating it does not corrupt the clock.
	log[0] = 99
	if got := c.SleepLog(); got[0] != 5 {
		t.Errorf("SleepLog returned a live reference; second read = %v", got)
	}
}

// TestManualClockNilSafe: a nil manual clock reads zero and ignores
// writes, per the package's nil-safe handle contract.
func TestManualClockNilSafe(t *testing.T) {
	var c *ManualClock
	c.Sleep(5)
	c.Advance(5)
	if got := c.NowNS(); got != 0 {
		t.Errorf("nil clock NowNS = %d, want 0", got)
	}
	if got := c.SleepLog(); got != nil {
		t.Errorf("nil clock SleepLog = %v, want nil", got)
	}
}
