package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestNilHandlesNoOp exercises every instrument through nil handles:
// nothing may panic and nothing may be recorded. This is the contract
// instrumented packages rely on when metrics are disabled.
func TestNilHandlesNoOp(t *testing.T) {
	var c *Counter
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	var h *Histogram
	h.Observe(1.5)
	h.ObserveDuration(100)
	if h.Count() != 0 || h.Sum() != 0 || h.Min() != 0 || h.Max() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil histogram recorded something")
	}
	var tr *Tracer
	sp := tr.Start("root")
	if sp != nil {
		t.Fatal("nil tracer returned a span")
	}
	sp.Child("kid").End()
	sp.End()
	if tr.Records() != nil {
		t.Fatal("nil tracer has records")
	}
	if err := tr.WriteTree(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}

	var reg *Registry
	if reg.Counter("x") != nil || reg.Histogram("x") != nil {
		t.Fatal("nil registry handed out live handles")
	}
	if got := reg.Snapshot(); len(got.Counters) != 0 || len(got.Histograms) != 0 {
		t.Fatal("nil registry snapshot not empty")
	}
	if err := reg.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
}

// TestNilSinkInterface checks the pattern instrumented packages use: a
// nil Sink interface value means "hand out nil handles".
func TestNilSinkInterface(t *testing.T) {
	var s Sink
	if s != nil {
		t.Fatal("zero Sink not nil")
	}
	// A typed-nil *Registry behind the interface must still be safe.
	s = (*Registry)(nil)
	if s.Counter("a") != nil || s.Histogram("b") != nil {
		t.Fatal("typed-nil registry handed out live handles")
	}
}

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits")
	const workers, per = 8, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
	// Same name must resolve to the same counter.
	if reg.Counter("hits") != c {
		t.Fatal("registry returned a different counter for the same name")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := &Histogram{}
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(float64(w*per + i))
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	if h.Min() != 0 {
		t.Fatalf("min = %g, want 0", h.Min())
	}
	if want := float64(workers*per - 1); h.Max() != want {
		t.Fatalf("max = %g, want %g", h.Max(), want)
	}
	wantSum := float64(workers*per) * float64(workers*per-1) / 2
	if math.Abs(h.Sum()-wantSum) > 1e-6*wantSum {
		t.Fatalf("sum = %g, want %g", h.Sum(), wantSum)
	}
}

// TestHistogramQuantileOracle drives the bucketed quantile estimate
// against the exact sorted-slice order statistic: every estimate must
// be within the bucket resolution (a relative factor of 2^(1/4)) of
// the truth.
func TestHistogramQuantileOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		h := &Histogram{}
		n := 100 + rng.Intn(5000)
		vals := make([]float64, n)
		for i := range vals {
			// Log-uniform over ~9 decades, the shape of latency data.
			vals[i] = math.Exp(rng.Float64() * 20)
			h.Observe(vals[i])
		}
		sort.Float64s(vals)
		gamma := math.Exp2(1.0 / histSubBuckets)
		for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 1} {
			rank := int(math.Ceil(q * float64(n)))
			if rank < 1 {
				rank = 1
			}
			oracle := vals[rank-1]
			got := h.Quantile(q)
			lo, hi := oracle/gamma, oracle*gamma
			// Clamping to observed min/max can only tighten the bound.
			if got < lo-1e-9 || got > hi+1e-9 {
				t.Fatalf("trial %d: q=%g estimate %g outside [%g, %g] (oracle %g)",
					trial, q, got, lo, hi, oracle)
			}
		}
	}
}

func TestHistogramSmallAndEdge(t *testing.T) {
	h := &Histogram{}
	if h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram quantile != 0")
	}
	h.Observe(-5) // clamped to 0
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("negative observation not clamped: min=%g max=%g", h.Min(), h.Max())
	}
	h.Observe(7)
	if got := h.Quantile(1); got != 7 {
		t.Fatalf("q=1 of {0,7} = %g, want 7 (max clamp)", got)
	}
	if got := h.Quantile(0); got != 0 {
		t.Fatalf("q=0 of {0,7} = %g, want 0 (min clamp)", got)
	}
	h.Observe(math.NaN()) // clamped to 0, must not poison sum
	if math.IsNaN(h.Sum()) {
		t.Fatal("NaN observation poisoned the sum")
	}
}

func TestTracerNesting(t *testing.T) {
	tr := NewTracer()
	root := tr.Start("root")
	a := root.Child("a")
	aa := a.Child("a.a")
	time.Sleep(time.Millisecond)
	aa.End()
	a.End()
	b := root.Child("b")
	b.End()
	root.End()

	recs := tr.Records()
	if len(recs) != 4 {
		t.Fatalf("got %d records, want 4", len(recs))
	}
	wantNames := []string{"root", "a", "a.a", "b"}
	wantDepth := []int{0, 1, 2, 1}
	for i, r := range recs {
		if r.Name != wantNames[i] || r.Depth != wantDepth[i] {
			t.Fatalf("record %d = %q depth %d, want %q depth %d", i, r.Name, r.Depth, wantNames[i], wantDepth[i])
		}
	}
	// The root covers its children on the monotonic clock.
	if recs[0].Dur < recs[2].Dur {
		t.Fatalf("root (%v) shorter than grandchild (%v)", recs[0].Dur, recs[2].Dur)
	}
	if recs[2].Dur < time.Millisecond {
		t.Fatalf("slept span only %v", recs[2].Dur)
	}
	var buf bytes.Buffer
	if err := tr.WriteTree(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "a.a") {
		t.Fatalf("tree output missing span:\n%s", buf.String())
	}
}

func TestReportFormats(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("relation_join_calls_total").Add(3)
	reg.Histogram("store_journal_fsync_ns").Observe(1000)
	reg.Histogram("store_journal_fsync_ns").Observe(2000)

	var buf bytes.Buffer
	if err := reg.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatalf("JSON report does not parse: %v\n%s", err, buf.String())
	}
	if snap.Counters["relation_join_calls_total"] != 3 {
		t.Fatalf("counter lost in JSON round-trip: %+v", snap)
	}
	hs := snap.Histograms["store_journal_fsync_ns"]
	if hs.Count != 2 || hs.Sum != 3000 || hs.Min != 1000 || hs.Max != 2000 {
		t.Fatalf("histogram summary wrong: %+v", hs)
	}

	buf.Reset()
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE relation_join_calls_total counter",
		"relation_join_calls_total 3",
		"# TYPE store_journal_fsync_ns summary",
		`store_journal_fsync_ns{quantile="0.5"}`,
		"store_journal_fsync_ns_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
}
