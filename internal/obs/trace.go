package obs

import (
	"fmt"
	"io"
	"sync"
	"time"
)

// Tracer collects spans against one monotonic epoch. Span durations
// use Go's monotonic clock readings (time.Since), so wall-clock jumps
// cannot corrupt them. The nil *Tracer is a valid no-op: Start returns
// a nil *Span, whose methods are in turn no-ops, so instrumented code
// never branches on "is tracing on".
//
// Spans nest explicitly: Start opens a root span, Span.Child opens a
// child. Records are kept in start order with their nesting depth, so
// WriteTree renders the call tree without re-sorting.
type Tracer struct {
	epoch time.Time
	mu    sync.Mutex
	recs  []SpanRecord
}

// SpanRecord is one completed (or still-open) span.
type SpanRecord struct {
	// Name identifies the span; Depth is its nesting level (0 = root).
	Name  string
	Depth int
	// Start is the offset from the tracer's epoch; Dur is zero until the
	// span ends.
	Start time.Duration
	Dur   time.Duration
}

// NewTracer returns a tracer whose epoch is now.
func NewTracer() *Tracer {
	return &Tracer{epoch: time.Now()}
}

// Span is an open interval of work. End it exactly once; Child may be
// called any number of times before End. The nil *Span is a valid
// no-op handle.
type Span struct {
	tr    *Tracer
	idx   int
	depth int
	start time.Time
}

// Start opens a root span. On a nil receiver it returns nil.
func (t *Tracer) Start(name string) *Span {
	return t.open(name, 0)
}

func (t *Tracer) open(name string, depth int) *Span {
	if t == nil {
		return nil
	}
	now := time.Now()
	t.mu.Lock()
	idx := len(t.recs)
	t.recs = append(t.recs, SpanRecord{Name: name, Depth: depth, Start: now.Sub(t.epoch)})
	t.mu.Unlock()
	return &Span{tr: t, idx: idx, depth: depth, start: now}
}

// Child opens a span nested under s. On a nil receiver it returns nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.tr.open(name, s.depth+1)
}

// End closes the span, recording its duration. No-op on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	d := time.Since(s.start)
	s.tr.mu.Lock()
	s.tr.recs[s.idx].Dur = d
	s.tr.mu.Unlock()
}

// Records returns a copy of the span records in start order.
func (t *Tracer) Records() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanRecord, len(t.recs))
	copy(out, t.recs)
	return out
}

// WriteTree renders the span tree, one line per span, indented by
// nesting depth. No-op on a nil tracer.
func (t *Tracer) WriteTree(w io.Writer) error {
	for _, r := range t.Records() {
		indent := ""
		for i := 0; i < r.Depth; i++ {
			indent += "  "
		}
		if _, err := fmt.Fprintf(w, "%s%-*s %12v  (+%v)\n",
			indent, 40-len(indent), r.Name, r.Dur.Round(time.Microsecond), r.Start.Round(time.Microsecond)); err != nil {
			return err
		}
	}
	return nil
}
