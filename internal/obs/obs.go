// Package obs is the repository's zero-dependency observability layer:
// atomic counters, bounded histograms with quantile estimates, and a
// monotonic-clock span tracer, collected in a Registry and exported as
// expvar-style JSON or Prometheus text format (see report.go).
//
// The layer is built to cost ~nothing when disabled. Every handle type
// (*Counter, *Histogram, *Tracer, *Span) is nil-safe: methods on a nil
// receiver are no-ops, so instrumented code holds a possibly-nil handle
// and calls it unconditionally. Instrumented packages expose a
// SetMetrics(obs.Sink) knob; passing nil restores the nil handles and
// with them the uninstrumented fast path (one pointer load and branch
// per kernel call).
//
// Metric naming scheme: <subsystem>_<noun>[_<unit>], where monotonic
// counters end in _total and duration histograms end in _ns. Examples:
// relation_join_probe_tuples_total, store_journal_fsync_ns.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Sink hands out named metric handles. A Registry is the standard
// implementation; instrumented packages accept the interface so tests
// can substitute their own. Callers must treat a nil Sink as "metrics
// disabled" and install nil handles.
type Sink interface {
	// Counter returns the named counter, creating it if needed.
	Counter(name string) *Counter
	// Histogram returns the named histogram, creating it if needed.
	Histogram(name string) *Histogram
}

// Counter is a monotonically increasing atomic counter. The nil
// *Counter is a valid no-op instrument.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by n. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Inc increments the counter by one. No-op on a nil receiver.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 on a nil receiver).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Histogram bucket layout: values land in geometric buckets
// [2^(i/histSubBuckets), 2^((i+1)/histSubBuckets)), so a quantile
// estimate is within a factor of 2^(1/histSubBuckets) ≈ 1.19 of the
// true order statistic. Bucket 0 absorbs values below 1, the last
// bucket absorbs everything past the top boundary. Memory per
// histogram is fixed: histNumBuckets words of counts plus five words
// of summary state — "bounded" no matter how many observations arrive.
const (
	histSubBuckets = 4
	histNumBuckets = 64 * histSubBuckets
)

// Histogram is a fixed-size concurrent histogram of non-negative
// values (typically nanoseconds). The nil *Histogram is a valid no-op
// instrument.
type Histogram struct {
	buckets [histNumBuckets]atomic.Int64
	count   atomic.Int64
	sum     atomic.Uint64 // float64 bits, CAS-updated
	// Non-negative IEEE floats order the same as their bit patterns, so
	// min/max reduce to an atomic uint64 maximum: max holds the bits of
	// the maximum, min holds the *complemented* bits of the minimum
	// (complementing reverses the order and makes the zero value act as
	// an "unset" sentinel for both).
	min atomic.Uint64
	max atomic.Uint64
}

// bucketFor maps a value to its bucket index.
func bucketFor(v float64) int {
	if v < 1 {
		return 0
	}
	i := 1 + int(math.Log2(v)*histSubBuckets)
	if i >= histNumBuckets {
		return histNumBuckets - 1
	}
	return i
}

// bucketMid is the geometric midpoint of bucket i, the value Quantile
// reports for order statistics landing in it.
func bucketMid(i int) float64 {
	if i == 0 {
		return 0
	}
	return math.Exp2((float64(i-1) + 0.5) / histSubBuckets)
}

// Observe records one value. Negative values are clamped to 0. No-op
// on a nil receiver. Safe for concurrent use.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	if v < 0 || math.IsNaN(v) {
		v = 0
	}
	h.buckets[bucketFor(v)].Add(1)
	h.count.Add(1)
	addFloat(&h.sum, v)
	bits := math.Float64bits(v)
	raiseBits(&h.max, bits)
	raiseBits(&h.min, ^bits)
}

// ObserveDuration records a duration in nanoseconds.
func (h *Histogram) ObserveDuration(ns int64) { h.Observe(float64(ns)) }

// addFloat atomically adds v to the float64 stored in bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		if bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// raiseBits atomically raises *a to b if b is larger.
func raiseBits(a *atomic.Uint64, b uint64) {
	for {
		old := a.Load()
		if b <= old || a.CompareAndSwap(old, b) {
			return
		}
	}
}

// Count returns the number of observations (0 on a nil receiver).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sum.Load())
}

// Min returns the smallest observed value (0 when empty or nil).
func (h *Histogram) Min() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(^h.min.Load())
}

// Max returns the largest observed value (0 when empty or nil).
func (h *Histogram) Max() float64 {
	if h == nil || h.count.Load() == 0 {
		return 0
	}
	return math.Float64frombits(h.max.Load())
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) as the geometric
// midpoint of the bucket holding the order statistic, clamped to the
// observed [Min, Max]. The estimate is within a relative factor of
// 2^(1/4) of the true value. Returns 0 when empty or nil.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	n := h.Count()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is the 1-based index of the order statistic.
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < histNumBuckets; i++ {
		seen += h.buckets[i].Load()
		if seen >= rank {
			v := bucketMid(i)
			if mn := h.Min(); v < mn {
				v = mn
			}
			if mx := h.Max(); v > mx {
				v = mx
			}
			return v
		}
	}
	return h.Max()
}

// Registry is a named collection of counters and histograms; it
// implements Sink. The zero value is not usable; call NewRegistry. A
// nil *Registry hands out nil handles, so it doubles as the disabled
// sink.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		hists:    make(map[string]*Histogram),
	}
}

// Counter implements Sink. On a nil receiver it returns the nil no-op
// counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Histogram implements Sink. On a nil receiver it returns the nil
// no-op histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// counterNames returns the counter names, sorted.
func (r *Registry) counterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.counters))
	for n := range r.counters {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// histNames returns the histogram names, sorted.
func (r *Registry) histNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, 0, len(r.hists))
	for n := range r.hists {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
