package obs

import (
	"encoding/json"
	"fmt"
	"io"
)

// HistSummary is the exported view of one histogram.
type HistSummary struct {
	Count int64   `json:"count"`
	Sum   float64 `json:"sum"`
	Min   float64 `json:"min"`
	Max   float64 `json:"max"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// Snapshot is a point-in-time copy of a registry's metrics.
type Snapshot struct {
	Counters   map[string]int64       `json:"counters"`
	Histograms map[string]HistSummary `json:"histograms"`
}

// summary reduces a histogram to its exported form.
func summary(h *Histogram) HistSummary {
	return HistSummary{
		Count: h.Count(),
		Sum:   h.Sum(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// Snapshot copies out every metric. Safe to call concurrently with
// observations (each metric is read atomically; the set is not a
// consistent cut). Returns an empty snapshot on a nil registry.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{Counters: map[string]int64{}, Histograms: map[string]HistSummary{}}
	if r == nil {
		return s
	}
	for _, n := range r.counterNames() {
		s.Counters[n] = r.Counter(n).Value()
	}
	for _, n := range r.histNames() {
		s.Histograms[n] = summary(r.Histogram(n))
	}
	return s
}

// WriteJSON writes the registry as an expvar-style JSON object:
// {"counters": {...}, "histograms": {name: {count, sum, min, max,
// p50, p95, p99}}}.
func (r *Registry) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r.Snapshot())
}

// WritePrometheus writes the registry in the Prometheus text exposition
// format: counters as counter samples, histograms as summaries
// (quantile-labeled samples plus _sum and _count).
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	for _, n := range r.counterNames() {
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", n, n, r.Counter(n).Value()); err != nil {
			return err
		}
	}
	for _, n := range r.histNames() {
		h := summary(r.Histogram(n))
		if _, err := fmt.Fprintf(w, "# TYPE %s summary\n", n); err != nil {
			return err
		}
		for _, qv := range [...]struct {
			q string
			v float64
		}{{"0.5", h.P50}, {"0.95", h.P95}, {"0.99", h.P99}} {
			if _, err := fmt.Fprintf(w, "%s{quantile=%q} %g\n", n, qv.q, qv.v); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum %g\n%s_count %d\n", n, h.Sum, n, h.Count); err != nil {
			return err
		}
	}
	return nil
}
