package obs

import "time"

// The obs layer owns the repository's only sanctioned clock reads (the
// walltime analyzer in internal/analysis enforces this). Kernels,
// durability code, and experiment drivers measure themselves through
// NowNS/SinceNS so that (a) every clock read is monotonic — wall-clock
// jumps cannot corrupt a latency histogram — and (b) deterministic code
// paths visibly contain no time dependence at all.

// clockEpoch anchors NowNS; readings are deltas on Go's monotonic clock.
var clockEpoch = time.Now()

// NowNS returns a monotonic clock reading in nanoseconds since process
// start. Readings are only meaningful relative to each other.
func NowNS() int64 { return int64(time.Since(clockEpoch)) }

// SinceNS returns the nanoseconds elapsed since an earlier NowNS
// reading.
func SinceNS(start int64) int64 { return NowNS() - start }
