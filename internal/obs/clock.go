package obs

import (
	"sync"
	"time"
)

// The obs layer owns the repository's only sanctioned clock reads (the
// walltime analyzer in internal/analysis enforces this). Kernels,
// durability code, and experiment drivers measure themselves through
// NowNS/SinceNS so that (a) every clock read is monotonic — wall-clock
// jumps cannot corrupt a latency histogram — and (b) deterministic code
// paths visibly contain no time dependence at all.

// clockEpoch anchors NowNS; readings are deltas on Go's monotonic clock.
var clockEpoch = time.Now()

// NowNS returns a monotonic clock reading in nanoseconds since process
// start. Readings are only meaningful relative to each other.
func NowNS() int64 { return int64(time.Since(clockEpoch)) }

// SinceNS returns the nanoseconds elapsed since an earlier NowNS
// reading.
func SinceNS(start int64) int64 { return NowNS() - start }

// Clock is the injectable time source for code that must *wait*, not
// just measure: retry backoff, admission deadlines. Production code
// takes a Clock so tests and the chaos harness can substitute a
// ManualClock, making every retry schedule deterministic and instant —
// the same discipline NowNS enforces for measurement, extended to
// sleeping. Implementations must be safe for concurrent use.
type Clock interface {
	// NowNS is a monotonic reading in nanoseconds (same scale as the
	// package-level NowNS for the system clock; virtual for manual
	// clocks).
	NowNS() int64
	// Sleep blocks the caller for ns nanoseconds (or advances virtual
	// time by ns and returns immediately, for a manual clock).
	Sleep(ns int64)
}

// systemClock is the process's real monotonic clock.
type systemClock struct{}

func (systemClock) NowNS() int64   { return NowNS() }
func (systemClock) Sleep(ns int64) { time.Sleep(time.Duration(ns)) }

// SystemClock returns the real monotonic clock: NowNS readings and
// genuine time.Sleep waits.
func SystemClock() Clock { return systemClock{} }

// ManualClock is a virtual clock for deterministic tests: NowNS starts
// at zero and advances only through Sleep (which returns immediately)
// or Advance. Every Sleep is recorded, so a test can assert the exact
// retry/backoff schedule a component produced — "same seed, same fault
// schedule, same timings" becomes a comparison of two logs.
type ManualClock struct {
	mu  sync.Mutex
	now int64
	log []int64
}

// NewManualClock returns a virtual clock at time zero.
func NewManualClock() *ManualClock { return &ManualClock{} }

// NowNS implements Clock. A nil clock reads as time zero, matching
// the package's nil-safe handle contract (nilmetrics).
func (c *ManualClock) NowNS() int64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Sleep implements Clock: virtual time advances by ns and the duration
// is appended to the sleep log; the caller never actually blocks.
func (c *ManualClock) Sleep(ns int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += ns
	c.log = append(c.log, ns)
}

// Advance moves virtual time forward without recording a sleep (the
// test harness's own passage of time).
func (c *ManualClock) Advance(ns int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += ns
}

// SleepLog returns a copy of every Sleep duration observed, in order.
func (c *ManualClock) SleepLog() []int64 {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]int64, len(c.log))
	copy(out, c.log)
	return out
}
