package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sync/atomic"
	"testing"

	"github.com/constcomp/constcomp/internal/budget"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
)

func journalMatch(name string) bool { return name == store.JournalFile }

func readFileBytes(t *testing.T, fsys store.FS, name string) []byte {
	t.Helper()
	f, err := fsys.Open(name)
	if err != nil {
		t.Fatalf("open %s: %v", name, err)
	}
	defer f.Close()
	b, err := io.ReadAll(f)
	if err != nil {
		t.Fatalf("read %s: %v", name, err)
	}
	return b
}

// recoverOn builds the standard Resurrect closure tests use: replay
// recovery over fsys with the same pair and symbol table.
func recoverOn(fsys store.FS, pair *core.Pair, syms *value.Symbols) func() (*store.Session, error) {
	return func() (*store.Session, error) {
		ns, _, err := store.Recover(fsys, pair, syms, store.Options{SnapshotEvery: 1 << 20})
		return ns, err
	}
}

// TestPipelineResurrectsAfterSyncFault is the basic self-healing path:
// a journal fsync fault breaks the session mid-workload, the committer
// resurrects it, and every op — including the one whose fsync failed —
// is acknowledged successfully. The faulted op's record was written but
// not synced; recovery replays it from the page-cache image and
// re-fsyncs, so it is durable without being re-journaled.
func TestPipelineResurrectsAfterSyncFault(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 2})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{
		MaxBatch:  1,
		Resurrect: recoverOn(ffs, pair, syms),
		Clock:     obs.NewManualClock(),
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const("dept0")}
	}
	names := []string{"ok1", "boom", "after1", "after2"}
	for _, n := range names {
		if _, err := pipe.Apply(core.Insert(tup(n))); err != nil {
			t.Fatalf("op %s: %v", n, err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("Close after healing: %v", err)
	}
	if !ffs.Tripped() {
		t.Fatal("fault never fired; test exercised nothing")
	}
	snap := reg.Snapshot()
	if snap.Counters["serve_resurrections_total"] != 1 {
		t.Errorf("resurrections = %v, want 1", snap.Counters["serve_resurrections_total"])
	}
	// Every acked op survives byte-identically: the serial oracle over
	// the same ops must equal both the live state and a fresh recovery.
	oracle, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := oracle.Apply(core.Insert(tup(n))); err != nil {
			t.Fatalf("oracle %s: %v", n, err)
		}
	}
	live := pipe.Store()
	if got, want := render(live.Database(), syms), render(oracle.Database(), syms); got != want {
		t.Fatalf("healed state diverged from oracle:\n%s\nwant:\n%s", got, want)
	}
	if live.Seq() != uint64(len(names)) {
		t.Fatalf("Seq = %d, want %d", live.Seq(), len(names))
	}
	live.Close()
	mem.Crash()
	rec, _, err := store.Recover(mem, pair, value.NewSymbols(), store.Options{})
	if err != nil {
		t.Fatalf("post-crash recovery: %v", err)
	}
	if rec.Seq() != uint64(len(names)) {
		t.Fatalf("post-crash Seq = %d, want %d: an acked op was not durable", rec.Seq(), len(names))
	}
}

// TestPipelineResurrectsAfterPowerLoss is the harder healing path: the
// fsync fault is followed by a power cut, so the faulted batch's bytes
// are really gone. The un-acked suffix must be re-journaled and
// re-fsynced on the fresh session — and still acknowledged successfully.
func TestPipelineResurrectsAfterPowerLoss(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 2})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	resurrect := func() (*store.Session, error) {
		mem.Crash() // the fault was a real power event: unsynced bytes are gone
		ns, _, err := store.Recover(mem, pair, syms, store.Options{SnapshotEvery: 1 << 20})
		return ns, err
	}
	clk := obs.NewManualClock()
	pipe, err := New(st, Options{MaxBatch: 1, Resurrect: resurrect, Clock: clk, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const("dept0")}
	}
	names := []string{"ok1", "boom", "after1"}
	for _, n := range names {
		if _, err := pipe.Apply(core.Insert(tup(n))); err != nil {
			t.Fatalf("op %s: %v", n, err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("Close after healing: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve_resurrections_total"] != 1 {
		t.Errorf("resurrections = %v, want 1", snap.Counters["serve_resurrections_total"])
	}
	if snap.Counters["serve_retries_total"] == 0 {
		t.Error("power loss dropped the batch, yet nothing was re-journaled")
	}
	if len(clk.SleepLog()) == 0 {
		t.Error("healing slept zero times; backoff path not exercised")
	}
	live := pipe.Store()
	if live.Seq() != uint64(len(names)) {
		t.Fatalf("Seq = %d, want %d", live.Seq(), len(names))
	}
	got := render(live.Database(), syms)
	oracle, _ := core.NewSession(pair, db)
	for _, n := range names {
		if _, err := oracle.Apply(core.Insert(tup(n))); err != nil {
			t.Fatal(err)
		}
	}
	if want := render(oracle.Database(), syms); got != want {
		t.Fatalf("healed state diverged from oracle:\n%s\nwant:\n%s", got, want)
	}
}

// TestPipelineResurrectExhaustionLatches: when every resurrection
// attempt fails transiently, the pipeline must stop after
// ResurrectRetries backoff sleeps, latch broken, and fail pending and
// future submitters — degraded, but never hung.
func TestPipelineResurrectExhaustionLatches(t *testing.T) {
	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 1})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	clk := obs.NewManualClock()
	pipe, err := New(st, Options{
		MaxBatch:         1,
		Resurrect:        func() (*store.Session, error) { attempts++; return nil, store.ErrInjected },
		ResurrectRetries: 3,
		Clock:            clk,
		Seed:             3,
	})
	if err != nil {
		t.Fatal(err)
	}
	tup := relation.Tuple{syms.Const("x"), syms.Const("dept0")}
	if _, err := pipe.Apply(core.Insert(tup)); !errors.Is(err, store.ErrSessionBroken) {
		t.Fatalf("op after exhausted healing = %v, want ErrSessionBroken", err)
	}
	if attempts != 3 {
		t.Fatalf("resurrection attempts = %d, want 3", attempts)
	}
	if got := len(clk.SleepLog()); got != 3 {
		t.Fatalf("backoff sleeps = %d, want 3", got)
	}
	if !pipe.Degraded() {
		t.Error("latched pipeline must report degraded")
	}
	if _, err := pipe.Apply(core.Insert(tup)); !errors.Is(err, store.ErrSessionBroken) {
		t.Fatalf("post-latch op = %v, want ErrSessionBroken", err)
	}
	if err := pipe.Close(); err == nil {
		t.Error("Close did not surface the latched error")
	}
}

// TestPipelinePermanentCauseSkipsResurrection: a permanent cause (here
// tagged explicitly) must not trigger resurrection at all — retrying
// what cannot succeed only delays the verdict.
func TestPipelinePermanentCauseSkipsResurrection(t *testing.T) {
	if got := store.Classify(store.Permanent(store.ErrInjected)); got != store.ClassPermanent {
		t.Fatalf("Permanent tag = %v", got)
	}
	// End-to-end: a resurrection that reports data loss latches
	// immediately instead of burning the remaining attempts.
	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 1})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	attempts := 0
	pipe, err := New(st, Options{
		MaxBatch: 1,
		Resurrect: func() (*store.Session, error) {
			attempts++
			return nil, store.ErrDataLoss
		},
		ResurrectRetries: 5,
		Clock:            obs.NewManualClock(),
	})
	if err != nil {
		t.Fatal(err)
	}
	tup := relation.Tuple{syms.Const("x"), syms.Const("dept0")}
	if _, err := pipe.Apply(core.Insert(tup)); !errors.Is(err, store.ErrDataLoss) {
		t.Fatalf("op error = %v, want ErrDataLoss surfaced", err)
	}
	if attempts != 1 {
		t.Fatalf("resurrection attempts = %d, want 1 (permanent cause must stop the loop)", attempts)
	}
	pipe.Close()
}

// TestPipelineShedOnFull: with bounded non-blocking admission and the
// committer provably stuck healing, a burst larger than the pipeline's
// total buffering must shed — and every non-shed op must still be
// acknowledged correctly once the store heals.
func TestPipelineShedOnFull(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 2})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	healing := make(chan struct{})
	release := make(chan struct{})
	resurrect := func() (*store.Session, error) {
		close(healing)
		<-release
		ns, _, err := store.Recover(ffs, pair, syms, store.Options{SnapshotEvery: 1 << 20})
		return ns, err
	}
	pipe, err := New(st, Options{
		MaxBatch:   1,
		QueueDepth: 2,
		ShedOnFull: true,
		Resurrect:  resurrect,
		Clock:      obs.NewManualClock(),
		Seed:       13,
	})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const("dept0")}
	}
	if _, err := pipe.Apply(core.Insert(tup("ok1"))); err != nil {
		t.Fatal(err)
	}
	// This op's fsync fails; the committer blocks inside Resurrect.
	boom, err := pipe.ApplyAsync(context.Background(), core.Insert(tup("boom")))
	if err != nil {
		t.Fatal(err)
	}
	<-healing
	// Total buffering while the committer is stuck: queue (2) + decider
	// batch in hand (1) + commit channel (2 batches × MaxBatch 1) = 5.
	// A burst of 20 must shed at least 15, no matter how the goroutines
	// interleave.
	const burst = 20
	var pend []*Pending
	sheds := 0
	for i := 0; i < burst; i++ {
		h, err := pipe.ApplyAsync(context.Background(), core.Insert(tup(fmt.Sprintf("b%02d", i))))
		switch {
		case err == nil:
			pend = append(pend, h)
		case errors.Is(err, ErrShed):
			sheds++
		default:
			t.Fatalf("burst op %d: unexpected error %v", i, err)
		}
	}
	if sheds < burst-5 {
		t.Fatalf("sheds = %d, want >= %d", sheds, burst-5)
	}
	if !pipe.Degraded() {
		t.Error("pipeline must report degraded while healing")
	}
	close(release)
	if _, err := boom.Wait(); err != nil {
		t.Fatalf("faulted op after healing: %v", err)
	}
	for i, h := range pend {
		if _, err := h.Wait(); err != nil {
			t.Fatalf("admitted burst op %d failed: %v", i, err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := reg.Snapshot()
	if got := snap.Counters["serve_shed_total"]; got != int64(sheds) {
		t.Errorf("serve_shed_total = %v, want %d", got, sheds)
	}
	if pipe.Degraded() {
		t.Error("healed pipeline must not stay degraded")
	}
	// Admitted ops all landed: 1 + boom + len(pend).
	if want := uint64(2 + len(pend)); pipe.Store().Seq() != want {
		t.Fatalf("Seq = %d, want %d", pipe.Store().Seq(), want)
	}
}

// TestPipelineQueueDeadlineShed: ops that age out in the submit queue
// past QueueDeadlineNS are shed with ErrShed instead of being decided
// at a latency nobody is waiting for.
func TestPipelineQueueDeadlineShed(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 2})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	healing := make(chan struct{})
	release := make(chan struct{})
	resurrect := func() (*store.Session, error) {
		close(healing)
		<-release
		ns, _, err := store.Recover(ffs, pair, syms, store.Options{SnapshotEvery: 1 << 20})
		return ns, err
	}
	clk := obs.NewManualClock()
	pipe, err := New(st, Options{
		MaxBatch:        1,
		QueueDepth:      16,
		ShedOnFull:      true,
		QueueDeadlineNS: 1_000_000, // 1ms of virtual time
		Resurrect:       resurrect,
		Clock:           clk,
		Seed:            17,
	})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const("dept0")}
	}
	if _, err := pipe.Apply(core.Insert(tup("ok1"))); err != nil {
		t.Fatal(err)
	}
	boom, err := pipe.ApplyAsync(context.Background(), core.Insert(tup("boom")))
	if err != nil {
		t.Fatal(err)
	}
	<-healing
	const burst = 8
	var pend []*Pending
	for i := 0; i < burst; i++ {
		h, err := pipe.ApplyAsync(context.Background(), core.Insert(tup(fmt.Sprintf("q%02d", i))))
		if err != nil {
			t.Fatalf("burst op %d: %v", i, err) // queue depth 16 > burst: no full-queue shed
		}
		pend = append(pend, h)
	}
	// Everything still queued is now past its deadline.
	clk.Advance(10_000_000)
	close(release)
	if _, err := boom.Wait(); err != nil {
		t.Fatalf("faulted op after healing: %v", err)
	}
	shed, served := 0, 0
	for i, h := range pend {
		_, err := h.Wait()
		switch {
		case err == nil:
			served++
		case errors.Is(err, ErrShed):
			shed++
		default:
			t.Fatalf("burst op %d: unexpected error %v", i, err)
		}
	}
	// At most 3 burst ops escaped the queue before the committer stalled
	// (decider hand + 2 commit slots); the rest aged out.
	if shed < burst-3 {
		t.Fatalf("age-based sheds = %d, want >= %d", shed, burst-3)
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if got := reg.Snapshot().Counters["serve_shed_total"]; got < int64(shed) {
		t.Errorf("serve_shed_total = %v, want >= %d", got, shed)
	}
	// Acked-op accounting: ok1 + boom + served landed durably.
	if want := uint64(2 + served); pipe.Store().Seq() != want {
		t.Fatalf("Seq = %d, want %d", pipe.Store().Seq(), want)
	}
}

// TestPipelineDegradedView: the read path keeps serving the last
// committed materialized view while the store heals, flags itself
// degraded, and catches up after healing.
func TestPipelineDegradedView(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 2})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	healing := make(chan struct{})
	release := make(chan struct{})
	resurrect := func() (*store.Session, error) {
		close(healing)
		<-release
		ns, _, err := store.Recover(ffs, pair, syms, store.Options{SnapshotEvery: 1 << 20})
		return ns, err
	}
	pipe, err := New(st, Options{MaxBatch: 1, Resurrect: resurrect, Clock: obs.NewManualClock(), Seed: 19})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const("dept0")}
	}
	// Warm the read path, then commit one op so a view is published.
	pipe.View()
	if _, err := pipe.Apply(core.Insert(tup("ok1"))); err != nil {
		t.Fatal(err)
	}
	v1, degraded := pipe.View()
	if degraded {
		t.Fatal("healthy pipeline reported degraded")
	}
	if v1 == nil || !v1.Contains(tup("ok1")) {
		t.Fatal("published view missing committed op")
	}
	boom, err := pipe.ApplyAsync(context.Background(), core.Insert(tup("boom")))
	if err != nil {
		t.Fatal(err)
	}
	<-healing
	v2, degraded := pipe.View()
	if !degraded {
		t.Error("View during healing must report degraded")
	}
	if v2 == nil || !v2.Contains(tup("ok1")) {
		t.Error("degraded View must keep serving the last committed view")
	}
	if v2.Contains(tup("boom")) {
		t.Error("degraded View leaked an uncommitted op")
	}
	close(release)
	if _, err := boom.Wait(); err != nil {
		t.Fatalf("faulted op after healing: %v", err)
	}
	v3, degraded := pipe.View()
	if degraded {
		t.Error("healed pipeline must not stay degraded")
	}
	if v3 == nil || !v3.Contains(tup("boom")) {
		t.Error("post-heal view missing the healed op")
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if reg.Snapshot().Counters["serve_degraded_reads_total"] == 0 {
		t.Error("degraded reads were served but not counted")
	}
}

// TestPipelineBudgetTripRetries: a deterministic budget trip on the
// speculative decide is transient; the decider retries it with backoff
// and the op succeeds without the submitter seeing the trip.
func TestPipelineBudgetTripRetries(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	st, err := store.Create(store.NewMemFS(), pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	// Budgets guard the full decide path; the incremental fast path never
	// constructs one, so route decides through the chase.
	st.SetIncremental(false)
	clk := obs.NewManualClock()
	pipe, err := New(st, Options{MaxBatch: 1, Clock: clk, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	// One-shot plan: the first budget built under this context gets a
	// 1-step allowance (trips immediately); every later one is unlimited.
	var fired atomic.Bool
	ctx := budget.ContextWithPlan(context.Background(), func() int64 {
		if fired.CompareAndSwap(false, true) {
			return 1
		}
		return 0
	})
	tup := relation.Tuple{syms.Const("x"), syms.Const("dept0")}
	if _, err := pipe.ApplyCtx(ctx, core.Insert(tup)); err != nil {
		t.Fatalf("budget-tripped op should heal via retry, got %v", err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve_retries_total"] == 0 {
		t.Error("budget trip did not register a retry")
	}
	if len(clk.SleepLog()) == 0 {
		t.Error("retry did not back off")
	}
	if !pipe.Store().Database().Contains(relation.Tuple{syms.Const("x"), syms.Const("dept0"), syms.Const("mgr0")}) {
		t.Error("retried op did not land")
	}
}

// TestPipelineBackoffDeterminism is the determinism satellite: the same
// seed and the same fault schedule reproduce the identical retry-sleep
// sequence AND the identical final journal bytes. Run under -race by
// `make race`.
func TestPipelineBackoffDeterminism(t *testing.T) {
	type run struct {
		sleeps  []int64
		journal []byte
		state   string
	}
	once := func(seed uint64) run {
		pair, db, syms := edmFixture()
		mem := store.NewMemFS()
		ffs := store.NewFaultFS(mem, store.FaultPlan{Match: journalMatch, FailSyncAt: 2})
		st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		resurrect := func() (*store.Session, error) {
			mem.Crash()
			ns, _, err := store.Recover(mem, pair, syms, store.Options{SnapshotEvery: 1 << 20})
			return ns, err
		}
		clk := obs.NewManualClock()
		pipe, err := New(st, Options{MaxBatch: 1, Resurrect: resurrect, Clock: clk, Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		for _, n := range []string{"a", "b", "c", "d", "e"} {
			tup := relation.Tuple{syms.Const(n), syms.Const("dept0")}
			if _, err := pipe.Apply(core.Insert(tup)); err != nil {
				t.Fatalf("op %s: %v", n, err)
			}
		}
		if err := pipe.Close(); err != nil {
			t.Fatal(err)
		}
		state := render(pipe.Store().Database(), syms)
		pipe.Store().Close()
		return run{sleeps: clk.SleepLog(), journal: readFileBytes(t, mem, store.JournalFile), state: state}
	}
	r1, r2 := once(42), once(42)
	if len(r1.sleeps) == 0 {
		t.Fatal("schedule exercised no backoff sleeps")
	}
	if !slicesEqual(r1.sleeps, r2.sleeps) {
		t.Fatalf("same seed, different retry timings:\n%v\n%v", r1.sleeps, r2.sleeps)
	}
	if !bytes.Equal(r1.journal, r2.journal) {
		t.Fatal("same seed, different final journal bytes")
	}
	if r1.state != r2.state {
		t.Fatalf("same seed, different final state:\n%s\n%s", r1.state, r2.state)
	}
}

func slicesEqual(a, b []int64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestClassifyServeSentinels pins the serve-side taxonomy.
func TestClassifyServeSentinels(t *testing.T) {
	if Classify(ErrShed) != store.ClassTransient {
		t.Error("ErrShed must be transient")
	}
	if Classify(ErrClosed) != store.ClassPermanent {
		t.Error("ErrClosed must be permanent")
	}
	// Fallback to the store taxonomy.
	if Classify(store.ErrDataLoss) != store.ClassPermanent {
		t.Error("store fallback lost")
	}
	if Classify(fmt.Errorf("wrapped: %w", ErrShed)) != store.ClassTransient {
		t.Error("wrap must preserve class")
	}
}
