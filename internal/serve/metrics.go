package serve

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// serveMetrics holds the resolved metric handles for the pipeline.
// Fsyncs-per-op is serve_batches_total / serve_ops_committed_total:
// each batch costs exactly one journal fsync (store.ApplyBatchCtx), so
// the ratio falls toward 1/MaxBatch as the queue fills.
type serveMetrics struct {
	submitted *obs.Counter
	committed *obs.Counter
	batches   *obs.Counter
	// seeded counts speculative decisions planted in the real session's
	// decision cache; compare with core_decision_cache_hits_total to see
	// how often the committer's decide was prepaid.
	seeded      *obs.Counter
	divergences *obs.Counter

	// batchRecords is the ops-per-fsync distribution; queueDepth samples
	// the submit queue length at each batch formation.
	batchRecords *obs.Histogram
	queueDepth   *obs.Histogram
}

var svmetrics atomic.Pointer[serveMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for the
// serving pipeline.
func SetMetrics(s obs.Sink) {
	if s == nil {
		svmetrics.Store(nil)
		return
	}
	svmetrics.Store(&serveMetrics{
		submitted:    s.Counter("serve_ops_submitted_total"),
		committed:    s.Counter("serve_ops_committed_total"),
		batches:      s.Counter("serve_batches_total"),
		seeded:       s.Counter("serve_seeds_total"),
		divergences:  s.Counter("serve_divergence_total"),
		batchRecords: s.Histogram("serve_batch_records"),
		queueDepth:   s.Histogram("serve_queue_depth"),
	})
}
