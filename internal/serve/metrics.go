package serve

import (
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/obs"
)

// serveMetrics holds the resolved metric handles for the pipeline.
// Fsyncs-per-op is serve_batches_total / serve_ops_committed_total:
// each batch costs exactly one journal fsync (store.ApplyBatchCtx), so
// the ratio falls toward 1/MaxBatch as the queue fills.
type serveMetrics struct {
	submitted *obs.Counter
	committed *obs.Counter
	batches   *obs.Counter
	// seeded counts speculative decisions planted in the real session's
	// decision cache; compare with core_decision_cache_hits_total to see
	// how often the committer's decide was prepaid.
	seeded      *obs.Counter
	divergences *obs.Counter

	// Self-healing instrumentation: retries counts transient-failure
	// re-attempts in both fault domains (decide retries and re-journaled
	// batch suffixes); shed counts ops rejected by bounded admission
	// (full queue or queue-deadline ageout); resurrections counts
	// successful session replacements; degradedReads counts View calls
	// served while the store was healing or latched broken.
	retries       *obs.Counter
	shed          *obs.Counter
	resurrections *obs.Counter
	degradedReads *obs.Counter

	// batchRecords is the ops-per-fsync distribution; queueDepth samples
	// the submit queue length at each batch formation; retryLatency is
	// the backoff-sleep distribution per retry.
	batchRecords *obs.Histogram
	queueDepth   *obs.Histogram
	retryLatency *obs.Histogram
}

var svmetrics atomic.Pointer[serveMetrics]

// SetMetrics installs (or, with nil, removes) the metrics sink for the
// serving pipeline.
func SetMetrics(s obs.Sink) {
	if s == nil {
		svmetrics.Store(nil)
		return
	}
	svmetrics.Store(&serveMetrics{
		submitted:     s.Counter("serve_ops_submitted_total"),
		committed:     s.Counter("serve_ops_committed_total"),
		batches:       s.Counter("serve_batches_total"),
		seeded:        s.Counter("serve_seeds_total"),
		divergences:   s.Counter("serve_divergence_total"),
		retries:       s.Counter("serve_retries_total"),
		shed:          s.Counter("serve_shed_total"),
		resurrections: s.Counter("serve_resurrections_total"),
		degradedReads: s.Counter("serve_degraded_reads_total"),
		batchRecords:  s.Histogram("serve_batch_records"),
		queueDepth:    s.Histogram("serve_queue_depth"),
		retryLatency:  s.Histogram("serve_retry_latency_ns"),
	})
}
