package serve

// backoff produces a deterministic capped exponential retry schedule:
// delay n is base·2ⁿ clamped to ceil, with jitter drawn from a seeded
// splitmix64 stream into [delay/2, delay]. Determinism is the point —
// the walltime discipline (internal/analysis) bans wall-clock reads
// outside internal/obs, and the chaos harness asserts that the same
// seed and fault schedule reproduce the exact same retry timings, so
// the jitter source must be a PRNG the caller seeds, never the clock.
//
// A backoff is owned by exactly one pipeline goroutine (the decider and
// the committer each carry their own, with decorrelated seeds); it is
// not safe for concurrent use.
type backoff struct {
	base    int64 // first delay, ns
	ceil    int64 // clamp, ns
	attempt uint
	rng     uint64
}

func newBackoff(base, ceil int64, seed uint64) *backoff {
	return &backoff{base: base, ceil: ceil, rng: seed}
}

// rand advances the splitmix64 stream one step (Vigna's finalizer; the
// same mixer Go's runtime seeds maps with).
func (b *backoff) rand() uint64 {
	b.rng += 0x9e3779b97f4a7c15
	z := b.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// next returns the next delay in nanoseconds and escalates the attempt
// counter.
func (b *backoff) next() int64 {
	d := b.ceil
	if b.attempt < 63 {
		if shifted := b.base << b.attempt; shifted > 0 && shifted < b.ceil {
			d = shifted
		}
	}
	b.attempt++
	half := d / 2
	if half <= 0 {
		return d
	}
	return half + int64(b.rand()%uint64(half+1))
}

// reset returns the schedule to the first rung after a success, keeping
// the jitter stream position (replayability needs the sequence of draws
// to be schedule-determined, not wall-clock-determined; it does not
// need the stream to rewind).
func (b *backoff) reset() { b.attempt = 0 }
