package serve

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
)

// edmFixture is the paper's §2 Employee–Department–Manager schema with
// view X = ED under constant complement Y = DM, two departments with
// two permanent employees each.
func edmFixture() (*core.Pair, *relation.Relation, *value.Symbols) {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < 4; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	return pair, db, syms
}

// namedOp is an update op expressed with constant names, so the same
// workload can be materialized against sessions with independent
// symbol tables.
type namedOp struct {
	kind  core.UpdateKind
	tuple []string
	with  []string
}

func (n namedOp) op(syms *value.Symbols) core.UpdateOp {
	mk := func(names []string) relation.Tuple {
		t := make(relation.Tuple, len(names))
		for i, s := range names {
			t[i] = syms.Const(s)
		}
		return t
	}
	switch n.kind {
	case core.UpdateInsert:
		return core.Insert(mk(n.tuple))
	case core.UpdateDelete:
		return core.Delete(mk(n.tuple))
	default:
		return core.Replace(mk(n.tuple), mk(n.with))
	}
}

// randomWorkload generates n ops mixing translatable and untranslatable
// inserts, deletes, and replaces, deterministically from seed. It makes
// no attempt to predict outcomes — the point of the equivalence test is
// that serial and pipelined runs agree op by op, whatever the verdicts.
func randomWorkload(seed int64, n int) []namedOp {
	rng := rand.New(rand.NewSource(seed))
	emp := func(i int) string { return fmt.Sprintf("w%03d", i) }
	dept := func(i int) string { return fmt.Sprintf("dept%d", i%2) }
	ops := make([]namedOp, 0, n)
	for i := 0; i < n; i++ {
		e := emp(rng.Intn(40))
		d := dept(rng.Intn(2))
		switch rng.Intn(10) {
		case 0, 1, 2, 3, 4:
			// Insert: fresh employees translate; an employee already in
			// the other department trips E→D.
			ops = append(ops, namedOp{kind: core.UpdateInsert, tuple: []string{e, d}})
		case 5, 6, 7:
			// Delete: absent tuples are identity translations; present
			// ones translate unless they strand their department.
			ops = append(ops, namedOp{kind: core.UpdateDelete, tuple: []string{e, d}})
		case 8:
			// Replace across departments.
			ops = append(ops, namedOp{kind: core.UpdateReplace,
				tuple: []string{e, d}, with: []string{e, dept(rng.Intn(2) + 1)}})
		default:
			// Insert into a department that does not exist yet:
			// condition (a) rejection.
			ops = append(ops, namedOp{kind: core.UpdateInsert,
				tuple: []string{e, fmt.Sprintf("newdept%d", rng.Intn(3))}})
		}
	}
	return ops
}

// outcome is the observable fate of one op, rendered symbol-table-free.
type outcome struct {
	applied      bool
	translatable bool
	reason       string
	errKind      string // "", "rejected", or the error text
}

func outcomeOf(d *core.Decision, err error) outcome {
	var o outcome
	switch {
	case err == nil:
		o.applied = true
	case errors.Is(err, core.ErrRejected):
		o.errKind = "rejected"
	default:
		o.errKind = err.Error()
	}
	if d != nil {
		o.translatable = d.Translatable
		o.reason = d.Reason.String()
	}
	return o
}

// render canonicalizes a relation for comparison across symbol tables.
func render(r *relation.Relation, syms *value.Symbols) string {
	lines := make([]string, 0, r.Len())
	for _, t := range r.Tuples() {
		fields := make([]string, len(t))
		for i, v := range t {
			fields[i] = syms.Name(v)
		}
		lines = append(lines, strings.Join(fields, ","))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}

// TestPipelineEquivalenceRandomized is the acceptance test for decide
// purity through the pipeline: a 1000-op randomized workload submitted
// through the pipeline in randomized async windows must produce, op for
// op and in order, the same verdicts, reasons, and final database as a
// serial in-memory session applying the same ops.
func TestPipelineEquivalenceRandomized(t *testing.T) {
	const nOps = 1000
	workload := randomWorkload(7, nOps)

	// Serial reference: a plain core session.
	pair, db, syms := edmFixture()
	serial, err := core.NewSession(pair, db)
	if err != nil {
		t.Fatal(err)
	}
	want := make([]outcome, nOps)
	for i, n := range workload {
		d, err := serial.Apply(n.op(syms))
		want[i] = outcomeOf(d, err)
	}
	wantDB := render(serial.Database(), syms)

	// Pipelined run: same ops, same order, submitted in async windows
	// of randomized width so they share batches.
	pair2, db2, syms2 := edmFixture()
	st, err := store.Create(store.NewMemFS(), pair2, db2, syms2, store.Options{SnapshotEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{MaxBatch: 32})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(99))
	got := make([]outcome, nOps)
	for start := 0; start < nOps; {
		width := 1 + rng.Intn(48)
		if start+width > nOps {
			width = nOps - start
		}
		pends := make([]*Pending, width)
		for j := 0; j < width; j++ {
			p, err := pipe.ApplyAsync(context.Background(), workload[start+j].op(syms2))
			if err != nil {
				t.Fatalf("op %d: enqueue: %v", start+j, err)
			}
			pends[j] = p
		}
		for j, p := range pends {
			d, err := p.Wait()
			got[start+j] = outcomeOf(d, err)
		}
		start += width
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}

	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("op %d (%v %v): pipeline outcome %+v, serial outcome %+v",
				i, workload[i].kind, workload[i].tuple, got[i], want[i])
		}
	}
	if gotDB := render(st.Database(), syms2); gotDB != wantDB {
		t.Errorf("final database diverged:\n%s\nwant:\n%s", gotDB, wantDB)
	}
}

// TestPipelineConcurrentSubmitters hammers the pipeline from many
// goroutines (run under -race). Each submitter inserts its own disjoint
// employees, so every op is translatable regardless of interleaving and
// the final state is order-independent.
func TestPipelineConcurrentSubmitters(t *testing.T) {
	const (
		submitters = 8
		perSub     = 25
	)
	pair, db, syms := edmFixture()
	st, err := store.Create(store.NewMemFS(), pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{MaxBatch: 16, QueueDepth: 8})
	if err != nil {
		t.Fatal(err)
	}
	// Intern every constant up front: Symbols is not safe for concurrent
	// interning, and the pipeline only reads.
	tuples := make([][]relation.Tuple, submitters)
	for g := range tuples {
		tuples[g] = make([]relation.Tuple, perSub)
		for i := range tuples[g] {
			tuples[g][i] = relation.Tuple{
				syms.Const(fmt.Sprintf("g%d_e%d", g, i)),
				syms.Const(fmt.Sprintf("dept%d", i%2)),
			}
		}
	}
	var wg sync.WaitGroup
	errs := make(chan error, submitters*perSub)
	for g := 0; g < submitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perSub; i++ {
				if _, err := pipe.Apply(core.Insert(tuples[g][i])); err != nil {
					errs <- fmt.Errorf("submitter %d op %d: %w", g, i, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Seq() != submitters*perSub {
		t.Errorf("Seq = %d, want %d", st.Seq(), submitters*perSub)
	}
	view := st.View()
	for g := range tuples {
		for _, tup := range tuples[g] {
			if !view.Contains(tup) {
				t.Fatalf("concurrent insert %v missing from the view", tup)
			}
		}
	}
}

// TestPipelineCloseDrains: ops accepted before Close are decided,
// durable, and acknowledged; ops submitted after Close are refused.
func TestPipelineCloseDrains(t *testing.T) {
	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	st, err := store.Create(mem, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	pends := make([]*Pending, n)
	for i := 0; i < n; i++ {
		tup := relation.Tuple{syms.Const(fmt.Sprintf("d%02d", i)), syms.Const("dept0")}
		if pends[i], err = pipe.ApplyAsync(context.Background(), core.Insert(tup)); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	for i, p := range pends {
		if _, err := p.Wait(); err != nil {
			t.Errorf("accepted op %d failed across Close: %v", i, err)
		}
	}
	if _, err := pipe.Apply(core.Insert(relation.Tuple{syms.Const("late"), syms.Const("dept0")})); !errors.Is(err, ErrClosed) {
		t.Errorf("post-Close submit error = %v, want ErrClosed", err)
	}
	if err := pipe.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if st.Seq() != n {
		t.Errorf("Seq = %d, want %d", st.Seq(), n)
	}
}

// TestPipelineBrokenStore: a journal fault mid-stream breaks the store
// session; affected submitters get ErrSessionBroken, later submissions
// fail fast, and Close surfaces the error.
func TestPipelineBrokenStore(t *testing.T) {
	pair, db, syms := edmFixture()
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{
		Match:      func(name string) bool { return name == store.JournalFile },
		FailSyncAt: 2,
	})
	st, err := store.Create(ffs, pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{MaxBatch: 1, QueueDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const("dept0")}
	}
	if _, err := pipe.Apply(core.Insert(tup("ok1"))); err != nil {
		t.Fatalf("first op: %v", err)
	}
	// Second journal fsync fails: this op must come back broken.
	if _, err := pipe.Apply(core.Insert(tup("boom"))); !errors.Is(err, store.ErrSessionBroken) {
		t.Fatalf("faulted op error = %v, want ErrSessionBroken", err)
	}
	// And so must everything after it, without touching the store.
	if _, err := pipe.Apply(core.Insert(tup("after"))); !errors.Is(err, store.ErrSessionBroken) {
		t.Fatalf("post-fault op error = %v, want ErrSessionBroken", err)
	}
	if err := pipe.Close(); err == nil {
		t.Error("Close did not surface the broken session")
	}
}

// TestPipelineDivergenceRecovers is the safety net's test: mutate the
// store behind the pipeline's back so the scratch session's speculation
// is provably stale, and check the committer detects the outcome
// mismatch, invalidates the seeded decisions, resyncs the scratch, and
// keeps serving correct answers.
func TestPipelineDivergenceRecovers(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	defer SetMetrics(nil)

	pair, db, syms := edmFixture()
	st, err := store.Create(store.NewMemFS(), pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e, d string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const(d)}
	}
	// Behind the pipeline's back (it is idle): remove emp0. The scratch
	// clone still has emp0@dept0, so the insert below trips E→D there
	// (prediction: rejected) while the real session applies it — an
	// outcome mismatch the committer must catch.
	if _, err := st.Apply(core.Delete(tup("emp0", "dept0"))); err != nil {
		t.Fatal(err)
	}
	d, err := pipe.Apply(core.Insert(tup("emp0", "dept1")))
	if err != nil || !d.Translatable {
		t.Fatalf("authoritative decide lost to stale speculation: %v, %+v", err, d)
	}
	// The pipeline keeps serving correctly after the resync.
	for i := 0; i < 8; i++ {
		if _, err := pipe.Apply(core.Insert(tup(fmt.Sprintf("post%d", i), "dept0"))); err != nil {
			t.Fatalf("post-divergence op %d: %v", i, err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve_divergence_total"] == 0 {
		t.Error("divergence was not detected/counted")
	}
	if !st.View().Contains(tup("emp0", "dept1")) {
		t.Error("authoritative insert missing from the view")
	}
}

// TestPipelineContextCancelledInQueue: an op whose context dies while
// queued fails with the context error and never reaches the store.
func TestPipelineContextCancelledInQueue(t *testing.T) {
	pair, db, syms := edmFixture()
	st, err := store.Create(store.NewMemFS(), pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{MaxBatch: 4})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = pipe.ApplyCtx(ctx, core.Insert(relation.Tuple{syms.Const("zed"), syms.Const("dept0")}))
	if !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled op error = %v, want context.Canceled", err)
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	if st.Seq() != 0 {
		t.Errorf("cancelled op reached the journal: Seq = %d", st.Seq())
	}
}

// TestPipelineSeedsDecisions: with metrics on, a healthy pipelined run
// seeds speculative decisions and the committer consumes them — either
// by adopting the speculated post-op state outright or, on fallback,
// as decision-cache hits. Either way the chase for an op runs once,
// not twice.
func TestPipelineSeedsDecisions(t *testing.T) {
	reg := obs.NewRegistry()
	SetMetrics(reg)
	core.SetMetrics(reg)
	defer SetMetrics(nil)
	defer core.SetMetrics(nil)

	pair, db, syms := edmFixture()
	st, err := store.Create(store.NewMemFS(), pair, db, syms, store.Options{SnapshotEvery: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := New(st, Options{MaxBatch: 8})
	if err != nil {
		t.Fatal(err)
	}
	const n = 24
	pends := make([]*Pending, n)
	for i := 0; i < n; i++ {
		tup := relation.Tuple{syms.Const(fmt.Sprintf("s%02d", i)), syms.Const("dept0")}
		if pends[i], err = pipe.ApplyAsync(context.Background(), core.Insert(tup)); err != nil {
			t.Fatal(err)
		}
	}
	for _, p := range pends {
		if _, err := p.Wait(); err != nil {
			t.Fatal(err)
		}
	}
	if err := pipe.Close(); err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if snap.Counters["serve_seeds_total"] == 0 {
		t.Error("no speculative decisions were seeded")
	}
	if snap.Counters["core_apply_adopted_total"] == 0 && snap.Counters["core_decision_cache_hits_total"] == 0 {
		t.Error("no speculation was consumed at commit time (neither adoption nor cache hit)")
	}
	if snap.Counters["serve_ops_committed_total"] != n {
		t.Errorf("serve_ops_committed_total = %d, want %d", snap.Counters["serve_ops_committed_total"], n)
	}
	if b := snap.Counters["serve_batches_total"]; b == 0 || b > n {
		t.Errorf("serve_batches_total = %d, want within [1, %d]", b, n)
	}
}
