// Package serve puts a throughput pipeline in front of a durable
// store.Session.
//
// The store session is strictly serial: each Apply decides, applies,
// journals, and fsyncs before the next op may start, so throughput is
// bounded by one fsync per op. This package keeps the serial semantics
// visible to every submitter while overlapping the two dominant costs:
//
//   - Group commit: a committer goroutine drains a bounded submit queue
//     and applies whatever is waiting as ONE store batch — one journal
//     write, one fsync (store.Session.ApplyBatchCtx). A submitter's
//     Apply returns only after the fsync covering its op, so per-op
//     durability is unchanged; only the fsync is shared.
//
//   - Pipelined decide/commit: a decider goroutine runs the CPU-bound
//     chase for queued ops speculatively against a scratch core.Session
//     (a copy-on-write clone of the database) while the committer is
//     blocked in the IO-bound fsync of the previous batch. Speculative
//     decisions are seeded into the real session's decision cache keyed
//     by the exact view version they were computed against, so the
//     committer's authoritative decide is a cache hit when the
//     speculation was right and an ordinary recompute when it was not.
//
//   - Re-validation: decisions are applied in sequence order by the
//     committer against the real session; the cache key (view version,
//     op) is the cheap re-validation — a stale speculation simply
//     misses. After a batch commits, predicted outcomes are compared
//     with actual ones; any mismatch (possible only if a decide were
//     impure — it is a safety net, not an expected path) invalidates
//     the decision cache, rebuilds the scratch session from the
//     committed database, and bumps a generation counter so in-flight
//     stale speculations cannot re-seed the cache.
//
// Decide outcomes are byte-identical to a serial session processing the
// same ops in the same order: the committer is the single authority and
// seeds only redirect where the chase runs, never what it concludes.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/store"
)

// ErrClosed is returned by Apply variants after Close.
var ErrClosed = errors.New("serve: pipeline closed")

// Options tunes the pipeline. The zero value is ready to use.
type Options struct {
	// MaxBatch caps how many ops share one journal fsync. Default 32.
	MaxBatch int
	// QueueDepth bounds the submit queue; submitters block (or fail on
	// context cancellation) when it is full. Default 4×MaxBatch.
	QueueDepth int
}

func (o Options) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return 32
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 4 * o.maxBatch()
}

// request is one submitted op in flight through the pipeline.
type request struct {
	ctx context.Context
	op  core.UpdateOp
	// done is buffered (size 1) so neither goroutine ever blocks on an
	// acknowledgement.
	done chan result

	// Speculation results, written by the decider, read by the
	// committer. speculated is false when the scratch session is
	// degraded (see resync) and the committer should skip comparison.
	speculated  bool
	predApplied bool

	// For a successfully speculated apply, the scratch session's
	// decision, post-op database ref (COW — never mutated after the
	// ref is taken), and the real-session version the op was
	// speculated at. The committer hands these to
	// store.Session.ApplySpeculatedBatchCtx so the authoritative apply
	// adopts the pre-computed state after cheap re-validation instead
	// of repeating the full decide/translate/verify.
	specDecision *core.Decision
	specDB       *relation.Relation
	specVer      uint64
}

type result struct {
	d   *core.Decision
	err error
}

// batch is the decider→committer handoff: requests whose speculation
// did not fail outright, stamped with the decider generation that
// speculated them.
type batch struct {
	reqs []*request
	gen  uint64
}

// resyncMsg carries the authoritative database to the decider after a
// divergence, so the scratch session restarts from committed state.
type resyncMsg struct {
	db  *relation.Relation
	ver uint64
	gen uint64
}

// Pending is the handle returned by ApplyAsync.
type Pending struct {
	done chan result
	res  result
	once sync.Once
}

// Wait blocks until the op's fate is decided and durable (or failed)
// and returns the same values a synchronous Apply would have.
func (p *Pending) Wait() (*core.Decision, error) {
	p.once.Do(func() { p.res = <-p.done })
	return p.res.d, p.res.err
}

// Pipeline serves concurrent update submissions over one store.Session.
// The underlying session is never touched concurrently: the decider
// goroutine owns a scratch clone, the committer goroutine owns the real
// session, and they meet only through channels and the (concurrency-
// safe) decision cache.
type Pipeline struct {
	st   *store.Session
	opts Options

	// mu serializes enqueue against Close: submitters send on submit
	// under RLock after checking closed; Close flips closed under the
	// write lock, so once Close holds it no further sends can start and
	// the quit signal finds a drainable queue.
	mu     sync.RWMutex
	closed bool

	submit chan *request
	commit chan *batch
	resync chan resyncMsg
	quit   chan struct{}
	done   chan struct{} // closed when the committer exits

	// genWanted is bumped by the committer on divergence; the decider
	// seeds the decision cache only while its local generation matches,
	// and the committer re-invalidates before applying any stale-
	// generation batch, so no stale seed can survive to a commit.
	genWanted atomic.Uint64

	// broken latches the first ErrSessionBroken; later submissions fail
	// fast while the pipeline keeps draining so Close can finish.
	broken atomic.Pointer[brokenState]
}

type brokenState struct{ err error }

// New starts the pipeline's decider and committer goroutines over st.
// The caller must not use st directly until Close returns.
func New(st *store.Session, opts Options) (*Pipeline, error) {
	p := &Pipeline{
		st:     st,
		opts:   opts,
		submit: make(chan *request, opts.queueDepth()),
		// A couple of batches of slack keeps the decider speculating
		// while the committer sits in fsync, without letting memory run
		// far ahead of disk.
		commit: make(chan *batch, 2),
		resync: make(chan resyncMsg, 1),
		quit:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	scratch, err := core.NewSession(st.Pair(), st.Database())
	if err != nil {
		return nil, fmt.Errorf("serve: scratch session: %w", err)
	}
	// The scratch mirrors the store's incremental setting so speculated
	// and committed decides exercise the same path.
	scratch.SetIncremental(st.IncrementalEnabled())
	go p.decider(scratch, st.ViewVersion())
	go p.committer()
	return p, nil
}

func (p *Pipeline) brokenErr() error {
	if b := p.broken.Load(); b != nil {
		return b.err
	}
	return nil
}

// Apply submits one op and blocks until it is decided and durable.
func (p *Pipeline) Apply(op core.UpdateOp) (*core.Decision, error) {
	return p.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply with a context bounding the queue wait and the
// speculative decide. Once an op reaches the commit phase it runs to
// completion regardless of ctx: its fate is shared with a batch.
func (p *Pipeline) ApplyCtx(ctx context.Context, op core.UpdateOp) (*core.Decision, error) {
	pend, err := p.ApplyAsync(ctx, op)
	if err != nil {
		return nil, err
	}
	return pend.Wait()
}

// ApplyAsync enqueues op and returns immediately with a Pending handle;
// submitting a window of ops before waiting is how a single client gets
// group commit (ops waiting together share an fsync). The returned
// error is non-nil only when the op was never enqueued.
func (p *Pipeline) ApplyAsync(ctx context.Context, op core.UpdateOp) (*Pending, error) {
	if err := p.brokenErr(); err != nil {
		return nil, fmt.Errorf("%w: %v", store.ErrSessionBroken, err)
	}
	r := &request{ctx: ctx, op: op, done: make(chan result, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	// Block in the send holding the read lock. The decider drains the
	// queue continuously (it stops only after quit, which Close signals
	// only once it gets the write lock — i.e. after this send finishes),
	// so a full queue delays Close, it cannot deadlock it.
	select {
	case p.submit <- r:
		p.mu.RUnlock()
		if m := svmetrics.Load(); m != nil {
			m.submitted.Inc()
		}
		return &Pending{done: r.done}, nil
	case <-ctx.Done():
		p.mu.RUnlock()
		return nil, ctx.Err()
	}
}

// Close stops accepting submissions, drains every op already accepted
// (each still gets its decided-and-durable acknowledgement), shuts both
// goroutines down, and returns the broken-session error if the store
// failed along the way. It does not close the store session.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		close(p.quit)
	}
	<-p.done
	return p.brokenErr()
}

// decider forms batches from the submit queue and speculates their
// decisions on the scratch session while the committer fsyncs earlier
// batches. offset aligns scratch view versions with the real session's:
// real version = scratch version + offset, maintained across resyncs.
func (p *Pipeline) decider(scratch *core.Session, offset uint64) {
	defer close(p.commit)
	gen := p.genWanted.Load()
	for {
		var first *request
		select {
		case first = <-p.submit:
		case <-p.quit:
			// closed was set before quit, and every in-flight send
			// finished before Close could take the write lock — the
			// queue can only shrink now. Drain it.
			for {
				select {
				case r := <-p.submit:
					scratch, offset, gen = p.speculate(scratch, offset, gen, []*request{r})
				default:
					return
				}
			}
		}
		reqs := []*request{first}
	fill:
		for len(reqs) < p.opts.maxBatch() {
			select {
			case r := <-p.submit:
				reqs = append(reqs, r)
			default:
				break fill
			}
		}
		if m := svmetrics.Load(); m != nil {
			m.queueDepth.Observe(float64(len(p.submit)))
		}
		scratch, offset, gen = p.speculate(scratch, offset, gen, reqs)
	}
}

// speculate runs the chase for each request against the scratch
// session, seeds the real session's decision cache, and hands the batch
// to the committer. It returns the (possibly resynced) scratch state.
func (p *Pipeline) speculate(scratch *core.Session, offset, gen uint64, reqs []*request) (*core.Session, uint64, uint64) {
	// Pick up a pending resync before deciding anything: after a
	// divergence the scratch state is untrustworthy.
	select {
	case msg := <-p.resync:
		scratch, offset, gen = p.applyResync(msg)
	default:
	}
	if err := p.brokenErr(); err != nil {
		for _, r := range reqs {
			r.done <- result{err: fmt.Errorf("%w: %v", store.ErrSessionBroken, err)}
		}
		return scratch, offset, gen
	}
	m := svmetrics.Load()
	var live []*request
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			// Cancelled while queued: never reached the store, exactly
			// as a serial ApplyCtx would have failed before deciding.
			r.done <- result{err: err}
			continue
		}
		if scratch == nil {
			// Degraded: no speculation, the committer decides cold.
			live = append(live, r)
			continue
		}
		ver := scratch.ViewVersion() + offset
		d, err := scratch.ApplyCtx(r.ctx, r.op)
		switch {
		case err == nil:
			r.speculated, r.predApplied = true, true
			r.specDecision, r.specDB, r.specVer = d, scratch.StateRef(), ver
		case errors.Is(err, core.ErrRejected):
			r.speculated, r.predApplied = true, false
		default:
			// Budget trip or internal error: the op never touched the
			// scratch database, and the real session never sees it, so
			// the two stay aligned. Fail the submitter directly.
			r.done <- result{d: d, err: err}
			continue
		}
		// Seed only while our speculation basis is current; the check
		// races with the committer's bump, but any seed that slips
		// through is wiped by the committer's pre-apply invalidation of
		// stale-generation batches.
		if d != nil && gen == p.genWanted.Load() {
			p.st.SeedDecision(ver, r.op, d)
			if m != nil {
				m.seeded.Inc()
			}
		}
		live = append(live, r)
	}
	if len(live) > 0 {
		p.commit <- &batch{reqs: live, gen: gen}
	}
	return scratch, offset, gen
}

// applyResync rebuilds the scratch session from the committed database
// the committer handed over. On failure the decider degrades to no
// speculation (scratch nil) — the pipeline still groups commits, it
// just stops overlapping the chase with fsync.
func (p *Pipeline) applyResync(msg resyncMsg) (*core.Session, uint64, uint64) {
	scratch, err := core.NewSession(p.st.Pair(), msg.db)
	if err != nil {
		return nil, 0, msg.gen
	}
	scratch.SetIncremental(p.st.IncrementalEnabled())
	return scratch, msg.ver, msg.gen
}

// committer applies batches to the real store session in order: one
// ApplyBatchCtx per batch means one journal write and one fsync shared
// by every op in it. Submitters are acknowledged only after that fsync.
func (p *Pipeline) committer() {
	defer close(p.done)
	for b := range p.commit {
		if err := p.brokenErr(); err != nil {
			for _, r := range b.reqs {
				r.done <- result{err: fmt.Errorf("%w: %v", store.ErrSessionBroken, err)}
			}
			continue
		}
		stale := b.gen != p.genWanted.Load()
		if stale {
			// The batch was speculated against a pre-divergence scratch;
			// wipe any seeds it planted so every decide recomputes
			// against authoritative state, and drop the maintained delta
			// state with them — it may have been advanced by adopted
			// pre-divergence speculations.
			p.st.InvalidateDecisions()
			p.st.InvalidateDeltas()
		}
		ops := make([]store.SpeculatedOp, len(b.reqs))
		for i, r := range b.reqs {
			ops[i] = store.SpeculatedOp{Op: r.op}
			// Offer the speculated state only while the speculation
			// basis is current; AdoptSpeculated independently re-checks
			// the version and the complement, so a stale offer can only
			// fall back to the full apply, never corrupt it.
			if !stale && r.specDB != nil {
				ops[i].Decision = r.specDecision
				ops[i].DB = r.specDB
				ops[i].FromVersion = r.specVer
			}
		}
		// context.Background(): per-op contexts bounded the queue wait
		// and the speculative decide; a batch that has reached the
		// journal phase must not be torn apart by one member's deadline.
		items, err := p.st.ApplySpeculatedBatchCtx(context.Background(), ops)
		m := svmetrics.Load()
		if err != nil {
			p.broken.CompareAndSwap(nil, &brokenState{err: err})
			for i, r := range b.reqs {
				if i < len(items) {
					r.done <- result{d: items[i].Decision, err: batchItemErr(items[i], err)}
				} else {
					r.done <- result{err: err}
				}
			}
			continue
		}
		diverged := false
		for i, r := range b.reqs {
			it := items[i]
			applied := it.Err == nil
			if r.speculated && applied != r.predApplied {
				diverged = true
			}
			r.done <- result{d: it.Decision, err: it.Err}
		}
		if m != nil {
			m.batches.Inc()
			m.committed.Add(int64(len(b.reqs)))
			m.batchRecords.Observe(float64(len(b.reqs)))
		}
		if diverged && !stale {
			if m != nil {
				m.divergences.Inc()
			}
			// Order matters: bump the generation first so the decider
			// stops seeding, then wipe whatever it already planted —
			// decision seeds and maintained delta state alike.
			p.genWanted.Add(1)
			p.st.InvalidateDecisions()
			p.st.InvalidateDeltas()
			msg := resyncMsg{db: p.st.Database(), ver: p.st.ViewVersion(), gen: p.genWanted.Load()}
			// Overwrite any pending resync: only the newest state counts.
			select {
			case <-p.resync:
			default:
			}
			p.resync <- msg
		}
	}
}

// batchItemErr reports the per-op error to surface when the batch call
// itself failed: an op with a clean item was applied in memory but its
// durability is indeterminate, which is exactly ErrSessionBroken.
func batchItemErr(it store.BatchItem, batchErr error) error {
	if it.Err != nil {
		return it.Err
	}
	return batchErr
}
