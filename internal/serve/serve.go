// Package serve puts a throughput pipeline in front of a durable
// store.Session.
//
// The store session is strictly serial: each Apply decides, applies,
// journals, and fsyncs before the next op may start, so throughput is
// bounded by one fsync per op. This package keeps the serial semantics
// visible to every submitter while overlapping the two dominant costs:
//
//   - Group commit: a committer goroutine drains a bounded submit queue
//     and applies whatever is waiting as ONE store batch — one journal
//     write, one fsync (store.Session.ApplyBatchCtx). A submitter's
//     Apply returns only after the fsync covering its op, so per-op
//     durability is unchanged; only the fsync is shared.
//
//   - Pipelined decide/commit: a decider goroutine runs the CPU-bound
//     chase for queued ops speculatively against a scratch core.Session
//     (a copy-on-write clone of the database) while the committer is
//     blocked in the IO-bound fsync of the previous batch. Speculative
//     decisions are seeded into the real session's decision cache keyed
//     by the exact view version they were computed against, so the
//     committer's authoritative decide is a cache hit when the
//     speculation was right and an ordinary recompute when it was not.
//
//   - Re-validation: decisions are applied in sequence order by the
//     committer against the real session; the cache key (view version,
//     op) is the cheap re-validation — a stale speculation simply
//     misses. After a batch commits, predicted outcomes are compared
//     with actual ones; any mismatch (possible only if a decide were
//     impure — it is a safety net, not an expected path) invalidates
//     the decision cache, rebuilds the scratch session from the
//     committed database, and bumps a generation counter so in-flight
//     stale speculations cannot re-seed the cache.
//
// Decide outcomes are byte-identical to a serial session processing the
// same ops in the same order: the committer is the single authority and
// seeds only redirect where the chase runs, never what it concludes.
//
// # Fault domains and self-healing
//
// Every error crossing the serve↔store boundary is classified transient
// or permanent (store.Classify, this package's Classify). The pipeline
// turns that taxonomy into recovery policy, organized as three fault
// domains:
//
//   - Decide domain (decider goroutine): a transient speculative-decide
//     failure (budget trip, injected fault) is retried in place up to
//     Options.OpRetries times with deterministic capped exponential
//     backoff; permanent failures (untranslatable update) reject only
//     the offending op.
//
//   - Commit domain (committer goroutine): a failed batch breaks the
//     store session (memory ran ahead of disk). With Options.Resurrect
//     set, the committer quarantines the broken session, replays
//     recovery into a fresh one, re-verifies which acknowledged records
//     actually survived (they must — losing one latches the pipeline
//     permanently), resyncs the decider's speculative state, re-journals
//     the un-acked suffix, and resumes the queue. Acked ops survive
//     byte-identically; un-acked ops are retried or rejected, never
//     silently dropped. Without Resurrect the first break latches the
//     pipeline (the legacy behavior).
//
//   - Admission domain (submitters): the submit queue is bounded.
//     Options.ShedOnFull rejects new ops with ErrShed instead of
//     blocking when it is full; Options.QueueDeadlineNS sheds ops that
//     aged out while queued. Reads never enter the queue at all —
//     View serves the last committed materialized view lock-free, so
//     updates hold strict admission priority over reads and a healing
//     (degraded) pipeline keeps serving reads while writes wait.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/store"
)

// ErrClosed is returned by Apply variants after Close.
var ErrClosed = errors.New("serve: pipeline closed")

// Options tunes the pipeline. The zero value is ready to use.
type Options struct {
	// MaxBatch caps how many ops share one journal fsync. Default 32.
	MaxBatch int
	// QueueDepth bounds the submit queue; submitters block (or fail on
	// context cancellation) when it is full. Default 4×MaxBatch.
	QueueDepth int

	// ShedOnFull makes ApplyAsync non-blocking: a full submit queue
	// returns ErrShed immediately instead of blocking the submitter.
	ShedOnFull bool
	// QueueDeadlineNS sheds an op (ErrShed) if it waited in the submit
	// queue longer than this before the decider reached it. 0 disables
	// age-based shedding.
	QueueDeadlineNS int64

	// OpRetries caps in-place retries of transient speculative-decide
	// failures (budget trips, injected faults). Default 2; negative
	// disables retries.
	OpRetries int

	// Resurrect enables self-healing: when a batch breaks the store
	// session, the committer quarantines it and calls Resurrect —
	// typically a closure over store.Recover on the same FS — for a
	// fresh session continuing the same journal. Nil keeps the legacy
	// behavior: the first broken session latches the pipeline.
	Resurrect func() (*store.Session, error)
	// ResurrectRetries caps resurrection attempts per healing episode
	// (each preceded by a backoff sleep). Default 4.
	ResurrectRetries int

	// BackoffBaseNS and BackoffCapNS shape the capped exponential retry
	// backoff for both fault domains. Defaults 1ms and 64ms.
	BackoffBaseNS int64
	BackoffCapNS  int64
	// Seed fixes the backoff jitter streams; the same seed, workload,
	// and fault schedule reproduce identical retry timings.
	Seed uint64
	// Clock is the time source for backoff sleeps and queue deadlines.
	// Nil means the real monotonic clock (obs.SystemClock); tests and
	// the chaos harness inject an obs.ManualClock for instant,
	// fully-deterministic schedules.
	Clock obs.Clock
}

func (o Options) maxBatch() int {
	if o.MaxBatch > 0 {
		return o.MaxBatch
	}
	return 32
}

func (o Options) queueDepth() int {
	if o.QueueDepth > 0 {
		return o.QueueDepth
	}
	return 4 * o.maxBatch()
}

func (o Options) opRetries() int {
	if o.OpRetries > 0 {
		return o.OpRetries
	}
	if o.OpRetries < 0 {
		return 0
	}
	return 2
}

func (o Options) resurrectRetries() int {
	if o.ResurrectRetries > 0 {
		return o.ResurrectRetries
	}
	return 4
}

func (o Options) backoffBase() int64 {
	if o.BackoffBaseNS > 0 {
		return o.BackoffBaseNS
	}
	return 1_000_000 // 1ms
}

func (o Options) backoffCap() int64 {
	if o.BackoffCapNS > 0 {
		return o.BackoffCapNS
	}
	return 64_000_000 // 64ms
}

func (o Options) clock() obs.Clock {
	if o.Clock != nil {
		return o.Clock
	}
	return obs.SystemClock()
}

// request is one submitted op in flight through the pipeline.
type request struct {
	ctx context.Context
	op  core.UpdateOp
	// done is buffered (size 1) so neither goroutine ever blocks on an
	// acknowledgement.
	done chan result
	// enqNS is the clock reading at enqueue, for queue-deadline shedding.
	enqNS int64

	// excl marks an exclusive-access request (see Exclusive): instead of
	// carrying an op it asks the committer to park and hand its store
	// session to the caller. Buffered (cap 1) so the grant send never
	// blocks. nil for ordinary ops.
	excl chan *ExclusiveGrant

	// Speculation results, written by the decider, read by the
	// committer. speculated is false when the scratch session is
	// degraded (see resync) and the committer should skip comparison.
	speculated  bool
	predApplied bool

	// For a successfully speculated apply, the scratch session's
	// decision, post-op database ref (COW — never mutated after the
	// ref is taken), and the real-session version the op was
	// speculated at. The committer hands these to
	// store.Session.ApplySpeculatedBatchCtx so the authoritative apply
	// adopts the pre-computed state after cheap re-validation instead
	// of repeating the full decide/translate/verify.
	specDecision *core.Decision
	specDB       *relation.Relation
	specVer      uint64
}

type result struct {
	d   *core.Decision
	err error
}

// ack delivers the op's fate to the submitter. done is buffered with
// capacity one and each request is acknowledged exactly once — a
// request is owned by a single goroutine at a time (submitter → decider
// → committer), and ownership transfers only after the owner either
// acked it or handed it on — so the send below can never block.
func (r *request) ack(res result) {
	//constvet:allow deadlineflow -- done is buffered (cap 1) and each request is acked exactly once; the send cannot block
	r.done <- res
}

// batch is the decider→committer handoff: requests whose speculation
// did not fail outright, stamped with the decider generation that
// speculated them.
type batch struct {
	reqs []*request
	gen  uint64
}

// resyncMsg carries the authoritative database to the decider after a
// divergence or a resurrection, so the scratch session restarts from
// committed state.
type resyncMsg struct {
	db  *relation.Relation
	ver uint64
	gen uint64
}

// Pending is the handle returned by ApplyAsync.
type Pending struct {
	done chan result
	res  result
	once sync.Once
}

// Wait blocks until the op's fate is decided and durable (or failed)
// and returns the same values a synchronous Apply would have.
func (p *Pending) Wait() (*core.Decision, error) {
	//constvet:allow deadlineflow -- Wait is the submitter's explicit park point; the committer acks every accepted op even while draining after Close, so the recv always terminates
	p.once.Do(func() { p.res = <-p.done })
	return p.res.d, p.res.err
}

// publishedView is the committer's read-side handoff: the materialized
// view as of a committed sequence number, swapped in atomically after
// each batch so readers never block on (or observe) a mid-batch state.
type publishedView struct {
	view *relation.Relation
	seq  uint64
}

// Pipeline serves concurrent update submissions over one store.Session.
// The underlying session is never touched concurrently: the decider
// goroutine owns a scratch clone, the committer goroutine owns the real
// session, and they meet only through channels and the (concurrency-
// safe) decision cache.
type Pipeline struct {
	// stPtr is the session currently behind the pipeline; resurrection
	// swaps it. Only the committer stores; everyone loads via store().
	stPtr atomic.Pointer[store.Session]
	opts  Options
	clock obs.Clock

	// mu serializes enqueue against Close: submitters send on submit
	// under RLock after checking closed; Close flips closed under the
	// write lock, so once Close holds it no further sends can start and
	// the quit signal finds a drainable queue.
	mu     sync.RWMutex
	closed bool

	submit chan *request
	commit chan *batch
	resync chan resyncMsg
	quit   chan struct{}
	done   chan struct{} // closed when the committer exits

	// genWanted is bumped by the committer on divergence and on
	// resurrection; the decider seeds the decision cache only while its
	// local generation matches, and the committer re-invalidates before
	// applying any stale-generation batch, so no stale seed can survive
	// to a commit — not even across a session swap whose view versions
	// numerically collide with the old session's.
	genWanted atomic.Uint64

	// broken latches the first unhealable error; later submissions fail
	// fast while the pipeline keeps draining so Close can finish.
	broken atomic.Pointer[brokenState]

	// degraded is true while the store is healing (or latched broken):
	// writes queue or fail, View keeps serving the last published view.
	degraded atomic.Bool

	// viewWanted turns on read-side publishing lazily: until the first
	// View call the committer skips the per-batch publish entirely, so
	// write-only workloads pay nothing for the read path.
	viewWanted atomic.Bool
	pubView    atomic.Pointer[publishedView]

	// decBackoff paces decide-domain retries (owned by the decider);
	// healBackoff paces resurrection attempts (owned by the committer).
	// Decorrelated seeds keep the two jitter streams independent.
	decBackoff  *backoff
	healBackoff *backoff
}

type brokenState struct{ err error }

// New starts the pipeline's decider and committer goroutines over st.
// The caller must not use st directly until Close returns — and after a
// resurrection st is dead; use Store for the live session.
func New(st *store.Session, opts Options) (*Pipeline, error) {
	p := &Pipeline{
		opts:   opts,
		clock:  opts.clock(),
		submit: make(chan *request, opts.queueDepth()),
		// A couple of batches of slack keeps the decider speculating
		// while the committer sits in fsync, without letting memory run
		// far ahead of disk.
		commit:      make(chan *batch, 2),
		resync:      make(chan resyncMsg, 1),
		quit:        make(chan struct{}),
		done:        make(chan struct{}),
		decBackoff:  newBackoff(opts.backoffBase(), opts.backoffCap(), opts.Seed),
		healBackoff: newBackoff(opts.backoffBase(), opts.backoffCap(), opts.Seed^0x9e3779b97f4a7c15),
	}
	p.stPtr.Store(st)
	scratch, err := core.NewSession(st.Pair(), st.Database())
	if err != nil {
		return nil, fmt.Errorf("serve: scratch session: %w", err)
	}
	// The scratch mirrors the store's incremental setting so speculated
	// and committed decides exercise the same path.
	scratch.SetIncremental(st.IncrementalEnabled())
	//constvet:allow rawgo -- the decider goroutine IS the pipeline's concurrency design: it overlaps the chase with the committer's fsync
	go p.decider(scratch, st.ViewVersion())
	//constvet:allow rawgo -- the committer goroutine IS the pipeline's concurrency design: it owns the real session and serializes durability
	go p.committer()
	return p, nil
}

// store returns the live session (it changes across resurrections).
func (p *Pipeline) store() *store.Session { return p.stPtr.Load() }

// Store exposes the session currently behind the pipeline: after a
// resurrection the session New was given is quarantined and this is the
// only valid handle. Call it for read-style access (Database, View,
// Seq) after Close, or between operations; using it to Apply while the
// pipeline runs violates the single-writer discipline.
func (p *Pipeline) Store() *store.Session { return p.store() }

// Degraded reports whether the pipeline is in read-only degraded mode:
// the store is healing (or latched broken), and View keeps serving the
// last committed view while writes wait or fail.
func (p *Pipeline) Degraded() bool { return p.degraded.Load() }

// View returns the most recently committed materialized view (nil until
// the first commit after the read path warms up) and whether the
// pipeline is currently degraded. Reads never enter the submit queue —
// admission control applies to updates only — so View stays available,
// and lock-free, throughout overload and healing.
func (p *Pipeline) View() (*relation.Relation, bool) {
	p.viewWanted.Store(true)
	degraded := p.degraded.Load()
	if degraded {
		if m := svmetrics.Load(); m != nil {
			m.degradedReads.Inc()
		}
	}
	if pv := p.pubView.Load(); pv != nil {
		return pv.view, degraded
	}
	return nil, degraded
}

// Published is View plus provenance: it returns the most recently
// committed materialized view, the store sequence number it is current
// as of, and whether the pipeline is degraded. The network front-end
// uses the seq to stamp read responses so a client can correlate a
// read with the acks it has seen.
func (p *Pipeline) Published() (*relation.Relation, uint64, bool) {
	p.viewWanted.Store(true)
	degraded := p.degraded.Load()
	if degraded {
		if m := svmetrics.Load(); m != nil {
			m.degradedReads.Inc()
		}
	}
	if pv := p.pubView.Load(); pv != nil {
		return pv.view, pv.seq, degraded
	}
	return nil, 0, degraded
}

// publishView hands the committed view to the read side. Committer
// goroutine only. The published relation is the session's maintained
// materialized view, patched per op by the apply paths (delta-scoped
// view refresh): a batch's publish costs O(|batch|), not a full
// re-projection, and the ref stays immutable — the session copies on
// write before its next patch.
func (p *Pipeline) publishView(st *store.Session) {
	if !p.viewWanted.Load() {
		return
	}
	p.pubView.Store(&publishedView{view: st.ViewRef(), seq: st.Seq()})
}

func (p *Pipeline) brokenErr() error {
	if b := p.broken.Load(); b != nil {
		return b.err
	}
	return nil
}

// Apply submits one op and blocks until it is decided and durable.
func (p *Pipeline) Apply(op core.UpdateOp) (*core.Decision, error) {
	return p.ApplyCtx(context.Background(), op)
}

// ApplyCtx is Apply with a context bounding the queue wait and the
// speculative decide. Once an op reaches the commit phase it runs to
// completion regardless of ctx: its fate is shared with a batch.
func (p *Pipeline) ApplyCtx(ctx context.Context, op core.UpdateOp) (*core.Decision, error) {
	pend, err := p.ApplyAsync(ctx, op)
	if err != nil {
		return nil, err
	}
	return pend.Wait()
}

// ApplyAsync enqueues op and returns immediately with a Pending handle;
// submitting a window of ops before waiting is how a single client gets
// group commit (ops waiting together share an fsync). The returned
// error is non-nil only when the op was never enqueued; with
// Options.ShedOnFull a saturated queue returns ErrShed instead of
// blocking.
func (p *Pipeline) ApplyAsync(ctx context.Context, op core.UpdateOp) (*Pending, error) {
	if err := p.brokenErr(); err != nil {
		return nil, fmt.Errorf("%w: %w", store.ErrSessionBroken, err)
	}
	r := &request{ctx: ctx, op: op, done: make(chan result, 1), enqNS: p.clock.NowNS()}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	if p.opts.ShedOnFull {
		// Bounded admission: never block the submitter, shed instead.
		select {
		case p.submit <- r:
			p.mu.RUnlock()
			if m := svmetrics.Load(); m != nil {
				m.submitted.Inc()
			}
			return &Pending{done: r.done}, nil
		default:
			p.mu.RUnlock()
			if m := svmetrics.Load(); m != nil {
				m.shed.Inc()
			}
			return nil, ErrShed
		}
	}
	// Block in the send holding the read lock. The decider drains the
	// queue continuously (it stops only after quit, which Close signals
	// only once it gets the write lock — i.e. after this send finishes),
	// so a full queue delays Close, it cannot deadlock it.
	//constvet:allow lockhold -- RLock only fences Close; the decider drains submit without touching mu, so the send makes progress while readers hold the lock
	select {
	case p.submit <- r:
		p.mu.RUnlock()
		if m := svmetrics.Load(); m != nil {
			m.submitted.Inc()
		}
		return &Pending{done: r.done}, nil
	case <-ctx.Done():
		p.mu.RUnlock()
		return nil, ctx.Err()
	}
}

// Waiter is the part of Pending a front-end needs: anything whose fate
// can be awaited. The sharded layer returns its own pendings for
// cross-shard ops, so callers that mix single- and multi-shard
// submissions program against this interface.
type Waiter interface {
	Wait() (*core.Decision, error)
}

// ExclusiveGrant is exclusive ownership of the pipeline's store
// session, handed out by Exclusive. While a grant is held the committer
// is parked: no batch commits, no resurrection, no published-view
// update happens until Release. The holder may read the session and
// apply operations through it (each Apply journals and fsyncs exactly
// as the committer's batches do); the serial-session discipline is the
// holder's to keep.
type ExclusiveGrant struct {
	st   *store.Session
	done chan exclRelease
}

// exclRelease is the holder→committer handoff ending a grant: a
// session swap (Release) or a terminal verdict (Abandon).
type exclRelease struct {
	ns      *store.Session
	abandon error
}

// Session returns the live store session the grant covers.
func (g *ExclusiveGrant) Session() *store.Session { return g.st }

// Release ends the grant and resumes the pipeline. A non-nil ns
// replaces the pipeline's session — the holder resurrected it after
// breaking it — exactly as the committer's own healing would have.
// Either way the decision memo and delta state are invalidated and the
// decider is resynced from authoritative state, since the holder may
// have changed the database under the speculator. Release must be
// called exactly once per grant.
func (g *ExclusiveGrant) Release(ns *store.Session) {
	//constvet:allow deadlineflow -- done is buffered (cap 1) and each grant ends exactly once; the send cannot block
	g.done <- exclRelease{ns: ns}
}

// Abandon ends the grant by latching the pipeline broken with err:
// queued and future ops fail fast with the error and nothing further
// touches the store until a fresh recovery reopens it. The two-phase
// cross-shard path uses it to fence a shard whose commit outcome is
// genuinely in doubt — applying any later op could collide with what
// recovery resolution will redo. Call exactly once, instead of Release.
func (g *ExclusiveGrant) Abandon(err error) {
	//constvet:allow deadlineflow -- done is buffered (cap 1) and each grant ends exactly once; the send cannot block
	g.done <- exclRelease{abandon: err}
}

// Exclusive enqueues a request for exclusive access to the store
// session and blocks until every op ahead of it has committed and the
// committer parks. The two-phase cross-shard commit in internal/shard
// uses it to fence a shard while intent/commit records and op halves
// land on several shards atomically. ctx bounds the queue wait the same
// way it does for ApplyAsync; once the request is admitted the grant
// always arrives and the caller must end it (Release or Abandon).
func (p *Pipeline) Exclusive(ctx context.Context) (*ExclusiveGrant, error) {
	if err := p.brokenErr(); err != nil {
		return nil, fmt.Errorf("%w: %w", store.ErrSessionBroken, err)
	}
	r := &request{ctx: ctx, op: core.UpdateOp{}, done: make(chan result, 1),
		enqNS: p.clock.NowNS(), excl: make(chan *ExclusiveGrant, 1)}
	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		return nil, ErrClosed
	}
	if p.opts.ShedOnFull {
		select {
		case p.submit <- r:
			p.mu.RUnlock()
		default:
			p.mu.RUnlock()
			if m := svmetrics.Load(); m != nil {
				m.shed.Inc()
			}
			return nil, ErrShed
		}
	} else {
		//constvet:allow lockhold -- RLock only fences Close; the decider drains submit without touching mu, so the send makes progress while readers hold the lock
		select {
		case p.submit <- r:
			p.mu.RUnlock()
		case <-ctx.Done():
			p.mu.RUnlock()
			return nil, ctx.Err()
		}
	}
	// The grant or a terminal error always arrives: the decider forwards
	// or fails every admitted request, and the committer grants every
	// forwarded exclusive. Waiting on ctx here would leak the grant.
	//constvet:allow deadlineflow -- every admitted exclusive is either granted or acked with an error; abandoning the wait on ctx would orphan the grant and deadlock the committer
	select {
	case g := <-r.excl:
		return g, nil
	case res := <-r.done:
		return nil, res.err
	}
}

// Close stops accepting submissions, drains every op already accepted
// (each still gets its decided-and-durable acknowledgement), shuts both
// goroutines down, and returns the broken-session error if the store
// failed unhealably along the way. It does not close the store session.
func (p *Pipeline) Close() error {
	p.mu.Lock()
	already := p.closed
	p.closed = true
	p.mu.Unlock()
	if !already {
		close(p.quit)
	}
	<-p.done
	return p.brokenErr()
}

// decider forms batches from the submit queue and speculates their
// decisions on the scratch session while the committer fsyncs earlier
// batches. offset aligns scratch view versions with the real session's:
// real version = scratch version + offset, maintained across resyncs.
func (p *Pipeline) decider(scratch *core.Session, offset uint64) {
	defer close(p.commit)
	gen := p.genWanted.Load()
	for {
		var first *request
		select {
		case first = <-p.submit:
		case <-p.quit:
			// closed was set before quit, and every in-flight send
			// finished before Close could take the write lock — the
			// queue can only shrink now. Drain it.
			for {
				select {
				case r := <-p.submit:
					scratch, offset, gen = p.speculate(scratch, offset, gen, []*request{r})
				default:
					return
				}
			}
		}
		reqs := []*request{first}
	fill:
		for len(reqs) < p.opts.maxBatch() {
			select {
			case r := <-p.submit:
				reqs = append(reqs, r)
			default:
				break fill
			}
		}
		if m := svmetrics.Load(); m != nil {
			m.queueDepth.Observe(float64(len(p.submit)))
		}
		scratch, offset, gen = p.speculate(scratch, offset, gen, reqs)
	}
}

// speculate runs the chase for each request against the scratch
// session, seeds the real session's decision cache, and hands the batch
// to the committer. It returns the (possibly resynced) scratch state.
// Transient decide failures are retried in place with deterministic
// backoff — the decide domain's recovery policy.
func (p *Pipeline) speculate(scratch *core.Session, offset, gen uint64, reqs []*request) (*core.Session, uint64, uint64) {
	// Pick up a pending resync before deciding anything: after a
	// divergence or a resurrection the scratch state is untrustworthy.
	select {
	case msg := <-p.resync:
		scratch, offset, gen = p.applyResync(msg)
	default:
	}
	if err := p.brokenErr(); err != nil {
		for _, r := range reqs {
			r.ack(result{err: fmt.Errorf("%w: %w", store.ErrSessionBroken, err)})
		}
		return scratch, offset, gen
	}
	m := svmetrics.Load()
	var live []*request
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			// Cancelled while queued: never reached the store, exactly
			// as a serial ApplyCtx would have failed before deciding.
			r.ack(result{err: err})
			continue
		}
		if dl := p.opts.QueueDeadlineNS; dl > 0 && p.clock.NowNS()-r.enqNS > dl {
			// Aged out while queued: the queue is saturated past its
			// deadline, shed rather than decide work nobody is waiting
			// for at this latency.
			r.ack(result{err: ErrShed})
			if m != nil {
				m.shed.Inc()
			}
			continue
		}
		if r.excl != nil {
			// Exclusive access: flush what is already speculated so queue
			// order is preserved, then forward the request alone — the
			// committer grants it only after every earlier op committed.
			if len(live) > 0 {
				//constvet:allow deadlineflow -- same backpressure as the batch send below: the committer drains commit until the decider closes it
				p.commit <- &batch{reqs: live, gen: gen}
				live = nil
			}
			//constvet:allow deadlineflow -- same backpressure as the batch send below: the committer drains commit until the decider closes it
			p.commit <- &batch{reqs: []*request{r}, gen: gen}
			continue
		}
		if scratch == nil {
			// Degraded: no speculation, the committer decides cold.
			live = append(live, r)
			continue
		}
		var (
			ver uint64
			d   *core.Decision
			err error
		)
		for attempt := 0; ; attempt++ {
			ver = scratch.ViewVersion() + offset
			d, err = scratch.ApplyCtx(r.ctx, r.op)
			if err == nil || errors.Is(err, core.ErrRejected) {
				break
			}
			// A failed decide never touched the scratch database, so a
			// retry re-decides from exactly the state a serial session
			// would see. Only transient causes (budget trip, injected
			// fault) are worth the backoff.
			if attempt >= p.opts.opRetries() || r.ctx.Err() != nil ||
				classify(err) != store.ClassTransient {
				break
			}
			if m != nil {
				m.retries.Inc()
			}
			t0 := p.clock.NowNS()
			p.clock.Sleep(p.decBackoff.next())
			if m != nil {
				m.retryLatency.ObserveDuration(p.clock.NowNS() - t0)
			}
		}
		p.decBackoff.reset()
		switch {
		case err == nil:
			r.speculated, r.predApplied = true, true
			r.specDecision, r.specDB, r.specVer = d, scratch.StateRef(), ver
		case errors.Is(err, core.ErrRejected):
			r.speculated, r.predApplied = true, false
		default:
			// Permanent or retry-exhausted failure: the op never touched
			// the scratch database, and the real session never sees it,
			// so the two stay aligned. Fail the submitter directly.
			r.ack(result{d: d, err: err})
			continue
		}
		// Seed only while our speculation basis is current; the check
		// races with the committer's bump, but any seed that slips
		// through is wiped by the committer's pre-apply invalidation of
		// stale-generation batches.
		if d != nil && gen == p.genWanted.Load() {
			p.store().SeedDecision(ver, r.op, d)
			if m != nil {
				m.seeded.Inc()
			}
		}
		live = append(live, r)
	}
	if len(live) > 0 {
		// Intentional backpressure: a full commit channel means disk is
		// behind, and stalling the decider here is what bounds memory.
		//constvet:allow deadlineflow -- the committer drains commit until the decider closes it; the send stalls only while fsync is behind, it cannot park forever
		p.commit <- &batch{reqs: live, gen: gen}
	}
	return scratch, offset, gen
}

// applyResync rebuilds the scratch session from the committed database
// the committer handed over. On failure the decider degrades to no
// speculation (scratch nil) — the pipeline still groups commits, it
// just stops overlapping the chase with fsync.
func (p *Pipeline) applyResync(msg resyncMsg) (*core.Session, uint64, uint64) {
	scratch, err := core.NewSession(p.store().Pair(), msg.db)
	if err != nil {
		return nil, 0, msg.gen
	}
	scratch.SetIncremental(p.store().IncrementalEnabled())
	return scratch, msg.ver, msg.gen
}

// committer applies batches to the real store session in order: one
// ApplyBatchCtx per batch means one journal write and one fsync shared
// by every op in it. Submitters are acknowledged only after that fsync.
func (p *Pipeline) committer() {
	defer close(p.done)
	for b := range p.commit {
		p.commitBatch(b)
	}
}

func (p *Pipeline) commitBatch(b *batch) {
	if err := p.brokenErr(); err != nil {
		for _, r := range b.reqs {
			r.ack(result{err: fmt.Errorf("%w: %w", store.ErrSessionBroken, err)})
		}
		return
	}
	if len(b.reqs) == 1 && b.reqs[0].excl != nil {
		p.grantExclusive(b.reqs[0])
		return
	}
	st := p.store()
	stale := b.gen != p.genWanted.Load()
	if stale {
		// The batch was speculated against a pre-divergence (or pre-
		// resurrection) scratch; wipe any seeds it planted so every
		// decide recomputes against authoritative state, and drop the
		// maintained delta state with them — it may have been advanced
		// by adopted pre-divergence speculations.
		st.InvalidateDecisions()
		st.InvalidateDeltas()
	}
	ops := make([]store.SpeculatedOp, len(b.reqs))
	for i, r := range b.reqs {
		ops[i] = store.SpeculatedOp{Op: r.op}
		// Offer the speculated state only while the speculation
		// basis is current; AdoptSpeculated independently re-checks
		// the version and the complement, so a stale offer can only
		// fall back to the full apply, never corrupt it.
		if !stale && r.specDB != nil {
			ops[i].Decision = r.specDecision
			ops[i].DB = r.specDB
			ops[i].FromVersion = r.specVer
		}
	}
	// seq0 anchors loss accounting for the commit fault domain: after a
	// resurrection, recovered seq − seq0 tells exactly how many of this
	// batch's applied records made it to durable storage.
	seq0 := st.Seq()
	// context.Background(): per-op contexts bounded the queue wait
	// and the speculative decide; a batch that has reached the
	// journal phase must not be torn apart by one member's deadline.
	items, err := st.ApplySpeculatedBatchCtx(context.Background(), ops)
	m := svmetrics.Load()
	if err != nil {
		if p.opts.Resurrect == nil {
			p.latch(b.reqs, items, err)
			return
		}
		p.heal(st, b.reqs, items, seq0, err)
		return
	}
	diverged := false
	for i, r := range b.reqs {
		it := items[i]
		applied := it.Err == nil
		if r.speculated && applied != r.predApplied {
			diverged = true
		}
		r.ack(result{d: it.Decision, err: it.Err})
	}
	if m != nil {
		m.batches.Inc()
		m.committed.Add(int64(len(b.reqs)))
		m.batchRecords.Observe(float64(len(b.reqs)))
	}
	if diverged && !stale {
		if m != nil {
			m.divergences.Inc()
		}
		// Order matters: bump the generation first so the decider
		// stops seeding, then wipe whatever it already planted —
		// decision seeds and maintained delta state alike.
		p.genWanted.Add(1)
		st.InvalidateDecisions()
		st.InvalidateDeltas()
		p.postResync(resyncMsg{db: st.Database(), ver: st.ViewVersion(), gen: p.genWanted.Load()})
	}
	p.publishView(st)
}

// grantExclusive parks the committer for the duration of an exclusive
// grant: it hands the live session to the waiting Exclusive caller and
// blocks until Release. The holder may have mutated the database (and
// may even have swapped the session after breaking it), so resumption
// mirrors a resurrection: generation bump, memo/delta invalidation, and
// a decider resync from authoritative state. Committer goroutine only.
func (p *Pipeline) grantExclusive(r *request) {
	if err := r.ctx.Err(); err != nil {
		r.ack(result{err: err})
		return
	}
	st := p.store()
	g := &ExclusiveGrant{st: st, done: make(chan exclRelease, 1)}
	//constvet:allow deadlineflow -- excl is buffered (cap 1) and granted exactly once; the send cannot block
	r.excl <- g
	// Park until the holder releases. Exclusive's contract obliges every
	// granted caller to end the grant exactly once, so the receive
	// terminates.
	//constvet:allow deadlineflow -- the grant contract obliges the holder to Release or Abandon exactly once; parking the committer IS the exclusivity being granted
	rel := <-g.done
	if rel.abandon != nil {
		// The holder declared the shard unusable (in-doubt two-phase
		// outcome). Latch: queued and future ops fail fast, reads keep
		// serving the last published view.
		p.latch(nil, nil, rel.abandon)
		return
	}
	ns := rel.ns
	if ns != nil && ns != st {
		// The holder broke and resurrected the session (installSession
		// bumps the generation, invalidates, and resyncs the decider).
		if m := svmetrics.Load(); m != nil {
			m.resurrections.Inc()
		}
		p.installSession(ns)
		st = ns
	} else {
		p.genWanted.Add(1)
		st.InvalidateDecisions()
		st.InvalidateDeltas()
		p.postResync(resyncMsg{db: st.Database(), ver: st.ViewVersion(), gen: p.genWanted.Load()})
	}
	p.publishView(st)
}

// latch records the pipeline's terminal error and fails a batch's
// submitters the way the pre-healing pipeline did: an op with a clean
// item was applied in memory but its durability is indeterminate.
func (p *Pipeline) latch(reqs []*request, items []store.BatchItem, err error) {
	p.broken.CompareAndSwap(nil, &brokenState{err: err})
	p.degraded.Store(true)
	for i, r := range reqs {
		if i < len(items) {
			r.ack(result{d: items[i].Decision, err: batchItemErr(items[i], err)})
		} else {
			r.ack(result{err: err})
		}
	}
}

// heal is the commit domain's recovery policy: quarantine the broken
// session, resurrect from durable state, reconcile the failed batch
// against what actually survived, and resume. Committer goroutine only.
//
// The reconciliation invariant: reqs[i] aligns with items[i] for
// i < len(items); items with Err == nil were applied in memory and
// journaled in order, so exactly the first (recovered seq − seq0) of
// them are durable — those are acknowledged with their original
// decisions, byte-identically. Everything else is re-journaled on the
// fresh session (transient per-op errors and never-attempted ops
// included) or rejected (permanent per-op errors). A recovered seq
// below seq0 means an *acknowledged* op from an earlier batch is gone:
// that is unhealable data loss and latches the pipeline.
func (p *Pipeline) heal(st *store.Session, reqs []*request, items []store.BatchItem, seq0 uint64, batchErr error) {
	m := svmetrics.Load()
	p.degraded.Store(true)
	// Quarantine: the broken session never serves again; Close releases
	// its journal handle so the resurrected session can reopen the file.
	// Its own close error is unreachable state — the batch error is the
	// one that matters.
	_ = st.Close()
	for attempt := 0; attempt < p.opts.resurrectRetries(); attempt++ {
		if store.Classify(batchErr) == store.ClassPermanent {
			break // resurrection cannot cure a permanent cause
		}
		p.clock.Sleep(p.healBackoff.next())
		ns, rerr := p.opts.Resurrect()
		if rerr != nil {
			if store.Classify(rerr) == store.ClassPermanent {
				batchErr = rerr
				break
			}
			continue
		}
		if m != nil {
			m.resurrections.Inc()
		}
		newSeq := ns.Seq()
		if newSeq < seq0 {
			_ = ns.Close()
			batchErr = fmt.Errorf("%w: resurrection lost acknowledged ops (recovered seq %d < pre-batch seq %d)",
				store.ErrSessionBroken, newSeq, seq0)
			break
		}
		durable := int(newSeq - seq0)
		var retry []*request
		applied := 0
		for i, r := range reqs {
			if i >= len(items) {
				retry = append(retry, r) // never attempted by the failed batch
				continue
			}
			it := items[i]
			if it.Err == nil {
				applied++
				if applied <= durable {
					// On disk, replayed, re-verified: acknowledge with
					// the decision the failed batch computed.
					r.ack(result{d: it.Decision})
				} else {
					retry = append(retry, r)
				}
				continue
			}
			if classify(it.Err) == store.ClassTransient {
				retry = append(retry, r)
			} else {
				// Permanent per-op failure (rejection, illegal update):
				// reject only this op, the rest of the batch lives on.
				r.ack(result{d: it.Decision, err: it.Err})
			}
		}
		p.installSession(ns)
		if len(retry) == 0 {
			p.healed(ns)
			return
		}
		// Re-journal and re-fsync the un-acked suffix on the fresh
		// session, unspeculated: the speculated state predates the
		// resurrection.
		if m != nil {
			m.retries.Add(int64(len(retry)))
		}
		rops := make([]store.SpeculatedOp, len(retry))
		for i, r := range retry {
			rops[i] = store.SpeculatedOp{Op: r.op}
		}
		seq0 = ns.Seq()
		items2, err2 := ns.ApplySpeculatedBatchCtx(context.Background(), rops)
		if err2 == nil {
			for i, r := range retry {
				r.ack(result{d: items2[i].Decision, err: items2[i].Err})
			}
			if m != nil {
				m.batches.Inc()
				m.committed.Add(int64(len(retry)))
				m.batchRecords.Observe(float64(len(retry)))
			}
			p.healed(ns)
			return
		}
		// The retry batch broke the fresh session too: quarantine it and
		// keep healing with whatever is still unacknowledged.
		_ = ns.Close()
		reqs, items, batchErr = retry, items2, err2
	}
	// Healing exhausted or the cause is permanent: latch, fail every
	// submitter still waiting. The pipeline stays up in degraded mode,
	// serving the last published view read-only.
	p.latch(reqs, items, batchErr)
}

// healed closes a successful healing episode: the fresh session is
// live, backoff rewinds for the next episode, and readers get the
// recovered view.
func (p *Pipeline) healed(ns *store.Session) {
	p.healBackoff.reset()
	p.degraded.Store(false)
	p.publishView(ns)
}

// installSession swaps the resurrected session in. Generation first:
// bumping genWanted before the pointer swap makes every batch
// speculated against the dead session stale, so the committer
// invalidates its seeds before use — the resurrected session's view
// versions can numerically collide with the old session's, and a stale
// seed under a colliding key would silently redirect a decide.
func (p *Pipeline) installSession(ns *store.Session) {
	p.genWanted.Add(1)
	p.stPtr.Store(ns)
	ns.InvalidateDecisions()
	ns.InvalidateDeltas()
	p.postResync(resyncMsg{db: ns.Database(), ver: ns.ViewVersion(), gen: p.genWanted.Load()})
}

// postResync replaces any pending resync with msg: only the newest
// authoritative state counts. resync is buffered (capacity one) and the
// committer goroutine is its only sender, so after the drain above the
// slot is free and the send cannot block.
func (p *Pipeline) postResync(msg resyncMsg) {
	select {
	case <-p.resync:
	default:
	}
	//constvet:allow deadlineflow -- resync is buffered (cap 1), drained just above, and the committer is the only sender; the send cannot block
	p.resync <- msg
}

// batchItemErr reports the per-op error to surface when the batch call
// itself failed: an op with a clean item was applied in memory but its
// durability is indeterminate, which is exactly ErrSessionBroken.
func batchItemErr(it store.BatchItem, batchErr error) error {
	if it.Err != nil {
		return it.Err
	}
	return batchErr
}
