package serve

import (
	"errors"

	"github.com/constcomp/constcomp/internal/store"
)

// ErrShed is returned when bounded admission rejects an op: the submit
// queue was full (Options.ShedOnFull) or the op aged past the queue
// deadline before the decider reached it (Options.QueueDeadlineNS).
// Shedding is transient by definition — the op never reached the store,
// so resubmitting when the queue drains is always sound.
var ErrShed = errors.New("serve: submission shed: queue saturated past its deadline")

// classOf is this package's sentinel taxonomy table; the errclass
// analyzer (internal/analysis) requires every error sentinel declared
// in the package to be covered here. ErrClosed is permanent — a closed
// pipeline never reopens; ErrShed is transient — resubmission after
// drain is expected to succeed.
func classOf(err error) store.Class {
	switch {
	case errors.Is(err, ErrClosed):
		return store.ClassPermanent
	case errors.Is(err, ErrShed):
		return store.ClassTransient
	}
	return store.ClassUnknown
}

// classify resolves a boundary error against this package's table
// first, then the store taxonomy (which also honors explicit
// store.Transient/store.Permanent tags).
func classify(err error) store.Class {
	if c := classOf(err); c != store.ClassUnknown {
		return c
	}
	return store.Classify(err)
}

// Classify reports the retry class of any error returned by the
// pipeline, so clients can route without matching sentinels themselves:
// transient → back off and resubmit; permanent (or unknown) → surface
// to the caller.
func Classify(err error) store.Class { return classify(err) }
