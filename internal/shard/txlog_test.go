package shard

import (
	"errors"
	"reflect"
	"testing"

	"github.com/constcomp/constcomp/internal/store"
)

func testIntent(xid uint64) TxRecord {
	return TxRecord{Xid: xid, Kind: txIntent, Coord: 1, Part: 3,
		Old: []string{"emp1", "dept0"}, New: []string{"emp9", "dept0"}}
}

func newTestTxLog(t *testing.T, fsys store.FS) *TxLog {
	t.Helper()
	l, err := createTxLog(fsys)
	if err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestTxLogRoundtrip(t *testing.T) {
	mem := store.NewMemFS()
	l := newTestTxLog(t, mem)
	if err := l.AppendIntent(testIntent(7)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(7); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendDone(7); err != nil {
		t.Fatal(err)
	}
	scan, err := ReadTxLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	if scan.Damaged || len(scan.Records) != 3 {
		t.Fatalf("scan: %d records, damaged=%v", len(scan.Records), scan.Damaged)
	}
	if !reflect.DeepEqual(scan.Records[0], testIntent(7)) {
		t.Fatalf("intent roundtrip: got %+v", scan.Records[0])
	}
	if scan.Records[1].Kind != txCommit || scan.Records[1].Xid != 7 {
		t.Fatalf("commit roundtrip: got %+v", scan.Records[1])
	}
	if scan.Records[2].Kind != txDone || scan.Records[2].Xid != 7 {
		t.Fatalf("done roundtrip: got %+v", scan.Records[2])
	}
}

func TestReadTxLogMissingFile(t *testing.T) {
	scan, err := ReadTxLog(store.NewMemFS())
	if err != nil || len(scan.Records) != 0 || scan.Damaged {
		t.Fatalf("missing txlog: scan %+v, err %v", scan, err)
	}
}

func TestTxLogTornTailIgnored(t *testing.T) {
	mem := store.NewMemFS()
	l := newTestTxLog(t, mem)
	if err := l.AppendIntent(testIntent(1)); err != nil {
		t.Fatal(err)
	}
	// A power cut mid-append leaves a prefix of the next record.
	full := encodeIntent(testIntent(2))
	if err := l.write(full[:len(full)-3]); err != nil {
		t.Fatal(err)
	}
	if err := l.f.Sync(); err != nil {
		t.Fatal(err)
	}
	scan, err := ReadTxLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 || !scan.Damaged {
		t.Fatalf("torn tail: %d records, damaged=%v", len(scan.Records), scan.Damaged)
	}
	if scan.Records[0].Xid != 1 {
		t.Fatalf("surviving record xid %d", scan.Records[0].Xid)
	}
}

func TestTxLogCorruptRecordStopsScan(t *testing.T) {
	mem := store.NewMemFS()
	l := newTestTxLog(t, mem)
	if err := l.AppendIntent(testIntent(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendCommit(1); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first record's payload.
	if err := mem.Corrupt(TxLogFile, txHeaderLen+1); err != nil {
		t.Fatal(err)
	}
	scan, err := ReadTxLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 0 || !scan.Damaged {
		t.Fatalf("corrupt record: %d records, damaged=%v", len(scan.Records), scan.Damaged)
	}
}

// TestTxLogRepairAfterTornWrite is the regression test for the retry
// hazard: a torn append followed by a successful retry must leave the
// retried record visible to the scanner, not hidden behind garbage.
func TestTxLogRepairAfterTornWrite(t *testing.T) {
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{
		Match:       func(name string) bool { return name == TxLogFile },
		TearWriteAt: 2, // first append succeeds, second tears
		TearKeep:    5,
	})
	l := newTestTxLog(t, ffs)
	if err := l.AppendIntent(testIntent(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendIntent(testIntent(2)); err == nil {
		t.Fatal("torn append reported success")
	}
	// The retry must land where the scanner can reach it.
	if err := l.AppendIntent(testIntent(2)); err != nil {
		t.Fatal(err)
	}
	scan, err := ReadTxLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 2 || scan.Damaged {
		t.Fatalf("after repair: %d records, damaged=%v", len(scan.Records), scan.Damaged)
	}
	if scan.Records[1].Xid != 2 {
		t.Fatalf("retried record xid %d", scan.Records[1].Xid)
	}
}

func TestTxLogSyncFailureIsIndeterminate(t *testing.T) {
	mem := store.NewMemFS()
	ffs := store.NewFaultFS(mem, store.FaultPlan{
		Match:      func(name string) bool { return name == TxLogFile },
		FailSyncAt: 1,
	})
	l := newTestTxLog(t, ffs)
	err := l.AppendCommit(9)
	if !errors.Is(err, ErrTxIndeterminate) {
		t.Fatalf("sync failure: %v, want ErrTxIndeterminate", err)
	}
	// The bytes are written; a successful retry Sync makes them durable.
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	mem.Crash()
	scan, err := ReadTxLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 || scan.Records[0].Kind != txCommit {
		t.Fatalf("after retried sync and crash: %+v", scan)
	}
}

func TestTxLogReset(t *testing.T) {
	mem := store.NewMemFS()
	l := newTestTxLog(t, mem)
	if err := l.AppendIntent(testIntent(1)); err != nil {
		t.Fatal(err)
	}
	if err := l.Reset(); err != nil {
		t.Fatal(err)
	}
	// Reset is durable: the records stay gone across a power cut.
	mem.Crash()
	scan, err := ReadTxLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 0 || scan.Damaged {
		t.Fatalf("after reset+crash: %d records, damaged=%v", len(scan.Records), scan.Damaged)
	}
	// The log keeps working after a reset.
	if err := l.AppendIntent(testIntent(2)); err != nil {
		t.Fatal(err)
	}
	scan, err = ReadTxLog(mem)
	if err != nil {
		t.Fatal(err)
	}
	if len(scan.Records) != 1 || scan.Records[0].Xid != 2 {
		t.Fatalf("append after reset: %+v", scan)
	}
}
