package shard

import (
	"fmt"
	"sort"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// virtualNodes is the number of ring points each shard owns. More
// points smooth the key distribution; 32 keeps the worst shard within
// a few percent of fair share for realistic key counts.
const virtualNodes = 32

// Router is the static placement table: a hash ring over 64-bit
// FNV-1a. Keys hash by constant *name*, never by interned id — ids
// depend on a process's interning order, and placement must agree
// between the process that wrote a shard and the one recovering it
// (the same reason the journal encodes names).
type Router struct {
	shards int
	keyCol int
	syms   *value.Symbols
	points []ringPoint // sorted by hash
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRouter builds the placement table for `shards` shards. keyCol is
// the key attribute's column within view tuples and syms resolves
// their constants to names; callers that only route raw key names
// (ShardOfName) may pass keyCol 0 and a nil syms.
func NewRouter(shards, keyCol int, syms *value.Symbols) (*Router, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: router needs at least 1 shard, got %d", shards)
	}
	r := &Router{shards: shards, keyCol: keyCol, syms: syms,
		points: make([]ringPoint, 0, shards*virtualNodes)}
	for k := 0; k < shards; k++ {
		for v := 0; v < virtualNodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:  fnv1a(fmt.Sprintf("shard-%d-vnode-%d", k, v)),
				shard: k,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// Shards returns K.
func (r *Router) Shards() int { return r.shards }

// fnv1a is 64-bit FNV-1a with a murmur-style avalanche finalizer:
// stable across processes and architectures, cheap enough for the
// per-op routing path. The finalizer matters for ring placement: raw
// FNV perturbs the hash by only ~c·prime per trailing character, a
// sliver of the 2^64 ring, so names differing in their last digits
// would otherwise cluster onto the same arc (and the same shard).
func fnv1a(s string) uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// ShardOfName places one raw key name on the ring: the first virtual
// node at or clockwise of the key's hash owns it.
func (r *Router) ShardOfName(name string) int {
	if r.shards == 1 {
		return 0
	}
	h := fnv1a(name)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

// shardOfTuple places a view tuple by its key column.
func (r *Router) shardOfTuple(t relation.Tuple) int {
	return r.ShardOfName(r.syms.Name(t[r.keyCol]))
}

// ShardOf routes an update op: the shard owning op.Tuple's key. For a
// cross-shard replacement this is the coordinator.
func (r *Router) ShardOf(op core.UpdateOp) int {
	return r.shardOfTuple(op.Tuple)
}

// Placement returns every shard op touches: the coordinator (the shard
// owning op.Tuple) and, for a replacement whose With tuple keys onto a
// different shard, that participant. cross is false whenever one shard
// covers the whole op — the fast path.
func (r *Router) Placement(op core.UpdateOp) (coord, part int, cross bool) {
	coord = r.shardOfTuple(op.Tuple)
	part = coord
	if op.Kind == core.UpdateReplace && len(op.With) > r.keyCol {
		part = r.shardOfTuple(op.With)
	}
	return coord, part, coord != part
}
