package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"

	"github.com/constcomp/constcomp/internal/store"
)

// TxLogFile is the per-shard sidecar transaction log's file name,
// alongside store.JournalFile and store.SnapshotFile in the shard's FS
// root. It lives outside the store journal on purpose: the journal's
// record kinds are a closed set the recovery replayer trusts, and
// two-phase bookkeeping must never be replayable as a data op.
const TxLogFile = "txlog"

// Tx record kinds.
const (
	txIntent byte = iota
	txCommit
	txDone
)

// Txlog record framing mirrors the store journal (u32 LE payload
// length, u32 LE CRC32-C, payload), with payloads:
//
//	intent: uvarint xid, byte kind=0, uvarint coord, uvarint part,
//	        tuple old, tuple new   — tuples as constant *names*
//	commit: uvarint xid, byte kind=1
//	done:   uvarint xid, byte kind=2
//
// An intent names the full cross-shard replacement so recovery can
// redo either half from the record alone. Names, not interned ids,
// for the same reason the journal uses names: interning order differs
// across processes.

var txCastagnoli = crc32.MakeTable(crc32.Castagnoli)

const txHeaderLen = 8

// maxTxPayload bounds one record; a longer declared length is damage.
const maxTxPayload = 1 << 20

// TxRecord is one decoded txlog entry.
type TxRecord struct {
	Xid  uint64
	Kind byte
	// Intent fields (zero for commit/done records).
	Coord int
	Part  int
	Old   []string // the replaced view tuple, owned by Coord
	New   []string // the replacement view tuple, owned by Part
}

func appendNames(dst []byte, names []string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(names)))
	for _, n := range names {
		dst = binary.AppendUvarint(dst, uint64(len(n)))
		dst = append(dst, n...)
	}
	return dst
}

func frameTx(payload []byte) []byte {
	rec := make([]byte, txHeaderLen, txHeaderLen+len(payload))
	binary.LittleEndian.PutUint32(rec[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(rec[4:8], crc32.Checksum(payload, txCastagnoli))
	return append(rec, payload...)
}

func encodeIntent(r TxRecord) []byte {
	payload := binary.AppendUvarint(nil, r.Xid)
	payload = append(payload, txIntent)
	payload = binary.AppendUvarint(payload, uint64(r.Coord))
	payload = binary.AppendUvarint(payload, uint64(r.Part))
	payload = appendNames(payload, r.Old)
	payload = appendNames(payload, r.New)
	return frameTx(payload)
}

func encodeMark(xid uint64, kind byte) []byte {
	payload := binary.AppendUvarint(nil, xid)
	payload = append(payload, kind)
	return frameTx(payload)
}

type txReader struct {
	data []byte
	off  int
}

func (r *txReader) uvarint() (uint64, bool) {
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		return 0, false
	}
	r.off += n
	return v, true
}

func (r *txReader) names() ([]string, bool) {
	w, ok := r.uvarint()
	if !ok || w > uint64(len(r.data)-r.off) {
		return nil, false
	}
	out := make([]string, w)
	for i := range out {
		n, ok := r.uvarint()
		if !ok || n > uint64(len(r.data)-r.off) {
			return nil, false
		}
		out[i] = string(r.data[r.off : r.off+int(n)])
		r.off += int(n)
	}
	return out, true
}

// decodeTxRecord parses one record from the front of data. Same error
// taxonomy as the journal: ErrTorn for a partial tail, ErrCorrupt for
// complete-looking bytes that do not check out.
func decodeTxRecord(data []byte) (TxRecord, int, error) {
	if len(data) < txHeaderLen {
		return TxRecord{}, 0, store.ErrTorn
	}
	plen := binary.LittleEndian.Uint32(data[0:4])
	if plen > maxTxPayload {
		return TxRecord{}, 0, store.ErrCorrupt
	}
	if uint64(len(data)-txHeaderLen) < uint64(plen) {
		return TxRecord{}, 0, store.ErrTorn
	}
	payload := data[txHeaderLen : txHeaderLen+int(plen)]
	if crc32.Checksum(payload, txCastagnoli) != binary.LittleEndian.Uint32(data[4:8]) {
		return TxRecord{}, 0, store.ErrCorrupt
	}
	r := txReader{data: payload}
	var rec TxRecord
	var ok bool
	if rec.Xid, ok = r.uvarint(); !ok {
		return TxRecord{}, 0, store.ErrCorrupt
	}
	if r.off >= len(payload) {
		return TxRecord{}, 0, store.ErrCorrupt
	}
	rec.Kind = payload[r.off]
	r.off++
	switch rec.Kind {
	case txCommit, txDone:
	case txIntent:
		coord, ok := r.uvarint()
		if !ok {
			return TxRecord{}, 0, store.ErrCorrupt
		}
		part, ok2 := r.uvarint()
		if !ok2 {
			return TxRecord{}, 0, store.ErrCorrupt
		}
		rec.Coord, rec.Part = int(coord), int(part)
		if rec.Old, ok = r.names(); !ok {
			return TxRecord{}, 0, store.ErrCorrupt
		}
		if rec.New, ok = r.names(); !ok {
			return TxRecord{}, 0, store.ErrCorrupt
		}
	default:
		return TxRecord{}, 0, store.ErrCorrupt
	}
	if r.off != len(payload) {
		return TxRecord{}, 0, store.ErrCorrupt
	}
	return rec, txHeaderLen + int(plen), nil
}

// TxScan is a decoded txlog image: the intact record prefix and where
// it ends. Damage past GoodBytes is the residue of a crash mid-append
// and is cut by repair.
type TxScan struct {
	Records   []TxRecord
	GoodBytes int64
	Damaged   bool
}

// scanTx decodes records until the bytes run out or stop checking out.
func scanTx(data []byte) TxScan {
	var s TxScan
	for int(s.GoodBytes) < len(data) {
		rec, n, err := decodeTxRecord(data[s.GoodBytes:])
		if err != nil {
			s.Damaged = true
			break
		}
		s.Records = append(s.Records, rec)
		s.GoodBytes += int64(n)
	}
	return s
}

// ReadTxLog scans a shard's txlog from fsys. A missing file reads as
// empty (the shard has never coordinated or participated in a
// cross-shard op).
func ReadTxLog(fsys store.FS) (TxScan, error) {
	f, err := fsys.Open(TxLogFile)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return TxScan{}, nil
		}
		return TxScan{}, err
	}
	defer f.Close()
	data, err := io.ReadAll(f)
	if err != nil {
		return TxScan{}, err
	}
	return scanTx(data), nil
}

// TxLog is one shard's append-only two-phase sidecar log. It is owned
// by the cross-shard commit path, which runs under Multi's exclusive
// lock — one writer at a time, by construction.
type TxLog struct {
	fsys store.FS
	f    store.File
	// size counts bytes of fully written records. After a failed or
	// short write the file may hold a torn prefix *past* size; repair
	// truncates back to size before any retry can append behind garbage
	// the scanner would stop at.
	size int64
}

// createTxLog starts an empty txlog, truncating any previous contents;
// the caller makes the namespace change durable (SyncDir) before
// trusting any append.
func createTxLog(fsys store.FS) (*TxLog, error) {
	f, err := fsys.Create(TxLogFile)
	if err != nil {
		return nil, err
	}
	return &TxLog{fsys: fsys, f: f}, nil
}

// repair cuts a torn tail left by a failed append: truncate back to
// the last fully written record (durable on return). The write handle
// stays open — both FS implementations write append-only (O_APPEND /
// entry-tail), so the next write lands at the new end. Without this, a
// retried append would land after the garbage and be invisible to
// every future scan — an intent that "succeeded on retry" yet never
// resolves.
func (l *TxLog) repair() error {
	if err := l.fsys.Truncate(TxLogFile, l.size); err != nil {
		return fmt.Errorf("shard: txlog repair truncate: %w", err)
	}
	return nil
}

// write appends rec's bytes, repairing the torn tail on failure so a
// later append starts clean. Durability is the caller's concern.
func (l *TxLog) write(rec []byte) error {
	n, werr := l.f.Write(rec)
	var err error
	switch {
	case werr != nil:
		err = fmt.Errorf("shard: txlog write (%d/%d bytes): %w", n, len(rec), werr)
	case n < len(rec):
		err = fmt.Errorf("shard: short txlog write (%d/%d bytes)", n, len(rec))
	default:
		l.size += int64(len(rec))
		return nil
	}
	if rerr := l.repair(); rerr != nil {
		return fmt.Errorf("%w (and %v)", err, rerr)
	}
	return err
}

// ErrTxIndeterminate marks a txlog append whose bytes were written but
// whose fsync failed: the record may or may not be durable. The commit
// path treats it differently from a plain write failure — an
// indeterminate record cannot simply be presumed absent.
var ErrTxIndeterminate = errors.New("shard: txlog record durability indeterminate")

// append writes rec and fsyncs. A failed or short write is repaired
// (tail truncated) before return and the record is certainly absent; a
// failed sync returns ErrTxIndeterminate — the caller retries Sync or
// escalates.
func (l *TxLog) append(rec []byte) error {
	if err := l.write(rec); err != nil {
		return err
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("%w: %v", ErrTxIndeterminate, err)
	}
	return nil
}

// AppendIntent makes a cross-shard intent durable: the op, its
// coordinator, and its participant, fsynced before return. This is the
// first phase; until the coordinator's commit record is durable the op
// is presumed aborted.
func (l *TxLog) AppendIntent(rec TxRecord) error {
	return l.append(encodeIntent(rec))
}

// AppendCommit makes xid's commit record durable on the coordinator's
// txlog — the commit point of the two-phase protocol. It must only be
// called after AppendIntent succeeded on every participant (constvet's
// fsyncorder analyzer enforces the dominance).
func (l *TxLog) AppendCommit(xid uint64) error {
	return l.append(encodeMark(xid, txCommit))
}

// AppendDone marks xid fully applied (or deliberately aborted) on this
// shard, letting recovery skip it. Durability is advisory: a lost done
// record only costs recovery a redundant, idempotent resolution.
func (l *TxLog) AppendDone(xid uint64) error {
	return l.write(encodeMark(xid, txDone))
}

// Sync fsyncs the txlog without appending — the retry primitive for an
// indeterminate AppendIntent/AppendCommit whose bytes were written but
// whose sync failed.
func (l *TxLog) Sync() error { return l.f.Sync() }

// Reset durably empties the txlog (FS.Truncate is durable on return).
// The commit path calls it after both halves of a cross-shard op are in
// their shards' journals — the records have served their purpose — and
// to demote an indeterminate commit record into a durable abort:
// truncating the maybe-durable record is the one way to force the
// presumed-abort reading on every future recovery.
func (l *TxLog) Reset() error {
	if err := l.fsys.Truncate(TxLogFile, 0); err != nil {
		return fmt.Errorf("shard: txlog reset: %w", err)
	}
	l.size = 0
	return nil
}

// Close releases the file handle.
func (l *TxLog) Close() error { return l.f.Close() }
