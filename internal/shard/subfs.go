// Package shard hash-partitions one constant-complement base instance
// into K independent durable shards, each with its own journal,
// snapshot, txlog, and group-commit pipeline, behind a static hash ring
// that routes every update by its key attribute (Router.ShardOf).
//
// Single-shard ops — the overwhelming majority under zipfian traffic —
// take exactly today's fast path: Multi.ApplyAsync forwards them to the
// owning shard's serve.Pipeline untouched, so their decide cost scales
// with that shard's slice of the instance, not the whole of it. An op
// whose translation touches tuples on two shards (a replacement that
// moves a key between shards) runs a two-phase commit over sidecar
// transaction logs: an intent record fsynced on every participant,
// then a commit record fsynced on the coordinator (the commit point),
// then the two halves applied and journaled per shard. Recovery
// resolves in-doubt intents by consulting the coordinator shard's
// txlog: a durable commit record means redo, anything less means the
// op never happened. See DESIGN.md "Sharding & placement".
package shard

import (
	"github.com/constcomp/constcomp/internal/store"
)

// subFS exposes one shard's namespace inside a shared FS by prefixing
// every name. It lets K shards share a single MemFS in tests — one
// MemFS.Crash then models a machine-wide power cut across every shard,
// exactly what the cross-shard crash matrix needs.
type subFS struct {
	fs     store.FS
	prefix string
}

// SubFS returns an FS view of fsys in which every name is prefixed
// with prefix (typically "s0/", "s1/", ...). SyncDir syncs the parent
// namespace — conservative (it makes sibling shards' namespace changes
// durable too), never weaker than a per-shard directory fsync.
func SubFS(fsys store.FS, prefix string) store.FS {
	return &subFS{fs: fsys, prefix: prefix}
}

func (s *subFS) Create(name string) (store.File, error)     { return s.fs.Create(s.prefix + name) }
func (s *subFS) OpenAppend(name string) (store.File, error) { return s.fs.OpenAppend(s.prefix + name) }
func (s *subFS) Open(name string) (store.File, error)       { return s.fs.Open(s.prefix + name) }
func (s *subFS) Rename(oldname, newname string) error {
	return s.fs.Rename(s.prefix+oldname, s.prefix+newname)
}
func (s *subFS) Remove(name string) error { return s.fs.Remove(s.prefix + name) }
func (s *subFS) Truncate(name string, size int64) error {
	return s.fs.Truncate(s.prefix+name, size)
}
func (s *subFS) SyncDir() error { return s.fs.SyncDir() }
