package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/obs"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
)

// Options configures a sharded multi-store.
type Options struct {
	// Shards is K, the shard count. 0 means len(fss) as passed to Open.
	// K is static for the life of the instance: the hash ring is part of
	// the on-disk layout, so reopening with a different K misplaces
	// every tuple.
	Shards int
	// Key names the view attribute that routes ops. Empty picks the
	// first view attribute. It must be a view attribute: ops carry view
	// tuples, and routing must be decidable from the op alone.
	Key string
	// Store configures each shard's store.Session.
	Store store.Options
	// Serve configures each shard's pipeline. The Resurrect hook is
	// overwritten per shard (recovery must target the shard's own FS).
	Serve serve.Options
	// CommitRetries caps Sync retries for a commit record whose first
	// fsync failed (durability indeterminate). Default 3.
	CommitRetries int
}

func (o Options) commitRetries() int {
	if o.CommitRetries > 0 {
		return o.CommitRetries
	}
	return 3
}

// ShardStatus is one shard's externally visible health.
type ShardStatus struct {
	Shard    int    `json:"shard"`
	Seq      uint64 `json:"seq"`
	Degraded bool   `json:"degraded"`
}

// Resolution records how Open settled one in-doubt cross-shard intent.
type Resolution struct {
	Xid       uint64
	Committed bool
	// RedoneCoord/RedonePart report whether the delete/insert half was
	// re-applied (false when the half already survived in the shard's
	// journal, or for an aborted xid).
	RedoneCoord bool
	RedonePart  bool
	Old, New    []string
}

// Report is Open's account of what recovery found: each shard's store
// recovery report (nil for shards created fresh) and every cross-shard
// intent resolved from the txlogs.
type Report struct {
	Shards   []*store.RecoveryReport
	Resolved []Resolution
}

type shardState struct {
	fsys store.FS
	pipe *serve.Pipeline
	tx   *TxLog
	// initView/initSeq snapshot the shard's state at Open, serving
	// Published before the pipeline's read path warms up.
	initView *relation.Relation
	initSeq  uint64
}

// Multi fronts K independent store shards with a placement table.
// Single-shard ops — everything except a replacement that moves a key
// between shards — forward straight to the owning shard's pipeline,
// untouched. Cross-shard replacements run an eager two-phase commit
// under m.xmu: exclusive grants on both pipelines, both halves decided,
// an intent record fsynced on participant then coordinator, a commit
// record fsynced on the coordinator (the commit point), the halves
// applied and journaled per shard, and the txlogs durably reset.
// Running the protocol eagerly inside ApplyAsync keeps each shard's
// apply order equal to global submission order for a serial submitter —
// the property the chaos oracle replays against.
type Multi struct {
	router *Router
	pair   *core.Pair
	syms   *value.Symbols
	opts   Options
	clock  obs.Clock
	shards []*shardState

	// xsem serializes cross-shard commits — at most one xid is in
	// flight per txlog, so a truncate-to-zero reset can never clip a
	// neighbor. It is a one-token channel rather than a mutex on
	// purpose: the holder blocks on fsyncs for the whole protocol,
	// which the serve stack's lock discipline (lockhold) forbids under
	// a sync.Mutex, and the channel lets acquisition honor ctx.
	xsem    chan struct{}
	nextXid uint64 // guarded by xsem ownership

	closeOnce sync.Once
	closeErr  error
}

// Open builds (or reopens) a sharded instance over one FS per shard.
// db is the full base instance, used only when a shard has no durable
// state yet: it is hash-partitioned by the key attribute and each slice
// seeds its shard's store. Existing shards recover from their own
// journal and snapshot; then every txlog is scanned and in-doubt
// cross-shard intents are resolved — an intent is committed iff the
// coordinator shard's txlog holds a durable commit record for its xid,
// in which case any half missing from its shard's journal is redone
// (guarded by view membership, so resolution is idempotent across
// crashes during recovery); anything less reads as an abort. Finally
// the txlogs are durably reset, so no intent survives a recovery.
func Open(fss []store.FS, pair *core.Pair, db *relation.Relation, syms *value.Symbols, opts Options) (*Multi, *Report, error) {
	k := opts.Shards
	if k == 0 {
		k = len(fss)
	}
	if k < 1 {
		return nil, nil, fmt.Errorf("shard: need at least 1 shard, got %d", k)
	}
	if len(fss) != k {
		return nil, nil, fmt.Errorf("shard: %d filesystems for %d shards", len(fss), k)
	}
	if db == nil {
		return nil, nil, fmt.Errorf("shard: nil base instance")
	}
	u := pair.Schema().Universe()
	viewIDs := pair.ViewAttrs().IDs()
	keyName := opts.Key
	if keyName == "" {
		keyName = u.Name(viewIDs[0])
	}
	keyID, ok := u.Lookup(keyName)
	if !ok || !pair.ViewAttrs().Has(keyID) {
		return nil, nil, fmt.Errorf("shard: key attribute %q is not a view attribute", keyName)
	}
	keyCol := -1
	for i, id := range viewIDs {
		if id == keyID {
			keyCol = i
		}
	}
	router, err := NewRouter(k, keyCol, syms)
	if err != nil {
		return nil, nil, err
	}

	m := &Multi{
		router: router,
		pair:   pair,
		syms:   syms,
		opts:   opts,
		clock:  opts.Serve.Clock,
		shards: make([]*shardState, k),
		xsem:   make(chan struct{}, 1),
	}
	if m.clock == nil {
		m.clock = obs.SystemClock()
	}

	// Hash-partition the seed instance by the key attribute's column in
	// base tuples (the same constant the view key column carries, so
	// base and view placement agree).
	baseCol := db.Col(keyID)
	if baseCol < 0 {
		return nil, nil, fmt.Errorf("shard: key attribute %q missing from base instance", keyName)
	}
	parts := make([]*relation.Relation, k)
	for i := range parts {
		parts[i] = relation.New(db.Attrs())
	}
	for _, t := range db.Tuples() {
		parts[router.ShardOfName(syms.Name(t[baseCol]))].Insert(t)
	}

	rep := &Report{Shards: make([]*store.RecoveryReport, k)}
	sessions := make([]*store.Session, k)
	scans := make([]TxScan, k)
	for i := 0; i < k; i++ {
		st, r, err := store.Open(fss[i], pair, parts[i], syms, opts.Store)
		if err != nil {
			closeAll(sessions[:i])
			return nil, nil, fmt.Errorf("shard %d: %w", i, err)
		}
		sessions[i] = st
		rep.Shards[i] = r
		if scans[i], err = ReadTxLog(fss[i]); err != nil {
			closeAll(sessions[:i+1])
			return nil, nil, fmt.Errorf("shard %d txlog: %w", i, err)
		}
	}

	if err := m.resolve(sessions, scans, rep); err != nil {
		closeAll(sessions)
		return nil, nil, err
	}

	// The resolved halves are durable in their shards' journals, so the
	// intents have served their purpose: start every txlog empty.
	for i := 0; i < k; i++ {
		tx, err := createTxLog(fss[i])
		if err == nil {
			err = fss[i].SyncDir()
		}
		if err != nil {
			closeAll(sessions)
			return nil, nil, fmt.Errorf("shard %d txlog reset: %w", i, err)
		}
		m.shards[i] = &shardState{fsys: fss[i], tx: tx,
			initView: sessions[i].ViewRef(), initSeq: sessions[i].Seq()}
	}

	for i := 0; i < k; i++ {
		sv := opts.Serve
		shardFS, shardStore := fss[i], opts.Store
		sv.Resurrect = func() (*store.Session, error) {
			st, _, err := store.Recover(shardFS, pair, syms, shardStore)
			return st, err
		}
		pipe, err := serve.New(sessions[i], sv)
		if err != nil {
			for j := 0; j < i; j++ {
				_ = m.shards[j].pipe.Close()
			}
			closeAll(sessions)
			return nil, nil, fmt.Errorf("shard %d pipeline: %w", i, err)
		}
		// Warm the read path now: publishView is lazy (it no-ops until a
		// reader shows up), and Multi.Published must reflect commits even
		// for a reader that arrives after the traffic stopped.
		pipe.Published()
		m.shards[i].pipe = pipe
	}
	return m, rep, nil
}

func closeAll(sessions []*store.Session) {
	for _, st := range sessions {
		if st != nil {
			_ = st.Close()
		}
	}
}

// resolve settles every in-doubt intent found in the txlog scans
// against the freshly recovered sessions. Presumed abort: an intent is
// committed iff its coordinator's txlog holds a durable commit record.
func (m *Multi) resolve(sessions []*store.Session, scans []TxScan, rep *Report) error {
	k := len(sessions)
	intents := make(map[uint64]TxRecord)
	committed := make(map[uint64]bool)
	done := make([]map[uint64]bool, k)
	for i, scan := range scans {
		done[i] = make(map[uint64]bool)
		for _, r := range scan.Records {
			switch r.Kind {
			case txIntent:
				if r.Coord < 0 || r.Coord >= k || r.Part < 0 || r.Part >= k {
					return fmt.Errorf("shard %d txlog: intent xid %d names shard out of range (coord %d, part %d, K=%d)",
						i, r.Xid, r.Coord, r.Part, k)
				}
				intents[r.Xid] = r
			case txCommit:
				committed[r.Xid] = true
			case txDone:
				done[i][r.Xid] = true
			}
		}
	}
	xids := make([]uint64, 0, len(intents))
	for xid := range intents {
		xids = append(xids, xid)
	}
	sort.Slice(xids, func(i, j int) bool { return xids[i] < xids[j] })
	for _, xid := range xids {
		rec := intents[xid]
		res := Resolution{Xid: xid, Old: rec.Old, New: rec.New}
		// The commit record only counts on the coordinator's own log.
		if commitOn(scans[rec.Coord], xid) {
			res.Committed = true
			old, err := m.tupleOf(rec.Old)
			if err != nil {
				return fmt.Errorf("shard: xid %d intent: %w", xid, err)
			}
			nw, err := m.tupleOf(rec.New)
			if err != nil {
				return fmt.Errorf("shard: xid %d intent: %w", xid, err)
			}
			// Redo each half that is missing from its shard's state.
			// Idempotent across crashes during recovery: a redone half
			// is journaled and fsynced by Apply, so the next recovery's
			// guard sees it present and skips.
			if !done[rec.Coord][xid] && sessions[rec.Coord].ViewRef().Contains(old) {
				if _, err := sessions[rec.Coord].Apply(core.Delete(old)); err != nil {
					return fmt.Errorf("shard %d: redo delete half of xid %d: %w", rec.Coord, xid, err)
				}
				res.RedoneCoord = true
			}
			if !done[rec.Part][xid] && !sessions[rec.Part].ViewRef().Contains(nw) {
				if _, err := sessions[rec.Part].Apply(core.Insert(nw)); err != nil {
					return fmt.Errorf("shard %d: redo insert half of xid %d: %w", rec.Part, xid, err)
				}
				res.RedonePart = true
			}
		}
		rep.Resolved = append(rep.Resolved, res)
	}
	return nil
}

func commitOn(scan TxScan, xid uint64) bool {
	for _, r := range scan.Records {
		if r.Kind == txCommit && r.Xid == xid {
			return true
		}
	}
	return false
}

func (m *Multi) tupleOf(names []string) (relation.Tuple, error) {
	if len(names) != m.pair.ViewAttrs().Len() {
		return nil, fmt.Errorf("tuple arity %d, view arity %d", len(names), m.pair.ViewAttrs().Len())
	}
	t := make(relation.Tuple, len(names))
	for i, n := range names {
		t[i] = m.syms.Const(n)
	}
	return t, nil
}

func (m *Multi) namesOf(t relation.Tuple) []string {
	out := make([]string, len(t))
	for i, v := range t {
		out[i] = m.syms.Name(v)
	}
	return out
}

// Router exposes the placement table (clients use it to pre-compute key
// placement; tests use it to build cross-shard workloads).
func (m *Multi) Router() *Router { return m.router }

// Pair returns the view/complement pair every shard serves.
func (m *Multi) Pair() *core.Pair { return m.pair }

// Shards returns K.
func (m *Multi) Shards() int { return len(m.shards) }

// CrossPending is the Waiter for a cross-shard op. The two-phase commit
// runs eagerly inside ApplyAsync — by return the op's fate is sealed —
// so Wait never blocks; the type exists so callers can treat single-
// and cross-shard submissions uniformly (and so tests can read the
// Xid back).
type CrossPending struct {
	xid uint64
	d   *core.Decision
	err error
}

// Wait returns the op's fate, already resolved.
func (p *CrossPending) Wait() (*core.Decision, error) { return p.d, p.err }

// Xid returns the op's transaction id, matching the intent records on
// the participating shards' txlogs (and Open's Resolution entries).
func (p *CrossPending) Xid() uint64 { return p.xid }

// ApplyAsync routes op. Single-shard ops — everything whose placement
// is one shard — forward to that shard's pipeline and return its
// Pending untouched: the fast path is exactly the unsharded pipeline.
// Cross-shard replacements run the two-phase commit before returning.
func (m *Multi) ApplyAsync(ctx context.Context, op core.UpdateOp) (serve.Waiter, error) {
	coord, part, cross := m.router.Placement(op)
	if !cross {
		p, err := m.shards[coord].pipe.ApplyAsync(ctx, op)
		if err != nil {
			return nil, err
		}
		return p, nil
	}
	return m.applyCross(ctx, op, coord, part)
}

// Apply is the synchronous convenience: submit and wait.
func (m *Multi) Apply(ctx context.Context, op core.UpdateOp) (*core.Decision, error) {
	w, err := m.ApplyAsync(ctx, op)
	if err != nil {
		return nil, err
	}
	return w.Wait()
}

// applyCross runs the two-phase commit for a replacement whose old and
// new tuples key onto different shards. The op decomposes into a
// delete half on the coordinator (the old tuple's shard) and an insert
// half on the participant, each independently subject to its shard's
// constant-complement translation; either half rejecting rejects the
// whole op with nothing written anywhere.
func (m *Multi) applyCross(ctx context.Context, op core.UpdateOp, coord, part int) (*CrossPending, error) {
	select {
	case m.xsem <- struct{}{}:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	defer func() { <-m.xsem }()
	m.nextXid++
	pend := &CrossPending{xid: m.nextXid}

	// Exclusive grants in shard-index order (a fixed global order, so
	// two lock holders can never deadlock if this ever runs unserialized).
	lo, hi := coord, part
	if hi < lo {
		lo, hi = hi, lo
	}
	gLo, err := m.shards[lo].pipe.Exclusive(ctx)
	if err != nil {
		return nil, fmt.Errorf("shard %d: %w", lo, err)
	}
	gHi, err := m.shards[hi].pipe.Exclusive(ctx)
	if err != nil {
		gLo.Release(nil)
		return nil, fmt.Errorf("shard %d: %w", hi, err)
	}
	gC, gP := gLo, gHi
	if coord != lo {
		gC, gP = gHi, gLo
	}
	abort := func(d *core.Decision, err error) *CrossPending {
		gC.Release(nil)
		gP.Release(nil)
		pend.d, pend.err = d, err
		return pend
	}

	// Decide both halves before writing anything: a rejection aborts
	// the whole op with zero bytes spent (decide-before-intent).
	del, ins := core.Delete(op.Tuple), core.Insert(op.With)
	dDel, err := gC.Session().DecideCtx(ctx, del)
	if err != nil {
		return abort(dDel, fmt.Errorf("shard %d delete half: %w", coord, err)), nil
	}
	dIns, err := gP.Session().DecideCtx(ctx, ins)
	if err != nil {
		return abort(dIns, fmt.Errorf("shard %d insert half: %w", part, err)), nil
	}
	if !dDel.Translatable {
		return abort(dDel, fmt.Errorf("shard %d delete half: %w: %s", coord, core.ErrRejected, dDel.Reason)), nil
	}
	if !dIns.Translatable {
		return abort(dIns, fmt.Errorf("shard %d insert half: %w: %s", part, core.ErrRejected, dIns.Reason)), nil
	}
	if dDel.Reason == core.ReasonIdentity && dIns.Reason == core.ReasonIdentity {
		// Neither shard changes: the whole op is an identity.
		return abort(&core.Decision{Translatable: true, Reason: core.ReasonIdentity,
			ChaseCalls: dDel.ChaseCalls + dIns.ChaseCalls}, nil), nil
	}

	// Phase one: the intent, fsynced on the participant then the
	// coordinator. Any failure here is a safe abort — without a durable
	// commit record recovery presumes abort — but reset what we can so
	// no stray intent lingers (harmless, since aborts never redo).
	rec := TxRecord{Xid: pend.xid, Kind: txIntent, Coord: coord, Part: part,
		Old: m.namesOf(op.Tuple), New: m.namesOf(op.With)}
	if err := m.shards[part].tx.AppendIntent(rec); err != nil {
		_ = m.shards[part].tx.Reset()
		return abort(nil, fmt.Errorf("shard %d intent: %w", part, err)), nil
	}
	if err := m.shards[coord].tx.AppendIntent(rec); err != nil {
		_ = m.shards[coord].tx.Reset()
		_ = m.shards[part].tx.Reset()
		return abort(nil, fmt.Errorf("shard %d intent: %w", coord, err)), nil
	}

	// Phase two: the commit record on the coordinator — the commit
	// point of the protocol.
	if err := m.shards[coord].tx.AppendCommit(pend.xid); err != nil {
		if errors.Is(err, ErrTxIndeterminate) {
			err = m.retrySync(coord, err)
		}
		if err == nil {
			// A Sync retry landed the record after all: committed.
		} else if !errors.Is(err, ErrTxIndeterminate) {
			// The record is certainly absent: safe abort.
			_ = m.shards[coord].tx.Reset()
			_ = m.shards[part].tx.Reset()
			return abort(nil, fmt.Errorf("shard %d commit record: %w", coord, err)), nil
		} else if rerr := m.shards[coord].tx.Reset(); rerr == nil {
			// The record may or may not be durable — demote it to a
			// durable abort by truncating it away.
			_ = m.shards[part].tx.Reset()
			return abort(nil, fmt.Errorf("shard %d commit record: %w", coord, err)), nil
		} else {
			// Sync retries exhausted and the truncate failed: the
			// outcome is genuinely in doubt. Any further op on either
			// shard could collide with what the next recovery's
			// resolution redoes, so fence both until then.
			ferr := fmt.Errorf("shard: xid %d commit in doubt: %w (reset: %v)", pend.xid, err, rerr)
			gC.Abandon(ferr)
			gP.Abandon(ferr)
			pend.err = ferr
			return pend, nil
		}
	}

	// Committed. Apply the halves; each Apply journals and fsyncs on
	// its own shard. A broken session is resurrected in place and the
	// half redone if its record did not survive — and if that fails,
	// the shard is fenced (recovery's resolution will finish the job).
	dDel, nsC, errC := m.applyHalf(gC, coord, del)
	if errC != nil {
		ferr := fmt.Errorf("shard: xid %d committed, delete half failed on shard %d: %w", pend.xid, coord, errC)
		gC.Abandon(ferr)
		gP.Abandon(ferr)
		pend.err = ferr
		return pend, nil
	}
	dIns, nsP, errP := m.applyHalf(gP, part, ins)
	if errP != nil {
		ferr := fmt.Errorf("shard: xid %d committed, insert half failed on shard %d: %w", pend.xid, part, errP)
		gC.Abandon(ferr)
		gP.Abandon(ferr)
		pend.err = ferr
		return pend, nil
	}

	// Both halves durable in their journals: durably retire the
	// records, coordinator first — a crash between the two resets
	// leaves only the participant's intent, which reads as an abort and
	// redoes nothing (the halves are already applied).
	if err := m.shards[coord].tx.Reset(); err != nil {
		// intent+commit survive; a later recovery would redo against
		// whatever state traffic has moved on to. Fence both shards.
		ferr := fmt.Errorf("shard: xid %d applied but txlog retire failed: %w", pend.xid, err)
		gC.Abandon(ferr)
		gP.Abandon(ferr)
		pend.err = ferr
		return pend, nil
	}
	_ = m.shards[part].tx.Reset() // leftover participant intent reads as abort: harmless

	gC.Release(nsC)
	gP.Release(nsP)
	pend.d = &core.Decision{Translatable: true, Reason: core.ReasonOK,
		ChaseCalls: dDel.ChaseCalls + dIns.ChaseCalls}
	return pend, nil
}

// retrySync retries the coordinator txlog fsync for an indeterminate
// commit record with capped exponential backoff.
func (m *Multi) retrySync(k int, err error) error {
	base := m.opts.Serve.BackoffBaseNS
	if base <= 0 {
		base = 1_000_000
	}
	for attempt := 0; attempt < m.opts.commitRetries(); attempt++ {
		m.clock.Sleep(base << uint(attempt))
		if serr := m.shards[k].tx.Sync(); serr == nil {
			return nil
		} else {
			err = fmt.Errorf("%w: %v", ErrTxIndeterminate, serr)
		}
	}
	return err
}

// applyHalf applies one half of a committed cross-shard op through the
// grant's session. If the apply breaks the session (journal fault —
// memory ran ahead of disk), it quarantines the session, recovers a
// fresh one from the shard's durable state, and redoes the half only
// if its record did not survive, deciding by sequence number: under
// exclusivity this half is the only op in flight, so the record
// survived iff the recovered seq advanced past the pre-apply seq. The
// returned session (nil when the original survived) must be handed to
// Release so the pipeline adopts it.
func (m *Multi) applyHalf(g *serve.ExclusiveGrant, k int, op core.UpdateOp) (*core.Decision, *store.Session, error) {
	st := g.Session()
	seq0 := st.Seq()
	d, err := st.Apply(op)
	if err == nil {
		return d, nil, nil
	}
	if !errors.Is(err, store.ErrSessionBroken) {
		// A rejection or budget trip cannot happen — the half was
		// decided translatable against this exact state under
		// exclusivity — so any non-breaking error is a fault to surface.
		return d, nil, err
	}
	_ = st.Close()
	base := m.opts.Serve.BackoffBaseNS
	if base <= 0 {
		base = 1_000_000
	}
	lastErr := err
	for attempt := 0; attempt < 4; attempt++ {
		m.clock.Sleep(base << uint(attempt))
		ns, rerr := m.recoverShard(k)
		if rerr != nil {
			lastErr = rerr
			if store.Classify(rerr) == store.ClassPermanent {
				break
			}
			continue
		}
		if ns.Seq() > seq0 {
			return d, ns, nil // the half's record survived the break
		}
		d2, aerr := ns.Apply(op)
		if aerr == nil {
			return d2, ns, nil
		}
		lastErr = aerr
		_ = ns.Close()
	}
	return nil, nil, lastErr
}

func (m *Multi) recoverShard(k int) (*store.Session, error) {
	st, _, err := store.Recover(m.shards[k].fsys, m.pair, m.syms, m.opts.Store)
	return st, err
}

// Published returns the union of every shard's most recently committed
// view, the sum of the shard sequence numbers it is current as of, and
// whether any shard is degraded. Before a shard's read path warms up
// its Open-time snapshot stands in.
func (m *Multi) Published() (*relation.Relation, uint64, bool) {
	var out *relation.Relation
	var seq uint64
	var degraded bool
	for _, s := range m.shards {
		v, sq, dg := s.pipe.Published()
		if v == nil {
			v, sq = s.initView, s.initSeq
		}
		degraded = degraded || dg
		seq += sq
		if out == nil {
			out = v
		} else {
			out = out.Union(v)
		}
	}
	return out, seq, degraded
}

// DegradedFor reports whether any shard that ops would touch is
// degraded — the per-key-range health check: a broken shard degrades
// submissions for its key range only.
func (m *Multi) DegradedFor(ops []core.UpdateOp) bool {
	for _, op := range ops {
		c, p, _ := m.router.Placement(op)
		if m.shards[c].pipe.Degraded() || m.shards[p].pipe.Degraded() {
			return true
		}
	}
	return false
}

// ShardStatuses returns each shard's health for status endpoints.
func (m *Multi) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(m.shards))
	for i, s := range m.shards {
		_, sq, dg := s.pipe.Published()
		if sq == 0 {
			sq = s.initSeq
		}
		out[i] = ShardStatus{Shard: i, Seq: sq, Degraded: dg}
	}
	return out
}

// Close shuts every pipeline down (draining accepted ops), then closes
// the store sessions and txlogs. The first error wins; a latched shard
// reports its terminal error here.
func (m *Multi) Close() error {
	m.closeOnce.Do(func() {
		for i, s := range m.shards {
			if err := s.pipe.Close(); err != nil && m.closeErr == nil {
				m.closeErr = fmt.Errorf("shard %d: %w", i, err)
			}
			if err := s.pipe.Store().Close(); err != nil && m.closeErr == nil {
				m.closeErr = fmt.Errorf("shard %d store: %w", i, err)
			}
			if err := s.tx.Close(); err != nil && m.closeErr == nil {
				m.closeErr = fmt.Errorf("shard %d txlog: %w", i, err)
			}
		}
	})
	return m.closeErr
}
