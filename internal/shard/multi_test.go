package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/serve"
	"github.com/constcomp/constcomp/internal/store"
	"github.com/constcomp/constcomp/internal/value"
)

// shardFixture is the paper's EDM schema with nEmp employees
// alternating between two departments — enough rows that every shard
// holds both departments for small K.
func shardFixture(nEmp int) (*core.Pair, *relation.Relation, *value.Symbols) {
	u := attr.MustUniverse("E", "D", "M")
	sigma := dep.MustParseSet(u, "E -> D\nD -> M")
	s := core.MustSchema(u, sigma)
	pair := core.MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	db := relation.New(u.All())
	for i := 0; i < nEmp; i++ {
		db.Insert(relation.Tuple{
			syms.Const(fmt.Sprintf("emp%d", i)),
			syms.Const(fmt.Sprintf("dept%d", i%2)),
			syms.Const(fmt.Sprintf("mgr%d", i%2)),
		})
	}
	return pair, db, syms
}

func shardFSs(base store.FS, k int) []store.FS {
	fss := make([]store.FS, k)
	for i := range fss {
		fss[i] = SubFS(base, fmt.Sprintf("s%d/", i))
	}
	return fss
}

func mustOpen(t *testing.T, fss []store.FS, pair *core.Pair, db *relation.Relation, syms *value.Symbols, opts Options) (*Multi, *Report) {
	t.Helper()
	m, rep, err := Open(fss, pair, db, syms, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m, rep
}

// viewOf projects the base instance to the {E, D} view.
func viewOf(pair *core.Pair, db *relation.Relation) *relation.Relation {
	return db.Project(pair.ViewAttrs())
}

// deptCountOn counts view rows with department d living on shard k.
func deptCountOn(m *Multi, view *relation.Relation, k int, d value.Value) int {
	n := 0
	for _, row := range view.Tuples() {
		if row[1] == d && m.router.shardOfTuple(row) == k {
			n++
		}
	}
	return n
}

// waitView polls Published until it equals want: acks race the
// committer's publishView, so an immediate read can see the prior view.
func waitView(t *testing.T, m *Multi, want *relation.Relation) {
	t.Helper()
	var got *relation.Relation
	for i := 0; i < 500; i++ {
		got, _, _ = m.Published()
		if got != nil && got.Equal(want) {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	gl := -1
	if got != nil {
		gl = got.Len()
	}
	t.Fatalf("published view never converged: got %d rows, want %d", gl, want.Len())
}

// pickInserts returns n insert tuples whose decide succeeds per shard
// (the target shard already holds the tuple's department), updating
// view as it goes.
func pickInserts(t *testing.T, m *Multi, view *relation.Relation, n int, prefix string) []relation.Tuple {
	t.Helper()
	var out []relation.Tuple
	for i := 0; len(out) < n && i < 100*n+200; i++ {
		dv := m.syms.Const(fmt.Sprintf("dept%d", i%2))
		tup := relation.Tuple{m.syms.Const(fmt.Sprintf("%s%d", prefix, i)), dv}
		if deptCountOn(m, view, m.router.shardOfTuple(tup), dv) >= 1 {
			out = append(out, tup)
			view.Insert(tup)
		}
	}
	if len(out) < n {
		t.Fatalf("found only %d/%d per-shard-translatable inserts", len(out), n)
	}
	return out
}

// findCrossOp searches the fixture for a replacement that moves a key
// between shards and is translatable on both sides: the coordinator
// keeps another row of the old tuple's department, and the participant
// already holds that department.
func findCrossOp(t *testing.T, m *Multi, pair *core.Pair, db *relation.Relation, syms *value.Symbols) (old, nw relation.Tuple, coord, part int) {
	t.Helper()
	view := viewOf(pair, db)
	for _, row := range view.Tuples() {
		c := m.router.shardOfTuple(row)
		if deptCountOn(m, view, c, row[1]) < 2 {
			continue // the delete half would be untranslatable
		}
		for i := 0; i < 200; i++ {
			name := fmt.Sprintf("mv%d", i)
			p := m.router.ShardOfName(name)
			if p == c || deptCountOn(m, view, p, row[1]) < 1 {
				continue
			}
			return row, relation.Tuple{syms.Const(name), row[1]}, c, p
		}
	}
	t.Fatal("no translatable cross-shard replacement found in fixture")
	return nil, nil, 0, 0
}

func assertTxLogsEmpty(t *testing.T, fss []store.FS) {
	t.Helper()
	for i, fsys := range fss {
		scan, err := ReadTxLog(fsys)
		if err != nil {
			t.Fatalf("shard %d txlog: %v", i, err)
		}
		if len(scan.Records) != 0 {
			t.Fatalf("shard %d txlog holds %d orphaned records", i, len(scan.Records))
		}
	}
}

func TestMultiSinglesAcrossShards(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 4)
	m, rep := mustOpen(t, fss, pair, db, syms, Options{Shards: 4})
	defer m.Close()
	if len(rep.Resolved) != 0 {
		t.Fatalf("fresh instance resolved %d intents", len(rep.Resolved))
	}

	ctx := context.Background()
	expected := viewOf(pair, db)
	for i, tup := range pickInserts(t, m, expected, 8, "new") {
		d, err := m.Apply(ctx, core.Insert(tup))
		if err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		if !d.Translatable {
			t.Fatalf("insert %d rejected: %s", i, d.Reason)
		}
	}
	// Delete an employee whose shard keeps another row of its dept.
	var victim relation.Tuple
	for _, row := range expected.Tuples() {
		if deptCountOn(m, expected, m.router.shardOfTuple(row), row[1]) >= 2 {
			victim = row
			break
		}
	}
	if victim == nil {
		t.Fatal("no deletable employee in fixture")
	}
	if _, err := m.Apply(ctx, core.Delete(victim)); err != nil {
		t.Fatalf("delete: %v", err)
	}
	expected.Delete(victim)

	waitView(t, m, expected)
	// Single-shard traffic never touches a txlog.
	assertTxLogsEmpty(t, fss)
}

func TestMultiCrossShardCommit(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 4)
	m, _ := mustOpen(t, fss, pair, db, syms, Options{Shards: 4})
	defer m.Close()

	old, nw, _, _ := findCrossOp(t, m, pair, db, syms)
	w, err := m.ApplyAsync(context.Background(), core.Replace(old, nw))
	if err != nil {
		t.Fatal(err)
	}
	cp, ok := w.(*CrossPending)
	if !ok {
		t.Fatalf("cross-shard op returned %T, want *CrossPending", w)
	}
	if cp.Xid() == 0 {
		t.Fatal("cross pending carries zero xid")
	}
	d, err := cp.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable || d.Reason != core.ReasonOK {
		t.Fatalf("cross replace decision: %+v", d)
	}

	expected := viewOf(pair, db)
	expected.Delete(old)
	expected.Insert(nw)
	waitView(t, m, expected)
	// The two-phase records are retired on success.
	assertTxLogsEmpty(t, fss)
}

func TestMultiCrossShardRejectionIsAtomic(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 4)
	m, _ := mustOpen(t, fss, pair, db, syms, Options{Shards: 4})
	defer m.Close()

	old, nw, _, _ := findCrossOp(t, m, pair, db, syms)
	// Poison the insert half: a department no shard has ever seen makes
	// it untranslatable (no shared match), so the whole op must abort
	// with zero bytes written anywhere.
	bad := relation.Tuple{nw[0], syms.Const("nodept")}
	_, err := m.Apply(context.Background(), core.Replace(old, bad))
	if !errors.Is(err, core.ErrRejected) {
		t.Fatalf("poisoned cross replace: %v, want ErrRejected", err)
	}

	waitView(t, m, viewOf(pair, db))
	assertTxLogsEmpty(t, fss)
	// Both shards keep serving: the clean variant goes through.
	if _, err := m.Apply(context.Background(), core.Replace(old, nw)); err != nil {
		t.Fatalf("healthy cross replace after rejection: %v", err)
	}
}

func TestMultiCrossShardIdentity(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 4)
	m, _ := mustOpen(t, fss, pair, db, syms, Options{Shards: 4})
	defer m.Close()

	// Old tuple absent, new tuple already present, keys on different
	// shards: both halves are identities, so nothing may be written.
	view := viewOf(pair, db)
	var present, absent relation.Tuple
	for _, row := range view.Tuples() {
		for i := 0; i < 200 && absent == nil; i++ {
			name := fmt.Sprintf("ghost%d", i)
			if m.router.ShardOfName(name) != m.router.shardOfTuple(row) {
				absent = relation.Tuple{syms.Const(name), row[1]}
				present = row
			}
		}
		if absent != nil {
			break
		}
	}
	if absent == nil {
		t.Fatal("no cross-shard identity pair found")
	}
	_, seq0, _ := m.Published()
	d, err := m.Apply(context.Background(), core.Replace(absent, present))
	if err != nil {
		t.Fatal(err)
	}
	if d.Reason != core.ReasonIdentity {
		t.Fatalf("identity cross replace decided %s", d.Reason)
	}
	_, seq1, _ := m.Published()
	if seq1 != seq0 {
		t.Fatalf("identity cross replace advanced seq %d -> %d", seq0, seq1)
	}
	assertTxLogsEmpty(t, fss)
}

func TestMultiReopenPreservesState(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 2)
	m, _ := mustOpen(t, fss, pair, db, syms, Options{Shards: 2})

	ctx := context.Background()
	expected := viewOf(pair, db)
	for _, tup := range pickInserts(t, m, expected, 2, "new") {
		if _, err := m.Apply(ctx, core.Insert(tup)); err != nil {
			t.Fatal(err)
		}
	}
	old, nw, _, _ := findCrossOp(t, m, pair, db, syms)
	if _, err := m.Apply(ctx, core.Replace(old, nw)); err != nil {
		t.Fatal(err)
	}
	expected.Delete(old)
	expected.Insert(nw)
	waitView(t, m, expected)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	m2, rep := mustOpen(t, fss, pair, db, syms, Options{Shards: 2})
	defer m2.Close()
	if len(rep.Resolved) != 0 {
		t.Fatalf("clean reopen resolved %d intents", len(rep.Resolved))
	}
	waitView(t, m2, expected)
}

// crashHarness builds a durable 2-shard instance, closes it cleanly,
// and exposes what a scripted crash scenario needs to plant txlog
// records and journal state by hand.
type crashHarness struct {
	mem         *store.MemFS
	fss         []store.FS
	pair        *core.Pair
	db          *relation.Relation
	syms        *value.Symbols
	old         relation.Tuple // owned by coord
	nw          relation.Tuple // owned by part
	coord, part int
}

func newCrashHarness(t *testing.T) *crashHarness {
	t.Helper()
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 2)
	m, _ := mustOpen(t, fss, pair, db, syms, Options{Shards: 2})
	old, nw, coord, part := findCrossOp(t, m, pair, db, syms)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}
	return &crashHarness{mem: mem, fss: fss, pair: pair, db: db, syms: syms,
		old: old, nw: nw, coord: coord, part: part}
}

func (h *crashHarness) intent(xid uint64) TxRecord {
	names := func(tup relation.Tuple) []string {
		out := make([]string, len(tup))
		for i, v := range tup {
			out[i] = h.syms.Name(v)
		}
		return out
	}
	return TxRecord{Xid: xid, Kind: txIntent, Coord: h.coord, Part: h.part,
		Old: names(h.old), New: names(h.nw)}
}

// plant writes shard k's txlog as the dying process left it: the first
// synced records are durable, the rest are eaten by the power cut.
func (h *crashHarness) plant(t *testing.T, k, synced int, recs ...[]byte) {
	t.Helper()
	l, err := createTxLog(h.fss[k])
	if err != nil {
		t.Fatal(err)
	}
	if err := h.fss[k].SyncDir(); err != nil {
		t.Fatal(err)
	}
	for i, rec := range recs {
		if err := l.write(rec); err != nil {
			t.Fatal(err)
		}
		if i == synced-1 {
			if err := l.f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
}

// applyHalfDirect journals one half on shard k, fsynced, as the dying
// process's post-commit apply would have.
func (h *crashHarness) applyHalfDirect(t *testing.T, k int, op core.UpdateOp) {
	t.Helper()
	st, _, err := store.Recover(h.fss[k], h.pair, h.syms, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Apply(op); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCrossShardCrashMatrix walks the crash points of the two-phase
// protocol: each case plants the txlog and journal state a power cut
// at that point leaves behind, and recovery must resolve it to
// all-or-nothing — never a half-applied cross-shard op — with no
// orphaned intents surviving.
func TestCrossShardCrashMatrix(t *testing.T) {
	const xid = 41
	cases := []struct {
		name      string
		setup     func(t *testing.T, h *crashHarness)
		committed bool
		// The halves recovery must redo.
		redoCoord, redoPart bool
	}{
		{
			name: "intent-participant-only",
			setup: func(t *testing.T, h *crashHarness) {
				h.plant(t, h.part, 1, encodeIntent(h.intent(xid)))
			},
		},
		{
			name: "intent-both",
			setup: func(t *testing.T, h *crashHarness) {
				h.plant(t, h.part, 1, encodeIntent(h.intent(xid)))
				h.plant(t, h.coord, 1, encodeIntent(h.intent(xid)))
			},
		},
		{
			name: "commit-unfsynced",
			setup: func(t *testing.T, h *crashHarness) {
				h.plant(t, h.part, 1, encodeIntent(h.intent(xid)))
				// The commit record was written but its fsync never
				// finished: the power cut eats it, so the op aborted.
				h.plant(t, h.coord, 1, encodeIntent(h.intent(xid)), encodeMark(xid, txCommit))
			},
		},
		{
			name: "committed-no-halves",
			setup: func(t *testing.T, h *crashHarness) {
				h.plant(t, h.part, 1, encodeIntent(h.intent(xid)))
				h.plant(t, h.coord, 2, encodeIntent(h.intent(xid)), encodeMark(xid, txCommit))
			},
			committed: true, redoCoord: true, redoPart: true,
		},
		{
			name: "committed-partial-coordinator-half",
			setup: func(t *testing.T, h *crashHarness) {
				h.plant(t, h.part, 1, encodeIntent(h.intent(xid)))
				h.plant(t, h.coord, 2, encodeIntent(h.intent(xid)), encodeMark(xid, txCommit))
				h.applyHalfDirect(t, h.coord, core.Delete(h.old))
			},
			committed: true, redoCoord: false, redoPart: true,
		},
		{
			name: "committed-both-halves",
			setup: func(t *testing.T, h *crashHarness) {
				h.plant(t, h.part, 1, encodeIntent(h.intent(xid)))
				h.plant(t, h.coord, 2, encodeIntent(h.intent(xid)), encodeMark(xid, txCommit))
				h.applyHalfDirect(t, h.coord, core.Delete(h.old))
				h.applyHalfDirect(t, h.part, core.Insert(h.nw))
			},
			committed: true, redoCoord: false, redoPart: false,
		},
		{
			name: "done-marks-suppress-redo",
			setup: func(t *testing.T, h *crashHarness) {
				h.plant(t, h.part, 2, encodeIntent(h.intent(xid)), encodeMark(xid, txDone))
				h.plant(t, h.coord, 3, encodeIntent(h.intent(xid)),
					encodeMark(xid, txCommit), encodeMark(xid, txDone))
				h.applyHalfDirect(t, h.coord, core.Delete(h.old))
				h.applyHalfDirect(t, h.part, core.Insert(h.nw))
			},
			committed: true, redoCoord: false, redoPart: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			h := newCrashHarness(t)
			tc.setup(t, h)
			h.mem.Crash()
			m, rep, err := Open(h.fss, h.pair, h.db, h.syms, Options{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer m.Close()

			if len(rep.Resolved) != 1 {
				t.Fatalf("resolved %d intents, want 1", len(rep.Resolved))
			}
			res := rep.Resolved[0]
			if res.Xid != xid || res.Committed != tc.committed ||
				res.RedoneCoord != tc.redoCoord || res.RedonePart != tc.redoPart {
				t.Fatalf("resolution %+v, want committed=%v redoCoord=%v redoPart=%v",
					res, tc.committed, tc.redoCoord, tc.redoPart)
			}

			// All-or-nothing: the view shows the full replace or none of it.
			want := viewOf(h.pair, h.db)
			if tc.committed {
				want.Delete(h.old)
				want.Insert(h.nw)
			}
			waitView(t, m, want)
			// No orphaned intents survive a recovery.
			assertTxLogsEmpty(t, h.fss)

			// Resolution is idempotent across a crash during recovery: a
			// second power cut and reopen changes nothing further.
			if err := m.Close(); err != nil {
				t.Fatal(err)
			}
			h.mem.Crash()
			m2, rep2, err := Open(h.fss, h.pair, h.db, h.syms, Options{Shards: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer m2.Close()
			if len(rep2.Resolved) != 0 {
				t.Fatalf("second recovery resolved %d intents", len(rep2.Resolved))
			}
			waitView(t, m2, want)
		})
	}
}

// failFS wraps a shard FS with persistent, re-armable txlog faults —
// failure modes FaultPlan's one-shot counters cannot model. Sync
// faults skip the first skipSyncs txlog fsyncs, then fail the next
// failSyncs of them.
type failFS struct {
	store.FS
	mu           sync.Mutex
	skipSyncs    int
	failSyncs    int
	failTruncate bool
}

func (f *failFS) arm(skip, fail int, failTrunc bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.skipSyncs, f.failSyncs, f.failTruncate = skip, fail, failTrunc
}

func (f *failFS) takeSyncFault() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.skipSyncs > 0 {
		f.skipSyncs--
		return false
	}
	if f.failSyncs > 0 {
		f.failSyncs--
		return true
	}
	return false
}

func (f *failFS) wrap(file store.File, name string, err error) (store.File, error) {
	if err != nil || name != TxLogFile {
		return file, err
	}
	return &failFile{File: file, fs: f}, nil
}

func (f *failFS) Create(name string) (store.File, error) {
	file, err := f.FS.Create(name)
	return f.wrap(file, name, err)
}

func (f *failFS) OpenAppend(name string) (store.File, error) {
	file, err := f.FS.OpenAppend(name)
	return f.wrap(file, name, err)
}

func (f *failFS) Truncate(name string, size int64) error {
	f.mu.Lock()
	failTrunc := f.failTruncate && name == TxLogFile
	f.mu.Unlock()
	if failTrunc {
		return errors.New("injected truncate fault")
	}
	return f.FS.Truncate(name, size)
}

type failFile struct {
	store.File
	fs *failFS
}

func (f *failFile) Sync() error {
	if f.fs.takeSyncFault() {
		return errors.New("injected sync fault")
	}
	return f.File.Sync()
}

// TestCrossShardCommitSyncFaultAborts: txlog fsync faults on the
// coordinator — first on the intent, then on the commit record with
// every retry failing — must abort safely: the submitter sees an
// error, no state moves, no shard is fenced, and the op goes through
// once the fault clears.
func TestCrossShardCommitSyncFaultAborts(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 2)
	m, _ := mustOpen(t, fss, pair, db, syms, Options{Shards: 2})
	old, nw, coord, _ := findCrossOp(t, m, pair, db, syms)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	ffs := &failFS{FS: fss[coord]}
	faulted := make([]store.FS, 2)
	copy(faulted, fss)
	faulted[coord] = ffs
	m, _ = mustOpen(t, faulted, pair, db, syms, Options{Shards: 2,
		CommitRetries: 2, Serve: serve.Options{BackoffBaseNS: 1}})
	defer m.Close()
	base := viewOf(pair, db)

	// The coordinator's first txlog fsync is its intent (the
	// participant's intent goes first but lives on the other shard):
	// blowing it aborts before the commit point.
	ffs.arm(0, 1, false)
	if _, err := m.Apply(context.Background(), core.Replace(old, nw)); err == nil {
		t.Fatal("cross op with blown coordinator intent fsync succeeded")
	}
	waitView(t, m, base)

	// Let the intent through, then fail the commit fsync and both
	// retries (CommitRetries=2): the truncate escape hatch demotes the
	// indeterminate record to a durable abort.
	ffs.arm(1, 3, false)
	if _, err := m.Apply(context.Background(), core.Replace(old, nw)); err == nil {
		t.Fatal("cross op with blown commit fsync succeeded")
	}
	waitView(t, m, base)
	if m.DegradedFor([]core.UpdateOp{core.Replace(old, nw)}) {
		t.Fatal("safe abort left a shard degraded")
	}
	assertTxLogsEmpty(t, fss)

	// Faults cleared: the same op sails through.
	ffs.arm(0, 0, false)
	d, err := m.Apply(context.Background(), core.Replace(old, nw))
	if err != nil || !d.Translatable {
		t.Fatalf("cross op after faults cleared: %v", err)
	}
	want := base.Clone()
	want.Delete(old)
	want.Insert(nw)
	waitView(t, m, want)
}

// TestCrossShardInDoubtFencesShards: when the commit record's
// durability is indeterminate AND the truncate escape hatch fails, the
// outcome is genuinely in doubt — both participating shards must be
// fenced (any later op could collide with what recovery redoes), and
// the next recovery settles the op from the txlogs alone.
func TestCrossShardInDoubtFencesShards(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 2)
	m, _ := mustOpen(t, fss, pair, db, syms, Options{Shards: 2})
	old, nw, coord, _ := findCrossOp(t, m, pair, db, syms)
	if err := m.Close(); err != nil {
		t.Fatal(err)
	}

	ffs := &failFS{FS: fss[coord]}
	faulted := make([]store.FS, 2)
	copy(faulted, fss)
	faulted[coord] = ffs
	m, _ = mustOpen(t, faulted, pair, db, syms, Options{Shards: 2,
		CommitRetries: 1, Serve: serve.Options{BackoffBaseNS: 1}})

	// Intent fsync passes; the commit fsync, its retry, and the
	// truncate hatch all fail: in doubt.
	ffs.arm(1, 1<<20, true)
	if _, err := m.Apply(context.Background(), core.Replace(old, nw)); err == nil {
		t.Fatal("in-doubt cross op reported success")
	}

	// Both shards are fenced: ops routed to either fail (K=2, so every
	// key range is covered by the fence). A submit can race the latch,
	// so judge by the ack, not the enqueue.
	for i := 0; i < 20; i++ {
		tup := relation.Tuple{syms.Const(fmt.Sprintf("probe%d", i)), syms.Const("dept0")}
		if _, err := m.Apply(context.Background(), core.Insert(tup)); err == nil {
			t.Fatalf("probe %d acked while in doubt", i)
		}
	}
	_ = m.Close() // carries the fence error by design

	// Power cut: the unsynced commit record dies with it, recovery
	// reads the surviving intents as an abort, and the fleet serves.
	ffs.arm(0, 0, false)
	mem.Crash()
	m2, rep, err := Open(fss, pair, db, syms, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if len(rep.Resolved) != 1 || rep.Resolved[0].Committed {
		t.Fatalf("recovery resolution %+v, want one aborted intent", rep.Resolved)
	}
	waitView(t, m2, viewOf(pair, db))
	assertTxLogsEmpty(t, fss)
	if _, err := m2.Apply(context.Background(), core.Replace(old, nw)); err != nil {
		t.Fatalf("cross op after recovery: %v", err)
	}
}

// TestShardFaultConfinement: a journal fsync fault on one shard breaks
// only that shard's session; its pipeline resurrects through the
// per-shard Resurrect hook, every submitted op heals, and no other
// shard ever turns degraded.
func TestShardFaultConfinement(t *testing.T) {
	pair, db, syms := shardFixture(16)
	mem := store.NewMemFS()
	fss := shardFSs(mem, 4)
	const sick = 1
	var armed atomic.Bool
	faulted := make([]store.FS, 4)
	copy(faulted, fss)
	faulted[sick] = store.NewFaultFS(fss[sick], store.FaultPlan{
		Match:      func(name string) bool { return armed.Load() && name == store.JournalFile },
		FailSyncAt: 1,
	})
	m, _ := mustOpen(t, faulted, pair, db, syms,
		Options{Shards: 4, Serve: serve.Options{BackoffBaseNS: 1}})
	defer m.Close()
	armed.Store(true)

	ctx := context.Background()
	expected := viewOf(pair, db)
	tups := pickInserts(t, m, expected, 24, "conf")
	waiters := make([]serve.Waiter, len(tups))
	for i, tup := range tups {
		w, err := m.ApplyAsync(ctx, core.Insert(tup))
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
		waiters[i] = w
	}
	for i, w := range waiters {
		if _, err := w.Wait(); err != nil {
			t.Fatalf("op %d not healed: %v", i, err)
		}
	}
	for k := 0; k < 4; k++ {
		if k != sick && m.shards[k].pipe.Degraded() {
			t.Fatalf("healthy shard %d degraded by shard %d's fault", k, sick)
		}
	}
	waitView(t, m, expected)
}
