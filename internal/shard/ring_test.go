package shard

import (
	"fmt"
	"testing"

	"github.com/constcomp/constcomp/internal/core"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestRouterRejectsZeroShards(t *testing.T) {
	if _, err := NewRouter(0, 0, nil); err == nil {
		t.Fatal("NewRouter(0) succeeded")
	}
}

func TestRouterK1RoutesEverythingToZero(t *testing.T) {
	r, err := NewRouter(1, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if got := r.ShardOfName(fmt.Sprintf("key%d", i)); got != 0 {
			t.Fatalf("K=1 routed key%d to shard %d", i, got)
		}
	}
}

func TestRouterDistribution(t *testing.T) {
	const k, keys = 4, 4000
	r, err := NewRouter(k, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	counts := make([]int, k)
	for i := 0; i < keys; i++ {
		s := r.ShardOfName(fmt.Sprintf("key%d", i))
		if s < 0 || s >= k {
			t.Fatalf("shard %d out of range", s)
		}
		counts[s]++
	}
	// With 32 virtual nodes per shard the worst shard should stay well
	// inside a 2x band around fair share.
	fair := keys / k
	for s, c := range counts {
		if c < fair/2 || c > fair*2 {
			t.Fatalf("shard %d owns %d of %d keys (fair share %d): ring too lumpy", s, c, keys, fair)
		}
	}
}

func TestRouterStableAcrossInstances(t *testing.T) {
	a, _ := NewRouter(8, 0, nil)
	b, _ := NewRouter(8, 0, nil)
	for i := 0; i < 500; i++ {
		name := fmt.Sprintf("key%d", i)
		if a.ShardOfName(name) != b.ShardOfName(name) {
			t.Fatalf("placement of %s differs between identical routers", name)
		}
	}
}

func TestPlacement(t *testing.T) {
	syms := value.NewSymbols()
	r, err := NewRouter(4, 0, syms)
	if err != nil {
		t.Fatal(err)
	}
	tup := func(e, d string) relation.Tuple {
		return relation.Tuple{syms.Const(e), syms.Const(d)}
	}

	// Inserts and deletes are always single-shard.
	for i := 0; i < 50; i++ {
		e := fmt.Sprintf("emp%d", i)
		for _, op := range []core.UpdateOp{core.Insert(tup(e, "d0")), core.Delete(tup(e, "d0"))} {
			c, p, cross := r.Placement(op)
			if cross || c != p || c != r.ShardOfName(e) {
				t.Fatalf("%v: placement (%d,%d,%v), want single-shard on %d", op.Kind, c, p, cross, r.ShardOfName(e))
			}
		}
	}

	// A replace keeping its key — even with a new dept — never crosses.
	for i := 0; i < 50; i++ {
		e := fmt.Sprintf("emp%d", i)
		c, p, cross := r.Placement(core.Replace(tup(e, "d0"), tup(e, "d1")))
		if cross || c != p {
			t.Fatalf("same-key replace of %s crossed shards (%d,%d)", e, c, p)
		}
	}

	// A key-moving replace crosses exactly when the two keys hash apart,
	// with the old tuple's shard as coordinator.
	sawCross := false
	for i := 0; i < 50; i++ {
		e1, e2 := fmt.Sprintf("emp%d", i), fmt.Sprintf("new%d", i)
		c, p, cross := r.Placement(core.Replace(tup(e1, "d0"), tup(e2, "d0")))
		if c != r.ShardOfName(e1) || p != r.ShardOfName(e2) {
			t.Fatalf("replace %s->%s placed (%d,%d), want (%d,%d)",
				e1, e2, c, p, r.ShardOfName(e1), r.ShardOfName(e2))
		}
		if cross != (c != p) {
			t.Fatalf("replace %s->%s cross=%v with coord %d part %d", e1, e2, cross, c, p)
		}
		sawCross = sawCross || cross
	}
	if !sawCross {
		t.Fatal("no key pair among 50 hashed onto different shards; ring suspicious")
	}
}
