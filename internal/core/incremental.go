package core

// Delta-driven incremental decide/apply: the hot path that makes update
// cost proportional to |Δ| instead of |instance| (after Horn–Perera–
// Cheney, "Incremental Relational Lenses"). A Session lazily builds an
// incState — hash indexes over the view, base and complement, plus a
// chase.Maintained padding fixpoint — and then:
//
//   - decideInc answers Theorems 3/8/9 by probing the indexes for the
//     condition-(a) matches and the per-FD candidate sets instead of
//     scanning the view, and by imposing candidate equalities as
//     MOverlays on the maintained fixpoint instead of re-padding and
//     re-chasing the whole view instance;
//   - applyInc represents the base-instance change as a delta.Delta
//     (Δ⁺, Δ⁻), verifies legality and complement constancy against
//     per-key support counters touching only the delta's keys, and
//     mutates the database and every index in O(|Δ|).
//
// Fallback discipline: decideInc short-circuits only outcomes it can
// prove without a witness row (identity, condition-(a)/(b) rejections,
// full candidate success); a failing candidate chase, an arity error or
// any internal inconsistency returns ok=false and the caller reruns the
// canonical full path, so error messages and counterexample witnesses
// are byte-identical to the non-incremental path. applyInc stages its
// counter updates before touching the database; a staging failure
// invalidates the whole incState (the maps are half-mutated, the
// database is not) and falls back. Invalidation rules: the incState is
// dropped whenever the database pointer is swapped under it (full-path
// apply, AdoptSpeculated), on explicit InvalidateDeltas (the serve
// resync path), when the maintained padding latches a clash, or when
// its tombstone/garbage ratio makes a fresh rebuild cheaper.

import (
	"context"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/delta"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// legalEntry is the invariant of one Z-group of a split FD Z→A over the
// base: all n live rows with this Z-key carry the value a in column A.
type legalEntry struct {
	a value.Value
	n int
}

// incState is the incrementally maintained image of a session's
// database. Every structure is sized by the instance but updated per
// delta tuple.
type incState struct {
	p *Pair
	// view is the maintained π_X image of the session database.
	view *relation.Relation
	// viewBy indexes view rows by the shared columns X∩Y (condition a).
	viewBy *relation.TupleIndex
	// compBy indexes the constant complement by the shared columns: the
	// translation t*π_Y(R) is assembled from its matches.
	compBy *relation.TupleIndex
	// dbByX indexes base rows by their X columns: the rows a deletion
	// or replacement actually removes.
	dbByX *relation.TupleIndex
	// fdIdx[i] indexes view rows by fdPlans[i].zInX — the candidate set
	// of the Theorem 3/9 chase loop. nil when the FD is skippable or
	// Z∩X is empty (then every view row is a candidate).
	fdIdx   []*relation.TupleIndex
	fdViewZ [][]int // zInX columns in view layout, per fdPlan
	aView   []int   // A's view column per fdPlan (-1 when A ∉ X)
	aU      []int   // A's column in the padded U layout, per fdPlan
	zOutU   [][]int // Z∩(U−X) columns in the padded U layout, per fdPlan

	sharedView []int // shared columns in view layout
	sharedComp []int // shared columns in complement layout
	viewAll    []int // all view columns (identity key plan)
	xDb        []int // X columns in base layout (= view column order)
	yDb        []int // Y columns in base layout (= complement order)
	// asmView/asmComp assemble a base tuple per U column: from the view
	// tuple when the attribute is in X, else from the complement row.
	asmView []int
	asmComp []int

	// suppY counts live base rows per complement-row key: complement
	// constancy ⇔ no count reaches zero (new keys cannot appear — Δ⁺
	// rows are assembled from existing complement rows).
	suppY map[string]int
	// legal[i] holds the Z-group invariants of split FD i over the base
	// (plans order, U layout): base legality is checked per Δ⁺ tuple
	// against its own Z-keys only.
	legal []map[string]legalEntry

	// pad is the maintained padding fixpoint of the view (each view row
	// padded to U with per-row fresh nulls from gen and chased), the
	// incremental stand-in for newPadding's batch chase.
	pad   *chase.Maintained
	rowOf map[string]int // view-tuple key → pad row id
	gen   value.NullGen
}

// colsOf resolves an attribute set to column positions in r's layout,
// in ascending attribute order.
func colsOf(r *relation.Relation, s attr.Set) []int {
	out := make([]int, 0, 4)
	s.Each(func(id attr.ID) bool {
		out = append(out, r.Col(id))
		return true
	})
	return out
}

// tupleKey serializes t's values at cols, collision-free (values are
// 64-bit ids interned for the process lifetime).
func tupleKey(t relation.Tuple, cols []int) string {
	b := make([]byte, 0, len(cols)*8)
	for _, c := range cols {
		u := uint64(t[c])
		for i := 0; i < 8; i++ {
			b = append(b, byte(u>>(8*i)))
		}
	}
	return string(b)
}

// tupleVals extracts t's values at cols (for TupleIndex lookups).
func tupleVals(t relation.Tuple, cols []int) []value.Value {
	out := make([]value.Value, len(cols))
	for i, c := range cols {
		out[i] = t[c]
	}
	return out
}

// buildIncState constructs the full image of (db, comp) for pair p. It
// returns nil when the pair is outside the incremental path's scope
// (non-FD Σ is screened by the caller; a padding clash or an illegal
// base cannot occur for a session holding its invariants, but both are
// screened defensively).
func buildIncState(p *Pair, db, comp *relation.Relation) *incState {
	arts := p.artifacts()
	u := p.schema.u
	tmpl := relation.New(u.All())
	view := db.Project(p.x)
	st := &incState{p: p, view: view}
	st.viewAll = make([]int, view.Width())
	for i := range st.viewAll {
		st.viewAll[i] = i
	}
	st.sharedView = colsOf(view, p.shared)
	st.sharedComp = colsOf(comp, p.shared)
	st.xDb = colsOf(db, p.x)
	st.yDb = colsOf(db, p.y)
	st.asmView = make([]int, u.Size())
	st.asmComp = make([]int, u.Size())
	for c, id := range tmpl.Cols() {
		if p.x.Has(id) {
			st.asmView[c] = view.Col(id)
			st.asmComp[c] = -1
		} else {
			st.asmView[c] = -1
			st.asmComp[c] = comp.Col(id)
		}
	}
	st.viewBy = relation.IndexRelation(view, st.sharedView)
	st.compBy = relation.IndexRelation(comp, st.sharedComp)
	st.dbByX = relation.IndexRelation(db, st.xDb)

	n := len(arts.fdPlans)
	st.fdIdx = make([]*relation.TupleIndex, n)
	st.fdViewZ = make([][]int, n)
	st.aView = make([]int, n)
	st.aU = make([]int, n)
	st.zOutU = make([][]int, n)
	for i, fp := range arts.fdPlans {
		st.aU[i] = tmpl.Col(fp.aID)
		st.zOutU[i] = colsOf(tmpl, fp.zOutX)
		st.aView[i] = -1
		if fp.aInX {
			st.aView[i] = view.Col(fp.aID)
		}
		if fp.skippable {
			continue
		}
		st.fdViewZ[i] = colsOf(view, fp.zInX)
		if len(st.fdViewZ[i]) > 0 {
			st.fdIdx[i] = relation.IndexRelation(view, st.fdViewZ[i])
		}
	}

	st.suppY = make(map[string]int, db.Len())
	st.legal = make([]map[string]legalEntry, len(arts.plans))
	for i := range st.legal {
		//constvet:allow cachebound -- not a cache: exact per-key image of the base instance, shrunk on delete
		st.legal[i] = make(map[string]legalEntry, db.Len())
	}
	for _, row := range db.Tuples() {
		st.suppY[tupleKey(row, st.yDb)]++
		for i, pl := range arts.plans {
			zk := tupleKey(row, pl[0])
			a := row[pl[1][0]]
			e, ok := st.legal[i][zk]
			if !ok {
				st.legal[i][zk] = legalEntry{a: a, n: 1}
				continue
			}
			if e.a != a {
				return nil // base violates Σ: session invariant broken
			}
			e.n++
			st.legal[i][zk] = e
		}
	}

	st.pad = chase.NewMaintained(arts.plans)
	st.rowOf = make(map[string]int, view.Len())
	for _, vt := range view.Tuples() {
		st.rowOf[tupleKey(vt, st.viewAll)] = st.pad.AddRow(st.padRow(vt))
	}
	if st.pad.ConstClash() {
		return nil // view inconsistent with Σ: session invariant broken
	}
	return st
}

// padRow pads a view tuple to the U layout with fresh labeled nulls in
// the U−X columns (the Maintained fresh-nulls precondition).
func (st *incState) padRow(vt relation.Tuple) relation.Tuple {
	pr := make(relation.Tuple, len(st.asmView))
	for c := range pr {
		if vc := st.asmView[c]; vc >= 0 {
			pr[c] = vt[vc]
		} else {
			pr[c] = st.gen.Fresh()
		}
	}
	return pr
}

// assemble builds the base tuple t ⋈ comp over U.
func (st *incState) assemble(vt, comp relation.Tuple) relation.Tuple {
	nt := make(relation.Tuple, len(st.asmView))
	for c := range nt {
		if vc := st.asmView[c]; vc >= 0 {
			nt[c] = vt[vc]
		} else {
			nt[c] = comp[st.asmComp[c]]
		}
	}
	return nt
}

// overlay imposes candidate ri's Z∩(U−X) cells equal to μ's on the
// maintained fixpoint, memoized per decide by imposed-pair signature
// (distinct candidates frequently impose identical equalities).
func (st *incState) overlay(cache map[string]*chase.MOverlay, ri, mu int, zOutU []int) *chase.MOverlay {
	var pairs [][2]value.Value
	for _, c := range zOutU {
		a, b := st.pad.Cell(ri, c), st.pad.Cell(mu, c)
		if a != b {
			pairs = append(pairs, [2]value.Value{a, b})
		}
	}
	key := pairsSignature(pairs)
	if ov, ok := cache[key]; ok {
		return ov
	}
	ov := st.pad.WithEqualities(pairs)
	//constvet:allow cachebound -- dies with one decide; entries bounded by its equality sets
	cache[key] = ov
	return ov
}

// padID resolves a view tuple to its maintained-padding row id.
func (st *incState) padID(vt relation.Tuple) (int, bool) {
	id, ok := st.rowOf[tupleKey(vt, st.viewAll)]
	return id, ok
}

// decideInc answers op against the maintained state. ok=false means the
// incremental path cannot prove the canonical outcome (chase
// counterexample witnesses, arity and domain errors, internal
// inconsistencies, a cancelled context) and the caller must run the
// full decide — which reproduces the canonical witness or budget error.
func (s *Session) decideInc(ctx context.Context, st *incState, op UpdateOp) (*Decision, bool) {
	if ctx.Err() != nil {
		return nil, false // full path surfaces the budget error
	}
	switch op.Kind {
	case UpdateInsert:
		return s.decideInsertInc(ctx, st, op.Tuple)
	case UpdateDelete:
		return s.decideDeleteInc(st, op.Tuple)
	case UpdateReplace:
		return s.decideReplaceInc(ctx, st, op.Tuple, op.With)
	}
	return nil, false
}

func (s *Session) decideInsertInc(ctx context.Context, st *incState, t relation.Tuple) (*Decision, bool) {
	v := st.view
	if len(t) != v.Width() {
		return nil, false // full path reports the arity error
	}
	if v.Contains(t) {
		return &Decision{Translatable: true, Reason: ReasonIdentity}, true
	}
	d := &Decision{}
	matches := st.viewBy.Lookup(tupleVals(t, st.sharedView))
	if len(matches) == 0 {
		d.Reason = ReasonNoSharedMatch
		return d, true
	}
	if r, done := s.pair.checkConditionB(d); done {
		return r, true
	}
	mu, ok := st.padID(matches[0])
	if !ok {
		return nil, false
	}
	if !s.chaseCandidatesInc(ctx, st, d, t, mu, relation.Tuple(nil)) {
		return nil, false
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, true
}

func (s *Session) decideDeleteInc(st *incState, t relation.Tuple) (*Decision, bool) {
	v := st.view
	if len(t) != v.Width() {
		return nil, false
	}
	if !v.Contains(t) {
		return &Decision{Translatable: true, Reason: ReasonIdentity}, true
	}
	d := &Decision{}
	// Condition (a): t[X∩Y] ∈ π_{X∩Y}(V − t).
	found := false
	for _, row := range st.viewBy.Lookup(tupleVals(t, st.sharedView)) {
		if !row.Equal(t) {
			found = true
			break
		}
	}
	if !found {
		d.Reason = ReasonNoSharedMatch
		return d, true
	}
	if r, done := s.pair.checkConditionB(d); done {
		return r, true
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, true
}

func (s *Session) decideReplaceInc(ctx context.Context, st *incState, t1, t2 relation.Tuple) (*Decision, bool) {
	v := st.view
	if len(t1) != v.Width() || len(t2) != v.Width() {
		return nil, false
	}
	if !v.Contains(t1) || v.Contains(t2) {
		return nil, false // full path reports the domain errors
	}
	d := &Decision{}
	sameShared := tupleKey(t1, st.sharedView) == tupleKey(t2, st.sharedView)
	if !sameShared {
		// Case 1: t1[X∩Y] must survive in V − t1, t2[X∩Y] must exist.
		t1Survives := false
		for _, row := range st.viewBy.Lookup(tupleVals(t1, st.sharedView)) {
			if !row.Equal(t1) {
				t1Survives = true
				break
			}
		}
		if !t1Survives || len(st.viewBy.Lookup(tupleVals(t2, st.sharedView))) == 0 {
			d.Reason = ReasonNoSharedMatch
			return d, true
		}
		if r, done := s.pair.checkConditionB(d); done {
			return r, true
		}
	}
	matches := st.viewBy.Lookup(tupleVals(t2, st.sharedView))
	if len(matches) == 0 {
		d.Reason = ReasonNoSharedMatch
		return d, true
	}
	mu, ok := st.padID(matches[0])
	if !ok {
		return nil, false
	}
	if !s.chaseCandidatesInc(ctx, st, d, t2, mu, t1) {
		return nil, false
	}
	d.Translatable = true
	d.Reason = ReasonOK
	return d, true
}

// chaseCandidatesInc runs condition (c) — the chase of R(V, t, r, f)
// for every FD f and candidate r — against the maintained fixpoint.
// skip, when non-nil, is the replaced tuple t1 (its database rows are
// removed by the translation, so it is never a candidate). It reports
// false when some candidate chase fails OR the state is inconsistent;
// either way the caller falls back to the full decide, which
// reconstructs the canonical witness. The choice of μ does not affect
// the verdict: any view row agreeing with t on X∩Y yields the same
// success set (the fixpoint satisfies every FD Σ implies).
func (s *Session) chaseCandidatesInc(ctx context.Context, st *incState, d *Decision, t relation.Tuple, mu int, skip relation.Tuple) bool {
	v := st.view
	ovCache := make(map[string]*chase.MOverlay)
	for i, fp := range s.pair.artifacts().fdPlans {
		if fp.skippable {
			continue // no candidate chase for this FD can fail (see fdPlan)
		}
		var cands []relation.Tuple
		if st.fdIdx[i] != nil {
			cands = st.fdIdx[i].Lookup(tupleVals(t, st.fdViewZ[i]))
		} else {
			cands = v.Tuples() // Z∩X = ∅: every row agrees vacuously
		}
		for _, row := range cands {
			if skip != nil && row.Equal(skip) {
				continue
			}
			if fp.aInX && row[st.aView[i]] == t[st.aView[i]] {
				continue // no violation possible through this r
			}
			ri, ok := st.padID(row)
			if !ok {
				return false
			}
			if !fp.aInX && ri == mu {
				continue // r = μ: r[A] = μ[A] trivially
			}
			if ctx.Err() != nil {
				return false // cancelled: full path surfaces the budget error
			}
			d.ChaseCalls++
			ov := st.overlay(ovCache, ri, mu, st.zOutU[i])
			success := ov.ConstClash()
			if !success && !fp.aInX {
				success = ov.Same(st.pad.Cell(ri, st.aU[i]), st.pad.Cell(mu, st.aU[i]))
			}
			if !success {
				return false // fall back: full path rebuilds the witness
			}
		}
	}
	return true
}

// applyInc performs the translated update as a delta over the base,
// verifying legality and complement constancy against the support
// counters. It mutates the database (cloning first if a StateRef
// shares it) and every index in O(|Δ|). ok=false leaves the database
// untouched but may have invalidated the incState; the caller falls
// back to the full translate/verify path.
func (s *Session) applyInc(st *incState, op UpdateOp, d *Decision) bool {
	if d.Reason == ReasonIdentity {
		return true // view unchanged, database unchanged
	}
	de, ok := s.translateInc(st, op)
	if !ok {
		return false
	}
	// Stage the invariant counters; any failure invalidates the whole
	// incState (maps are half-mutated) but never the database.
	if !s.stageInc(st, de) {
		s.invalidateInc()
		return false
	}
	// Copy-on-write: a StateRef holder owns the current relation.
	if s.dbShared {
		s.db = s.db.Clone()
		s.dbShared = false
	}
	ins, del := de.ApplyTo(s.db)
	if ins != len(de.Plus) || del != len(de.Minus) {
		// Translation disagreed with the instance: the database changed
		// by exactly the delta that DID apply, so the maintained image
		// below still ends consistent; drop it defensively anyway — and
		// the materialized reader view with it, since the database
		// mutated outside the patch discipline.
		s.invalidateInc()
		s.invalidateMView()
		return false
	}
	for _, mt := range de.Minus {
		st.dbByX.Remove(mt)
	}
	for _, pt := range de.Plus {
		st.dbByX.Add(pt)
	}
	switch op.Kind {
	case UpdateInsert:
		st.addViewRow(s, op.Tuple)
	case UpdateDelete:
		st.removeViewRow(s, op.Tuple)
	case UpdateReplace:
		st.removeViewRow(s, op.Tuple)
		st.addViewRow(s, op.With)
	}
	if m := coremetrics.Load(); m != nil {
		m.deltaPlus.Observe(float64(len(de.Plus)))
		m.deltaMinus.Observe(float64(len(de.Minus)))
	}
	return true
}

// translateInc computes the base delta of a decided-translatable op:
// Δ⁻ is the indexed rows whose X projection is the removed view tuple
// (exactly the rows the full translation's set-semantics delete
// touches), Δ⁺ is the removed/inserted view tuple joined with the
// complement rows matching it on X∩Y (t*π_Y(R), which the constant
// complement keeps valid forever).
func (s *Session) translateInc(st *incState, op UpdateOp) (delta.Delta, bool) {
	var de delta.Delta
	add := func(vt relation.Tuple) bool {
		comps := st.compBy.Lookup(tupleVals(vt, st.sharedView))
		if len(comps) == 0 {
			return false // condition (a) hole: full path reports it
		}
		for _, c := range comps {
			de.AddPlus(st.assemble(vt, c))
		}
		return true
	}
	remove := func(vt relation.Tuple) {
		// Copy: Lookup's slice is shared and Δ application mutates the index.
		for _, r := range st.dbByX.Lookup(tupleVals(vt, st.viewAll)) {
			de.AddMinus(r)
		}
	}
	switch op.Kind {
	case UpdateInsert:
		if !add(op.Tuple) {
			return de, false
		}
	case UpdateDelete:
		remove(op.Tuple)
	case UpdateReplace:
		remove(op.Tuple)
		if !add(op.With) {
			return de, false
		}
	default:
		return de, false
	}
	return de, true
}

// stageInc applies the delta to the support and legality counters,
// verifying the session invariants on exactly the touched keys:
// complement constancy (no complement row loses its last supporting
// base row; Δ⁺ introduces no new complement row by construction) and
// base legality (every Δ⁺ tuple agrees with its Z-groups). Returns
// false on violation, leaving the maps inconsistent — the caller must
// invalidate the incState.
func (s *Session) stageInc(st *incState, de delta.Delta) bool {
	arts := s.pair.artifacts()
	decKeys := make([]string, 0, len(de.Minus))
	for _, mt := range de.Minus {
		yk := tupleKey(mt, st.yDb)
		st.suppY[yk]--
		decKeys = append(decKeys, yk)
		for i, pl := range arts.plans {
			zk := tupleKey(mt, pl[0])
			e := st.legal[i][zk]
			if e.n <= 1 {
				delete(st.legal[i], zk)
			} else {
				e.n--
				st.legal[i][zk] = e
			}
		}
	}
	for _, pt := range de.Plus {
		st.suppY[tupleKey(pt, st.yDb)]++
		for i, pl := range arts.plans {
			zk := tupleKey(pt, pl[0])
			a := pt[pl[1][0]]
			e, ok := st.legal[i][zk]
			if !ok {
				st.legal[i][zk] = legalEntry{a: a, n: 1}
				continue
			}
			if e.a != a {
				return false // Δ⁺ would make the base illegal
			}
			e.n++
			st.legal[i][zk] = e
		}
	}
	for _, yk := range decKeys {
		if st.suppY[yk] <= 0 {
			return false // a complement row would lose all support
		}
	}
	return true
}

// addViewRow maintains the view-side image under a view insert.
func (st *incState) addViewRow(s *Session, t relation.Tuple) {
	vt := t.Clone()
	st.view.Insert(vt)
	st.viewBy.Add(vt)
	for _, ix := range st.fdIdx {
		if ix != nil {
			ix.Add(vt)
		}
	}
	st.rowOf[tupleKey(vt, st.viewAll)] = st.pad.AddRow(st.padRow(vt))
	if st.pad.ConstClash() {
		// Cannot happen for a legal post-state; drop the state, the
		// database mutation above stands.
		s.invalidateInc()
	}
}

// removeViewRow maintains the view-side image under a view delete.
func (st *incState) removeViewRow(s *Session, t relation.Tuple) {
	st.view.Delete(t)
	st.viewBy.Remove(t)
	for _, ix := range st.fdIdx {
		if ix != nil {
			ix.Remove(t)
		}
	}
	k := tupleKey(t, st.viewAll)
	id, ok := st.rowOf[k]
	if !ok {
		s.invalidateInc()
		return
	}
	st.pad.RemoveRow(id)
	delete(st.rowOf, k)
	if st.pad.Wasteful() {
		// Tombstones and garbage outweigh the live fixpoint: a fresh
		// rebuild is cheaper than dragging them along.
		s.invalidateInc()
	}
}
