package core

import (
	"context"
	"fmt"
	"sort"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
)

// This file implements the paper's usage scenario (§1): "Before updating
// the view, the user must define (probably with the assistance of the
// system) another view (a complement of the first), which must be held
// constant during updating." The Manager is that assistance: it
// recommends complements for a view, ranks them, and registers declared
// view/complement pairs for update routing.

// Recommendation describes one candidate complement for a view.
type Recommendation struct {
	// Y is the candidate complement.
	Y attr.Set
	// Size is |Y|.
	Size int
	// Minimal reports that no attribute of Y can be dropped.
	Minimal bool
	// Minimum reports |Y| is the smallest possible (set only when the
	// exact search ran).
	Minimum bool
	// Good reports Y passes the Test-2 goodness check, so the fast
	// per-insert test is exact for it. Only meaningful on FD schemas.
	Good bool
	// Overlap is |X ∩ Y| — smaller overlap means the complement pins
	// less of the view itself.
	Overlap int
	// Degraded reports that the recommendation ran out of budget before
	// completing: the exact minimum search (and possibly some minimality
	// refinement) was skipped or aborted, so Minimum flags may be
	// missing and the Corollary-2 fallback may be less reduced than the
	// true minimal complement. The recommended sets are still verified
	// complements.
	Degraded bool
}

// Manager recommends and registers view complements over one schema.
type Manager struct {
	schema *Schema
	// pairs maps view key -> registered pair.
	pairs map[string]*Pair
	// exactSearchLimit caps |U| for running the exponential minimum
	// search; beyond it only minimal complements are recommended.
	exactSearchLimit int
}

// NewManager builds a manager for the schema. Exact minimum-complement
// search (NP-complete, Theorem 2) runs only for universes of at most 16
// attributes by default; see SetExactSearchLimit.
func NewManager(s *Schema) *Manager {
	return &Manager{schema: s, pairs: make(map[string]*Pair), exactSearchLimit: 16}
}

// SetExactSearchLimit adjusts the universe-size cap for the exponential
// minimum-complement search.
func (m *Manager) SetExactSearchLimit(n int) { m.exactSearchLimit = n }

// Recommend lists candidate complements for the view X: the minimal
// complement of Corollary 2 plus, when the universe is small enough, all
// minimum-size complements from the Theorem 2 search. Candidates are
// ranked: good before not-good, then smaller, then smaller overlap with
// X, then lexicographic.
func (m *Manager) Recommend(x attr.Set) []Recommendation {
	return m.RecommendBudget(nil, x)
}

// RecommendCtx is Recommend bounded by a context; see RecommendBudget.
func (m *Manager) RecommendCtx(ctx context.Context, x attr.Set) []Recommendation {
	return m.RecommendBudget(budget.New(ctx), x)
}

// RecommendBudget is Recommend under a budget, with graceful
// degradation instead of an error: when the budget trips, the
// NP-complete Theorem 2 minimum search is abandoned and the manager
// falls back to the polynomial Corollary-2 minimal complement (or, if
// even that was cut short, its partially-reduced prefix — still a
// verified complement, since the reduction only commits
// verified-complementary shrinks). Every returned recommendation is
// then flagged Degraded. The result is never empty: the trivial
// complement U backstops a budget that was exhausted on arrival.
func (m *Manager) RecommendBudget(b *budget.B, x attr.Set) []Recommendation {
	degraded := false
	seen := map[string]bool{}
	var out []Recommendation
	add := func(y attr.Set, minimum bool) {
		if seen[y.Key()] {
			for i := range out {
				if out[i].Y.Equal(y) {
					out[i].Minimum = out[i].Minimum || minimum
				}
			}
			return
		}
		seen[y.Key()] = true
		rec := Recommendation{
			Y:       y,
			Size:    y.Len(),
			Minimum: minimum,
			Overlap: x.Intersect(y).Len(),
		}
		rec.Minimal = true
		y.Each(func(id attr.ID) bool {
			drop, err := ComplementaryBudget(b, m.schema, x, y.Without(id))
			if err != nil {
				degraded = true
				rec.Minimal = false // unknown; claim nothing
				return false
			}
			if drop {
				rec.Minimal = false
				return false
			}
			return true
		})
		if m.schema.fdsOnly() {
			if p, err := NewPair(m.schema, x, y); err == nil {
				if good, err := p.IsGoodComplement(); err == nil {
					rec.Good = good
				}
			}
		}
		out = append(out, rec)
	}
	minimal, err := MinimalComplementBudget(b, m.schema, x)
	if err != nil {
		degraded = true
	}
	add(minimal, false)
	if m.schema.u.Size() <= m.exactSearchLimit {
		switch y, ok, err := MinimumComplementBudget(b, m.schema, x); {
		case err != nil:
			degraded = true
		case ok:
			k := y.Len()
			m.schema.u.All().SubsetsOfSize(k, func(cand attr.Set) bool {
				comp, err := ComplementaryBudget(b, m.schema, x, cand)
				if err != nil {
					degraded = true
					return false
				}
				if comp {
					add(cand, true)
				}
				return true
			})
		}
	}
	if degraded {
		for i := range out {
			out[i].Degraded = true
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Good != b.Good {
			return a.Good
		}
		if a.Size != b.Size {
			return a.Size < b.Size
		}
		if a.Overlap != b.Overlap {
			return a.Overlap < b.Overlap
		}
		return a.Y.String() < b.Y.String()
	})
	return out
}

// Register declares Y as the constant complement for view X and returns
// the pair. Registering the same view twice replaces the complement.
func (m *Manager) Register(x, y attr.Set) (*Pair, error) {
	p, err := NewPair(m.schema, x, y)
	if err != nil {
		return nil, err
	}
	m.pairs[x.Key()] = p
	return p, nil
}

// RegisterRecommended registers the top-ranked recommendation for X.
func (m *Manager) RegisterRecommended(x attr.Set) (*Pair, error) {
	recs := m.Recommend(x)
	if len(recs) == 0 {
		return nil, fmt.Errorf("core: no complement recommendation for %v", x)
	}
	return m.Register(x, recs[0].Y)
}

// Lookup returns the registered pair for view X.
func (m *Manager) Lookup(x attr.Set) (*Pair, bool) {
	p, ok := m.pairs[x.Key()]
	return p, ok
}

// Views lists the registered view attribute sets, sorted.
func (m *Manager) Views() []attr.Set {
	out := make([]attr.Set, 0, len(m.pairs))
	for _, p := range m.pairs {
		out = append(out, p.x)
	}
	attr.SortSets(out)
	return out
}
