package core

import (
	"testing"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

func TestSchemaBasics(t *testing.T) {
	s := edmSchema(t)
	if s.Sigma().Len() != 2 {
		t.Errorf("Sigma len = %d", s.Sigma().Len())
	}
	if s.Universe().Size() != 3 {
		t.Errorf("|U| = %d", s.Universe().Size())
	}
	// Legal rejects instances over the wrong attribute set.
	sub := relation.New(s.Universe().MustSet("E"))
	if ok, _ := s.Legal(sub); ok {
		t.Error("partial instance accepted as legal")
	}
	// NewSchema with nil Σ yields an empty set.
	u2 := attr.MustUniverse("A")
	s2, err := NewSchema(u2, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Sigma().Len() != 0 {
		t.Error("nil Σ not empty")
	}
	// Σ over a foreign universe is rejected.
	if _, err := NewSchema(u2, dep.NewSet(attr.MustUniverse("A"))); err == nil {
		t.Error("foreign Σ accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustSchema(attr.MustUniverse("A"), dep.NewSet(attr.MustUniverse("A")))
}

func TestViewType(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	v := s.View(u.MustSet("E", "D"))
	if v.Schema() != s {
		t.Error("Schema accessor wrong")
	}
	if !v.Attrs().Equal(u.MustSet("E", "D")) {
		t.Error("Attrs accessor wrong")
	}
	if v.String() != "π[E D]" {
		t.Errorf("String = %q", v.String())
	}
	syms := value.NewSymbols()
	db := relation.New(u.All())
	db.InsertVals(syms.Const("ed"), syms.Const("toys"), syms.Const("mo"))
	inst := v.Instance(db)
	if inst.Len() != 1 || !inst.Attrs().Equal(v.Attrs()) {
		t.Error("Instance wrong")
	}
}

func TestViewForeignUniversePanics(t *testing.T) {
	s := edmSchema(t)
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	s.View(attr.MustUniverse("E").All())
}

func TestMustPairPanics(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	defer func() {
		if recover() == nil {
			t.Error("no panic")
		}
	}()
	MustPair(s, u.MustSet("E", "M"), u.MustSet("D", "M"))
}

func TestPairAccessors(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	p := MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	if p.Schema() != s {
		t.Error("Schema accessor")
	}
	if !p.Shared().Equal(u.MustSet("D")) {
		t.Errorf("Shared = %v", p.Shared())
	}
}

func TestImpliesDependencyWithJDPremises(t *testing.T) {
	// FD implication routed through the tableau chase when Σ has JDs.
	u := attr.MustUniverse("A", "B", "C")
	sigma := dep.NewSet(u)
	sigma.Add(dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C")))
	sigma.Add(dep.NewFD(u.MustSet("A"), u.MustSet("B")))
	s := MustSchema(u, sigma)
	if !ImpliesDependency(s, dep.NewFD(u.MustSet("A"), u.MustSet("B"))) {
		t.Error("given FD not implied")
	}
	if ImpliesDependency(s, dep.NewFD(u.MustSet("B"), u.MustSet("A"))) {
		t.Error("unsound FD implication with JDs")
	}
	// MVD routed through the tableau when JDs present.
	if !ImpliesDependency(s, dep.NewMVD(u.MustSet("B"), u.MustSet("A"))) {
		t.Error("JD-backed MVD missed")
	}
}

func TestViewConsistentValidation(t *testing.T) {
	s := edmSchema(t)
	u := s.Universe()
	// Wrong attribute set errors.
	v := relation.New(u.MustSet("E"))
	if _, err := ViewConsistent(s, u.MustSet("E", "D"), v); err == nil {
		t.Error("mismatched view accepted")
	}
	// Non-FD schema errors.
	sigma := dep.NewSet(u)
	sigma.Add(dep.MustJD(u.MustSet("E", "D"), u.MustSet("D", "M")))
	s2 := MustSchema(u, sigma)
	v2 := relation.New(u.MustSet("E", "D"))
	if _, err := ViewConsistent(s2, u.MustSet("E", "D"), v2); err == nil {
		t.Error("JD schema accepted")
	}
}
