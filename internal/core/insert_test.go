package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
	"github.com/constcomp/constcomp/internal/value"
)

// edmView builds the running example: schema EDM, pair (ED, DM), view
// instance {(ed,toys), (flo,toys), (bob,tools)}.
func edmView(t testing.TB) (*Pair, *relation.Relation, *value.Symbols) {
	t.Helper()
	s := edmSchema(t)
	u := s.Universe()
	p := MustPair(s, u.MustSet("E", "D"), u.MustSet("D", "M"))
	syms := value.NewSymbols()
	v := relation.New(u.MustSet("E", "D"))
	for _, row := range [][]string{{"ed", "toys"}, {"flo", "toys"}, {"bob", "tools"}} {
		v.InsertVals(syms.Const(row[0]), syms.Const(row[1]))
	}
	return p, v, syms
}

func TestDecideInsertTranslatable(t *testing.T) {
	p, v, syms := edmView(t)
	// Insert (ann, toys): toys exists, D is key of DM, no FD conflict.
	tup := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable || d.Reason != ReasonOK {
		t.Fatalf("decision = %+v, want translatable", d)
	}
}

func TestDecideInsertConditionA(t *testing.T) {
	p, v, syms := edmView(t)
	// (ann, plants): no department "plants" in the view.
	tup := relation.Tuple{syms.Const("ann"), syms.Const("plants")}
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if d.Translatable || d.Reason != ReasonNoSharedMatch {
		t.Fatalf("decision = %+v, want NoSharedMatch", d)
	}
}

func TestDecideInsertIdentity(t *testing.T) {
	p, v, syms := edmView(t)
	tup := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable || d.Reason != ReasonIdentity {
		t.Fatalf("decision = %+v, want identity", d)
	}
}

func TestDecideInsertSharedKeyOfView(t *testing.T) {
	// Pair (ED, EM): shared E is a key of ED, so inserting a second
	// E-sharing tuple is untranslatable.
	s := edmSchema(t)
	u := s.Universe()
	p := MustPair(s, u.MustSet("E", "D"), u.MustSet("E", "M"))
	syms := value.NewSymbols()
	v := relation.New(u.MustSet("E", "D"))
	v.InsertVals(syms.Const("ed"), syms.Const("toys"))
	tup := relation.Tuple{syms.Const("ed"), syms.Const("tools")}
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if d.Translatable || d.Reason != ReasonSharedKeyOfView {
		t.Fatalf("decision = %+v, want SharedKeyOfView", d)
	}
}

func TestDecideInsertChaseCounterexample(t *testing.T) {
	// U = ABC, Σ = {A -> C, B -> C}, X = AB, Y = BC. Inserting (a1, b2)
	// with V = {(a1,b1), (a2,b2)}: a legal database can give the rows
	// different C values, and the insertion would force a1's C to equal
	// b2's C — violating A -> C in some legal database.
	u := attr.MustUniverse("A", "B", "C")
	s := MustSchema(u, dep.MustParseSet(u, "A -> C\nB -> C"))
	p := MustPair(s, u.MustSet("A", "B"), u.MustSet("B", "C"))
	syms := value.NewSymbols()
	v := relation.New(u.MustSet("A", "B"))
	v.InsertVals(syms.Const("a1"), syms.Const("b1"))
	v.InsertVals(syms.Const("a2"), syms.Const("b2"))
	tup := relation.Tuple{syms.Const("a1"), syms.Const("b2")}
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if d.Translatable || d.Reason != ReasonChaseCounterexample {
		t.Fatalf("decision = %+v, want ChaseCounterexample", d)
	}
	if d.WitnessFD.String() != "A -> C" {
		t.Errorf("witness FD = %v", d.WitnessFD)
	}
}

func TestDecideInsertChaseForcedEquality(t *testing.T) {
	// Same schema, but V = {(a1,b1)} and t = (a2,b1): the only row shares
	// t's B value, the chase forces the inserted C to equal b1's C, and
	// A -> C cannot be violated (a2 is fresh). Translatable.
	u := attr.MustUniverse("A", "B", "C")
	s := MustSchema(u, dep.MustParseSet(u, "A -> C\nB -> C"))
	p := MustPair(s, u.MustSet("A", "B"), u.MustSet("B", "C"))
	syms := value.NewSymbols()
	v := relation.New(u.MustSet("A", "B"))
	v.InsertVals(syms.Const("a1"), syms.Const("b1"))
	tup := relation.Tuple{syms.Const("a2"), syms.Const("b1")}
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("decision = %+v, want translatable", d)
	}
}

func TestApplyInsertEDM(t *testing.T) {
	p, _, _ := edmView(t)
	s := p.Schema()
	u := s.Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	for _, row := range [][]string{{"ed", "toys", "mo"}, {"flo", "toys", "mo"}, {"bob", "tools", "tim"}} {
		r.InsertVals(syms.Const(row[0]), syms.Const(row[1]), syms.Const(row[2]))
	}
	tup := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	out, err := p.ApplyInsert(r, tup)
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != 4 {
		t.Fatalf("result has %d tuples, want 4", out.Len())
	}
	want := relation.Tuple{syms.Const("ann"), syms.Const("toys"), syms.Const("mo")}
	if !out.Contains(want) {
		t.Errorf("missing translated tuple (ann, toys, mo):\n%s", out.Format(syms))
	}
	// Complement constant, view updated: verified internally, but check
	// again here.
	if !out.Project(p.ComplementAttrs()).Equal(r.Project(p.ComplementAttrs())) {
		t.Error("complement changed")
	}
}

func TestApplyInsertIdentity(t *testing.T) {
	p, _, _ := edmView(t)
	u := p.Schema().Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("ed"), syms.Const("toys"), syms.Const("mo"))
	tup := relation.Tuple{syms.Const("ed"), syms.Const("toys")}
	out, err := p.ApplyInsert(r, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(r) {
		t.Error("identity insert changed the database (acceptability violated)")
	}
}

func TestApplyInsertNoMatchErrors(t *testing.T) {
	p, _, _ := edmView(t)
	u := p.Schema().Universe()
	syms := value.NewSymbols()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("ed"), syms.Const("toys"), syms.Const("mo"))
	tup := relation.Tuple{syms.Const("ann"), syms.Const("plants")}
	if _, err := p.ApplyInsert(r, tup); err == nil {
		t.Error("ApplyInsert accepted an insertion with no complement match")
	}
}

func TestApplyInsertIllegalErrors(t *testing.T) {
	// (ED, EM) pair: inserting a duplicate-E tuple must error out at
	// apply time too.
	s := edmSchema(t)
	u := s.Universe()
	p := MustPair(s, u.MustSet("E", "D"), u.MustSet("E", "M"))
	syms := value.NewSymbols()
	r := relation.New(u.All())
	r.InsertVals(syms.Const("ed"), syms.Const("toys"), syms.Const("mo"))
	tup := relation.Tuple{syms.Const("ed"), syms.Const("tools")}
	if _, err := p.ApplyInsert(r, tup); err == nil {
		t.Error("ApplyInsert produced an illegal database")
	}
}

func TestDecideInsertArityMismatch(t *testing.T) {
	p, v, syms := edmView(t)
	if _, err := p.DecideInsert(v, relation.Tuple{syms.Const("x")}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Wrong view attributes.
	bad := relation.New(p.Schema().Universe().MustSet("E"))
	if _, err := p.DecideInsert(bad, relation.Tuple{syms.Const("x")}); err == nil {
		t.Error("wrong view instance accepted")
	}
}

func TestDecideInsertRequiresFDOnly(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	sigma := dep.NewSet(u)
	sigma.Add(dep.MustJD(u.MustSet("A", "B"), u.MustSet("B", "C")))
	s := MustSchema(u, sigma)
	p := MustPair(s, u.MustSet("A", "B"), u.MustSet("B", "C"))
	v := relation.New(u.MustSet("A", "B"))
	if _, err := p.DecideInsert(v, relation.Tuple{0, 0}); err == nil {
		t.Error("JD schema accepted by translation")
	}
}

// --- brute-force oracle ---

// bruteInsertTranslatable decides translatability by definition: for every
// legal completion R of V (one row per view tuple, Y−X cells over a domain
// large enough to simulate fresh nulls), T_u[R] = R ∪ t*π_Y(R) must be
// legal, and at least one legal completion must exist.
func bruteInsertTranslatable(p *Pair, v *relation.Relation, t relation.Tuple, syms *value.Symbols) (translatable, anyLegal bool) {
	s := p.Schema()
	u := s.Universe()
	outX := u.All().Diff(p.ViewAttrs())
	outIDs := outX.IDs()
	cells := v.Len() * len(outIDs)
	// Domain: constants seen in V and t, plus one fresh value per cell.
	domainSet := map[value.Value]bool{}
	for _, row := range v.Tuples() {
		for _, val := range row {
			domainSet[val] = true
		}
	}
	for _, val := range t {
		domainSet[val] = true
	}
	var domain []value.Value
	for val := range domainSet {
		domain = append(domain, val)
	}
	for i := 0; i < cells; i++ {
		domain = append(domain, syms.Const("fresh_brute_"+string(rune('a'+i))))
	}
	d := len(domain)
	assign := make([]int, cells)
	translatable = true
	for {
		// Build R.
		r := relation.New(u.All())
		k := 0
		for _, row := range v.Tuples() {
			nt := make(relation.Tuple, u.Size())
			for c := 0; c < u.Size(); c++ {
				if vc := v.Col(attr.ID(c)); vc >= 0 {
					nt[c] = row[vc]
				} else {
					nt[c] = domain[assign[k]]
					k++
				}
			}
			r.Insert(nt)
		}
		if legal, _ := s.Legal(r); legal && r.Project(p.ViewAttrs()).Equal(v) {
			anyLegal = true
			// T_u[R].
			joined := relation.Singleton(p.ViewAttrs(), t).Join(r.Project(p.ComplementAttrs()))
			tu := r.Clone()
			for _, nt := range joined.Tuples() {
				tu.Insert(nt.Clone())
			}
			if joined.Len() == 0 {
				translatable = false
			} else if legal2, _ := s.Legal(tu); !legal2 {
				translatable = false
			} else if !tu.Project(p.ComplementAttrs()).Equal(r.Project(p.ComplementAttrs())) {
				translatable = false
			}
			if !translatable {
				return false, true
			}
		}
		// Next assignment.
		i := 0
		for i < cells {
			assign[i]++
			if assign[i] < d {
				break
			}
			assign[i] = 0
			i++
		}
		if i == cells {
			break
		}
	}
	return translatable, anyLegal
}

// randomInsertCase builds a random small schema, pair, view instance and
// tuple for the oracle comparisons. Returns ok=false when the drawn
// schema/view does not form a complementary pair suitable for testing.
func randomInsertCase(rng *rand.Rand) (p *Pair, v *relation.Relation, tup relation.Tuple, syms *value.Symbols, ok bool) {
	u := attr.MustUniverse("A", "B", "C", "D")
	sigma := dep.NewSet(u)
	for i := 0; i < 1+rng.Intn(3); i++ {
		lhs, rhs := u.Empty(), u.Empty()
		for a := 0; a < 4; a++ {
			switch rng.Intn(3) {
			case 0:
				lhs = lhs.With(attr.ID(a))
			case 1:
				rhs = rhs.With(attr.ID(a))
			}
		}
		rhs = rhs.Diff(lhs)
		if lhs.IsEmpty() || rhs.IsEmpty() {
			continue
		}
		sigma.Add(dep.NewFD(lhs, rhs))
	}
	s := MustSchema(u, sigma)
	// X: random 2-3 attributes; Y: minimal complement.
	x := u.Empty()
	for x.Len() < 2+rng.Intn(2) {
		x = x.With(attr.ID(rng.Intn(4)))
	}
	y := MinimalComplement(s, x)
	// Keep the brute-force cell count manageable.
	if u.All().Diff(x).Len() > 2 {
		return nil, nil, nil, nil, false
	}
	pair, err := NewPair(s, x, y)
	if err != nil {
		return nil, nil, nil, nil, false
	}
	syms = value.NewSymbols()
	consts := syms.Ints(3)
	v = relation.New(x)
	for i := 0; i < 2; i++ {
		row := make(relation.Tuple, x.Len())
		for c := range row {
			row[c] = consts[rng.Intn(3)]
		}
		v.Insert(row)
	}
	tup = make(relation.Tuple, x.Len())
	for c := range tup {
		tup[c] = consts[rng.Intn(3)]
	}
	if v.Contains(tup) {
		return nil, nil, nil, nil, false
	}
	// Test 1's soundness guarantee assumes V is a reachable view state;
	// keep inconsistent draws out of the comparisons (the exact test
	// detects them itself, see TestDecideInsertInconsistentView).
	if ok, err := ViewConsistent(s, x, v); err != nil || !ok {
		return nil, nil, nil, nil, false
	}
	return pair, v, tup, syms, true
}

func TestViewConsistent(t *testing.T) {
	u := attr.MustUniverse("A", "B", "C")
	s := MustSchema(u, dep.MustParseSet(u, "A -> C\nC -> B"))
	x := u.MustSet("A", "B")
	syms := value.NewSymbols()
	v := relation.New(x)
	v.InsertVals(syms.Const("a"), syms.Const("b1"))
	ok, err := ViewConsistent(s, x, v)
	if err != nil || !ok {
		t.Fatalf("single-tuple view inconsistent? %v %v", ok, err)
	}
	// Two rows sharing A but differing on B: A -> C -> B forces equality.
	v.InsertVals(syms.Const("a"), syms.Const("b2"))
	ok, err = ViewConsistent(s, x, v)
	if err != nil || ok {
		t.Fatalf("inconsistent view reported consistent (%v)", err)
	}
	// The exact test reports inconsistency itself, on a schema where
	// conditions (a) and (b) pass: X = ABQ, Y = QP, Σ = {A→P, P→B, Q→P}.
	// Two view rows sharing A but differing on B clash through the
	// A→P→B chain.
	u2 := attr.MustUniverse("A", "B", "P", "Q")
	s2 := MustSchema(u2, dep.MustParseSet(u2, "A -> P\nP -> B\nQ -> P"))
	x2 := u2.MustSet("A", "B", "Q")
	y2 := u2.MustSet("Q", "P")
	p := MustPair(s2, x2, y2)
	v2 := relation.New(x2)
	v2.InsertVals(syms.Const("a"), syms.Const("b1"), syms.Const("q"))
	v2.InsertVals(syms.Const("a"), syms.Const("b2"), syms.Const("q"))
	if ok, err := ViewConsistent(s2, x2, v2); err != nil || ok {
		t.Fatalf("v2 should be inconsistent (%v)", err)
	}
	d, err := p.DecideInsert(v2, relation.Tuple{syms.Const("a2"), syms.Const("b1"), syms.Const("q")})
	if err != nil {
		t.Fatal(err)
	}
	if d.Translatable || d.Reason != ReasonViewInconsistent {
		t.Fatalf("decision = %+v, want ViewInconsistent", d)
	}
}

func TestQuickDecideInsertMatchesBruteForce(t *testing.T) {
	// E5 validation: the Theorem 3 chase test agrees with the brute-force
	// definition on random small cases.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, tup, syms, ok := randomInsertCase(rng)
		if !ok {
			return true
		}
		brute, anyLegal := bruteInsertTranslatable(p, v, tup, syms)
		d, err := p.DecideInsert(v, tup)
		if err != nil {
			return false
		}
		if !anyLegal {
			// View inconsistent: exact test must reject too.
			return !d.Translatable
		}
		return d.Translatable == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}

func TestQuickTest1SoundWrtExact(t *testing.T) {
	// E7 invariant: Test 1 accepting implies the exact test accepts
	// (Test 1 rejects all untranslatable insertions, maybe more).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, tup, _, ok := randomInsertCase(rng)
		if !ok {
			return true
		}
		d1, err := p.DecideInsertTest1(v, tup)
		if err != nil {
			return false
		}
		if !d1.Translatable {
			return true
		}
		d, err := p.DecideInsert(v, tup)
		if err != nil {
			return false
		}
		return d.Translatable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestQuickTest2ExactOnGoodComplements(t *testing.T) {
	// E8 invariant: when Y is a good complement, Test 2 agrees with the
	// exact test; when it is not, Test 2 rejects everything.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, tup, _, ok := randomInsertCase(rng)
		if !ok {
			return true
		}
		good, err := p.IsGoodComplement()
		if err != nil {
			return false
		}
		d2, err := p.DecideInsertTest2Known(v, tup, good)
		if err != nil {
			return false
		}
		if !good {
			return !d2.Translatable && d2.Reason == ReasonNotGoodComplement
		}
		d, err := p.DecideInsert(v, tup)
		if err != nil {
			return false
		}
		return d2.Translatable == d.Translatable
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTest1ConservativenessWitness(t *testing.T) {
	// A pinned example where the exact test accepts but Test 1 rejects:
	// the success proof for the candidate (A D → E, r = (1,1)) needs the
	// third row (2,1) — after imposing r[D] = μ[D], B → D copies the
	// imposed D into (2,1), A D → E equates (2,1)[E] with μ[E], and
	// B → E equates r[E] with (2,1)[E]. Test 1's two-tuple chase of
	// {r, μ} cannot make that derivation, demonstrating that Test 1 is
	// strictly stronger than the exact test (as the paper anticipates).
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	s := MustSchema(u, dep.MustParseSet(u, "B -> D\nB -> C D E\nA D -> E"))
	x, y := u.MustSet("A", "B"), u.MustSet("B", "C", "D", "E")
	p := MustPair(s, x, y)
	syms := value.NewSymbols()
	one, zero, two := syms.Const("1"), syms.Const("0"), syms.Const("2")
	v := relation.New(x)
	v.Insert(relation.Tuple{one, one})
	v.Insert(relation.Tuple{two, zero})
	v.Insert(relation.Tuple{two, one})
	tup := relation.Tuple{one, zero}
	if ok, err := ViewConsistent(s, x, v); err != nil || !ok {
		t.Fatalf("fixture view inconsistent (%v)", err)
	}
	d, err := p.DecideInsert(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Translatable {
		t.Fatalf("exact test rejected: %+v", d)
	}
	d1, err := p.DecideInsertTest1(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if d1.Translatable {
		t.Fatal("Test 1 accepted; the conservativeness witness is broken")
	}
	// Test 2 must agree with the exact test here iff the complement is
	// good.
	good, err := p.IsGoodComplement()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := p.DecideInsertTest2Known(v, tup, good)
	if err != nil {
		t.Fatal(err)
	}
	if good && d2.Translatable != d.Translatable {
		t.Error("Test 2 disagrees with exact on a good complement")
	}
}

// TestQuickImposeStrategiesAgree: the incremental overlay engine and the
// rebuild-and-rechase engine decide identically (A5 ablation invariant),
// for insertions and replacements.
func TestQuickImposeStrategiesAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		p, v, tup, _, ok := randomInsertCase(rng)
		if !ok {
			return true
		}
		p.SetImposeStrategy(ImposeIncremental)
		di, err := p.DecideInsert(v, tup)
		if err != nil {
			return false
		}
		p.SetImposeStrategy(ImposeRebuild)
		dr, err := p.DecideInsert(v, tup)
		if err != nil {
			return false
		}
		if di.Translatable != dr.Translatable {
			return false
		}
		if v.Len() > 0 {
			t1 := v.Tuple(rng.Intn(v.Len())).Clone()
			p.SetImposeStrategy(ImposeIncremental)
			ri, err1 := p.DecideReplace(v, t1, tup)
			p.SetImposeStrategy(ImposeRebuild)
			rr, err2 := p.DecideReplace(v, t1, tup)
			if (err1 == nil) != (err2 == nil) {
				return false
			}
			if err1 == nil && ri.Translatable != rr.Translatable {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 250}); err != nil {
		t.Error(err)
	}
}

func TestImposeStrategyOnPinnedWitness(t *testing.T) {
	// Both engines agree on the pinned Test-1 conservativeness witness,
	// which exercises the three-row derivation path.
	u := attr.MustUniverse("A", "B", "C", "D", "E")
	s := MustSchema(u, dep.MustParseSet(u, "B -> D\nB -> C D E\nA D -> E"))
	p := MustPair(s, u.MustSet("A", "B"), u.MustSet("B", "C", "D", "E"))
	syms := value.NewSymbols()
	one, zero, two := syms.Const("1"), syms.Const("0"), syms.Const("2")
	v := relation.New(u.MustSet("A", "B"))
	v.Insert(relation.Tuple{one, one})
	v.Insert(relation.Tuple{two, zero})
	v.Insert(relation.Tuple{two, one})
	tup := relation.Tuple{one, zero}
	for _, strat := range []ImposeStrategy{ImposeIncremental, ImposeRebuild} {
		p.SetImposeStrategy(strat)
		d, err := p.DecideInsert(v, tup)
		if err != nil {
			t.Fatal(err)
		}
		if !d.Translatable {
			t.Fatalf("strategy %d rejected the witness insertion", strat)
		}
	}
}

func TestEDMIsGoodComplement(t *testing.T) {
	p, _, _ := edmView(t)
	good, err := p.IsGoodComplement()
	if err != nil {
		t.Fatal(err)
	}
	// DM is a good complement of ED in the EDM schema: the chase of any
	// counterexample forces the violating C... here M value to agree.
	if !good {
		t.Error("DM should be a good complement of ED")
	}
	// And Test 2 then agrees with the exact test on the running example.
	syms := value.NewSymbols()
	v := relation.New(p.Schema().Universe().MustSet("E", "D"))
	v.InsertVals(syms.Const("ed"), syms.Const("toys"))
	tup := relation.Tuple{syms.Const("ann"), syms.Const("toys")}
	d2, err := p.DecideInsertTest2(v, tup)
	if err != nil {
		t.Fatal(err)
	}
	if !d2.Translatable {
		t.Errorf("Test 2 rejected a translatable insertion: %+v", d2)
	}
}

func TestReasonStrings(t *testing.T) {
	for r := ReasonOK; r <= ReasonRepresentativeViolation; r++ {
		if r.String() == "" {
			t.Errorf("empty string for reason %d", int(r))
		}
	}
	if Reason(99).String() != "Reason(99)" {
		t.Error("fallback string wrong")
	}
}
