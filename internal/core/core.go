// Package core implements the view-update machinery of Cosmadakis &
// Papadimitriou, "Updates of Relational Views" (PODS 1983 / JACM 1984):
// complementary projective views over single-relation schemas with
// functional, join and explicit functional dependencies, and the
// translation of view insertions, deletions and replacements under a
// constant complement.
//
// The package is organized around three types:
//
//   - Schema: a universal relation schema (U, Σ);
//   - View: a projection π_X of the schema;
//   - Pair: a view together with a chosen complement, the object updates
//     are translated against.
//
// The map from paper results to API:
//
//	Theorem 1 / Theorem 10   Complementary, Reconstruct
//	Corollary 2              MinimalComplement
//	Theorem 2                MinimumComplement (exact, exponential search)
//	Theorem 3 + Corollary    Pair.DecideInsert (exact chase test)
//	Test 1                   Pair.DecideInsertTest1
//	Test 2                   Pair.IsGoodComplement, Pair.DecideInsertTest2
//	Theorem 6                FindInsertComplement
//	Theorem 8                Pair.DecideDelete
//	Theorem 9                Pair.DecideReplace
//	Propositions 1, 2        ImpliesEFD, ImpliesDependency
package core

import (
	"errors"
	"fmt"
	"sync/atomic"

	"github.com/constcomp/constcomp/internal/attr"
	"github.com/constcomp/constcomp/internal/budget"
	"github.com/constcomp/constcomp/internal/chase"
	"github.com/constcomp/constcomp/internal/closure"
	"github.com/constcomp/constcomp/internal/dep"
	"github.com/constcomp/constcomp/internal/relation"
)

// ErrBudgetExceeded is returned (wrapped) by the Ctx/Budget variants of
// the long-running procedures — DecideInsert/Replace, the complement
// searches, FindInsertComplement — when their context is cancelled, a
// deadline passes, or a step allowance runs out. It aliases
// budget.ErrExceeded so the chase and solver layers trip the same typed
// error; test with errors.Is.
var ErrBudgetExceeded = budget.ErrExceeded

// Schema is a universal relation schema (U, Σ).
type Schema struct {
	u     *attr.Universe
	sigma *dep.Set
}

// NewSchema builds a schema over u with constraints sigma.
func NewSchema(u *attr.Universe, sigma *dep.Set) (*Schema, error) {
	if sigma == nil {
		sigma = dep.NewSet(u)
	}
	if sigma.Universe() != u {
		return nil, errors.New("core: Σ is over a different universe")
	}
	return &Schema{u: u, sigma: sigma}, nil
}

// MustSchema is NewSchema, panicking on error.
func MustSchema(u *attr.Universe, sigma *dep.Set) *Schema {
	s, err := NewSchema(u, sigma)
	if err != nil {
		panic(err)
	}
	return s
}

// Universe returns U.
func (s *Schema) Universe() *attr.Universe { return s.u }

// Sigma returns Σ.
func (s *Schema) Sigma() *dep.Set { return s.sigma }

// Legal reports whether an instance over U satisfies Σ; on failure it also
// returns the first violated dependency.
func (s *Schema) Legal(r *relation.Relation) (bool, dep.Dependency) {
	if !r.Attrs().Equal(s.u.All()) {
		return false, nil
	}
	return r.SatisfiesAll(s.sigma)
}

// fdsOnly reports whether Σ consists solely of FDs, the setting of §3–§4.
func (s *Schema) fdsOnly() bool {
	return !s.sigma.HasJDs() && !s.sigma.HasEFDs()
}

// View returns the projective view π_X of the schema.
func (s *Schema) View(x attr.Set) View {
	if x.Universe() != s.u {
		panic("core: view attributes over a different universe")
	}
	return View{schema: s, attrs: x}
}

// View is a projective view π_X of a schema.
type View struct {
	schema *Schema
	attrs  attr.Set
}

// Schema returns the view's schema.
func (v View) Schema() *Schema { return v.schema }

// Attrs returns X, the view's attribute set.
func (v View) Attrs() attr.Set { return v.attrs }

// Instance computes the view instance π_X(R) of a database instance.
func (v View) Instance(r *relation.Relation) *relation.Relation {
	return r.Project(v.attrs)
}

// String renders the view as its attribute set.
func (v View) String() string { return "π[" + v.attrs.String() + "]" }

// ImposeStrategy selects how the exact test applies per-candidate
// impositions: incrementally over the base fixpoint (default) or by
// rebuilding and re-chasing the relation (the paper's literal approach;
// kept for the A5 ablation). Both decide the same predicate.
type ImposeStrategy int

// Imposition strategies.
const (
	// ImposeIncremental propagates each imposed equality by a delta
	// worklist over the indexed base fixpoint.
	ImposeIncremental ImposeStrategy = iota
	// ImposeRebuild rebuilds the relation with the imposed equality and
	// re-runs the chase.
	ImposeRebuild
)

// Pair is a view X together with a chosen complement Y. Construct with
// NewPair, which verifies complementarity.
type Pair struct {
	schema *Schema
	x, y   attr.Set
	// shared is X ∩ Y, the overlap every translation pivots on.
	shared attr.Set
	// strategy selects the imposition engine for the exact tests.
	strategy ImposeStrategy
	// arts memoizes the schema-level decision artifacts (see cache.go);
	// they are constants of the pair, computed on first decide.
	arts atomic.Pointer[pairArtifacts]
}

// SetImposeStrategy switches the imposition engine (see ImposeStrategy).
func (p *Pair) SetImposeStrategy(s ImposeStrategy) { p.strategy = s }

// NewPair builds a view/complement pair, verifying that X and Y are
// complementary views of the schema (Theorem 1 / Theorem 10).
func NewPair(s *Schema, x, y attr.Set) (*Pair, error) {
	if !Complementary(s, x, y) {
		return nil, fmt.Errorf("core: %v and %v are not complementary under Σ", x, y)
	}
	return &Pair{schema: s, x: x, y: y, shared: x.Intersect(y)}, nil
}

// MustPair is NewPair, panicking on error.
func MustPair(s *Schema, x, y attr.Set) *Pair {
	p, err := NewPair(s, x, y)
	if err != nil {
		panic(err)
	}
	return p
}

// Schema returns the pair's schema.
func (p *Pair) Schema() *Schema { return p.schema }

// ViewAttrs returns X.
func (p *Pair) ViewAttrs() attr.Set { return p.x }

// ComplementAttrs returns Y.
func (p *Pair) ComplementAttrs() attr.Set { return p.y }

// Shared returns X ∩ Y.
func (p *Pair) Shared() attr.Set { return p.shared }

// requireFDOnly guards the §3–§4 translation algorithms, which are stated
// for Σ consisting of functional dependencies.
func (p *Pair) requireFDOnly() error {
	if !p.schema.fdsOnly() {
		return errors.New("core: update translation requires Σ to contain only functional dependencies (paper §3)")
	}
	return nil
}

// checkViewInstance validates that v is an instance over X.
func (p *Pair) checkViewInstance(v *relation.Relation) error {
	if !v.Attrs().Equal(p.x) {
		return fmt.Errorf("core: view instance over %v, want %v", v.Attrs(), p.x)
	}
	return nil
}

// ImpliesDependency decides Σ ⊨ d for FDs, MVDs and JDs, treating EFDs in
// Σ as their underlying FDs, which is sound and complete by
// Proposition 2(a).
func ImpliesDependency(s *Schema, d dep.Dependency) bool {
	sigma := s.sigma.WithFD()
	switch x := d.(type) {
	case dep.FD:
		if !sigma.HasJDs() {
			return closure.Implies(sigma.FDs(), x)
		}
		return chase.ImpliesFD(sigma, x)
	case dep.MVD:
		if !sigma.HasJDs() {
			return chase.FDOnlyImpliesMVD(sigma.FDs(), x)
		}
		return chase.ImpliesMVD(sigma, x)
	case dep.JD:
		return chase.ImpliesJD(sigma, x)
	case dep.EFD:
		return ImpliesEFD(s, x)
	}
	panic(fmt.Sprintf("core: unknown dependency %T", d))
}

// ImpliesEFD decides Σ ⊨ X →e Y. By Proposition 2(b), only the EFDs of Σ
// matter, and by Proposition 1 the question reduces to FD implication from
// the EFDs' underlying FDs.
func ImpliesEFD(s *Schema, e dep.EFD) bool {
	var efdFDs []dep.FD
	for _, x := range s.sigma.EFDs() {
		efdFDs = append(efdFDs, x.FD())
	}
	return closure.Implies(efdFDs, e.FD())
}
